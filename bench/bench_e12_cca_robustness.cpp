// E12 (extension) — sensitivity of Figure 2 to imperfect clear-channel
// assessment.
//
// The protocol's control loop counts *clear* slots (hearing silence is what
// grows S_u toward termination), so CCA misclassification perturbs it in
// both directions:
//   * false-busy (clear read as noise) suppresses C_u — behaves like free,
//     adversary-less jamming: costs rise, termination is delayed;
//   * missed-detection (noise read as clear) inflates C_u — S_u can grow
//     through genuine jamming, risking premature helper halts before every
//     node is informed.
// This bench sweeps both error rates, unattacked and under a critical-rate
// blocker, and reports cost, delivery and termination.
#include <iostream>

#include "bench_util.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/runtime/montecarlo.hpp"

namespace rcb {
namespace {

struct Outcome {
  double mean_cost = 0;
  double informed = 0;
  double terminated = 0;
  double latency = 0;
};

Outcome measure(const CcaModel& cca, bool jammed, std::uint64_t seed) {
  BroadcastNParams params = BroadcastNParams::sim();
  params.cca = cca;
  const std::uint32_t n = 32;
  auto samples = run_trials<Outcome>(12, seed, [&](std::size_t, Rng& rng) {
    Outcome o;
    BroadcastNResult r;
    if (jammed) {
      SuffixBlockerAdversary adv(Budget(1 << 16), 0.9);
      r = run_broadcast_n(n, params, adv, rng);
    } else {
      NoJamAdversary adv;
      r = run_broadcast_n(n, params, adv, rng);
    }
    o.mean_cost = r.mean_cost;
    o.informed = static_cast<double>(r.informed_count) / n;
    o.terminated = r.all_terminated ? 1.0 : 0.0;
    o.latency = static_cast<double>(r.latency);
    return o;
  });
  Outcome acc;
  for (const auto& s : samples) {
    acc.mean_cost += s.mean_cost;
    acc.informed += s.informed;
    acc.terminated += s.terminated;
    acc.latency += s.latency;
  }
  const auto count = static_cast<double>(samples.size());
  acc.mean_cost /= count;
  acc.informed /= count;
  acc.terminated /= count;
  acc.latency /= count;
  return acc;
}

void run() {
  bench::print_header(
      "E12", "Extension — Fig. 2 under imperfect clear-channel assessment");
  std::cout << "n = 32, 12 trials per row; 'informed' and 'terminated' are "
               "averaged rates\n";

  for (bool jammed : {false, true}) {
    std::cout << (jammed ? "\n(b) under SuffixBlocker(q=0.9, budget 2^16)\n\n"
                         : "\n(a) no adversary\n\n");
    Table table({"false busy", "missed detect", "mean cost", "informed",
                 "terminated", "latency"});
    std::uint64_t seed = jammed ? 45000 : 44000;
    const std::pair<double, double> grid[] = {
        {0.0, 0.0}, {0.02, 0.0}, {0.1, 0.0},  {0.25, 0.0},
        {0.0, 0.02}, {0.0, 0.1}, {0.0, 0.25}, {0.1, 0.1},
    };
    for (const auto& [fb, md] : grid) {
      const Outcome o = measure(CcaModel{fb, md}, jammed, seed++);
      table.add_row({Table::num(fb), Table::num(md), Table::num(o.mean_cost),
                     Table::num(o.informed, 4), Table::num(o.terminated, 3),
                     Table::num(o.latency)});
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected: false-busy inflates cost/latency like unpaid "
               "jamming but keeps delivery.  Missed-detection is absorbed "
               "at these rates — the conservative n_u estimates and the "
               "helper re-estimation keep halting safe even when S_u grows "
               "through jamming (at 0.25 it mildly raises cost under "
               "attack).\n";
}

}  // namespace
}  // namespace rcb

int main() {
  rcb::run();
  return 0;
}
