// E1 — Theorem 1: 1-to-1 expected cost O(sqrt(T ln(1/eps)) + ln(1/eps)),
// success probability >= 1 - eps, latency O(T).
//
// Sweeps the adversary budget under the canonical FullDuelBlocker attack
// (q-block Bob's send phases and Alice's nack phases until broke) and
// reports, per budget: realised T, max per-party cost, the normalised ratio
// cost / sqrt(T ln(1/eps)) (should be ~constant), delivery rate, and
// latency/T.  Finishes with the fitted cost-vs-T exponent (paper: 0.5).
#include <iostream>

#include "bench_util.hpp"
#include "rcb/adversary/two_uniform.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/runtime/montecarlo.hpp"

namespace rcb {
namespace {

struct Sample {
  double cost = 0, t = 0, latency = 0;
  bool delivered = false;
};

void run() {
  const double eps = 0.01;
  const double q = 0.6;
  const OneToOneParams params = OneToOneParams::sim(eps);
  const double ln8e = std::log(8.0 / eps);

  bench::print_header(
      "E1", "Theorem 1 — 1-to-1 cost ~ sqrt(T ln(1/eps)), success >= 1-eps");
  std::cout << "eps = " << eps << ", adversary = FullDuelBlocker(q=" << q
            << "), 256 trials per budget\n\n";

  Table table({"budget", "T (mean)", "max cost", "ci95", "cost/sqrt(T ln 1/e)",
               "delivered", "latency/T"});
  std::vector<double> ts, costs;

  for (Cost budget = Cost{1} << 10; budget <= Cost{1} << 18; budget <<= 2) {
    auto samples =
        run_trials<Sample>(256, 77000 + budget, [&](std::size_t, Rng& rng) {
          FullDuelBlocker adv(Budget(budget), q);
          const auto r = run_one_to_one(params, adv, rng);
          return Sample{static_cast<double>(r.max_cost()),
                        static_cast<double>(r.adversary_cost),
                        static_cast<double>(r.latency), r.delivered};
        });

    std::vector<double> cost_v, t_v, lat_v;
    int delivered = 0;
    for (const auto& s : samples) {
      cost_v.push_back(s.cost);
      t_v.push_back(s.t);
      lat_v.push_back(s.latency);
      delivered += s.delivered;
    }
    const Summary cost_s = summarize(cost_v);
    const double t_mean = bench::mean_of(t_v);
    const double lat_mean = bench::mean_of(lat_v);
    const double norm = cost_s.mean / std::sqrt(std::max(1.0, t_mean) * ln8e);

    ts.push_back(t_mean);
    costs.push_back(cost_s.mean);
    table.add_row({Table::num(static_cast<double>(budget)),
                   Table::num(t_mean), Table::num(cost_s.mean),
                   Table::num(cost_s.ci95_halfwidth(), 2), Table::num(norm, 3),
                   Table::num(static_cast<double>(delivered) /
                                  static_cast<double>(samples.size()),
                              3),
                   Table::num(lat_mean / std::max(1.0, t_mean), 3)});
  }

  table.print(std::cout);
  std::cout << '\n';
  bench::print_fit("cost vs T", fit_power_law(ts, costs), 0.5);
  std::cout << "Expected: normalised column ~constant, delivered >= "
            << 1.0 - eps << ", latency linear in T.\n";
}

}  // namespace
}  // namespace rcb

int main() {
  rcb::run();
  return 0;
}
