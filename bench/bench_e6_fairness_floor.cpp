// E6 — Theorem 4 + the section-3.1 halving argument: fair algorithms pay
// Omega(sqrt(T/n)) per node; rules that concentrate the burden lose the
// 1/sqrt(n) advantage on their *max* cost.
//
// Sweeps n at fixed adversary budget for three rules — the Fig. 2 helper
// rule, the naive halt-on-count strawman, and the sqrt(T) "extension of
// Theorem 1" baseline — reporting mean/max per-node cost, the
// normalisation max * sqrt(n/T), and a Mann-Whitney significance check of
// the helper-vs-naive gap.
#include <iostream>

#include "bench_util.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/protocols/naive_broadcast.hpp"
#include "rcb/protocols/sqrt_broadcast.hpp"
#include "rcb/runtime/montecarlo.hpp"
#include "rcb/stats/rank_test.hpp"

namespace rcb {
namespace {

struct Sample {
  double mean_cost = 0, max_cost = 0, t = 0;
};

template <typename RunFn>
Sample avg(std::uint32_t n, std::uint64_t seed, RunFn run_fn) {
  auto samples = run_trials<Sample>(14, seed, [&](std::size_t, Rng& rng) {
    const BroadcastNResult r = run_fn(n, rng);
    return Sample{r.mean_cost, static_cast<double>(r.max_cost),
                  static_cast<double>(r.adversary_cost)};
  });
  Sample acc;
  for (const auto& s : samples) {
    acc.mean_cost += s.mean_cost;
    acc.max_cost += s.max_cost;
    acc.t += s.t;
  }
  const auto count = static_cast<double>(samples.size());
  acc.mean_cost /= count;
  acc.max_cost /= count;
  acc.t /= count;
  return acc;
}

void run() {
  const BroadcastNParams params = BroadcastNParams::sim();
  const Cost budget = Cost{1} << 17;

  bench::print_header(
      "E6", "Theorem 4 — fair cost floor sqrt(T/n); helper rule vs naive");
  std::cout << "SuffixBlocker(q=0.9, budget 2^17), 14 trials per point\n\n";

  Table table({"n", "rule", "mean cost", "max cost", "max*sqrt(n/T)"});
  std::vector<double> ns, helper_max, naive_max, sqrt_max;

  for (std::uint32_t n : {4u, 8u, 16u, 32u, 64u}) {
    const Sample h = avg(n, 90000 + n, [&](std::uint32_t nn, Rng& rng) {
      SuffixBlockerAdversary adv(Budget(budget), 0.9);
      return run_broadcast_n(nn, params, adv, rng);
    });
    const Sample v = avg(n, 90000 + n, [&](std::uint32_t nn, Rng& rng) {
      SuffixBlockerAdversary adv(Budget(budget), 0.9);
      return run_naive_broadcast(nn, params, adv, rng);
    });
    // The "extension of Theorem 1" baseline the paper mentions before
    // Theorem 3: all receivers play Bob; the sender always pays ~sqrt(T).
    const Sample s = avg(n, 90000 + n, [&](std::uint32_t nn, Rng& rng) {
      SuffixBlockerAdversary adv(Budget(budget), 0.9);
      return run_sqrt_broadcast(nn, OneToOneParams::sim(0.02), adv, rng);
    });
    ns.push_back(n);
    helper_max.push_back(h.max_cost);
    naive_max.push_back(v.max_cost);
    sqrt_max.push_back(s.max_cost);
    table.add_row({Table::num(n), "helper (Fig.2)", Table::num(h.mean_cost),
                   Table::num(h.max_cost),
                   Table::num(h.max_cost * std::sqrt(n / std::max(1.0, h.t)),
                              3)});
    table.add_row({Table::num(n), "naive halt-on-count",
                   Table::num(v.mean_cost), Table::num(v.max_cost),
                   Table::num(v.max_cost * std::sqrt(n / std::max(1.0, v.t)),
                              3)});
    table.add_row({Table::num(n), "sqrt-ext of Thm 1", Table::num(s.mean_cost),
                   Table::num(s.max_cost),
                   Table::num(s.max_cost * std::sqrt(n / std::max(1.0, s.t)),
                              3)});
  }

  table.print(std::cout);

  // Distribution-free significance of the helper-vs-naive max-cost gap at
  // n = 64 (heavy-tailed costs make means alone unreliable).
  {
    const std::uint32_t n = 64;
    auto helper_runs =
        run_trials<double>(30, 90900, [&](std::size_t, Rng& rng) {
          SuffixBlockerAdversary adv(Budget(budget), 0.9);
          return static_cast<double>(
              run_broadcast_n(n, params, adv, rng).max_cost);
        });
    auto naive_runs =
        run_trials<double>(30, 90900, [&](std::size_t, Rng& rng) {
          SuffixBlockerAdversary adv(Budget(budget), 0.9);
          return static_cast<double>(
              run_naive_broadcast(n, params, adv, rng).max_cost);
        });
    const MannWhitneyResult mw = mann_whitney(naive_runs, helper_runs);
    std::printf(
        "\nMann-Whitney (naive vs helper max cost, n=64, 30 trials): "
        "P(naive > helper) = %.3f, p = %.2g\n",
        mw.effect, mw.p_value);
  }

  std::cout << '\n';
  bench::print_fit("helper   max cost vs n", fit_power_law(ns, helper_max),
                   -0.5);
  bench::print_fit("naive    max cost vs n", fit_power_law(ns, naive_max), 0.0);
  bench::print_fit("sqrt-ext max cost vs n", fit_power_law(ns, sqrt_max), 0.0);
  std::cout << "Expected: the helper rule's max cost falls with n (toward "
               "the sqrt(T/n) floor); the naive rule and the Theorem-1 "
               "extension leave some node paying ~sqrt(T) regardless of "
               "n.\n";
}

}  // namespace
}  // namespace rcb

int main() {
  rcb::run();
  return 0;
}
