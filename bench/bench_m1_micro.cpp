// M1 — simulator micro-benchmarks (google-benchmark).
//
// Establishes the raw throughput of the RNG, the sparse slot sampler, and
// both channel engines, and quantifies the event-driven engine's advantage
// over the slotwise engine (the ablation DESIGN.md §4 calls out).
#include <benchmark/benchmark.h>

#include <vector>

#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/rng/sampling.hpp"
#include "rcb/sim/repetition_engine.hpp"
#include "rcb/sim/slot_engine.hpp"

namespace rcb {
namespace {

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_RngUniformDouble(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform_double());
}
BENCHMARK(BM_RngUniformDouble);

void BM_SparseSampler(benchmark::State& state) {
  const auto slots = static_cast<SlotCount>(state.range(0));
  const double p = 1e-3;
  Rng rng(3);
  std::vector<SlotIndex> out;
  for (auto _ : state) {
    sample_bernoulli_slots(slots, p, rng, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_SparseSampler)->Range(1 << 10, 1 << 20);

std::vector<NodeAction> make_actions(int n, double total_rate) {
  std::vector<NodeAction> actions;
  for (int u = 0; u < n; ++u) {
    actions.push_back(NodeAction{total_rate / n, Payload::kMessage,
                                 2.0 * total_rate / n});
  }
  return actions;
}

void BM_BatchEngine(benchmark::State& state) {
  const auto slots = static_cast<SlotCount>(state.range(0));
  const int n = 32;
  // Constant expected activity per phase, as in the protocols.
  const auto actions = make_actions(n, 64.0 / static_cast<double>(slots));
  Rng rng(4);
  const JamSchedule jam = JamSchedule::blocking_fraction(slots, 0.5);
  for (auto _ : state) {
    auto r = run_repetition(slots, actions, jam, rng);
    benchmark::DoNotOptimize(r.obs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_BatchEngine)->Range(1 << 10, 1 << 20);

void BM_SlotwiseEngine(benchmark::State& state) {
  const auto slots = static_cast<SlotCount>(state.range(0));
  const int n = 32;
  const auto actions = make_actions(n, 64.0 / static_cast<double>(slots));

  class Passive final : public SlotAdversary {
   public:
    bool jam(SlotIndex, std::span<const SlotActivity>) override {
      return false;
    }
  } adversary;

  Rng rng(5);
  for (auto _ : state) {
    auto r = run_repetition_slotwise(slots, actions, adversary, rng);
    benchmark::DoNotOptimize(r.rep.obs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_SlotwiseEngine)->Range(1 << 10, 1 << 16);

void BM_BroadcastNoJam(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const BroadcastNParams params = BroadcastNParams::sim();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    NoJamAdversary adv;
    Rng rng(seed++);
    auto r = run_broadcast_n(n, params, adv, rng);
    benchmark::DoNotOptimize(r.max_cost);
  }
}
BENCHMARK(BM_BroadcastNoJam)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace rcb

BENCHMARK_MAIN();
