// M1 — simulator micro-benchmarks (google-benchmark).
//
// Establishes the raw throughput of the RNG, the sparse slot sampler, and
// the channel engines, and quantifies the event-driven engines' advantage
// over the dense per-slot reference (the ablation DESIGN.md §4 calls out).
//
// Besides the usual console table, the run is captured into BENCH_m1.json
// (override with --rcb_out=<path>) in the bench_util.hpp schema so that
// tools/bench_compare can diff two runs; tools/ci.sh uses this to gate perf
// against bench/baselines/BENCH_m1_baseline.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/rng/sampling.hpp"
#include "rcb/runtime/thread_pool.hpp"
#include "rcb/sim/repetition_engine.hpp"
#include "rcb/sim/slot_engine.hpp"

namespace rcb {
namespace {

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_RngUniformDouble(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform_double());
}
BENCHMARK(BM_RngUniformDouble);

void BM_SparseSampler(benchmark::State& state) {
  const auto slots = static_cast<SlotCount>(state.range(0));
  const double p = 1e-3;
  Rng rng(3);
  std::vector<SlotIndex> out;
  for (auto _ : state) {
    sample_bernoulli_slots(slots, p, rng, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["slots_per_sec"] = benchmark::Counter(
      static_cast<double>(slots) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SparseSampler)->Range(1 << 10, 1 << 20);

std::vector<NodeAction> make_actions(int n, double total_rate) {
  std::vector<NodeAction> actions;
  for (int u = 0; u < n; ++u) {
    actions.push_back(NodeAction{total_rate / n, Payload::kMessage,
                                 2.0 * total_rate / n});
  }
  return actions;
}

/// Never jams, needs no history (the cheapest adaptive adversary).
class Passive final : public SlotAdversary {
 public:
  bool jam(SlotIndex, std::span<const SlotActivity>) override { return false; }
  bool jam_run(SlotIndex begin, SlotIndex end,
               std::span<const SlotActivity>, JamRunSink& sink) override {
    sink.append(end - begin, false);
    return true;
  }
  SlotCount history_window() const override { return 0; }
};

/// Jams iff the previous slot carried a transmission (1-slot lookback).
class Reactive final : public SlotAdversary {
 public:
  bool jam(SlotIndex, std::span<const SlotActivity> history) override {
    return !history.empty() && history.back().senders > 0;
  }
  bool jam_run(SlotIndex begin, SlotIndex end,
               std::span<const SlotActivity> history,
               JamRunSink& sink) override {
    // Only the run's first slot can see a transmission in its lookback.
    const bool first = !history.empty() && history.back().senders > 0;
    sink.append(1, first);
    sink.append(end - begin - 1, false);
    return true;
  }
  SlotCount history_window() const override { return 1; }
};

void set_engine_counters(benchmark::State& state, SlotCount slots,
                         double total_events) {
  state.counters["slots_per_sec"] = benchmark::Counter(
      static_cast<double>(slots) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["events_per_sec"] =
      benchmark::Counter(total_events, benchmark::Counter::kIsRate);
}

void BM_BatchEngine(benchmark::State& state) {
  const auto slots = static_cast<SlotCount>(state.range(0));
  const int n = 32;
  // Constant expected activity per phase, as in the protocols.
  const auto actions = make_actions(n, 64.0 / static_cast<double>(slots));
  Rng rng(4);
  const JamSchedule jam = JamSchedule::blocking_fraction(slots, 0.5);
  double events = 0;
  for (auto _ : state) {
    auto r = run_repetition(slots, actions, jam, rng);
    for (const auto& o : r.obs) {
      events += static_cast<double>(o.sends + o.listens);
    }
    benchmark::DoNotOptimize(r.obs.data());
  }
  set_engine_counters(state, slots, events);
}
BENCHMARK(BM_BatchEngine)->Range(1 << 10, 1 << 20);

template <typename Adversary>
void BM_SlotwiseEngine(benchmark::State& state) {
  const auto slots = static_cast<SlotCount>(state.range(0));
  const int n = 32;
  const auto actions = make_actions(n, 64.0 / static_cast<double>(slots));
  Adversary adversary;
  Rng rng(5);
  double events = 0;
  for (auto _ : state) {
    auto r = run_repetition_slotwise(slots, actions, adversary, rng);
    events += static_cast<double>(r.event_count);
    benchmark::DoNotOptimize(r.rep.obs.data());
  }
  set_engine_counters(state, slots, events);
}
BENCHMARK(BM_SlotwiseEngine<Passive>)->Range(1 << 10, 1 << 20);
BENCHMARK(BM_SlotwiseEngine<Reactive>)->Range(1 << 10, 1 << 20);

void BM_SlotwiseEngineDense(benchmark::State& state) {
  const auto slots = static_cast<SlotCount>(state.range(0));
  const int n = 32;
  const auto actions = make_actions(n, 64.0 / static_cast<double>(slots));
  Passive adversary;
  Rng rng(6);
  double events = 0;
  for (auto _ : state) {
    auto r = run_repetition_slotwise_dense(slots, actions, adversary, rng);
    events += static_cast<double>(r.event_count);
    benchmark::DoNotOptimize(r.rep.obs.data());
  }
  set_engine_counters(state, slots, events);
}
BENCHMARK(BM_SlotwiseEngineDense)->Range(1 << 10, 1 << 16);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  // Pure dispatch overhead: 1024 single-iteration chunks whose bodies do
  // almost nothing, so the submit/steal/wake path dominates.  This is the
  // cost the Task small-buffer path (vs one std::function heap allocation
  // per chunk) is meant to shrink.
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    parallel_for_chunks(
        pool, 0, 1024,
        [&](std::size_t lo, std::size_t) { sink.fetch_add(lo + 1); }, 1);
  }
  benchmark::DoNotOptimize(sink.load());
  state.counters["events_per_sec"] = benchmark::Counter(
      1024.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(4);

void BM_BroadcastNoJam(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const BroadcastNParams params = BroadcastNParams::sim();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    NoJamAdversary adv;
    Rng rng(seed++);
    auto r = run_broadcast_n(n, params, adv, rng);
    benchmark::DoNotOptimize(r.max_cost);
  }
}
BENCHMARK(BM_BroadcastNoJam)->Arg(8)->Arg(32)->Arg(128);

/// Console reporter that additionally captures per-iteration runs so main()
/// can convert them into the bench_util.hpp JSON schema.
class CaptureReporter final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& r : reports) {
      if (r.run_type == Run::RT_Iteration && !r.error_occurred) {
        runs_.push_back(r);
      }
    }
  }
  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

double counter_or_zero(const benchmark::UserCounters& counters,
                       const char* name) {
  const auto it = counters.find(name);
  return it == counters.end() ? 0.0 : static_cast<double>(it->second);
}

}  // namespace
}  // namespace rcb

int main(int argc, char** argv) {
  // Strip our own flag before handing argv to google-benchmark.
  std::string out_path = "BENCH_m1.json";
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    constexpr const char kOutFlag[] = "--rcb_out=";
    if (std::strncmp(argv[i], kOutFlag, sizeof kOutFlag - 1) == 0) {
      out_path = argv[i] + sizeof kOutFlag - 1;
    } else {
      args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }

  rcb::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  rcb::bench::BenchReport report("m1");
  for (const auto& r : reporter.runs()) {
    rcb::bench::BenchEntry e;
    e.name = r.benchmark_name();
    const double iters =
        r.iterations > 0 ? static_cast<double>(r.iterations) : 1.0;
    e.wall_ms = r.real_accumulated_time / iters * 1e3;
    e.slots_per_sec = rcb::counter_or_zero(r.counters, "slots_per_sec");
    e.events_per_sec = rcb::counter_or_zero(r.counters, "events_per_sec");
    report.add(std::move(e));
  }
  return report.write_json(out_path) ? 0 : 1;
}
