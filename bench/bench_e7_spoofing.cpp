// E7 — Theorem 5: spoofing power changes the complexity of 1-to-1
// communication.
//
// Scenario (ii) of the proof: the adversary takes Bob's place and simulates
// an uninformed Bob's nacks at the protocol rate.  The Fig. 1 protocol
// trusts nacks, so Alice never halts and her cost tracks the adversary's
// ~linearly (exponent -> 1): its sqrt(T) guarantee only holds when Bob can
// be authenticated.  The KSY baseline never trusts unauthenticated traffic
// and keeps its T^(phi-1) = T^0.618 behaviour — matching the Theorem 5
// lower bound, which KSY achieves optimally.
//
// Fig. 1 runs are truncated at increasing epoch caps (the spoofer never
// stops, so the natural run is infinite); each cap yields one (T, cost)
// point.  KSY is swept by jamming budget as in E2.
#include <iostream>

#include "bench_util.hpp"
#include "rcb/adversary/spoofing.hpp"
#include "rcb/protocols/ksy.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/runtime/montecarlo.hpp"

namespace rcb {
namespace {

void run() {
  const double eps = 0.01;
  bench::print_header(
      "E7", "Theorem 5 — spoofing costs Omega(T^(phi-1)); Fig.1 degrades to "
            "~T, KSY stays at ~T^0.618");

  std::cout << "\n(a) Fig.1 vs nack spoofer (scenario (ii)), 128 trials per "
               "epoch cap\n\n";
  Table ta({"epoch cap", "T = spoofer cost", "Alice cost", "Alice/T",
            "halted on own"});
  std::vector<double> ts, alices;
  const OneToOneParams base = OneToOneParams::sim(eps);
  for (std::uint32_t extra = 3; extra <= 9; extra += 2) {
    OneToOneParams capped = base;
    capped.max_epoch = base.first_epoch() + extra;
    auto samples = run_trials<std::tuple<double, double, bool>>(
        128, 91000 + extra, [&](std::size_t, Rng& rng) {
          SpoofingNackAdversary adv(Budget::unlimited());
          const auto r = run_one_to_one(capped, adv, rng);
          return std::make_tuple(static_cast<double>(r.adversary_cost),
                                 static_cast<double>(r.alice_cost),
                                 !r.hit_epoch_cap);
        });
    double t = 0, alice = 0;
    int halted = 0;
    for (const auto& [a, b, c] : samples) {
      t += a;
      alice += b;
      halted += c;
    }
    const auto count = static_cast<double>(samples.size());
    t /= count;
    alice /= count;
    ts.push_back(t);
    alices.push_back(alice);
    ta.add_row({Table::num(capped.max_epoch), Table::num(t),
                Table::num(alice), Table::num(alice / std::max(1.0, t), 3),
                Table::num(halted / count, 3)});
  }
  ta.print(std::cout);
  std::cout << '\n';
  bench::print_fit("(a) Fig.1 Alice cost vs spoofer cost",
                   fit_power_law(ts, alices), 1.0);

  std::cout << "\n(b) KSY under budget-matched blocking (spoof-immune), "
               "128 trials per budget\n\n";
  Table tb({"budget", "T (mean)", "max cost", "cost/T^0.618"});
  std::vector<double> kts, kcosts;
  for (Cost budget = Cost{1} << 10; budget <= Cost{1} << 18; budget <<= 2) {
    auto samples = run_trials<std::pair<double, double>>(
        128, 92000 + budget, [&](std::size_t, Rng& rng) {
          KsyParams params;
          BothViewsSuffixBlocker adv(Budget(budget), 0.6);
          const auto r = run_ksy(params, adv, rng);
          return std::make_pair(static_cast<double>(r.adversary_cost),
                                static_cast<double>(r.max_cost()));
        });
    double t = 0, cost = 0;
    for (const auto& [a, b] : samples) {
      t += a;
      cost += b;
    }
    const auto count = static_cast<double>(samples.size());
    t /= count;
    cost /= count;
    kts.push_back(t);
    kcosts.push_back(cost);
    tb.add_row({Table::num(static_cast<double>(budget)), Table::num(t),
                Table::num(cost),
                Table::num(cost / std::pow(std::max(1.0, t), 0.618), 3)});
  }
  tb.print(std::cout);
  std::cout << '\n';
  bench::print_fit("(b) KSY max cost vs T", fit_power_law(kts, kcosts),
                   0.618);
  std::cout << "Expected: (a) exponent ~1 — no resource-competitive "
               "advantage under spoofing; (b) exponent ~0.62 — the Theorem "
               "5 optimum.\n";
}

}  // namespace
}  // namespace rcb

int main() {
  rcb::run();
  return 0;
}
