// M2 — engine scaling sweep (batch vs event-driven slotwise vs dense).
//
// Sweeps fleet size n and phase length (slots) across the three channel
// engines under sparse, protocol-like activity (O(1) expected events per
// node per phase), with and without imperfect CCA and an active fault
// plan.  The point: the batch engine and the rewritten slotwise engine are
// O(slots + events), the dense reference is O(slots * nodes), so the
// event-driven paths sustain orders of magnitude more simulated slots per
// second at scale — this bench pins the number (the ISSUE-2 acceptance bar
// is >= 5x slotwise-event over dense at n=1024, slots=2^20).
//
// Emits BENCH_m2.json (bench_util.hpp schema) for tools/bench_compare.
// Default grid runs in tens of seconds; --full expands to n=4096 and
// slots=2^22 for the event-driven engines.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "rcb/cli/flags.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/runtime/coordinator.hpp"
#include "rcb/runtime/shard.hpp"
#include "rcb/runtime/supervisor.hpp"
#include "rcb/runtime/transport_socket.hpp"
#include "rcb/adversary/budget.hpp"
#include "rcb/adversary/mc_strategies.hpp"
#include "rcb/sim/channel_plan.hpp"
#include "rcb/sim/mc_slot_engine.hpp"
#include "rcb/sim/repetition_engine.hpp"
#include "rcb/sim/slot_engine.hpp"

namespace rcb {
namespace {

/// Jams iff the previous slot carried a transmission — a representative
/// reactive strategy with a 1-slot lookback window.
class Reactive final : public SlotAdversary {
 public:
  bool jam(SlotIndex, std::span<const SlotActivity> history) override {
    return !history.empty() && history.back().senders > 0;
  }
  bool jam_run(SlotIndex begin, SlotIndex end,
               std::span<const SlotActivity> history,
               JamRunSink& sink) override {
    // Only the run's first slot can see a transmission in its lookback;
    // every later slot looks back at a silent run slot.
    const bool first = !history.empty() && history.back().senders > 0;
    sink.append(1, first);
    sink.append(end - begin - 1, false);
    return true;
  }
  SlotCount history_window() const override { return 1; }
};

/// Sparse protocol-like activity: ~2 sends and ~2 listens expected per node
/// per phase, independent of phase length.
std::vector<NodeAction> sparse_actions(std::uint32_t n, SlotCount slots) {
  const double p = 2.0 / static_cast<double>(slots);
  std::vector<NodeAction> actions(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    actions[u] = NodeAction{p, u == 0 ? Payload::kMessage : Payload::kNoise, p};
  }
  return actions;
}

struct Variant {
  const char* name;
  CcaModel cca;
  bool faults;
};

FaultConfig fault_config() {
  FaultConfig cfg;
  cfg.seed = 42;
  cfg.crash_rate = 1e-5;
  cfg.restart_rate = 1e-4;
  cfg.loss_rate = 0.05;
  cfg.corruption_rate = 0.02;
  cfg.clock_skew_rate = 0.05;
  return cfg;
}

struct Measurement {
  double wall_ms = 0;        // per run
  double slots_per_sec = 0;
  double events_per_sec = 0;
  int reps = 0;
};

/// Times `run(rep)` (which returns the run's event count) until `min_sec`
/// of wall time or `max_reps` runs have accumulated.
template <typename RunFn>
Measurement measure(RunFn&& run, double min_sec, int max_reps,
                    SlotCount slots) {
  using Clock = std::chrono::steady_clock;
  double total_sec = 0;
  double total_events = 0;
  int reps = 0;
  while (reps < max_reps && (reps == 0 || total_sec < min_sec)) {
    const auto t0 = Clock::now();
    total_events += static_cast<double>(run(reps));
    const auto t1 = Clock::now();
    total_sec += std::chrono::duration<double>(t1 - t0).count();
    ++reps;
  }
  Measurement m;
  m.reps = reps;
  m.wall_ms = total_sec / reps * 1e3;
  m.slots_per_sec = static_cast<double>(slots) * reps / total_sec;
  m.events_per_sec = total_events / total_sec;
  return m;
}

void run_bench(bool full, const std::string& out_path, std::uint64_t seed) {
  bench::print_header(
      "M2", "engine scaling: batch vs event slotwise vs dense reference");

  std::vector<std::uint32_t> ns = {32, 1024};
  std::vector<SlotCount> slot_grid = {SlotCount{1} << 14, SlotCount{1} << 17,
                                      SlotCount{1} << 20};
  if (full) {
    ns = {32, 256, 1024, 4096};
    slot_grid = {SlotCount{1} << 14, SlotCount{1} << 17, SlotCount{1} << 20,
                 SlotCount{1} << 22};
  }
  const Variant variants[] = {
      {"base", CcaModel{}, false},
      {"cca", CcaModel{0.05, 0.05}, false},
      {"faults", CcaModel{}, true},
  };
  // The dense engine costs O(slots * nodes); cap the product so the sweep
  // stays in the tens of seconds (enough to include the acceptance cell
  // n=1024, slots=2^20) and skip it for the fault/CCA variants — the
  // engine-semantics crosscheck under those lives in the tests.
  const std::uint64_t dense_cap = std::uint64_t{1} << 30;

  bench::BenchReport report("m2");
  Table table({"engine", "variant", "n", "slots", "reps", "wall ms",
               "slots/sec", "events/sec"});

  double event_at_accept = 0, dense_at_accept = 0;
  const std::uint32_t accept_n = 1024;
  const SlotCount accept_slots = SlotCount{1} << 20;

  std::uint64_t cell = 0;
  for (std::uint32_t n : ns) {
    for (SlotCount slots : slot_grid) {
      const auto actions = sparse_actions(n, slots);
      const JamSchedule jam = JamSchedule::blocking_fraction(slots, 0.5);
      for (const Variant& v : variants) {
        auto add = [&](const char* engine, const Measurement& m) {
          bench::BenchEntry e;
          e.name = std::string("m2/") + engine + "/" + v.name;
          e.config = {{"n", static_cast<double>(n)},
                      {"slots", static_cast<double>(slots)}};
          e.wall_ms = m.wall_ms;
          e.slots_per_sec = m.slots_per_sec;
          e.events_per_sec = m.events_per_sec;
          report.add(std::move(e));
          table.add_row({engine, v.name, Table::num(n), Table::num(slots),
                         Table::num(m.reps), Table::num(m.wall_ms, 3),
                         Table::num(m.slots_per_sec),
                         Table::num(m.events_per_sec)});
        };
        ++cell;

        {
          FaultPlan faults(fault_config());
          const auto m = measure(
              [&](int rep) {
                Rng rng = Rng::stream(seed, cell * 1000 + rep);
                const auto r =
                    run_repetition(slots, actions, jam, rng, nullptr, v.cca,
                                   v.faults ? &faults : nullptr);
                std::uint64_t events = 0;
                for (const auto& o : r.obs) events += o.sends + o.listens;
                return events;
              },
              0.2, 1000, slots);
          add("batch", m);
        }
        {
          FaultPlan faults(fault_config());
          Reactive adversary;
          const auto m = measure(
              [&](int rep) {
                Rng rng = Rng::stream(seed, cell * 1000 + rep);
                const auto r = run_repetition_slotwise(
                    slots, actions, adversary, rng, v.cca,
                    v.faults ? &faults : nullptr);
                return r.event_count;
              },
              0.2, 1000, slots);
          add("slotwise_event", m);
          if (n == accept_n && slots == accept_slots &&
              std::string(v.name) == "base") {
            event_at_accept = m.slots_per_sec;
          }
        }
        // The acceptance cell is always measured (even if the cap shrinks)
        // so the event-vs-dense speedup entry below never goes missing.
        const bool dense_this_cell =
            std::string(v.name) == "base" &&
            (static_cast<std::uint64_t>(n) * slots <= dense_cap ||
             (n == accept_n && slots == accept_slots));
        if (dense_this_cell) {
          FaultPlan faults(fault_config());
          Reactive adversary;
          const auto m = measure(
              [&](int rep) {
                Rng rng = Rng::stream(seed, cell * 1000 + rep);
                const auto r = run_repetition_slotwise_dense(
                    slots, actions, adversary, rng, v.cca, nullptr);
                return r.event_count;
              },
              0.1, 4, slots);
          add("slotwise_dense", m);
          if (n == accept_n && slots == accept_slots) {
            dense_at_accept = m.slots_per_sec;
          }
        }
      }
    }
  }

  // Multi-channel engine scaling at the acceptance cell: the mc event path
  // with random hop sequences and a sweeping jammer, for C = 1/2/4/64.
  // Eventless runs are answered in bulk via jam_run_masks, so throughput
  // should be near-flat in C under sparse activity (C=64 pins the full-mask
  // group-resolution bound); C=1 doubles as a live measurement of the
  // degeneration path's overhead vs the single-channel slotwise_event rows
  // above.  The mc event-vs-dense speedup at C=1 is emitted as
  // m2/channels/speedup for the bench_compare hard gate.
  {
    const auto actions = sparse_actions(accept_n, accept_slots);
    double mc_event_at_accept = 0;
    for (const std::uint32_t c : {1u, 2u, 4u, 64u}) {
      std::vector<ChannelHop> hops(accept_n);
      Rng hop_rng = Rng::stream(seed, 9000 + c);
      for (std::uint32_t u = 0; u < accept_n; ++u) {
        hops[u] =
            ChannelHop{static_cast<std::uint32_t>(hop_rng.uniform_u64(c)),
                       static_cast<std::uint32_t>(hop_rng.uniform_u64(c))};
      }
      const ChannelPlan plan{c, {hops.data(), hops.size()}};
      const auto m = measure(
          [&](int rep) {
            Rng rng = Rng::stream(seed, 9100 + c * 100 +
                                            static_cast<std::uint64_t>(rep));
            McSweepJammer adversary(Budget(accept_slots / 2), 64);
            const auto r = run_repetition_slotwise_mc(accept_slots, actions,
                                                      plan, adversary, rng);
            return r.event_count;
          },
          0.2, 1000, accept_slots);
      bench::BenchEntry e;
      e.name = "m2/channels/scaling";
      e.config = {{"n", static_cast<double>(accept_n)},
                  {"slots", static_cast<double>(accept_slots)},
                  {"channels", static_cast<double>(c)}};
      e.wall_ms = m.wall_ms;
      e.slots_per_sec = m.slots_per_sec;
      e.events_per_sec = m.events_per_sec;
      report.add(std::move(e));
      table.add_row({"mc_event", "C=" + std::to_string(c),
                     Table::num(accept_n), Table::num(accept_slots),
                     Table::num(m.reps), Table::num(m.wall_ms, 3),
                     Table::num(m.slots_per_sec),
                     Table::num(m.events_per_sec)});
      if (c == 1) mc_event_at_accept = m.slots_per_sec;
    }
    // mc event vs mc dense at the acceptance cell (C=1, same jammer and
    // streams).  The dense reference costs O(slots * nodes) — one ~2^30-work
    // rep is plenty for a ratio gate.
    {
      const std::uint32_t c = 1;
      std::vector<ChannelHop> hops(accept_n);
      Rng hop_rng = Rng::stream(seed, 9000 + c);
      for (std::uint32_t u = 0; u < accept_n; ++u) {
        hops[u] =
            ChannelHop{static_cast<std::uint32_t>(hop_rng.uniform_u64(c)),
                       static_cast<std::uint32_t>(hop_rng.uniform_u64(c))};
      }
      const ChannelPlan plan{c, {hops.data(), hops.size()}};
      const auto m = measure(
          [&](int rep) {
            Rng rng = Rng::stream(seed, 9100 + c * 100 +
                                            static_cast<std::uint64_t>(rep));
            McSweepJammer adversary(Budget(accept_slots / 2), 64);
            const auto r = run_repetition_slotwise_mc_dense(
                accept_slots, actions, plan, adversary, rng);
            return r.event_count;
          },
          0.1, 2, accept_slots);
      bench::BenchEntry e;
      e.name = "m2/channels/dense";
      e.config = {{"n", static_cast<double>(accept_n)},
                  {"slots", static_cast<double>(accept_slots)},
                  {"channels", static_cast<double>(c)}};
      e.wall_ms = m.wall_ms;
      e.slots_per_sec = m.slots_per_sec;
      e.events_per_sec = m.events_per_sec;
      report.add(std::move(e));
      table.add_row({"mc_dense", "C=" + std::to_string(c),
                     Table::num(accept_n), Table::num(accept_slots),
                     Table::num(m.reps), Table::num(m.wall_ms, 3),
                     Table::num(m.slots_per_sec),
                     Table::num(m.events_per_sec)});
      if (m.slots_per_sec > 0 && mc_event_at_accept > 0) {
        bench::BenchEntry ratio;
        ratio.name = "m2/channels/speedup";
        ratio.config = {{"n", static_cast<double>(accept_n)},
                        {"slots", static_cast<double>(accept_slots)},
                        {"channels", static_cast<double>(c)}};
        ratio.slots_per_sec = mc_event_at_accept / m.slots_per_sec;
        report.add(std::move(ratio));
        std::printf(
            "\nmulti-channel speedup (event vs dense) at n=%u, slots=2^20, "
            "C=1: %.1fx (acceptance bar: >= 5x)\n",
            accept_n, mc_event_at_accept / m.slots_per_sec);
      }
    }
  }

  // Supervisor checkpointing overhead: one full supervised sweep with the
  // journal off vs on (fresh checkpoint per run: manifest write + one
  // flushed journal append per trial).  The overhead bound keeps the
  // "always checkpoint long sweeps" recommendation honest.
  {
    Scenario s;
    s.protocol = "one_to_one";
    s.adversary = "full_duel";
    s.budget = 1024;
    s.trials = full ? 2048 : 512;
    s.seed = seed;
    const std::string ckpt_dir =
        (std::filesystem::temp_directory_path() / "rcb_bench_m2_ckpt")
            .string();
    const auto sweep_once = [&](bool journal) {
      SupervisorOptions sup;
      if (journal) {
        std::filesystem::remove_all(ckpt_dir);
        sup.checkpoint_dir = ckpt_dir;
      }
      const SweepResult r = run_supervised_sweep(s, sup);
      return static_cast<std::uint64_t>(r.records.size());
    };
    const auto add_sweep = [&](const char* name, const Measurement& m) {
      bench::BenchEntry e;
      e.name = std::string("m2/supervisor/") + name;
      e.config = {{"trials", static_cast<double>(s.trials)}};
      e.wall_ms = m.wall_ms;
      e.events_per_sec = m.events_per_sec;  // completed trials per second
      report.add(std::move(e));
      table.add_row({"supervisor", name, Table::num(1),
                     Table::num(s.trials), Table::num(m.reps),
                     Table::num(m.wall_ms, 3), Table::num(0),
                     Table::num(m.events_per_sec)});
    };
    const Measurement off =
        measure([&](int) { return sweep_once(false); }, 0.3, 8, 0);
    add_sweep("journal_off", off);
    const Measurement on =
        measure([&](int) { return sweep_once(true); }, 0.3, 8, 0);
    add_sweep("journal_on", on);
    std::filesystem::remove_all(ckpt_dir);
    std::printf(
        "\ncheckpoint journal overhead: %.3f ms -> %.3f ms per %zu-trial "
        "sweep (%+.1f%%)\n",
        off.wall_ms, on.wall_ms, s.trials,
        (on.wall_ms / off.wall_ms - 1.0) * 100.0);
  }

  // Cross-point pipelining: an 8-point heavy-tailed budget sweep (the last
  // point costs ~2^7x the first), run barrier-per-point vs flattened onto
  // the pool (run_supervised_sweep_points).  The ISSUE-5 acceptance bar is
  // >= 1.5x pipelined over sequential on an 8-core machine; on fewer cores
  // the pipelined path must simply not regress.
  {
    std::vector<SweepPoint> points;
    for (int i = 0; i < 8; ++i) {
      Scenario s;
      s.protocol = "one_to_one";
      s.adversary = "full_duel";
      s.budget = std::uint64_t{1} << (7 + i);
      s.trials = full ? 64 : 16;
      s.seed = seed + static_cast<std::uint64_t>(i) * 1000003;
      points.push_back(SweepPoint{s, ""});
    }
    const std::size_t trials_total =
        points.size() * static_cast<std::size_t>(points[0].scenario.trials);
    SupervisorOptions sup;
    const auto add_sched = [&](const char* name, const Measurement& m) {
      bench::BenchEntry e;
      e.name = std::string("m2/sweep/") + name;
      e.config = {{"points", static_cast<double>(points.size())},
                  {"trials", static_cast<double>(trials_total)}};
      e.wall_ms = m.wall_ms;
      e.events_per_sec = m.events_per_sec;  // completed trials per second
      report.add(std::move(e));
      table.add_row({"sweep_sched", name, Table::num(points.size()),
                     Table::num(trials_total), Table::num(m.reps),
                     Table::num(m.wall_ms, 3), Table::num(0),
                     Table::num(m.events_per_sec)});
    };
    const Measurement sequential = measure(
        [&](int) {
          std::uint64_t done = 0;
          for (const SweepPoint& p : points) {
            done += run_supervised_sweep(p.scenario, sup).records.size();
          }
          return done;
        },
        0.3, 6, 0);
    add_sched("sequential_points", sequential);
    const Measurement pipelined = measure(
        [&](int) {
          std::uint64_t done = 0;
          for (const SweepResult& r : run_supervised_sweep_points(points, sup)) {
            done += r.records.size();
          }
          return done;
        },
        0.3, 6, 0);
    add_sched("pipelined", pipelined);
    std::printf(
        "\nsweep scheduling: sequential %.3f ms -> pipelined %.3f ms for "
        "%zu points / %zu trials: %.2fx (acceptance bar: >= 1.5x on 8 "
        "cores; %zu pool threads here)\n",
        sequential.wall_ms, pipelined.wall_ms, points.size(), trials_total,
        sequential.wall_ms / pipelined.wall_ms,
        ThreadPool::global().num_threads());
  }

  // Journal commit strategy: N records through the synchronous per-record
  // flushed append vs the asynchronous group-commit writer (one flush per
  // drained batch).  Same bytes on disk either way (append_batch is framed
  // identically); the difference is pure flush amortisation.
  {
    const std::uint64_t n_records = full ? 16384 : 4096;
    Scenario s;
    s.protocol = "one_to_one";
    s.adversary = "full_duel";
    s.budget = 256;
    s.trials = n_records;
    s.seed = seed;
    const std::string dir =
        (std::filesystem::temp_directory_path() / "rcb_bench_m2_journal")
            .string();
    const auto make_record = [](std::uint64_t trial) {
      CheckpointRecord rec;
      rec.trial = trial;
      return rec;
    };
    const auto add_journal = [&](const char* name, const Measurement& m) {
      bench::BenchEntry e;
      e.name = std::string("m2/journal/") + name;
      e.config = {{"records", static_cast<double>(n_records)}};
      e.wall_ms = m.wall_ms;
      e.events_per_sec = m.events_per_sec;  // records per second
      report.add(std::move(e));
      table.add_row({"journal", name, Table::num(1), Table::num(n_records),
                     Table::num(m.reps), Table::num(m.wall_ms, 3),
                     Table::num(0), Table::num(m.events_per_sec)});
    };
    const Measurement per_record = measure(
        [&](int) {
          std::filesystem::remove_all(dir);
          CheckpointWriter w;
          if (!w.create(dir, s).empty()) return std::uint64_t{0};
          for (std::uint64_t t = 0; t < n_records; ++t) {
            if (!w.append(make_record(t)).empty()) return std::uint64_t{0};
          }
          w.sync();
          w.close();
          return n_records;
        },
        0.3, 8, 0);
    add_journal("per_record_flush", per_record);
    const Measurement group = measure(
        [&](int) {
          std::filesystem::remove_all(dir);
          CheckpointWriter w;
          if (!w.create(dir, s).empty()) return std::uint64_t{0};
          AsyncJournalWriter journal(std::move(w));
          for (std::uint64_t t = 0; t < n_records; ++t) {
            if (!journal.enqueue(make_record(t))) return std::uint64_t{0};
          }
          if (!journal.finish().empty()) return std::uint64_t{0};
          return n_records;
        },
        0.3, 8, 0);
    add_journal("group_commit", group);
    std::filesystem::remove_all(dir);
    std::printf(
        "journal commit: per-record flush %.3f ms -> group commit %.3f ms "
        "per %llu records (%.2fx)\n",
        per_record.wall_ms, group.wall_ms,
        static_cast<unsigned long long>(n_records),
        per_record.wall_ms / group.wall_ms);
  }

  // Shard-journal merge: folding S complete shard journals back into the
  // canonical per-point result is the serial tail of every multi-process
  // sweep, so it must stay cheap relative to the trials it summarises.
  // Setup (spec + journals on disk) happens once; only the merge is timed.
  {
    const std::uint64_t n_trials = full ? 16384 : 4096;
    const std::size_t n_shards = 8;
    Scenario s;
    s.protocol = "one_to_one";
    s.adversary = "full_duel";
    s.budget = 256;
    s.trials = n_trials;
    s.seed = seed;
    const std::string root =
        (std::filesystem::temp_directory_path() / "rcb_bench_m2_shards")
            .string();
    std::filesystem::remove_all(root);
    ShardSpec spec;
    spec.points = {s};
    spec.shards = make_shard_plan({n_trials}, n_shards);
    bool setup_ok = write_shard_spec(root, spec).empty();
    for (std::size_t i = 0; setup_ok && i < spec.shards.size(); ++i) {
      CheckpointWriter w;
      setup_ok = w.create(shard_dir(root, i), s).empty();
      std::vector<CheckpointRecord> batch;
      for (std::uint64_t t = spec.shards[i].begin;
           setup_ok && t < spec.shards[i].end; ++t) {
        CheckpointRecord rec;
        rec.trial = t;
        batch.push_back(rec);
      }
      setup_ok = setup_ok && w.append_batch(batch).empty();
      w.sync();
      w.close();
    }
    const Measurement m = measure(
        [&](int) {
          if (!setup_ok) return std::uint64_t{0};
          const ShardMergeResult r = merge_shard_journals(root, spec);
          return r.ok ? static_cast<std::uint64_t>(r.points[0].records.size())
                      : std::uint64_t{0};
        },
        0.3, 8, 0);
    bench::BenchEntry e;
    e.name = "m2/shard/merge";
    e.config = {{"shards", static_cast<double>(spec.shards.size())},
                {"trials", static_cast<double>(n_trials)}};
    e.wall_ms = m.wall_ms;
    e.events_per_sec = m.events_per_sec;  // merged trial records per second
    report.add(std::move(e));
    table.add_row({"shard", "merge", Table::num(spec.shards.size()),
                   Table::num(n_trials), Table::num(m.reps),
                   Table::num(m.wall_ms, 3), Table::num(0),
                   Table::num(m.events_per_sec)});
    std::filesystem::remove_all(root);
    std::printf(
        "shard merge: %.3f ms to fold %zu shard journals / %llu records "
        "(%.0f records/sec)\n",
        m.wall_ms, spec.shards.size(),
        static_cast<unsigned long long>(n_trials), m.events_per_sec);
  }

  // Worker dispatch overhead through the two coordinator transports: a
  // sweep of trivially small shards (one cheap trial each) makes the
  // per-shard dispatch cost the dominant term — fork/exec + pipe liveness
  // for the local transport vs the TCP assign/complete/ack round-trips of
  // the loopback socket control plane.  This bounds what moving a sweep
  // from --transport=local to --transport=socket costs in pure plumbing.
  {
    const std::size_t n_shards = 8;
    Scenario s;
    s.protocol = "one_to_one";
    s.adversary = "full_duel";
    s.budget = 64;
    s.trials = n_shards;  // one trial per shard
    s.seed = seed;
    ShardSpec spec;
    spec.worker_threads = 1;
    spec.heartbeat_interval_sec = 0.02;
    spec.points = {s};
    spec.shards = make_shard_plan({n_shards}, n_shards);
    const std::string root =
        (std::filesystem::temp_directory_path() / "rcb_bench_m2_dispatch")
            .string();
    auto port = std::make_shared<std::atomic<int>>(0);
    const auto run_transport = [&](TransportKind kind) -> std::uint64_t {
      std::filesystem::remove_all(root);
      CoordinatorOptions opt;
      opt.root = root;
      opt.workers = 2;
      opt.transport = kind;
      opt.lease_timeout_sec = 5.0;
      opt.worker_argv = [&root](std::size_t shard) {
        return std::vector<std::string>{"/proc/self/exe",
                                        "--rcb_dispatch_worker", root,
                                        std::to_string(shard)};
      };
      opt.on_listen = [port](std::uint16_t p) { port->store(p); };
      opt.attach_argv = [port](std::size_t) {
        return std::vector<std::string>{
            "/proc/self/exe", "--rcb_dispatch_attach",
            "127.0.0.1:" + std::to_string(port->load())};
      };
      const CoordinatorResult r = run_shard_coordinator(spec, opt);
      return r.ok ? static_cast<std::uint64_t>(spec.shards.size()) : 0;
    };
    const auto add_dispatch = [&](const char* name, const Measurement& m) {
      bench::BenchEntry e;
      e.name = std::string("m2/shard/transport_dispatch/") + name;
      e.config = {{"shards", static_cast<double>(n_shards)}, {"workers", 2}};
      e.wall_ms = m.wall_ms;
      e.events_per_sec = m.events_per_sec;  // shard dispatches per second
      report.add(std::move(e));
      table.add_row({"shard", std::string("dispatch_") + name, Table::num(2),
                     Table::num(n_shards), Table::num(m.reps),
                     Table::num(m.wall_ms, 3), Table::num(0),
                     Table::num(m.events_per_sec)});
    };
    const Measurement local = measure(
        [&](int) { return run_transport(TransportKind::kLocalProcess); },
        0.2, 4, 0);
    add_dispatch("local", local);
    const Measurement sock = measure(
        [&](int) { return run_transport(TransportKind::kSocket); }, 0.2, 4,
        0);
    add_dispatch("socket", sock);
    std::filesystem::remove_all(root);
    std::printf(
        "transport dispatch: local %.3f ms vs loopback socket %.3f ms for "
        "%zu shards / 2 workers (%.2fx)\n",
        local.wall_ms, sock.wall_ms, n_shards,
        sock.wall_ms / local.wall_ms);
  }

  table.print(std::cout);
  if (dense_at_accept > 0 && event_at_accept > 0) {
    // Machine-readable speedup ratio (dimensionless, carried in the
    // slots_per_sec field) so tools/bench_compare can gate on it directly
    // instead of the ratio being recomputed by hand from two entries.
    bench::BenchEntry e;
    e.name = "m2/speedup/event_vs_dense";
    e.config = {{"n", static_cast<double>(accept_n)},
                {"slots", static_cast<double>(accept_slots)}};
    e.slots_per_sec = event_at_accept / dense_at_accept;
    report.add(std::move(e));
    std::printf(
        "\nslotwise speedup (event-driven vs dense) at n=%u, slots=2^20: "
        "%.1fx (acceptance bar: >= 5x)\n",
        accept_n, event_at_accept / dense_at_accept);
  }
  report.write_json(out_path);
}

}  // namespace
}  // namespace rcb

int main(int argc, char** argv) {
  // Internal worker re-entry modes: the transport-dispatch bench's
  // coordinators spawn this binary as their own shard workers.
  if (argc == 4 && std::string(argv[1]) == "--rcb_dispatch_worker") {
    return rcb::run_shard_worker(argv[2],
                                 static_cast<std::size_t>(std::atoi(argv[3])));
  }
  if (argc == 3 && std::string(argv[1]) == "--rcb_dispatch_attach") {
    rcb::AttachWorkerOptions opt;
    if (!rcb::parse_host_port(argv[2], opt.host, opt.port).empty()) return 2;
    opt.give_up_sec = 20.0;
    return rcb::run_attached_worker(opt);
  }
  rcb::FlagSet flags(
      "bench_m2_engine_scaling: channel-engine throughput sweep; emits "
      "BENCH_m2.json for tools/bench_compare");
  flags.add_string("out", "BENCH_m2.json", "output path for the JSON report");
  flags.add_bool("full", false,
                 "expand the grid to n=4096 and slots=2^22 (event-driven "
                 "engines only; several minutes)");
  flags.add_int("seed", 7, "master seed for the per-cell RNG streams");
  if (!flags.parse(argc, argv)) return 1;
  rcb::run_bench(flags.get_bool("full"), flags.get_string("out"),
                 static_cast<std::uint64_t>(flags.get_int("seed")));
  return 0;
}
