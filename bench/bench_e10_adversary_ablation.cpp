// E10 — adversary ablation and the Lemma 1 check.
//
// (a) Budget-for-budget comparison of 1-uniform jamming strategies against
//     the Fig. 2 broadcast: which strategy extracts the most node cost per
//     unit of adversary energy?  The Lemma-1 canonical suffix blocker
//     should dominate.
// (b) Lemma 1 empirically: within a single phase, a genuinely reactive
//     slot-by-slot adversary blocks delivery no better than a committed
//     suffix jammer of the same budget.
#include <algorithm>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/runtime/montecarlo.hpp"
#include "rcb/sim/slot_engine.hpp"

namespace rcb {
namespace {

// ---- (a) strategy ablation -------------------------------------------------

struct Outcome {
  double mean_cost = 0, t = 0;
  bool informed = false;
};

template <typename MakeAdv>
Outcome measure(MakeAdv make_adv, std::uint64_t seed) {
  const BroadcastNParams params = BroadcastNParams::sim();
  auto samples = run_trials<Outcome>(12, seed, [&](std::size_t, Rng& rng) {
    auto adv = make_adv();
    const auto r = run_broadcast_n(32, params, *adv, rng);
    return Outcome{r.mean_cost, static_cast<double>(r.adversary_cost),
                   r.all_informed};
  });
  Outcome acc;
  int informed = 0;
  for (const auto& s : samples) {
    acc.mean_cost += s.mean_cost;
    acc.t += s.t;
    informed += s.informed;
  }
  const auto count = static_cast<double>(samples.size());
  acc.mean_cost /= count;
  acc.t /= count;
  acc.informed = informed == 12;
  return acc;
}

// ---- (b) Lemma 1: reactive vs suffix within one phase ----------------------

/// Reactive adversary: starts jamming permanently the moment it first
/// observes a transmission, until the budget runs out.  This is the most
/// aggressive causal response available to a 1-uniform adversary.
class TriggerHappy final : public SlotAdversary {
 public:
  explicit TriggerHappy(Cost budget) : budget_(budget) {}
  bool jam(SlotIndex, std::span<const SlotActivity> history) override {
    if (!triggered_ && !history.empty() && history.back().senders > 0) {
      triggered_ = true;
    }
    if (!triggered_ || budget_ == 0) return false;
    --budget_;
    return true;
  }
  bool jam_run(SlotIndex begin, SlotIndex end,
               std::span<const SlotActivity> history,
               JamRunSink& sink) override {
    // The trigger can only fire on the run's first slot (later run slots
    // look back at silence); once triggered, jam until the budget is dry.
    if (!triggered_ && !history.empty() && history.back().senders > 0) {
      triggered_ = true;
    }
    const SlotCount len = end - begin;
    const SlotCount jams = triggered_ ? std::min<SlotCount>(budget_, len) : 0;
    sink.append(jams, true);
    sink.append(len - jams, false);
    budget_ -= jams;
    return true;
  }
  SlotCount history_window() const override { return 1; }

 private:
  Cost budget_;
  bool triggered_ = false;
};

/// Committed suffix of the same size at the end of the phase.
class SuffixSlotAdversary final : public SlotAdversary {
 public:
  SuffixSlotAdversary(SlotCount num_slots, Cost budget)
      : start_(num_slots > budget ? num_slots - budget : 0) {}
  bool jam(SlotIndex slot, std::span<const SlotActivity>) override {
    return slot >= start_;
  }
  bool jam_run(SlotIndex begin, SlotIndex end, std::span<const SlotActivity>,
               JamRunSink& sink) override {
    const SlotIndex split = std::clamp(start_, begin, end);
    sink.append(split - begin, false);
    sink.append(end - split, true);
    return true;
  }
  SlotCount history_window() const override { return 0; }

 private:
  SlotIndex start_;
};

/// Uniform random jamming of the same expected size.
class RandomSlotAdversary final : public SlotAdversary {
 public:
  RandomSlotAdversary(SlotCount num_slots, Cost budget, Rng& rng)
      : rate_(static_cast<double>(budget) / static_cast<double>(num_slots)),
        rng_(&rng) {}
  bool jam(SlotIndex, std::span<const SlotActivity>) override {
    return rng_->bernoulli(rate_);
  }
  SlotCount history_window() const override { return 0; }

 private:
  double rate_;
  Rng* rng_;
};

double blocked_fraction(int which, Cost jam_budget, std::uint64_t seed) {
  const SlotCount slots = 1024;
  const double p = 0.08;  // Fig.1-style send/listen probability
  std::vector<NodeAction> actions = {NodeAction{p, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, p}};
  auto samples = run_trials<bool>(600, seed, [&](std::size_t, Rng& rng) {
    std::unique_ptr<SlotAdversary> adv;
    switch (which) {
      case 0:
        adv = std::make_unique<SuffixSlotAdversary>(slots, jam_budget);
        break;
      case 1:
        adv = std::make_unique<TriggerHappy>(jam_budget);
        break;
      default:
        adv = std::make_unique<RandomSlotAdversary>(slots, jam_budget, rng);
        break;
    }
    const auto r = run_repetition_slotwise(slots, actions, *adv, rng);
    return r.rep.obs[1].messages == 0;  // delivery blocked?
  });
  int blocked = 0;
  for (bool b : samples) blocked += b;
  return blocked / 600.0;
}

void run() {
  bench::print_header("E10",
                      "Adversary ablation + Lemma 1 (suffix is WLOG optimal)");

  std::cout << "\n(a) strategy ablation: Fig.2 broadcast, n=32, budget 2^17, "
               "12 trials.  'damage' = extra mean node cost over the no-jam "
               "baseline, per unit of adversary spend.\n\n";
  const Outcome baseline =
      measure([] { return std::make_unique<NoJamAdversary>(); }, 97000);
  std::printf("no-jam baseline mean node cost: %.0f\n\n", baseline.mean_cost);

  Table ta({"strategy", "T spent", "mean node cost", "damage per adv unit",
            "all informed"});
  const Cost B = Cost{1} << 17;
  auto add = [&](const char* name, const Outcome& o) {
    const double extra = std::max(0.0, o.mean_cost - baseline.mean_cost);
    ta.add_row({name, Table::num(o.t), Table::num(o.mean_cost),
                Table::num(extra / std::max(1.0, o.t), 6),
                o.informed ? "yes" : "NO"});
  };
  add("suffix q=0.9 (Lemma 1)", measure([&] {
        return std::make_unique<SuffixBlockerAdversary>(Budget(B), 0.9);
      },
      97001));
  // With clear-baseline beta = 1/4 the growth-stalling threshold is
  // q = 1 - beta = 0.75: the cheapest rate that still blocks repetitions.
  add("suffix q=0.75 (critical)", measure([&] {
        return std::make_unique<SuffixBlockerAdversary>(Budget(B), 0.75);
      },
      97007));
  add("suffix q=0.2 (sub-critical)", measure([&] {
        return std::make_unique<SuffixBlockerAdversary>(Budget(B), 0.2);
      },
      97002));
  add("suffix q=1.0", measure([&] {
        return std::make_unique<SuffixBlockerAdversary>(Budget(B), 1.0);
      },
      97003));
  add("epoch-fraction 50% of reps", measure([&] {
        return std::make_unique<EpochFractionBlockerAdversary>(Budget(B), 0.5,
                                                               0.5);
      },
      97004));
  add("random rate 0.5", measure([&] {
        return std::make_unique<RandomJammerAdversary>(Budget(B), 0.5);
      },
      97005));
  add("burst 8/16", measure([&] {
        return std::make_unique<BurstJammerAdversary>(Budget(B), 8, 16);
      },
      97006));
  ta.print(std::cout);

  std::cout << "\n(b) Lemma 1: P(block delivery) within one 1024-slot phase, "
               "600 trials, sender/listener p=0.08\n\n";
  Table tb({"jam budget", "suffix (committed)", "reactive (adaptive)",
            "random"});
  for (Cost jb : {Cost{256}, Cost{512}, Cost{768}, Cost{960}}) {
    tb.add_row({Table::num(static_cast<double>(jb)),
                Table::num(blocked_fraction(0, jb, 98000 + jb), 3),
                Table::num(blocked_fraction(1, jb, 98100 + jb), 3),
                Table::num(blocked_fraction(2, jb, 98200 + jb), 3)});
  }
  tb.print(std::cout);
  std::cout << "\nExpected: (a) blocking-rate attacks (q >= 0.75) and "
               "hearing-poisoning attacks (random/burst) both inflict "
               "damage; sub-critical suffix jamming is wasted energy. "
               "(b) reactive never beats the committed suffix (Lemma 1); "
               "random is no stronger.\n";
}

}  // namespace
}  // namespace rcb

int main() {
  rcb::run();
  return 0;
}
