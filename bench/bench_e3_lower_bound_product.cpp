// E3 — Theorem 2: against the announced-budget threshold adversary,
// E(A) * E(B) >= (1 - O(eps)) T for every pair strategy.
//
// Replays the proof's strategy families across budgets and delta splits:
// stay-below (a = T^(delta-1), b = T^(-delta)) and exhaust-then-shout.  The
// product column should hover at ~T (ratio ~1) and max(E(A), E(B)) at
// >= sqrt(T).
#include <iostream>

#include "bench_util.hpp"
#include "rcb/protocols/oblivious_pair.hpp"
#include "rcb/runtime/montecarlo.hpp"

namespace rcb {
namespace {

void run() {
  bench::print_header(
      "E3", "Theorem 2 — threshold adversary forces E(A)E(B) >= ~T");
  std::cout << "300 trials per row; stay-below never triggers jamming, "
               "exhaust burns the full budget first\n\n";

  Table table({"T", "strategy", "E(A)", "E(B)", "E(A)E(B)/T",
               "max/sqrt(T)"});

  for (Cost T : {Cost{1} << 8, Cost{1} << 10, Cost{1} << 12, Cost{1} << 14}) {
    const double td = static_cast<double>(T);
    for (double delta : {0.3, 0.5, 0.7}) {
      auto samples = run_trials<std::pair<double, double>>(
          300, 83000 + T + static_cast<Cost>(delta * 100),
          [&](std::size_t, Rng& rng) {
            ThresholdAdversary adv(T);
            const auto r = play_stay_below(T, delta, 1u << 26, adv, rng);
            return std::make_pair(static_cast<double>(r.alice_cost),
                                  static_cast<double>(r.bob_cost));
          });
      double ea = 0, eb = 0;
      for (const auto& [a, b] : samples) {
        ea += a;
        eb += b;
      }
      ea /= static_cast<double>(samples.size());
      eb /= static_cast<double>(samples.size());
      table.add_row({Table::num(td),
                     "stay-below d=" + Table::num(delta, 2), Table::num(ea),
                     Table::num(eb), Table::num(ea * eb / td, 3),
                     Table::num(std::max(ea, eb) / std::sqrt(td), 3)});
    }
    {
      auto samples = run_trials<std::pair<double, double>>(
          300, 84000 + T, [&](std::size_t, Rng& rng) {
            ThresholdAdversary adv(T);
            const auto r = play_exhaust(T, 0.5, adv, rng);
            return std::make_pair(static_cast<double>(r.alice_cost),
                                  static_cast<double>(r.bob_cost));
          });
      double ea = 0, eb = 0;
      for (const auto& [a, b] : samples) {
        ea += a;
        eb += b;
      }
      ea /= static_cast<double>(samples.size());
      eb /= static_cast<double>(samples.size());
      table.add_row({Table::num(td), "exhaust p=0.5", Table::num(ea),
                     Table::num(eb), Table::num(ea * eb / td, 3),
                     Table::num(std::max(ea, eb) / std::sqrt(td), 3)});
    }
  }

  table.print(std::cout);
  std::cout << "\nExpected: product ratio >= ~1 in every row (the lower "
               "bound is tight for stay-below with delta=0.5); the exhaust "
               "strategy overshoots by ~T/4.\n";
}

}  // namespace
}  // namespace rcb

int main() {
  rcb::run();
  return 0;
}
