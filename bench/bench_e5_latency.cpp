// E5 — Theorem 3's latency claim: all nodes terminate in O(T + n log^2 n)
// slots, with every node informed w.h.p.
//
// Two sweeps: latency vs T at fixed n (expected slope ~1), and latency vs n
// with no jamming (expected ~n log^2 n, i.e. slightly superlinear).
#include <iostream>

#include "bench_util.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/runtime/montecarlo.hpp"

namespace rcb {
namespace {

void run() {
  const BroadcastNParams params = BroadcastNParams::sim();
  bench::print_header("E5",
                      "Theorem 3 — latency O(T + n log^2 n), all informed");

  std::cout << "\n(a) latency vs T at n = 32, SuffixBlocker(q=0.9), 12 trials\n\n";
  Table ta({"budget", "T (mean)", "latency", "latency/T", "informed rate"});
  std::vector<double> ts, lats;
  for (Cost budget = Cost{1} << 14; budget <= Cost{1} << 20; budget <<= 2) {
    auto samples = run_trials<std::tuple<double, double, double>>(
        12, 88000 + budget, [&](std::size_t, Rng& rng) {
          SuffixBlockerAdversary adv(Budget(budget), 0.9);
          const auto r = run_broadcast_n(32, params, adv, rng);
          return std::make_tuple(
              static_cast<double>(r.adversary_cost),
              static_cast<double>(r.latency),
              static_cast<double>(r.informed_count) / 32.0);
        });
    double t = 0, lat = 0, inf = 0;
    for (const auto& [a, b, c] : samples) {
      t += a;
      lat += b;
      inf += c;
    }
    const auto count = static_cast<double>(samples.size());
    t /= count;
    lat /= count;
    inf /= count;
    ts.push_back(t);
    lats.push_back(lat);
    ta.add_row({Table::num(static_cast<double>(budget)), Table::num(t),
                Table::num(lat), Table::num(lat / std::max(1.0, t), 3),
                Table::num(inf, 4)});
  }
  ta.print(std::cout);
  std::cout << '\n';
  bench::print_fit("(a) latency vs T", fit_power_law(ts, lats), 1.0);

  std::cout << "\n(b) latency vs n, no jamming, 12 trials\n\n";
  Table tb({"n", "latency", "latency/(n lg^2 n)", "informed rate"});
  std::vector<double> ns, lat_n;
  for (std::uint32_t n : {4u, 8u, 16u, 32u, 64u, 128u}) {
    auto samples = run_trials<std::pair<double, double>>(
        12, 89000 + n, [&](std::size_t, Rng& rng) {
          NoJamAdversary adv;
          const auto r = run_broadcast_n(n, params, adv, rng);
          return std::make_pair(
              static_cast<double>(r.latency),
              static_cast<double>(r.informed_count) / n);
        });
    double lat = 0, inf = 0;
    for (const auto& [a, b] : samples) {
      lat += a;
      inf += b;
    }
    const auto count = static_cast<double>(samples.size());
    lat /= count;
    inf /= count;
    ns.push_back(n);
    lat_n.push_back(lat);
    const double lg = std::log2(static_cast<double>(std::max(2u, n)));
    tb.add_row({Table::num(n), Table::num(lat),
                Table::num(lat / (n * lg * lg), 3), Table::num(inf, 4)});
  }
  tb.print(std::cout);
  std::cout << '\n';
  bench::print_fit("(b) latency vs n", fit_power_law(ns, lat_n), 1.0);
  std::cout << "Expected: (a) slope ~1 in T; (b) ~linear in n with polylog "
               "drift; informed rate ~1 everywhere.\n";
}

}  // namespace
}  // namespace rcb

int main() {
  rcb::run();
  return 0;
}
