// E9 — Theorem 1's eps dependence: cost ~ sqrt(T ln(1/eps)) and failure
// probability <= eps.
//
// Fixes the adversary budget and sweeps eps: the cost column should grow
// like sqrt(ln(1/eps)) (fit against ln(1/eps), predicted exponent 0.5) and
// the empirical failure rate should stay below eps.
#include <iostream>

#include "bench_util.hpp"
#include "rcb/adversary/two_uniform.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/runtime/montecarlo.hpp"

namespace rcb {
namespace {

void run() {
  const Cost budget = Cost{1} << 14;
  bench::print_header(
      "E9", "Theorem 1 — eps sweep: cost ~ sqrt(ln(1/eps)), failure <= eps");
  std::cout << "FullDuelBlocker(q=0.6, budget 2^14), 600 trials per eps\n\n";

  Table table({"eps", "ln(1/eps)", "max cost", "T (mean)",
               "cost/sqrt(T ln(8/eps))", "failure rate", "<= eps?"});
  std::vector<double> lns, costs;

  for (double eps : {0.3, 0.1, 0.03, 0.01, 0.003}) {
    const OneToOneParams params = OneToOneParams::sim(eps);
    auto samples = run_trials<std::tuple<double, double, bool>>(
        600, 96000 + static_cast<std::uint64_t>(1.0 / eps),
        [&](std::size_t, Rng& rng) {
          FullDuelBlocker adv(Budget(budget), 0.6);
          const auto r = run_one_to_one(params, adv, rng);
          return std::make_tuple(static_cast<double>(r.max_cost()),
                                 static_cast<double>(r.adversary_cost),
                                 r.delivered);
        });
    double cost = 0, t = 0;
    int failures = 0;
    for (const auto& [c, tt, d] : samples) {
      cost += c;
      t += tt;
      failures += !d;
    }
    const auto count = static_cast<double>(samples.size());
    cost /= count;
    t /= count;
    const double failure_rate = failures / count;
    lns.push_back(std::log(8.0 / eps));
    costs.push_back(cost);
    table.add_row(
        {Table::num(eps), Table::num(std::log(1.0 / eps), 3),
         Table::num(cost), Table::num(t),
         Table::num(cost / std::sqrt(t * std::log(8.0 / eps)), 3),
         Table::num(failure_rate, 3), failure_rate <= eps ? "yes" : "NO"});
  }

  table.print(std::cout);
  std::cout << '\n';
  bench::print_fit("cost vs ln(8/eps)", fit_power_law(lns, costs), 0.5);
  std::cout << "Expected: normalised cost column flat; every failure rate "
               "at or below its eps.\n";
}

}  // namespace
}  // namespace rcb

int main() {
  rcb::run();
  return 0;
}
