// Shared helpers for the experiment benches (E1..E10).
//
// Each bench regenerates one row of DESIGN.md's experiment index: it prints
// a header naming the paper claim, a table of measured values, and the
// paper-predicted vs fitted scaling where applicable.  Keep runtimes in the
// seconds-to-a-minute range so `for b in build/bench/*; do $b; done` stays
// usable.
#pragma once

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "rcb/stats/regression.hpp"
#include "rcb/stats/summary.hpp"
#include "rcb/stats/table.hpp"

namespace rcb::bench {

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "\n==============================================================\n"
            << id << ": " << claim << "\n"
            << "==============================================================\n";
}

inline void print_fit(const std::string& what, const PowerLawFit& fit,
                      double predicted) {
  std::printf("%s: measured exponent %.3f (R^2 %.3f), paper predicts %.3f\n",
              what.c_str(), fit.exponent, fit.r_squared, predicted);
}

/// Mean of a double vector (0 for empty).
inline double mean_of(const std::vector<double>& xs) {
  return summarize(xs).mean;
}

}  // namespace rcb::bench
