// Shared helpers for the experiment benches (E1..E13) and perf benches (M*).
//
// Each experiment bench regenerates one row of DESIGN.md's experiment
// index: it prints a header naming the paper claim, a table of measured
// values, and the paper-predicted vs fitted scaling where applicable.  Keep
// runtimes in the seconds-to-a-minute range so `for b in build/bench/*; do
// $b; done` stays usable.
//
// Perf benches additionally emit a machine-readable BENCH_<id>.json via
// BenchReport so that tools/bench_compare can diff two runs and CI can gate
// on regressions.  Schema (stable; bump `rcb_bench` on breaking change):
//
//   {"rcb_bench": 1, "bench": "<id>",
//    "entries": [{"name": "...", "config": {"n": 32, ...},
//                 "wall_ms": 1.5, "slots_per_sec": 1e9,
//                 "events_per_sec": 1e6}, ...]}
//
// `wall_ms` is mean wall time per run (always present; lower is better);
// the throughput fields are 0 when not applicable.  (name, config) is the
// identity bench_compare matches entries by.
#pragma once

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "rcb/cli/json.hpp"
#include "rcb/stats/regression.hpp"
#include "rcb/stats/summary.hpp"
#include "rcb/stats/table.hpp"

namespace rcb::bench {

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "\n==============================================================\n"
            << id << ": " << claim << "\n"
            << "==============================================================\n";
}

inline void print_fit(const std::string& what, const PowerLawFit& fit,
                      double predicted) {
  std::printf("%s: measured exponent %.3f (R^2 %.3f), paper predicts %.3f\n",
              what.c_str(), fit.exponent, fit.r_squared, predicted);
}

/// Mean of a double vector (0 for empty).
inline double mean_of(const std::vector<double>& xs) {
  return summarize(xs).mean;
}

/// One measured configuration of a perf bench.
struct BenchEntry {
  std::string name;  ///< e.g. "m2/slotwise_event/cca" or a gbench name
  std::vector<std::pair<std::string, double>> config;  ///< numeric axes
  double wall_ms = 0.0;         ///< mean wall time per run
  double slots_per_sec = 0.0;   ///< simulated-slot throughput (0 = n/a)
  double events_per_sec = 0.0;  ///< node-event throughput (0 = n/a)
};

/// Collects BenchEntry rows and writes the BENCH_<id>.json document.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_id) : bench_id_(std::move(bench_id)) {}

  void add(BenchEntry e) { entries_.push_back(std::move(e)); }
  const std::vector<BenchEntry>& entries() const { return entries_; }

  /// Writes the report; returns false (after a diagnostic) on I/O failure.
  bool write_json(const std::string& path) const {
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
      return false;
    }
    JsonWriter w(os);
    w.begin_object();
    w.key("rcb_bench").value(std::int64_t{1});
    w.key("bench").value(bench_id_);
    w.key("entries").begin_array();
    for (const BenchEntry& e : entries_) {
      w.begin_object();
      w.key("name").value(e.name);
      w.key("config").begin_object();
      for (const auto& [k, v] : e.config) w.key(k).value(v);
      w.end_object();
      w.key("wall_ms").value(e.wall_ms);
      w.key("slots_per_sec").value(e.slots_per_sec);
      w.key("events_per_sec").value(e.events_per_sec);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    os.flush();
    if (!os) {
      std::fprintf(stderr, "write to '%s' failed\n", path.c_str());
      return false;
    }
    std::printf("wrote %s (%zu entries)\n", path.c_str(), entries_.size());
    return true;
  }

 private:
  std::string bench_id_;
  std::vector<BenchEntry> entries_;
};

}  // namespace rcb::bench
