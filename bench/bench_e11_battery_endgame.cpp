// E11 (extension) — bankrupting the adversary, made concrete.
//
// The resource-competitiveness story (paper section 1.1) is that a defender
// fleet with per-node battery B survives any attacker whose budget is
// o(poly(B * sqrt(n))): the attacker runs dry first.  This bench puts
// numbers on that: for each fleet size and attacker budget, find the
// smallest per-node battery (by doubling search) for which every node is
// informed and no node dies, and report the bankruptcy ratio
// attacker-spend / battery.
#include <iostream>

#include "bench_util.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/runtime/montecarlo.hpp"

namespace rcb {
namespace {

/// Fraction of trials in which the fleet fully survives and is informed.
double survival_rate(std::uint32_t n, Cost battery, Cost attacker_budget,
                     std::uint64_t seed) {
  BroadcastNParams params = BroadcastNParams::sim();
  params.node_energy_budget = battery;
  auto outcomes = run_trials<bool>(10, seed, [&](std::size_t, Rng& rng) {
    SuffixBlockerAdversary adv(Budget(attacker_budget), 0.9);
    const auto r = run_broadcast_n(n, params, adv, rng);
    return r.dead_count == 0 && r.all_informed;
  });
  int ok = 0;
  for (bool b : outcomes) ok += b;
  return ok / 10.0;
}

Cost minimum_battery(std::uint32_t n, Cost attacker_budget,
                     std::uint64_t seed) {
  Cost battery = 256;
  while (battery < (Cost{1} << 30)) {
    if (survival_rate(n, battery, attacker_budget, seed) >= 0.9) {
      return battery;
    }
    battery <<= 1;
  }
  return battery;
}

void run() {
  bench::print_header(
      "E11", "Extension — minimum battery to bankrupt the attacker");
  std::cout << "SuffixBlocker(q=0.9); survival = all informed, none dead in "
               ">= 90% of 10 trials; battery found by doubling search\n\n";

  Table table({"n", "attacker budget", "min battery/node", "fleet total",
               "attacker/battery", "attacker/fleet"});
  for (std::uint32_t n : {8u, 32u, 128u}) {
    for (Cost budget : {Cost{1} << 16, Cost{1} << 19}) {
      const Cost battery = minimum_battery(n, budget, 99000 + n + budget);
      const double fleet =
          static_cast<double>(battery) * static_cast<double>(n);
      table.add_row(
          {Table::num(n), Table::num(static_cast<double>(budget)),
           Table::num(static_cast<double>(battery)), Table::num(fleet),
           Table::num(static_cast<double>(budget) /
                          static_cast<double>(battery),
                      3),
           Table::num(static_cast<double>(budget) / fleet, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected: attacker/battery grows with both T and n "
               "(per-node defence ~sqrt(T/n)); the attacker goes bankrupt "
               "long before a properly-provisioned fleet.\n";
}

}  // namespace
}  // namespace rcb

int main() {
  rcb::run();
  return 0;
}
