// E13 (extension) — graceful degradation of the protocols under injected
// device and channel faults.
//
// The paper's guarantees assume ideal devices; this bench measures how far
// the implementations bend before they break when that assumption fails:
//
//   (a) crash sweep — a growing fraction of the Fig. 2 fleet suffers
//       permanent crashes mid-run.  The healthy remainder must still
//       terminate (no hang, no contract trip), with the crashed nodes
//       reported rather than silently stalling the epoch loop.
//   (b) loss sweep — receptions fade to clear with growing probability.
//       Losing m slows delivery; losing clear-slot evidence ALSO perturbs
//       the S_u control loop, so cost and latency climb together.
//   (c) 1-to-1 timeout — Fig. 1 against a jammer that never runs out,
//       with and without a wall-clock abort.  Without one the protocol
//       escalates to its epoch cap; with one it reports Aborted at a
//       bounded cost.
#include <iostream>

#include "bench_util.hpp"
#include "rcb/runtime/montecarlo.hpp"
#include "rcb/runtime/scenario.hpp"

namespace rcb {
namespace {

struct Row {
  double mean_cost = 0;
  double informed = 0;
  double crashed = 0;
  double aborted = 0;
  double latency = 0;
};

Row measure(const Scenario& s) {
  auto samples = run_trials<TrialOutcome>(
      s.trials, s.seed,
      [&](std::size_t t, Rng&) { return run_scenario_trial(s, t); });
  Row acc;
  for (const auto& o : samples) {
    acc.mean_cost += o.mean_cost;
    acc.informed += o.success ? 1.0 : 0.0;
    acc.crashed += static_cast<double>(o.crashed_count);
    acc.aborted += o.aborted ? 1.0 : 0.0;
    acc.latency += o.latency;
  }
  const auto count = static_cast<double>(samples.size());
  acc.mean_cost /= count;
  acc.informed /= count;
  acc.crashed /= count;
  acc.aborted /= count;
  acc.latency /= count;
  return acc;
}

void run() {
  bench::print_header(
      "E13", "Extension — fault injection and graceful degradation");

  {
    std::cout << "\n(a) Fig. 2 (n = 32) with permanent crash churn, no "
                 "adversary; 12 trials per row\n\n";
    Table table({"crash frac", "mean cost", "all informed", "crashed/trial",
                 "latency"});
    std::uint64_t seed = 46000;
    for (double frac : {0.0, 0.1, 0.2, 0.4}) {
      Scenario s;
      s.protocol = "broadcast";
      s.adversary = "none";
      s.n = 32;
      s.trials = 12;
      s.seed = seed++;
      s.faults.seed = seed;
      s.faults.crash_rate = frac > 0.0 ? 0.001 : 0.0;
      s.faults.crash_fraction = frac;
      const Row r = measure(s);
      table.add_row({Table::num(frac), Table::num(r.mean_cost),
                     Table::num(r.informed, 3), Table::num(r.crashed, 2),
                     Table::num(r.latency)});
    }
    table.print(std::cout);
    std::cout << "\nExpected: the healthy fraction still terminates at "
                 "near-baseline cost; 'all informed' falls because crashed "
                 "nodes are (correctly) reported as never reached.\n";
  }

  {
    std::cout << "\n(b) Fig. 2 (n = 32) with message loss, unattacked vs "
                 "SuffixBlocker(q=0.9, 2^16); 12 trials per row\n\n";
    Table table({"loss", "adversary", "mean cost", "all informed", "latency"});
    std::uint64_t seed = 47000;
    for (const char* adversary : {"none", "suffix"}) {
      for (double loss : {0.0, 0.05, 0.15, 0.3}) {
        Scenario s;
        s.protocol = "broadcast";
        s.adversary = adversary;
        s.budget = 1 << 16;
        s.q = 0.9;
        s.n = 32;
        s.trials = 12;
        s.seed = seed++;
        s.faults.seed = seed;
        s.faults.loss_rate = loss;
        const Row r = measure(s);
        table.add_row({Table::num(loss), adversary, Table::num(r.mean_cost),
                       Table::num(r.informed, 3), Table::num(r.latency)});
      }
    }
    table.print(std::cout);
    std::cout << "\nExpected: moderate loss degrades cost/latency smoothly; "
                 "loss looks like free jamming to the control loop but the "
                 "protocol still delivers.\n";
  }

  {
    std::cout << "\n(c) Fig. 1 vs an effectively unbounded full-duel jammer "
                 "(q = 1); 12 trials per row\n\n";
    Table table({"timeout", "aborted", "mean cost", "latency"});
    std::uint64_t seed = 48000;
    for (SlotCount timeout : {SlotCount{0}, SlotCount{1} << 14,
                              SlotCount{1} << 16}) {
      Scenario s;
      s.protocol = "one_to_one";
      s.adversary = "full_duel";
      s.budget = Cost{1} << 40;
      s.q = 1.0;
      s.trials = 12;
      s.seed = seed++;
      s.timeout_slots = timeout;
      const Row r = measure(s);
      table.add_row({timeout == 0 ? "none" : Table::num(double(timeout)),
                     Table::num(r.aborted, 3), Table::num(r.mean_cost),
                     Table::num(r.latency)});
    }
    table.print(std::cout);
    std::cout << "\nExpected: without a timeout the run burns to the epoch "
                 "cap; with one it aborts at bounded latency and cost, "
                 "reporting Aborted instead of a false success.\n";
  }
}

}  // namespace
}  // namespace rcb

int main() {
  rcb::run();
  return 0;
}
