// E4 — Theorem 3: per-node 1-to-n cost is ~sqrt(T/n) * polylog.
//
// Three sweeps:
//   (a) n grows at fixed adversary budget — per-node cost should *fall*
//       like n^-0.5 ("the bigger the system, the better").
//   (b) T grows at fixed n — cost should grow like T^0.5 (times polylog).
//   (c) growth-damping ablation (DESIGN.md §4): smaller gamma grows S_u
//       more aggressively per repetition.
#include <iostream>

#include "bench_util.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/runtime/montecarlo.hpp"

namespace rcb {
namespace {

struct Sample {
  double mean_cost = 0, max_cost = 0, t = 0;
  bool all_informed = false;
};

Sample run_point(std::uint32_t n, Cost budget, const BroadcastNParams& params,
                 std::uint64_t seed, int trials) {
  auto samples = run_trials<Sample>(trials, seed, [&](std::size_t, Rng& rng) {
    SuffixBlockerAdversary adv(Budget(budget), 0.9);
    const auto r = run_broadcast_n(n, params, adv, rng);
    return Sample{r.mean_cost, static_cast<double>(r.max_cost),
                  static_cast<double>(r.adversary_cost), r.all_informed};
  });
  Sample acc;
  int informed = 0;
  for (const auto& s : samples) {
    acc.mean_cost += s.mean_cost;
    acc.max_cost += s.max_cost;
    acc.t += s.t;
    informed += s.all_informed;
  }
  const auto count = static_cast<double>(samples.size());
  acc.mean_cost /= count;
  acc.max_cost /= count;
  acc.t /= count;
  acc.all_informed = informed == trials;
  return acc;
}

void run() {
  const BroadcastNParams params = BroadcastNParams::sim();

  bench::print_header("E4", "Theorem 3 — per-node cost ~ sqrt(T/n) polylog");

  // --- (a) n sweep at fixed budget ---------------------------------------
  std::cout << "\n(a) n sweep, SuffixBlocker(q=0.9, budget 2^17), 16 trials\n\n";
  Table ta({"n", "T (mean)", "mean cost", "max cost", "cost*sqrt(n/T)",
            "all informed"});
  std::vector<double> ns, mean_costs;
  for (std::uint32_t n : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const Sample s = run_point(n, Cost{1} << 17, params, 85000 + n, 16);
    ns.push_back(n);
    mean_costs.push_back(s.mean_cost);
    ta.add_row({Table::num(n), Table::num(s.t), Table::num(s.mean_cost),
                Table::num(s.max_cost),
                Table::num(s.mean_cost * std::sqrt(n / std::max(1.0, s.t)), 3),
                s.all_informed ? "yes" : "NO"});
  }
  ta.print(std::cout);
  std::cout << '\n';
  bench::print_fit("(a) mean cost vs n", fit_power_law(ns, mean_costs), -0.5);

  // --- (b) T sweep at fixed n ---------------------------------------------
  std::cout << "\n(b) T sweep at n = 32, 16 trials\n\n";
  Table tb({"budget", "T (mean)", "mean cost", "max cost",
            "cost/sqrt(T/n)", "all informed"});
  std::vector<double> ts, costs_t;
  for (Cost budget = Cost{1} << 14; budget <= Cost{1} << 22; budget <<= 2) {
    const Sample s = run_point(32, budget, params, 86000 + budget, 12);
    ts.push_back(s.t);
    costs_t.push_back(s.mean_cost);
    tb.add_row({Table::num(static_cast<double>(budget)), Table::num(s.t),
                Table::num(s.mean_cost), Table::num(s.max_cost),
                Table::num(s.mean_cost / std::sqrt(s.t / 32.0), 3),
                s.all_informed ? "yes" : "NO"});
  }
  tb.print(std::cout);
  std::cout << '\n';
  bench::print_fit("(b) mean cost vs T", fit_power_law(ts, costs_t), 0.5);

  // --- (c) growth damping ablation ----------------------------------------
  std::cout << "\n(c) growth-damping gamma ablation, n = 32, budget 2^17\n\n";
  Table tc({"gamma", "mean cost", "max cost", "all informed"});
  for (double gamma : {1.0, 2.0, 4.0, 8.0}) {
    BroadcastNParams p = params;
    p.growth_damping_const = gamma;
    const Sample s =
        run_point(32, Cost{1} << 17, p, 87000 + static_cast<Cost>(gamma), 12);
    tc.add_row({Table::num(gamma), Table::num(s.mean_cost),
                Table::num(s.max_cost), s.all_informed ? "yes" : "NO"});
  }
  tc.print(std::cout);
  std::cout << "\nExpected: (a) falling ~n^-0.5; (b) rising ~T^0.5; "
               "(c) small gamma overshoots S_u, large gamma wastes "
               "repetitions — the preset sits between.\n";
}

}  // namespace
}  // namespace rcb

int main() {
  rcb::run();
  return 0;
}
