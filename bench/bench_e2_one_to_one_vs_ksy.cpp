// E2 — Theorem 1 vs the KSY'11 baseline: sqrt(T) beats T^(phi-1).
//
// Runs both 1-to-1 protocols against budget-matched canonical blockers and
// overlays their cost curves.  The paper's improvement claim is the gap in
// the fitted exponents (0.5 vs ~0.62) and the "combined" algorithm column
// min(Fig1, KSY), which has no eps-dependence at T = 0.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "rcb/adversary/two_uniform.hpp"
#include "rcb/protocols/combined.hpp"
#include "rcb/protocols/ksy.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/runtime/montecarlo.hpp"

namespace rcb {
namespace {

struct Sample {
  double cost = 0, t = 0;
};

template <typename RunFn>
Sample mean_run(Cost budget, std::uint64_t seed, RunFn run_fn) {
  auto samples = run_trials<Sample>(192, seed, [&](std::size_t, Rng& rng) {
    return run_fn(budget, rng);
  });
  Sample acc;
  for (const auto& s : samples) {
    acc.cost += s.cost;
    acc.t += s.t;
  }
  acc.cost /= static_cast<double>(samples.size());
  acc.t /= static_cast<double>(samples.size());
  return acc;
}

void run() {
  const double eps = 0.01;
  const OneToOneParams fig1 = OneToOneParams::sim(eps);

  bench::print_header("E2",
                      "Theorem 1 vs KSY'11 — sqrt(T) vs T^(phi-1) = T^0.618");
  std::cout << "Fig.1 vs golden-ratio baseline, budget-matched blockers, "
               "192 trials per point\n\n";

  Table table({"budget", "T fig1", "cost fig1", "T ksy", "cost ksy",
               "cost combined", "winner"});
  std::vector<double> t1, c1, t2, c2, t3, c3;

  for (Cost budget = Cost{1} << 10; budget <= Cost{1} << 18; budget <<= 2) {
    const Sample fig = mean_run(budget, 81000 + budget, [&](Cost b, Rng& rng) {
      FullDuelBlocker adv(Budget(b), 0.6);
      const auto r = run_one_to_one(fig1, adv, rng);
      return Sample{static_cast<double>(r.max_cost()),
                    static_cast<double>(r.adversary_cost)};
    });
    const Sample ksy = mean_run(budget, 82000 + budget, [&](Cost b, Rng& rng) {
      KsyParams params;
      BothViewsSuffixBlocker adv(Budget(b), 0.6);
      const auto r = run_ksy(params, adv, rng);
      return Sample{static_cast<double>(r.max_cost()),
                    static_cast<double>(r.adversary_cost)};
    });
    // The real interleaved combination (the Theorem 1 discussion's min-cost
    // algorithm), against the blocker that attacks both streams.
    const Sample comb = mean_run(budget, 83500 + budget, [&](Cost b, Rng& rng) {
      CombinedParams params;
      params.fig1 = fig1;
      BothViewsSuffixBlocker adv(Budget(b), 0.6);
      const auto r = run_combined(params, adv, rng);
      return Sample{static_cast<double>(r.max_cost()),
                    static_cast<double>(r.adversary_cost)};
    });

    t1.push_back(fig.t);
    c1.push_back(fig.cost);
    t2.push_back(ksy.t);
    c2.push_back(ksy.cost);
    t3.push_back(comb.t);
    c3.push_back(comb.cost);
    table.add_row({Table::num(static_cast<double>(budget)),
                   Table::num(fig.t), Table::num(fig.cost), Table::num(ksy.t),
                   Table::num(ksy.cost), Table::num(comb.cost),
                   fig.cost < ksy.cost ? "fig1" : "ksy"});
  }

  table.print(std::cout);
  std::cout << '\n';
  bench::print_fit("Fig.1    cost vs T", fit_power_law(t1, c1), 0.5);
  bench::print_fit("KSY      cost vs T", fit_power_law(t2, c2), 0.618);
  bench::print_fit("combined cost vs T", fit_power_law(t3, c3), 0.5);
  std::cout << "Expected: the exponent gap (~0.5 vs ~0.62) reproduces the "
               "asymptotic improvement; with sim-scale prefactors the "
               "absolute crossover lies beyond this range (Fig.1 carries a "
               "sqrt(ln(8/eps)) factor), so KSY wins these rows on "
               "constants.  The combined algorithm tracks the cheaper "
               "stream to within a constant factor.\n";
}

}  // namespace
}  // namespace rcb

int main() {
  rcb::run();
  return 0;
}
