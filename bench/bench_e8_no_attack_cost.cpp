// E8 — the efficiency function tau: costs when T = 0.
//
// Theorem 1: O(ln(1/eps)) per party.  Theorem 3: O(log^6 n) per node.
// With no attack, costs must not depend on any adversary parameter and must
// stay polylogarithmic — this is the "cheap in peacetime" half of
// resource-competitiveness.
#include <iostream>

#include "bench_util.hpp"
#include "rcb/adversary/two_uniform.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/protocols/ksy.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/runtime/montecarlo.hpp"

namespace rcb {
namespace {

void run() {
  bench::print_header("E8", "Efficiency function tau — costs with T = 0");

  std::cout << "\n(a) 1-to-1, no jamming: cost vs eps (512 trials)\n\n";
  Table ta({"eps", "ln(1/eps)", "max cost", "cost/ln(8/eps)", "delivered"});
  for (double eps : {0.3, 0.1, 0.03, 0.01, 0.003, 0.001}) {
    const OneToOneParams params = OneToOneParams::sim(eps);
    auto samples = run_trials<std::pair<double, bool>>(
        512, 93000 + static_cast<std::uint64_t>(1.0 / eps),
        [&](std::size_t, Rng& rng) {
          DuelNoJam adv;
          const auto r = run_one_to_one(params, adv, rng);
          return std::make_pair(static_cast<double>(r.max_cost()),
                                r.delivered);
        });
    double cost = 0;
    int delivered = 0;
    for (const auto& [c, d] : samples) {
      cost += c;
      delivered += d;
    }
    const auto count = static_cast<double>(samples.size());
    cost /= count;
    ta.add_row({Table::num(eps), Table::num(std::log(1.0 / eps), 3),
                Table::num(cost), Table::num(cost / std::log(8.0 / eps), 3),
                Table::num(delivered / count, 4)});
  }
  ta.print(std::cout);

  std::cout << "\n(b) KSY, no jamming: O(1) expected cost (512 trials)\n\n";
  {
    auto samples = run_trials<double>(512, 94000, [&](std::size_t, Rng& rng) {
      KsyParams params;
      DuelNoJam adv;
      return static_cast<double>(run_ksy(params, adv, rng).max_cost());
    });
    const Summary s = summarize(samples);
    std::printf("mean %.2f  median %.2f  p90 %.2f  max %.2f\n", s.mean,
                s.median, s.p90, s.max);
  }

  std::cout << "\n(c) 1-to-n, no jamming: cost vs n (12 trials)\n\n";
  Table tc({"n", "mean cost", "max cost", "max/lg^3 n", "final epoch"});
  for (std::uint32_t n : {4u, 16u, 64u, 256u}) {
    const BroadcastNParams params = BroadcastNParams::sim();
    auto samples = run_trials<std::tuple<double, double, double>>(
        12, 95000 + n, [&](std::size_t, Rng& rng) {
          NoJamAdversary adv;
          const auto r = run_broadcast_n(n, params, adv, rng);
          return std::make_tuple(r.mean_cost,
                                 static_cast<double>(r.max_cost),
                                 static_cast<double>(r.final_epoch));
        });
    double mean = 0, mx = 0, ep = 0;
    for (const auto& [a, b, c] : samples) {
      mean += a;
      mx += b;
      ep += c;
    }
    const auto count = static_cast<double>(samples.size());
    mean /= count;
    mx /= count;
    ep /= count;
    const double lg = std::log2(static_cast<double>(n));
    tc.add_row({Table::num(n), Table::num(mean), Table::num(mx),
                Table::num(mx / (lg * lg * lg), 3), Table::num(ep, 3)});
  }
  tc.print(std::cout);
  std::cout << "\nExpected: (a) cost tracks ln(1/eps) with a flat ratio; "
               "(b) constant; (c) polylog growth in n, final epoch ~lg n + "
               "O(1).\n";
}

}  // namespace
}  // namespace rcb

int main() {
  rcb::run();
  return 0;
}
