// Behavioural tests: each 2-uniform strategy vs the Fig. 1 protocol.
//
// These pin down *why* each adversary works (or doesn't), not just that
// code runs: send-phase blocking starves Bob, nack-phase blocking strings
// Alice along, and neither defeats delivery once the budget dies.
#include <gtest/gtest.h>

#include "rcb/adversary/two_uniform.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/rng/rng.hpp"

namespace rcb {
namespace {

double mean_no_jam_cost(const OneToOneParams& params, bool alice) {
  double sum = 0.0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    DuelNoJam adv;
    Rng rng = Rng::stream(900, t);
    const auto r = run_one_to_one(params, adv, rng);
    sum += static_cast<double>(alice ? r.alice_cost : r.bob_cost);
  }
  return sum / trials;
}

TEST(DuelStrategyTest, PartialSendBlockingBarelyDelaysDelivery) {
  // The protocol's birthday-paradox core is robust: even with 90% of every
  // send phase jammed, the unjammed prefix still delivers with constant
  // probability per epoch, so executions end within an epoch or two.
  const OneToOneParams params = OneToOneParams::sim(0.05);
  int delivered = 0;
  double epochs = 0.0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    SendPhaseBlocker adv(Budget(1 << 12), 0.9);
    Rng rng = Rng::stream(901, t);
    const auto r = run_one_to_one(params, adv, rng);
    delivered += r.delivered;
    epochs += r.final_epoch;
  }
  EXPECT_GE(delivered, trials * 9 / 10);
  EXPECT_LT(epochs / trials, params.first_epoch() + 2.0);
}

TEST(DuelStrategyTest, TotalSendBlockingDelaysUntilBudgetDies) {
  // Jamming *all* of Bob's send phases starves him until the budget is
  // exhausted; delivery then completes in the first clean epoch.
  const OneToOneParams params = OneToOneParams::sim(0.05);
  int delivered = 0;
  double epochs = 0.0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    SendPhaseBlocker adv(Budget(1 << 12), 1.0);
    Rng rng = Rng::stream(906, t);
    const auto r = run_one_to_one(params, adv, rng);
    delivered += r.delivered;
    epochs += r.final_epoch;
  }
  EXPECT_GE(delivered, trials * 8 / 10);
  // The 2^12 budget covers send phases through roughly epoch 11.
  EXPECT_GT(epochs / trials, params.first_epoch() + 3.0);
}

TEST(DuelStrategyTest, NackPhaseBlockerInflatesAliceNotBob) {
  const OneToOneParams params = OneToOneParams::sim(0.05);
  const double alice_baseline = mean_no_jam_cost(params, true);
  const double bob_baseline = mean_no_jam_cost(params, false);

  double alice = 0.0, bob = 0.0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    NackPhaseBlocker adv(Budget(1 << 12), 0.9);
    Rng rng = Rng::stream(902, t);
    const auto r = run_one_to_one(params, adv, rng);
    alice += static_cast<double>(r.alice_cost);
    bob += static_cast<double>(r.bob_cost);
  }
  alice /= trials;
  bob /= trials;
  // Alice cannot tell Bob is done, so she keeps paying; Bob received m in
  // the (unjammed) send phase and halted at baseline cost.
  EXPECT_GT(alice, 2.0 * alice_baseline);
  EXPECT_LT(bob, 2.0 * bob_baseline + 10.0);
}

TEST(DuelStrategyTest, SustainingTheRunRequiresJammingBothPhases) {
  // A send-only blocker cannot keep the execution alive: once Bob is
  // informed (or starved but quiet), Alice's nack phase goes silent and
  // she halts.  FullDuelBlocker jams her nack view too, so executions run
  // on (and the adversary pays correspondingly more).
  const OneToOneParams params = OneToOneParams::sim(0.05);
  double full_epochs = 0.0, send_epochs = 0.0;
  double t_full = 0.0, t_send = 0.0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    OneToOneParams capped = params;
    capped.max_epoch = params.first_epoch() + 3;
    {
      FullDuelBlocker adv(Budget::unlimited(), 0.5);
      Rng rng = Rng::stream(903, t);
      const auto r = run_one_to_one(capped, adv, rng);
      full_epochs += r.final_epoch;
      t_full += static_cast<double>(r.adversary_cost);
    }
    {
      SendPhaseBlocker adv(Budget::unlimited(), 0.5);
      Rng rng = Rng::stream(903, t);
      const auto r = run_one_to_one(capped, adv, rng);
      send_epochs += r.final_epoch;
      t_send += static_cast<double>(r.adversary_cost);
    }
  }
  EXPECT_GT(full_epochs / trials, send_epochs / trials + 1.0);
  EXPECT_GT(t_full, 2.0 * t_send);
}

class RandomDuelJammerTest : public ::testing::TestWithParam<double> {};

TEST_P(RandomDuelJammerTest, DeliveryRobustAcrossNoiseRates) {
  const double rate = GetParam();
  const OneToOneParams params = OneToOneParams::sim(0.05);
  int delivered = 0;
  const int trials = 80;
  for (int t = 0; t < trials; ++t) {
    SymmetricRandomDuelJammer adv(Budget(1 << 13), rate);
    Rng rng = Rng::stream(904 + static_cast<std::uint64_t>(rate * 100), t);
    const auto r = run_one_to_one(params, adv, rng);
    delivered += r.delivered;
    EXPECT_FALSE(r.hit_epoch_cap);
  }
  EXPECT_GE(delivered, trials * 8 / 10) << "rate=" << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, RandomDuelJammerTest,
                         ::testing::Values(0.05, 0.2, 0.5, 0.8));

TEST(DuelStrategyTest, ExhaustedAdversaryAlwaysLosesEventually) {
  // Whatever the strategy, once the budget is gone the next epoch is
  // clean and the protocol finishes.
  const OneToOneParams params = OneToOneParams::sim(0.05);
  const Cost budget = 1 << 11;
  int delivered = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    BothViewsSuffixBlocker adv(Budget(budget), 1.0);  // scorched earth
    Rng rng = Rng::stream(905, t);
    const auto r = run_one_to_one(params, adv, rng);
    delivered += r.delivered;
    EXPECT_LE(r.adversary_cost, 2 * budget);
    EXPECT_FALSE(r.hit_epoch_cap);
  }
  EXPECT_GE(delivered, trials * 9 / 10);
}

}  // namespace
}  // namespace rcb
