// Tests for the scenario-fuzzing harness: generator coverage and
// determinism, the scenario JSON round-trip property, oracle sensitivity
// (a tampered outcome must be caught), shrinker contracts, and the canary
// self-check end to end.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "rcb/runtime/scenario.hpp"
#include "rcb/testing/fuzzer.hpp"
#include "rcb/testing/oracles.hpp"
#include "rcb/testing/scenario_gen.hpp"
#include "rcb/testing/shrink.hpp"

namespace rcb {
namespace {

TEST(ScenarioGenTest, DeterministicAndValid) {
  for (std::uint64_t i = 0; i < 100; ++i) {
    const Scenario a = generate_scenario(7, i);
    const Scenario b = generate_scenario(7, i);
    EXPECT_EQ(scenario_to_json(a), scenario_to_json(b)) << "index " << i;
    EXPECT_EQ(validate_scenario(a), "") << "index " << i;
  }
}

TEST(ScenarioGenTest, DifferentSeedsDiverge) {
  int differ = 0;
  for (std::uint64_t i = 0; i < 20; ++i) {
    if (scenario_to_json(generate_scenario(1, i)) !=
        scenario_to_json(generate_scenario(2, i))) {
      ++differ;
    }
  }
  EXPECT_GE(differ, 18);
}

TEST(ScenarioGenTest, CoversTheScenarioSpace) {
  std::set<std::string> protocols;
  std::set<std::string> adversaries;
  bool faults_on = false, faults_off = false;
  bool cca_on = false, battery_on = false, timeout_on = false;
  for (std::uint64_t i = 0; i < 400; ++i) {
    const Scenario s = generate_scenario(3, i);
    protocols.insert(s.protocol);
    adversaries.insert(s.adversary);
    const bool has_faults =
        s.faults.crash_rate > 0.0 || s.faults.loss_rate > 0.0 ||
        s.faults.corruption_rate > 0.0 || s.faults.clock_skew_rate > 0.0;
    faults_on |= has_faults;
    faults_off |= !has_faults;
    cca_on |= s.faults.cca_false_busy > 0.0;
    battery_on |= s.battery > 0;
    timeout_on |= s.timeout_slots > 0;
    // Every generated scenario must have a bounded epoch cap — extra == 0
    // would mean the protocol's ~2^26-slot default, stalling the harness.
    EXPECT_GE(s.max_epoch_extra, 1u) << "index " << i;
    // The spoofing adversary never lets Fig.1 halt on its own.
    if (s.adversary == "spoof") {
      EXPECT_GT(s.timeout_slots, 0u) << "index " << i;
    }
    // channels > 1 is an mc_broadcast-only knob.
    if (s.channels > 1) {
      EXPECT_EQ(s.protocol, "mc_broadcast") << "index " << i;
    }
  }
  EXPECT_EQ(protocols.size(), 7u);  // every protocol, mc_broadcast included
  EXPECT_GE(adversaries.size(), 12u);
  EXPECT_TRUE(faults_on);
  EXPECT_TRUE(faults_off);
  EXPECT_TRUE(cca_on);
  EXPECT_TRUE(battery_on);
  EXPECT_TRUE(timeout_on);
}

// Satellite: the multi-channel axis must land where its weights say — a
// material fraction of mc cases at the degeneration boundary C=1, the
// bulk at the small splits C=2/4, and a nonempty tail over 1..64.  All
// four mc adversaries must appear, and single-channel draws must be
// unaffected (mc scenarios disable the battery/timeout-only knobs).
TEST(ScenarioGenTest, MultichannelAxisDistribution) {
  std::size_t mc = 0, c1 = 0, c2 = 0, c4 = 0, tail = 0;
  std::set<std::string> mc_advs;
  for (std::uint64_t i = 0; i < 600; ++i) {
    const Scenario s = generate_scenario(29, i);
    if (!s.is_multichannel()) {
      EXPECT_EQ(s.channels, 1u) << "index " << i;
      continue;
    }
    ++mc;
    mc_advs.insert(s.adversary);
    EXPECT_GE(s.channels, 1u) << "index " << i;
    EXPECT_LE(s.channels, 64u) << "index " << i;
    EXPECT_EQ(s.battery, 0u) << "index " << i;
    EXPECT_EQ(s.timeout_slots, 0u) << "index " << i;
    if (s.channels == 1) ++c1;
    if (s.channels == 2) ++c2;
    if (s.channels == 4) ++c4;
    if (s.channels > 4) ++tail;
  }
  // ~25% of 600 cases; generous bounds so RNG drift never flakes this.
  EXPECT_GE(mc, 90u);
  EXPECT_LE(mc, 240u);
  EXPECT_GE(c1, mc / 8);
  EXPECT_GE(c2, mc / 8);
  EXPECT_GE(c4, mc / 10);
  EXPECT_GE(tail, 1u);
  EXPECT_EQ(mc_advs.size(), 4u);  // none|mc_uniform|mc_focus|mc_sweep
}

// Satellite: scenario JSON round-trip as a property test over the
// generator's output distribution — parse(emit(s)) re-emits byte-identical
// JSON with a stable digest.
TEST(ScenarioRoundTripProperty, ParseEmitParseIsByteIdentical) {
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Scenario s = generate_scenario(17, i);
    const std::string j1 = scenario_to_json(s);
    const ScenarioParseResult p1 = scenario_from_json(j1);
    ASSERT_TRUE(p1.ok) << p1.error << "\n" << j1;
    const std::string j2 = scenario_to_json(p1.scenario);
    EXPECT_EQ(j1, j2) << "index " << i;
    EXPECT_EQ(scenario_digest(s), scenario_digest(p1.scenario)) << "index "
                                                                << i;
    const ScenarioParseResult p2 = scenario_from_json(j2);
    ASSERT_TRUE(p2.ok);
    EXPECT_EQ(scenario_to_json(p2.scenario), j2) << "index " << i;
  }
}

// Satellite: the channels field round-trips through the codec, and C=1 is
// never serialised — every pre-multi-channel scenario keeps its canonical
// JSON (and therefore its digest, which repro records are keyed on).
TEST(ScenarioRoundTripProperty, ChannelsFieldRoundTrips) {
  for (const std::uint32_t c : {1u, 2u, 4u, 7u, 64u}) {
    Scenario s;
    s.protocol = "mc_broadcast";
    s.adversary = "mc_uniform";
    s.n = 8;
    s.trials = 2;
    s.channels = c;
    ASSERT_EQ(validate_scenario(s), "") << "channels=" << c;
    const std::string j1 = scenario_to_json(s);
    if (c == 1) {
      EXPECT_EQ(j1.find("\"channels\""), std::string::npos) << j1;
    } else {
      EXPECT_NE(j1.find("\"channels\":" + std::to_string(c)),
                std::string::npos)
          << j1;
    }
    const ScenarioParseResult p = scenario_from_json(j1);
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_EQ(p.scenario.channels, c);
    EXPECT_EQ(scenario_to_json(p.scenario), j1);
    EXPECT_EQ(scenario_digest(p.scenario), scenario_digest(s));
  }
}

// channels=0 (and other invalid combinations) must be rejected with a
// one-line diagnostic, not silently clamped.
TEST(ScenarioValidationTest, RejectsInvalidChannels) {
  Scenario s;
  s.protocol = "mc_broadcast";
  s.adversary = "mc_sweep";
  s.channels = 0;
  EXPECT_EQ(validate_scenario(s), "channels must be >= 1");
  s.channels = 65;
  EXPECT_EQ(validate_scenario(s), "channels must be <= 64");
  s.channels = 2;
  s.protocol = "broadcast";
  s.adversary = "suffix";
  EXPECT_EQ(validate_scenario(s),
            "channels > 1 requires protocol mc_broadcast");
  s.protocol = "mc_broadcast";
  s.adversary = "suffix";  // single-channel adversary on the mc protocol
  EXPECT_NE(validate_scenario(s), "");
}

TEST(OracleTest, GeneratedScenariosPass) {
  OracleOptions opt;
  opt.crosscheck_trials = 40;  // keep the unit test quick
  opt.metamorphic_trials = 8;
  for (std::uint64_t i = 0; i < 20; ++i) {
    const Scenario s = generate_scenario(23, i);
    const std::vector<Violation> vs = check_scenario(s, opt);
    for (const Violation& v : vs) {
      ADD_FAILURE() << "index " << i << " oracle '" << v.oracle
                    << "': " << v.detail << "\n"
                    << scenario_to_json(s);
    }
  }
}

TEST(OracleTest, LedgerOracleCatchesAdversaryOverspend) {
  Scenario s = generate_scenario(23, 0);
  OracleOptions opt;
  opt.outcome_tamper = [](TrialOutcome& out) { out.adversary_cost += 1e9; };
  const std::vector<Violation> vs = check_scenario(s, opt);
  bool ledger_fired = false;
  for (const Violation& v : vs) ledger_fired |= v.oracle == "ledger";
  EXPECT_TRUE(ledger_fired);
}

TEST(OracleTest, DeterminismOracleCatchesUnstableDigest) {
  const Scenario s = generate_scenario(23, 1);
  OracleOptions opt;
  // Stateful tamper: every observed execution reports a different digest,
  // the signature of nondeterminism the oracle must flag.
  auto counter = std::make_shared<std::uint64_t>(0);
  opt.outcome_tamper = [counter](TrialOutcome& out) {
    out.digest += ++*counter;
  };
  const std::vector<Violation> vs = check_scenario(s, opt);
  bool determinism_fired = false;
  for (const Violation& v : vs) determinism_fired |= v.oracle == "determinism";
  EXPECT_TRUE(determinism_fired);
}

TEST(ShrinkTest, ShrinksToFixedPointAndPreservesOracle) {
  Scenario s;
  s.protocol = "broadcast";
  s.adversary = "suffix";
  s.budget = 4096;
  s.n = 40;
  s.trials = 6;
  s.max_epoch_extra = 3;
  s.battery = 2000;
  s.faults.loss_rate = 0.2;
  // Synthetic oracle: fires as long as the protocol is broadcast — every
  // other dimension is noise the shrinker should strip.
  const auto check = [](const Scenario& c) {
    std::vector<Violation> vs;
    if (c.protocol == "broadcast") vs.push_back({"synthetic", "x"});
    return vs;
  };
  const ShrinkResult r = shrink_scenario(s, "synthetic", check, 100);
  EXPECT_LT(scenario_size(r.scenario), scenario_size(s) / 4);
  EXPECT_EQ(r.scenario.protocol, "broadcast");
  EXPECT_EQ(r.scenario.trials, 1u);
  EXPECT_EQ(r.scenario.n, 2u);
  EXPECT_EQ(r.scenario.battery, 0u);
  EXPECT_EQ(r.scenario.adversary, "none");
  EXPECT_EQ(validate_scenario(r.scenario), "");
  EXPECT_GT(r.evaluations, 0u);
}

TEST(ShrinkTest, NeverUnboundsASpoofingDuel) {
  Scenario s;
  s.protocol = "one_to_one";
  s.adversary = "spoof";
  s.budget = 2048;
  s.trials = 4;
  s.max_epoch_extra = 2;
  s.timeout_slots = 4096;
  const auto check = [](const Scenario& c) {
    std::vector<Violation> vs;
    if (c.adversary == "spoof") vs.push_back({"synthetic", "x"});
    return vs;
  };
  const ShrinkResult r = shrink_scenario(s, "synthetic", check, 100);
  EXPECT_EQ(r.scenario.adversary, "spoof");
  // The timeout is what keeps a spoofed Fig.1 run bounded; dropping it
  // would make the "minimized" scenario slower to replay than the original.
  EXPECT_GT(r.scenario.timeout_slots, 0u);
  EXPECT_LT(scenario_size(r.scenario), scenario_size(s));
}

TEST(ShrinkTest, RespectsEvaluationBudget) {
  Scenario s;
  s.protocol = "broadcast";
  s.n = 48;
  s.trials = 6;
  s.max_epoch_extra = 2;
  const auto check = [](const Scenario&) {
    return std::vector<Violation>{{"synthetic", "x"}};
  };
  const ShrinkResult r = shrink_scenario(s, "synthetic", check, 5);
  EXPECT_LE(r.evaluations, 5u);
}

// Satellite: the canary — a known ledger-accounting mutation must be
// detected AND shrunk to at most a quarter of the original scenario size.
TEST(CanaryTest, MutationIsCaughtAndShrunk) {
  FuzzOptions opt;
  opt.canary = true;
  const FuzzReport report = run_fuzz(opt);
  ASSERT_TRUE(report.canary_caught);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].oracle, "ledger");
  EXPECT_LE(report.canary_shrunk_size * 4, report.canary_original_size);
  EXPECT_TRUE(report.ok());
}

TEST(CanaryTest, CanaryFailureWritesAParseableReproRecord) {
  FuzzOptions opt;
  opt.canary = true;
  const FuzzReport report = run_fuzz(opt);
  ASSERT_EQ(report.failures.size(), 1u);
  const FuzzFailure& f = report.failures[0];
  const ReproParseResult parsed =
      repro_record_from_json(fuzz_repro_record(f.minimized, f.oracle, f.detail));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(scenario_digest(parsed.record.scenario),
            scenario_digest(f.minimized));
}

TEST(FuzzRecordTest, ReproRecordRoundTripsThroughParser) {
  const Scenario s = canary_scenario();
  const std::string record = fuzz_repro_record(s, "ledger", "overspend");
  const ReproParseResult parsed = repro_record_from_json(record);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_TRUE(parsed.record.has_scenario);
  EXPECT_EQ(scenario_to_json(parsed.record.scenario), scenario_to_json(s));
  ASSERT_TRUE(parsed.record.has_scenario_digest);
  EXPECT_EQ(parsed.record.scenario_digest, scenario_digest(s));
  EXPECT_EQ(parsed.record.master_seed, s.seed);
  EXPECT_EQ(parsed.record.trial, 0u);
}

TEST(FuzzSweepTest, SmallSweepIsCleanAndDeterministic) {
  FuzzOptions opt;
  opt.seed = 5;
  opt.cases = 10;
  const FuzzReport a = run_fuzz(opt);
  EXPECT_EQ(a.cases_run, 10u);
  EXPECT_TRUE(a.failures.empty());
  const FuzzReport b = run_fuzz(opt);
  EXPECT_EQ(b.failures.size(), a.failures.size());
}

}  // namespace
}  // namespace rcb
