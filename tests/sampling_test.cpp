// Tests for sparse Bernoulli-process sampling.
#include "rcb/rng/sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rcb/rng/rng.hpp"

namespace rcb {
namespace {

TEST(BernoulliSlotSamplerTest, ZeroProbabilityYieldsNothing) {
  Rng rng(1);
  BernoulliSlotSampler sampler(1000, 0.0, rng);
  EXPECT_EQ(sampler.next(), BernoulliSlotSampler::kEnd);
}

TEST(BernoulliSlotSamplerTest, UnitProbabilityYieldsEverySlot) {
  Rng rng(2);
  BernoulliSlotSampler sampler(5, 1.0, rng);
  for (SlotIndex expected = 0; expected < 5; ++expected) {
    EXPECT_EQ(sampler.next(), expected);
  }
  EXPECT_EQ(sampler.next(), BernoulliSlotSampler::kEnd);
}

TEST(BernoulliSlotSamplerTest, ZeroSlotsYieldsNothing) {
  Rng rng(3);
  BernoulliSlotSampler sampler(0, 0.5, rng);
  EXPECT_EQ(sampler.next(), BernoulliSlotSampler::kEnd);
}

TEST(BernoulliSlotSamplerTest, SlotsAreStrictlyIncreasingAndInRange) {
  Rng rng(4);
  for (int rep = 0; rep < 100; ++rep) {
    BernoulliSlotSampler sampler(1 << 12, 0.01, rng);
    SlotIndex prev = BernoulliSlotSampler::kEnd;
    for (SlotIndex s = sampler.next(); s != BernoulliSlotSampler::kEnd;
         s = sampler.next()) {
      ASSERT_LT(s, 1u << 12);
      if (prev != BernoulliSlotSampler::kEnd) {
        ASSERT_GT(s, prev);
      }
      prev = s;
    }
  }
}

TEST(SampleBernoulliSlotsTest, EdgeProbabilitiesAndEmptyRange) {
  Rng rng(40);
  std::vector<SlotIndex> out = {99};  // stale content must be cleared
  sample_bernoulli_slots(1000, 0.0, rng, out);
  EXPECT_TRUE(out.empty());

  sample_bernoulli_slots(0, 0.5, rng, out);
  EXPECT_TRUE(out.empty());
  sample_bernoulli_slots(0, 1.0, rng, out);
  EXPECT_TRUE(out.empty());

  sample_bernoulli_slots(7, 1.0, rng, out);
  ASSERT_EQ(out.size(), 7u);
  for (SlotIndex s = 0; s < 7; ++s) EXPECT_EQ(out[s], s);
}

TEST(BernoulliSlotSamplerTest, ZeroSlotsWithUnitProbabilityYieldsNothing) {
  Rng rng(41);
  BernoulliSlotSampler sampler(0, 1.0, rng);
  EXPECT_EQ(sampler.next(), BernoulliSlotSampler::kEnd);
}

// p ~ 1/num_slots is the protocols' sparse regime (expected one firing per
// phase) and the regime where the geometric skip saturates most often; the
// count must still be Binomial(n, 1/n) — mean 1, variance ~ 1 - 1/n.
TEST(BernoulliSlotSamplerTest, ReciprocalProbabilityHasUnitMean) {
  const SlotCount n = 1 << 14;
  const double p = 1.0 / static_cast<double>(n);
  const int trials = 20000;
  Rng rng(42);
  std::vector<SlotIndex> slots;
  double sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    sample_bernoulli_slots(n, p, rng, slots);
    for (SlotIndex s : slots) ASSERT_LT(s, n);
    sum += static_cast<double>(slots.size());
  }
  EXPECT_NEAR(sum / trials, 1.0, 5.0 / std::sqrt(trials));
}

// The count of fired slots must be Binomial(n, p): check the mean and
// variance across probabilities (property-style sweep).
class SamplerMomentsTest : public ::testing::TestWithParam<double> {};

TEST_P(SamplerMomentsTest, CountMatchesBinomialMoments) {
  const double p = GetParam();
  const SlotCount n = 4096;
  const int trials = 4000;
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  std::vector<SlotIndex> slots;
  for (int t = 0; t < trials; ++t) {
    sample_bernoulli_slots(n, p, rng, slots);
    const double count = static_cast<double>(slots.size());
    sum += count;
    sum_sq += count * count;
  }
  const double mean = sum / trials;
  const double var = sum_sq / trials - mean * mean;
  const double expected_mean = static_cast<double>(n) * p;
  const double expected_var = static_cast<double>(n) * p * (1.0 - p);
  EXPECT_NEAR(mean, expected_mean, 5.0 * std::sqrt(expected_var / trials) + 0.05);
  EXPECT_NEAR(var, expected_var, 0.15 * expected_var + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, SamplerMomentsTest,
                         ::testing::Values(0.0005, 0.005, 0.05, 0.3, 0.7,
                                           0.95));

// The positions must be uniform: the mean position of fired slots over many
// trials should be ~n/2.
TEST(BernoulliSlotSamplerTest, PositionsAreUniform) {
  Rng rng(6);
  const SlotCount n = 10000;
  double pos_sum = 0.0;
  std::uint64_t count = 0;
  std::vector<SlotIndex> slots;
  for (int t = 0; t < 2000; ++t) {
    sample_bernoulli_slots(n, 0.01, rng, slots);
    for (SlotIndex s : slots) {
      pos_sum += static_cast<double>(s);
      ++count;
    }
  }
  ASSERT_GT(count, 100000u);
  EXPECT_NEAR(pos_sum / static_cast<double>(count), (n - 1) / 2.0, 100.0);
}

TEST(BinomialTest, EdgeCases) {
  Rng rng(7);
  EXPECT_EQ(binomial(0, 0.5, rng), 0u);
  EXPECT_EQ(binomial(100, 0.0, rng), 0u);
  EXPECT_EQ(binomial(100, 1.0, rng), 100u);
}

TEST(BinomialTest, MeanMatches) {
  Rng rng(8);
  double sum = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    sum += static_cast<double>(binomial(1000, 0.02, rng));
  }
  EXPECT_NEAR(sum / trials, 20.0, 0.3);
}

TEST(GeometricTest, MeanIsOneOverP) {
  Rng rng(9);
  for (double p : {0.01, 0.1, 0.5}) {
    double sum = 0.0;
    const int trials = 40000;
    for (int t = 0; t < trials; ++t) {
      sum += static_cast<double>(geometric(p, rng));
    }
    EXPECT_NEAR(sum / trials, 1.0 / p, 0.05 / p) << "p=" << p;
  }
}

TEST(GeometricTest, UnitProbabilityIsAlwaysOne) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(geometric(1.0, rng), 1u);
}

TEST(GeometricTest, SupportsStartsAtOne) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(geometric(0.9, rng), 1u);
}

}  // namespace
}  // namespace rcb
