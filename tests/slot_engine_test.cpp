// Tests for the slot-by-slot engine and reactive adversaries.
#include "rcb/sim/slot_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rcb/rng/rng.hpp"
#include "rcb/sim/engine_kernels.hpp"

namespace rcb {
namespace {

/// Never jams.
class PassiveAdversary final : public SlotAdversary {
 public:
  bool jam(SlotIndex, std::span<const SlotActivity>) override { return false; }
};

/// Jams every slot.
class AlwaysJam final : public SlotAdversary {
 public:
  bool jam(SlotIndex, std::span<const SlotActivity>) override { return true; }
};

/// Reactive: jams slot t iff slot t-1 carried at least one transmission.
class ReactiveAdversary final : public SlotAdversary {
 public:
  bool jam(SlotIndex, std::span<const SlotActivity> history) override {
    return !history.empty() && history.back().senders > 0;
  }
};

TEST(SlotEngineTest, DeliveryWithoutJamming) {
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0}};
  PassiveAdversary adv;
  Rng rng(1);
  auto r = run_repetition_slotwise(100, actions, adv, rng);
  EXPECT_EQ(r.rep.obs[1].messages, 100u);
  EXPECT_EQ(r.jammed_slots, 0u);
}

TEST(SlotEngineTest, FullJamBlocksEverything) {
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0}};
  AlwaysJam adv;
  Rng rng(2);
  auto r = run_repetition_slotwise(100, actions, adv, rng);
  EXPECT_EQ(r.rep.obs[1].messages, 0u);
  EXPECT_EQ(r.rep.obs[1].noise, 100u);
  EXPECT_EQ(r.jammed_slots, 100u);
}

TEST(SlotEngineTest, ReactiveAdversarySeesHistory) {
  // Sender transmits in every slot, so the reactive adversary jams every
  // slot except the first.
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0}};
  ReactiveAdversary adv;
  Rng rng(3);
  auto r = run_repetition_slotwise(50, actions, adv, rng);
  EXPECT_EQ(r.jammed_slots, 49u);
  EXPECT_EQ(r.rep.obs[1].messages, 1u);
  EXPECT_EQ(r.rep.obs[1].first_message_slot, 0u);
}

TEST(SlotEngineTest, HalfDuplexSendWins) {
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 1.0}};
  PassiveAdversary adv;
  Rng rng(4);
  auto r = run_repetition_slotwise(30, actions, adv, rng);
  EXPECT_EQ(r.rep.obs[0].sends, 30u);
  EXPECT_EQ(r.rep.obs[0].listens, 0u);
}

TEST(SlotEngineTest, CollisionsAreNoise) {
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0},
                                     NodeAction{1.0, Payload::kNack, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0}};
  PassiveAdversary adv;
  Rng rng(5);
  auto r = run_repetition_slotwise(40, actions, adv, rng);
  EXPECT_EQ(r.rep.obs[2].noise, 40u);
}

TEST(SlotEngineTest, ClearSlotCountingMatchesActivity) {
  // Nobody sends: listener hears clear in every listened slot.
  std::vector<NodeAction> actions = {NodeAction{0.0, Payload::kNoise, 0.5}};
  PassiveAdversary adv;
  Rng rng(6);
  auto r = run_repetition_slotwise(1000, actions, adv, rng);
  EXPECT_EQ(r.rep.obs[0].clear, r.rep.obs[0].listens);
  EXPECT_GT(r.rep.obs[0].listens, 400u);
  EXPECT_LT(r.rep.obs[0].listens, 600u);
}

// ---------------------------------------------------------------------------
// History contract of the event-driven engine.

/// Unbounded adversary that audits the history it is fed.
class HistoryAuditor final : public SlotAdversary {
 public:
  bool jam(SlotIndex slot, std::span<const SlotActivity> history) override {
    // Every elapsed slot must be materialized, in order, empty slots
    // included (zero-sender records).
    complete_ = complete_ && history.size() == slot;
    for (std::size_t k = 0; k < history.size(); ++k) {
      ordered_ = ordered_ && history[k].slot == k;
      max_senders_ = std::max(max_senders_, history[k].senders);
    }
    return false;
  }

  bool complete_ = true;
  bool ordered_ = true;
  std::uint32_t max_senders_ = 0;
};

TEST(SlotEngineHistoryTest, EmptySlotsAreMaterializedAsZeroSenderRecords) {
  // Nobody ever transmits: the adversary still sees one record per slot.
  std::vector<NodeAction> actions = {NodeAction{0.0, Payload::kNoise, 0.1}};
  HistoryAuditor adv;
  Rng rng(7);
  run_repetition_slotwise(200, actions, adv, rng);
  EXPECT_TRUE(adv.complete_);
  EXPECT_TRUE(adv.ordered_);
  EXPECT_EQ(adv.max_senders_, 0u);
}

TEST(SlotEngineHistoryTest, SendersAppearInHistory) {
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0}};
  HistoryAuditor adv;
  Rng rng(8);
  run_repetition_slotwise(50, actions, adv, rng);
  EXPECT_TRUE(adv.complete_);
  EXPECT_TRUE(adv.ordered_);
  EXPECT_EQ(adv.max_senders_, 1u);
}

/// Bounded adversary auditing the suffix view the engine materializes.
class WindowAuditor final : public SlotAdversary {
 public:
  explicit WindowAuditor(SlotCount window) : window_(window) {}

  bool jam(SlotIndex slot, std::span<const SlotActivity> history) override {
    const std::size_t expected =
        std::min<std::size_t>(slot, static_cast<std::size_t>(window_));
    ok_ = ok_ && history.size() == expected;
    // The view must be the contiguous suffix ending at slot - 1.
    for (std::size_t k = 0; k < history.size(); ++k) {
      ok_ = ok_ && history[k].slot == slot - history.size() + k;
    }
    return false;
  }
  SlotCount history_window() const override { return window_; }

  bool ok_ = true;

 private:
  SlotCount window_;
};

TEST(SlotEngineHistoryTest, BoundedWindowSeesExactSuffix) {
  std::vector<NodeAction> actions = {NodeAction{0.3, Payload::kMessage, 0.3}};
  for (SlotCount window : {SlotCount{1}, SlotCount{3}, SlotCount{64},
                           SlotCount{1000}, SlotCount{5000}}) {
    WindowAuditor adv(window);
    Rng rng(9);
    run_repetition_slotwise(1000, actions, adv, rng);
    EXPECT_TRUE(adv.ok_) << "window=" << window;
  }
}

TEST(SlotEngineHistoryTest, ZeroWindowAlwaysSeesEmptyHistory) {
  WindowAuditor adv(0);
  std::vector<NodeAction> actions = {NodeAction{0.5, Payload::kMessage, 0.5}};
  Rng rng(10);
  run_repetition_slotwise(300, actions, adv, rng);
  EXPECT_TRUE(adv.ok_);
}

// ---------------------------------------------------------------------------
// Event accounting and agreement with the dense reference.

TEST(SlotEngineEventTest, EventCountMatchesChargedEnergy) {
  std::vector<NodeAction> actions = {NodeAction{0.4, Payload::kMessage, 0.4},
                                     NodeAction{0.0, Payload::kNoise, 0.7}};
  PassiveAdversary adv;
  Rng rng(11);
  const auto r = run_repetition_slotwise(500, actions, adv, rng);
  Cost charged = 0;
  for (const auto& o : r.rep.obs) charged += o.sends + o.listens;
  EXPECT_EQ(r.event_count, charged);
  EXPECT_GT(r.event_count, 0u);
}

TEST(SlotEngineEventTest, MatchesDenseReferenceOnDeterministicActions) {
  // With action probabilities 0/1 both paths are randomness-free, so the
  // event-driven engine must reproduce the dense reference exactly.
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0},
                                     NodeAction{1.0, Payload::kNoise, 1.0}};
  ReactiveAdversary adv_event, adv_dense;
  Rng rng_event(12), rng_dense(12);
  const auto a = run_repetition_slotwise(80, actions, adv_event, rng_event);
  const auto b =
      run_repetition_slotwise_dense(80, actions, adv_dense, rng_dense);
  EXPECT_EQ(a.jammed_slots, b.jammed_slots);
  EXPECT_EQ(a.event_count, b.event_count);
  for (std::size_t u = 0; u < actions.size(); ++u) {
    EXPECT_EQ(a.rep.obs[u].sends, b.rep.obs[u].sends) << "node " << u;
    EXPECT_EQ(a.rep.obs[u].listens, b.rep.obs[u].listens) << "node " << u;
    EXPECT_EQ(a.rep.obs[u].messages, b.rep.obs[u].messages) << "node " << u;
    EXPECT_EQ(a.rep.obs[u].noise, b.rep.obs[u].noise) << "node " << u;
    EXPECT_EQ(a.rep.obs[u].clear, b.rep.obs[u].clear) << "node " << u;
    EXPECT_EQ(a.rep.obs[u].first_message_slot, b.rep.obs[u].first_message_slot)
        << "node " << u;
  }
}

// ---------------------------------------------------------------------------
// Shared bounded-window compaction helper (used by both slotwise engines).

TEST(PushHistoryCompactedTest, PinsTwoXWatermarkErasePolicy) {
  Arena arena;
  ArenaVector<SlotActivity> hist{arena};
  const SlotCount window = 4;

  // Unbounded: every record is retained.
  for (SlotIndex s = 0; s < 20; ++s) {
    engine_kernels::push_history_compacted(hist, SlotActivity{s, 0, false},
                                           window, false);
  }
  EXPECT_EQ(hist.size(), 20u);
  hist.clear();

  // Bounded: the buffer grows to 2 * window - 1, and the push that reaches
  // the 2 * window watermark compacts it down to the trailing `window`
  // records — never fewer, never more.
  for (SlotIndex s = 0; s < 2 * window - 1; ++s) {
    engine_kernels::push_history_compacted(hist, SlotActivity{s, 0, false},
                                           window, true);
    EXPECT_EQ(hist.size(), static_cast<std::size_t>(s + 1));
  }
  engine_kernels::push_history_compacted(
      hist, SlotActivity{2 * window - 1, 0, true}, window, true);
  ASSERT_EQ(hist.size(), static_cast<std::size_t>(window));
  for (std::size_t k = 0; k < hist.size(); ++k) {
    EXPECT_EQ(hist.data()[k].slot, window + k);  // trailing [4, 8)
  }
  EXPECT_TRUE(hist.data()[hist.size() - 1].jammed);

  // The multi-channel record type compacts under the identical policy.
  ArenaVector<McSlotActivity> mc_hist{arena};
  for (SlotIndex s = 0; s < 2 * window; ++s) {
    engine_kernels::push_history_compacted(
        mc_hist, McSlotActivity{s, 0, s & 1, 0}, window, true);
  }
  ASSERT_EQ(mc_hist.size(), static_cast<std::size_t>(window));
  for (std::size_t k = 0; k < mc_hist.size(); ++k) {
    EXPECT_EQ(mc_hist.data()[k].slot, window + k);
    EXPECT_EQ(mc_hist.data()[k].jam_mask, (window + k) & 1);
  }
}

// ---------------------------------------------------------------------------
// Bulk consultation (jam_run) contract.

TEST(JamRunSinkTest, MergesAdjacentSameFlagSegments) {
  JamRunSink sink;
  EXPECT_TRUE(sink.append(3, true));
  EXPECT_TRUE(sink.append(2, true));
  EXPECT_TRUE(sink.append(1, false));
  ASSERT_EQ(sink.segments().size(), 2u);
  EXPECT_EQ(sink.segments()[0].length, 5u);
  EXPECT_TRUE(sink.segments()[0].decision);
  EXPECT_EQ(sink.segments()[1].length, 1u);
  EXPECT_FALSE(sink.segments()[1].decision);
  EXPECT_EQ(sink.total(), 6u);
}

TEST(JamRunSinkTest, ZeroLengthAppendIsANoOp) {
  JamRunSink sink;
  EXPECT_TRUE(sink.append(0, true));
  EXPECT_EQ(sink.segments().size(), 0u);
  EXPECT_EQ(sink.total(), 0u);
}

TEST(JamRunSinkTest, CapacityOverflowLeavesSinkUnchanged) {
  JamRunSink sink;
  for (std::size_t i = 0; i < JamRunSink::kMaxSegments; ++i) {
    ASSERT_TRUE(sink.append(1, i % 2 == 0));
  }
  const SlotCount total = sink.total();
  // A 65th alternation must fail without growing the sink; a same-flag
  // append still merges into the last segment.
  EXPECT_FALSE(sink.append(1, JamRunSink::kMaxSegments % 2 == 0));
  EXPECT_EQ(sink.total(), total);
  EXPECT_EQ(sink.segments().size(), JamRunSink::kMaxSegments);
  EXPECT_TRUE(sink.append(4, JamRunSink::kMaxSegments % 2 != 0));
  EXPECT_EQ(sink.total(), total + 4);
  sink.reset();
  EXPECT_EQ(sink.segments().size(), 0u);
  EXPECT_EQ(sink.total(), 0u);
}

/// Jams slot s iff s % 3 == 0 — history-oblivious, so a bulk answer is a
/// pure function of [begin, end).  `bulk` selects whether jam_run answers.
class PeriodicJammer final : public SlotAdversary {
 public:
  explicit PeriodicJammer(bool bulk) : bulk_(bulk) {}
  bool jam(SlotIndex slot, std::span<const SlotActivity>) override {
    return slot % 3 == 0;
  }
  bool jam_run(SlotIndex begin, SlotIndex end, std::span<const SlotActivity>,
               JamRunSink& sink) override {
    if (!bulk_) return false;
    ++bulk_calls_;
    for (SlotIndex s = begin; s < end; ++s) {
      if (!sink.append(1, s % 3 == 0)) return false;  // decline on overflow
    }
    return true;
  }
  SlotCount history_window() const override { return 0; }

  bool bulk_;
  int bulk_calls_ = 0;
};

/// Jams iff the previous slot carried a transmission (1-slot lookback),
/// optionally answering jam_run with the run-aware closed form.
class BulkReactive final : public SlotAdversary {
 public:
  explicit BulkReactive(bool bulk) : bulk_(bulk) {}
  bool jam(SlotIndex, std::span<const SlotActivity> history) override {
    return !history.empty() && history.back().senders > 0;
  }
  bool jam_run(SlotIndex begin, SlotIndex end,
               std::span<const SlotActivity> history,
               JamRunSink& sink) override {
    if (!bulk_) return false;
    ++bulk_calls_;
    // Only the first run slot can see a transmission in its lookback.
    const bool first = !history.empty() && history.back().senders > 0;
    sink.append(1, first);
    sink.append(end - begin - 1, false);
    return true;
  }
  SlotCount history_window() const override { return 1; }

  bool bulk_;
  int bulk_calls_ = 0;
};

void expect_identical_runs(const SlotwiseResult& a, const SlotwiseResult& b) {
  EXPECT_EQ(a.jammed_slots, b.jammed_slots);
  EXPECT_EQ(a.event_count, b.event_count);
  ASSERT_EQ(a.rep.obs.size(), b.rep.obs.size());
  for (std::size_t u = 0; u < a.rep.obs.size(); ++u) {
    EXPECT_EQ(a.rep.obs[u].sends, b.rep.obs[u].sends) << "node " << u;
    EXPECT_EQ(a.rep.obs[u].listens, b.rep.obs[u].listens) << "node " << u;
    EXPECT_EQ(a.rep.obs[u].messages, b.rep.obs[u].messages) << "node " << u;
    EXPECT_EQ(a.rep.obs[u].nacks, b.rep.obs[u].nacks) << "node " << u;
    EXPECT_EQ(a.rep.obs[u].noise, b.rep.obs[u].noise) << "node " << u;
    EXPECT_EQ(a.rep.obs[u].clear, b.rep.obs[u].clear) << "node " << u;
    EXPECT_EQ(a.rep.obs[u].first_message_slot, b.rep.obs[u].first_message_slot)
        << "node " << u;
  }
}

TEST(SlotEngineJamRunTest, BulkAnswerMatchesPerSlotPathExactly) {
  // Same strategy with and without the jam_run fast path: every observable
  // (per-node counters, jam count, event count, final RNG position) must
  // coincide — jam_run is a pure optimization.
  std::vector<NodeAction> actions = {NodeAction{0.01, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 0.01}};
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    PeriodicJammer bulk(true), scalar(false);
    Rng rng_bulk(seed), rng_scalar(seed);
    const auto a = run_repetition_slotwise(2000, actions, bulk, rng_bulk);
    const auto b = run_repetition_slotwise(2000, actions, scalar, rng_scalar);
    expect_identical_runs(a, b);
    EXPECT_EQ(rng_bulk.next_u64(), rng_scalar.next_u64()) << "seed " << seed;
  }
}

TEST(SlotEngineJamRunTest, ReactiveBulkAnswerMatchesPerSlotPath) {
  std::vector<NodeAction> actions = {NodeAction{0.005, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 0.005}};
  for (std::uint64_t seed = 20; seed <= 30; ++seed) {
    BulkReactive bulk(true), scalar(false);
    Rng rng_bulk(seed), rng_scalar(seed);
    const auto a = run_repetition_slotwise(5000, actions, bulk, rng_bulk);
    const auto b = run_repetition_slotwise(5000, actions, scalar, rng_scalar);
    expect_identical_runs(a, b);
    EXPECT_EQ(rng_bulk.next_u64(), rng_scalar.next_u64()) << "seed " << seed;
    EXPECT_GT(bulk.bulk_calls_, 0) << "fast path never exercised";
    EXPECT_EQ(scalar.bulk_calls_, 0);
  }
}

TEST(SlotEngineJamRunTest, DecliningAdversaryStillRunsCorrectly) {
  // PeriodicJammer's per-slot appends overflow the sink on runs longer than
  // ~2 * kMaxSegments slots, forcing the mid-call decline path; with p this
  // sparse both accepted and declined runs occur in one phase.
  std::vector<NodeAction> actions = {NodeAction{0.002, Payload::kMessage, 0.0}};
  PeriodicJammer bulk(true), scalar(false);
  Rng rng_bulk(7), rng_scalar(7);
  const auto a = run_repetition_slotwise(20000, actions, bulk, rng_bulk);
  const auto b = run_repetition_slotwise(20000, actions, scalar, rng_scalar);
  expect_identical_runs(a, b);
  // slots 0, 3, 6, ... jammed regardless of which path decided them.
  EXPECT_EQ(a.jammed_slots, (20000 + 2) / 3);
}

/// Answers jam_run (never jams) while the per-slot jam() audits that the
/// engine materialized every bulk-decided slot into the history.
class BulkHistoryAuditor final : public SlotAdversary {
 public:
  bool jam(SlotIndex slot, std::span<const SlotActivity> history) override {
    complete_ = complete_ && history.size() == slot;
    for (std::size_t k = 0; k < history.size(); ++k) {
      ordered_ = ordered_ && history[k].slot == k && !history[k].jammed;
    }
    return false;
  }
  bool jam_run(SlotIndex begin, SlotIndex end, std::span<const SlotActivity>,
               JamRunSink& sink) override {
    ++bulk_calls_;
    sink.append(end - begin, false);
    return true;
  }

  bool complete_ = true;
  bool ordered_ = true;
  int bulk_calls_ = 0;
};

TEST(SlotEngineJamRunTest, UnboundedHistoryIsMaterializedAcrossBulkRuns) {
  std::vector<NodeAction> actions = {NodeAction{0.01, Payload::kMessage, 0.0}};
  BulkHistoryAuditor adv;
  Rng rng(14);
  run_repetition_slotwise(3000, actions, adv, rng);
  EXPECT_GT(adv.bulk_calls_, 0);
  EXPECT_TRUE(adv.complete_);
  EXPECT_TRUE(adv.ordered_);
}

TEST(SlotEngineEventTest, ZeroSlotsIsANoOp) {
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0}};
  PassiveAdversary adv;
  Rng rng(13);
  const auto r = run_repetition_slotwise(0, actions, adv, rng);
  EXPECT_EQ(r.event_count, 0u);
  EXPECT_EQ(r.jammed_slots, 0u);
  EXPECT_EQ(r.rep.obs[0].sends, 0u);
}

}  // namespace
}  // namespace rcb
