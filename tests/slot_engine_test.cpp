// Tests for the slot-by-slot engine and reactive adversaries.
#include "rcb/sim/slot_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rcb/rng/rng.hpp"

namespace rcb {
namespace {

/// Never jams.
class PassiveAdversary final : public SlotAdversary {
 public:
  bool jam(SlotIndex, std::span<const SlotActivity>) override { return false; }
};

/// Jams every slot.
class AlwaysJam final : public SlotAdversary {
 public:
  bool jam(SlotIndex, std::span<const SlotActivity>) override { return true; }
};

/// Reactive: jams slot t iff slot t-1 carried at least one transmission.
class ReactiveAdversary final : public SlotAdversary {
 public:
  bool jam(SlotIndex, std::span<const SlotActivity> history) override {
    return !history.empty() && history.back().senders > 0;
  }
};

TEST(SlotEngineTest, DeliveryWithoutJamming) {
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0}};
  PassiveAdversary adv;
  Rng rng(1);
  auto r = run_repetition_slotwise(100, actions, adv, rng);
  EXPECT_EQ(r.rep.obs[1].messages, 100u);
  EXPECT_EQ(r.jammed_slots, 0u);
}

TEST(SlotEngineTest, FullJamBlocksEverything) {
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0}};
  AlwaysJam adv;
  Rng rng(2);
  auto r = run_repetition_slotwise(100, actions, adv, rng);
  EXPECT_EQ(r.rep.obs[1].messages, 0u);
  EXPECT_EQ(r.rep.obs[1].noise, 100u);
  EXPECT_EQ(r.jammed_slots, 100u);
}

TEST(SlotEngineTest, ReactiveAdversarySeesHistory) {
  // Sender transmits in every slot, so the reactive adversary jams every
  // slot except the first.
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0}};
  ReactiveAdversary adv;
  Rng rng(3);
  auto r = run_repetition_slotwise(50, actions, adv, rng);
  EXPECT_EQ(r.jammed_slots, 49u);
  EXPECT_EQ(r.rep.obs[1].messages, 1u);
  EXPECT_EQ(r.rep.obs[1].first_message_slot, 0u);
}

TEST(SlotEngineTest, HalfDuplexSendWins) {
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 1.0}};
  PassiveAdversary adv;
  Rng rng(4);
  auto r = run_repetition_slotwise(30, actions, adv, rng);
  EXPECT_EQ(r.rep.obs[0].sends, 30u);
  EXPECT_EQ(r.rep.obs[0].listens, 0u);
}

TEST(SlotEngineTest, CollisionsAreNoise) {
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0},
                                     NodeAction{1.0, Payload::kNack, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0}};
  PassiveAdversary adv;
  Rng rng(5);
  auto r = run_repetition_slotwise(40, actions, adv, rng);
  EXPECT_EQ(r.rep.obs[2].noise, 40u);
}

TEST(SlotEngineTest, ClearSlotCountingMatchesActivity) {
  // Nobody sends: listener hears clear in every listened slot.
  std::vector<NodeAction> actions = {NodeAction{0.0, Payload::kNoise, 0.5}};
  PassiveAdversary adv;
  Rng rng(6);
  auto r = run_repetition_slotwise(1000, actions, adv, rng);
  EXPECT_EQ(r.rep.obs[0].clear, r.rep.obs[0].listens);
  EXPECT_GT(r.rep.obs[0].listens, 400u);
  EXPECT_LT(r.rep.obs[0].listens, 600u);
}

}  // namespace
}  // namespace rcb
