// Cross-validation of the two channel engines.
//
// The batch (event-driven) engine and the slotwise engine implement the
// same channel semantics through entirely different code paths.  With the
// same per-slot action probabilities and equivalent jam schedules, their
// observation distributions must agree.  We compare Monte-Carlo means with
// tolerance scaled to the standard error.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "rcb/rng/rng.hpp"
#include "rcb/sim/cca.hpp"
#include "rcb/sim/faults.hpp"
#include "rcb/sim/repetition_engine.hpp"
#include "rcb/sim/slot_engine.hpp"
#include "rcb/stats/rank_test.hpp"

namespace rcb {
namespace {

/// Slotwise adversary replaying a fixed schedule.
class ScheduleAdversary final : public SlotAdversary {
 public:
  explicit ScheduleAdversary(const JamSchedule& js) : js_(&js) {}
  bool jam(SlotIndex slot, std::span<const SlotActivity>) override {
    return js_->is_jammed(slot);
  }
  SlotCount history_window() const override { return 0; }

 private:
  const JamSchedule* js_;
};

struct Moments {
  double sends = 0, listens = 0, clear = 0, messages = 0, noise = 0;

  void accumulate(const NodeObservation& o, double weight) {
    sends += weight * static_cast<double>(o.sends);
    listens += weight * static_cast<double>(o.listens);
    clear += weight * static_cast<double>(o.clear);
    messages += weight * static_cast<double>(o.messages);
    noise += weight * static_cast<double>(o.noise);
  }
};

class EngineCrosscheckTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(EngineCrosscheckTest, MeansAgree) {
  const auto [send_p, listen_p, jam_q] = GetParam();
  const SlotCount slots = 512;
  const int trials = 300;
  const JamSchedule jam = JamSchedule::blocking_fraction(slots, jam_q);

  std::vector<NodeAction> actions = {
      NodeAction{send_p, Payload::kMessage, listen_p},
      NodeAction{send_p / 2, Payload::kNoise, listen_p},
      NodeAction{0.0, Payload::kNoise, std::min(1.0, listen_p * 2)},
  };

  Moments batch[3], slotwise[3];
  const double w = 1.0 / trials;
  for (int t = 0; t < trials; ++t) {
    {
      Rng rng = Rng::stream(1, t);
      auto r = run_repetition(slots, actions, jam, rng);
      for (int u = 0; u < 3; ++u) batch[u].accumulate(r.obs[u], w);
    }
    {
      Rng rng = Rng::stream(2, t);
      ScheduleAdversary adv(jam);
      auto r = run_repetition_slotwise(slots, actions, adv, rng);
      for (int u = 0; u < 3; ++u) slotwise[u].accumulate(r.rep.obs[u], w);
    }
  }

  // Standard error of a per-slot-count mean is at most
  // sqrt(slots)/sqrt(trials) ~ 1.3; use 6-sigma-ish tolerances plus floor.
  auto close = [&](double a, double b, const char* what, int node) {
    const double tol = 6.0 * std::sqrt(std::max(a, b) / trials + 0.01) + 0.5;
    EXPECT_NEAR(a, b, tol) << what << " node=" << node << " send_p=" << send_p
                           << " listen_p=" << listen_p << " q=" << jam_q;
  };
  for (int u = 0; u < 3; ++u) {
    close(batch[u].sends, slotwise[u].sends, "sends", u);
    close(batch[u].listens, slotwise[u].listens, "listens", u);
    close(batch[u].clear, slotwise[u].clear, "clear", u);
    close(batch[u].messages, slotwise[u].messages, "messages", u);
    close(batch[u].noise, slotwise[u].noise, "noise", u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineCrosscheckTest,
    ::testing::Values(std::make_tuple(0.02, 0.05, 0.0),
                      std::make_tuple(0.02, 0.05, 0.5),
                      std::make_tuple(0.1, 0.1, 0.25),
                      std::make_tuple(0.5, 0.5, 0.1),
                      std::make_tuple(0.0, 0.3, 0.9),
                      std::make_tuple(1.0, 1.0, 0.0)));

TEST(EngineCrosscheckFaultTest, MeansAgreeUnderImperfectCca) {
  const SlotCount slots = 512;
  const int trials = 300;
  const JamSchedule jam = JamSchedule::blocking_fraction(slots, 0.4);
  const CcaModel cca{0.15, 0.1};

  std::vector<NodeAction> actions = {
      NodeAction{0.05, Payload::kMessage, 0.2},
      NodeAction{0.02, Payload::kNoise, 0.3},
      NodeAction{0.0, Payload::kNoise, 0.5},
  };

  Moments batch[3], slotwise[3];
  const double w = 1.0 / trials;
  for (int t = 0; t < trials; ++t) {
    {
      Rng rng = Rng::stream(11, t);
      auto r = run_repetition(slots, actions, jam, rng, nullptr, cca);
      for (int u = 0; u < 3; ++u) batch[u].accumulate(r.obs[u], w);
    }
    {
      Rng rng = Rng::stream(12, t);
      ScheduleAdversary adv(jam);
      auto r = run_repetition_slotwise(slots, actions, adv, rng, cca);
      for (int u = 0; u < 3; ++u) slotwise[u].accumulate(r.rep.obs[u], w);
    }
  }

  auto close = [&](double a, double b, const char* what, int node) {
    const double tol = 6.0 * std::sqrt(std::max(a, b) / trials + 0.01) + 0.5;
    EXPECT_NEAR(a, b, tol) << what << " node=" << node;
  };
  for (int u = 0; u < 3; ++u) {
    close(batch[u].sends, slotwise[u].sends, "sends", u);
    close(batch[u].listens, slotwise[u].listens, "listens", u);
    close(batch[u].clear, slotwise[u].clear, "clear", u);
    close(batch[u].messages, slotwise[u].messages, "messages", u);
    close(batch[u].noise, slotwise[u].noise, "noise", u);
  }
}

TEST(EngineCrosscheckFaultTest, MeansAgreeUnderActiveFaultPlan) {
  // Node-level fault decisions (crash timelines, skew) are pure functions
  // of the fault seed, so giving each engine its own FaultPlan built from
  // the same config puts the same nodes down in the same slots; the
  // remaining per-reception faults (loss/corruption) are i.i.d. draws, so
  // the Monte-Carlo means must still agree.
  const SlotCount slots = 512;
  const int trials = 300;
  const JamSchedule jam = JamSchedule::blocking_fraction(slots, 0.3);

  FaultConfig cfg;
  cfg.seed = 17;
  cfg.crash_rate = 0.003;
  cfg.restart_rate = 0.01;
  cfg.loss_rate = 0.2;
  cfg.corruption_rate = 0.1;
  cfg.clock_skew_rate = 0.15;

  std::vector<NodeAction> actions = {
      NodeAction{0.05, Payload::kMessage, 0.2},
      NodeAction{0.02, Payload::kNoise, 0.3},
      NodeAction{0.0, Payload::kNoise, 0.5},
  };

  Moments batch[3], slotwise[3];
  const double w = 1.0 / trials;
  for (int t = 0; t < trials; ++t) {
    {
      FaultPlan faults(cfg);
      Rng rng = Rng::stream(21, t);
      auto r = run_repetition(slots, actions, jam, rng, nullptr, CcaModel{},
                              &faults);
      for (int u = 0; u < 3; ++u) batch[u].accumulate(r.obs[u], w);
    }
    {
      FaultPlan faults(cfg);
      Rng rng = Rng::stream(22, t);
      ScheduleAdversary adv(jam);
      auto r =
          run_repetition_slotwise(slots, actions, adv, rng, CcaModel{}, &faults);
      for (int u = 0; u < 3; ++u) slotwise[u].accumulate(r.rep.obs[u], w);
    }
  }

  auto close = [&](double a, double b, const char* what, int node) {
    const double tol = 6.0 * std::sqrt(std::max(a, b) / trials + 0.01) + 0.5;
    EXPECT_NEAR(a, b, tol) << what << " node=" << node;
  };
  for (int u = 0; u < 3; ++u) {
    close(batch[u].sends, slotwise[u].sends, "sends", u);
    close(batch[u].listens, slotwise[u].listens, "listens", u);
    close(batch[u].clear, slotwise[u].clear, "clear", u);
    close(batch[u].messages, slotwise[u].messages, "messages", u);
    close(batch[u].noise, slotwise[u].noise, "noise", u);
  }
}

TEST(EngineCrosscheckFaultTest, EventPathMatchesDenseReferenceUnderFaultsAndCca) {
  // The rewritten event-driven slotwise path vs the original per-slot loop
  // (kept as run_repetition_slotwise_dense): identical per-slot marginals,
  // different Rng draw order, so Monte-Carlo means must agree — here with
  // BOTH an imperfect CCA and an active fault plan, and a genuinely
  // reactive adversary (identical jam decisions on both paths are not
  // guaranteed per run, only distributionally — the adversary reacts to
  // sampled activity).
  const SlotCount slots = 512;
  const int trials = 300;
  const CcaModel cca{0.1, 0.1};

  FaultConfig cfg;
  cfg.seed = 33;
  cfg.crash_rate = 0.002;
  cfg.restart_rate = 0.01;
  cfg.loss_rate = 0.15;
  cfg.corruption_rate = 0.05;
  cfg.clock_skew_rate = 0.1;

  /// Jams whenever the previous slot carried a transmission.
  class Reactive final : public SlotAdversary {
   public:
    bool jam(SlotIndex, std::span<const SlotActivity> history) override {
      return !history.empty() && history.back().senders > 0;
    }
    SlotCount history_window() const override { return 1; }
  };

  std::vector<NodeAction> actions = {
      NodeAction{0.05, Payload::kMessage, 0.2},
      NodeAction{0.02, Payload::kNoise, 0.3},
      NodeAction{0.0, Payload::kNoise, 0.5},
  };

  Moments event[3], dense[3];
  double event_jammed = 0, dense_jammed = 0;
  const double w = 1.0 / trials;
  for (int t = 0; t < trials; ++t) {
    {
      FaultPlan faults(cfg);
      Reactive adv;
      Rng rng = Rng::stream(31, t);
      auto r = run_repetition_slotwise(slots, actions, adv, rng, cca, &faults);
      for (int u = 0; u < 3; ++u) event[u].accumulate(r.rep.obs[u], w);
      event_jammed += w * static_cast<double>(r.jammed_slots);
    }
    {
      FaultPlan faults(cfg);
      Reactive adv;
      Rng rng = Rng::stream(32, t);
      auto r =
          run_repetition_slotwise_dense(slots, actions, adv, rng, cca, &faults);
      for (int u = 0; u < 3; ++u) dense[u].accumulate(r.rep.obs[u], w);
      dense_jammed += w * static_cast<double>(r.jammed_slots);
    }
  }

  auto close = [&](double a, double b, const char* what, int node) {
    const double tol = 6.0 * std::sqrt(std::max(a, b) / trials + 0.01) + 0.5;
    EXPECT_NEAR(a, b, tol) << what << " node=" << node;
  };
  for (int u = 0; u < 3; ++u) {
    close(event[u].sends, dense[u].sends, "sends", u);
    close(event[u].listens, dense[u].listens, "listens", u);
    close(event[u].clear, dense[u].clear, "clear", u);
    close(event[u].messages, dense[u].messages, "messages", u);
    close(event[u].noise, dense[u].noise, "noise", u);
  }
  close(event_jammed, dense_jammed, "jammed_slots", -1);
}

TEST(EngineCrosscheckRankTest, DistributionsAgreeUnderBonferroniFamily) {
  // Distribution-level crosscheck: instead of comparing means with ad-hoc
  // sigma tolerances, compare the per-run observation totals of the two
  // slotwise paths with Mann-Whitney rank gates.  The whole family of
  // (metric x node) comparisons shares one false-positive budget via
  // bonferroni_alpha, so this test's flake probability is bounded by
  // kFamilyAlpha by construction — the same decision rule the fuzz
  // harness's crosscheck oracle applies (src/rcb/testing/oracles.cpp).
  const SlotCount slots = 384;
  const int trials = 120;
  const CcaModel cca{0.1, 0.05};

  FaultConfig cfg;
  cfg.seed = 91;
  cfg.crash_rate = 0.002;
  cfg.restart_rate = 0.02;
  cfg.loss_rate = 0.1;
  cfg.corruption_rate = 0.05;

  class Reactive final : public SlotAdversary {
   public:
    bool jam(SlotIndex, std::span<const SlotActivity> history) override {
      return !history.empty() && history.back().senders > 0;
    }
    SlotCount history_window() const override { return 1; }
  };

  const std::vector<NodeAction> actions = {
      NodeAction{0.05, Payload::kMessage, 0.2},
      NodeAction{0.02, Payload::kNoise, 0.3},
      NodeAction{0.0, Payload::kNoise, 0.5},
  };
  const std::size_t n = actions.size();

  // samples[engine][node * kMetrics + metric][trial]
  constexpr int kMetrics = 5;
  std::vector<std::vector<double>> event(n * kMetrics),
      dense(n * kMetrics);
  const auto record = [&](std::vector<std::vector<double>>& dst,
                          const RepetitionResult& rep) {
    for (std::size_t u = 0; u < n; ++u) {
      const NodeObservation& o = rep.obs[u];
      dst[u * kMetrics + 0].push_back(static_cast<double>(o.sends));
      dst[u * kMetrics + 1].push_back(static_cast<double>(o.listens));
      dst[u * kMetrics + 2].push_back(static_cast<double>(o.clear));
      dst[u * kMetrics + 3].push_back(static_cast<double>(o.messages));
      dst[u * kMetrics + 4].push_back(static_cast<double>(o.noise));
    }
  };

  for (int t = 0; t < trials; ++t) {
    {
      FaultPlan faults(cfg);
      Reactive adv;
      Rng rng = Rng::stream(41, t);
      record(event,
             run_repetition_slotwise(slots, actions, adv, rng, cca, &faults)
                 .rep);
    }
    {
      FaultPlan faults(cfg);
      Reactive adv;
      Rng rng = Rng::stream(42, t);
      record(dense, run_repetition_slotwise_dense(slots, actions, adv, rng,
                                                  cca, &faults)
                        .rep);
    }
  }

  const double kFamilyAlpha = 1e-4;
  const double alpha = bonferroni_alpha(kFamilyAlpha, n * kMetrics);
  const char* const kMetricNames[kMetrics] = {"sends", "listens", "clear",
                                              "messages", "noise"};
  for (std::size_t u = 0; u < n; ++u) {
    for (int m = 0; m < kMetrics; ++m) {
      const auto& xs = event[u * kMetrics + m];
      const auto& ys = dense[u * kMetrics + m];
      const MannWhitneyResult r = mann_whitney(xs, ys);
      EXPECT_FALSE(rank_gate_rejects(xs, ys, alpha))
          << "node " << u << " metric " << kMetricNames[m]
          << ": engines disagree (p=" << r.p_value
          << ", effect=" << r.effect << ", alpha=" << alpha << ")";
    }
  }
}

}  // namespace
}  // namespace rcb
