// Tests for the halt-on-count strawman baseline.
#include "rcb/protocols/naive_broadcast.hpp"

#include <gtest/gtest.h>

#include "rcb/rng/rng.hpp"

namespace rcb {
namespace {

TEST(NaiveBroadcastTest, NoJamInformsEveryone) {
  const BroadcastNParams params = BroadcastNParams::sim();
  for (std::uint32_t n : {2u, 8u, 32u}) {
    int all_informed = 0;
    const int trials = 15;
    for (int t = 0; t < trials; ++t) {
      NoJamAdversary adv;
      Rng rng = Rng::stream(1000 + n, t);
      const auto r = run_naive_broadcast(n, params, adv, rng);
      all_informed += r.all_informed;
      EXPECT_TRUE(r.all_terminated) << "n=" << n;
    }
    EXPECT_GE(all_informed, trials - 2) << "n=" << n;
  }
}

TEST(NaiveBroadcastTest, SingleNodeTerminates) {
  const BroadcastNParams params = BroadcastNParams::sim();
  NoJamAdversary adv;
  Rng rng(1);
  const auto r = run_naive_broadcast(1, params, adv, rng);
  EXPECT_TRUE(r.all_terminated);
}

TEST(NaiveBroadcastTest, StatusesAreOnlyNaiveOnes) {
  const BroadcastNParams params = BroadcastNParams::sim();
  NoJamAdversary adv;
  Rng rng(2);
  const auto r = run_naive_broadcast(16, params, adv, rng);
  for (const auto& node : r.nodes) {
    EXPECT_NE(node.final_status, BroadcastStatus::kHelper);
    EXPECT_DOUBLE_EQ(node.n_estimate, 0.0);
  }
}

TEST(NaiveBroadcastTest, InvariantHolds) {
  const BroadcastNParams params = BroadcastNParams::sim();
  for (int t = 0; t < 6; ++t) {
    SuffixBlockerAdversary adv(Budget(30000), 0.5);
    Rng rng = Rng::stream(1100, t);
    const auto r = run_naive_broadcast(12, params, adv, rng);
    for (const auto& node : r.nodes) EXPECT_LE(node.cost, r.latency);
    EXPECT_EQ(r.adversary_cost, adv.budget().spent());
  }
}

}  // namespace
}  // namespace rcb
