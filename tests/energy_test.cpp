// Tests for energy ledgers.
#include "rcb/sim/energy.hpp"

#include <gtest/gtest.h>

namespace rcb {
namespace {

TEST(EnergyLedgerTest, StartsAtZero) {
  EnergyLedger ledger(3);
  EXPECT_EQ(ledger.num_nodes(), 3u);
  EXPECT_EQ(ledger.max_node_cost(), 0u);
  EXPECT_EQ(ledger.total_node_cost(), 0u);
  EXPECT_EQ(ledger.adversary_cost(), 0u);
  EXPECT_DOUBLE_EQ(ledger.mean_node_cost(), 0.0);
}

TEST(EnergyLedgerTest, ChargesAccumulate) {
  EnergyLedger ledger(2);
  ledger.charge_send(0);
  ledger.charge_send(0, 4);
  ledger.charge_listen(1, 10);
  EXPECT_EQ(ledger.node(0).sends, 5u);
  EXPECT_EQ(ledger.node(0).listens, 0u);
  EXPECT_EQ(ledger.node(1).listens, 10u);
  EXPECT_EQ(ledger.node(0).total(), 5u);
  EXPECT_EQ(ledger.max_node_cost(), 10u);
  EXPECT_EQ(ledger.total_node_cost(), 15u);
  EXPECT_DOUBLE_EQ(ledger.mean_node_cost(), 7.5);
}

TEST(EnergyLedgerTest, AdversaryIndependentOfNodes) {
  EnergyLedger ledger(1);
  ledger.charge_adversary(100);
  ledger.charge_adversary(23);
  EXPECT_EQ(ledger.adversary_cost(), 123u);
  EXPECT_EQ(ledger.total_node_cost(), 0u);
}

TEST(EnergyLedgerTest, ZeroNodesMeanIsZero) {
  EnergyLedger ledger(0);
  EXPECT_DOUBLE_EQ(ledger.mean_node_cost(), 0.0);
}

TEST(EnergyLedgerDeathTest, OutOfRangeNodeRejected) {
  EnergyLedger ledger(2);
  EXPECT_DEATH(ledger.charge_send(2), "precondition");
  EXPECT_DEATH(ledger.node(5), "precondition");
}

}  // namespace
}  // namespace rcb
