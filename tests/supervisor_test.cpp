// Tests for the crash-safe sweep supervisor: resume determinism, watchdog
// quarantine, deterministic slot budgets, retry-with-reseed, contract
// capture, and graceful shutdown.
#include "rcb/runtime/supervisor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rcb/common/contracts.hpp"
#include "rcb/runtime/cancel.hpp"

namespace rcb {
namespace {

namespace fs = std::filesystem;

Scenario fast_scenario(std::size_t trials = 12) {
  Scenario s;
  s.protocol = "one_to_one";
  s.adversary = "full_duel";
  s.budget = 512;
  s.trials = trials;
  s.seed = 99;
  return s;
}

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_sweep_shutdown();
    dir_ = (fs::temp_directory_path() /
            ("rcb_sup_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    reset_sweep_shutdown();
    fs::remove_all(dir_);
  }

  std::string dir_;
  ThreadPool pool_{4};
};

TEST_F(SupervisorTest, UncheckpointedSweepMatchesPlainExecution) {
  const Scenario s = fast_scenario();
  const SweepResult sweep = run_supervised_sweep(s, {}, pool_);
  ASSERT_TRUE(sweep.ok) << sweep.error;
  EXPECT_FALSE(sweep.interrupted);
  ASSERT_EQ(sweep.records.size(), s.trials);
  for (std::uint64_t t = 0; t < s.trials; ++t) {
    EXPECT_EQ(sweep.records[t].trial, t);
    EXPECT_EQ(sweep.records[t].status, "ok");
    EXPECT_EQ(sweep.records[t].outcome.digest,
              run_scenario_trial(s, t).digest);
  }
}

TEST_F(SupervisorTest, InterruptedSweepResumesToIdenticalAggregate) {
  const Scenario s = fast_scenario(16);
  const SweepResult reference = run_supervised_sweep(s, {}, pool_);
  ASSERT_TRUE(reference.ok) << reference.error;

  // First run: request shutdown once a few trials have completed.  The
  // sweep drains, journals the completed prefix, and reports interrupted.
  SupervisorOptions opt;
  opt.checkpoint_dir = dir_;
  std::atomic<int> completed{0};
  const TrialRunner interrupting = [&](const Scenario& sc, std::uint64_t t,
                                       std::uint32_t) {
    const TrialOutcome o = run_scenario_trial(sc, t);
    if (completed.fetch_add(1) + 1 >= 4) request_sweep_shutdown();
    return o;
  };
  const SweepResult partial = run_supervised_sweep(s, opt, pool_, interrupting);
  ASSERT_TRUE(partial.ok) << partial.error;
  EXPECT_TRUE(partial.interrupted);
  ASSERT_GE(partial.records.size(), 4u);
  ASSERT_LT(partial.records.size(), s.trials);

  // Second run: resume.  Completed trials load from the journal (executed
  // counts only the remainder) and the aggregate digest is bit-identical
  // to the uninterrupted reference.
  reset_sweep_shutdown();
  opt.resume = true;
  const SweepResult resumed = run_supervised_sweep(s, opt, pool_);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.resumed, partial.records.size());
  EXPECT_EQ(resumed.executed, s.trials - partial.records.size());
  ASSERT_EQ(resumed.records.size(), s.trials);
  EXPECT_EQ(resumed.aggregate_digest, reference.aggregate_digest);
}

TEST_F(SupervisorTest, ResumeIgnoresConflictingScenarioFlags) {
  const Scenario s = fast_scenario(6);
  SupervisorOptions opt;
  opt.checkpoint_dir = dir_;
  const SweepResult first = run_supervised_sweep(s, opt, pool_);
  ASSERT_TRUE(first.ok) << first.error;

  Scenario conflicting = s;
  conflicting.seed = 12345;
  conflicting.trials = 100;
  opt.resume = true;
  const SweepResult resumed = run_supervised_sweep(conflicting, opt, pool_);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  // The manifest scenario is authoritative: nothing re-ran, nothing grew.
  EXPECT_EQ(resumed.scenario.seed, s.seed);
  EXPECT_EQ(resumed.scenario.trials, s.trials);
  EXPECT_EQ(resumed.resumed, s.trials);
  EXPECT_EQ(resumed.executed, 0u);
  EXPECT_EQ(resumed.aggregate_digest, first.aggregate_digest);
}

TEST_F(SupervisorTest, ResumeWithoutManifestStartsFresh) {
  SupervisorOptions opt;
  opt.checkpoint_dir = dir_;
  opt.resume = true;  // nothing there yet — must not fail
  const SweepResult sweep = run_supervised_sweep(fast_scenario(4), opt, pool_);
  ASSERT_TRUE(sweep.ok) << sweep.error;
  EXPECT_EQ(sweep.resumed, 0u);
  EXPECT_EQ(sweep.executed, 4u);
}

TEST_F(SupervisorTest, WatchdogQuarantinesStuckTrialWithoutStallingSweep) {
  const Scenario s = fast_scenario(6);
  SupervisorOptions opt;
  opt.trial_timeout_sec = 0.1;
  // Trial 2 spins forever, polling cancellation as the engines do; the
  // watchdog must cancel it while the other trials complete normally.
  const TrialRunner stuck_at_2 = [](const Scenario& sc, std::uint64_t t,
                                    std::uint32_t) {
    if (t == 2) {
      for (;;) poll_cancellation(64);
    }
    return run_scenario_trial(sc, t);
  };
  const SweepResult sweep = run_supervised_sweep(s, opt, pool_, stuck_at_2);
  ASSERT_TRUE(sweep.ok) << sweep.error;
  ASSERT_EQ(sweep.records.size(), s.trials);
  EXPECT_EQ(sweep.timed_out, 1u);
  EXPECT_EQ(sweep.records[2].status, "timed_out");
  EXPECT_TRUE(sweep.records[2].outcome.aborted);
  for (std::uint64_t t = 0; t < s.trials; ++t) {
    if (t != 2) {
      EXPECT_EQ(sweep.records[t].status, "ok") << t;
    }
  }
}

TEST_F(SupervisorTest, SlotBudgetQuarantineIsDeterministic) {
  const Scenario s = fast_scenario(6);
  SupervisorOptions opt;
  opt.checkpoint_dir = dir_;
  // Generous enough that real trials (a few thousand slots at this budget)
  // finish; only the spinning trial exhausts it.
  opt.trial_slot_budget = 100000;
  const TrialRunner stuck_at_1 = [](const Scenario& sc, std::uint64_t t,
                                    std::uint32_t) {
    if (t == 1) {
      for (;;) poll_cancellation(64);
    }
    return run_scenario_trial(sc, t);
  };
  const SweepResult a = run_supervised_sweep(s, opt, pool_, stuck_at_1);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.records[1].status, "timed_out");

  fs::remove_all(dir_);
  const SweepResult b = run_supervised_sweep(s, opt, pool_, stuck_at_1);
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.aggregate_digest, b.aggregate_digest);
}

TEST_F(SupervisorTest, RetryWithReseedRecoversFlakyTrial) {
  const Scenario s = fast_scenario(5);
  SupervisorOptions opt;
  opt.max_retries = 2;
  std::atomic<int> attempts_seen{0};
  const TrialRunner flaky = [&](const Scenario& sc, std::uint64_t t,
                                std::uint32_t attempt) {
    if (t == 3) {
      attempts_seen.fetch_add(1);
      if (attempt < 2) throw std::runtime_error("injected fault");
      // The runner always receives the original scenario; reseeding is the
      // runner's job (the default runner uses reseed_for_attempt).
      EXPECT_EQ(sc.seed, fast_scenario().seed);
    }
    return run_scenario_trial(sc, t);
  };
  const SweepResult sweep = run_supervised_sweep(s, opt, pool_, flaky);
  ASSERT_TRUE(sweep.ok) << sweep.error;
  EXPECT_EQ(attempts_seen.load(), 3);
  EXPECT_EQ(sweep.records[3].status, "ok");
  EXPECT_EQ(sweep.records[3].attempts, 3u);
  EXPECT_EQ(sweep.failed_trials, 0u);
}

TEST_F(SupervisorTest, ExhaustedRetriesQuarantineAsFailed) {
  const Scenario s = fast_scenario(4);
  SupervisorOptions opt;
  opt.max_retries = 1;
  const TrialRunner dies = [](const Scenario& sc, std::uint64_t t,
                              std::uint32_t) -> TrialOutcome {
    if (t == 0) throw std::runtime_error("always dies");
    return run_scenario_trial(sc, t);
  };
  const SweepResult sweep = run_supervised_sweep(s, opt, pool_, dies);
  ASSERT_TRUE(sweep.ok) << sweep.error;
  EXPECT_EQ(sweep.failed_trials, 1u);
  EXPECT_EQ(sweep.records[0].status, "failed");
  EXPECT_EQ(sweep.records[0].attempts, 2u);
  EXPECT_EQ(sweep.records[1].status, "ok");
}

struct ContractCaught : std::runtime_error {
  explicit ContractCaught(std::string record)
      : std::runtime_error("contract"), record_json(std::move(record)) {}
  std::string record_json;
};

[[noreturn]] void throwing_handler(std::string_view record_json) {
  throw ContractCaught(std::string(record_json));
}

TEST_F(SupervisorTest, ContractFailureInsideTrialIsCapturedNotFatal) {
  // A forced contract failure inside a supervised trial must not abort the
  // process (nor reach the ambient handler); the trial is journaled as
  // failed and the sweep completes.  Afterwards the supervisor's capture
  // handler is uninstalled, restoring the previous chain.
  const ContractFailureHandler previous =
      set_contract_failure_handler(&throwing_handler);
  const Scenario s = fast_scenario(4);
  const TrialRunner trips = [](const Scenario& sc, std::uint64_t t,
                               std::uint32_t) {
    if (t == 1) RCB_REQUIRE(1 + 1 == 3);
    return run_scenario_trial(sc, t);
  };
  const SweepResult sweep = run_supervised_sweep(s, {}, pool_, trips);
  ASSERT_TRUE(sweep.ok) << sweep.error;
  EXPECT_EQ(sweep.records[1].status, "failed");
  EXPECT_EQ(sweep.failed_trials, 1u);
  // Outside any supervised trial the restored handler chain fires again.
  EXPECT_THROW(RCB_REQUIRE(2 + 2 == 5), ContractCaught);
  set_contract_failure_handler(previous);
}

TEST_F(SupervisorTest, ReseedForAttemptIsStableAndDistinct) {
  EXPECT_EQ(reseed_for_attempt(42, 0), 42u);
  EXPECT_NE(reseed_for_attempt(42, 1), 42u);
  EXPECT_NE(reseed_for_attempt(42, 1), reseed_for_attempt(42, 2));
  EXPECT_EQ(reseed_for_attempt(42, 1), reseed_for_attempt(42, 1));
}

TEST_F(SupervisorTest, AggregateDigestSensitiveToOutcomeAndOrder) {
  std::vector<CheckpointRecord> recs(2);
  recs[0].trial = 0;
  recs[0].outcome.digest = 111;
  recs[1].trial = 1;
  recs[1].outcome.digest = 222;
  const std::uint64_t base = aggregate_digest(recs);
  recs[1].outcome.digest = 223;
  EXPECT_NE(aggregate_digest(recs), base);
  recs[1].outcome.digest = 222;
  std::swap(recs[0], recs[1]);
  EXPECT_NE(aggregate_digest(recs), base);
}

TEST_F(SupervisorTest, InvalidScenarioReportsError) {
  Scenario s = fast_scenario();
  s.protocol = "no_such_protocol";
  const SweepResult sweep = run_supervised_sweep(s, {}, pool_);
  EXPECT_FALSE(sweep.ok);
  EXPECT_FALSE(sweep.error.empty());
}

std::vector<SweepPoint> three_points(const std::string& parent = "") {
  std::vector<SweepPoint> points(3);
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].scenario = fast_scenario(6 + 2 * i);
    points[i].scenario.budget = 256u << i;
    points[i].scenario.seed = 99 + i * 1000003;
    if (!parent.empty()) {
      points[i].checkpoint_dir = parent + "/point_" + std::to_string(i);
    }
  }
  return points;
}

TEST_F(SupervisorTest, MultiPointMatchesPerPointSequential) {
  // The pipelined scheduler must be point-for-point bit-identical to
  // running each point through the single-point path.
  const std::vector<SweepPoint> points = three_points();
  const std::vector<SweepResult> pipelined =
      run_supervised_sweep_points(points, {}, pool_);
  ASSERT_EQ(pipelined.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(pipelined[i].ok) << pipelined[i].error;
    const SweepResult sequential =
        run_supervised_sweep(points[i].scenario, {}, pool_);
    ASSERT_TRUE(sequential.ok) << sequential.error;
    EXPECT_EQ(pipelined[i].aggregate_digest, sequential.aggregate_digest)
        << "point " << i;
    EXPECT_EQ(pipelined[i].records.size(), points[i].scenario.trials);
  }
}

TEST_F(SupervisorTest, MultiPointDigestsIdenticalAcrossPoolSizes) {
  const std::vector<SweepPoint> points = three_points();
  ThreadPool pool1(1);
  const std::vector<SweepResult> a =
      run_supervised_sweep_points(points, {}, pool1);
  const std::vector<SweepResult> b =
      run_supervised_sweep_points(points, {}, pool_);
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(a[i].ok && b[i].ok);
    EXPECT_EQ(a[i].aggregate_digest, b[i].aggregate_digest) << "point " << i;
  }
}

TEST_F(SupervisorTest, MultiPointInterruptResumesToSequentialReference) {
  // Kill/resume across point boundaries: interrupt a pipelined sweep after
  // a few trials, resume it, and require every point's digest to equal the
  // sequential single-point reference.
  const std::vector<SweepPoint> points = three_points(dir_);
  std::vector<std::uint64_t> reference;
  for (const SweepPoint& p : points) {
    const SweepResult r = run_supervised_sweep(p.scenario, {}, pool_);
    ASSERT_TRUE(r.ok) << r.error;
    reference.push_back(r.aggregate_digest);
  }

  SupervisorOptions opt;
  std::atomic<int> completed{0};
  const TrialRunner interrupting = [&](const Scenario& sc, std::uint64_t t,
                                       std::uint32_t) {
    const TrialOutcome o = run_scenario_trial(sc, t);
    if (completed.fetch_add(1) + 1 >= 5) request_sweep_shutdown();
    return o;
  };
  const std::vector<SweepResult> partial =
      run_supervised_sweep_points(points, opt, pool_, interrupting);
  std::size_t done = 0, total = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(partial[i].ok) << partial[i].error;
    done += partial[i].records.size();
    total += points[i].scenario.trials;
  }
  ASSERT_GE(done, 5u);
  ASSERT_LT(done, total);  // genuinely interrupted mid-sweep

  reset_sweep_shutdown();
  opt.resume = true;
  const std::vector<SweepResult> resumed =
      run_supervised_sweep_points(points, opt, pool_);
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(resumed[i].ok) << resumed[i].error;
    EXPECT_FALSE(resumed[i].interrupted);
    EXPECT_EQ(resumed[i].resumed, partial[i].records.size()) << "point " << i;
    EXPECT_EQ(resumed[i].aggregate_digest, reference[i]) << "point " << i;
  }
}

TEST_F(SupervisorTest, MultiPointSetupFailureAbortsBeforeAnyTrialRuns) {
  std::vector<SweepPoint> points = three_points();
  points[1].scenario.protocol = "no_such_protocol";
  std::atomic<int> ran{0};
  const TrialRunner counting = [&](const Scenario& sc, std::uint64_t t,
                                   std::uint32_t) {
    ran.fetch_add(1);
    return run_scenario_trial(sc, t);
  };
  const std::vector<SweepResult> results =
      run_supervised_sweep_points(points, {}, pool_, counting);
  EXPECT_EQ(ran.load(), 0);  // fail-fast: validation precedes submission
  EXPECT_FALSE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_FALSE(results[1].error.empty());
}

TEST_F(SupervisorTest, MultiPointCheckpointedDigestsStableAcrossPoolSizes) {
  // The full pipeline — group-commit journals included — must reduce to
  // the same digests no matter the thread count.
  const std::vector<SweepPoint> points = three_points(dir_);
  ThreadPool pool1(1);
  const std::vector<SweepResult> a =
      run_supervised_sweep_points(points, {}, pool1);
  fs::remove_all(dir_);
  const std::vector<SweepResult> b =
      run_supervised_sweep_points(points, {}, pool_);
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(a[i].ok) << a[i].error;
    ASSERT_TRUE(b[i].ok) << b[i].error;
    EXPECT_EQ(a[i].aggregate_digest, b[i].aggregate_digest) << "point " << i;
  }
}

}  // namespace
}  // namespace rcb
