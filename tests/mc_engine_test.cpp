// Tests for the multi-channel slotwise engines (sim/mc_slot_engine.hpp):
// the C=1 bit-exact degeneration against the single-channel engines, the
// event-vs-dense mc crosscheck, per-channel budget accounting, and the
// multi-channel edge cases (C > n, everyone on one channel, a jammer
// spending its budget on an empty channel).
#include "rcb/sim/mc_slot_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rcb/adversary/budget.hpp"
#include "rcb/adversary/mc_strategies.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/channel_plan.hpp"
#include "rcb/sim/jam_schedule.hpp"
#include "rcb/sim/slot_engine.hpp"

namespace rcb {
namespace {

/// Replays a fixed schedule (deterministic, with a bulk jam_run path).
class FixedSchedule final : public SlotAdversary {
 public:
  explicit FixedSchedule(const JamSchedule& js) : js_(&js) {}
  bool jam(SlotIndex slot, std::span<const SlotActivity>) override {
    return js_->is_jammed(slot);
  }
  bool jam_run(SlotIndex begin, SlotIndex end, std::span<const SlotActivity>,
               JamRunSink& sink) override {
    for (SlotIndex s = begin; s < end; ++s) {
      if (!sink.append(1, js_->is_jammed(s))) return false;
    }
    return true;
  }
  SlotCount history_window() const override { return 0; }

 private:
  const JamSchedule* js_;
};

/// Reactive with a 1-slot lookback — exercises the history translation in
/// McFromSlotAdversary (the mc engines must feed it the same per-slot
/// records the single-channel engines would).
class Reactive final : public SlotAdversary {
 public:
  bool jam(SlotIndex, std::span<const SlotActivity> history) override {
    return !history.empty() && history.back().senders > 0;
  }
  SlotCount history_window() const override { return 1; }
};

bool obs_equal(const NodeObservation& a, const NodeObservation& b) {
  return a.sends == b.sends && a.listens == b.listens && a.clear == b.clear &&
         a.messages == b.messages && a.nacks == b.nacks &&
         a.noise == b.noise && a.first_message_slot == b.first_message_slot &&
         a.listens_until_first_message == b.listens_until_first_message;
}

std::vector<NodeAction> mixed_actions() {
  return {NodeAction{0.4, Payload::kMessage, 0.0},
          NodeAction{0.1, Payload::kNoise, 0.7},
          NodeAction{0.0, Payload::kNoise, 0.9},
          NodeAction{0.2, Payload::kNack, 0.3}};
}

// ---------------------------------------------------------------------------
// C=1 degeneration: byte-identical to the single-channel engines on the
// same Rng stream — including under CCA drift, faults, and a reactive
// (history-consuming) adversary.

void expect_c1_degenerates(const CcaModel& cca, bool with_faults,
                           bool reactive, std::uint64_t seed) {
  const SlotCount slots = 512;
  const auto actions = mixed_actions();
  const JamSchedule jam = JamSchedule::blocking_fraction(slots, 0.4);
  FaultConfig fcfg;
  if (with_faults) {
    fcfg.seed = 99;
    fcfg.crash_rate = 0.001;
    fcfg.restart_rate = 0.01;
    fcfg.loss_rate = 0.2;
    fcfg.corruption_rate = 0.1;
    fcfg.clock_skew_rate = 0.1;
  }
  const ChannelPlan single{1, {}};

  for (const bool dense : {false, true}) {
    FaultPlan faults_sc(fcfg);
    FaultPlan* fp_sc = faults_sc.active() ? &faults_sc : nullptr;
    FixedSchedule sched_sc(jam);
    Reactive react_sc;
    SlotAdversary& adv_sc =
        reactive ? static_cast<SlotAdversary&>(react_sc) : sched_sc;
    Rng rng_sc = Rng::stream(seed, 1);
    const SlotwiseResult sc =
        dense ? run_repetition_slotwise_dense(slots, actions, adv_sc, rng_sc,
                                              cca, fp_sc)
              : run_repetition_slotwise(slots, actions, adv_sc, rng_sc, cca,
                                        fp_sc);

    FaultPlan faults_mc(fcfg);
    FaultPlan* fp_mc = faults_mc.active() ? &faults_mc : nullptr;
    FixedSchedule sched_mc(jam);
    Reactive react_mc;
    SlotAdversary& inner =
        reactive ? static_cast<SlotAdversary&>(react_mc) : sched_mc;
    McFromSlotAdversary adv_mc(inner);
    Rng rng_mc = Rng::stream(seed, 1);
    const McSlotwiseResult mc =
        dense ? run_repetition_slotwise_mc_dense(slots, actions, single,
                                                 adv_mc, rng_mc, cca, fp_mc)
              : run_repetition_slotwise_mc(slots, actions, single, adv_mc,
                                           rng_mc, cca, fp_mc);

    EXPECT_EQ(mc.jammed_slots, sc.jammed_slots) << "dense=" << dense;
    EXPECT_EQ(mc.jam_charges, static_cast<Cost>(sc.jammed_slots))
        << "dense=" << dense;
    ASSERT_EQ(mc.rep.obs.size(), sc.rep.obs.size());
    for (std::size_t u = 0; u < actions.size(); ++u) {
      EXPECT_TRUE(obs_equal(sc.rep.obs[u], mc.rep.obs[u]))
          << "dense=" << dense << " node " << u;
    }
  }
}

TEST(McDegenerationTest, C1MatchesSingleChannelExactly) {
  expect_c1_degenerates(CcaModel{}, false, false, 101);
}

TEST(McDegenerationTest, C1MatchesUnderCcaDrift) {
  expect_c1_degenerates(CcaModel{0.1, 0.05}, false, false, 202);
}

TEST(McDegenerationTest, C1MatchesUnderFaults) {
  expect_c1_degenerates(CcaModel{0.05, 0.05}, true, false, 303);
}

TEST(McDegenerationTest, C1MatchesWithReactiveAdversaryHistory) {
  expect_c1_degenerates(CcaModel{}, false, true, 404);
}

// ---------------------------------------------------------------------------
// Event vs dense mc crosscheck: exact on a randomness-free profile.

TEST(McEngineTest, EventMatchesDenseOnRandomnessFreeProfile) {
  const SlotCount slots = 256;
  const std::uint32_t C = 4;
  // All probabilities 0/1: both engines resolve the same deterministic
  // per-(slot, channel) groups regardless of their Rng consumption order.
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0},
                                     NodeAction{1.0, Payload::kNack, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0}};
  std::vector<ChannelHop> hops = {{0, 1}, {0, 1}, {2, 0}, {2, 0}, {3, 2}};
  const ChannelPlan plan{C, {hops.data(), hops.size()}};
  std::vector<JamSchedule> per_channel;
  for (std::uint32_t c = 0; c < C; ++c) {
    per_channel.push_back(
        JamSchedule::blocking_fraction(slots, 0.2 * static_cast<double>(c)));
  }

  McScheduleAdversary adv_ev(per_channel), adv_dn(per_channel);
  Rng rng_ev = Rng::stream(7, 1), rng_dn = Rng::stream(7, 2);
  const McSlotwiseResult ev =
      run_repetition_slotwise_mc(slots, actions, plan, adv_ev, rng_ev);
  const McSlotwiseResult dn =
      run_repetition_slotwise_mc_dense(slots, actions, plan, adv_dn, rng_dn);

  EXPECT_EQ(ev.jam_charges, dn.jam_charges);
  EXPECT_EQ(ev.jammed_slots, dn.jammed_slots);
  for (std::size_t u = 0; u < actions.size(); ++u) {
    EXPECT_TRUE(obs_equal(ev.rep.obs[u], dn.rep.obs[u])) << "node " << u;
  }
  // Conservation against the committed schedules.
  Cost want = 0;
  for (const JamSchedule& js : per_channel) want += js.jammed_count();
  EXPECT_EQ(ev.jam_charges, want);
}

// Channel isolation: a listener hears only its own channel.  Node 1 shares
// the sender's fixed channel and hears every message; node 2 sits on a
// different channel and hears only clear air.
TEST(McEngineTest, ReceptionIsPerChannel) {
  const SlotCount slots = 128;
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0}};
  std::vector<ChannelHop> hops = {{2, 0}, {2, 0}, {5, 0}};
  const ChannelPlan plan{8, {hops.data(), hops.size()}};
  McNoJam adv;
  Rng rng = Rng::stream(11, 0);
  const McSlotwiseResult r =
      run_repetition_slotwise_mc(slots, actions, plan, adv, rng);
  EXPECT_EQ(r.rep.obs[1].messages, slots);
  EXPECT_EQ(r.rep.obs[2].messages, 0u);
  EXPECT_EQ(r.rep.obs[2].clear, slots);
  EXPECT_EQ(r.jam_charges, 0u);
}

// ---------------------------------------------------------------------------
// Edge cases.

TEST(McEngineTest, MoreChannelsThanNodes) {
  // C=64 with 2 nodes: hops land somewhere in [0, 64); the engines must
  // accept the full channel range and the budget accounting must hold.
  const SlotCount slots = 200;
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0}};
  std::vector<ChannelHop> hops = {{63, 0}, {63, 0}};
  const ChannelPlan plan{64, {hops.data(), hops.size()}};
  McSweepJammer adv(Budget(100), 1);
  Rng rng = Rng::stream(13, 0);
  const McSlotwiseResult r =
      run_repetition_slotwise_mc(slots, actions, plan, adv, rng);
  // The sweep dwells 1 slot per channel: it hits channel 63 every 64 slots
  // until the budget runs dry at slot 100.
  EXPECT_EQ(r.jam_charges, 100u);
  EXPECT_EQ(r.jammed_slots, 100u);
  // Channel 63 is jammed on slots 63 (within budget); the listener hears
  // noise there and messages elsewhere.
  EXPECT_GT(r.rep.obs[1].messages, 0u);
  EXPECT_GT(r.rep.obs[1].noise, 0u);
  EXPECT_EQ(r.rep.obs[1].messages + r.rep.obs[1].noise, slots);
}

TEST(McEngineTest, FocusJammerOnTheOccupiedChannelBlocksEverything) {
  const SlotCount slots = 128;
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0}};
  // Everyone parks on channel 3 of 4.
  std::vector<ChannelHop> hops = {{3, 0}, {3, 0}, {3, 0}};
  const ChannelPlan plan{4, {hops.data(), hops.size()}};
  McFocusJammer adv(Budget::unlimited(), 1.0, 3, Rng::stream(17, 0));
  Rng rng = Rng::stream(17, 1);
  const McSlotwiseResult r =
      run_repetition_slotwise_mc(slots, actions, plan, adv, rng);
  EXPECT_EQ(r.rep.obs[1].messages, 0u);
  EXPECT_EQ(r.rep.obs[1].noise, slots);
  EXPECT_EQ(r.rep.obs[2].noise, slots);
  EXPECT_EQ(r.jam_charges, slots);  // 1 unit per slot, single channel
  EXPECT_EQ(r.jammed_slots, slots);
}

TEST(McEngineTest, BudgetSpentOnAnEmptyChannelIsWasted) {
  const SlotCount slots = 128;
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0}};
  std::vector<ChannelHop> hops = {{0, 0}, {0, 0}};
  const ChannelPlan plan{4, {hops.data(), hops.size()}};
  // Focus on channel 2 — nobody is there; the budget drains (exhaustion on
  // an empty channel) while delivery proceeds untouched on channel 0.
  McFocusJammer adv(Budget(50), 1.0, 2, Rng::stream(19, 0));
  Rng rng = Rng::stream(19, 1);
  const McSlotwiseResult r =
      run_repetition_slotwise_mc(slots, actions, plan, adv, rng);
  EXPECT_EQ(r.jam_charges, 50u);  // exhausted exactly
  EXPECT_EQ(adv.budget().spent(), 50u);
  EXPECT_TRUE(adv.budget().exhausted());
  EXPECT_EQ(r.rep.obs[1].messages, slots);
  EXPECT_EQ(r.rep.obs[1].noise, 0u);
}

// Per-channel charge accounting: whatever a randomized budget-split
// strategy reports as spent is exactly what the engine charged — on both
// engines, across channel counts.
TEST(McEngineTest, EngineChargesEqualStrategySpend) {
  const SlotCount slots = 300;
  const auto actions = mixed_actions();
  for (const std::uint32_t C : {1u, 2u, 4u, 8u}) {
    std::vector<ChannelHop> hops;
    Rng hop_rng = Rng::stream(23, C);
    for (std::size_t u = 0; u < actions.size(); ++u) {
      hops.push_back(
          ChannelHop{static_cast<std::uint32_t>(hop_rng.uniform_u64(C)),
                     static_cast<std::uint32_t>(hop_rng.uniform_u64(C))});
    }
    const ChannelPlan plan{C, {hops.data(), hops.size()}};
    for (const bool dense : {false, true}) {
      McUniformSplitJammer adv(Budget(400), 0.5, Rng::stream(29, C));
      Rng rng = Rng::stream(31, C + (dense ? 100 : 0));
      const McSlotwiseResult r =
          dense ? run_repetition_slotwise_mc_dense(slots, actions, plan, adv,
                                                   rng)
                : run_repetition_slotwise_mc(slots, actions, plan, adv, rng);
      EXPECT_EQ(r.jam_charges, adv.budget().spent())
          << "C=" << C << " dense=" << dense;
      EXPECT_LE(r.jam_charges, 400u) << "C=" << C << " dense=" << dense;
      EXPECT_LE(r.jammed_slots, slots);
    }
  }
}

// ---------------------------------------------------------------------------
// Bulk consultation (jam_run_masks) contract — the multi-channel mirror of
// the single-channel jam_run suite: bulk answers are a pure optimization,
// so every observable must coincide with the per-slot fallback.

/// Forwards jam_mask but always declines the bulk hook — pins the engine's
/// per-slot fallback as the reference execution for the bulk path.
class NoBulk final : public McSlotAdversary {
 public:
  explicit NoBulk(McSlotAdversary& inner) : inner_(inner) {}
  std::uint64_t jam_mask(SlotIndex slot, std::uint32_t num_channels,
                         std::span<const McSlotActivity> history) override {
    return inner_.jam_mask(slot, num_channels, history);
  }
  SlotCount history_window() const override {
    return inner_.history_window();
  }

 private:
  McSlotAdversary& inner_;
};

void expect_identical_mc(const McSlotwiseResult& a, const McSlotwiseResult& b) {
  EXPECT_EQ(a.jam_charges, b.jam_charges);
  EXPECT_EQ(a.jammed_slots, b.jammed_slots);
  EXPECT_EQ(a.event_count, b.event_count);
  ASSERT_EQ(a.rep.obs.size(), b.rep.obs.size());
  for (std::size_t u = 0; u < a.rep.obs.size(); ++u) {
    EXPECT_TRUE(obs_equal(a.rep.obs[u], b.rep.obs[u])) << "node " << u;
  }
}

std::vector<NodeAction> sparse_actions() {
  return {NodeAction{0.01, Payload::kMessage, 0.0},
          NodeAction{0.0, Payload::kNoise, 0.01},
          NodeAction{0.005, Payload::kNack, 0.005}};
}

/// Runs one strategy twice through the event engine — once consulted in
/// bulk, once forced onto the per-slot fallback via NoBulk — and requires
/// the executions to be indistinguishable, down to the trial Rng position.
template <typename Make>
void expect_bulk_equals_fallback(Make make, std::uint32_t C,
                                 std::uint64_t seed) {
  const SlotCount slots = 8192;
  const auto actions = sparse_actions();
  std::vector<ChannelHop> hops;
  Rng hop_rng = Rng::stream(seed, 900);
  for (std::size_t u = 0; u < actions.size(); ++u) {
    hops.push_back(
        ChannelHop{static_cast<std::uint32_t>(hop_rng.uniform_u64(C)),
                   static_cast<std::uint32_t>(hop_rng.uniform_u64(C))});
  }
  const ChannelPlan plan{C, {hops.data(), hops.size()}};

  auto bulk_adv = make();
  Rng rng_bulk = Rng::stream(seed, 1);
  const McSlotwiseResult a =
      run_repetition_slotwise_mc(slots, actions, plan, bulk_adv, rng_bulk);

  auto inner = make();
  NoBulk scalar_adv(inner);
  Rng rng_scalar = Rng::stream(seed, 1);
  const McSlotwiseResult b =
      run_repetition_slotwise_mc(slots, actions, plan, scalar_adv, rng_scalar);

  expect_identical_mc(a, b);
  EXPECT_EQ(rng_bulk.next_u64(), rng_scalar.next_u64())
      << "trial Rng position diverged: C=" << C << " seed=" << seed;
}

TEST(McJamRunMasksTest, BulkAnswerMatchesPerSlotPathForEveryStrategy) {
  for (const std::uint32_t C : {1u, 4u, 64u}) {
    expect_bulk_equals_fallback([] { return McNoJam{}; }, C, 51);
    // rate in (0, 1): bulk declines by rollback while the budget lives
    // (alternating masks overflow the sink) and answers once it dries.
    expect_bulk_equals_fallback(
        [&] {
          return McUniformSplitJammer(Budget(500), 0.4, Rng::stream(61, C));
        },
        C, 52);
    // rate 0: the draw-free single-segment shortcut.
    expect_bulk_equals_fallback(
        [&] {
          return McUniformSplitJammer(Budget(500), 0.0, Rng::stream(62, C));
        },
        C, 53);
    expect_bulk_equals_fallback(
        [&] {
          return McFocusJammer(Budget(600), 0.05, 2, Rng::stream(63, C));
        },
        C, 54);
    // rate * C >= 1: the draw-free budget-arithmetic fast path.
    expect_bulk_equals_fallback(
        [&] {
          return McFocusJammer(Budget(600), 1.0, 1, Rng::stream(64, C));
        },
        C, 55);
    expect_bulk_equals_fallback([] { return McSweepJammer(Budget(3000), 64); },
                                C, 56);
    expect_bulk_equals_fallback(
        [&] {
          std::vector<JamSchedule> per_channel;
          for (std::uint32_t c = 0; c < C && c < 8; ++c) {
            per_channel.push_back(JamSchedule::blocking_fraction(
                8192, 0.1 * static_cast<double>(c)));
          }
          return McScheduleAdversary(per_channel);
        },
        C, 57);
  }
}

/// Alternates mask 1/0 by slot parity; its bulk answer appends slot by
/// slot, so runs longer than kMaxSegments overflow the sink and decline
/// mid-phase while short runs answer — both paths mix in one execution.
class ParityMask final : public McSlotAdversary {
 public:
  std::uint64_t jam_mask(SlotIndex slot, std::uint32_t,
                         std::span<const McSlotActivity>) override {
    return slot & 1;
  }
  bool jam_run_masks(SlotIndex begin, SlotIndex end, std::uint32_t,
                     std::span<const McSlotActivity>,
                     McJamRunSink& sink) override {
    ++bulk_calls_;
    for (SlotIndex s = begin; s < end; ++s) {
      if (!sink.append(1, s & 1)) {
        ++declines_;
        return false;
      }
    }
    return true;
  }
  SlotCount history_window() const override { return 0; }

  int bulk_calls_ = 0;
  int declines_ = 0;
};

TEST(McJamRunMasksTest, MidRunDeclineFallsBackBitIdentically) {
  const SlotCount slots = 30000;
  std::vector<NodeAction> actions = {NodeAction{0.002, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 0.002}};
  std::vector<ChannelHop> hops = {{0, 1}, {1, 1}};
  const ChannelPlan plan{2, {hops.data(), hops.size()}};

  ParityMask bulk_adv;
  Rng rng_bulk = Rng::stream(43, 1);
  const McSlotwiseResult a =
      run_repetition_slotwise_mc(slots, actions, plan, bulk_adv, rng_bulk);

  ParityMask inner;
  NoBulk scalar_adv(inner);
  Rng rng_scalar = Rng::stream(43, 1);
  const McSlotwiseResult b =
      run_repetition_slotwise_mc(slots, actions, plan, scalar_adv, rng_scalar);

  expect_identical_mc(a, b);
  EXPECT_EQ(rng_bulk.next_u64(), rng_scalar.next_u64());
  // With mean run length ~250 against a 64-segment sink, both accepted and
  // declined bulk calls must occur in one phase.
  EXPECT_GT(bulk_adv.declines_, 0);
  EXPECT_GT(bulk_adv.bulk_calls_, bulk_adv.declines_);
  // Parity accounting holds regardless of which path decided each slot.
  EXPECT_EQ(a.jammed_slots, slots / 2);
  EXPECT_EQ(a.jam_charges, slots / 2);
}

/// 1-slot lookback: jams channel 0 iff the previous slot carried a
/// transmission; the bulk form answers with the run-aware closed form
/// (only the first run slot can see a sender in its lookback).
class McBulkReactive final : public McSlotAdversary {
 public:
  explicit McBulkReactive(bool bulk) : bulk_(bulk) {}
  std::uint64_t jam_mask(SlotIndex, std::uint32_t,
                         std::span<const McSlotActivity> history) override {
    return (!history.empty() && history.back().senders > 0) ? 1 : 0;
  }
  bool jam_run_masks(SlotIndex begin, SlotIndex end, std::uint32_t,
                     std::span<const McSlotActivity> history,
                     McJamRunSink& sink) override {
    if (!bulk_) return false;
    ++bulk_calls_;
    const bool first = !history.empty() && history.back().senders > 0;
    sink.append(1, first ? 1 : 0);
    sink.append(end - begin - 1, 0);
    return true;
  }
  SlotCount history_window() const override { return 1; }

  bool bulk_;
  int bulk_calls_ = 0;
};

TEST(McJamRunMasksTest, BoundedWindowReactiveBulkMatchesPerSlot) {
  const SlotCount slots = 10000;
  const auto actions = sparse_actions();
  std::vector<ChannelHop> hops = {{0, 1}, {1, 0}, {1, 1}};
  const ChannelPlan plan{2, {hops.data(), hops.size()}};

  McBulkReactive bulk_adv(true);
  Rng rng_bulk = Rng::stream(47, 1);
  const McSlotwiseResult a =
      run_repetition_slotwise_mc(slots, actions, plan, bulk_adv, rng_bulk);

  McBulkReactive scalar_adv(false);
  Rng rng_scalar = Rng::stream(47, 1);
  const McSlotwiseResult b =
      run_repetition_slotwise_mc(slots, actions, plan, scalar_adv, rng_scalar);

  expect_identical_mc(a, b);
  EXPECT_EQ(rng_bulk.next_u64(), rng_scalar.next_u64());
  EXPECT_GT(bulk_adv.bulk_calls_, 0) << "fast path never exercised";
  EXPECT_EQ(scalar_adv.bulk_calls_, 0);
}

/// Answers every bulk run with a fixed two-channel mask while the per-slot
/// (event-slot) consultations audit that the engine materialized every
/// bulk-decided slot as a zero-sender record carrying that mask.
class McBulkHistoryAuditor final : public McSlotAdversary {
 public:
  static constexpr std::uint64_t kMask = 0b101;
  std::uint64_t jam_mask(SlotIndex slot, std::uint32_t,
                         std::span<const McSlotActivity> history) override {
    complete_ = complete_ && history.size() == slot;
    for (std::size_t k = 0; k < history.size(); ++k) {
      ordered_ = ordered_ && history[k].slot == k &&
                 history[k].jam_mask == kMask;
    }
    return kMask;
  }
  bool jam_run_masks(SlotIndex begin, SlotIndex end, std::uint32_t,
                     std::span<const McSlotActivity>,
                     McJamRunSink& sink) override {
    ++bulk_calls_;
    sink.append(end - begin, kMask);
    return true;
  }

  bool complete_ = true;
  bool ordered_ = true;
  int bulk_calls_ = 0;
};

TEST(McJamRunMasksTest, UnboundedHistoryMaterializedAcrossBulkRuns) {
  const SlotCount slots = 3000;
  std::vector<NodeAction> actions = {NodeAction{0.01, Payload::kMessage, 0.0}};
  std::vector<ChannelHop> hops = {{1, 2}};
  const ChannelPlan plan{4, {hops.data(), hops.size()}};
  McBulkHistoryAuditor adv;
  Rng rng = Rng::stream(53, 0);
  const McSlotwiseResult r =
      run_repetition_slotwise_mc(slots, actions, plan, adv, rng);
  EXPECT_GT(adv.bulk_calls_, 0);
  EXPECT_TRUE(adv.complete_);
  EXPECT_TRUE(adv.ordered_);
  // 0b101 clipped by valid 0xF keeps 2 channels per slot.
  EXPECT_EQ(r.jam_charges, 2 * slots);
  EXPECT_EQ(r.jammed_slots, slots);
}

TEST(McJamRunMasksTest, OverflowDeclineLeavesRandomizedStrategyUntouched) {
  // rate in (0, 1) keeps bulk masks alternating, so a long run cannot fit
  // in kMaxSegments; the strategy must decline with its rng and budget
  // exactly as they were before the attempt (witnessed by a twin that
  // never saw the bulk call).
  McUniformSplitJammer probe(Budget(10000), 0.5, Rng::stream(71, 0));
  McUniformSplitJammer witness(Budget(10000), 0.5, Rng::stream(71, 0));
  McJamRunSink sink;
  ASSERT_FALSE(probe.jam_run_masks(0, 4096, 4, {}, sink));
  EXPECT_EQ(probe.budget().spent(), witness.budget().spent());
  for (SlotIndex s = 0; s < 256; ++s) {
    ASSERT_EQ(probe.jam_mask(s, 4, {}), witness.jam_mask(s, 4, {}))
        << "slot " << s;
  }
}

// The two mc engines are draw-for-draw deterministic: same stream, same
// result, independently of everything else in the process.
TEST(McEngineTest, DeterministicAcrossRuns) {
  const SlotCount slots = 256;
  const auto actions = mixed_actions();
  std::vector<ChannelHop> hops = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  const ChannelPlan plan{4, {hops.data(), hops.size()}};
  const auto run_once = [&]() {
    McUniformSplitJammer adv(Budget(500), 0.3, Rng::stream(37, 0));
    Rng rng = Rng::stream(41, 0);
    return run_repetition_slotwise_mc(slots, actions, plan, adv, rng);
  };
  const McSlotwiseResult a = run_once();
  const McSlotwiseResult b = run_once();
  EXPECT_EQ(a.jam_charges, b.jam_charges);
  EXPECT_EQ(a.event_count, b.event_count);
  for (std::size_t u = 0; u < actions.size(); ++u) {
    EXPECT_TRUE(obs_equal(a.rep.obs[u], b.rep.obs[u])) << "node " << u;
  }
}

}  // namespace
}  // namespace rcb
