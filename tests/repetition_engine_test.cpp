// Tests for the event-driven repetition engine: channel semantics, cost
// accounting, l-uniform jamming, and half-duplex behaviour.
#include "rcb/sim/repetition_engine.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "rcb/rng/rng.hpp"

namespace rcb {
namespace {

RepetitionResult run(SlotCount slots, std::vector<NodeAction> actions,
                     const JamSchedule& jam, std::uint64_t seed = 1) {
  Rng rng(seed);
  return run_repetition(slots, actions, jam, rng);
}

TEST(RepetitionEngineTest, CertainSenderCertainListenerDelivers) {
  auto r = run(100,
               {NodeAction{1.0, Payload::kMessage, 0.0},
                NodeAction{0.0, Payload::kNoise, 1.0}},
               JamSchedule::none());
  EXPECT_EQ(r.obs[0].sends, 100u);
  EXPECT_EQ(r.obs[1].listens, 100u);
  EXPECT_EQ(r.obs[1].messages, 100u);
  EXPECT_EQ(r.obs[1].noise, 0u);
  EXPECT_EQ(r.obs[1].clear, 0u);
  EXPECT_EQ(r.obs[1].first_message_slot, 0u);
  EXPECT_EQ(r.obs[1].listens_until_first_message, 1u);
}

TEST(RepetitionEngineTest, NackPayloadIsHeardAsNack) {
  auto r = run(50,
               {NodeAction{1.0, Payload::kNack, 0.0},
                NodeAction{0.0, Payload::kNoise, 1.0}},
               JamSchedule::none());
  EXPECT_EQ(r.obs[1].nacks, 50u);
  EXPECT_EQ(r.obs[1].messages, 0u);
}

TEST(RepetitionEngineTest, NoisePayloadIsHeardAsNoise) {
  auto r = run(50,
               {NodeAction{1.0, Payload::kNoise, 0.0},
                NodeAction{0.0, Payload::kNoise, 1.0}},
               JamSchedule::none());
  EXPECT_EQ(r.obs[1].noise, 50u);
  EXPECT_EQ(r.obs[1].messages, 0u);
}

TEST(RepetitionEngineTest, SilenceIsClear) {
  auto r = run(64, {NodeAction{0.0, Payload::kNoise, 1.0}},
               JamSchedule::none());
  EXPECT_EQ(r.obs[0].clear, 64u);
  EXPECT_EQ(r.obs[0].heard_total(), 64u);
}

TEST(RepetitionEngineTest, TwoSendersCollideIntoNoise) {
  auto r = run(80,
               {NodeAction{1.0, Payload::kMessage, 0.0},
                NodeAction{1.0, Payload::kMessage, 0.0},
                NodeAction{0.0, Payload::kNoise, 1.0}},
               JamSchedule::none());
  EXPECT_EQ(r.obs[2].noise, 80u);
  EXPECT_EQ(r.obs[2].messages, 0u);
}

TEST(RepetitionEngineTest, JammedSlotsHeardAsNoiseEvenWithMessage) {
  auto r = run(100,
               {NodeAction{1.0, Payload::kMessage, 0.0},
                NodeAction{0.0, Payload::kNoise, 1.0}},
               JamSchedule::suffix(100, 40));
  EXPECT_EQ(r.obs[1].messages, 40u);
  EXPECT_EQ(r.obs[1].noise, 60u);
  EXPECT_EQ(r.obs[1].first_message_slot, 0u);
}

TEST(RepetitionEngineTest, JammedSilenceIsNoiseNotClear) {
  auto r = run(100, {NodeAction{0.0, Payload::kNoise, 1.0}},
               JamSchedule::all(100));
  EXPECT_EQ(r.obs[0].noise, 100u);
  EXPECT_EQ(r.obs[0].clear, 0u);
}

TEST(RepetitionEngineTest, HalfDuplexSendPreemptsListen) {
  // A node with send_prob = 1 and listen_prob = 1 only ever sends.
  auto r = run(100, {NodeAction{1.0, Payload::kMessage, 1.0}},
               JamSchedule::none());
  EXPECT_EQ(r.obs[0].sends, 100u);
  EXPECT_EQ(r.obs[0].listens, 0u);
  EXPECT_EQ(r.obs[0].heard_total(), 0u);
}

TEST(RepetitionEngineTest, SenderDoesNotHearItself) {
  // Sender always transmits; another node always listens.  The sender's own
  // message count stays zero even though it "listens" with probability 1 —
  // every listen is pre-empted.
  auto r = run(100,
               {NodeAction{1.0, Payload::kMessage, 1.0},
                NodeAction{0.0, Payload::kNoise, 1.0}},
               JamSchedule::none());
  EXPECT_EQ(r.obs[0].messages, 0u);
  EXPECT_EQ(r.obs[1].messages, 100u);
}

TEST(RepetitionEngineTest, CostEqualsActionCounts) {
  Rng rng(3);
  std::vector<NodeAction> actions = {
      NodeAction{0.3, Payload::kMessage, 0.2},
      NodeAction{0.1, Payload::kNoise, 0.4},
  };
  auto r = run_repetition(2048, actions, JamSchedule::none(), rng);
  for (const auto& o : r.obs) {
    EXPECT_EQ(o.heard_total(), o.listens);
    EXPECT_LE(o.sends + o.listens, 2048u);
  }
  // Sends should be near expectation.
  EXPECT_NEAR(static_cast<double>(r.obs[0].sends), 0.3 * 2048, 5 * std::sqrt(0.3 * 2048));
  EXPECT_NEAR(static_cast<double>(r.obs[1].sends), 0.1 * 2048, 5 * std::sqrt(0.1 * 2048));
}

TEST(RepetitionEngineTest, ProbabilisticDeliveryMatchesBirthdayParadox) {
  // Alice sends w.p. p, Bob listens w.p. p: P(Bob never hears m) over N
  // slots is (1 - p^2)^N.  This is the Fig. 1 send-phase core.
  const double p = 0.05;
  const SlotCount slots = 2048;
  const double p_fail = std::pow(1.0 - p * p, static_cast<double>(slots));
  int failures = 0;
  const int trials = 2000;
  Rng rng(4);
  std::vector<NodeAction> actions = {NodeAction{p, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, p}};
  for (int t = 0; t < trials; ++t) {
    auto r = run_repetition(slots, actions, JamSchedule::none(), rng);
    failures += (r.obs[1].messages == 0);
  }
  const double observed = static_cast<double>(failures) / trials;
  EXPECT_NEAR(observed, p_fail, 4.0 * std::sqrt(p_fail / trials) + 0.005);
}

TEST(RepetitionEngineTest, LUniformJamsOnlyTargetPartition) {
  // Partition 0 clear, partition 1 fully jammed; one sender of m.
  std::vector<NodeAction> actions = {
      NodeAction{1.0, Payload::kMessage, 0.0},
      NodeAction{0.0, Payload::kNoise, 1.0},  // partition 0
      NodeAction{0.0, Payload::kNoise, 1.0},  // partition 1
  };
  std::vector<std::uint32_t> partition = {0, 0, 1};
  std::vector<JamSchedule> schedules = {JamSchedule::none(),
                                        JamSchedule::all(60)};
  Rng rng(5);
  auto r = run_repetition_luniform(60, actions, partition, schedules, rng);
  EXPECT_EQ(r.obs[1].messages, 60u);
  EXPECT_EQ(r.obs[2].messages, 0u);
  EXPECT_EQ(r.obs[2].noise, 60u);
}

TEST(RepetitionEngineTest, ListensUntilFirstMessageStopsCounting) {
  // Message only delivered in the suffix after slot 50 (prefix jammed).
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0}};
  std::vector<SlotIndex> prefix;
  for (SlotIndex s = 0; s < 50; ++s) prefix.push_back(s);
  auto jam = JamSchedule::slots(100, std::move(prefix));
  Rng rng(6);
  auto r = run_repetition(100, actions, jam, rng);
  EXPECT_EQ(r.obs[1].first_message_slot, 50u);
  EXPECT_EQ(r.obs[1].listens_until_first_message, 51u);
  EXPECT_EQ(r.obs[1].listens, 100u);
}

TEST(RepetitionEngineTest, TraceRecordsActivity) {
  Trace trace(1000);
  trace.begin_phase(7);
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 1.0}};
  Rng rng(7);
  run_repetition(10, actions, JamSchedule::none(), rng, &trace);
  ASSERT_EQ(trace.events().size(), 10u);
  EXPECT_EQ(trace.events()[0].phase, 7u);
  EXPECT_EQ(trace.events()[0].senders, 1u);
  EXPECT_EQ(trace.events()[0].listeners, 1u);
  EXPECT_FALSE(trace.events()[0].jammed);
  EXPECT_FALSE(trace.truncated());
}

TEST(RepetitionEngineTest, TraceTruncatesAtCapacity) {
  Trace trace(5);
  std::vector<NodeAction> actions = {NodeAction{1.0, Payload::kMessage, 0.0}};
  Rng rng(8);
  run_repetition(10, actions, JamSchedule::none(), rng, &trace);
  EXPECT_EQ(trace.events().size(), 5u);
  EXPECT_TRUE(trace.truncated());
}

TEST(RepetitionEngineTest, DeterministicForSameSeed) {
  std::vector<NodeAction> actions = {NodeAction{0.1, Payload::kMessage, 0.1},
                                     NodeAction{0.05, Payload::kNoise, 0.3}};
  Rng rng1(99), rng2(99);
  auto a = run_repetition(4096, actions, JamSchedule::none(), rng1);
  auto b = run_repetition(4096, actions, JamSchedule::none(), rng2);
  for (std::size_t u = 0; u < 2; ++u) {
    EXPECT_EQ(a.obs[u].sends, b.obs[u].sends);
    EXPECT_EQ(a.obs[u].listens, b.obs[u].listens);
    EXPECT_EQ(a.obs[u].clear, b.obs[u].clear);
    EXPECT_EQ(a.obs[u].messages, b.obs[u].messages);
  }
}

TEST(RepetitionEngineTest, EmptyActionsProduceEmptyResult) {
  Rng rng(1);
  std::vector<NodeAction> actions;
  auto r = run_repetition(100, actions, JamSchedule::none(), rng);
  EXPECT_TRUE(r.obs.empty());
}

}  // namespace
}  // namespace rcb
