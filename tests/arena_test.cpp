// Tests for the bump arena and ArenaVector (per-trial engine scratch).
#include "rcb/common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define RCB_ARENA_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RCB_ARENA_TEST_ASAN 1
#endif
#endif

namespace rcb {
namespace {

std::uintptr_t addr(void* p) { return reinterpret_cast<std::uintptr_t>(p); }

TEST(ArenaTest, DefaultAllocationsAreSimdAligned) {
  Arena arena;
  for (std::size_t bytes : {1u, 3u, 17u, 64u, 65u, 127u, 1000u}) {
    void* p = arena.allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(addr(p) % Arena::kSimdAlignment, 0u) << "bytes=" << bytes;
  }
}

TEST(ArenaTest, SmallerAlignmentKeepsCursorAligned) {
  Arena arena;
  // Size is rounded to the alignment, so a run of align-8 allocations stays
  // 8-aligned even when the requested sizes are ragged.
  for (std::size_t bytes : {8u, 3u, 5u, 24u, 1u}) {
    void* p = arena.allocate(bytes, 8);
    EXPECT_EQ(addr(p) % 8, 0u) << "bytes=" << bytes;
  }
}

TEST(ArenaTest, ZeroByteAllocationsAreDistinct) {
  Arena arena;
  void* a = arena.allocate(0);
  void* b = arena.allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_NE(a, b);
}

TEST(ArenaTest, BytesUsedTracksRoundedAllocations) {
  Arena arena;
  EXPECT_EQ(arena.bytes_used(), 0u);
  arena.allocate(1);  // rounds to one full alignment quantum
  EXPECT_EQ(arena.bytes_used(), Arena::kSimdAlignment);
  arena.allocate(64);
  EXPECT_EQ(arena.bytes_used(), 2 * Arena::kSimdAlignment);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(ArenaTest, ResetReplaysIdenticalAddresses) {
  Arena arena;
  const std::size_t sizes[] = {8, 100, 1000, 9, 64, 4096};
  std::vector<void*> first;
  for (std::size_t s : sizes) first.push_back(arena.allocate(s));
  arena.reset();
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    EXPECT_EQ(arena.allocate(sizes[i]), first[i]) << "allocation " << i;
  }
}

TEST(ArenaTest, GrowsAcrossChunksAndRetainsThemOnReset) {
  Arena arena(1024);  // smallest permitted first chunk
  EXPECT_EQ(arena.chunk_count(), 1u);
  std::vector<void*> first;
  for (int i = 0; i < 16; ++i) first.push_back(arena.allocate(512));
  EXPECT_GT(arena.chunk_count(), 1u);
  const std::size_t chunks = arena.chunk_count();

  arena.reset();
  EXPECT_EQ(arena.chunk_count(), chunks);  // chunks retained, not freed
  // The replay walks the same chunk chain, so every address comes back —
  // including the ones past the first chunk boundary.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(arena.allocate(512), first[i]) << "allocation " << i;
  }
  EXPECT_EQ(arena.chunk_count(), chunks);  // replay allocated no new chunk
}

TEST(ArenaTest, OversizedAllocationGetsItsOwnChunk) {
  Arena arena(1024);
  void* big = arena.allocate(1 << 20);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(addr(big) % Arena::kSimdAlignment, 0u);
  EXPECT_GE(arena.chunk_count(), 2u);
  // The oversized chunk must be writable end to end.
  auto* bytes = static_cast<std::uint8_t*>(big);
  bytes[0] = 1;
  bytes[(1 << 20) - 1] = 2;
  EXPECT_EQ(bytes[0], 1);
  EXPECT_EQ(bytes[(1 << 20) - 1], 2);
}

TEST(ArenaVectorTest, PushBackGrowsAndPreservesContents) {
  Arena arena;
  ArenaVector<std::uint32_t> v(arena);
  EXPECT_TRUE(v.empty());
  for (std::uint32_t i = 0; i < 1000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 1000u);
  EXPECT_GE(v.capacity(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i * 3);
  EXPECT_EQ(v.back(), 999u * 3);
}

TEST(ArenaVectorTest, ClearKeepsCapacityDetachDropsIt) {
  Arena arena;
  ArenaVector<int> v(arena);
  for (int i = 0; i < 100; ++i) v.push_back(i);
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), cap);
  v.detach();
  EXPECT_EQ(v.capacity(), 0u);
  EXPECT_EQ(v.data(), nullptr);
}

TEST(ArenaVectorTest, AppendFillAndAppendUninitialized) {
  Arena arena;
  ArenaVector<std::uint16_t> v(arena);
  v.append_fill(5, 7);
  ASSERT_EQ(v.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) ASSERT_EQ(v[i], 7u);
  std::uint16_t* tail = v.append_uninitialized(3);
  ASSERT_EQ(v.size(), 8u);
  EXPECT_EQ(tail, v.data() + 5);
  tail[0] = 1;
  tail[1] = 2;
  tail[2] = 3;
  EXPECT_EQ(v[5], 1u);
  EXPECT_EQ(v[7], 3u);
  for (std::size_t i = 0; i < 5; ++i) ASSERT_EQ(v[i], 7u);  // prefix intact
}

TEST(ArenaVectorTest, ResizeZeroFillsNewTail) {
  Arena arena;
  ArenaVector<std::uint64_t> v(arena);
  v.push_back(42);
  v.resize(10);
  ASSERT_EQ(v.size(), 10u);
  EXPECT_EQ(v[0], 42u);
  for (std::size_t i = 1; i < 10; ++i) ASSERT_EQ(v[i], 0u);
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
}

TEST(ArenaVectorTest, ErasePrefixShiftsRemainderDown) {
  Arena arena;
  ArenaVector<int> v(arena);
  for (int i = 0; i < 10; ++i) v.push_back(i);
  v.erase_prefix(4);
  ASSERT_EQ(v.size(), 6u);
  for (int i = 0; i < 6; ++i) ASSERT_EQ(v[i], i + 4);
}

TEST(ArenaVectorTest, DetachThenReuseAfterArenaResetReplaysAddresses) {
  // The engine workspace pattern: reset the arena, detach every vector,
  // repeat the same allocation sequence, and land on the same storage.
  Arena arena;
  ArenaVector<std::uint64_t> v(arena);
  for (std::uint64_t i = 0; i < 300; ++i) v.push_back(i);
  const std::uint64_t* first_data = v.data();
  arena.reset();
  v.detach();
  for (std::uint64_t i = 0; i < 300; ++i) v.push_back(i);
  EXPECT_EQ(v.data(), first_data);
}

#ifdef RCB_ARENA_TEST_ASAN
TEST(ArenaAsanDeathTest, UseAfterResetIsPoisoned) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Arena arena;
        auto* p = static_cast<volatile int*>(arena.allocate(sizeof(int)));
        *p = 42;
        arena.reset();
        const int v = *p;  // reset re-poisoned the whole arena
        (void)v;
      },
      "use-after-poison");
}

TEST(ArenaAsanDeathTest, ReadPastAllocationHitsPoisonedSlack) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Arena arena;
        auto* p = static_cast<volatile std::uint8_t*>(arena.allocate(64));
        const std::uint8_t v = p[64];  // first byte past the allocation
        (void)v;
      },
      "use-after-poison");
}
#endif

}  // namespace
}  // namespace rcb
