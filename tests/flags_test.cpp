// Tests for the command-line flag parser.
#include "rcb/cli/flags.hpp"

#include <gtest/gtest.h>

namespace rcb {
namespace {

FlagSet make_set() {
  FlagSet flags("test tool");
  flags.add_string("name", "default", "a string");
  flags.add_int("count", 42, "an int");
  flags.add_double("ratio", 0.5, "a double");
  flags.add_bool("verbose", false, "a bool");
  return flags;
}

TEST(FlagsTest, DefaultsSurviveEmptyParse) {
  FlagSet flags = make_set();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(flags.get_string("name"), "default");
  EXPECT_EQ(flags.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), 0.5);
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(FlagsTest, EqualsForm) {
  FlagSet flags = make_set();
  const char* argv[] = {"prog", "--name=alpha", "--count=7", "--ratio=0.25",
                        "--verbose=true"};
  ASSERT_TRUE(flags.parse(5, argv));
  EXPECT_EQ(flags.get_string("name"), "alpha");
  EXPECT_EQ(flags.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), 0.25);
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(FlagsTest, SpaceForm) {
  FlagSet flags = make_set();
  const char* argv[] = {"prog", "--count", "-3", "--name", "x y"};
  ASSERT_TRUE(flags.parse(5, argv));
  EXPECT_EQ(flags.get_int("count"), -3);
  EXPECT_EQ(flags.get_string("name"), "x y");
}

TEST(FlagsTest, BareBooleanFlag) {
  FlagSet flags = make_set();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(FlagsTest, UnknownFlagRejected) {
  FlagSet flags = make_set();
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(FlagsTest, MalformedIntRejected) {
  FlagSet flags = make_set();
  const char* argv[] = {"prog", "--count=abc"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(FlagsTest, MalformedDoubleRejected) {
  FlagSet flags = make_set();
  const char* argv[] = {"prog", "--ratio=1.2.3"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(FlagsTest, MalformedBoolRejected) {
  FlagSet flags = make_set();
  const char* argv[] = {"prog", "--verbose=maybe"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(FlagsTest, MissingValueRejected) {
  FlagSet flags = make_set();
  const char* argv[] = {"prog", "--count"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(FlagsTest, PositionalArgumentRejected) {
  FlagSet flags = make_set();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(FlagsTest, HelpReturnsFalseAndListsFlags) {
  FlagSet flags = make_set();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, argv));
  const std::string help = flags.help_text();
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("default: 42"), std::string::npos);
}

TEST(FlagsTest, IntBelowMinimumRejected) {
  // e.g. --threads=-4: must fail loudly at parse time instead of wrapping
  // through an unsigned cast deep inside the tool.
  FlagSet flags("test tool");
  flags.add_int("threads", 0, "worker threads", 0, 4096);
  const char* argv[] = {"prog", "--threads=-4"};
  EXPECT_FALSE(flags.parse(2, argv));
  EXPECT_EQ(flags.get_int("threads"), 0);  // default untouched
}

TEST(FlagsTest, IntAboveMaximumRejected) {
  FlagSet flags("test tool");
  flags.add_int("workers", 0, "worker processes", 0, 1024);
  const char* argv[] = {"prog", "--workers=4097"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(FlagsTest, IntBoundsAreInclusive) {
  FlagSet flags("test tool");
  flags.add_int("count", 5, "bounded", 1, 10);
  EXPECT_TRUE(flags.set("count", "1"));
  EXPECT_TRUE(flags.set("count", "10"));
  EXPECT_FALSE(flags.set("count", "0"));
  EXPECT_FALSE(flags.set("count", "11"));
  EXPECT_EQ(flags.get_int("count"), 10);  // last accepted value sticks
}

TEST(FlagsTest, UnboundedIntStillAcceptsNegatives) {
  FlagSet flags = make_set();
  EXPECT_TRUE(flags.set("count", "-42"));
  EXPECT_EQ(flags.get_int("count"), -42);
}

TEST(FlagsDeathTest, DefaultOutsideBoundsRejected) {
  EXPECT_DEATH(
      {
        FlagSet flags("test tool");
        flags.add_int("bad", -1, "default below minimum", 0, 10);
      },
      "");
}

TEST(FlagsDeathTest, DuplicateRegistrationRejected) {
  FlagSet flags("t");
  flags.add_int("x", 1, "");
  EXPECT_DEATH(flags.add_string("x", "a", ""), "precondition");
}

TEST(FlagsDeathTest, TypeMismatchOnGetRejected) {
  FlagSet flags = make_set();
  EXPECT_DEATH((void)flags.get_int("name"), "precondition");
}

}  // namespace
}  // namespace rcb
