// Tests for the bounded trace recorder.
#include "rcb/sim/trace.hpp"

#include <gtest/gtest.h>

namespace rcb {
namespace {

TEST(TraceTest, RecordsEventsWithPhaseTag) {
  Trace trace(10);
  trace.begin_phase(3);
  trace.record(5, 2, 1, true);
  trace.begin_phase(4);
  trace.record(0, 0, 3, false);
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].phase, 3u);
  EXPECT_EQ(trace.events()[0].slot, 5u);
  EXPECT_EQ(trace.events()[0].senders, 2u);
  EXPECT_EQ(trace.events()[0].listeners, 1u);
  EXPECT_TRUE(trace.events()[0].jammed);
  EXPECT_EQ(trace.events()[1].phase, 4u);
  EXPECT_FALSE(trace.events()[1].jammed);
}

TEST(TraceTest, CapacityBoundsMemory) {
  Trace trace(3);
  for (SlotIndex s = 0; s < 10; ++s) trace.record(s, 1, 0, false);
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_TRUE(trace.truncated());
  // The first events are kept, later ones dropped.
  EXPECT_EQ(trace.events()[2].slot, 2u);
}

TEST(TraceTest, ClearResetsEverything) {
  Trace trace(2);
  trace.begin_phase(9);
  trace.record(0, 1, 1, false);
  trace.record(1, 1, 1, false);
  trace.record(2, 1, 1, false);
  ASSERT_TRUE(trace.truncated());
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
  EXPECT_FALSE(trace.truncated());
  trace.record(7, 1, 0, true);
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.events()[0].phase, 0u);  // phase reset too
}

TEST(TraceTest, ZeroCapacityTruncatesImmediately) {
  Trace trace(0);
  trace.record(0, 1, 1, false);
  EXPECT_TRUE(trace.events().empty());
  EXPECT_TRUE(trace.truncated());
}

}  // namespace
}  // namespace rcb
