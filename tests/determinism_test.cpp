// Determinism regression tests.
//
// Every run in this library is a pure function of (seed, parameters); the
// experiment tables in bench_output.txt and EXPERIMENTS.md rely on that.
// These tests freeze full-run outcomes for fixed seeds: any change to the
// RNG consumption order, the channel semantics, or the protocol logic will
// trip them — which is exactly the point: such changes must be noticed and
// the recorded experiments regenerated, never silently drifted.
//
// (Pinned values were produced by the current implementation; they are
// regression anchors, not externally meaningful constants.)
#include <gtest/gtest.h>

#include "rcb/adversary/strategies.hpp"
#include "rcb/adversary/two_uniform.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/protocols/ksy.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {
namespace {

TEST(DeterminismTest, RunsAreReproducible) {
  // Identical seeds and parameters must give identical results — across
  // protocols and adversaries.
  for (int t = 0; t < 3; ++t) {
    const OneToOneParams params = OneToOneParams::sim(0.05);
    FullDuelBlocker adv1(Budget(10000), 0.6), adv2(Budget(10000), 0.6);
    Rng rng1 = Rng::stream(555, t), rng2 = Rng::stream(555, t);
    const auto a = run_one_to_one(params, adv1, rng1);
    const auto b = run_one_to_one(params, adv2, rng2);
    EXPECT_EQ(a.alice_cost, b.alice_cost);
    EXPECT_EQ(a.bob_cost, b.bob_cost);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.delivered, b.delivered);
  }
  {
    const BroadcastNParams params = BroadcastNParams::sim();
    SuffixBlockerAdversary adv1(Budget(30000), 0.9), adv2(Budget(30000), 0.9);
    Rng rng1(777), rng2(777);
    const auto a = run_broadcast_n(16, params, adv1, rng1);
    const auto b = run_broadcast_n(16, params, adv2, rng2);
    EXPECT_EQ(a.max_cost, b.max_cost);
    EXPECT_EQ(a.latency, b.latency);
    for (std::uint32_t u = 0; u < 16; ++u) {
      EXPECT_EQ(a.nodes[u].cost, b.nodes[u].cost);
    }
  }
}

TEST(DeterminismTest, RngStreamGoldenValues) {
  // The stream-splitting scheme is part of the reproducibility contract:
  // trial k of master seed s must never change meaning.
  Rng s0 = Rng::stream(1, 0);
  Rng s1 = Rng::stream(1, 1);
  EXPECT_EQ(s0.next_u64(), 18001451845637162709ull);
  EXPECT_EQ(s1.next_u64(), 9391057390711568508ull);
}

TEST(DeterminismTest, RepetitionEngineGolden) {
  std::vector<NodeAction> actions = {NodeAction{0.25, Payload::kMessage, 0.0},
                                     NodeAction{0.0, Payload::kNoise, 0.5}};
  Rng rng(2024);
  const auto r = run_repetition(256, actions,
                                JamSchedule::blocking_fraction(256, 0.5), rng);
  // Pinned by the current implementation.
  EXPECT_EQ(r.obs[0].sends, 68u);
  EXPECT_EQ(r.obs[1].listens, 140u);
  EXPECT_EQ(r.obs[1].messages + r.obs[1].clear + r.obs[1].noise, 140u);
}

TEST(DeterminismTest, OneToOneGolden) {
  const OneToOneParams params = OneToOneParams::sim(0.05);
  DuelNoJam adv;
  Rng rng(31337);
  const auto r = run_one_to_one(params, adv, rng);
  EXPECT_TRUE(r.delivered);
  // Values pinned by the current implementation.
  EXPECT_EQ(r.final_epoch, params.first_epoch());
  EXPECT_EQ(r.latency, 2 * (SlotCount{1} << params.first_epoch()));
}

}  // namespace
}  // namespace rcb
