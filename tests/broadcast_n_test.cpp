// Tests for the Figure-2 1-to-n protocol (Theorem 3 claims at test scale).
#include "rcb/protocols/broadcast_n.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rcb/common/mathutil.hpp"
#include "rcb/rng/rng.hpp"

namespace rcb {
namespace {

TEST(BroadcastNParamsTest, TheoryPresetMatchesPaperForms) {
  const BroadcastNParams p = BroadcastNParams::theory();
  // b * i^2 repetitions.
  EXPECT_EQ(p.repetitions(10), 1000u);
  // d * i^3 listen factor.
  EXPECT_DOUBLE_EQ(p.listen_factor(10), 80.0 * 1000.0);
  // gamma = i: divisor S * d * i^4.
  EXPECT_DOUBLE_EQ(p.growth_damping(10), 10.0);
  // helper threshold d*i^3/200.
  EXPECT_DOUBLE_EQ(p.helper_threshold(10), 80.0 * 1000.0 / 200.0);
}

TEST(BroadcastNParamsTest, SimPresetKeepsFunctionalForms) {
  const BroadcastNParams p = BroadcastNParams::sim();
  EXPECT_GT(p.repetitions(12), p.repetitions(6));
  EXPECT_GT(p.listen_factor(12), p.listen_factor(6));
  EXPECT_GT(p.helper_threshold(12), 0.0);
}

TEST(BroadcastNTest, SingleNodeTerminatesViaSafetyValve) {
  // n = 1: the sender hears no messages, never becomes a helper, and must
  // exit through Case 1.
  const BroadcastNParams params = BroadcastNParams::sim();
  NoJamAdversary adv;
  Rng rng(1);
  const auto r = run_broadcast_n(1, params, adv, rng);
  EXPECT_TRUE(r.all_terminated);
  EXPECT_TRUE(r.all_informed);
  EXPECT_LE(r.final_epoch, params.max_epoch);
}

TEST(BroadcastNTest, NoJamInformsEveryone) {
  const BroadcastNParams params = BroadcastNParams::sim();
  for (std::uint32_t n : {2u, 8u, 32u}) {
    int all_informed = 0, all_terminated = 0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
      NoJamAdversary adv;
      Rng rng = Rng::stream(100 + n, t);
      const auto r = run_broadcast_n(n, params, adv, rng);
      all_informed += r.all_informed;
      all_terminated += r.all_terminated;
    }
    EXPECT_GE(all_informed, trials - 1) << "n=" << n;
    EXPECT_GE(all_terminated, trials - 1) << "n=" << n;
  }
}

TEST(BroadcastNTest, NoJamTerminatesNearLgNEpochs) {
  const BroadcastNParams params = BroadcastNParams::sim();
  for (std::uint32_t n : {4u, 16u, 64u}) {
    NoJamAdversary adv;
    Rng rng = Rng::stream(200, n);
    const auto r = run_broadcast_n(n, params, adv, rng);
    ASSERT_TRUE(r.all_terminated) << "n=" << n;
    // Termination by ~lg n + O(1) epochs (Theorem 3's latency claim).
    EXPECT_LE(r.final_epoch, floor_log2(n) + 10) << "n=" << n;
  }
}

TEST(BroadcastNTest, NoJamCostIsPolylog) {
  const BroadcastNParams params = BroadcastNParams::sim();
  // tau = O(log^6 n): the max cost at n=64 should stay tiny relative to
  // total slots elapsed, and grow only mildly from n=8 to n=64.
  auto max_cost = [&](std::uint32_t n) {
    double sum = 0.0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
      NoJamAdversary adv;
      Rng rng = Rng::stream(300 + n, t);
      sum += static_cast<double>(run_broadcast_n(n, params, adv, rng).max_cost);
    }
    return sum / trials;
  };
  const double c8 = max_cost(8);
  const double c64 = max_cost(64);
  EXPECT_LT(c64 / c8, 6.0);  // polylog growth, nothing like the 8x of linear
}

TEST(BroadcastNTest, HelperEstimatesTrackN) {
  // n_u should scale with n (up to the calibrated constant bias).
  const BroadcastNParams params = BroadcastNParams::sim();
  auto mean_estimate = [&](std::uint32_t n) {
    double sum = 0.0;
    int count = 0;
    for (int t = 0; t < 8; ++t) {
      NoJamAdversary adv;
      Rng rng = Rng::stream(400 + n, t);
      const auto r = run_broadcast_n(n, params, adv, rng);
      for (const auto& node : r.nodes) {
        if (node.n_estimate > 0.0) {
          sum += node.n_estimate;
          ++count;
        }
      }
    }
    return count > 0 ? sum / count : 0.0;
  };
  const double e8 = mean_estimate(8);
  const double e64 = mean_estimate(64);
  ASSERT_GT(e8, 0.0);
  ASSERT_GT(e64, 0.0);
  const double ratio = e64 / e8;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 32.0);
}

TEST(BroadcastNTest, JammingForcesHigherCostButStillInforms) {
  const BroadcastNParams params = BroadcastNParams::sim();
  const std::uint32_t n = 16;
  double cost_jammed = 0.0, cost_free = 0.0, adv_total = 0.0;
  int informed = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    {
      NoJamAdversary adv;
      Rng rng = Rng::stream(500, t);
      cost_free += static_cast<double>(
          run_broadcast_n(n, params, adv, rng).max_cost);
    }
    {
      SuffixBlockerAdversary adv(Budget(1 << 17), 0.9);
      Rng rng = Rng::stream(500, t);
      const auto r = run_broadcast_n(n, params, adv, rng);
      cost_jammed += static_cast<double>(r.max_cost);
      adv_total += static_cast<double>(r.adversary_cost);
      informed += r.all_informed;
    }
  }
  EXPECT_GE(informed, trials - 1);
  EXPECT_GT(cost_jammed, cost_free);       // jamming costs the nodes
  EXPECT_LT(cost_jammed, 0.5 * adv_total); // ...but costs the adversary more
}

TEST(BroadcastNTest, PerNodeCostDropsAsNGrows) {
  // Theorem 3's headline: at (roughly) fixed T, bigger systems pay less
  // per node.  The adversary budget forces the same last-blocked epoch.
  const BroadcastNParams params = BroadcastNParams::sim();
  auto mean_max_cost = [&](std::uint32_t n) {
    double sum = 0.0;
    const int trials = 8;
    for (int t = 0; t < trials; ++t) {
      SuffixBlockerAdversary adv(Budget(1 << 19), 0.9);
      Rng rng = Rng::stream(600 + n, t);
      sum += static_cast<double>(run_broadcast_n(n, params, adv, rng).max_cost);
    }
    return sum / trials;
  };
  const double c4 = mean_max_cost(4);
  const double c64 = mean_max_cost(64);
  // sqrt(T/n) predicts 16x more nodes -> 4x cheaper; at this scale the
  // additive polylog term (the paper's log^6 n) softens the contrast.
  EXPECT_LT(c64, 0.8 * c4);
}

TEST(BroadcastNTest, ResultInvariants) {
  const BroadcastNParams params = BroadcastNParams::sim();
  for (int t = 0; t < 6; ++t) {
    RandomJammerAdversary adv(Budget(20000), 0.2);
    Rng rng = Rng::stream(700, t);
    const auto r = run_broadcast_n(24, params, adv, rng);
    EXPECT_EQ(r.n, 24u);
    EXPECT_EQ(r.nodes.size(), 24u);
    EXPECT_LE(r.informed_count, 24u);
    EXPECT_GE(r.informed_count, 1u);  // the sender
    Cost max_seen = 0;
    for (const auto& node : r.nodes) {
      EXPECT_LE(node.cost, r.latency);
      max_seen = std::max(max_seen, node.cost);
      if (node.final_status == BroadcastStatus::kHelper ||
          node.n_estimate > 0.0) {
        EXPECT_TRUE(node.informed);
      }
    }
    EXPECT_EQ(max_seen, r.max_cost);
    EXPECT_EQ(r.all_informed, r.informed_count == r.n);
  }
}

TEST(BroadcastNTest, AdversaryCostMatchesBudgetSpend) {
  const BroadcastNParams params = BroadcastNParams::sim();
  SuffixBlockerAdversary adv(Budget(50000), 0.5);
  Rng rng(42);
  const auto r = run_broadcast_n(8, params, adv, rng);
  EXPECT_EQ(r.adversary_cost, adv.budget().spent());
}

}  // namespace
}  // namespace rcb
