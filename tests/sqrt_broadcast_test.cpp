// Tests for the sqrt(T) "extension of Theorem 1" 1-to-n baseline.
#include "rcb/protocols/sqrt_broadcast.hpp"

#include <gtest/gtest.h>

#include "rcb/rng/rng.hpp"

namespace rcb {
namespace {

TEST(SqrtBroadcastTest, NoJamInformsEveryone) {
  const OneToOneParams params = OneToOneParams::sim(0.02);
  for (std::uint32_t n : {2u, 8u, 32u}) {
    int all_informed = 0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
      NoJamAdversary adv;
      Rng rng = Rng::stream(100 + n, t);
      const auto r = run_sqrt_broadcast(n, params, adv, rng);
      all_informed += r.all_informed;
      EXPECT_TRUE(r.all_terminated);
    }
    // Each receiver independently misses with probability <= ~eps.
    EXPECT_GE(all_informed, trials * 2 / 3) << "n=" << n;
  }
}

TEST(SqrtBroadcastTest, SenderAloneTerminatesQuickly) {
  const OneToOneParams params = OneToOneParams::sim(0.02);
  NoJamAdversary adv;
  Rng rng(1);
  const auto r = run_sqrt_broadcast(1, params, adv, rng);
  EXPECT_TRUE(r.all_terminated);
  EXPECT_LE(r.final_epoch, params.first_epoch() + 2);
}

TEST(SqrtBroadcastTest, MaxCostDoesNotImproveWithN) {
  // The defining weakness vs Fig. 2: the worst-off node (the sender, who
  // cannot hand the dissemination burden to anyone) pays ~sqrt(T)
  // regardless of n.  Theorem 3's helper mechanism exists precisely to
  // spread that burden.
  const OneToOneParams params = OneToOneParams::sim(0.02);
  auto max_cost = [&](std::uint32_t n) {
    double sum = 0.0;
    const int trials = 15;
    for (int t = 0; t < trials; ++t) {
      SuffixBlockerAdversary adv(Budget(1 << 16), 0.6);
      Rng rng = Rng::stream(200 + n, t);
      sum += static_cast<double>(
          run_sqrt_broadcast(n, params, adv, rng).max_cost);
    }
    return sum / trials;
  };
  const double c4 = max_cost(4);
  const double c64 = max_cost(64);
  EXPECT_GT(c64, 0.5 * c4);  // Fig.2's max cost would fall ~4x here
  EXPECT_LT(c64, 2.0 * c4);
}

TEST(SqrtBroadcastTest, CostGrowsWithT) {
  const OneToOneParams params = OneToOneParams::sim(0.02);
  auto mean_cost = [&](Cost budget) {
    double sum = 0.0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
      SuffixBlockerAdversary adv(Budget(budget), 0.6);
      Rng rng = Rng::stream(300 + budget, t);
      sum += run_sqrt_broadcast(16, params, adv, rng).mean_cost;
    }
    return sum / trials;
  };
  const double small = mean_cost(Cost{1} << 12);
  const double big = mean_cost(Cost{1} << 16);
  EXPECT_GT(big, 1.5 * small);
  EXPECT_LT(big, 10.0 * small);  // sqrt predicts 4x
}

TEST(SqrtBroadcastTest, ResultInvariants) {
  const OneToOneParams params = OneToOneParams::sim(0.05);
  for (int t = 0; t < 20; ++t) {
    RandomJammerAdversary adv(Budget(10000), 0.3);
    Rng rng = Rng::stream(400, t);
    const auto r = run_sqrt_broadcast(12, params, adv, rng);
    EXPECT_EQ(r.adversary_cost, adv.budget().spent());
    for (const auto& node : r.nodes) EXPECT_LE(node.cost, r.latency);
    EXPECT_GE(r.informed_count, 1u);
  }
}

}  // namespace
}  // namespace rcb
