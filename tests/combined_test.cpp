// Tests for the combined (interleaved Fig.1 + KSY) 1-to-1 protocol.
#include "rcb/protocols/combined.hpp"

#include <gtest/gtest.h>

#include "rcb/adversary/spoofing.hpp"
#include "rcb/rng/rng.hpp"

namespace rcb {
namespace {

TEST(CombinedTest, NoJamDelivers) {
  int delivered = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    CombinedParams params;
    params.fig1 = OneToOneParams::sim(0.05);
    DuelNoJam adv;
    Rng rng = Rng::stream(10, t);
    const auto r = run_combined(params, adv, rng);
    delivered += r.delivered;
    EXPECT_TRUE(r.alice_halted);
    EXPECT_TRUE(r.bob_halted);
    EXPECT_FALSE(r.hit_epoch_cap);
  }
  EXPECT_GE(static_cast<double>(delivered) / trials, 0.9);
}

TEST(CombinedTest, NoJamCostIsAtMostSumOfBoth) {
  // The interleaving can only cost the union of what each stream would
  // spend before its own halt; with no attack both halt in their first
  // epochs, so the total stays small.
  double total = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    CombinedParams params;
    params.fig1 = OneToOneParams::sim(0.01);
    DuelNoJam adv;
    Rng rng = Rng::stream(20, t);
    total += static_cast<double>(run_combined(params, adv, rng).max_cost());
  }
  EXPECT_LT(total / trials, 400.0);
}

TEST(CombinedTest, SurvivesSpoofingUnlikePureFig1) {
  // The headline property: a nack spoofer traps the pure Fig.1 protocol
  // (it runs to its epoch cap), but the combined protocol halts via the
  // KSY stream, which ignores unauthenticated traffic.
  int halted = 0, delivered = 0;
  const int trials = 150;
  double node_cost = 0.0;
  for (int t = 0; t < trials; ++t) {
    CombinedParams params;
    params.fig1 = OneToOneParams::sim(0.05);
    SpoofingNackAdversary adv(Budget::unlimited());
    Rng rng = Rng::stream(30, t);
    const auto r = run_combined(params, adv, rng);
    halted += !r.hit_epoch_cap;
    delivered += r.delivered;
    node_cost += static_cast<double>(r.max_cost());
  }
  EXPECT_GE(halted, trials * 9 / 10);
  EXPECT_GE(static_cast<double>(delivered) / trials, 0.9);
  EXPECT_LT(node_cost / trials, 2000.0);  // no runaway Fig.1 stream
}

TEST(CombinedTest, UnderBlockingBothStreamsStayResourceCompetitive) {
  double node_cost = 0.0, adv_cost = 0.0;
  int delivered = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    CombinedParams params;
    params.fig1 = OneToOneParams::sim(0.05);
    BothViewsSuffixBlocker adv(Budget(1 << 14), 0.6);
    Rng rng = Rng::stream(40, t);
    const auto r = run_combined(params, adv, rng);
    node_cost += static_cast<double>(r.max_cost());
    adv_cost += static_cast<double>(r.adversary_cost);
    delivered += r.delivered;
  }
  EXPECT_GE(static_cast<double>(delivered) / trials, 0.85);
  EXPECT_GT(adv_cost / trials, 500.0);
  EXPECT_LT(node_cost, 0.75 * adv_cost);
}

TEST(CombinedTest, ResultInvariants) {
  for (int t = 0; t < 50; ++t) {
    CombinedParams params;
    params.fig1 = OneToOneParams::sim(0.1);
    SymmetricRandomDuelJammer adv(Budget(4000), 0.3);
    Rng rng = Rng::stream(50, t);
    const auto r = run_combined(params, adv, rng);
    EXPECT_LE(r.alice_cost, r.latency);
    EXPECT_LE(r.bob_cost, r.latency);
    EXPECT_GT(r.latency, 0u);
  }
}

}  // namespace
}  // namespace rcb
