// Tests for the crash-safe checkpoint journal (runtime/checkpoint.hpp):
// round-trip fidelity, the truncation-vs-corruption decision tree, and
// resume-after-truncation.
#include "rcb/runtime/checkpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "rcb/common/mathutil.hpp"

namespace rcb {
namespace {

namespace fs = std::filesystem;

Scenario test_scenario() {
  Scenario s;
  s.protocol = "one_to_one";
  s.adversary = "full_duel";
  s.budget = 4096;
  s.eps = 0.02;
  s.trials = 8;
  s.seed = 77;
  return s;
}

/// Outcome with every field non-default, including doubles that only
/// round-trip with %.17g precision.
TrialOutcome test_outcome(std::uint64_t trial) {
  TrialOutcome o;
  o.max_cost = 1234.0 + static_cast<double>(trial);
  o.mean_cost = 0.1 + static_cast<double>(trial) / 3.0;
  o.adversary_cost = 1.0e15 + static_cast<double>(trial);
  o.latency = 99999.0;
  o.success = trial % 2 == 0;
  o.aborted = trial == 3;
  o.dead_count = trial * 7;
  o.crashed_count = trial;
  o.digest = 0x123456789abcdef0ull ^ (trial * 0x9e3779b97f4a7c15ull);
  return o;
}

CheckpointRecord test_record(std::uint64_t trial) {
  CheckpointRecord rec;
  rec.trial = trial;
  rec.status = trial == 3 ? "timed_out" : "ok";
  rec.attempts = trial == 5 ? 2 : 1;
  rec.outcome = test_outcome(trial);
  return rec;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("rcb_ckpt_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string journal_path() const {
    return (fs::path(dir_) / kCheckpointJournalFile).string();
  }
  std::string manifest_path() const {
    return (fs::path(dir_) / kCheckpointManifestFile).string();
  }

  std::string read_file(const std::string& path) const {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }
  void write_file(const std::string& path, const std::string& text) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }

  /// Creates a checkpoint holding records for the given trials.
  void make_checkpoint(const std::vector<std::uint64_t>& trials) {
    CheckpointWriter writer;
    ASSERT_EQ(writer.create(dir_, test_scenario()), "");
    for (const std::uint64_t t : trials) {
      ASSERT_EQ(writer.append(test_record(t)), "");
    }
    writer.close();
  }

  std::string dir_;
};

TEST_F(CheckpointTest, RoundTripsRecordsExactly) {
  make_checkpoint({0, 3, 5, 1});
  const CheckpointLoadResult loaded = load_checkpoint(dir_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_FALSE(loaded.truncated_tail);
  EXPECT_EQ(loaded.scenario_digest, scenario_digest(test_scenario()));
  EXPECT_EQ(scenario_to_json(loaded.scenario),
            scenario_to_json(test_scenario()));
  ASSERT_EQ(loaded.records.size(), 4u);
  // Journal order is completion order, not trial order.
  const std::vector<std::uint64_t> expect = {0, 3, 5, 1};
  for (std::size_t i = 0; i < expect.size(); ++i) {
    const CheckpointRecord& rec = loaded.records[i];
    const CheckpointRecord ref = test_record(expect[i]);
    EXPECT_EQ(rec.trial, ref.trial);
    EXPECT_EQ(rec.status, ref.status);
    EXPECT_EQ(rec.attempts, ref.attempts);
    // Bit-exact doubles and u64s — the property resume determinism needs.
    EXPECT_EQ(rec.outcome.max_cost, ref.outcome.max_cost);
    EXPECT_EQ(rec.outcome.mean_cost, ref.outcome.mean_cost);
    EXPECT_EQ(rec.outcome.adversary_cost, ref.outcome.adversary_cost);
    EXPECT_EQ(rec.outcome.latency, ref.outcome.latency);
    EXPECT_EQ(rec.outcome.success, ref.outcome.success);
    EXPECT_EQ(rec.outcome.aborted, ref.outcome.aborted);
    EXPECT_EQ(rec.outcome.dead_count, ref.outcome.dead_count);
    EXPECT_EQ(rec.outcome.crashed_count, ref.outcome.crashed_count);
    EXPECT_EQ(rec.outcome.digest, ref.outcome.digest);
  }
}

TEST_F(CheckpointTest, MissingJournalLoadsEmpty) {
  make_checkpoint({});
  fs::remove(journal_path());
  const CheckpointLoadResult loaded = load_checkpoint(dir_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_TRUE(loaded.records.empty());
  EXPECT_FALSE(loaded.truncated_tail);
}

TEST_F(CheckpointTest, MissingManifestFails) {
  const CheckpointLoadResult loaded = load_checkpoint(dir_);
  EXPECT_FALSE(loaded.ok);
}

TEST_F(CheckpointTest, TruncatedTailIsRecoverable) {
  make_checkpoint({0, 1, 2});
  const std::string full = read_file(journal_path());
  // Chop the last record mid-frame, as a SIGKILL mid-append would.
  write_file(journal_path(), full.substr(0, full.size() - 10));

  const CheckpointLoadResult loaded = load_checkpoint(dir_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_TRUE(loaded.truncated_tail);
  ASSERT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.records[1].trial, 1u);

  // A resuming writer truncates to the last good byte and appends; the
  // journal then reloads clean with all three records.
  CheckpointWriter writer;
  ASSERT_EQ(writer.open_for_append(dir_, loaded.scenario_digest,
                                   loaded.journal_valid_bytes),
            "");
  ASSERT_EQ(writer.append(test_record(2)), "");
  writer.close();
  const CheckpointLoadResult reloaded = load_checkpoint(dir_);
  ASSERT_TRUE(reloaded.ok) << reloaded.error;
  EXPECT_FALSE(reloaded.truncated_tail);
  ASSERT_EQ(reloaded.records.size(), 3u);
  EXPECT_EQ(reloaded.records[2].trial, 2u);
}

TEST_F(CheckpointTest, EveryTruncationPointIsEitherCleanOrRecoverable) {
  make_checkpoint({0, 1});
  const std::string full = read_file(journal_path());
  for (std::size_t keep = 0; keep < full.size(); ++keep) {
    write_file(journal_path(), full.substr(0, keep));
    const CheckpointLoadResult loaded = load_checkpoint(dir_);
    ASSERT_TRUE(loaded.ok)
        << "kill at byte " << keep << " unrecoverable: " << loaded.error;
    EXPECT_LE(loaded.records.size(), 2u);
    EXPECT_LE(loaded.journal_valid_bytes, keep);
  }
}

TEST_F(CheckpointTest, FlippedPayloadByteIsCorruption) {
  make_checkpoint({0, 1, 2});
  std::string bytes = read_file(journal_path());
  // Flip a byte inside the middle record's payload (frames are text; pick
  // a digit inside the first outcome number of record 1).
  const std::size_t second = bytes.find("RCBJ", 4);
  ASSERT_NE(second, std::string::npos);
  const std::size_t target = bytes.find("1235", second);  // max_cost of t=1
  ASSERT_NE(target, std::string::npos);
  bytes[target] = '9';
  write_file(journal_path(), bytes);

  const CheckpointLoadResult loaded = load_checkpoint(dir_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("record"), std::string::npos) << loaded.error;
  EXPECT_NE(loaded.error.find("digest"), std::string::npos) << loaded.error;
}

TEST_F(CheckpointTest, DuplicateTrialIsCorruption) {
  make_checkpoint({0, 1, 1});
  const CheckpointLoadResult loaded = load_checkpoint(dir_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("duplicate"), std::string::npos) << loaded.error;
}

TEST_F(CheckpointTest, OutOfRangeTrialIsCorruption) {
  make_checkpoint({0, 99});  // scenario has 8 trials
  const CheckpointLoadResult loaded = load_checkpoint(dir_);
  EXPECT_FALSE(loaded.ok);
}

TEST_F(CheckpointTest, EditedManifestScenarioIsDetected) {
  make_checkpoint({0});
  std::string manifest = read_file(manifest_path());
  const std::size_t pos = manifest.find("\"seed\":77");
  ASSERT_NE(pos, std::string::npos);
  manifest.replace(pos, 9, "\"seed\":78");
  write_file(manifest_path(), manifest);

  const CheckpointLoadResult loaded = load_checkpoint(dir_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("manifest"), std::string::npos) << loaded.error;
}

TEST_F(CheckpointTest, JournalFromDifferentScenarioIsRejected) {
  // Records are stamped with the scenario digest of the manifest they were
  // written under; splicing them under another manifest must fail.
  make_checkpoint({0, 1});
  const std::string foreign_journal = read_file(journal_path());

  fs::remove_all(dir_);
  Scenario other = test_scenario();
  other.seed = 78;
  CheckpointWriter writer;
  ASSERT_EQ(writer.create(dir_, other), "");
  writer.close();
  write_file(journal_path(), foreign_journal);

  const CheckpointLoadResult loaded = load_checkpoint(dir_);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("scenario digest"), std::string::npos)
      << loaded.error;
}

TEST_F(CheckpointTest, GarbagePrefixIsCorruptionNotTruncation) {
  make_checkpoint({0});
  write_file(journal_path(), "XXXX garbage\n" + read_file(journal_path()));
  const CheckpointLoadResult loaded = load_checkpoint(dir_);
  EXPECT_FALSE(loaded.ok);
}

TEST_F(CheckpointTest, AppendBatchBytesMatchPerRecordAppends) {
  // Group commit must not change the on-disk format: one append_batch and
  // n appends have to produce identical journals.
  make_checkpoint({0, 3, 5, 1});
  const std::string per_record = read_file(journal_path());

  fs::remove_all(dir_);
  CheckpointWriter writer;
  ASSERT_EQ(writer.create(dir_, test_scenario()), "");
  std::vector<CheckpointRecord> batch;
  for (const std::uint64_t t : {0, 3, 5, 1}) batch.push_back(test_record(t));
  ASSERT_EQ(writer.append_batch(batch), "");
  writer.close();
  EXPECT_EQ(read_file(journal_path()), per_record);
}

TEST_F(CheckpointTest, WriterIsMovable) {
  CheckpointWriter a;
  ASSERT_EQ(a.create(dir_, test_scenario()), "");
  CheckpointWriter b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): tested
  ASSERT_TRUE(b.active());
  ASSERT_EQ(b.append(test_record(0)), "");
  b.close();
  const CheckpointLoadResult loaded = load_checkpoint(dir_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ASSERT_EQ(loaded.records.size(), 1u);
}

TEST_F(CheckpointTest, AsyncJournalWriterRoundTripsConcurrentProducers) {
  CheckpointWriter writer;
  Scenario s = test_scenario();
  s.trials = 64;
  ASSERT_EQ(writer.create(dir_, s), "");
  AsyncJournalWriter journal(std::move(writer), /*capacity=*/8);

  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&journal, p] {
      for (std::uint64_t t = static_cast<std::uint64_t>(p); t < 64; t += 4) {
        CheckpointRecord rec;
        rec.trial = t;
        rec.outcome = test_outcome(t);
        ASSERT_TRUE(journal.enqueue(std::move(rec)));
      }
    });
  }
  for (auto& th : producers) th.join();
  ASSERT_EQ(journal.finish(), "");
  EXPECT_EQ(journal.acked_count(), 64u);

  const CheckpointLoadResult loaded = load_checkpoint(dir_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  ASSERT_EQ(loaded.records.size(), 64u);
  std::vector<bool> seen(64, false);
  for (const CheckpointRecord& rec : loaded.records) {
    EXPECT_EQ(rec.outcome.digest, test_outcome(rec.trial).digest);
    seen[rec.trial] = true;
  }
  for (std::size_t t = 0; t < 64; ++t) EXPECT_TRUE(seen[t]) << t;
}

TEST_F(CheckpointTest, AsyncJournalWriterAckedRecordsAreLoadable) {
  // The group-commit ack contract: once acked_count() covers a record, the
  // journal on disk must already parse to a prefix containing it — even
  // before finish() — so a SIGKILL after the ack can always replay it.
  CheckpointWriter writer;
  Scenario s = test_scenario();
  s.trials = 16;
  ASSERT_EQ(writer.create(dir_, s), "");
  AsyncJournalWriter journal(std::move(writer));
  for (std::uint64_t t = 0; t < 16; ++t) {
    CheckpointRecord rec;
    rec.trial = t;
    rec.outcome = test_outcome(t);
    ASSERT_TRUE(journal.enqueue(std::move(rec)));
  }
  while (journal.acked_count() < 16) std::this_thread::yield();

  const CheckpointLoadResult loaded = load_checkpoint(dir_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_FALSE(loaded.truncated_tail);
  EXPECT_EQ(loaded.records.size(), 16u);
  ASSERT_EQ(journal.finish(), "");
}

TEST_F(CheckpointTest, StaleManifestTmpFromCrashWindowIsCleanedUp) {
  // A crash between the temp-file write and the rename leaves
  // "manifest.json.tmp" next to the manifest.  It must not survive
  // recovery: a later crash mid-rewrite could otherwise be confused with
  // it, and it lingers forever on disk.
  make_checkpoint({0, 1});
  const std::string tmp = manifest_path() + ".tmp";
  write_file(tmp, "{\"partial\":");  // torn temp write from the dead process

  CheckpointLoadResult loaded = load_checkpoint(dir_);
  ASSERT_TRUE(loaded.ok) << loaded.error;  // the real manifest is intact
  CheckpointWriter writer;
  ASSERT_EQ(writer.open_for_append(dir_, loaded.scenario_digest,
                                   loaded.journal_valid_bytes),
            "");
  writer.close();
  EXPECT_FALSE(fs::exists(tmp)) << "stale manifest temp file survived resume";

  // The fresh-start path also recovers: create() rewrites through the same
  // temp name, so the stale file is replaced, not left behind.
  write_file(tmp, "{\"partial\":");
  ASSERT_EQ(writer.create(dir_, test_scenario()), "");
  writer.close();
  EXPECT_FALSE(fs::exists(tmp));
}

TEST_F(CheckpointTest, InjectedWriteFaultFailsAppendWithoutWriting) {
  CheckpointWriter writer;
  ASSERT_EQ(writer.create(dir_, test_scenario()), "");
  ASSERT_EQ(writer.append(test_record(0)), "");
  const std::string before = read_file(journal_path());

  set_checkpoint_write_fault([](std::size_t) { return ENOSPC; });
  const std::string err = writer.append(test_record(1));
  set_checkpoint_write_fault(nullptr);
  EXPECT_NE(err.find("journal append failed"), std::string::npos) << err;
  EXPECT_EQ(read_file(journal_path()), before);  // failed write wrote nothing

  // The journal still parses to the pre-fault prefix.
  const CheckpointLoadResult loaded = load_checkpoint(dir_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.records.size(), 1u);
}

TEST_F(CheckpointTest, DiskFullTaintsAsyncWriterAndSurfacesFromFinish) {
  // ENOSPC-style fault mid-sweep: the first failed group commit must taint
  // the writer (later enqueues refused, nothing silently dropped) and the
  // error must surface from finish() — the path the sweep supervisor
  // reports from.
  CheckpointWriter writer;
  Scenario s = test_scenario();
  s.trials = 64;
  ASSERT_EQ(writer.create(dir_, s), "");

  std::atomic<int> writes_left{2};
  set_checkpoint_write_fault([&writes_left](std::size_t) {
    return writes_left.fetch_sub(1) <= 0 ? ENOSPC : 0;
  });
  AsyncJournalWriter journal(std::move(writer));
  std::size_t accepted = 0;
  for (std::uint64_t t = 0; t < 64; ++t) {
    CheckpointRecord rec;
    rec.trial = t;
    rec.outcome = test_outcome(t);
    if (journal.enqueue(std::move(rec))) ++accepted;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::string err = journal.finish();
  set_checkpoint_write_fault(nullptr);

  EXPECT_NE(err.find("journal append failed"), std::string::npos) << err;
  EXPECT_LT(accepted, 64u);            // the taint refused later producers
  EXPECT_LT(journal.acked_count(), 64u);  // nothing past the fault was acked
  EXPECT_FALSE(journal.enqueue(CheckpointRecord{}));

  // Whatever was acked before the disk filled up is still replayable.
  const CheckpointLoadResult loaded = load_checkpoint(dir_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.records.size(), journal.acked_count());
}

TEST_F(CheckpointTest, AsyncJournalWriterSurfacesWriteErrors) {
  // An unopened writer fails the first batch; the error must reach the
  // finisher, and later producers must see enqueue() == false instead of
  // silently queueing records that can never be durable.
  AsyncJournalWriter journal{CheckpointWriter{}};
  CheckpointRecord rec;
  rec.trial = 0;
  journal.enqueue(rec);  // may report true; the batch fails asynchronously
  std::string err = journal.finish();
  EXPECT_NE(err.find("not open"), std::string::npos) << err;
  EXPECT_EQ(journal.acked_count(), 0u);
  EXPECT_FALSE(journal.enqueue(rec));
}

}  // namespace
}  // namespace rcb
