// Corpus replay: every RCB_REPRO record under tests/corpus/ must parse,
// carry an untampered scenario, and replay bit-identically — the same
// contract `rcb_replay --verify` enforces, run as a gtest suite on every
// build.  Minimized failures produced by rcb_fuzz are promoted here by
// copying their .repro.json into the corpus directory; nothing else is
// required (the suite discovers files at runtime).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rcb/runtime/scenario.hpp"

#ifndef RCB_CORPUS_DIR
#error "RCB_CORPUS_DIR must be defined by the build (tests/CMakeLists.txt)"
#endif

namespace rcb {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(RCB_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CorpusTest, CorpusIsNotEmpty) {
  EXPECT_GE(corpus_files().size(), 2u)
      << "seed corpus missing from " << RCB_CORPUS_DIR;
}

TEST(CorpusTest, EveryRecordReplaysBitIdentically) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.string());
    const ReproParseResult parsed = repro_record_from_json(slurp(path));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const ReproRecord& rec = parsed.record;
    ASSERT_TRUE(rec.has_scenario);
    EXPECT_EQ(validate_scenario(rec.scenario), "");
    // A record whose embedded scenario no longer hashes to the recorded
    // digest was edited after emission; replaying it would "reproduce" a
    // different experiment than the one that failed.
    ASSERT_TRUE(rec.has_scenario_digest);
    EXPECT_EQ(scenario_digest(rec.scenario), rec.scenario_digest);

    const TrialOutcome first = run_scenario_trial(rec.scenario, rec.trial);
    const TrialOutcome second = run_scenario_trial(rec.scenario, rec.trial);
    EXPECT_EQ(first.digest, second.digest)
        << "replay is nondeterministic for trial " << rec.trial;
  }
}

TEST(CorpusTest, SeedCasesKeepTheirFailureShape) {
  // The two seed cases were chosen to pin specific degraded-mode paths;
  // assert the shape survives so a behavioural drift in those paths turns
  // the corpus red instead of silently replaying a now-benign trial.
  for (const auto& path : corpus_files()) {
    const std::string name = path.filename().string();
    const ReproParseResult parsed = repro_record_from_json(slurp(path));
    ASSERT_TRUE(parsed.ok) << path << ": " << parsed.error;
    const TrialOutcome out =
        run_scenario_trial(parsed.record.scenario, parsed.record.trial);
    if (name.find("fault_storm") != std::string::npos) {
      EXPECT_GT(out.dead_count, 0u) << name;
      EXPECT_FALSE(out.success) << name;
    } else if (name.find("timeout") != std::string::npos) {
      EXPECT_TRUE(out.aborted) << name;
    } else if (name.find("mc_uniform_saturation") != std::string::npos) {
      // Rate-1.0 uniform split with a budget that outlasts the epoch cap:
      // every channel is jammed every slot, so nobody is informed and the
      // adversary is charged per (slot, channel).
      EXPECT_FALSE(out.success) << name;
      EXPECT_FALSE(out.aborted) << name;
      EXPECT_GT(out.adversary_cost, 0.0) << name;
    }
  }
}

}  // namespace
}  // namespace rcb
