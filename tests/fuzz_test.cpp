// Randomized differential tests ("fuzz") against reference implementations.
//
// Each test generates many random configurations and compares the optimised
// implementation against an obviously-correct reference (a bitset, a naive
// per-slot loop, ...).  Seeds are fixed, so failures are reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "rcb/cli/json_parse.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/rng/sampling.hpp"
#include "rcb/runtime/scenario.hpp"
#include "rcb/sim/jam_schedule.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {
namespace {

TEST(JamScheduleFuzzTest, MatchesBitsetReference) {
  Rng rng(101);
  for (int iter = 0; iter < 300; ++iter) {
    const SlotCount slots = 1 + rng.uniform_u64(512);
    std::set<SlotIndex> reference;
    JamSchedule schedule = JamSchedule::none();

    switch (rng.uniform_u64(4)) {
      case 0:
        schedule = JamSchedule::none();
        break;
      case 1:
        schedule = JamSchedule::all(slots);
        for (SlotIndex s = 0; s < slots; ++s) reference.insert(s);
        break;
      case 2: {
        const SlotIndex start = rng.uniform_u64(slots + 1);
        schedule = JamSchedule::suffix(slots, start);
        for (SlotIndex s = start; s < slots; ++s) reference.insert(s);
        break;
      }
      default: {
        std::vector<SlotIndex> list;
        for (SlotIndex s = 0; s < slots; ++s) {
          if (rng.bernoulli(0.3)) {
            list.push_back(s);
            reference.insert(s);
          }
        }
        schedule = JamSchedule::slots(slots, std::move(list));
        break;
      }
    }

    ASSERT_EQ(schedule.jammed_count(), reference.size()) << "iter " << iter;
    for (SlotIndex s = 0; s < slots; ++s) {
      ASSERT_EQ(schedule.is_jammed(s), reference.count(s) > 0)
          << "iter " << iter << " slot " << s;
    }
    // jammed_before at random cut points.
    for (int k = 0; k < 5; ++k) {
      const SlotIndex cut = rng.uniform_u64(slots + 2);
      const auto expected = static_cast<SlotCount>(std::count_if(
          reference.begin(), reference.end(),
          [cut](SlotIndex s) { return s < cut; }));
      ASSERT_EQ(schedule.jammed_before(cut), expected)
          << "iter " << iter << " cut " << cut;
    }
  }
}

TEST(SamplerFuzzTest, SkipSamplerMatchesNaiveBernoulliDistribution) {
  // For a moderate number of slots, compare the per-slot hit frequency of
  // the skip sampler against the analytic p across many rounds.
  Rng rng(202);
  for (double p : {0.02, 0.37, 0.81}) {
    const SlotCount slots = 64;
    std::vector<int> hits(slots, 0);
    const int rounds = 30000;
    std::vector<SlotIndex> out;
    for (int round = 0; round < rounds; ++round) {
      sample_bernoulli_slots(slots, p, rng, out);
      for (SlotIndex s : out) ++hits[s];
    }
    for (SlotIndex s = 0; s < slots; ++s) {
      const double freq = static_cast<double>(hits[s]) / rounds;
      ASSERT_NEAR(freq, p, 5.0 * std::sqrt(p * (1 - p) / rounds) + 1e-3)
          << "p=" << p << " slot=" << s;
    }
  }
}

TEST(EngineFuzzTest, RandomConfigurationsSatisfyConservation) {
  Rng meta(303);
  for (int iter = 0; iter < 150; ++iter) {
    const SlotCount slots = 1 + meta.uniform_u64(2048);
    const std::size_t nodes = 1 + meta.uniform_u64(8);
    std::vector<NodeAction> actions;
    for (std::size_t u = 0; u < nodes; ++u) {
      const auto payload = static_cast<Payload>(meta.uniform_u64(3));
      actions.push_back(NodeAction{meta.uniform_double(), payload,
                                   meta.uniform_double()});
    }
    const JamSchedule jam =
        JamSchedule::blocking_fraction(slots, meta.uniform_double());
    Rng rng(1000 + iter);
    const auto r = run_repetition(slots, actions, jam, rng);

    ASSERT_EQ(r.obs.size(), nodes);
    for (const auto& o : r.obs) {
      ASSERT_LE(o.sends + o.listens, slots);
      ASSERT_EQ(o.clear + o.messages + o.nacks + o.noise, o.listens);
      ASSERT_LE(o.listens_until_first_message, o.listens);
      if (o.first_message_slot != kNoSlot) {
        ASSERT_LT(o.first_message_slot, slots);
        ASSERT_FALSE(jam.is_jammed(o.first_message_slot));
      }
    }
  }
}

TEST(EngineFuzzTest, TotalSendsConsistentAcrossObservers) {
  // With one deterministic sender and k always-on listeners, every listener
  // hears exactly the same number of message slots (they all listen to the
  // same channel in every slot).
  Rng meta(404);
  for (int iter = 0; iter < 50; ++iter) {
    const SlotCount slots = 64 + meta.uniform_u64(512);
    std::vector<NodeAction> actions = {
        NodeAction{meta.uniform_double(), Payload::kMessage, 0.0}};
    const std::size_t listeners = 2 + meta.uniform_u64(4);
    for (std::size_t u = 0; u < listeners; ++u) {
      actions.push_back(NodeAction{0.0, Payload::kNoise, 1.0});
    }
    Rng rng(2000 + iter);
    const auto r = run_repetition(slots, actions, JamSchedule::none(), rng);
    for (std::size_t u = 2; u <= listeners; ++u) {
      ASSERT_EQ(r.obs[u].messages, r.obs[1].messages) << "iter " << iter;
      ASSERT_EQ(r.obs[u].clear, r.obs[1].clear) << "iter " << iter;
    }
    ASSERT_EQ(r.obs[1].messages, r.obs[0].sends) << "iter " << iter;
  }
}

// ---------------------------------------------------------------------------
// JSON parser fuzz.  The parser feeds on crash-repro records scraped from
// logs, so it must survive arbitrary bytes: never crash, never read out of
// bounds, always report an in-range error offset.

/// Invariants every parse result must satisfy, crash or no crash.
void check_parse_invariants(const std::string& input) {
  const JsonParseResult r = json_parse(input);
  if (!r.ok) {
    ASSERT_LE(r.error_offset, input.size()) << "input: " << input;
    ASSERT_FALSE(r.error.empty());
  }
}

TEST(JsonFuzzTest, RandomByteStringsNeverCrashTheParser) {
  Rng rng(505);
  // Bias toward JSON's structural bytes so the fuzz reaches deep parser
  // states instead of failing on byte one.
  const std::string alphabet = "{}[]\",:.-+eE0123456789 \tntf\\u\n\rabz";
  for (int iter = 0; iter < 3000; ++iter) {
    const std::size_t len = rng.uniform_u64(64);
    std::string input;
    for (std::size_t i = 0; i < len; ++i) {
      if (rng.bernoulli(0.9)) {
        input.push_back(alphabet[rng.uniform_u64(alphabet.size())]);
      } else {
        input.push_back(static_cast<char>(rng.uniform_u64(256)));
      }
    }
    check_parse_invariants(input);
  }
}

TEST(JsonFuzzTest, TruncationsOfValidDocumentsFailCleanly) {
  Scenario s;
  s.faults.crash_rate = 0.01;
  s.faults.brownout_slot = 100;
  s.faults.brownout_fraction = 0.5;
  const std::string valid = scenario_to_json(s);
  ASSERT_TRUE(json_parse(valid).ok);
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    const std::string truncated = valid.substr(0, cut);
    const JsonParseResult r = json_parse(truncated);
    // No strict prefix of a minified object document is itself valid.
    ASSERT_FALSE(r.ok) << "cut=" << cut;
    ASSERT_LE(r.error_offset, truncated.size());
  }
}

TEST(JsonFuzzTest, DeepNestingIsRejectedNotOverflowed) {
  for (const char open : {'[', '{'}) {
    std::string deep(3000, open);
    if (open == '{') {
      // Interleave keys so the document is structurally plausible.
      deep.clear();
      for (int i = 0; i < 3000; ++i) deep += "{\"k\":";
    }
    const JsonParseResult r = json_parse(deep);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("nesting"), std::string::npos) << r.error;
  }
}

TEST(JsonFuzzTest, MutationsOfValidDocumentsNeverCrash) {
  Scenario s;
  s.protocol = "broadcast";
  s.adversary = "suffix";
  s.faults.crash_rate = 0.25;
  s.faults.loss_rate = 0.125;
  const std::string valid = scenario_to_json(s);
  Rng rng(606);
  for (int iter = 0; iter < 3000; ++iter) {
    std::string mutated = valid;
    const std::size_t edits = 1 + rng.uniform_u64(4);
    for (std::size_t e = 0; e < edits && !mutated.empty(); ++e) {
      const std::size_t pos = rng.uniform_u64(mutated.size());
      switch (rng.uniform_u64(3)) {
        case 0:  // flip a byte
          mutated[pos] = static_cast<char>(rng.uniform_u64(256));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        default:  // duplicate a byte
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
    }
    check_parse_invariants(mutated);
    // Whatever the parser accepted must be re-parseable after a scenario
    // decode round-trip (the decoder, not just the parser, must be total).
    (void)scenario_from_json(mutated);
  }
}

TEST(JsonFuzzTest, WriterOutputAlwaysRoundTrips) {
  // Randomised scenarios: the writer's output must parse and decode back
  // to the same document.
  Rng rng(707);
  const char* protocols[] = {"one_to_one", "ksy",   "combined",
                             "broadcast",  "naive", "sqrt"};
  const char* broadcast_advs[] = {"none", "suffix", "random", "reactive"};
  const char* duel_advs[] = {"none", "full_duel", "random_duel"};
  for (int iter = 0; iter < 200; ++iter) {
    Scenario s;
    s.protocol = protocols[rng.uniform_u64(6)];
    s.adversary = s.is_duel() ? duel_advs[rng.uniform_u64(3)]
                              : broadcast_advs[rng.uniform_u64(4)];
    s.budget = rng.uniform_u64(1u << 20);
    s.q = rng.uniform_double();
    s.rate = rng.uniform_double();
    s.n = 1 + static_cast<std::uint32_t>(rng.uniform_u64(64));
    s.eps = 0.001 + 0.5 * rng.uniform_double();
    s.trials = 1 + rng.uniform_u64(100);
    s.seed = rng.next_u64() >> 12;  // keep within the 2^53 exact-int range
    s.timeout_slots = rng.uniform_u64(1u << 20);
    s.faults.seed = rng.next_u64() >> 12;
    s.faults.crash_rate = rng.uniform_double();
    s.faults.restart_rate = rng.uniform_double();
    s.faults.crash_fraction = rng.uniform_double();
    s.faults.loss_rate = rng.uniform_double();
    s.faults.corruption_rate = rng.uniform_double();
    s.faults.clock_skew_rate = rng.uniform_double();
    if (rng.bernoulli(0.5)) {
      s.faults.brownout_slot = rng.uniform_u64(1u << 20);
      s.faults.brownout_fraction = rng.uniform_double();
      s.faults.brownout_factor = rng.uniform_double();
    }
    s.faults.cca_false_busy = rng.uniform_double();
    s.faults.cca_missed_detection = rng.uniform_double();
    s.faults.cca_ramp_slots = rng.uniform_u64(1u << 16);

    const std::string json = scenario_to_json(s);
    ASSERT_TRUE(json_parse(json).ok) << json;
    const ScenarioParseResult parsed = scenario_from_json(json);
    ASSERT_TRUE(parsed.ok) << parsed.error << "\n" << json;
    ASSERT_EQ(scenario_to_json(parsed.scenario), json);
  }
}

TEST(JsonFuzzTest, DuplicateKeysAreRejected) {
  EXPECT_FALSE(json_parse(R"({"a":1,"a":2})").ok);
  EXPECT_FALSE(json_parse(R"({"a":{"b":1,"b":1}})").ok);
  EXPECT_TRUE(json_parse(R"({"a":1,"b":{"a":2}})").ok);  // scoped reuse is fine
}

}  // namespace
}  // namespace rcb
