// Randomized differential tests ("fuzz") against reference implementations.
//
// Each test generates many random configurations and compares the optimised
// implementation against an obviously-correct reference (a bitset, a naive
// per-slot loop, ...).  Seeds are fixed, so failures are reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "rcb/rng/rng.hpp"
#include "rcb/rng/sampling.hpp"
#include "rcb/sim/jam_schedule.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {
namespace {

TEST(JamScheduleFuzzTest, MatchesBitsetReference) {
  Rng rng(101);
  for (int iter = 0; iter < 300; ++iter) {
    const SlotCount slots = 1 + rng.uniform_u64(512);
    std::set<SlotIndex> reference;
    JamSchedule schedule = JamSchedule::none();

    switch (rng.uniform_u64(4)) {
      case 0:
        schedule = JamSchedule::none();
        break;
      case 1:
        schedule = JamSchedule::all(slots);
        for (SlotIndex s = 0; s < slots; ++s) reference.insert(s);
        break;
      case 2: {
        const SlotIndex start = rng.uniform_u64(slots + 1);
        schedule = JamSchedule::suffix(slots, start);
        for (SlotIndex s = start; s < slots; ++s) reference.insert(s);
        break;
      }
      default: {
        std::vector<SlotIndex> list;
        for (SlotIndex s = 0; s < slots; ++s) {
          if (rng.bernoulli(0.3)) {
            list.push_back(s);
            reference.insert(s);
          }
        }
        schedule = JamSchedule::slots(slots, std::move(list));
        break;
      }
    }

    ASSERT_EQ(schedule.jammed_count(), reference.size()) << "iter " << iter;
    for (SlotIndex s = 0; s < slots; ++s) {
      ASSERT_EQ(schedule.is_jammed(s), reference.count(s) > 0)
          << "iter " << iter << " slot " << s;
    }
    // jammed_before at random cut points.
    for (int k = 0; k < 5; ++k) {
      const SlotIndex cut = rng.uniform_u64(slots + 2);
      const auto expected = static_cast<SlotCount>(std::count_if(
          reference.begin(), reference.end(),
          [cut](SlotIndex s) { return s < cut; }));
      ASSERT_EQ(schedule.jammed_before(cut), expected)
          << "iter " << iter << " cut " << cut;
    }
  }
}

TEST(SamplerFuzzTest, SkipSamplerMatchesNaiveBernoulliDistribution) {
  // For a moderate number of slots, compare the per-slot hit frequency of
  // the skip sampler against the analytic p across many rounds.
  Rng rng(202);
  for (double p : {0.02, 0.37, 0.81}) {
    const SlotCount slots = 64;
    std::vector<int> hits(slots, 0);
    const int rounds = 30000;
    std::vector<SlotIndex> out;
    for (int round = 0; round < rounds; ++round) {
      sample_bernoulli_slots(slots, p, rng, out);
      for (SlotIndex s : out) ++hits[s];
    }
    for (SlotIndex s = 0; s < slots; ++s) {
      const double freq = static_cast<double>(hits[s]) / rounds;
      ASSERT_NEAR(freq, p, 5.0 * std::sqrt(p * (1 - p) / rounds) + 1e-3)
          << "p=" << p << " slot=" << s;
    }
  }
}

TEST(EngineFuzzTest, RandomConfigurationsSatisfyConservation) {
  Rng meta(303);
  for (int iter = 0; iter < 150; ++iter) {
    const SlotCount slots = 1 + meta.uniform_u64(2048);
    const std::size_t nodes = 1 + meta.uniform_u64(8);
    std::vector<NodeAction> actions;
    for (std::size_t u = 0; u < nodes; ++u) {
      const auto payload = static_cast<Payload>(meta.uniform_u64(3));
      actions.push_back(NodeAction{meta.uniform_double(), payload,
                                   meta.uniform_double()});
    }
    const JamSchedule jam =
        JamSchedule::blocking_fraction(slots, meta.uniform_double());
    Rng rng(1000 + iter);
    const auto r = run_repetition(slots, actions, jam, rng);

    ASSERT_EQ(r.obs.size(), nodes);
    for (const auto& o : r.obs) {
      ASSERT_LE(o.sends + o.listens, slots);
      ASSERT_EQ(o.clear + o.messages + o.nacks + o.noise, o.listens);
      ASSERT_LE(o.listens_until_first_message, o.listens);
      if (o.first_message_slot != kNoSlot) {
        ASSERT_LT(o.first_message_slot, slots);
        ASSERT_FALSE(jam.is_jammed(o.first_message_slot));
      }
    }
  }
}

TEST(EngineFuzzTest, TotalSendsConsistentAcrossObservers) {
  // With one deterministic sender and k always-on listeners, every listener
  // hears exactly the same number of message slots (they all listen to the
  // same channel in every slot).
  Rng meta(404);
  for (int iter = 0; iter < 50; ++iter) {
    const SlotCount slots = 64 + meta.uniform_u64(512);
    std::vector<NodeAction> actions = {
        NodeAction{meta.uniform_double(), Payload::kMessage, 0.0}};
    const std::size_t listeners = 2 + meta.uniform_u64(4);
    for (std::size_t u = 0; u < listeners; ++u) {
      actions.push_back(NodeAction{0.0, Payload::kNoise, 1.0});
    }
    Rng rng(2000 + iter);
    const auto r = run_repetition(slots, actions, JamSchedule::none(), rng);
    for (std::size_t u = 2; u <= listeners; ++u) {
      ASSERT_EQ(r.obs[u].messages, r.obs[1].messages) << "iter " << iter;
      ASSERT_EQ(r.obs[u].clear, r.obs[1].clear) << "iter " << iter;
    }
    ASSERT_EQ(r.obs[1].messages, r.obs[0].sends) << "iter " << iter;
  }
}

}  // namespace
}  // namespace rcb
