// Tests for histograms and the bootstrap confidence interval.
#include "rcb/stats/histogram.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace rcb {
namespace {

TEST(HistogramTest, EmptyInputSingleEmptyBin) {
  Histogram h({}, 5);
  EXPECT_EQ(h.num_bins(), 1u);
  EXPECT_EQ(h.count(0), 0u);
  EXPECT_EQ(h.total(), 0u);
}

TEST(HistogramTest, ConstantInputCollapsesToOneBin) {
  const std::vector<double> xs = {3.0, 3.0, 3.0};
  Histogram h(xs, 10);
  EXPECT_EQ(h.num_bins(), 1u);
  EXPECT_EQ(h.count(0), 3u);
}

TEST(HistogramTest, UniformDataSpreadsAcrossBins) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(static_cast<double>(i));
  Histogram h(xs, 4);
  ASSERT_EQ(h.num_bins(), 4u);
  for (std::size_t b = 0; b < 4; ++b) EXPECT_EQ(h.count(b), 25u);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 99.0);
}

TEST(HistogramTest, MaxValueLandsInLastBin) {
  const std::vector<double> xs = {0.0, 10.0};
  Histogram h(xs, 5);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(HistogramTest, PrintRendersBars) {
  const std::vector<double> xs = {1, 1, 1, 2};
  Histogram h(xs, 2);
  std::ostringstream os;
  h.print(os, 10);
  const std::string out = os.str();
  EXPECT_NE(out.find("##########"), std::string::npos);  // full bar
  EXPECT_NE(out.find(" 3"), std::string::npos);
  EXPECT_NE(out.find(" 1"), std::string::npos);
}

TEST(BootstrapTest, DegenerateInputs) {
  Rng rng(1);
  const BootstrapCi empty = bootstrap_mean_ci({}, 100, 0.05, rng);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  const std::vector<double> one = {5.0};
  const BootstrapCi single = bootstrap_mean_ci(one, 100, 0.05, rng);
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.lo, 5.0);
  EXPECT_DOUBLE_EQ(single.hi, 5.0);
}

TEST(BootstrapTest, IntervalBracketsTheMean) {
  Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.uniform_double() * 10.0);
  const BootstrapCi ci = bootstrap_mean_ci(xs, 2000, 0.05, rng);
  EXPECT_LT(ci.lo, ci.mean);
  EXPECT_GT(ci.hi, ci.mean);
  // Width should be around 2 * 1.96 * sigma/sqrt(n) ~ 0.8 for U(0,10).
  EXPECT_LT(ci.hi - ci.lo, 2.0);
  EXPECT_GT(ci.hi - ci.lo, 0.3);
}

TEST(BootstrapTest, TighterForLargerSamples) {
  Rng rng(3);
  std::vector<double> small_s, large_s;
  for (int i = 0; i < 50; ++i) small_s.push_back(rng.uniform_double());
  for (int i = 0; i < 5000; ++i) large_s.push_back(rng.uniform_double());
  const BootstrapCi a = bootstrap_mean_ci(small_s, 1000, 0.05, rng);
  const BootstrapCi b = bootstrap_mean_ci(large_s, 1000, 0.05, rng);
  EXPECT_LT(b.hi - b.lo, a.hi - a.lo);
}

}  // namespace
}  // namespace rcb
