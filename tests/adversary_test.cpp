// Tests for budgets and jamming strategies.
#include <gtest/gtest.h>

#include "rcb/adversary/budget.hpp"
#include "rcb/adversary/spoofing.hpp"
#include "rcb/adversary/strategies.hpp"
#include "rcb/adversary/threshold.hpp"
#include "rcb/adversary/two_uniform.hpp"
#include "rcb/rng/rng.hpp"

namespace rcb {
namespace {

TEST(BudgetTest, TakeSaturates) {
  Budget b(10);
  EXPECT_EQ(b.take(4), 4u);
  EXPECT_EQ(b.spent(), 4u);
  EXPECT_EQ(b.remaining(), 6u);
  EXPECT_EQ(b.take(100), 6u);
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.take(1), 0u);
}

TEST(BudgetTest, UnlimitedNeverExhausts) {
  Budget b = Budget::unlimited();
  EXPECT_EQ(b.take(1ull << 40), 1ull << 40);
  EXPECT_FALSE(b.exhausted());
}

TEST(NoJamAdversaryTest, NeverJams) {
  NoJamAdversary adv;
  Rng rng(1);
  RepetitionContext ctx{5, 0, 10, 32};
  EXPECT_EQ(adv.plan(ctx, rng).jammed_count(), 0u);
}

TEST(SuffixBlockerTest, QBlocksWhileBudgetLasts) {
  SuffixBlockerAdversary adv(Budget(100), 0.5);
  Rng rng(2);
  RepetitionContext ctx{5, 0, 10, 64};
  // First three repetitions: 32 + 32 + 32 wanted, but only 100 available.
  auto s1 = adv.plan(ctx, rng);
  EXPECT_EQ(s1.jammed_count(), 32u);
  EXPECT_TRUE(s1.is_jammed(63));
  EXPECT_FALSE(s1.is_jammed(31));
  auto s2 = adv.plan(ctx, rng);
  EXPECT_EQ(s2.jammed_count(), 32u);
  auto s3 = adv.plan(ctx, rng);
  EXPECT_EQ(s3.jammed_count(), 32u);
  auto s4 = adv.plan(ctx, rng);
  EXPECT_EQ(s4.jammed_count(), 4u);  // budget remainder
  auto s5 = adv.plan(ctx, rng);
  EXPECT_EQ(s5.jammed_count(), 0u);
  EXPECT_EQ(adv.budget().spent(), 100u);
}

TEST(SuffixBlockerTest, JamsAreASuffix) {
  SuffixBlockerAdversary adv(Budget::unlimited(), 0.25);
  Rng rng(3);
  RepetitionContext ctx{6, 0, 10, 128};
  auto s = adv.plan(ctx, rng);
  EXPECT_EQ(s.jammed_count(), 32u);
  EXPECT_FALSE(s.is_jammed(95));
  EXPECT_TRUE(s.is_jammed(96));
}

TEST(EpochFractionBlockerTest, BlocksRoughlyTheRequestedFraction) {
  EpochFractionBlockerAdversary adv(Budget::unlimited(), 0.5, 0.3);
  Rng rng(4);
  int blocked = 0;
  const int reps = 2000;
  for (int r = 0; r < reps; ++r) {
    RepetitionContext ctx{6, static_cast<std::uint64_t>(r), 2000, 128};
    blocked += (adv.plan(ctx, rng).jammed_count() > 0);
  }
  EXPECT_NEAR(static_cast<double>(blocked) / reps, 0.3, 0.04);
}

TEST(RandomJammerTest, RateAndBudgetRespected) {
  RandomJammerAdversary adv(Budget(1000), 0.1);
  Rng rng(5);
  Cost total = 0;
  for (int r = 0; r < 100; ++r) {
    RepetitionContext ctx{7, static_cast<std::uint64_t>(r), 100, 256};
    total += adv.plan(ctx, rng).jammed_count();
  }
  EXPECT_EQ(total, adv.budget().spent());
  EXPECT_LE(total, 1000u);
  EXPECT_EQ(total, 1000u);  // 100 reps * ~25.6 expected >> 1000, so exhausted
}

TEST(BurstJammerTest, PeriodicPattern) {
  BurstJammerAdversary adv(Budget::unlimited(), 2, 8);
  Rng rng(6);
  RepetitionContext ctx{5, 0, 10, 32};
  auto s = adv.plan(ctx, rng);
  EXPECT_EQ(s.jammed_count(), 8u);  // 4 periods * 2 slots
  EXPECT_TRUE(s.is_jammed(0));
  EXPECT_TRUE(s.is_jammed(1));
  EXPECT_FALSE(s.is_jammed(2));
  EXPECT_TRUE(s.is_jammed(8));
}

TEST(ThresholdAdversaryTest, FiresOnlyAboveThreshold) {
  ThresholdAdversary adv(100);
  EXPECT_FALSE(adv.jam(0.05, 0.1));  // 0.005 <= 1/100
  EXPECT_TRUE(adv.jam(0.2, 0.1));    // 0.02 > 1/100
  EXPECT_EQ(adv.spent(), 1u);
}

TEST(ThresholdAdversaryTest, StopsWhenBudgetExhausted) {
  ThresholdAdversary adv(3);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(adv.jam(1.0, 1.0));
  EXPECT_FALSE(adv.jam(1.0, 1.0));
  EXPECT_EQ(adv.spent(), 3u);
}

TEST(DuelAdversaryTest, SendPhaseBlockerTargetsBobOnly) {
  SendPhaseBlocker adv(Budget::unlimited(), 0.5);
  Rng rng(7);
  DuelPhaseContext send{5, DuelPhase::kSend, 64, 0.2, true, true};
  auto plan = adv.plan(send, rng);
  EXPECT_EQ(plan.alice_view.jammed_count(), 0u);
  EXPECT_EQ(plan.bob_view.jammed_count(), 32u);
  DuelPhaseContext nack{5, DuelPhase::kNack, 64, 0.2, true, true};
  plan = adv.plan(nack, rng);
  EXPECT_EQ(plan.bob_view.jammed_count(), 0u);
}

TEST(DuelAdversaryTest, FullDuelBlockerSplitsAcrossPhases) {
  FullDuelBlocker adv(Budget::unlimited(), 0.5);
  Rng rng(8);
  DuelPhaseContext send{5, DuelPhase::kSend, 64, 0.2, true, true};
  auto plan = adv.plan(send, rng);
  EXPECT_EQ(plan.bob_view.jammed_count(), 32u);
  EXPECT_EQ(plan.alice_view.jammed_count(), 0u);
  DuelPhaseContext nack{5, DuelPhase::kNack, 64, 0.2, true, true};
  plan = adv.plan(nack, rng);
  EXPECT_EQ(plan.alice_view.jammed_count(), 32u);
  EXPECT_EQ(plan.bob_view.jammed_count(), 0u);
}

TEST(DuelAdversaryTest, FullDuelBlockerSkipsHaltedParties) {
  FullDuelBlocker adv(Budget::unlimited(), 0.5);
  Rng rng(9);
  DuelPhaseContext send{5, DuelPhase::kSend, 64, 0.2, true, false};
  EXPECT_EQ(adv.plan(send, rng).bob_view.jammed_count(), 0u);
}

TEST(DuelAdversaryTest, BothViewsBlockerChargesTwice) {
  BothViewsSuffixBlocker adv(Budget(64), 0.5);
  Rng rng(10);
  DuelPhaseContext ctx{5, DuelPhase::kSend, 64, 0.2, true, true};
  auto plan = adv.plan(ctx, rng);
  EXPECT_EQ(plan.alice_view.jammed_count(), 32u);
  EXPECT_EQ(plan.bob_view.jammed_count(), 32u);
  EXPECT_TRUE(adv.budget().exhausted());
}

TEST(SpoofingAdversaryTest, SpoofsNackPhaseAtProtocolRate) {
  SpoofingNackAdversary adv(Budget::unlimited());
  Rng rng(11);
  DuelPhaseContext nack{5, DuelPhase::kNack, 64, 0.37, true, true};
  auto plan = adv.plan(nack, rng);
  EXPECT_DOUBLE_EQ(plan.spoof_nack_prob, 0.37);
  EXPECT_EQ(plan.alice_view.jammed_count(), 0u);
  DuelPhaseContext send{5, DuelPhase::kSend, 64, 0.37, true, true};
  EXPECT_DOUBLE_EQ(adv.plan(send, rng).spoof_nack_prob, 0.0);
}

TEST(SpoofingAdversaryTest, StopsWhenBudgetExhausted) {
  SpoofingNackAdversary adv(Budget(0));
  Rng rng(12);
  DuelPhaseContext nack{5, DuelPhase::kNack, 64, 0.37, true, true};
  EXPECT_DOUBLE_EQ(adv.plan(nack, rng).spoof_nack_prob, 0.0);
}

}  // namespace
}  // namespace rcb
