// C=1 degeneration suite: pinned pre-multi-channel aggregate digests.
//
// These eight literals were captured from the repository state immediately
// BEFORE the multi-channel slot model was introduced (same seeds, same
// scenarios).  The multi-channel generalisation threaded a channel
// component through the packed event keys, the engines, and the scenario
// codec — and its hard contract is that every single-channel execution is
// bit-identical to what it was.  A digest drift here means the C=1
// degeneration broke: some RNG draw, key ordering, or codec byte moved.
//
// The suite re-derives each digest through the same pipeline the capture
// used (run_scenario_trial per trial, supervisor aggregate_digest), and
// additionally pins it across:
//   * SIMD kernels: RCB_SIMD=scalar and avx2 (when the host supports it),
//   * the supervised sweep scheduler with 1, 4, and default thread pools
//     (the digest is schedule-independent by construction).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rcb/common/simd.hpp"
#include "rcb/runtime/checkpoint.hpp"
#include "rcb/runtime/scenario.hpp"
#include "rcb/runtime/supervisor.hpp"

namespace rcb {
namespace {

struct PinnedCase {
  const char* name;
  Scenario scenario;
  std::uint64_t digest;
};

std::vector<PinnedCase> pinned_cases() {
  std::vector<PinnedCase> set;
  {
    Scenario s;
    s.protocol = "broadcast"; s.adversary = "suffix"; s.budget = 65536;
    s.q = 0.9; s.n = 32; s.eps = 0.01; s.trials = 16; s.seed = 5;
    s.max_epoch_extra = 2;
    set.push_back({"broadcast_suffix", s, 0x2f48a4b973a1073dull});
  }
  {
    Scenario s;
    s.protocol = "naive"; s.adversary = "random"; s.budget = 4096;
    s.rate = 0.3; s.n = 24; s.eps = 0.05; s.trials = 12; s.seed = 7;
    s.max_epoch_extra = 2; s.battery = 512;
    set.push_back({"naive_random_battery", s, 0x7e7e06dfce7dc162ull});
  }
  {
    Scenario s;
    s.protocol = "sqrt"; s.adversary = "fraction"; s.budget = 8192;
    s.q = 0.8; s.n = 16; s.eps = 0.01; s.trials = 12; s.seed = 9;
    s.max_epoch_extra = 2;
    set.push_back({"sqrt_fraction", s, 0xa9a7ffde2879edd3ull});
  }
  {
    Scenario s;
    s.protocol = "one_to_one"; s.adversary = "spoof"; s.budget = 8192;
    s.q = 0.7; s.eps = 0.01; s.trials = 16; s.seed = 11;
    s.max_epoch_extra = 3; s.timeout_slots = 192;
    set.push_back({"one_to_one_spoof", s, 0x1171abc63d66fe51ull});
  }
  {
    Scenario s;
    s.protocol = "ksy"; s.adversary = "full_duel"; s.budget = 16384;
    s.q = 0.9; s.eps = 0.01; s.trials = 16; s.seed = 13;
    s.max_epoch_extra = 2;
    set.push_back({"ksy_full_duel", s, 0x92d610e169fd2977ull});
  }
  {
    Scenario s;
    s.protocol = "combined"; s.adversary = "both_views"; s.budget = 16384;
    s.q = 0.8; s.eps = 0.01; s.trials = 12; s.seed = 15;
    s.max_epoch_extra = 2;
    set.push_back({"combined_both_views", s, 0x451ed34171dd3605ull});
  }
  {
    // The committed fault-storm corpus scenario, field for field.
    Scenario s;
    s.protocol = "broadcast"; s.adversary = "suffix"; s.budget = 2048;
    s.q = 0.8; s.rate = 0.3; s.n = 16; s.eps = 0.01; s.trials = 3;
    s.seed = 1009; s.max_epoch_extra = 3; s.battery = 1024;
    s.faults.seed = 404; s.faults.crash_rate = 0.002;
    s.faults.restart_rate = 0.02; s.faults.crash_fraction = 0.8;
    s.faults.loss_rate = 0.25; s.faults.corruption_rate = 0.15;
    s.faults.clock_skew_rate = 0.15; s.faults.brownout_slot = 512;
    s.faults.brownout_fraction = 0.5; s.faults.brownout_factor = 0.5;
    s.faults.cca_false_busy = 0.1; s.faults.cca_missed_detection = 0.1;
    set.push_back({"corpus_fault_storm", s, 0x1d25107b98c4f1c3ull});
  }
  {
    Scenario s;
    s.protocol = "one_to_one"; s.adversary = "spoof"; s.budget = 8192;
    s.q = 0.7; s.rate = 0.3; s.n = 32; s.eps = 0.01; s.trials = 2;
    s.seed = 2027; s.max_epoch_extra = 4; s.timeout_slots = 192;
    set.push_back({"corpus_spoof_timeout", s, 0x727274b18e2eca79ull});
  }
  return set;
}

std::uint64_t sequential_digest(const Scenario& s) {
  std::vector<CheckpointRecord> records;
  for (std::uint64_t t = 0; t < s.trials; ++t) {
    CheckpointRecord rec;
    rec.trial = t;
    rec.outcome = run_scenario_trial(s, t);
    records.push_back(rec);
  }
  return aggregate_digest(records);
}

/// RAII SIMD-mode override so a failing EXPECT never leaks the mode into
/// later tests.
struct SimdModeGuard {
  explicit SimdModeGuard(simd::Mode m) { simd::set_mode(m); }
  ~SimdModeGuard() { simd::clear_mode_override(); }
};

TEST(McDegenerationDigestTest, SequentialScalarMatchesPinned) {
  SimdModeGuard guard(simd::Mode::kScalar);
  for (const PinnedCase& c : pinned_cases()) {
    ASSERT_EQ(validate_scenario(c.scenario), "") << c.name;
    EXPECT_EQ(sequential_digest(c.scenario), c.digest) << c.name;
  }
}

TEST(McDegenerationDigestTest, SequentialAvx2MatchesPinned) {
  if (!simd::avx2_available()) {
    GTEST_SKIP() << "host lacks AVX2+FMA";
  }
  SimdModeGuard guard(simd::Mode::kAvx2);
  for (const PinnedCase& c : pinned_cases()) {
    EXPECT_EQ(sequential_digest(c.scenario), c.digest) << c.name;
  }
}

TEST(McDegenerationDigestTest, SupervisedSweepMatchesPinnedAcrossPools) {
  // The supervised sweep's aggregate is schedule-independent; pin it for
  // explicit 1- and 4-thread pools and the process-default pool (the
  // --threads=1/4/0 axis of the chaos harness, in-process).
  const SupervisorOptions sup;  // no checkpointing, no watchdogs
  for (const PinnedCase& c : pinned_cases()) {
    {
      ThreadPool pool(1);
      EXPECT_EQ(run_supervised_sweep(c.scenario, sup, pool).aggregate_digest,
                c.digest)
          << c.name << " threads=1";
    }
    {
      ThreadPool pool(4);
      EXPECT_EQ(run_supervised_sweep(c.scenario, sup, pool).aggregate_digest,
                c.digest)
          << c.name << " threads=4";
    }
    EXPECT_EQ(run_supervised_sweep(c.scenario, sup).aggregate_digest, c.digest)
        << c.name << " threads=default";
  }
}

}  // namespace
}  // namespace rcb
