// Tests for the steppable BroadcastNEngine (the API under run_broadcast_n).
#include "rcb/protocols/broadcast_engine.hpp"

#include <gtest/gtest.h>

#include "rcb/rng/rng.hpp"

namespace rcb {
namespace {

TEST(BroadcastEngineTest, InitialStateMatchesFigureTwo) {
  const BroadcastNParams params = BroadcastNParams::sim();
  BroadcastNEngine engine(8, params);
  EXPECT_EQ(engine.n(), 8u);
  EXPECT_EQ(engine.epoch(), params.first_epoch);
  EXPECT_EQ(engine.repetition(), 0u);
  EXPECT_EQ(engine.active_nodes(), 8u);
  EXPECT_FALSE(engine.finished());
  EXPECT_EQ(engine.latency(), 0u);
  ASSERT_EQ(engine.nodes().size(), 8u);
  EXPECT_EQ(engine.nodes()[0].status, BroadcastStatus::kInformed);
  for (std::size_t u = 1; u < 8; ++u) {
    EXPECT_EQ(engine.nodes()[u].status, BroadcastStatus::kUninformed);
    EXPECT_DOUBLE_EQ(engine.nodes()[u].S, params.initial_S);
  }
}

TEST(BroadcastEngineTest, StepAdvancesRepetitionsAndEpochs) {
  const BroadcastNParams params = BroadcastNParams::sim();
  BroadcastNEngine engine(4, params);
  NoJamAdversary adv;
  Rng rng(1);
  const std::uint64_t reps = params.repetitions(params.first_epoch);
  for (std::uint64_t r = 0; r + 1 < reps; ++r) {
    ASSERT_TRUE(engine.step(adv, rng));
    if (engine.epoch() == params.first_epoch) {
      EXPECT_EQ(engine.repetition(), r + 1);
    }
  }
  // Latency counts one phase of 2^i slots per executed repetition.
  EXPECT_GT(engine.latency(), 0u);
  EXPECT_EQ(engine.latency() % (1u << params.first_epoch), 0u);
}

TEST(BroadcastEngineTest, EquivalentToMonolithicRunner) {
  // run_broadcast_n is implemented on the engine; same seeds must yield
  // identical results through both entry points.
  const BroadcastNParams params = BroadcastNParams::sim();
  for (std::uint32_t n : {1u, 5u, 24u}) {
    SuffixBlockerAdversary adv1(Budget(20000), 0.9);
    Rng rng1(77 + n);
    const auto direct = run_broadcast_n(n, params, adv1, rng1);

    SuffixBlockerAdversary adv2(Budget(20000), 0.9);
    Rng rng2(77 + n);
    BroadcastNEngine engine(n, params);
    engine.run(adv2, rng2);
    const auto stepped = engine.result();

    EXPECT_EQ(direct.max_cost, stepped.max_cost);
    EXPECT_EQ(direct.latency, stepped.latency);
    EXPECT_EQ(direct.adversary_cost, stepped.adversary_cost);
    EXPECT_EQ(direct.informed_count, stepped.informed_count);
    EXPECT_EQ(direct.final_epoch, stepped.final_epoch);
    for (std::uint32_t u = 0; u < n; ++u) {
      EXPECT_EQ(direct.nodes[u].cost, stepped.nodes[u].cost);
      EXPECT_EQ(direct.nodes[u].final_status, stepped.nodes[u].final_status);
    }
  }
}

TEST(BroadcastEngineTest, StepAfterFinishIsNoop) {
  const BroadcastNParams params = BroadcastNParams::sim();
  BroadcastNEngine engine(2, params);
  NoJamAdversary adv;
  Rng rng(3);
  engine.run(adv, rng);
  ASSERT_TRUE(engine.finished());
  const SlotCount latency = engine.latency();
  EXPECT_FALSE(engine.step(adv, rng));
  EXPECT_EQ(engine.latency(), latency);
}

TEST(BroadcastEngineTest, InformedLatencyPrecedesTermination) {
  const BroadcastNParams params = BroadcastNParams::sim();
  for (int t = 0; t < 5; ++t) {
    NoJamAdversary adv;
    Rng rng = Rng::stream(5, t);
    BroadcastNEngine engine(16, params);
    engine.run(adv, rng);
    const auto r = engine.result();
    if (r.all_informed) {
      EXPECT_GT(r.informed_latency, 0u);
      EXPECT_LE(r.informed_latency, r.latency);
    }
  }
}

TEST(BroadcastEngineTest, MidRunStateIsConsistent) {
  const BroadcastNParams params = BroadcastNParams::sim();
  BroadcastNEngine engine(12, params);
  NoJamAdversary adv;
  Rng rng(7);
  int steps = 0;
  while (engine.step(adv, rng)) {
    ++steps;
    std::uint32_t active = 0;
    for (const auto& node : engine.nodes()) {
      if (node.status != BroadcastStatus::kTerminated &&
          node.status != BroadcastStatus::kDead) {
        ++active;
      }
      EXPECT_LE(node.cost, engine.latency());
      EXPECT_GT(node.S, 0.0);
    }
    EXPECT_EQ(active, engine.active_nodes());
    // result() must be callable mid-run.
    const auto snapshot = engine.result();
    EXPECT_EQ(snapshot.n, 12u);
  }
  EXPECT_GT(steps, 0);
}

TEST(BroadcastEngineTest, SingleNodeFinishes) {
  const BroadcastNParams params = BroadcastNParams::sim();
  BroadcastNEngine engine(1, params);
  NoJamAdversary adv;
  Rng rng(9);
  engine.run(adv, rng);
  EXPECT_TRUE(engine.finished());
  EXPECT_TRUE(engine.result().all_terminated);
}

}  // namespace
}  // namespace rcb
