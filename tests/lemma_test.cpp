// Empirical analogues of the paper's supporting lemmas, at sim() scale.
//
// These are the structural facts the Theorem 3 proof leans on; each test
// recreates the lemma's setting with the simulator and checks the claimed
// behaviour (with constants adapted to the sim preset where the paper's
// own constants only hold asymptotically — see DESIGN.md §2).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rcb/common/mathutil.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {
namespace {

// ---------------------------------------------------------------------------
// Lemma 2: S_A e^{-2 S_V} <= p_m <= e S_A e^{-S_V} for the probability that
// exactly one informed node's message occupies a slot.
// ---------------------------------------------------------------------------

class MessageProbabilityTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(MessageProbabilityTest, Lemma2MessageBounds) {
  const auto [S_A, S_V] = GetParam();
  ASSERT_LE(S_A, S_V);
  const int informed = 4;
  const int uninformed = 4;
  const SlotCount slots = 4096;

  std::vector<NodeAction> actions;
  for (int u = 0; u < informed; ++u) {
    actions.push_back(NodeAction{S_A / informed, Payload::kMessage, 0.0});
  }
  for (int u = 0; u < uninformed; ++u) {
    actions.push_back(
        NodeAction{(S_V - S_A) / uninformed, Payload::kNoise, 0.0});
  }
  actions.push_back(NodeAction{0.0, Payload::kNoise, 1.0});  // observer

  double message_slots = 0.0, heard = 0.0;
  Rng rng(7);
  for (int t = 0; t < 40; ++t) {
    const auto r = run_repetition(slots, actions, JamSchedule::none(), rng);
    const auto& obs = r.obs.back();
    message_slots += static_cast<double>(obs.messages);
    heard += static_cast<double>(obs.heard_total());
  }
  const double p_m = message_slots / heard;
  EXPECT_GE(p_m, S_A * std::exp(-2.0 * S_V) - 0.02)
      << "S_A=" << S_A << " S_V=" << S_V;
  EXPECT_LE(p_m, std::exp(1.0) * S_A * std::exp(-S_V) + 0.02)
      << "S_A=" << S_A << " S_V=" << S_V;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MessageProbabilityTest,
    ::testing::Values(std::make_pair(0.1, 0.1), std::make_pair(0.1, 0.5),
                      std::make_pair(0.25, 1.0), std::make_pair(0.5, 0.5),
                      std::make_pair(0.5, 2.0), std::make_pair(1.0, 1.0)));

// ---------------------------------------------------------------------------
// Lemma 3/4 analogue: in dense epochs (2^i not much larger than S_0 * n) no
// clear slots are heard, S_u does not grow, and no node reaches helper
// status — nodes are only uninformed or informed.
// ---------------------------------------------------------------------------

TEST(LemmaTest, DenseEpochsFreezeRatesAndPreventTermination) {
  BroadcastNParams params = BroadcastNParams::sim();
  const std::uint32_t n = 64;
  // Cap the run inside the dense regime: S_eq = 1.39 * 2^i / n exceeds the
  // initial rate only past lg n + 1.5, so epochs up to lg n stay frozen.
  params.max_epoch = floor_log2(n);
  NoJamAdversary adv;
  Rng rng(11);
  const auto r = run_broadcast_n(n, params, adv, rng);

  // The sim-scale form of Lemmas 3/4: rates do not grow and nobody halts.
  // (Unlike at paper constants, helper *promotion* can occur in the dense
  // regime once most nodes are informed — but only with a conservative
  // under-estimate n_u < n, so the Case-4 halt threshold stays out of
  // reach and correctness is unaffected.)
  EXPECT_EQ(r.dead_count, 0u);
  for (const auto& node : r.nodes) {
    EXPECT_NE(node.final_status, BroadcastStatus::kTerminated);
    // S_u stays within a factor ~2 of the initial value: no genuine growth.
    EXPECT_LT(node.final_S, 2.5 * params.initial_S);
    if (node.n_estimate > 0.0) {
      EXPECT_LT(node.n_estimate, static_cast<double>(n));
    }
  }
}

// ---------------------------------------------------------------------------
// Lemma 5 analogue: rate divergence between nodes stays bounded (factor 2)
// throughout an unjammed run.
// ---------------------------------------------------------------------------

TEST(LemmaTest, RateDivergenceStaysBounded) {
  // Run to completion and inspect the terminal S values of nodes that
  // terminated in the same (final) epoch: their spread reflects the
  // accumulated drift the Lemma-5 argument bounds.
  const BroadcastNParams params = BroadcastNParams::sim();
  for (std::uint32_t n : {8u, 32u}) {
    NoJamAdversary adv;
    Rng rng(13 + n);
    const auto r = run_broadcast_n(n, params, adv, rng);
    ASSERT_TRUE(r.all_terminated);
    double s_min = 1e300, s_max = 0.0;
    for (const auto& node : r.nodes) {
      if (node.terminated_epoch != r.final_epoch) continue;
      s_min = std::min(s_min, node.final_S);
      s_max = std::max(s_max, node.final_S);
    }
    ASSERT_LT(s_min, s_max + 1.0);
    // Divergence bounded: the halting threshold plus one repetition's
    // growth bounds the spread well under a factor of 4.
    EXPECT_LT(s_max / s_min, 4.0) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Lemma 6 analogue: helpers and uninformed nodes never coexist at the end
// of an epoch.
// ---------------------------------------------------------------------------

TEST(LemmaTest, NoHelperWhileUninformedRemain) {
  const BroadcastNParams params = BroadcastNParams::sim();
  for (int t = 0; t < 10; ++t) {
    SuffixBlockerAdversary adv(Budget(1 << 15), 0.9);
    Rng rng = Rng::stream(17, t);
    const auto r = run_broadcast_n(24, params, adv, rng);
    bool any_helper_or_terminated = false;
    bool any_uninformed = false;
    for (const auto& node : r.nodes) {
      if (node.final_status == BroadcastStatus::kHelper ||
          node.final_status == BroadcastStatus::kTerminated) {
        any_helper_or_terminated = true;
      }
      if (node.final_status == BroadcastStatus::kUninformed) {
        any_uninformed = true;
      }
    }
    EXPECT_FALSE(any_helper_or_terminated && any_uninformed) << "trial " << t;
  }
}

// ---------------------------------------------------------------------------
// Lemma 10 analogue: helper n-estimates are never gross over-estimates —
// n_u <= C * n for a modest constant (the direction Lemma 10 bounds, which
// is what makes halting *safe*).
// ---------------------------------------------------------------------------

TEST(LemmaTest, HelperEstimateNeverGrosslyOverestimatesN) {
  const BroadcastNParams params = BroadcastNParams::sim();
  for (std::uint32_t n : {8u, 32u, 128u}) {
    for (int t = 0; t < 5; ++t) {
      NoJamAdversary adv;
      Rng rng = Rng::stream(19 + n, t);
      const auto r = run_broadcast_n(n, params, adv, rng);
      for (const auto& node : r.nodes) {
        if (node.n_estimate > 0.0) {
          EXPECT_LT(node.n_estimate, 16.0 * n) << "n=" << n;
        }
      }
    }
  }
}

}  // namespace
}  // namespace rcb
