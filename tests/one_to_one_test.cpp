// Tests for the Figure-1 1-to-1 protocol (Theorem 1 claims at test scale).
#include "rcb/protocols/one_to_one.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rcb/adversary/spoofing.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/rng/rng.hpp"

namespace rcb {
namespace {

TEST(OneToOneParamsTest, FirstEpochMatchesPaperFormula) {
  const OneToOneParams p = OneToOneParams::theory(0.01);
  // i0 = 11 + ceil(lg ln(8/eps)); ln(800) = 6.68, lg = 2.74 -> 3.
  EXPECT_EQ(p.first_epoch(), 14u);
}

TEST(OneToOneParamsTest, SlotProbabilityFollowsSqrtLaw) {
  const OneToOneParams p = OneToOneParams::theory(0.01);
  const double ln8e = std::log(8.0 / 0.01);
  for (std::uint32_t i = 14; i < 20; ++i) {
    EXPECT_NEAR(p.slot_probability(i),
                std::sqrt(ln8e / static_cast<double>(pow2(i - 1))), 1e-12);
  }
  // Doubling the epoch length divides p^2 by 2.
  const double r = p.slot_probability(15) / p.slot_probability(16);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-9);
}

TEST(OneToOneParamsTest, ProbabilityClampsToOneInTinyEpochs) {
  OneToOneParams p = OneToOneParams::sim(0.3);
  p.first_epoch_offset = 0;
  EXPECT_LE(p.slot_probability(1), 1.0);
}

TEST(OneToOneTest, NoJamDeliversReliably) {
  const OneToOneParams params = OneToOneParams::sim(0.05);
  int delivered = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    DuelNoJam adv;
    Rng rng = Rng::stream(1000, t);
    const auto r = run_one_to_one(params, adv, rng);
    delivered += r.delivered;
    EXPECT_TRUE(r.alice_halted);
    EXPECT_TRUE(r.bob_halted);
    EXPECT_FALSE(r.hit_epoch_cap);
  }
  // Success probability must be at least 1 - eps (with slack for sampling).
  EXPECT_GE(static_cast<double>(delivered) / trials, 1.0 - 0.05 - 0.02);
}

TEST(OneToOneTest, NoJamCostIsNearTheEfficiencyFloor) {
  const OneToOneParams params = OneToOneParams::sim(0.01);
  const double ln8e = std::log(8.0 / 0.01);
  double total_cost = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    DuelNoJam adv;
    Rng rng = Rng::stream(2000, t);
    const auto r = run_one_to_one(params, adv, rng);
    total_cost += static_cast<double>(r.max_cost());
  }
  // tau = O(ln(1/eps)): with no jamming the protocol should finish within
  // the first couple of epochs, costing O(sqrt(2^i0 * ln(1/eps))) which is
  // O(ln(1/eps)) by the choice of i0.  Allow a generous constant.
  EXPECT_LT(total_cost / trials, 60.0 * ln8e);
}

TEST(OneToOneTest, AdversaryMustPayToDelayTermination) {
  const OneToOneParams params = OneToOneParams::sim(0.05);
  // With a budget, the FullDuelBlocker forces extra epochs, but once broke
  // the protocol finishes; node cost should stay well below adversary cost.
  double node_cost = 0.0, adv_cost = 0.0;
  int delivered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    FullDuelBlocker adv(Budget(1 << 14), 0.6);
    Rng rng = Rng::stream(3000, t);
    const auto r = run_one_to_one(params, adv, rng);
    node_cost += static_cast<double>(r.max_cost());
    adv_cost += static_cast<double>(r.adversary_cost);
    delivered += r.delivered;
    EXPECT_FALSE(r.hit_epoch_cap);
  }
  EXPECT_GE(static_cast<double>(delivered) / trials, 1.0 - 0.05 - 0.03);
  EXPECT_GT(adv_cost / trials, 1000.0);       // the adversary did spend
  EXPECT_LT(node_cost, 0.5 * adv_cost);       // resource-competitive
}

TEST(OneToOneTest, LatencyIsLinearInAdversaryBudget) {
  const OneToOneParams params = OneToOneParams::sim(0.05);
  for (Cost budget : {Cost{1} << 12, Cost{1} << 15}) {
    double latency = 0.0, adv_cost = 0.0;
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
      FullDuelBlocker adv(Budget(budget), 0.6);
      Rng rng = Rng::stream(4000 + budget, t);
      const auto r = run_one_to_one(params, adv, rng);
      latency += static_cast<double>(r.latency);
      adv_cost += static_cast<double>(r.adversary_cost);
    }
    // Theorem 1: expected termination within O(T) slots.
    EXPECT_LT(latency, 40.0 * adv_cost / 0.6) << "budget=" << budget;
  }
}

TEST(OneToOneTest, CostScalesSublinearlyInT) {
  // Doubling T four times should multiply cost by ~4 (sqrt scaling), far
  // less than the 16x of linear scaling.
  const OneToOneParams params = OneToOneParams::sim(0.05);
  auto mean_cost = [&](Cost budget) {
    double sum = 0.0;
    const int trials = 120;
    for (int t = 0; t < trials; ++t) {
      FullDuelBlocker adv(Budget(budget), 0.6);
      Rng rng = Rng::stream(5000 + budget, t);
      sum += static_cast<double>(run_one_to_one(params, adv, rng).max_cost());
    }
    return sum / trials;
  };
  const double c1 = mean_cost(Cost{1} << 12);
  const double c2 = mean_cost(Cost{1} << 16);
  EXPECT_LT(c2 / c1, 8.0);  // sqrt predicts 4, linear predicts 16
  EXPECT_GT(c2 / c1, 1.5);  // but cost does grow
}

TEST(OneToOneTest, SpoofedNacksKeepAliceRunning) {
  // Under the Theorem-5 spoofing adversary, the Fig. 1 protocol loses its
  // advantage: Alice cannot distinguish a simulated Bob, so her cost tracks
  // the adversary's linearly instead of as sqrt(T).
  const OneToOneParams params = OneToOneParams::sim(0.05);
  OneToOneParams capped = params;
  capped.max_epoch = params.first_epoch() + 8;
  double alice = 0.0, adv_cost = 0.0;
  const int trials = 100;
  int capped_runs = 0;
  for (int t = 0; t < trials; ++t) {
    SpoofingNackAdversary adv(Budget::unlimited());
    Rng rng = Rng::stream(6000, t);
    const auto r = run_one_to_one(capped, adv, rng);
    alice += static_cast<double>(r.alice_cost);
    adv_cost += static_cast<double>(r.adversary_cost);
    capped_runs += r.hit_epoch_cap;
  }
  // Alice should essentially never halt on her own while spoofing persists.
  EXPECT_GT(capped_runs, trials * 9 / 10);
  // Costs are of the same order: no resource-competitive advantage.
  EXPECT_GT(alice, 0.2 * adv_cost);
  EXPECT_LT(alice, 5.0 * adv_cost);
}

TEST(OneToOneTest, ResultInvariants) {
  const OneToOneParams params = OneToOneParams::sim(0.1);
  for (int t = 0; t < 100; ++t) {
    SymmetricRandomDuelJammer adv(Budget(5000), 0.3);
    Rng rng = Rng::stream(7000, t);
    const auto r = run_one_to_one(params, adv, rng);
    EXPECT_GE(r.final_epoch, params.first_epoch());
    EXPECT_LE(r.final_epoch, params.max_epoch);
    EXPECT_GT(r.latency, 0u);
    // Costs cannot exceed the elapsed slots.
    EXPECT_LE(r.alice_cost, r.latency);
    EXPECT_LE(r.bob_cost, r.latency);
    if (!r.hit_epoch_cap) {
      EXPECT_TRUE(r.alice_halted);
      EXPECT_TRUE(r.bob_halted);
    }
  }
}

}  // namespace
}  // namespace rcb
