// Tests for statistics, regression and table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "rcb/stats/regression.hpp"
#include "rcb/stats/summary.hpp"
#include "rcb/stats/table.hpp"

namespace rcb {
namespace {

TEST(SummaryTest, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(SummaryTest, SingleValue) {
  const std::vector<double> xs = {7.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(SummaryTest, KnownSample) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_GT(s.ci95_halfwidth(), 0.0);
}

TEST(SummaryTest, QuantileInterpolates) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 20.0);
}

TEST(SummaryTest, QuantileUnsortedInput) {
  const std::vector<double> xs = {40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
}

TEST(SummaryTest, FractionTrue) {
  EXPECT_DOUBLE_EQ(fraction_true({}), 0.0);
  const bool raw[] = {true, false, true, true};
  EXPECT_DOUBLE_EQ(fraction_true(std::span<const bool>(raw, 4)), 0.75);
}

TEST(RegressionTest, ExactLineRecovered) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x - 1.0);
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 3.0, 1e-12);
  EXPECT_NEAR(f.intercept, -1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(RegressionTest, ExactPowerLawRecovered) {
  const std::vector<double> xs = {2, 4, 8, 16, 32};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(5.0 * std::pow(x, 0.62));
  const PowerLawFit f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.exponent, 0.62, 1e-10);
  EXPECT_NEAR(f.prefactor, 5.0, 1e-9);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(RegressionTest, NoisyPowerLawExponentClose) {
  const std::vector<double> xs = {10, 100, 1000, 10000};
  const std::vector<double> ys = {3.1, 9.8, 33.0, 98.0};  // ~x^0.5
  const PowerLawFit f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.exponent, 0.5, 0.05);
  EXPECT_GT(f.r_squared, 0.99);
}

TEST(RegressionDeathTest, RejectsNonPositiveData) {
  const std::vector<double> xs = {1, 2};
  const std::vector<double> ys = {0.0, 1.0};
  EXPECT_DEATH(fit_power_law(xs, ys), "precondition");
}

TEST(RegressionDeathTest, RejectsMismatchedSizes) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> ys = {1, 2};
  EXPECT_DEATH(fit_linear(xs, ys), "precondition");
}

TEST(TableTest, AlignedRendering) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
}

TEST(TableTest, CsvRendering) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 3), "3.14");
  EXPECT_EQ(Table::num(1234567.0, 4), "1.235e+06");
}

TEST(TableDeathTest, WrongArityRejected) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only one"}), "precondition");
}

}  // namespace
}  // namespace rcb
