// End-to-end integration: Monte-Carlo pipelines over full protocol runs,
// exercising the same paths the benches use (runtime + protocols + stats),
// with assertions on the paper's qualitative claims at reduced scale.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rcb/adversary/strategies.hpp"
#include "rcb/adversary/two_uniform.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/protocols/naive_broadcast.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/runtime/montecarlo.hpp"
#include "rcb/stats/regression.hpp"
#include "rcb/stats/summary.hpp"

namespace rcb {
namespace {

TEST(IntegrationTest, OneToOneSqrtScalingExponent) {
  // Fit cost ~ T^alpha across a budget sweep; Theorem 1 predicts 0.5.
  const OneToOneParams params = OneToOneParams::sim(0.05);
  std::vector<double> budgets, costs;
  for (Cost budget : {Cost{1} << 11, Cost{1} << 13, Cost{1} << 15,
                      Cost{1} << 17}) {
    struct Sample {
      double cost = 0, t = 0;
    };
    auto samples = run_trials<Sample>(96, 1000 + budget, [&](std::size_t,
                                                             Rng& rng) {
      FullDuelBlocker adv(Budget(budget), 0.6);
      const auto r = run_one_to_one(params, adv, rng);
      return Sample{static_cast<double>(r.max_cost()),
                    static_cast<double>(r.adversary_cost)};
    });
    double cost = 0, t = 0;
    for (const auto& s : samples) {
      cost += s.cost;
      t += s.t;
    }
    budgets.push_back(t / static_cast<double>(samples.size()));
    costs.push_back(cost / static_cast<double>(samples.size()));
  }
  const PowerLawFit fit = fit_power_law(budgets, costs);
  EXPECT_GT(fit.exponent, 0.3);
  EXPECT_LT(fit.exponent, 0.75);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(IntegrationTest, BroadcastPerNodeCostFallsWithN) {
  // Theorem 3/4: mean per-node cost ~ sqrt(T/n) — fit the n-exponent at
  // fixed adversary budget; expect it in [-0.9, -0.15] (prediction -0.5).
  const BroadcastNParams params = BroadcastNParams::sim();
  std::vector<double> ns, costs;
  for (std::uint32_t n : {4u, 16u, 64u}) {
    auto samples = run_trials<double>(12, 2000 + n, [&](std::size_t, Rng& rng) {
      SuffixBlockerAdversary adv(Budget(1 << 19), 0.9);
      return run_broadcast_n(n, params, adv, rng).mean_cost;
    });
    const Summary s = summarize(samples);
    ns.push_back(static_cast<double>(n));
    costs.push_back(s.mean);
  }
  const PowerLawFit fit = fit_power_law(ns, costs);
  EXPECT_LT(fit.exponent, -0.1);
  EXPECT_GT(fit.exponent, -0.95);
}

TEST(IntegrationTest, HelperRuleBeatsNaiveOnMaxCost) {
  // The section-3.1 argument: under metered jamming the naive halting rule
  // concentrates cost on the last survivors.  Compare max-cost under the
  // same adversary budget.
  const BroadcastNParams params = BroadcastNParams::sim();
  const std::uint32_t n = 32;
  auto helper_cost = run_trials<double>(10, 31, [&](std::size_t, Rng& rng) {
    SuffixBlockerAdversary adv(Budget(1 << 17), 0.9);
    return static_cast<double>(run_broadcast_n(n, params, adv, rng).max_cost);
  });
  auto naive_cost = run_trials<double>(10, 31, [&](std::size_t, Rng& rng) {
    SuffixBlockerAdversary adv(Budget(1 << 17), 0.9);
    return static_cast<double>(
        run_naive_broadcast(n, params, adv, rng).max_cost);
  });
  const double helper_mean = summarize(helper_cost).mean;
  const double naive_mean = summarize(naive_cost).mean;
  // The helper rule should not be more expensive than naive beyond noise.
  EXPECT_LT(helper_mean, 1.5 * naive_mean);
}

TEST(IntegrationTest, LatencyScalesWithTAcrossProtocols) {
  const OneToOneParams params = OneToOneParams::sim(0.05);
  std::vector<double> ts, lats;
  for (Cost budget : {Cost{1} << 12, Cost{1} << 14, Cost{1} << 16}) {
    auto samples = run_trials<std::pair<double, double>>(
        48, 4000 + budget, [&](std::size_t, Rng& rng) {
          FullDuelBlocker adv(Budget(budget), 0.6);
          const auto r = run_one_to_one(params, adv, rng);
          return std::make_pair(static_cast<double>(r.adversary_cost),
                                static_cast<double>(r.latency));
        });
    double t = 0, lat = 0;
    for (const auto& [a, b] : samples) {
      t += a;
      lat += b;
    }
    ts.push_back(t / static_cast<double>(samples.size()));
    lats.push_back(lat / static_cast<double>(samples.size()));
  }
  // O(T) latency: the fitted exponent should be close to 1.
  const PowerLawFit fit = fit_power_law(ts, lats);
  EXPECT_GT(fit.exponent, 0.75);
  EXPECT_LT(fit.exponent, 1.25);
}

TEST(IntegrationTest, EpsilonControlsFailureRate) {
  // Sweep eps and verify the empirical failure rate stays below eps (with
  // binomial slack) under a mid-strength attack.
  for (double eps : {0.2, 0.05}) {
    const OneToOneParams params = OneToOneParams::sim(eps);
    auto delivered = run_trials<bool>(400, 5000, [&](std::size_t, Rng& rng) {
      FullDuelBlocker adv(Budget(1 << 12), 0.5);
      return run_one_to_one(params, adv, rng).delivered;
    });
    int fails = 0;
    for (bool d : delivered) fails += !d;
    const double rate = static_cast<double>(fails) / 400.0;
    EXPECT_LE(rate, eps + 3.0 * std::sqrt(eps / 400.0) + 0.01)
        << "eps=" << eps;
  }
}

}  // namespace
}  // namespace rcb
