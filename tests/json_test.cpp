// Tests for the streaming JSON writer.
#include "rcb/cli/json.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rcb {
namespace {

TEST(JsonTest, FlatObject) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("a").value(std::int64_t{1});
  w.key("b").value("two");
  w.key("c").value(true);
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), R"({"a":1,"b":"two","c":true})");
}

TEST(JsonTest, NestedStructures) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("list").begin_array();
  w.value(std::int64_t{1}).value(std::int64_t{2});
  w.begin_object().key("x").value(false).end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"list":[1,2,{"x":false}]})");
}

TEST(JsonTest, StringEscaping) {
  std::ostringstream os;
  JsonWriter w(os);
  w.value(std::string("a\"b\\c\nd\te"));
  EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\\te\"");
}

TEST(JsonTest, ControlCharacterEscaping) {
  std::ostringstream os;
  JsonWriter w(os);
  w.value(std::string("x\x01y"));
  EXPECT_EQ(os.str(), "\"x\\u0001y\"");
}

TEST(JsonTest, DoubleFormatting) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(0.5);
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(os.str(), "[0.5,null]");
}

TEST(JsonTest, EmptyContainers) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("arr").begin_array().end_array();
  w.key("obj").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(os.str(), R"({"arr":[],"obj":{}})");
}

TEST(JsonTest, TopLevelArray) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array().value("x").value(std::uint64_t{9}).end_array();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), R"(["x",9])");
}

TEST(JsonDeathTest, ObjectValueWithoutKeyRejected) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  EXPECT_DEATH(w.value("oops"), "precondition");
}

TEST(JsonDeathTest, KeyOutsideObjectRejected) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  EXPECT_DEATH(w.key("k"), "precondition");
}

TEST(JsonDeathTest, MismatchedCloseRejected) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  EXPECT_DEATH(w.end_object(), "precondition");
}

TEST(JsonDeathTest, TwoTopLevelValuesRejected) {
  std::ostringstream os;
  JsonWriter w(os);
  w.value(std::int64_t{1});
  EXPECT_DEATH(w.value(std::int64_t{2}), "precondition");
}

}  // namespace
}  // namespace rcb
