// Tests for the multi-process sharded sweep (runtime/shard.hpp +
// runtime/coordinator.hpp): shard-plan determinism, spec round-trip,
// merge determinism against the single-process reference, orphan
// reassignment after worker SIGKILL, lease expiry for wedged workers,
// coordinator-crash resume, corrupt-shard refusal, and the merge edge
// cases (empty shard, single shard, duplicated trials across journals).
//
// This binary has a custom main: the coordinator re-enters the test
// executable itself as the worker process via the --rcb_shard_worker
// argv prefix, so the fork/exec path under test is the real one.
#include "rcb/runtime/coordinator.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "rcb/runtime/shard.hpp"
#include "rcb/runtime/supervisor.hpp"

namespace {
std::string g_self_exe;  // argv[0]; workers re-exec this test binary
}

namespace rcb {
namespace {

namespace fs = std::filesystem;

Scenario fast_scenario(std::uint64_t seed, std::uint64_t trials) {
  Scenario s;
  s.protocol = "one_to_one";
  s.adversary = "full_duel";
  s.budget = 512;
  s.eps = 0.02;
  s.trials = trials;
  s.seed = seed;
  return s;
}

/// Single-process reference: same scenarios, one thread, no checkpointing.
std::vector<std::uint64_t> reference_digests(
    const std::vector<Scenario>& scenarios) {
  ThreadPool pool(1);
  std::vector<SweepPoint> points(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    points[i].scenario = scenarios[i];
  }
  SupervisorOptions opt;
  const std::vector<SweepResult> results =
      run_supervised_sweep_points(points, opt, pool);
  std::vector<std::uint64_t> digests;
  for (const SweepResult& res : results) {
    EXPECT_TRUE(res.ok) << res.error;
    digests.push_back(res.aggregate_digest);
  }
  return digests;
}

ShardSpec make_spec(const std::vector<Scenario>& scenarios,
                    std::size_t target_shards) {
  ShardSpec spec;
  spec.worker_threads = 2;
  spec.points = scenarios;
  std::vector<std::uint64_t> trials;
  for (const Scenario& s : scenarios) trials.push_back(s.trials);
  spec.shards = make_shard_plan(trials, target_shards);
  return spec;
}

class CoordinatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_sweep_shutdown();
    root_ = (fs::temp_directory_path() /
             ("rcb_coord_test_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override {
    reset_sweep_shutdown();
    fs::remove_all(root_);
  }

  CoordinatorOptions options(std::size_t workers) const {
    CoordinatorOptions opt;
    opt.root = root_;
    opt.workers = workers;
    opt.backoff_base_sec = 0.01;
    opt.worker_argv = [root = root_](std::size_t shard) {
      return std::vector<std::string>{g_self_exe, "--rcb_shard_worker", root,
                                      std::to_string(shard)};
    };
    return opt;
  }

  std::string root_;
};

// ---------------------------------------------------------------------------
// Shard plan + spec codec.

TEST(ShardPlanTest, TilesEveryPointContiguously) {
  const std::vector<std::uint64_t> trials{10, 3, 7};
  const std::vector<ShardAssignment> plan = make_shard_plan(trials, 5);
  std::vector<std::uint64_t> next{0, 0, 0};
  for (const ShardAssignment& a : plan) {
    ASSERT_LT(a.point, trials.size());
    EXPECT_EQ(a.begin, next[a.point]);  // contiguous, in order
    EXPECT_LE(a.end, trials[a.point]);
    next[a.point] = a.end;
  }
  for (std::size_t p = 0; p < trials.size(); ++p) {
    EXPECT_EQ(next[p], trials[p]);  // full coverage
  }
  EXPECT_EQ(plan, make_shard_plan(trials, 5));  // deterministic
}

TEST(ShardPlanTest, OneShardPerPointWhenTargetIsSmall) {
  const std::vector<ShardAssignment> plan = make_shard_plan({5, 5}, 1);
  ASSERT_EQ(plan.size(), 2u);  // shards never span points
  EXPECT_EQ(plan[0].point, 0u);
  EXPECT_EQ(plan[1].point, 1u);
}

TEST(ShardSpecTest, RoundTripsThroughDisk) {
  const std::string root =
      (fs::temp_directory_path() / "rcb_shard_spec_roundtrip").string();
  fs::remove_all(root);
  ShardSpec spec = make_spec({fast_scenario(7, 9), fast_scenario(9, 4)}, 4);
  spec.trial_timeout_sec = 1.5;
  spec.trial_slot_budget = 100000;
  spec.max_retries = 2;
  ASSERT_EQ(write_shard_spec(root, spec), "");
  const ShardSpecLoadResult loaded = load_shard_spec(root);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.spec.worker_threads, spec.worker_threads);
  EXPECT_EQ(loaded.spec.trial_timeout_sec, spec.trial_timeout_sec);
  EXPECT_EQ(loaded.spec.trial_slot_budget, spec.trial_slot_budget);
  EXPECT_EQ(loaded.spec.max_retries, spec.max_retries);
  ASSERT_EQ(loaded.spec.points.size(), spec.points.size());
  for (std::size_t i = 0; i < spec.points.size(); ++i) {
    EXPECT_EQ(scenario_digest(loaded.spec.points[i]),
              scenario_digest(spec.points[i]));
  }
  ASSERT_EQ(loaded.spec.shards.size(), spec.shards.size());
  for (std::size_t i = 0; i < spec.shards.size(); ++i) {
    EXPECT_EQ(loaded.spec.shards[i].point, spec.shards[i].point);
    EXPECT_EQ(loaded.spec.shards[i].begin, spec.shards[i].begin);
    EXPECT_EQ(loaded.spec.shards[i].end, spec.shards[i].end);
  }
  fs::remove_all(root);
}

TEST(ShardSpecTest, RejectsOverlapAndGap) {
  ShardSpec spec;
  spec.points = {fast_scenario(1, 10)};
  spec.shards = {{0, 0, 6}, {0, 5, 10}};  // overlap at trial 5
  EXPECT_NE(validate_shard_spec(spec), "");
  spec.shards = {{0, 0, 4}, {0, 6, 10}};  // gap at trial 4
  EXPECT_NE(validate_shard_spec(spec), "");
  spec.shards = {{0, 0, 6}, {0, 6, 10}};
  EXPECT_EQ(validate_shard_spec(spec), "");
}

// ---------------------------------------------------------------------------
// Ranged sweep points (the supervisor seam the workers run on).

TEST(RangedSweepTest, RangedPointsComposeToTheFullDigest) {
  const Scenario s = fast_scenario(21, 10);
  const std::uint64_t reference = reference_digests({s})[0];

  ThreadPool pool(2);
  std::vector<SweepPoint> halves(2);
  halves[0].scenario = s;
  halves[0].trial_begin = 0;
  halves[0].trial_end = 6;
  halves[1].scenario = s;
  halves[1].trial_begin = 6;
  halves[1].trial_end = 10;
  SupervisorOptions opt;
  std::vector<SweepResult> results =
      run_supervised_sweep_points(halves, opt, pool);
  ASSERT_TRUE(results[0].ok && results[1].ok);
  EXPECT_FALSE(results[0].interrupted);
  EXPECT_FALSE(results[1].interrupted);

  std::vector<CheckpointRecord> merged = results[0].records;
  merged.insert(merged.end(), results[1].records.begin(),
                results[1].records.end());
  EXPECT_EQ(aggregate_digest(merged), reference);
}

// ---------------------------------------------------------------------------
// Coordinator end-to-end.

TEST_F(CoordinatorTest, MatchesSingleProcessDigestAcrossWorkerCounts) {
  const std::vector<Scenario> scenarios{fast_scenario(31, 11),
                                        fast_scenario(32, 5)};
  const std::vector<std::uint64_t> reference = reference_digests(scenarios);

  for (const std::size_t workers : {1u, 2u, 4u}) {
    fs::remove_all(root_);
    const CoordinatorResult res =
        run_shard_coordinator(make_spec(scenarios, workers * 2),
                              options(workers));
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.points.size(), scenarios.size());
    for (std::size_t p = 0; p < scenarios.size(); ++p) {
      EXPECT_EQ(res.points[p].aggregate_digest, reference[p])
          << "workers=" << workers << " point=" << p;
      EXPECT_EQ(res.points[p].records.size(), scenarios[p].trials);
    }
  }
}

TEST_F(CoordinatorTest, ReassignsShardsAfterWorkerSigkill) {
  const std::vector<Scenario> scenarios{fast_scenario(41, 16)};
  const std::uint64_t reference = reference_digests(scenarios)[0];

  std::atomic<int> kills{3};
  CoordinatorOptions opt = options(2);
  opt.on_worker_spawn = [&kills](std::size_t, pid_t pid) {
    const int remaining = kills.fetch_sub(1);
    if (remaining == 3) {
      // Kill the very first worker before it can finish its shard, so at
      // least one restart is guaranteed even on a fast machine.
      kill(pid, SIGKILL);
    } else if (remaining > 0) {
      // Let later victims journal a few trials first so a replacement
      // exercises the resume-partial-journal path, not just restart.  If
      // the worker already finished, the kill lands on a complete journal
      // and the coordinator adopts it — that path is legal too.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      kill(pid, SIGKILL);
    }
  };
  const CoordinatorResult res =
      run_shard_coordinator(make_spec(scenarios, 4), opt);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_LE(kills.load(), 0);  // the chaos actually fired
  EXPECT_GE(res.worker_restarts, 1u);
  EXPECT_EQ(res.points[0].aggregate_digest, reference);
  EXPECT_EQ(res.points[0].records.size(), scenarios[0].trials);
}

TEST_F(CoordinatorTest, StaleLeaseKillsWedgedWorker) {
  const std::vector<Scenario> scenarios{fast_scenario(43, 8)};
  const std::uint64_t reference = reference_digests(scenarios)[0];

  std::atomic<bool> wedged{false};
  CoordinatorOptions opt = options(1);
  opt.lease_timeout_sec = 0.4;
  opt.on_worker_spawn = [&wedged](std::size_t, pid_t pid) {
    if (!wedged.exchange(true)) {
      kill(pid, SIGSTOP);  // alive but frozen: heartbeat stops, lease ages
    }
  };
  const CoordinatorResult res =
      run_shard_coordinator(make_spec(scenarios, 2), opt);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(wedged.load());
  EXPECT_GE(res.worker_restarts, 1u);  // the wedged worker was put down
  EXPECT_EQ(res.points[0].aggregate_digest, reference);
}

TEST_F(CoordinatorTest, ResumesAfterCoordinatorCrash) {
  const std::vector<Scenario> scenarios{fast_scenario(47, 12),
                                        fast_scenario(48, 6)};
  const std::vector<std::uint64_t> reference = reference_digests(scenarios);
  const ShardSpec spec = make_spec(scenarios, 4);

  CoordinatorOptions crash = options(2);
  crash.simulate_crash_after_shards = 1;
  const CoordinatorResult first = run_shard_coordinator(spec, crash);
  ASSERT_FALSE(first.ok);
  ASSERT_GE(first.shards_completed, 1u);

  CoordinatorOptions resume = options(2);
  resume.resume = true;
  const CoordinatorResult second = run_shard_coordinator(spec, resume);
  ASSERT_TRUE(second.ok) << second.error;
  // The completed shards were adopted, not re-run: the resumed coordinator
  // finishes strictly fewer shards than the plan has.
  EXPECT_EQ(second.shards_completed, spec.shards.size());
  for (std::size_t p = 0; p < scenarios.size(); ++p) {
    EXPECT_EQ(second.points[p].aggregate_digest, reference[p]);
  }
}

TEST_F(CoordinatorTest, RefusesCorruptShardOnResume) {
  const std::vector<Scenario> scenarios{fast_scenario(51, 8)};
  const ShardSpec spec = make_spec(scenarios, 2);
  const CoordinatorResult first = run_shard_coordinator(spec, options(2));
  ASSERT_TRUE(first.ok) << first.error;

  // Flip one payload byte inside shard 0's journal: complete frame, bad
  // digest — corruption, not truncation, under the PR 3 taxonomy.
  const std::string journal =
      shard_dir(root_, 0) + "/" + kCheckpointJournalFile;
  std::fstream f(journal, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(32);
  f.put('X');
  f.close();

  CoordinatorOptions resume = options(2);
  resume.resume = true;
  const CoordinatorResult res = run_shard_coordinator(spec, resume);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("shard 0"), std::string::npos) << res.error;
}

TEST_F(CoordinatorTest, BoundedRetriesFailTheSweepLoudly) {
  const std::vector<Scenario> scenarios{fast_scenario(53, 4)};
  CoordinatorOptions opt = options(1);
  opt.max_shard_retries = 1;
  opt.worker_argv = [](std::size_t) {
    return std::vector<std::string>{"/bin/false"};
  };
  const CoordinatorResult res =
      run_shard_coordinator(make_spec(scenarios, 1), opt);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("failed after"), std::string::npos) << res.error;
}

TEST_F(CoordinatorTest, GracefulShutdownReportsInterruptedAndResumes) {
  const std::vector<Scenario> scenarios{fast_scenario(57, 16)};
  const std::uint64_t reference = reference_digests(scenarios)[0];
  const ShardSpec spec = make_spec(scenarios, 4);

  std::atomic<bool> once{false};
  CoordinatorOptions opt = options(1);
  opt.on_worker_spawn = [&once](std::size_t, pid_t) {
    if (!once.exchange(true)) request_sweep_shutdown();
  };
  const CoordinatorResult first = run_shard_coordinator(spec, opt);
  ASSERT_FALSE(first.ok);
  EXPECT_TRUE(first.interrupted);

  reset_sweep_shutdown();
  CoordinatorOptions resume = options(2);
  resume.resume = true;
  const CoordinatorResult second = run_shard_coordinator(spec, resume);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.points[0].aggregate_digest, reference);
}

// ---------------------------------------------------------------------------
// Merge edge cases.

TEST_F(CoordinatorTest, EmptyShardMergesAsZeroTrials) {
  const std::vector<Scenario> scenarios{fast_scenario(61, 6)};
  const std::uint64_t reference = reference_digests(scenarios)[0];
  ShardSpec spec = make_spec(scenarios, 1);
  spec.shards = {{0, 0, 3}, {0, 3, 3}, {0, 3, 6}};  // middle shard is empty
  ASSERT_EQ(validate_shard_spec(spec), "");
  const CoordinatorResult res = run_shard_coordinator(spec, options(2));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.shards_completed, 3u);
  EXPECT_EQ(res.points[0].aggregate_digest, reference);
}

TEST_F(CoordinatorTest, SingleShardDegeneratesToTheExistingPath) {
  const std::vector<Scenario> scenarios{fast_scenario(63, 7)};
  const std::uint64_t reference = reference_digests(scenarios)[0];
  ShardSpec spec = make_spec(scenarios, 1);
  ASSERT_EQ(spec.shards.size(), 1u);
  const CoordinatorResult res = run_shard_coordinator(spec, options(1));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.points[0].aggregate_digest, reference);
}

TEST_F(CoordinatorTest, DuplicateTrialsAcrossShardJournalsAreRefused) {
  const std::vector<Scenario> scenarios{fast_scenario(67, 8)};
  ShardSpec spec = make_spec(scenarios, 2);
  ASSERT_EQ(spec.shards.size(), 2u);
  const CoordinatorResult first = run_shard_coordinator(spec, options(2));
  ASSERT_TRUE(first.ok) << first.error;

  // Overwrite shard 1's journal with a copy of shard 0's: every record now
  // duplicates a trial that shard 0 already owns (and lies outside shard
  // 1's assigned range).  The merge must refuse, not double-count.
  std::error_code ec;
  fs::copy_file(shard_dir(root_, 0) + "/" + kCheckpointJournalFile,
                shard_dir(root_, 1) + "/" + kCheckpointJournalFile,
                fs::copy_options::overwrite_existing, ec);
  ASSERT_FALSE(ec);
  const ShardMergeResult merged = merge_shard_journals(root_, spec);
  ASSERT_FALSE(merged.ok);
  EXPECT_NE(merged.error.find("outside its assigned range"),
            std::string::npos)
      << merged.error;
  EXPECT_TRUE(merged.points.empty());  // refusal yields no partial results
}

TEST_F(CoordinatorTest, MergeRefusesMissingShard) {
  const std::vector<Scenario> scenarios{fast_scenario(71, 8)};
  const ShardSpec spec = make_spec(scenarios, 2);
  const CoordinatorResult first = run_shard_coordinator(spec, options(2));
  ASSERT_TRUE(first.ok) << first.error;
  fs::remove_all(shard_dir(root_, 1));
  const ShardMergeResult merged = merge_shard_journals(root_, spec);
  ASSERT_FALSE(merged.ok);
  EXPECT_NE(merged.error.find("incomplete"), std::string::npos)
      << merged.error;
}

}  // namespace
}  // namespace rcb

int main(int argc, char** argv) {
  g_self_exe = argv[0];
  // Worker mode: the coordinator under test re-execs this binary as
  // "<exe> --rcb_shard_worker <root> <shard_id>".
  if (argc == 4 && std::string(argv[1]) == "--rcb_shard_worker") {
    return rcb::run_shard_worker(argv[2],
                                 static_cast<std::size_t>(std::atoi(argv[3])));
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
