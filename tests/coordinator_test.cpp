// Tests for the multi-process sharded sweep (runtime/shard.hpp +
// runtime/coordinator.hpp): shard-plan determinism, spec round-trip,
// merge determinism against the single-process reference, orphan
// reassignment after worker SIGKILL, lease expiry for wedged workers,
// coordinator-crash resume, corrupt-shard refusal, and the merge edge
// cases (empty shard, single shard, duplicated trials across journals).
//
// This binary has a custom main: the coordinator re-enters the test
// executable itself as the worker process via the --rcb_shard_worker
// argv prefix (fork/exec transport) or --rcb_attach_worker (socket
// transport), so both worker paths under test are the real ones.
#include "rcb/runtime/coordinator.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rcb/runtime/shard.hpp"
#include "rcb/runtime/supervisor.hpp"
#include "rcb/runtime/transport_socket.hpp"

namespace {
std::string g_self_exe;  // argv[0]; workers re-exec this test binary
}

namespace rcb {
namespace {

namespace fs = std::filesystem;

Scenario fast_scenario(std::uint64_t seed, std::uint64_t trials) {
  Scenario s;
  s.protocol = "one_to_one";
  s.adversary = "full_duel";
  s.budget = 512;
  s.eps = 0.02;
  s.trials = trials;
  s.seed = seed;
  return s;
}

/// Single-process reference: same scenarios, one thread, no checkpointing.
std::vector<std::uint64_t> reference_digests(
    const std::vector<Scenario>& scenarios) {
  ThreadPool pool(1);
  std::vector<SweepPoint> points(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    points[i].scenario = scenarios[i];
  }
  SupervisorOptions opt;
  const std::vector<SweepResult> results =
      run_supervised_sweep_points(points, opt, pool);
  std::vector<std::uint64_t> digests;
  for (const SweepResult& res : results) {
    EXPECT_TRUE(res.ok) << res.error;
    digests.push_back(res.aggregate_digest);
  }
  return digests;
}

ShardSpec make_spec(const std::vector<Scenario>& scenarios,
                    std::size_t target_shards) {
  ShardSpec spec;
  spec.worker_threads = 2;
  spec.points = scenarios;
  std::vector<std::uint64_t> trials;
  for (const Scenario& s : scenarios) trials.push_back(s.trials);
  spec.shards = make_shard_plan(trials, target_shards);
  return spec;
}

class CoordinatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_sweep_shutdown();
    root_ = (fs::temp_directory_path() /
             ("rcb_coord_test_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override {
    reset_sweep_shutdown();
    fs::remove_all(root_);
  }

  CoordinatorOptions options(std::size_t workers) const {
    CoordinatorOptions opt;
    opt.root = root_;
    opt.workers = workers;
    opt.backoff_base_sec = 0.01;
    opt.worker_argv = [root = root_](std::size_t shard) {
      return std::vector<std::string>{g_self_exe, "--rcb_shard_worker", root,
                                      std::to_string(shard)};
    };
    return opt;
  }

  /// Socket-transport options: the fleet is this test binary re-entered as
  /// --rcb_attach_worker against the ephemeral port captured by on_listen
  /// (attach_argv is only consulted after the listener is bound).  slow_ms
  /// makes every trial take that long in the worker, so kill/wedge tests
  /// can land their signal mid-shard deterministically.
  CoordinatorOptions socket_options(std::size_t workers, int slow_ms = 0) {
    CoordinatorOptions opt;
    opt.root = root_;
    opt.workers = workers;
    opt.transport = TransportKind::kSocket;
    opt.backoff_base_sec = 0.01;
    opt.lease_timeout_sec = 0.4;
    opt.on_listen = [p = port_](std::uint16_t port) {
      p->store(port);
    };
    opt.attach_argv = [p = port_, slow_ms](std::size_t) {
      std::vector<std::string> argv{
          g_self_exe, "--rcb_attach_worker",
          "127.0.0.1:" + std::to_string(p->load())};
      if (slow_ms > 0) argv.push_back(std::to_string(slow_ms));
      return argv;
    };
    return opt;
  }

  /// Spec tuned for socket tests: fast status beats keep the protocol (and
  /// the lease clock) snappy.
  static ShardSpec socket_spec(const std::vector<Scenario>& scenarios,
                               std::size_t target_shards) {
    ShardSpec spec = make_spec(scenarios, target_shards);
    spec.heartbeat_interval_sec = 0.02;
    return spec;
  }

  std::string root_;
  std::shared_ptr<std::atomic<int>> port_ =
      std::make_shared<std::atomic<int>>(0);
};

// ---------------------------------------------------------------------------
// Shard plan + spec codec.

TEST(ShardPlanTest, TilesEveryPointContiguously) {
  const std::vector<std::uint64_t> trials{10, 3, 7};
  const std::vector<ShardAssignment> plan = make_shard_plan(trials, 5);
  std::vector<std::uint64_t> next{0, 0, 0};
  for (const ShardAssignment& a : plan) {
    ASSERT_LT(a.point, trials.size());
    EXPECT_EQ(a.begin, next[a.point]);  // contiguous, in order
    EXPECT_LE(a.end, trials[a.point]);
    next[a.point] = a.end;
  }
  for (std::size_t p = 0; p < trials.size(); ++p) {
    EXPECT_EQ(next[p], trials[p]);  // full coverage
  }
  EXPECT_EQ(plan, make_shard_plan(trials, 5));  // deterministic
}

TEST(ShardPlanTest, OneShardPerPointWhenTargetIsSmall) {
  const std::vector<ShardAssignment> plan = make_shard_plan({5, 5}, 1);
  ASSERT_EQ(plan.size(), 2u);  // shards never span points
  EXPECT_EQ(plan[0].point, 0u);
  EXPECT_EQ(plan[1].point, 1u);
}

TEST(ShardSpecTest, RoundTripsThroughDisk) {
  const std::string root =
      (fs::temp_directory_path() / "rcb_shard_spec_roundtrip").string();
  fs::remove_all(root);
  ShardSpec spec = make_spec({fast_scenario(7, 9), fast_scenario(9, 4)}, 4);
  spec.trial_timeout_sec = 1.5;
  spec.trial_slot_budget = 100000;
  spec.max_retries = 2;
  ASSERT_EQ(write_shard_spec(root, spec), "");
  const ShardSpecLoadResult loaded = load_shard_spec(root);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.spec.worker_threads, spec.worker_threads);
  EXPECT_EQ(loaded.spec.trial_timeout_sec, spec.trial_timeout_sec);
  EXPECT_EQ(loaded.spec.trial_slot_budget, spec.trial_slot_budget);
  EXPECT_EQ(loaded.spec.max_retries, spec.max_retries);
  ASSERT_EQ(loaded.spec.points.size(), spec.points.size());
  for (std::size_t i = 0; i < spec.points.size(); ++i) {
    EXPECT_EQ(scenario_digest(loaded.spec.points[i]),
              scenario_digest(spec.points[i]));
  }
  ASSERT_EQ(loaded.spec.shards.size(), spec.shards.size());
  for (std::size_t i = 0; i < spec.shards.size(); ++i) {
    EXPECT_EQ(loaded.spec.shards[i].point, spec.shards[i].point);
    EXPECT_EQ(loaded.spec.shards[i].begin, spec.shards[i].begin);
    EXPECT_EQ(loaded.spec.shards[i].end, spec.shards[i].end);
  }
  fs::remove_all(root);
}

TEST(ShardSpecTest, RejectsOverlapAndGap) {
  ShardSpec spec;
  spec.points = {fast_scenario(1, 10)};
  spec.shards = {{0, 0, 6}, {0, 5, 10}};  // overlap at trial 5
  EXPECT_NE(validate_shard_spec(spec), "");
  spec.shards = {{0, 0, 4}, {0, 6, 10}};  // gap at trial 4
  EXPECT_NE(validate_shard_spec(spec), "");
  spec.shards = {{0, 0, 6}, {0, 6, 10}};
  EXPECT_EQ(validate_shard_spec(spec), "");
}

// ---------------------------------------------------------------------------
// Ranged sweep points (the supervisor seam the workers run on).

TEST(RangedSweepTest, RangedPointsComposeToTheFullDigest) {
  const Scenario s = fast_scenario(21, 10);
  const std::uint64_t reference = reference_digests({s})[0];

  ThreadPool pool(2);
  std::vector<SweepPoint> halves(2);
  halves[0].scenario = s;
  halves[0].trial_begin = 0;
  halves[0].trial_end = 6;
  halves[1].scenario = s;
  halves[1].trial_begin = 6;
  halves[1].trial_end = 10;
  SupervisorOptions opt;
  std::vector<SweepResult> results =
      run_supervised_sweep_points(halves, opt, pool);
  ASSERT_TRUE(results[0].ok && results[1].ok);
  EXPECT_FALSE(results[0].interrupted);
  EXPECT_FALSE(results[1].interrupted);

  std::vector<CheckpointRecord> merged = results[0].records;
  merged.insert(merged.end(), results[1].records.begin(),
                results[1].records.end());
  EXPECT_EQ(aggregate_digest(merged), reference);
}

// ---------------------------------------------------------------------------
// Coordinator end-to-end.

TEST_F(CoordinatorTest, MatchesSingleProcessDigestAcrossWorkerCounts) {
  const std::vector<Scenario> scenarios{fast_scenario(31, 11),
                                        fast_scenario(32, 5)};
  const std::vector<std::uint64_t> reference = reference_digests(scenarios);

  for (const std::size_t workers : {1u, 2u, 4u}) {
    fs::remove_all(root_);
    const CoordinatorResult res =
        run_shard_coordinator(make_spec(scenarios, workers * 2),
                              options(workers));
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.points.size(), scenarios.size());
    for (std::size_t p = 0; p < scenarios.size(); ++p) {
      EXPECT_EQ(res.points[p].aggregate_digest, reference[p])
          << "workers=" << workers << " point=" << p;
      EXPECT_EQ(res.points[p].records.size(), scenarios[p].trials);
    }
  }
}

TEST_F(CoordinatorTest, ReassignsShardsAfterWorkerSigkill) {
  const std::vector<Scenario> scenarios{fast_scenario(41, 16)};
  const std::uint64_t reference = reference_digests(scenarios)[0];

  std::atomic<int> kills{3};
  CoordinatorOptions opt = options(2);
  opt.on_worker_spawn = [&kills](std::size_t, pid_t pid) {
    const int remaining = kills.fetch_sub(1);
    if (remaining == 3) {
      // Kill the very first worker before it can finish its shard, so at
      // least one restart is guaranteed even on a fast machine.
      kill(pid, SIGKILL);
    } else if (remaining > 0) {
      // Let later victims journal a few trials first so a replacement
      // exercises the resume-partial-journal path, not just restart.  If
      // the worker already finished, the kill lands on a complete journal
      // and the coordinator adopts it — that path is legal too.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      kill(pid, SIGKILL);
    }
  };
  const CoordinatorResult res =
      run_shard_coordinator(make_spec(scenarios, 4), opt);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_LE(kills.load(), 0);  // the chaos actually fired
  EXPECT_GE(res.worker_restarts, 1u);
  EXPECT_EQ(res.points[0].aggregate_digest, reference);
  EXPECT_EQ(res.points[0].records.size(), scenarios[0].trials);
}

TEST_F(CoordinatorTest, StaleLeaseKillsWedgedWorker) {
  const std::vector<Scenario> scenarios{fast_scenario(43, 8)};
  const std::uint64_t reference = reference_digests(scenarios)[0];

  std::atomic<bool> wedged{false};
  CoordinatorOptions opt = options(1);
  opt.lease_timeout_sec = 0.4;
  opt.on_worker_spawn = [&wedged](std::size_t, pid_t pid) {
    if (!wedged.exchange(true)) {
      kill(pid, SIGSTOP);  // alive but frozen: heartbeat stops, lease ages
    }
  };
  const CoordinatorResult res =
      run_shard_coordinator(make_spec(scenarios, 2), opt);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(wedged.load());
  EXPECT_GE(res.worker_restarts, 1u);  // the wedged worker was put down
  EXPECT_EQ(res.points[0].aggregate_digest, reference);
}

TEST_F(CoordinatorTest, ResumesAfterCoordinatorCrash) {
  const std::vector<Scenario> scenarios{fast_scenario(47, 12),
                                        fast_scenario(48, 6)};
  const std::vector<std::uint64_t> reference = reference_digests(scenarios);
  const ShardSpec spec = make_spec(scenarios, 4);

  CoordinatorOptions crash = options(2);
  crash.simulate_crash_after_shards = 1;
  const CoordinatorResult first = run_shard_coordinator(spec, crash);
  ASSERT_FALSE(first.ok);
  ASSERT_GE(first.shards_completed, 1u);

  CoordinatorOptions resume = options(2);
  resume.resume = true;
  const CoordinatorResult second = run_shard_coordinator(spec, resume);
  ASSERT_TRUE(second.ok) << second.error;
  // The completed shards were adopted, not re-run: the resumed coordinator
  // finishes strictly fewer shards than the plan has.
  EXPECT_EQ(second.shards_completed, spec.shards.size());
  for (std::size_t p = 0; p < scenarios.size(); ++p) {
    EXPECT_EQ(second.points[p].aggregate_digest, reference[p]);
  }
}

TEST_F(CoordinatorTest, RefusesCorruptShardOnResume) {
  const std::vector<Scenario> scenarios{fast_scenario(51, 8)};
  const ShardSpec spec = make_spec(scenarios, 2);
  const CoordinatorResult first = run_shard_coordinator(spec, options(2));
  ASSERT_TRUE(first.ok) << first.error;

  // Flip one payload byte inside shard 0's journal: complete frame, bad
  // digest — corruption, not truncation, under the PR 3 taxonomy.
  const std::string journal =
      shard_dir(root_, 0) + "/" + kCheckpointJournalFile;
  std::fstream f(journal, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(32);
  f.put('X');
  f.close();

  CoordinatorOptions resume = options(2);
  resume.resume = true;
  const CoordinatorResult res = run_shard_coordinator(spec, resume);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("shard 0"), std::string::npos) << res.error;
}

TEST_F(CoordinatorTest, BoundedRetriesFailTheSweepLoudly) {
  const std::vector<Scenario> scenarios{fast_scenario(53, 4)};
  CoordinatorOptions opt = options(1);
  opt.max_shard_retries = 1;
  opt.worker_argv = [](std::size_t) {
    return std::vector<std::string>{"/bin/false"};
  };
  const CoordinatorResult res =
      run_shard_coordinator(make_spec(scenarios, 1), opt);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("failed after"), std::string::npos) << res.error;
}

TEST_F(CoordinatorTest, GracefulShutdownReportsInterruptedAndResumes) {
  const std::vector<Scenario> scenarios{fast_scenario(57, 16)};
  const std::uint64_t reference = reference_digests(scenarios)[0];
  const ShardSpec spec = make_spec(scenarios, 4);

  std::atomic<bool> once{false};
  CoordinatorOptions opt = options(1);
  opt.on_worker_spawn = [&once](std::size_t, pid_t) {
    if (!once.exchange(true)) request_sweep_shutdown();
  };
  const CoordinatorResult first = run_shard_coordinator(spec, opt);
  ASSERT_FALSE(first.ok);
  EXPECT_TRUE(first.interrupted);

  reset_sweep_shutdown();
  CoordinatorOptions resume = options(2);
  resume.resume = true;
  const CoordinatorResult second = run_shard_coordinator(spec, resume);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.points[0].aggregate_digest, reference);
}

// ---------------------------------------------------------------------------
// Socket transport end-to-end (workers attach over TCP; the control plane
// is the framed RCBC protocol, the data plane stays the shared journals).

TEST_F(CoordinatorTest, SocketMatchesSingleProcessDigestAcrossWorkerCounts) {
  const std::vector<Scenario> scenarios{fast_scenario(81, 11),
                                        fast_scenario(82, 5)};
  const std::vector<std::uint64_t> reference = reference_digests(scenarios);

  for (const std::size_t workers : {1u, 2u}) {
    fs::remove_all(root_);
    const CoordinatorResult res = run_shard_coordinator(
        socket_spec(scenarios, workers * 2), socket_options(workers));
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.points.size(), scenarios.size());
    for (std::size_t p = 0; p < scenarios.size(); ++p) {
      EXPECT_EQ(res.points[p].aggregate_digest, reference[p])
          << "workers=" << workers << " point=" << p;
      EXPECT_EQ(res.points[p].records.size(), scenarios[p].trials);
    }
  }
}

TEST_F(CoordinatorTest, SocketDigestStableUnderControlPlaneChaos) {
  const std::vector<Scenario> scenarios{fast_scenario(83, 10),
                                        fast_scenario(84, 6)};
  const std::vector<std::uint64_t> reference = reference_digests(scenarios);

  CoordinatorOptions opt = socket_options(2);
  opt.lease_timeout_sec = 1.0;
  opt.net_faults = NetFaultConfig::chaos(31337, 0.1);
  const CoordinatorResult res =
      run_shard_coordinator(socket_spec(scenarios, 4), opt);
  ASSERT_TRUE(res.ok) << res.error;
  for (std::size_t p = 0; p < scenarios.size(); ++p) {
    EXPECT_EQ(res.points[p].aggregate_digest, reference[p]) << "point " << p;
    EXPECT_EQ(res.points[p].records.size(), scenarios[p].trials);
  }
}

TEST_F(CoordinatorTest, SocketReassignsShardAfterWorkerSigkill) {
  const std::vector<Scenario> scenarios{fast_scenario(85, 16)};
  const std::uint64_t reference = reference_digests(scenarios)[0];

  // 10ms per trial x 8-trial shards: the kill 100ms after the first spawn
  // lands mid-shard, forcing lease expiry + reassignment (a killed socket
  // worker's claim survives the TCP close until the lease runs out).
  std::atomic<bool> killed{false};
  std::thread killer;
  CoordinatorOptions opt = socket_options(2, /*slow_ms=*/10);
  opt.on_worker_spawn = [&](std::size_t, pid_t pid) {
    if (killed.exchange(true)) return;
    killer = std::thread([pid] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      kill(pid, SIGKILL);
    });
  };
  const CoordinatorResult res =
      run_shard_coordinator(socket_spec(scenarios, 2), opt);
  if (killer.joinable()) killer.join();
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(killed.load());
  EXPECT_GE(res.worker_restarts, 1u);
  EXPECT_EQ(res.points[0].aggregate_digest, reference);
  EXPECT_EQ(res.points[0].records.size(), scenarios[0].trials);
}

TEST_F(CoordinatorTest, SocketRevokesWedgedWorkerOnLeaseExpiry) {
  const std::vector<Scenario> scenarios{fast_scenario(87, 12)};
  const std::uint64_t reference = reference_digests(scenarios)[0];

  // SIGSTOP freezes the worker mid-shard: heartbeats stop, the lease
  // expires, and the coordinator revokes (SIGKILLing the frozen pid) and
  // reassigns under a fresh attempt dir seeded with the partial journal.
  std::atomic<bool> wedged{false};
  std::thread wedger;
  CoordinatorOptions opt = socket_options(1, /*slow_ms=*/10);
  opt.on_worker_spawn = [&](std::size_t, pid_t pid) {
    if (wedged.exchange(true)) return;
    wedger = std::thread([pid] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      kill(pid, SIGSTOP);
    });
  };
  const CoordinatorResult res =
      run_shard_coordinator(socket_spec(scenarios, 2), opt);
  if (wedger.joinable()) wedger.join();
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(wedged.load());
  EXPECT_GE(res.worker_restarts, 1u);
  EXPECT_EQ(res.points[0].aggregate_digest, reference);
}

TEST_F(CoordinatorTest, SocketResumesAfterCoordinatorCrash) {
  const std::vector<Scenario> scenarios{fast_scenario(89, 12),
                                        fast_scenario(90, 6)};
  const std::vector<std::uint64_t> reference = reference_digests(scenarios);
  const ShardSpec spec = socket_spec(scenarios, 4);

  CoordinatorOptions crash = socket_options(2);
  crash.simulate_crash_after_shards = 1;
  const CoordinatorResult first = run_shard_coordinator(spec, crash);
  ASSERT_FALSE(first.ok);
  ASSERT_GE(first.shards_completed, 1u);

  CoordinatorOptions resume = socket_options(2);
  resume.resume = true;
  const CoordinatorResult second = run_shard_coordinator(spec, resume);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.shards_completed, spec.shards.size());
  for (std::size_t p = 0; p < scenarios.size(); ++p) {
    EXPECT_EQ(second.points[p].aggregate_digest, reference[p]);
  }
}

TEST_F(CoordinatorTest, SocketParksUntilExternalWorkerAttaches) {
  const std::vector<Scenario> scenarios{fast_scenario(91, 8)};
  const std::uint64_t reference = reference_digests(scenarios)[0];

  // spawn_workers=false + workers=0: the coordinator owns no fleet and
  // parks; an external worker attaching late picks up the whole sweep.
  CoordinatorOptions opt = socket_options(0);
  opt.spawn_workers = false;
  std::atomic<pid_t> external{-1};
  std::atomic<bool> reaped{false};
  // PR_SET_PDEATHSIG fires when the spawning *thread* dies, not the
  // process, so the attacher must outlive the worker it spawned — it parks
  // until the main thread has reaped the worker.
  std::thread attacher([this, &external, &reaped] {
    while (port_->load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    pid_t pid = -1;
    int pipe_read = -1;
    const std::string err = spawn_worker_process(
        {g_self_exe, "--rcb_attach_worker",
         "127.0.0.1:" + std::to_string(port_->load())},
        pid, pipe_read);
    EXPECT_EQ(err, "");
    if (pipe_read >= 0) close(pipe_read);
    external.store(pid);
    while (!reaped.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  const CoordinatorResult res =
      run_shard_coordinator(socket_spec(scenarios, 2), opt);
  // The shutdown directive sent at sweep end makes the worker exit 0.
  const pid_t pid = external.load();
  int status = -1;
  pid_t waited = -1;
  if (pid > 0) {
    if (!res.ok) kill(pid, SIGKILL);  // don't hang the test on a dead sweep
    waited = waitpid(pid, &status, 0);
  }
  reaped.store(true);
  attacher.join();
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.points[0].aggregate_digest, reference);
  ASSERT_GT(pid, 0);
  EXPECT_EQ(waited, pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "status " << status;
}

TEST_F(CoordinatorTest, RejectsLeaseTighterThanTwoHeartbeats) {
  const std::vector<Scenario> scenarios{fast_scenario(93, 4)};
  ShardSpec spec = make_spec(scenarios, 1);
  spec.heartbeat_interval_sec = 0.1;
  CoordinatorOptions opt = options(1);
  opt.lease_timeout_sec = 0.15;  // <= 2x the heartbeat: one late beat kills
  const CoordinatorResult res = run_shard_coordinator(spec, opt);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("must exceed 2x"), std::string::npos)
      << res.error;
}

// ---------------------------------------------------------------------------
// Merge edge cases.

TEST_F(CoordinatorTest, EmptyShardMergesAsZeroTrials) {
  const std::vector<Scenario> scenarios{fast_scenario(61, 6)};
  const std::uint64_t reference = reference_digests(scenarios)[0];
  ShardSpec spec = make_spec(scenarios, 1);
  spec.shards = {{0, 0, 3}, {0, 3, 3}, {0, 3, 6}};  // middle shard is empty
  ASSERT_EQ(validate_shard_spec(spec), "");
  const CoordinatorResult res = run_shard_coordinator(spec, options(2));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.shards_completed, 3u);
  EXPECT_EQ(res.points[0].aggregate_digest, reference);
}

TEST_F(CoordinatorTest, SingleShardDegeneratesToTheExistingPath) {
  const std::vector<Scenario> scenarios{fast_scenario(63, 7)};
  const std::uint64_t reference = reference_digests(scenarios)[0];
  ShardSpec spec = make_spec(scenarios, 1);
  ASSERT_EQ(spec.shards.size(), 1u);
  const CoordinatorResult res = run_shard_coordinator(spec, options(1));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.points[0].aggregate_digest, reference);
}

TEST_F(CoordinatorTest, DuplicateTrialsAcrossShardJournalsAreRefused) {
  const std::vector<Scenario> scenarios{fast_scenario(67, 8)};
  ShardSpec spec = make_spec(scenarios, 2);
  ASSERT_EQ(spec.shards.size(), 2u);
  const CoordinatorResult first = run_shard_coordinator(spec, options(2));
  ASSERT_TRUE(first.ok) << first.error;

  // Overwrite shard 1's journal with a copy of shard 0's: every record now
  // duplicates a trial that shard 0 already owns (and lies outside shard
  // 1's assigned range).  The merge must refuse, not double-count.
  std::error_code ec;
  fs::copy_file(shard_dir(root_, 0) + "/" + kCheckpointJournalFile,
                shard_dir(root_, 1) + "/" + kCheckpointJournalFile,
                fs::copy_options::overwrite_existing, ec);
  ASSERT_FALSE(ec);
  const ShardMergeResult merged = merge_shard_journals(root_, spec);
  ASSERT_FALSE(merged.ok);
  EXPECT_NE(merged.error.find("outside its assigned range"),
            std::string::npos)
      << merged.error;
  EXPECT_TRUE(merged.points.empty());  // refusal yields no partial results
}

TEST_F(CoordinatorTest, MergeRefusesMissingShard) {
  const std::vector<Scenario> scenarios{fast_scenario(71, 8)};
  const ShardSpec spec = make_spec(scenarios, 2);
  const CoordinatorResult first = run_shard_coordinator(spec, options(2));
  ASSERT_TRUE(first.ok) << first.error;
  fs::remove_all(shard_dir(root_, 1));
  const ShardMergeResult merged = merge_shard_journals(root_, spec);
  ASSERT_FALSE(merged.ok);
  EXPECT_NE(merged.error.find("incomplete"), std::string::npos)
      << merged.error;
}

}  // namespace
}  // namespace rcb

int main(int argc, char** argv) {
  g_self_exe = argv[0];
  // Worker mode: the coordinator under test re-execs this binary as
  // "<exe> --rcb_shard_worker <root> <shard_id>".
  if (argc == 4 && std::string(argv[1]) == "--rcb_shard_worker") {
    return rcb::run_shard_worker(argv[2],
                                 static_cast<std::size_t>(std::atoi(argv[3])));
  }
  // Socket worker mode: "<exe> --rcb_attach_worker <host:port> [slow_ms]".
  // slow_ms stretches each trial so chaos tests can land signals mid-shard.
  if ((argc == 3 || argc == 4) &&
      std::string(argv[1]) == "--rcb_attach_worker") {
    rcb::AttachWorkerOptions opt;
    if (!rcb::parse_host_port(argv[2], opt.host, opt.port).empty()) return 2;
    opt.give_up_sec = 30.0;  // orphaned by a dead test: exit, don't linger
    if (argc == 4) {
      const int slow_ms = std::atoi(argv[3]);
      opt.runner = [slow_ms](const rcb::Scenario& s, std::uint64_t trial,
                             std::uint32_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(slow_ms));
        return rcb::run_scenario_trial(s, trial);
      };
    }
    return rcb::run_attached_worker(opt);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
