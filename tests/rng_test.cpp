// Tests for the deterministic RNG core.
#include "rcb/rng/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace rcb {
namespace {

TEST(Splitmix64Test, MatchesReferenceVector) {
  // Reference outputs for seed 1234567 from the public-domain splitmix64.c.
  std::uint64_t state = 1234567;
  EXPECT_EQ(splitmix64_next(state), 6457827717110365317ull);
  EXPECT_EQ(splitmix64_next(state), 3203168211198807973ull);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, StreamsAreIndependentAndDeterministic) {
  Rng s0 = Rng::stream(99, 0);
  Rng s0b = Rng::stream(99, 0);
  Rng s1 = Rng::stream(99, 1);
  EXPECT_EQ(s0.next_u64(), s0b.next_u64());
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (s0.next_u64() == s1.next_u64());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, UniformDoubleOpenNeverZero) {
  Rng rng(8);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_GT(rng.uniform_double_open(), 0.0);
    ASSERT_LE(rng.uniform_double_open(), 1.0);
  }
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.uniform_u64(bound), bound);
  }
}

TEST(RngTest, UniformU64CoversSmallRangeUniformly) {
  Rng rng(10);
  std::vector<int> counts(8, 0);
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_u64(8)];
  for (int c : counts) EXPECT_NEAR(c, draws / 8, 500);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(11);
  for (double p : {0.0, 0.01, 0.25, 0.5, 0.9, 1.0}) {
    int hits = 0;
    const int draws = 50000;
    for (int i = 0; i < draws; ++i) hits += rng.bernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / draws, p, 0.01) << "p=" << p;
  }
}

TEST(RngTest, ExponentialHasUnitMean) {
  Rng rng(12);
  double sum = 0.0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) sum += rng.exponential();
  EXPECT_NEAR(sum / draws, 1.0, 0.02);
}

TEST(RngTest, StateNeverAllZero) {
  for (std::uint64_t seed : {0ull, 1ull, 0xFFFFFFFFFFFFFFFFull}) {
    Rng rng(seed);
    const auto s = rng.state();
    EXPECT_NE(s[0] | s[1] | s[2] | s[3], 0u);
  }
}

TEST(RngRewindTest, RewindOneReplaysTheSameDraw) {
  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    const auto before = rng.state();
    const std::uint64_t v = rng.next_u64();
    rng.rewind();
    EXPECT_EQ(rng.state(), before);
    EXPECT_EQ(rng.next_u64(), v);
  }
}

TEST(RngRewindTest, RewindManyInvertsExactly) {
  // The speculative block sampler rewinds 0..3 surplus draws; exercise a
  // wider range to pin the closed-form inverse of the xoshiro transition.
  Rng rng(78);
  for (std::uint64_t k : {0ull, 1ull, 2ull, 3ull, 7ull, 64ull, 1000ull}) {
    const auto before = rng.state();
    for (std::uint64_t i = 0; i < k; ++i) rng.next_u64();
    rng.rewind(k);
    ASSERT_EQ(rng.state(), before) << "k=" << k;
  }
}

TEST(RngRewindTest, RewindComposesWithInterleavedDraws) {
  // Draw 4, rewind 2, draw 2: the last two draws must repeat draws 3 and 4.
  Rng rng(79);
  std::uint64_t draws[4];
  for (auto& d : draws) d = rng.next_u64();
  rng.rewind(2);
  EXPECT_EQ(rng.next_u64(), draws[2]);
  EXPECT_EQ(rng.next_u64(), draws[3]);
}

TEST(RngTest, BitMixingPassesMonobitSanity) {
  Rng rng(13);
  std::uint64_t ones = 0;
  const int draws = 10000;
  for (int i = 0; i < draws; ++i) {
    ones += static_cast<std::uint64_t>(__builtin_popcountll(rng.next_u64()));
  }
  const double fraction = static_cast<double>(ones) / (64.0 * draws);
  EXPECT_NEAR(fraction, 0.5, 0.005);
}

}  // namespace
}  // namespace rcb
