// Tests for the imperfect-CCA channel model.
#include "rcb/sim/cca.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {
namespace {

TEST(CcaModelTest, PerfectModelIsIdentity) {
  const CcaModel cca;
  EXPECT_TRUE(cca.perfect());
  Rng rng(1);
  for (Reception r : {Reception::kClear, Reception::kMessage,
                      Reception::kNack, Reception::kNoise}) {
    EXPECT_EQ(cca.apply(r, rng), r);
  }
}

TEST(CcaModelTest, FalseBusyFlipsClearAtRate) {
  const CcaModel cca{0.3, 0.0};
  Rng rng(2);
  int flipped = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    flipped += (cca.apply(Reception::kClear, rng) == Reception::kNoise);
  }
  EXPECT_NEAR(static_cast<double>(flipped) / trials, 0.3, 0.015);
}

TEST(CcaModelTest, MissedDetectionFlipsNoiseAtRate) {
  const CcaModel cca{0.0, 0.2};
  Rng rng(3);
  int flipped = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    flipped += (cca.apply(Reception::kNoise, rng) == Reception::kClear);
  }
  EXPECT_NEAR(static_cast<double>(flipped) / trials, 0.2, 0.015);
}

TEST(CcaModelTest, MessagesNeverAffected) {
  const CcaModel cca{0.9, 0.9};
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(cca.apply(Reception::kMessage, rng), Reception::kMessage);
    ASSERT_EQ(cca.apply(Reception::kNack, rng), Reception::kNack);
  }
}

TEST(CcaEngineTest, FalseBusyShiftsClearCountsInRepetition) {
  // Pure listener over a silent channel: every slot is ideally clear;
  // with false_busy = 0.25 roughly a quarter read as noise.
  std::vector<NodeAction> actions = {NodeAction{0.0, Payload::kNoise, 1.0}};
  Rng rng(5);
  const CcaModel cca{0.25, 0.0};
  const auto r = run_repetition(4000, actions, JamSchedule::none(), rng,
                                nullptr, cca);
  const auto& obs = r.obs[0];
  EXPECT_EQ(obs.clear + obs.noise, 4000u);
  EXPECT_NEAR(static_cast<double>(obs.noise), 1000.0, 150.0);
}

TEST(CcaEngineTest, MissedDetectionHidesJamming) {
  std::vector<NodeAction> actions = {NodeAction{0.0, Payload::kNoise, 1.0}};
  Rng rng(6);
  const CcaModel cca{0.0, 0.5};
  const auto r = run_repetition(4000, actions, JamSchedule::all(4000), rng,
                                nullptr, cca);
  const auto& obs = r.obs[0];
  EXPECT_NEAR(static_cast<double>(obs.clear), 2000.0, 200.0);
}

TEST(CcaEngineTest, PerfectModelPreservesDeterminism) {
  // The default (perfect) model must not consume RNG draws: results with
  // and without the explicit default are identical.
  std::vector<NodeAction> actions = {NodeAction{0.1, Payload::kMessage, 0.2},
                                     NodeAction{0.0, Payload::kNoise, 0.5}};
  Rng rng1(7), rng2(7);
  const auto a =
      run_repetition(2048, actions, JamSchedule::blocking_fraction(2048, 0.3),
                     rng1);
  const auto b =
      run_repetition(2048, actions, JamSchedule::blocking_fraction(2048, 0.3),
                     rng2, nullptr, CcaModel{});
  EXPECT_EQ(a.obs[1].clear, b.obs[1].clear);
  EXPECT_EQ(a.obs[1].noise, b.obs[1].noise);
  EXPECT_EQ(a.obs[1].messages, b.obs[1].messages);
}

TEST(CcaBroadcastTest, ModerateFalseBusyStillCompletes) {
  BroadcastNParams params = BroadcastNParams::sim();
  params.cca = CcaModel{0.05, 0.0};
  NoJamAdversary adv;
  Rng rng(8);
  const auto r = run_broadcast_n(16, params, adv, rng);
  EXPECT_TRUE(r.all_informed);
  EXPECT_TRUE(r.all_terminated);
}

TEST(CcaBroadcastTest, FalseBusyActsLikeFreeJamming) {
  // Clear slots silently reclassified as busy suppress C_u, slowing S_u
  // growth: cost rises relative to a perfect radio — without the adversary
  // spending anything.
  double cost_perfect = 0.0, cost_noisy = 0.0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    {
      BroadcastNParams params = BroadcastNParams::sim();
      NoJamAdversary adv;
      Rng rng = Rng::stream(9, t);
      cost_perfect += run_broadcast_n(16, params, adv, rng).mean_cost;
    }
    {
      BroadcastNParams params = BroadcastNParams::sim();
      params.cca = CcaModel{0.15, 0.0};
      NoJamAdversary adv;
      Rng rng = Rng::stream(9, t);
      cost_noisy += run_broadcast_n(16, params, adv, rng).mean_cost;
    }
  }
  EXPECT_GT(cost_noisy, cost_perfect);
}

}  // namespace
}  // namespace rcb
