// Tests for the Mann-Whitney U test.
#include "rcb/stats/rank_test.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rcb/rng/rng.hpp"

namespace rcb {
namespace {

TEST(MannWhitneyTest, IdenticalSamplesAreNotSignificant) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto r = mann_whitney(xs, xs);
  EXPECT_NEAR(r.effect, 0.5, 1e-12);
  EXPECT_GT(r.p_value, 0.9);
}

TEST(MannWhitneyTest, DisjointSamplesAreExtreme) {
  const std::vector<double> lo = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<double> hi = {11, 12, 13, 14, 15, 16, 17, 18, 19, 20};
  const auto r = mann_whitney(hi, lo);
  EXPECT_DOUBLE_EQ(r.effect, 1.0);  // every hi beats every lo
  EXPECT_LT(r.p_value, 0.001);
  const auto rev = mann_whitney(lo, hi);
  EXPECT_DOUBLE_EQ(rev.effect, 0.0);
  EXPECT_LT(rev.p_value, 0.001);
}

TEST(MannWhitneyTest, KnownSmallExample) {
  // xs = {1, 3}, ys = {2, 4}: U counts pairs (x > y): (3 > 2) only -> U=1;
  // effect = 1/4.
  const std::vector<double> xs = {1, 3};
  const std::vector<double> ys = {2, 4};
  const auto r = mann_whitney(xs, ys);
  EXPECT_DOUBLE_EQ(r.u, 1.0);
  EXPECT_DOUBLE_EQ(r.effect, 0.25);
}

TEST(MannWhitneyTest, TiesGetHalfCredit) {
  const std::vector<double> xs = {1, 2};
  const std::vector<double> ys = {2, 3};
  // Pairs: (1,2) x<y, (1,3) x<y, (2,2) tie -> 0.5, (2,3) x<y.  U = 0.5.
  const auto r = mann_whitney(xs, ys);
  EXPECT_DOUBLE_EQ(r.u, 0.5);
  EXPECT_DOUBLE_EQ(r.effect, 0.125);
}

TEST(MannWhitneyTest, AllValuesTiedIsPValueOne) {
  const std::vector<double> xs = {5, 5, 5};
  const std::vector<double> ys = {5, 5};
  const auto r = mann_whitney(xs, ys);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_DOUBLE_EQ(r.effect, 0.5);
}

TEST(MannWhitneyTest, DetectsShiftedDistributions) {
  Rng rng(1);
  std::vector<double> xs, ys;
  for (int i = 0; i < 60; ++i) {
    xs.push_back(rng.uniform_double());
    ys.push_back(rng.uniform_double() + 0.4);
  }
  const auto r = mann_whitney(ys, xs);
  EXPECT_GT(r.effect, 0.7);
  EXPECT_LT(r.p_value, 0.001);
}

TEST(MannWhitneyTest, FalsePositiveRateRoughlyCalibrated) {
  // Under the null, p < 0.05 should occur ~5% of the time.
  Rng rng(2);
  int rejections = 0;
  const int reps = 400;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<double> xs, ys;
    for (int i = 0; i < 25; ++i) {
      xs.push_back(rng.uniform_double());
      ys.push_back(rng.uniform_double());
    }
    rejections += (mann_whitney(xs, ys).p_value < 0.05);
  }
  EXPECT_NEAR(static_cast<double>(rejections) / reps, 0.05, 0.035);
}

TEST(MannWhitneyDeathTest, EmptySampleRejected) {
  const std::vector<double> xs = {1.0};
  EXPECT_DEATH(mann_whitney(xs, {}), "precondition");
  EXPECT_DEATH(mann_whitney({}, xs), "precondition");
}

}  // namespace
}  // namespace rcb
