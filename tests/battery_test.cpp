// Tests for the node-battery extension (forced death on energy exhaustion).
#include <gtest/gtest.h>

#include "rcb/protocols/broadcast_engine.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/rng/rng.hpp"

namespace rcb {
namespace {

TEST(BatteryTest, UnlimitedByDefault) {
  const BroadcastNParams params = BroadcastNParams::sim();
  EXPECT_EQ(params.node_energy_budget, 0u);
  NoJamAdversary adv;
  Rng rng(1);
  const auto r = run_broadcast_n(16, params, adv, rng);
  EXPECT_EQ(r.dead_count, 0u);
  EXPECT_TRUE(r.all_terminated);
}

TEST(BatteryTest, TinyBatteryKillsEveryone) {
  BroadcastNParams params = BroadcastNParams::sim();
  params.node_energy_budget = 10;  // far below even the first epoch's spend
  NoJamAdversary adv;
  Rng rng(2);
  const auto r = run_broadcast_n(16, params, adv, rng);
  EXPECT_EQ(r.dead_count, 16u);
  EXPECT_FALSE(r.all_terminated);
  for (const auto& node : r.nodes) {
    EXPECT_EQ(node.final_status, BroadcastStatus::kDead);
  }
}

TEST(BatteryTest, GenerousBatterySurvivesUnattacked) {
  BroadcastNParams params = BroadcastNParams::sim();
  params.node_energy_budget = 1 << 20;
  NoJamAdversary adv;
  Rng rng(3);
  const auto r = run_broadcast_n(16, params, adv, rng);
  EXPECT_EQ(r.dead_count, 0u);
  EXPECT_TRUE(r.all_terminated);
  EXPECT_TRUE(r.all_informed);
}

TEST(BatteryTest, DeadNodesStopSpending) {
  BroadcastNParams params = BroadcastNParams::sim();
  params.node_energy_budget = 500;
  NoJamAdversary adv;
  Rng rng(4);
  const auto r = run_broadcast_n(8, params, adv, rng);
  for (const auto& node : r.nodes) {
    if (node.final_status == BroadcastStatus::kDead) {
      // Death is checked at repetition boundaries, so the overshoot is at
      // most one repetition's worth of activity.
      EXPECT_LT(node.cost, 500u + 2000u);
      EXPECT_GE(node.cost, 500u);
    }
  }
}

TEST(BatteryTest, BudgetDepletedExactlyAtBoundaryCountsOnceAndFreezes) {
  // Deplete a node's budget to the exact slot-unit it spends in its first
  // repetition: the node must die at that boundary with cost == capacity
  // (the >= check is inclusive), be counted exactly once in dead_count, and
  // never spend again for the rest of the run.
  const BroadcastNParams probe_params = BroadcastNParams::sim();
  NoJamAdversary probe_adv;
  Rng probe_rng(7);
  BroadcastNEngine probe(8, probe_params);
  ASSERT_TRUE(probe.step(probe_adv, probe_rng));

  // Pick the node that spent the most in repetition 0 (certainly > 0).
  NodeId victim = 0;
  for (NodeId u = 0; u < 8; ++u) {
    if (probe.nodes()[u].cost > probe.nodes()[victim].cost) victim = u;
  }
  const Cost c0 = probe.nodes()[victim].cost;
  ASSERT_GT(c0, 0u);

  // Re-run with the same seed and capacity exactly c0.
  BroadcastNParams params = probe_params;
  params.node_energy_budget = c0;
  NoJamAdversary adv;
  Rng rng(7);
  BroadcastNEngine engine(8, params);
  ASSERT_TRUE(engine.step(adv, rng));
  EXPECT_EQ(engine.nodes()[victim].status, BroadcastStatus::kDead);
  EXPECT_EQ(engine.nodes()[victim].cost, c0);

  // The dead node's spend is frozen for every later repetition, and it is
  // only ever counted once.
  while (engine.step(adv, rng)) {
    EXPECT_EQ(engine.nodes()[victim].cost, c0);
    EXPECT_EQ(engine.nodes()[victim].status, BroadcastStatus::kDead);
  }
  const auto r = engine.result();
  EXPECT_EQ(r.nodes[victim].cost, c0);
  std::uint64_t dead_statuses = 0;
  for (const auto& node : r.nodes) {
    dead_statuses += node.final_status == BroadcastStatus::kDead ? 1u : 0u;
  }
  EXPECT_EQ(r.dead_count, dead_statuses);
  EXPECT_GE(r.dead_count, 1u);
}

TEST(BatteryTest, JammingDrainsBatteriesFasterThanPeace) {
  // With a battery that easily survives peacetime, a heavy attack should
  // kill at least some nodes — and the adversary must outspend the fleet
  // to do it.
  BroadcastNParams params = BroadcastNParams::sim();
  NoJamAdversary peace;
  Rng rng1(5);
  const auto calm = run_broadcast_n(16, params, peace, rng1);

  params.node_energy_budget = calm.max_cost * 2;
  {
    NoJamAdversary adv;
    Rng rng(6);
    const auto r = run_broadcast_n(16, params, adv, rng);
    EXPECT_EQ(r.dead_count, 0u);
  }
  {
    SuffixBlockerAdversary adv(Budget(1 << 22), 0.9);
    Rng rng(6);
    const auto r = run_broadcast_n(16, params, adv, rng);
    EXPECT_GT(r.dead_count, 0u);
    // The kill cost the adversary far more than any node had in its tank.
    EXPECT_GT(r.adversary_cost, 4 * params.node_energy_budget);
  }
}

}  // namespace
}  // namespace rcb
