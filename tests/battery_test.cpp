// Tests for the node-battery extension (forced death on energy exhaustion).
#include <gtest/gtest.h>

#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/rng/rng.hpp"

namespace rcb {
namespace {

TEST(BatteryTest, UnlimitedByDefault) {
  const BroadcastNParams params = BroadcastNParams::sim();
  EXPECT_EQ(params.node_energy_budget, 0u);
  NoJamAdversary adv;
  Rng rng(1);
  const auto r = run_broadcast_n(16, params, adv, rng);
  EXPECT_EQ(r.dead_count, 0u);
  EXPECT_TRUE(r.all_terminated);
}

TEST(BatteryTest, TinyBatteryKillsEveryone) {
  BroadcastNParams params = BroadcastNParams::sim();
  params.node_energy_budget = 10;  // far below even the first epoch's spend
  NoJamAdversary adv;
  Rng rng(2);
  const auto r = run_broadcast_n(16, params, adv, rng);
  EXPECT_EQ(r.dead_count, 16u);
  EXPECT_FALSE(r.all_terminated);
  for (const auto& node : r.nodes) {
    EXPECT_EQ(node.final_status, BroadcastStatus::kDead);
  }
}

TEST(BatteryTest, GenerousBatterySurvivesUnattacked) {
  BroadcastNParams params = BroadcastNParams::sim();
  params.node_energy_budget = 1 << 20;
  NoJamAdversary adv;
  Rng rng(3);
  const auto r = run_broadcast_n(16, params, adv, rng);
  EXPECT_EQ(r.dead_count, 0u);
  EXPECT_TRUE(r.all_terminated);
  EXPECT_TRUE(r.all_informed);
}

TEST(BatteryTest, DeadNodesStopSpending) {
  BroadcastNParams params = BroadcastNParams::sim();
  params.node_energy_budget = 500;
  NoJamAdversary adv;
  Rng rng(4);
  const auto r = run_broadcast_n(8, params, adv, rng);
  for (const auto& node : r.nodes) {
    if (node.final_status == BroadcastStatus::kDead) {
      // Death is checked at repetition boundaries, so the overshoot is at
      // most one repetition's worth of activity.
      EXPECT_LT(node.cost, 500u + 2000u);
      EXPECT_GE(node.cost, 500u);
    }
  }
}

TEST(BatteryTest, JammingDrainsBatteriesFasterThanPeace) {
  // With a battery that easily survives peacetime, a heavy attack should
  // kill at least some nodes — and the adversary must outspend the fleet
  // to do it.
  BroadcastNParams params = BroadcastNParams::sim();
  NoJamAdversary peace;
  Rng rng1(5);
  const auto calm = run_broadcast_n(16, params, peace, rng1);

  params.node_energy_budget = calm.max_cost * 2;
  {
    NoJamAdversary adv;
    Rng rng(6);
    const auto r = run_broadcast_n(16, params, adv, rng);
    EXPECT_EQ(r.dead_count, 0u);
  }
  {
    SuffixBlockerAdversary adv(Budget(1 << 22), 0.9);
    Rng rng(6);
    const auto r = run_broadcast_n(16, params, adv, rng);
    EXPECT_GT(r.dead_count, 0u);
    // The kill cost the adversary far more than any node had in its tank.
    EXPECT_GT(r.adversary_cost, 4 * params.node_energy_budget);
  }
}

}  // namespace
}  // namespace rcb
