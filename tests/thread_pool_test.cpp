// Tests for the thread pool and Monte-Carlo runner.
#include "rcb/runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "rcb/runtime/montecarlo.hpp"

namespace rcb {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrains) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversExactRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 5, 5, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelForTest, SubRange) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  parallel_for(pool, 10, 20,
               [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(MonteCarloTest, ResultsInTrialOrder) {
  ThreadPool pool(4);
  auto results = run_trials<std::size_t>(
      64, 1, [](std::size_t t, Rng&) { return t * t; }, pool);
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t t = 0; t < 64; ++t) EXPECT_EQ(results[t], t * t);
}

TEST(MonteCarloTest, DeterministicAcrossPoolSizes) {
  auto draw = [](std::size_t, Rng& rng) { return rng.next_u64(); };
  ThreadPool pool1(1), pool8(8);
  const auto a = run_trials<std::uint64_t>(128, 7, draw, pool1);
  const auto b = run_trials<std::uint64_t>(128, 7, draw, pool8);
  EXPECT_EQ(a, b);
}

TEST(MonteCarloTest, DifferentSeedsDiffer) {
  auto draw = [](std::size_t, Rng& rng) { return rng.next_u64(); };
  ThreadPool pool(4);
  const auto a = run_trials<std::uint64_t>(16, 1, draw, pool);
  const auto b = run_trials<std::uint64_t>(16, 2, draw, pool);
  EXPECT_NE(a, b);
}

TEST(ThreadPoolTest, ParallelForChunksCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  std::atomic<int> chunk_count{0};
  parallel_for_chunks(
      pool, 5, 95,
      [&](std::size_t lo, std::size_t hi) {
        ASSERT_LT(lo, hi);
        chunk_count.fetch_add(1);
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      10);
  EXPECT_EQ(chunk_count.load(), 9);  // 90 iterations / chunk hint 10
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 5 && i < 95) ? 1 : 0) << "i=" << i;
  }
}

TEST(ThreadPoolTest, ChunkHintDoesNotChangeParallelForSemantics) {
  ThreadPool pool(3);
  for (std::size_t hint : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                           std::size_t{1000}}) {
    std::atomic<long> sum{0};
    parallel_for(
        pool, 0, 50, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); },
        hint);
    EXPECT_EQ(sum.load(), 1225) << "hint=" << hint;  // 0 + ... + 49
  }
}

TEST(MonteCarloTest, ChunkHintPreservesTrialOrderAndValues) {
  auto draw = [](std::size_t, Rng& rng) { return rng.next_u64(); };
  ThreadPool pool(4);
  const auto a = run_trials<std::uint64_t>(64, 9, draw, pool);
  const auto b = run_trials<std::uint64_t>(64, 9, draw, pool, 5);
  const auto c = run_trials<std::uint64_t>(64, 9, draw, pool, 64);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> counter{0};
  parallel_for(ThreadPool::global(), 0, 10,
               [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace rcb
