// Tests for the thread pool and Monte-Carlo runner.
#include "rcb/runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "rcb/runtime/montecarlo.hpp"

namespace rcb {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrains) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversExactRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 5, 5, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelForTest, SubRange) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  parallel_for(pool, 10, 20,
               [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(MonteCarloTest, ResultsInTrialOrder) {
  ThreadPool pool(4);
  auto results = run_trials<std::size_t>(
      64, 1, [](std::size_t t, Rng&) { return t * t; }, pool);
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t t = 0; t < 64; ++t) EXPECT_EQ(results[t], t * t);
}

TEST(MonteCarloTest, DeterministicAcrossPoolSizes) {
  auto draw = [](std::size_t, Rng& rng) { return rng.next_u64(); };
  ThreadPool pool1(1), pool8(8);
  const auto a = run_trials<std::uint64_t>(128, 7, draw, pool1);
  const auto b = run_trials<std::uint64_t>(128, 7, draw, pool8);
  EXPECT_EQ(a, b);
}

TEST(MonteCarloTest, DifferentSeedsDiffer) {
  auto draw = [](std::size_t, Rng& rng) { return rng.next_u64(); };
  ThreadPool pool(4);
  const auto a = run_trials<std::uint64_t>(16, 1, draw, pool);
  const auto b = run_trials<std::uint64_t>(16, 2, draw, pool);
  EXPECT_NE(a, b);
}

TEST(ThreadPoolTest, ParallelForChunksCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  std::atomic<int> chunk_count{0};
  parallel_for_chunks(
      pool, 5, 95,
      [&](std::size_t lo, std::size_t hi) {
        ASSERT_LT(lo, hi);
        chunk_count.fetch_add(1);
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      10);
  EXPECT_EQ(chunk_count.load(), 9);  // 90 iterations / chunk hint 10
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 5 && i < 95) ? 1 : 0) << "i=" << i;
  }
}

TEST(ThreadPoolTest, ChunkHintDoesNotChangeParallelForSemantics) {
  ThreadPool pool(3);
  for (std::size_t hint : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                           std::size_t{1000}}) {
    std::atomic<long> sum{0};
    parallel_for(
        pool, 0, 50, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); },
        hint);
    EXPECT_EQ(sum.load(), 1225) << "hint=" << hint;  // 0 + ... + 49
  }
}

TEST(MonteCarloTest, ChunkHintPreservesTrialOrderAndValues) {
  auto draw = [](std::size_t, Rng& rng) { return rng.next_u64(); };
  ThreadPool pool(4);
  const auto a = run_trials<std::uint64_t>(64, 9, draw, pool);
  const auto b = run_trials<std::uint64_t>(64, 9, draw, pool, 5);
  const auto c = run_trials<std::uint64_t>(64, 9, draw, pool, 64);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> counter{0};
  parallel_for(ThreadPool::global(), 0, 10,
               [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(MonteCarloTest, ThrowingTrialSurfacesAsTrialFailureWithIndex) {
  ThreadPool pool(4);
  auto run = [&] {
    return run_trials<int>(64, 1, [](std::size_t t, Rng&) {
      if (t == 37) throw std::runtime_error("boom in trial");
      return static_cast<int>(t);
    }, pool);
  };
  try {
    run();
    FAIL() << "run_trials swallowed the trial exception";
  } catch (const TrialFailure& failure) {
    EXPECT_EQ(failure.trial(), 37u);
    EXPECT_NE(std::string(failure.what()).find("37"), std::string::npos);
    EXPECT_NE(std::string(failure.what()).find("boom in trial"),
              std::string::npos);
    ASSERT_NE(failure.nested(), nullptr);
    EXPECT_THROW(std::rethrow_exception(failure.nested()),
                 std::runtime_error);
  }
  // The pool survives the failure and stays usable.
  EXPECT_EQ(run_trials<int>(8, 1, [](std::size_t t, Rng&) {
              return static_cast<int>(t);
            }, pool).size(), 8u);
}

TEST(TaskTest, InlineCallableRunsAndMoves) {
  // Small captures must use the in-place storage (the whole point of Task
  // over std::function) and survive moves.
  int hits = 0;
  int* p = &hits;
  Task a([p] { ++*p; });
  static_assert(sizeof(void*) <= Task::kInlineSize);
  Task b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(TaskTest, OversizedCallableFallsBackToHeap) {
  struct Big {
    char pad[128];
    int* counter;
    void operator()() const { ++*counter; }
  };
  static_assert(sizeof(Big) > Task::kInlineSize);
  int hits = 0;
  Task a(Big{{}, &hits});
  Task b = std::move(a);
  b();
  Task c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(ThreadPoolTest, WorkStealingStressManyTinyTasks) {
  // Thousands of near-empty tasks: exercises the submit/steal/sleep
  // protocol far more often than real trial workloads would.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 2000; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 20000);
}

TEST(ThreadPoolTest, NestedParallelForChunksCompletes) {
  // A chunk may itself run parallel_for on the same pool: the blocked
  // caller helps execute tasks, so nesting cannot deadlock even on a
  // single-threaded pool.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(64 * 64);
    parallel_for(pool, 0, 64, [&](std::size_t outer) {
      parallel_for(
          pool, 0, 64,
          [&](std::size_t inner) { hits[outer * 64 + inner].fetch_add(1); },
          8);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, StealHeavyImbalanceKeepsWorkersBusy) {
  // One long chunk plus many short ones, chunked 1:1: the workers that
  // finish their own deques must steal the rest instead of idling behind
  // the long task's worker.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  const auto start = std::chrono::steady_clock::now();
  parallel_for_chunks(
      pool, 0, 64,
      [&](std::size_t lo, std::size_t) {
        if (lo == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        done.fetch_add(1);
      },
      1);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(done.load(), 64);
  // Serial execution behind the sleeper would take >100ms + 63 tasks on one
  // queue; with stealing the short tasks drain concurrently.  Use a loose
  // bound (10x) so the assertion is about "not serialised", not timing.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
}

TEST(ThreadPoolTest, DefaultConcurrencyRespectsAffinityMask) {
  const std::size_t n = ThreadPool::default_concurrency();
  EXPECT_GE(n, 1u);
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  ASSERT_EQ(sched_getaffinity(0, sizeof(mask), &mask), 0);
  EXPECT_EQ(n, static_cast<std::size_t>(CPU_COUNT(&mask)));
#else
  EXPECT_EQ(n, std::max<std::size_t>(1, std::thread::hardware_concurrency()));
#endif
}

TEST(MonteCarloTest, RemainingTrialsAbandonedAfterFailure) {
  // Cooperative abandon: once one trial fails, untouched chunks must not
  // start their trials (the count executed stays well below the total).
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(run_trials<int>(
                   10000, 1,
                   [&](std::size_t t, Rng&) {
                     executed.fetch_add(1);
                     if (t == 0) throw std::runtime_error("die early");
                     // A trivial trial body lets a loaded scheduler drain
                     // every chunk before the failing worker publishes the
                     // abandon flag; a fixed per-trial cost keeps the race
                     // unlosable without slowing the abandoned path.
                     std::this_thread::sleep_for(std::chrono::microseconds(100));
                     return 0;
                   },
                   pool, 1),
               TrialFailure);
  EXPECT_LT(executed.load(), 10000);
}

}  // namespace
}  // namespace rcb
