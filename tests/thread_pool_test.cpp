// Tests for the thread pool and Monte-Carlo runner.
#include "rcb/runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <stdexcept>
#include <string>
#include <vector>

#include "rcb/runtime/montecarlo.hpp"

namespace rcb {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrains) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversExactRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 5, 5, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelForTest, SubRange) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  parallel_for(pool, 10, 20,
               [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(MonteCarloTest, ResultsInTrialOrder) {
  ThreadPool pool(4);
  auto results = run_trials<std::size_t>(
      64, 1, [](std::size_t t, Rng&) { return t * t; }, pool);
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t t = 0; t < 64; ++t) EXPECT_EQ(results[t], t * t);
}

TEST(MonteCarloTest, DeterministicAcrossPoolSizes) {
  auto draw = [](std::size_t, Rng& rng) { return rng.next_u64(); };
  ThreadPool pool1(1), pool8(8);
  const auto a = run_trials<std::uint64_t>(128, 7, draw, pool1);
  const auto b = run_trials<std::uint64_t>(128, 7, draw, pool8);
  EXPECT_EQ(a, b);
}

TEST(MonteCarloTest, DifferentSeedsDiffer) {
  auto draw = [](std::size_t, Rng& rng) { return rng.next_u64(); };
  ThreadPool pool(4);
  const auto a = run_trials<std::uint64_t>(16, 1, draw, pool);
  const auto b = run_trials<std::uint64_t>(16, 2, draw, pool);
  EXPECT_NE(a, b);
}

TEST(ThreadPoolTest, ParallelForChunksCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  std::atomic<int> chunk_count{0};
  parallel_for_chunks(
      pool, 5, 95,
      [&](std::size_t lo, std::size_t hi) {
        ASSERT_LT(lo, hi);
        chunk_count.fetch_add(1);
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      10);
  EXPECT_EQ(chunk_count.load(), 9);  // 90 iterations / chunk hint 10
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 5 && i < 95) ? 1 : 0) << "i=" << i;
  }
}

TEST(ThreadPoolTest, ChunkHintDoesNotChangeParallelForSemantics) {
  ThreadPool pool(3);
  for (std::size_t hint : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                           std::size_t{1000}}) {
    std::atomic<long> sum{0};
    parallel_for(
        pool, 0, 50, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); },
        hint);
    EXPECT_EQ(sum.load(), 1225) << "hint=" << hint;  // 0 + ... + 49
  }
}

TEST(MonteCarloTest, ChunkHintPreservesTrialOrderAndValues) {
  auto draw = [](std::size_t, Rng& rng) { return rng.next_u64(); };
  ThreadPool pool(4);
  const auto a = run_trials<std::uint64_t>(64, 9, draw, pool);
  const auto b = run_trials<std::uint64_t>(64, 9, draw, pool, 5);
  const auto c = run_trials<std::uint64_t>(64, 9, draw, pool, 64);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> counter{0};
  parallel_for(ThreadPool::global(), 0, 10,
               [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(MonteCarloTest, ThrowingTrialSurfacesAsTrialFailureWithIndex) {
  ThreadPool pool(4);
  auto run = [&] {
    return run_trials<int>(64, 1, [](std::size_t t, Rng&) {
      if (t == 37) throw std::runtime_error("boom in trial");
      return static_cast<int>(t);
    }, pool);
  };
  try {
    run();
    FAIL() << "run_trials swallowed the trial exception";
  } catch (const TrialFailure& failure) {
    EXPECT_EQ(failure.trial(), 37u);
    EXPECT_NE(std::string(failure.what()).find("37"), std::string::npos);
    EXPECT_NE(std::string(failure.what()).find("boom in trial"),
              std::string::npos);
    ASSERT_NE(failure.nested(), nullptr);
    EXPECT_THROW(std::rethrow_exception(failure.nested()),
                 std::runtime_error);
  }
  // The pool survives the failure and stays usable.
  EXPECT_EQ(run_trials<int>(8, 1, [](std::size_t t, Rng&) {
              return static_cast<int>(t);
            }, pool).size(), 8u);
}

TEST(MonteCarloTest, RemainingTrialsAbandonedAfterFailure) {
  // Cooperative abandon: once one trial fails, untouched chunks must not
  // start their trials (the count executed stays well below the total).
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(run_trials<int>(
                   10000, 1,
                   [&](std::size_t t, Rng&) {
                     executed.fetch_add(1);
                     if (t == 0) throw std::runtime_error("die early");
                     // A trivial trial body lets a loaded scheduler drain
                     // every chunk before the failing worker publishes the
                     // abandon flag; a fixed per-trial cost keeps the race
                     // unlosable without slowing the abandoned path.
                     std::this_thread::sleep_for(std::chrono::microseconds(100));
                     return 0;
                   },
                   pool, 1),
               TrialFailure);
  EXPECT_LT(executed.load(), 10000);
}

}  // namespace
}  // namespace rcb
