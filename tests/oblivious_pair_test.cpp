// Tests for the Theorem-2 lower-bound game.
#include "rcb/protocols/oblivious_pair.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rcb/rng/rng.hpp"

namespace rcb {
namespace {

TEST(ObliviousPairTest, StayBelowNeverTriggersJamming) {
  Rng rng(1);
  ThresholdAdversary adv(1000);
  const auto r = play_stay_below(1000, 0.5, 1 << 22, adv, rng);
  EXPECT_EQ(r.adversary_cost, 0u);
  EXPECT_TRUE(r.delivered);
}

TEST(ObliviousPairTest, StayBelowCostsMatchTheoremTwo) {
  // a = b = 1/sqrt(T): E(A) = E(B) = sqrt(T), so E(A)*E(B) ~ T.
  const Cost T = 4096;
  double alice = 0.0, bob = 0.0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    Rng rng = Rng::stream(10, t);
    ThresholdAdversary adv(T);
    const auto r = play_stay_below(T, 0.5, 1 << 24, adv, rng);
    ASSERT_TRUE(r.delivered);
    alice += static_cast<double>(r.alice_cost);
    bob += static_cast<double>(r.bob_cost);
  }
  alice /= trials;
  bob /= trials;
  const double product = alice * bob;
  EXPECT_GT(product, 0.6 * static_cast<double>(T));
  EXPECT_LT(product, 1.8 * static_cast<double>(T));
}

TEST(ObliviousPairTest, ImbalancedSplitStillSatisfiesProductBound) {
  const Cost T = 4096;
  for (double delta : {0.3, 0.7}) {
    double alice = 0.0, bob = 0.0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
      Rng rng = Rng::stream(20, t);
      ThresholdAdversary adv(T);
      const auto r = play_stay_below(T, delta, 1 << 24, adv, rng);
      ASSERT_TRUE(r.delivered);
      alice += static_cast<double>(r.alice_cost);
      bob += static_cast<double>(r.bob_cost);
    }
    alice /= trials;
    bob /= trials;
    EXPECT_GT(alice * bob, 0.5 * static_cast<double>(T)) << "delta=" << delta;
    // max(E(A), E(B)) = Omega(sqrt(T)) — the imbalanced side pays more.
    EXPECT_GT(std::max(alice, bob), std::sqrt(static_cast<double>(T)))
        << "delta=" << delta;
  }
}

TEST(ObliviousPairTest, ExhaustStrategyPaysAtLeastLinear) {
  // Burning through the budget costs the pair ~burn_prob * T each before
  // the first possible success.
  const Cost T = 2000;
  double alice = 0.0, bob = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    Rng rng = Rng::stream(30, t);
    ThresholdAdversary adv(T);
    const auto r = play_exhaust(T, 0.5, adv, rng);
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.adversary_cost, T);
    alice += static_cast<double>(r.alice_cost);
    bob += static_cast<double>(r.bob_cost);
  }
  alice /= trials;
  bob /= trials;
  // Both pay ~0.5 * T during the burn.
  EXPECT_GT(alice, 0.4 * static_cast<double>(T));
  EXPECT_GT(bob, 0.4 * static_cast<double>(T));
  EXPECT_GT(alice * bob,
            static_cast<double>(T) * static_cast<double>(T) * 0.15);
}

TEST(ObliviousPairTest, SlotsBounded) {
  Rng rng(4);
  ThresholdAdversary adv(100);
  const auto r = play_stay_below(100, 0.5, 50, adv, rng);
  EXPECT_LE(r.slots, 50u);
}

}  // namespace
}  // namespace rcb
