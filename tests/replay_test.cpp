// Tests for the crash-repro loop: scenario JSON round-trip, repro-record
// parsing, and bit-identical replay of a trial named by a contract-failure
// record.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "rcb/common/contracts.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/runtime/scenario.hpp"
#include "rcb/sim/faults.hpp"

namespace rcb {
namespace {

Scenario make_faulty_scenario() {
  Scenario s;
  s.protocol = "broadcast";
  s.adversary = "suffix";
  s.budget = 1 << 14;
  s.q = 0.8;
  s.rate = 0.25;
  s.n = 12;
  s.eps = 0.02;
  s.trials = 4;
  s.seed = 2026;
  s.timeout_slots = 0;
  s.faults.seed = 99;
  s.faults.crash_rate = 0.001;
  s.faults.restart_rate = 0.002;
  s.faults.crash_fraction = 0.5;
  s.faults.loss_rate = 0.05;
  s.faults.corruption_rate = 0.01;
  s.faults.clock_skew_rate = 0.02;
  s.faults.brownout_slot = 5000;
  s.faults.brownout_fraction = 0.3;
  s.faults.brownout_factor = 0.4;
  s.faults.cca_false_busy = 0.03;
  s.faults.cca_missed_detection = 0.02;
  s.faults.cca_ramp_slots = 256;
  return s;
}

TEST(ScenarioJsonTest, RoundTripsEveryField) {
  const Scenario s = make_faulty_scenario();
  const std::string json = scenario_to_json(s);
  const ScenarioParseResult parsed = scenario_from_json(json);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const Scenario& r = parsed.scenario;

  EXPECT_EQ(r.protocol, s.protocol);
  EXPECT_EQ(r.adversary, s.adversary);
  EXPECT_EQ(r.budget, s.budget);
  EXPECT_EQ(r.q, s.q);
  EXPECT_EQ(r.rate, s.rate);
  EXPECT_EQ(r.n, s.n);
  EXPECT_EQ(r.eps, s.eps);
  EXPECT_EQ(r.trials, s.trials);
  EXPECT_EQ(r.seed, s.seed);
  EXPECT_EQ(r.max_epoch_extra, s.max_epoch_extra);
  EXPECT_EQ(r.timeout_slots, s.timeout_slots);
  EXPECT_EQ(r.faults.seed, s.faults.seed);
  EXPECT_EQ(r.faults.crash_rate, s.faults.crash_rate);
  EXPECT_EQ(r.faults.restart_rate, s.faults.restart_rate);
  EXPECT_EQ(r.faults.crash_fraction, s.faults.crash_fraction);
  EXPECT_EQ(r.faults.loss_rate, s.faults.loss_rate);
  EXPECT_EQ(r.faults.corruption_rate, s.faults.corruption_rate);
  EXPECT_EQ(r.faults.clock_skew_rate, s.faults.clock_skew_rate);
  EXPECT_EQ(r.faults.brownout_slot, s.faults.brownout_slot);
  EXPECT_EQ(r.faults.brownout_fraction, s.faults.brownout_fraction);
  EXPECT_EQ(r.faults.brownout_factor, s.faults.brownout_factor);
  EXPECT_EQ(r.faults.cca_false_busy, s.faults.cca_false_busy);
  EXPECT_EQ(r.faults.cca_missed_detection, s.faults.cca_missed_detection);
  EXPECT_EQ(r.faults.cca_ramp_slots, s.faults.cca_ramp_slots);

  // And the round-trip is a fixed point of the codec.
  EXPECT_EQ(scenario_to_json(r), json);
}

TEST(ScenarioJsonTest, DefaultBrownoutSlotSurvivesRoundTrip) {
  Scenario s;  // brownout_slot defaults to the kNoSlot sentinel
  const ScenarioParseResult parsed = scenario_from_json(scenario_to_json(s));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.scenario.faults.brownout_slot, kNoSlot);
}

TEST(ScenarioJsonTest, AbsentKeysKeepDefaults) {
  const ScenarioParseResult parsed =
      scenario_from_json(R"({"protocol":"ksy","seed":7})");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.scenario.protocol, "ksy");
  EXPECT_EQ(parsed.scenario.seed, 7u);
  EXPECT_EQ(parsed.scenario.budget, Scenario{}.budget);
  EXPECT_FALSE(parsed.scenario.faults.any_active());
}

TEST(ScenarioJsonTest, RejectsUnknownKeys) {
  EXPECT_FALSE(scenario_from_json(R"({"protocol":"ksy","bogus":1})").ok);
  EXPECT_FALSE(
      scenario_from_json(R"({"faults":{"crash_rate":0.1,"bogus":1}})").ok);
}

TEST(ScenarioJsonTest, RejectsWrongTypes) {
  EXPECT_FALSE(scenario_from_json(R"({"protocol":5})").ok);
  EXPECT_FALSE(scenario_from_json(R"({"seed":"seven"})").ok);
  EXPECT_FALSE(scenario_from_json(R"({"faults":[1,2]})").ok);
  EXPECT_FALSE(scenario_from_json("[1,2,3]").ok);
  EXPECT_FALSE(scenario_from_json("not json").ok);
}

TEST(ScenarioJsonTest, RejectsOutOfRangeIntegers) {
  // Doubles cannot represent every u64 above 2^53; the codec must refuse
  // rather than silently round the seed of a repro record.
  EXPECT_FALSE(scenario_from_json(R"({"seed":-3})").ok);
  EXPECT_FALSE(scenario_from_json(R"({"seed":18446744073709551615})").ok);
  EXPECT_FALSE(scenario_from_json(R"({"n":1.5})").ok);
}

TEST(ReproRecordTest, ParsesWithAndWithoutPrefix) {
  const std::string body =
      R"({"rcb_repro":1,"kind":"assertion","expr":"x > 0",)"
      R"("file":"foo.cpp","line":12,"master_seed":5,"trial":3,)"
      R"("scenario":)" +
      scenario_to_json(make_faulty_scenario()) + "}";

  for (const std::string& text :
       {body, "RCB_REPRO " + body, "  " + body + "\n"}) {
    const ReproParseResult r = repro_record_from_json(text);
    ASSERT_TRUE(r.ok) << r.error << " for: " << text;
    EXPECT_EQ(r.record.kind, "assertion");
    EXPECT_EQ(r.record.expr, "x > 0");
    EXPECT_EQ(r.record.file, "foo.cpp");
    EXPECT_EQ(r.record.line, 12);
    EXPECT_EQ(r.record.master_seed, 5u);
    EXPECT_EQ(r.record.trial, 3u);
    ASSERT_TRUE(r.record.has_scenario);
    EXPECT_EQ(r.record.scenario.protocol, "broadcast");
    EXPECT_EQ(r.record.scenario.faults.crash_rate, 0.001);
  }
}

TEST(ReproRecordTest, ParsesScenarioDigest) {
  const Scenario s = make_faulty_scenario();
  const std::string body =
      R"({"rcb_repro":1,"kind":"assertion","expr":"x","file":"f","line":1,)"
      R"("master_seed":5,"trial":3,"scenario_digest":")" +
      to_hex16(scenario_digest(s)) + R"(","scenario":)" + scenario_to_json(s) +
      "}";
  const ReproParseResult r = repro_record_from_json(body);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.record.has_scenario_digest);
  EXPECT_EQ(r.record.scenario_digest, scenario_digest(s));
  // An authentic record's digest matches its embedded scenario; editing the
  // scenario breaks the match — the check rcb_replay enforces (exit 3).
  ASSERT_TRUE(r.record.has_scenario);
  EXPECT_EQ(scenario_digest(r.record.scenario), r.record.scenario_digest);
  Scenario edited = r.record.scenario;
  edited.budget += 1;
  EXPECT_NE(scenario_digest(edited), r.record.scenario_digest);
}

TEST(ReproRecordTest, RejectsMalformedScenarioDigest) {
  EXPECT_FALSE(repro_record_from_json(
                   R"({"rcb_repro":1,"kind":"a","expr":"x","file":"f",)"
                   R"("line":1,"scenario_digest":"not-hex"})")
                   .ok);
}

TEST(ReproRecordTest, FormattedRecordEmbedsScenarioDigest) {
  // format_repro_record with a scenario-bearing context stamps the digest,
  // and the record round-trips through the parser.
  const Scenario s = make_faulty_scenario();
  ReproContext ctx;
  ctx.master_seed = s.seed;
  ctx.trial = 2;
  ctx.scenario_json = scenario_to_json(s);
  const std::string record =
      format_repro_record("timeout", "stuck", "runner.cpp", 0, &ctx);
  const ReproParseResult r = repro_record_from_json(record);
  ASSERT_TRUE(r.ok) << r.error << "\nrecord: " << record;
  EXPECT_EQ(r.record.kind, "timeout");
  EXPECT_EQ(r.record.trial, 2u);
  ASSERT_TRUE(r.record.has_scenario_digest);
  EXPECT_EQ(r.record.scenario_digest, scenario_digest(s));
  ASSERT_TRUE(r.record.has_scenario);
  EXPECT_EQ(scenario_to_json(r.record.scenario), scenario_to_json(s));
}

TEST(ReproRecordTest, ScenariolessRecordParses) {
  const ReproParseResult r = repro_record_from_json(
      R"({"rcb_repro":1,"kind":"precondition","expr":"p","file":"f","line":1})");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.record.has_scenario);
}

TEST(ReproRecordTest, RejectsGarbage) {
  EXPECT_FALSE(repro_record_from_json("").ok);
  EXPECT_FALSE(repro_record_from_json("RCB_REPRO").ok);
  EXPECT_FALSE(repro_record_from_json(R"({"kind":"assertion"})").ok);
}

TEST(ScenarioJsonTest, ValidateRejectsOutOfRangeFaultRates) {
  Scenario s;
  EXPECT_EQ(validate_scenario(s), "");
  s.faults.crash_rate = 1.5;
  EXPECT_NE(validate_scenario(s), "");
  s.faults.crash_rate = 0.0;
  s.faults.loss_rate = -0.3;
  EXPECT_NE(validate_scenario(s), "");
  s.faults.loss_rate = 1.0;  // boundary values are legal
  s.faults.crash_fraction = 0.0;
  EXPECT_EQ(validate_scenario(s), "");
}

// ---------------------------------------------------------------------------
// Replay determinism.

TEST(ReplayTest, TrialDigestIsBitIdenticalAcrossRuns) {
  const Scenario s = make_faulty_scenario();
  ASSERT_EQ(validate_scenario(s), "");
  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    const TrialOutcome a = run_scenario_trial(s, trial);
    const TrialOutcome b = run_scenario_trial(s, trial);
    EXPECT_EQ(a.digest, b.digest) << "trial " << trial;
    EXPECT_EQ(a.max_cost, b.max_cost);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.crashed_count, b.crashed_count);
  }
}

TEST(ReplayTest, DistinctTrialsHaveDistinctDigests) {
  const Scenario s = make_faulty_scenario();
  const TrialOutcome a = run_scenario_trial(s, 0);
  const TrialOutcome b = run_scenario_trial(s, 1);
  EXPECT_NE(a.digest, b.digest);
}

TEST(ReplayTest, AllProtocolsReplayDeterministically) {
  for (const char* protocol :
       {"one_to_one", "ksy", "combined", "broadcast", "naive", "sqrt"}) {
    Scenario s;
    s.protocol = protocol;
    s.adversary = s.is_duel() ? "full_duel" : "suffix";
    s.budget = 1 << 12;
    s.q = 0.7;
    s.n = 8;
    s.seed = 314;
    s.faults.seed = 42;
    s.faults.loss_rate = 0.1;
    s.faults.crash_rate = 0.0005;
    s.faults.restart_rate = 0.001;
    ASSERT_EQ(validate_scenario(s), "") << protocol;
    const TrialOutcome a = run_scenario_trial(s, 2);
    const TrialOutcome b = run_scenario_trial(s, 2);
    EXPECT_EQ(a.digest, b.digest) << protocol;
  }
}

// Exception used to long-jump out of a forced contract failure in tests.
struct ContractCaught : std::runtime_error {
  explicit ContractCaught(std::string record)
      : std::runtime_error("contract"), record_json(std::move(record)) {}
  std::string record_json;
};

[[noreturn]] void throwing_handler(std::string_view record_json) {
  throw ContractCaught(std::string(record_json));
}

/// Installs `throwing_handler` for the scope of one test.
class HandlerGuard {
 public:
  HandlerGuard() : previous_(set_contract_failure_handler(&throwing_handler)) {}
  ~HandlerGuard() { set_contract_failure_handler(previous_); }

 private:
  ContractFailureHandler previous_;
};

TEST(ReplayTest, ForcedContractFailureEmitsReplayableRecord) {
  // The full crash-repro loop, in-process: a contract trips inside a trial
  // that has a ReproScope installed; the emitted record names the scenario
  // and trial; re-running that trial from the parsed record reproduces the
  // digest bit-identically.
  const Scenario s = make_faulty_scenario();
  const std::uint64_t trial = 1;

  HandlerGuard guard;
  std::string record_json;
  try {
    ReproScope scope(s.seed, trial, scenario_to_json(s));
    RCB_REQUIRE(1 + 1 == 3);  // the forced failure
    FAIL() << "contract failure did not fire";
  } catch (const ContractCaught& caught) {
    record_json = caught.record_json;
  }
  ASSERT_FALSE(record_json.empty());

  const ReproParseResult parsed = repro_record_from_json(record_json);
  ASSERT_TRUE(parsed.ok) << parsed.error << "\nrecord: " << record_json;
  EXPECT_EQ(parsed.record.kind, "precondition");
  EXPECT_EQ(parsed.record.master_seed, s.seed);
  EXPECT_EQ(parsed.record.trial, trial);
  ASSERT_TRUE(parsed.record.has_scenario);
  EXPECT_TRUE(parsed.record.scenario.faults.any_active());

  // Replay the recorded trial twice; identical digests certify the record
  // pins down the execution completely.
  ASSERT_EQ(validate_scenario(parsed.record.scenario), "");
  const TrialOutcome first = run_scenario_trial(parsed.record.scenario, trial);
  const TrialOutcome second = run_scenario_trial(parsed.record.scenario, trial);
  EXPECT_EQ(first.digest, second.digest);
  // And it matches a run from the original (pre-serialisation) scenario.
  EXPECT_EQ(first.digest, run_scenario_trial(s, trial).digest);
}

TEST(ReplayTest, NestedReproScopesRestoreOuterContext) {
  ReproScope outer(1, 2, "{}");
  ASSERT_NE(current_repro_context(), nullptr);
  EXPECT_EQ(current_repro_context()->master_seed, 1u);
  {
    ReproScope inner(3, 4, "{}");
    EXPECT_EQ(current_repro_context()->master_seed, 3u);
    EXPECT_EQ(current_repro_context()->trial, 4u);
  }
  EXPECT_EQ(current_repro_context()->master_seed, 1u);
}

TEST(ReplayDeathTest, UnhandledContractFailurePrintsReproLine) {
  // Without a handler the failure path prints the RCB_REPRO line to stderr
  // and aborts — the contract the replay CLI scrapes logs for.
  EXPECT_DEATH(
      {
        ReproScope scope(7, 0, "{\"protocol\":\"ksy\"}");
        RCB_REQUIRE(2 + 2 == 5);
      },
      "RCB_REPRO.*master_seed");
}

}  // namespace
}  // namespace rcb
