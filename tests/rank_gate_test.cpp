// Calibration of the statistical gate the differential oracles rely on.
//
// The engine-crosscheck oracle turns "two engines sample the same
// distribution" into a pass/fail bit via rank_gate_rejects at a
// Bonferroni-corrected level.  That bit is only trustworthy if the gate's
// null rejection rate actually matches its nominal alpha, so this suite
// measures it: across 1000 paired draws from IDENTICAL distributions the
// rejection count must sit inside tight binomial bounds (seeds are fixed,
// so the counts are deterministic — these are calibration measurements,
// not flaky coin flips).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rcb/rng/rng.hpp"
#include "rcb/stats/rank_test.hpp"

namespace rcb {
namespace {

// Discrete heavy-tie distribution shaped like the per-run energy totals
// the crosscheck oracle compares (integer counts, a few distinct values).
double tied_sample(Rng& rng) {
  return static_cast<double>(rng.uniform_u64(12)) +
         (rng.bernoulli(0.2) ? 100.0 : 0.0);
}

TEST(RankGateCalibration, NullRejectionRateMatchesAlphaTwoSided) {
  const int kRuns = 1000;
  const std::size_t m = 30;
  const double alpha = 0.01;
  Rng rng(20260805);
  int rejections = 0;
  for (int run = 0; run < kRuns; ++run) {
    std::vector<double> xs(m), ys(m);
    for (std::size_t i = 0; i < m; ++i) xs[i] = rng.uniform_double();
    for (std::size_t i = 0; i < m; ++i) ys[i] = rng.uniform_double();
    if (rank_gate_rejects(xs, ys, alpha)) ++rejections;
  }
  // Binomial(1000, 0.01): mean 10, sd ~3.15.  [0, 25] is mean + ~4.8 sd;
  // a normal-approximation p-value that was mis-calibrated by even 2x
  // (alpha_eff = 0.02 -> mean 20, or 0.005 -> mean 5) stays detectable
  // while the gate as implemented passes with margin.
  EXPECT_LE(rejections, 25) << "gate rejects far too often under the null";
}

TEST(RankGateCalibration, NullRejectionRateWithHeavyTies) {
  // The tie-corrected variance is what keeps discrete samples (the common
  // case for slot counts) from inflating the rejection rate.
  const int kRuns = 1000;
  const std::size_t m = 40;
  const double alpha = 0.01;
  Rng rng(77001);
  int rejections = 0;
  for (int run = 0; run < kRuns; ++run) {
    std::vector<double> xs(m), ys(m);
    for (std::size_t i = 0; i < m; ++i) xs[i] = tied_sample(rng);
    for (std::size_t i = 0; i < m; ++i) ys[i] = tied_sample(rng);
    if (rank_gate_rejects(xs, ys, alpha)) ++rejections;
  }
  EXPECT_LE(rejections, 25);
}

TEST(RankGateCalibration, OneSidedGateIsDirectional) {
  const std::size_t m = 40;
  Rng rng(4242);
  std::vector<double> small(m), big(m);
  for (std::size_t i = 0; i < m; ++i) small[i] = rng.uniform_double();
  for (std::size_t i = 0; i < m; ++i) big[i] = rng.uniform_double() + 1.0;
  // Clear separation in the suspected direction: must reject.
  EXPECT_TRUE(rank_gate_rejects(small, big, 0.01, /*xs_smaller_suspect=*/true));
  // Same separation in the WRONG direction: a one-sided gate must not.
  EXPECT_FALSE(rank_gate_rejects(big, small, 0.01,
                                 /*xs_smaller_suspect=*/true));
}

TEST(RankGateCalibration, OneSidedNullStaysBelowAlpha) {
  const int kRuns = 1000;
  const std::size_t m = 30;
  Rng rng(90210);
  int rejections = 0;
  for (int run = 0; run < kRuns; ++run) {
    std::vector<double> xs(m), ys(m);
    for (std::size_t i = 0; i < m; ++i) xs[i] = tied_sample(rng);
    for (std::size_t i = 0; i < m; ++i) ys[i] = tied_sample(rng);
    if (rank_gate_rejects(xs, ys, 0.01, /*xs_smaller_suspect=*/true)) {
      ++rejections;
    }
  }
  EXPECT_LE(rejections, 25);
}

TEST(RankGateCalibration, PowerAgainstAGrossShift) {
  // The fuzz oracle's job is catching engines that disagree grossly, so a
  // full-unit location shift at the oracle's sample size must reject even
  // at the Bonferroni-split alpha it actually uses.
  const std::size_t m = 60;  // = OracleOptions::crosscheck_trials default
  Rng rng(1311);
  std::vector<double> xs(m), ys(m);
  for (std::size_t i = 0; i < m; ++i) xs[i] = rng.uniform_double();
  for (std::size_t i = 0; i < m; ++i) ys[i] = rng.uniform_double() + 1.0;
  EXPECT_TRUE(rank_gate_rejects(xs, ys, bonferroni_alpha(1e-6, 3)));
}

TEST(BonferroniTest, SplitsTheFamilyBudgetEvenly) {
  EXPECT_DOUBLE_EQ(bonferroni_alpha(0.05, 1), 0.05);
  EXPECT_DOUBLE_EQ(bonferroni_alpha(0.05, 10), 0.005);
  EXPECT_DOUBLE_EQ(bonferroni_alpha(1e-6, 4), 2.5e-7);
}

TEST(BonferroniTest, FamilyWiseNullRateIsBoundedByFamilyAlpha) {
  // 500 families of 5 identical-distribution comparisons each, gated at
  // bonferroni_alpha(0.05, 5): the number of families with ANY rejection
  // must stay near 500 * 0.05 = 25 (union bound; deterministic seed).
  const int kFamilies = 500;
  const int kComparisons = 5;
  const std::size_t m = 30;
  const double per_test = bonferroni_alpha(0.05, kComparisons);
  Rng rng(555);
  int families_rejecting = 0;
  for (int fam = 0; fam < kFamilies; ++fam) {
    bool any = false;
    for (int c = 0; c < kComparisons; ++c) {
      std::vector<double> xs(m), ys(m);
      for (std::size_t i = 0; i < m; ++i) xs[i] = rng.uniform_double();
      for (std::size_t i = 0; i < m; ++i) ys[i] = rng.uniform_double();
      any |= rank_gate_rejects(xs, ys, per_test);
    }
    if (any) ++families_rejecting;
  }
  EXPECT_LE(families_rejecting, 50);  // 0.05 nominal, generous headroom
}

}  // namespace
}  // namespace rcb
