// Tests for the JSON parser.
#include "rcb/cli/json_parse.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "rcb/cli/json.hpp"

namespace rcb {
namespace {

JsonValue must_parse(const std::string& text) {
  const JsonParseResult r = json_parse(text);
  EXPECT_TRUE(r.ok) << text << " -> " << r.error << " @" << r.error_offset;
  return r.value;
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(must_parse("null").is_null());
  EXPECT_EQ(must_parse("true").as_bool(), true);
  EXPECT_EQ(must_parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(must_parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(must_parse("-3.25").as_number(), -3.25);
  EXPECT_DOUBLE_EQ(must_parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(must_parse("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(must_parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(must_parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(must_parse(R"("Aé")").as_string(), "A\xC3\xA9");
  EXPECT_EQ(must_parse(R"("€")").as_string(), "\xE2\x82\xAC");
}

TEST(JsonParseTest, Containers) {
  const JsonValue v = must_parse(R"({"a": [1, 2, {"b": true}], "c": null})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_TRUE(a->as_array()[2].find("b")->as_bool());
  EXPECT_TRUE(v.find("c")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParseTest, EmptyContainers) {
  EXPECT_TRUE(must_parse("[]").as_array().empty());
  EXPECT_TRUE(must_parse("{}").as_object().empty());
  EXPECT_TRUE(must_parse("  { }  ").as_object().empty());
}

TEST(JsonParseTest, WhitespaceTolerant) {
  const JsonValue v = must_parse(" {\n\t\"x\" :\r [ 1 , 2 ] } ");
  EXPECT_EQ(v.find("x")->as_array().size(), 2u);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "}", "[1,", "{\"a\":}", "tru", "01x", "\"unterminated",
        "[1] garbage", "{'a':1}", "+1", "1.", "1e", "\"\\q\"", "nul",
        "{\"a\" 1}", "[1 2]", "\"\\ud800\""}) {
    const JsonParseResult r = json_parse(bad);
    EXPECT_FALSE(r.ok) << "accepted: " << bad;
    EXPECT_FALSE(r.error.empty()) << bad;
  }
}

TEST(JsonParseTest, DeepNestingRejectedGracefully) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  const JsonParseResult r = json_parse(deep);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("deep"), std::string::npos);
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("name").value("rcb \"sim\"\n");
  w.key("trials").value(std::int64_t{128});
  w.key("rate").value(0.375);
  w.key("flags").begin_array();
  w.value(true).value(false);
  w.end_array();
  w.end_object();

  const JsonValue v = must_parse(os.str());
  EXPECT_EQ(v.find("name")->as_string(), "rcb \"sim\"\n");
  EXPECT_DOUBLE_EQ(v.find("trials")->as_number(), 128.0);
  EXPECT_DOUBLE_EQ(v.find("rate")->as_number(), 0.375);
  EXPECT_EQ(v.find("flags")->as_array().size(), 2u);
}

TEST(JsonParseTest, ErrorOffsetsPointAtProblem) {
  const JsonParseResult r = json_parse("{\"a\": 1, \"b\": tru}");
  EXPECT_FALSE(r.ok);
  EXPECT_GE(r.error_offset, 14u);
}

TEST(JsonParseDeathTest, WrongAccessorRejected) {
  const JsonValue v = json_parse("42").value;
  EXPECT_DEATH((void)v.as_string(), "precondition");
}

}  // namespace
}  // namespace rcb
