// Bit-equivalence of the dispatched geometric-skip kernels.
//
// The AVX2 skip kernel must produce the SAME doubles as the scalar
// reference for every input — that is the whole digest-stability contract
// of the SIMD path (common/simd.hpp).  These tests pin it on the kernels
// directly and through the public samplers, including the edge
// probabilities and the lane-boundary remainders where the speculative
// block draw has to rewind the RNG.
#include "rcb/rng/sampling.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "rcb/common/simd.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/engine_kernels.hpp"

namespace rcb {
namespace {

/// Forces a simd mode for the duration of one test, then restores the
/// default resolution so test order cannot leak modes across cases.
class ScopedSimdMode {
 public:
  explicit ScopedSimdMode(simd::Mode mode) { simd::set_mode(mode); }
  ~ScopedSimdMode() { simd::clear_mode_override(); }
};

bool same_bits(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

/// Probabilities spanning the digest-critical regimes: sparse protocol
/// rates, near-certain, near-impossible, and denormal-adjacent values whose
/// log1p(-p) underflows the normal range.
const double kEdgeProbabilities[] = {
    1e-9,
    1.0 / 1024.0,          // p ~ 1/n, the protocols' operating point
    1.0 / (1 << 20),
    0.3,
    0.5,
    1.0 - 1e-12,           // skip is almost always zero
    4.9406564584124654e-324,  // smallest denormal: inv_log1mp overflows
    1e-300,
};

TEST(SkipKernelTest, Avx2MatchesScalarBitwiseOnRandomBlocks) {
  if (!simd::avx2_available()) GTEST_SKIP() << "host lacks AVX2+FMA";
  detail::SkipBlockFn avx2 = nullptr;
  {
    ScopedSimdMode guard(simd::Mode::kAvx2);
    avx2 = detail::skip_block_fn();
  }
  ASSERT_NE(avx2, &detail::skip_block_scalar);

  Rng rng(2024);
  for (double p : kEdgeProbabilities) {
    const double inv = 1.0 / std::log1p(-p);
    for (int block = 0; block < 4096; ++block) {
      std::uint64_t raw[4];
      for (auto& r : raw) r = rng.next_u64();
      double want[4], got[4];
      detail::skip_block_scalar(raw, inv, want);
      avx2(raw, inv, got);
      for (int lane = 0; lane < 4; ++lane) {
        ASSERT_TRUE(same_bits(want[lane], got[lane]))
            << "p=" << p << " block=" << block << " lane=" << lane
            << " raw=" << raw[lane] << " scalar=" << want[lane]
            << " avx2=" << got[lane];
      }
    }
  }
}

TEST(SkipKernelTest, Avx2MatchesScalarOnExtremeRawInputs) {
  if (!simd::avx2_available()) GTEST_SKIP() << "host lacks AVX2+FMA";
  detail::SkipBlockFn avx2 = nullptr;
  {
    ScopedSimdMode guard(simd::Mode::kAvx2);
    avx2 = detail::skip_block_fn();
  }
  // Raw words whose top-53 bits sit at the ends of the uniform range: the
  // all-zero word maps to u = 1 (log 0 is the smallest skip... largest),
  // the all-one word to the smallest representable u.
  const std::uint64_t extremes[] = {
      0ull,
      ~0ull,
      1ull << 11,          // smallest nonzero top-53
      (1ull << 11) - 1,    // discarded low bits only
      0x8000000000000000ull,
      0x7fffffffffffffffull,
      0xdeadbeefcafef00dull,
      42ull,
  };
  for (double p : kEdgeProbabilities) {
    const double inv = 1.0 / std::log1p(-p);
    for (std::uint64_t a : extremes) {
      for (std::uint64_t b : extremes) {
        const std::uint64_t raw[4] = {a, b, a ^ b, a + b};
        double want[4], got[4];
        detail::skip_block_scalar(raw, inv, want);
        avx2(raw, inv, got);
        for (int lane = 0; lane < 4; ++lane) {
          ASSERT_TRUE(same_bits(want[lane], got[lane]))
              << "p=" << p << " lane=" << lane << " raw=" << raw[lane];
        }
      }
    }
  }
}

/// Runs sample_bernoulli_slots under a forced mode and returns the emitted
/// slots plus the next three RNG words (stream-position witness).
struct SampledRun {
  std::vector<SlotIndex> slots;
  std::uint64_t tail[3];
};

SampledRun run_sampler(simd::Mode mode, SlotCount num_slots, double p,
                       std::uint64_t seed) {
  ScopedSimdMode guard(mode);
  Rng rng(seed);
  SampledRun r;
  sample_bernoulli_slots(num_slots, p, rng, r.slots);
  for (auto& t : r.tail) t = rng.next_u64();
  return r;
}

TEST(SamplerEquivalenceTest, ScalarAndAvx2EmitIdenticalSlotSequences) {
  if (!simd::avx2_available()) GTEST_SKIP() << "host lacks AVX2+FMA";
  // Slot counts straddling the block size: remainders 0..3 against the
  // 4-lane speculation, plus degenerate sizes.
  const SlotCount slot_counts[] = {1, 2, 3, 4, 5, 7, 8, 1023, 1024, 1025,
                                   (SlotCount{1} << 16) - 1};
  const double probabilities[] = {0.0,   1e-6, 1.0 / 1024.0, 0.1, 0.5,
                                  0.999, 1.0,  1e-300};
  for (SlotCount n : slot_counts) {
    for (double p : probabilities) {
      for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        const SampledRun s = run_sampler(simd::Mode::kScalar, n, p, seed);
        const SampledRun v = run_sampler(simd::Mode::kAvx2, n, p, seed);
        ASSERT_EQ(s.slots, v.slots) << "n=" << n << " p=" << p
                                    << " seed=" << seed;
        for (int i = 0; i < 3; ++i) {
          ASSERT_EQ(s.tail[i], v.tail[i])
              << "RNG stream diverged: n=" << n << " p=" << p
              << " seed=" << seed;
        }
      }
    }
  }
}

TEST(SamplerEquivalenceTest, BlockSamplerMatchesStreamingSampler) {
  // The block path (speculative draws + rewind) must be indistinguishable
  // from draining the one-draw-at-a-time streaming sampler — same slots,
  // same final stream position.  This holds in scalar mode on every host.
  ScopedSimdMode guard(simd::Mode::kScalar);
  const double probabilities[] = {1e-4, 1.0 / 512.0, 0.25, 0.9};
  for (double p : probabilities) {
    for (std::uint64_t seed = 100; seed < 140; ++seed) {
      Rng stream_rng(seed);
      std::vector<SlotIndex> want;
      BernoulliSlotSampler sampler(4096, p, stream_rng);
      for (SlotIndex s = sampler.next(); s != BernoulliSlotSampler::kEnd;
           s = sampler.next()) {
        want.push_back(s);
      }
      Rng block_rng(seed);
      std::vector<SlotIndex> got;
      sample_bernoulli_slots(4096, p, block_rng, got);
      ASSERT_EQ(got, want) << "p=" << p << " seed=" << seed;
      ASSERT_EQ(block_rng.next_u64(), stream_rng.next_u64())
          << "stream position diverged: p=" << p << " seed=" << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-channel packed-key layout edges.  The engines' group resolution
// lives and dies on the 40-bit slot<<30|channel<<24|listen<<23|node layout
// behaving at its field boundaries, so these pin channel bits 0 and 63, the
// 2^34 slot cap, and the C=64 group bound against both kernel modes.

TEST(McPackedKeyTest, ChannelBitsZeroAndSixtyThreeRoundTripAndOrder) {
  for (const SlotIndex slot : {SlotIndex{0}, SlotIndex{5},
                               event_key::kMaxSlots - 1}) {
    for (const std::uint32_t ch : {0u, 63u}) {
      for (const bool listen : {false, true}) {
        for (const NodeId node :
             {NodeId{0}, static_cast<NodeId>(event_key::kMaxNodes - 1)}) {
          const std::uint64_t key = event_key::pack(slot, ch, listen, node);
          EXPECT_EQ(event_key::slot(key), slot);
          EXPECT_EQ(event_key::channel(key), ch);
          EXPECT_EQ(event_key::is_listen(key), listen);
          EXPECT_EQ(event_key::node(key), node);
        }
      }
    }
  }
  // Channel 63 never leaks into the slot bits: the largest channel-63 key
  // of a slot still sorts below the smallest key of the next slot.
  EXPECT_LT(event_key::pack(5, 63, true, event_key::kMaxNodes - 1),
            event_key::pack(6, 0, false, 0));
}

TEST(McPackedKeyTest, SlotCapBoundaryWrapsToZero) {
  // The all-ones key is the last representable event; packing one slot
  // beyond the cap wraps the slot field to zero.  This is exactly why the
  // engines bound the last slot's group by the key array instead of by
  // pack(slot + 1, ...).
  EXPECT_EQ(event_key::pack(event_key::kMaxSlots - 1, 63, true,
                            static_cast<NodeId>(event_key::kMaxNodes - 1)),
            ~std::uint64_t{0});
  EXPECT_EQ(event_key::pack(event_key::kMaxSlots, 0, false, 0), 0u);
  // count_keys_below with the wrapped bound returns 0 — the naive bound
  // would claim the last slot's group is empty in both kernel modes.
  std::vector<std::uint64_t> keys;
  for (NodeId u = 0; u < 16; ++u) {
    keys.push_back(event_key::pack(event_key::kMaxSlots - 1, 0, false, u));
  }
  keys.push_back(event_key::pack(event_key::kMaxSlots - 1, 63, true,
                                 static_cast<NodeId>(event_key::kMaxNodes -
                                                     1)));  // the ~0 key
  for (const simd::Mode mode : {simd::Mode::kScalar, simd::Mode::kAvx2}) {
    if (mode == simd::Mode::kAvx2 && !simd::avx2_available()) continue;
    ScopedSimdMode guard(mode);
    EXPECT_EQ(engine_kernels::count_keys_below(
                  keys.data(), keys.size(),
                  event_key::pack(event_key::kMaxSlots, 0, false, 0)),
              0u);
    // The all-ones bound admits every key except the all-ones key itself —
    // only the engines' array-length guard covers the whole group.
    EXPECT_EQ(engine_kernels::count_keys_below(keys.data(), keys.size(),
                                               ~std::uint64_t{0}),
              keys.size() - 1);
  }
}

TEST(McPackedKeyTest, ChannelSixtyFourGroupBoundGuard) {
  // C=64 on an ODD slot: channel 64 overflows the 6-bit field and its
  // stray bit ORs into an already-set slot bit 0, so pack(slot, 64, ...)
  // collapses back to pack(slot, 0, ...) — the naive channel-63 group
  // bound would be below the whole group.  The engines guard this by
  // bounding the top channel's group with the slot group; this pins both
  // the failure mode and the guarded resolution in both kernel modes.
  const SlotIndex slot = 5;
  EXPECT_EQ(event_key::pack(slot, 64, false, 0),
            event_key::pack(slot, 0, false, 0));
  std::vector<std::uint64_t> keys;
  for (NodeId u = 0; u < 4; ++u) {
    keys.push_back(event_key::pack(slot, 0, false, u));  // ch-0 senders
  }
  for (NodeId u = 4; u < 9; ++u) {
    keys.push_back(event_key::pack(slot, 63, false, u));  // ch-63 senders
  }
  for (NodeId u = 9; u < 14; ++u) {
    keys.push_back(event_key::pack(slot, 63, true, u));  // ch-63 listeners
  }
  for (NodeId u = 0; u < 6; ++u) {
    keys.push_back(event_key::pack(slot + 1, 0, false, u));  // next slot
  }
  ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (const simd::Mode mode : {simd::Mode::kScalar, simd::Mode::kAvx2}) {
    if (mode == simd::Mode::kAvx2 && !simd::avx2_available()) continue;
    ScopedSimdMode guard(mode);
    // Slot group: 14 keys of slot 5.
    const std::size_t slot_end = engine_kernels::count_keys_below(
        keys.data(), keys.size(), event_key::pack(slot + 1, 0, false, 0));
    ASSERT_EQ(slot_end, 14u);
    // Channel 0's group is bounded by pack(slot, 1, ...) as usual.
    EXPECT_EQ(engine_kernels::count_keys_below(
                  keys.data(), slot_end, event_key::pack(slot, 1, false, 0)),
              4u);
    // Channel 63's group must be bounded by the slot group (the guarded
    // path); the unguarded pack(slot, 64, ...) bound collapses to the
    // slot's own first key and reports an empty group.
    EXPECT_EQ(engine_kernels::count_keys_below(
                  keys.data() + 4, slot_end - 4,
                  event_key::pack(slot, 64, false, 0)),
              0u);
    // Guarded sender/listener split inside channel 63's group.
    EXPECT_EQ(engine_kernels::count_keys_below(
                  keys.data() + 4, slot_end - 4,
                  event_key::pack(slot, 63, true, 0)),
              5u);
  }
}

TEST(McEngineKernelTest, FillMcHistoryRecordsAvx2MatchesScalar) {
  if (!simd::avx2_available()) GTEST_SKIP() << "host lacks AVX2+FMA";
  const SlotCount lens[] = {1, 2, 3, 7, 8, 9, 64, 1000};
  const std::uint64_t masks[] = {0, 1, std::uint64_t{1} << 63,
                                 0xdeadbeefdeadbeefull};
  for (const SlotCount len : lens) {
    for (const std::uint64_t mask : masks) {
      std::vector<McSlotActivity> scalar(len), avx2(len);
      {
        ScopedSimdMode guard(simd::Mode::kScalar);
        engine_kernels::fill_mc_history_records(scalar.data(), 1000, len,
                                                mask);
      }
      {
        ScopedSimdMode guard(simd::Mode::kAvx2);
        engine_kernels::fill_mc_history_records(avx2.data(), 1000, len, mask);
      }
      for (SlotCount k = 0; k < len; ++k) {
        ASSERT_EQ(scalar[k].slot, avx2[k].slot) << "len=" << len;
        ASSERT_EQ(scalar[k].slot, 1000 + k);
        ASSERT_EQ(avx2[k].sender_channels, 0u);
        ASSERT_EQ(scalar[k].jam_mask, avx2[k].jam_mask);
        ASSERT_EQ(avx2[k].jam_mask, mask);
        ASSERT_EQ(avx2[k].senders, 0u);
      }
    }
  }
}

TEST(SamplerEquivalenceTest, SetModeAvx2OnUnsupportedHostIsRejected) {
  if (simd::avx2_available()) {
    // On a capable host the override must round-trip.
    ScopedSimdMode guard(simd::Mode::kAvx2);
    EXPECT_EQ(simd::active_mode(), simd::Mode::kAvx2);
  } else {
    EXPECT_EQ(simd::active_mode(), simd::Mode::kScalar);
  }
}

}  // namespace
}  // namespace rcb
