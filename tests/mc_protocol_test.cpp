// Tests for the multi-channel broadcast protocol (protocols/mc_broadcast.hpp)
// and its scenario/runtime plumbing: termination and delivery without
// jamming, determinism, budget accounting against the mc adversaries, the
// C=1 structural degeneration, and the make_mc_adversary factory.
#include "rcb/protocols/mc_broadcast.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "rcb/adversary/budget.hpp"
#include "rcb/adversary/mc_strategies.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/runtime/scenario.hpp"

namespace rcb {
namespace {

OneToOneParams test_params() {
  OneToOneParams p = OneToOneParams::sim(0.05);
  p.max_epoch = p.first_epoch() + 3;
  return p;
}

TEST(McBroadcastTest, InformsEveryoneWithoutJamming) {
  for (const std::uint32_t C : {1u, 2u, 4u}) {
    McNoJam adv;
    Rng rng = Rng::stream(5, C);
    const BroadcastNResult r =
        run_mc_broadcast(8, C, test_params(), adv, rng);
    EXPECT_EQ(r.n, 8u);
    EXPECT_TRUE(r.all_informed) << "C=" << C;
    EXPECT_EQ(r.informed_count, 8u) << "C=" << C;
    EXPECT_EQ(r.adversary_cost, 0u) << "C=" << C;
    EXPECT_GT(r.latency, 0u) << "C=" << C;
    EXPECT_GT(r.informed_latency, 0u) << "C=" << C;
  }
}

TEST(McBroadcastTest, SingleNodeTerminatesImmediatelyInformed) {
  McNoJam adv;
  Rng rng = Rng::stream(7, 0);
  const BroadcastNResult r = run_mc_broadcast(1, 4, test_params(), adv, rng);
  EXPECT_TRUE(r.all_informed);
  EXPECT_EQ(r.informed_count, 1u);
}

TEST(McBroadcastTest, DeterministicForFixedStream) {
  const auto run_once = [&]() {
    McUniformSplitJammer adv(Budget(2048), 0.4, Rng::stream(11, 7));
    Rng rng = Rng::stream(13, 7);
    return run_mc_broadcast(6, 4, test_params(), adv, rng);
  };
  const BroadcastNResult a = run_once();
  const BroadcastNResult b = run_once();
  EXPECT_EQ(a.all_informed, b.all_informed);
  EXPECT_EQ(a.informed_count, b.informed_count);
  EXPECT_EQ(a.max_cost, b.max_cost);
  EXPECT_EQ(a.mean_cost, b.mean_cost);
  EXPECT_EQ(a.adversary_cost, b.adversary_cost);
  EXPECT_EQ(a.latency, b.latency);
  EXPECT_EQ(a.final_epoch, b.final_epoch);
}

TEST(McBroadcastTest, AdversaryCostIsBudgetBounded) {
  // The uniform split at rate 1.0 wants C units every slot; the reported
  // adversary_cost must saturate at the budget, never exceed it.
  const Cost budget = 512;
  McUniformSplitJammer adv(Budget(budget), 1.0, Rng::stream(17, 1));
  Rng rng = Rng::stream(19, 1);
  const BroadcastNResult r = run_mc_broadcast(6, 4, test_params(), adv, rng);
  EXPECT_LE(r.adversary_cost, budget);
  EXPECT_EQ(r.adversary_cost, adv.budget().spent());
  EXPECT_TRUE(adv.budget().exhausted());
}

// A focused jammer with the same expected spend as the uniform split can
// block at most the one channel it bets on; with C=4 and random hopping
// the protocol must still inform everyone in most runs while a C=1 run
// under the same per-slot pressure is fully blocked until exhaustion.
TEST(McBroadcastTest, HoppingDilutesAFocusedJammer) {
  int informed_c4 = 0;
  const int runs = 8;
  for (int k = 0; k < runs; ++k) {
    McFocusJammer adv(Budget::unlimited(), 0.25, 0,
                      Rng::stream(23, static_cast<std::uint64_t>(k)));
    Rng rng = Rng::stream(29, static_cast<std::uint64_t>(k));
    const BroadcastNResult r = run_mc_broadcast(6, 4, test_params(), adv, rng);
    informed_c4 += r.all_informed ? 1 : 0;
  }
  // 1/C of the traffic blocked on average: delivery should usually work.
  EXPECT_GE(informed_c4, runs / 2);
}

// ---------------------------------------------------------------------------
// Scenario plumbing.

TEST(McScenarioTest, FactoryMakesEveryAdversary) {
  Scenario s;
  s.protocol = "mc_broadcast";
  s.n = 8;
  s.channels = 4;
  for (const char* name : {"none", "mc_uniform", "mc_focus", "mc_sweep"}) {
    s.adversary = name;
    EXPECT_EQ(validate_scenario(s), "") << name;
    const std::unique_ptr<McSlotAdversary> adv = make_mc_adversary(s, 0);
    ASSERT_NE(adv, nullptr) << name;
  }
  s.adversary = "no_such_strategy";
  EXPECT_EQ(make_mc_adversary(s, 0), nullptr);
  EXPECT_NE(validate_scenario(s), "");
}

TEST(McScenarioTest, TrialsRunAndReplayBitIdentically) {
  Scenario s;
  s.protocol = "mc_broadcast";
  s.adversary = "mc_uniform";
  s.n = 6;
  s.channels = 4;
  s.budget = 1024;
  s.rate = 0.4;
  s.eps = 0.05;
  s.trials = 4;
  s.seed = 43;
  s.max_epoch_extra = 2;
  ASSERT_EQ(validate_scenario(s), "");
  for (std::uint64_t t = 0; t < s.trials; ++t) {
    const TrialOutcome a = run_scenario_trial(s, t);
    const TrialOutcome b = run_scenario_trial(s, t);
    EXPECT_EQ(a.digest, b.digest) << "trial " << t;
    EXPECT_LE(a.adversary_cost, static_cast<double>(s.budget));
    EXPECT_FALSE(a.aborted);
  }
  // Different trials take different trajectories (independent streams).
  EXPECT_NE(run_scenario_trial(s, 0).digest, run_scenario_trial(s, 1).digest);
}

TEST(McScenarioTest, C1ScenarioDigestIsChannelsIndependent) {
  // channels=1 must behave (and serialise) exactly as if the field did not
  // exist: the scenario digest and the trial digests cannot depend on it.
  Scenario s;
  s.protocol = "mc_broadcast";
  s.adversary = "mc_sweep";
  s.n = 5;
  s.channels = 1;
  s.budget = 512;
  s.q = 0.5;
  s.trials = 2;
  s.seed = 47;
  s.max_epoch_extra = 2;
  ASSERT_EQ(validate_scenario(s), "");
  const TrialOutcome a = run_scenario_trial(s, 0);
  const TrialOutcome b = run_scenario_trial(s, 0);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(scenario_to_json(s).find("\"channels\""), std::string::npos);
}

}  // namespace
}  // namespace rcb
