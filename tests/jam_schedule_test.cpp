// Tests for jam schedules.
#include "rcb/sim/jam_schedule.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rcb {
namespace {

TEST(JamScheduleTest, NoneJamsNothing) {
  const JamSchedule js = JamSchedule::none();
  EXPECT_EQ(js.jammed_count(), 0u);
  EXPECT_FALSE(js.is_jammed(0));
  EXPECT_FALSE(js.is_jammed(12345));
  EXPECT_EQ(js.jammed_before(1000), 0u);
}

TEST(JamScheduleTest, AllJamsEverything) {
  const JamSchedule js = JamSchedule::all(100);
  EXPECT_EQ(js.jammed_count(), 100u);
  EXPECT_TRUE(js.is_jammed(0));
  EXPECT_TRUE(js.is_jammed(99));
  EXPECT_FALSE(js.is_jammed(100));  // out of the phase
  EXPECT_EQ(js.jammed_before(50), 50u);
  EXPECT_EQ(js.jammed_before(1000), 100u);
}

TEST(JamScheduleTest, SuffixJamsTail) {
  const JamSchedule js = JamSchedule::suffix(100, 70);
  EXPECT_EQ(js.jammed_count(), 30u);
  EXPECT_FALSE(js.is_jammed(69));
  EXPECT_TRUE(js.is_jammed(70));
  EXPECT_TRUE(js.is_jammed(99));
  EXPECT_FALSE(js.is_jammed(100));
  EXPECT_EQ(js.jammed_before(70), 0u);
  EXPECT_EQ(js.jammed_before(80), 10u);
  EXPECT_EQ(js.jammed_before(200), 30u);
}

TEST(JamScheduleTest, SuffixAtBoundaryIsEmpty) {
  const JamSchedule js = JamSchedule::suffix(100, 100);
  EXPECT_EQ(js.jammed_count(), 0u);
  EXPECT_FALSE(js.is_jammed(99));
}

TEST(JamScheduleTest, BlockingFractionMatchesDefinitionOne) {
  // Definition 1: q-blocking jams at least a q fraction of the slots.
  for (SlotCount n : {16u, 100u, 1024u}) {
    for (double q : {0.0, 0.1, 0.25, 0.5, 1.0}) {
      const JamSchedule js = JamSchedule::blocking_fraction(n, q);
      EXPECT_GE(static_cast<double>(js.jammed_count()),
                q * static_cast<double>(n))
          << "n=" << n << " q=" << q;
      EXPECT_LE(js.jammed_count(), static_cast<SlotCount>(q * n) + 1);
    }
  }
}

TEST(JamScheduleTest, ExplicitSlotsBinarySearch) {
  const JamSchedule js = JamSchedule::slots(100, {3, 7, 42, 99});
  EXPECT_EQ(js.jammed_count(), 4u);
  EXPECT_TRUE(js.is_jammed(3));
  EXPECT_TRUE(js.is_jammed(42));
  EXPECT_FALSE(js.is_jammed(4));
  EXPECT_FALSE(js.is_jammed(98));
  EXPECT_EQ(js.jammed_before(42), 2u);
  EXPECT_EQ(js.jammed_before(43), 3u);
  EXPECT_EQ(js.jammed_before(100), 4u);
}

TEST(JamScheduleTest, EmptyExplicitList) {
  const JamSchedule js = JamSchedule::slots(100, {});
  EXPECT_EQ(js.jammed_count(), 0u);
  EXPECT_FALSE(js.is_jammed(0));
}

TEST(JamScheduleDeathTest, UnsortedSlotsRejected) {
  EXPECT_DEATH(JamSchedule::slots(100, {7, 3}), "precondition");
}

TEST(JamScheduleDeathTest, DuplicateSlotsRejected) {
  EXPECT_DEATH(JamSchedule::slots(100, {3, 3}), "precondition");
}

TEST(JamScheduleDeathTest, OutOfRangeSlotsRejected) {
  EXPECT_DEATH(JamSchedule::slots(100, {100}), "precondition");
}

TEST(JamScheduleDeathTest, SuffixStartBeyondPhaseRejected) {
  EXPECT_DEATH(JamSchedule::suffix(100, 101), "precondition");
}

}  // namespace
}  // namespace rcb
