// Tests for the worker-transport layer (runtime/transport.hpp +
// runtime/transport_socket.hpp) and the retry_io hardening underneath it:
// control-frame codec round-trips and corruption refusal, deterministic
// fault-plan draws, lease-policy validation, host:port parsing, EINTR-storm
// regression for journal appends and fd transfers, and the duplicate-
// completion dedupe / divergence refusal that scan_shard (and therefore
// merge_shard_journals) applies to partitioned shard attempts.
#include "rcb/runtime/transport.hpp"

#include <errno.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "rcb/runtime/checkpoint.hpp"
#include "rcb/runtime/coordinator.hpp"
#include "rcb/runtime/retry_io.hpp"
#include "rcb/runtime/shard.hpp"
#include "rcb/runtime/transport_socket.hpp"

namespace rcb {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Control-frame codec.

CtrlMessage full_message(CtrlType type) {
  CtrlMessage m;
  m.type = type;
  m.uid = 0xDEADBEEFCAFEF00Dull;  // > 2^53: a JSON double would shear this
  m.pid = 12345;
  m.shard = 7;
  m.attempt = 3;
  m.value = 0xFFFFFFFFFFFFFFFFull;
  m.digest = 0x0123456789ABCDEFull;
  m.heartbeat_ms = 100;
  m.root = "/tmp/sweep root with spaces";
  m.error = "worker said: \"no\"";
  return m;
}

TEST(CtrlFrameTest, RoundTripsEveryTypeAndField) {
  for (const CtrlType type :
       {CtrlType::kHello, CtrlType::kHeartbeat, CtrlType::kProgress,
        CtrlType::kComplete, CtrlType::kFailed, CtrlType::kAssign,
        CtrlType::kAck, CtrlType::kAbandon, CtrlType::kShutdown}) {
    const CtrlMessage sent = full_message(type);
    const std::string frame = encode_ctrl_frame(sent);
    ASSERT_EQ(frame.substr(0, 5), "RCBC ");
    ASSERT_EQ(frame.back(), '\n');

    CtrlFrameDecoder dec;
    dec.feed(frame.data(), frame.size());
    CtrlMessage got;
    std::string err;
    ASSERT_EQ(dec.next(got, err), 1) << err;
    EXPECT_EQ(got.type, sent.type);
    EXPECT_EQ(got.uid, sent.uid);
    EXPECT_EQ(got.pid, sent.pid);
    EXPECT_EQ(got.shard, sent.shard);
    EXPECT_EQ(got.attempt, sent.attempt);
    EXPECT_EQ(got.value, sent.value);
    EXPECT_EQ(got.digest, sent.digest);
    EXPECT_EQ(got.heartbeat_ms, sent.heartbeat_ms);
    EXPECT_EQ(got.root, sent.root);
    EXPECT_EQ(got.error, sent.error);
    EXPECT_EQ(dec.next(got, err), 0);  // exactly one frame
  }
}

TEST(CtrlFrameTest, IdleHeartbeatKeepsNoShardSentinel) {
  CtrlMessage m;
  m.type = CtrlType::kHeartbeat;
  m.uid = 42;
  ASSERT_EQ(m.shard, kNoShard);
  const std::string frame = encode_ctrl_frame(m);
  CtrlFrameDecoder dec;
  dec.feed(frame.data(), frame.size());
  CtrlMessage got;
  std::string err;
  ASSERT_EQ(dec.next(got, err), 1) << err;
  EXPECT_EQ(got.shard, kNoShard);
}

TEST(CtrlFrameTest, PartialFrameWaitsForMoreBytes) {
  const std::string frame = encode_ctrl_frame(full_message(CtrlType::kAssign));
  CtrlFrameDecoder dec;
  CtrlMessage got;
  std::string err;
  // Feed one byte at a time: every prefix must return 0 (wait), never -1.
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    dec.feed(&frame[i], 1);
    ASSERT_EQ(dec.next(got, err), 0) << "at byte " << i << ": " << err;
  }
  dec.feed(&frame[frame.size() - 1], 1);
  EXPECT_EQ(dec.next(got, err), 1) << err;
}

TEST(CtrlFrameTest, ChecksumMismatchPoisonsTheStream) {
  std::string frame = encode_ctrl_frame(full_message(CtrlType::kComplete));
  // Flip one payload byte: framing is intact, the checksum is not.
  frame[frame.size() - 2] ^= 0x20;
  CtrlFrameDecoder dec;
  dec.feed(frame.data(), frame.size());
  CtrlMessage got;
  std::string err;
  EXPECT_EQ(dec.next(got, err), -1);
  EXPECT_NE(err.find("checksum"), std::string::npos) << err;
}

TEST(CtrlFrameTest, BadMagicPoisonsTheStream) {
  const std::string junk = "HTTP/1.1 200 OK\r\n";
  CtrlFrameDecoder dec;
  dec.feed(junk.data(), junk.size());
  CtrlMessage got;
  std::string err;
  EXPECT_EQ(dec.next(got, err), -1);
  EXPECT_FALSE(err.empty());
}

TEST(CtrlFrameTest, DecodesBackToBackFramesFromOneFeed) {
  std::string stream;
  for (int i = 0; i < 3; ++i) {
    CtrlMessage m;
    m.type = CtrlType::kProgress;
    m.uid = static_cast<std::uint64_t>(i);
    m.shard = static_cast<std::uint64_t>(i);
    stream += encode_ctrl_frame(m);
  }
  CtrlFrameDecoder dec;
  dec.feed(stream.data(), stream.size());
  CtrlMessage got;
  std::string err;
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_EQ(dec.next(got, err), 1) << err;
    EXPECT_EQ(got.uid, i);
  }
  EXPECT_EQ(dec.next(got, err), 0);
  EXPECT_EQ(dec.buffered(), 0u);
}

// ---------------------------------------------------------------------------
// Deterministic fault plan.

TEST(NetFaultPlanTest, SameSeedSameHistorySameActions) {
  const NetFaultConfig cfg = NetFaultConfig::chaos(99, 0.3);
  NetFaultPlan a(cfg), b(cfg);
  for (int i = 0; i < 200; ++i) {
    const CtrlType type = static_cast<CtrlType>(i % 9);
    EXPECT_EQ(a.next(type), b.next(type)) << "draw " << i;
  }
}

TEST(NetFaultPlanTest, SeedZeroDeliversEverything) {
  NetFaultPlan plan{NetFaultConfig{}};
  EXPECT_FALSE(plan.active());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(plan.next(CtrlType::kHeartbeat), NetFaultAction::kDeliver);
  }
}

TEST(NetFaultPlanTest, ChaosPresetActuallyInjectsFaults) {
  NetFaultPlan plan{NetFaultConfig::chaos(7, 0.1)};
  ASSERT_TRUE(plan.active());
  int faults = 0;
  for (int i = 0; i < 500; ++i) {
    if (plan.next(CtrlType::kProgress) != NetFaultAction::kDeliver) ++faults;
  }
  // 4 channels at 0.1 + close at 0.02 cascade to a 42% fault rate; with 500
  // draws the count concentrates far from both ends.
  EXPECT_GT(faults, 100);
  EXPECT_LT(faults, 400);
}

// ---------------------------------------------------------------------------
// Lease policy + address parsing (the CLI validation seams).

TEST(LeaseConfigTest, AcceptsSanePairsRejectsTightOnes) {
  EXPECT_EQ(validate_lease_config(10.0, 0.1), "");
  EXPECT_EQ(validate_lease_config(0.0, 0.1), "");  // watchdog off
  EXPECT_EQ(validate_lease_config(0.21, 0.1), "");
  const std::string err = validate_lease_config(0.2, 0.1);  // exactly 2x
  EXPECT_NE(err.find("must exceed 2x"), std::string::npos) << err;
  EXPECT_NE(validate_lease_config(0.05, 0.1), "");
  EXPECT_NE(validate_lease_config(1.0, 0.0), "");  // heartbeat must be > 0
}

TEST(ParseHostPortTest, ParsesAndRejects) {
  std::string host;
  std::uint16_t port = 1;
  EXPECT_EQ(parse_host_port("127.0.0.1:8080", host, port), "");
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_EQ(parse_host_port("0.0.0.0:0", host, port), "");
  EXPECT_EQ(port, 0);
  EXPECT_NE(parse_host_port("127.0.0.1", host, port), "");     // no colon
  EXPECT_NE(parse_host_port("localhost:80", host, port), "");  // not numeric
  EXPECT_NE(parse_host_port("127.0.0.1:99999", host, port), "");
  EXPECT_NE(parse_host_port("127.0.0.1:x", host, port), "");
  EXPECT_NE(parse_host_port(":80", host, port), "");
}

// ---------------------------------------------------------------------------
// retry_io: EINTR storms must not shear transfers (satellite regression for
// the journal/pipe hardening).

class EintrStormTest : public ::testing::Test {
 protected:
  void TearDown() override { set_io_fault(nullptr); }

  /// Fails every other matching call with EINTR.
  void arm_alternating(const std::string& op_match) {
    auto counter = std::make_shared<std::atomic<int>>(0);
    set_io_fault([op_match, counter](const char* op) {
      if (op_match != op) return 0;
      return counter->fetch_add(1) % 2 == 0 ? EINTR : 0;
    });
  }
};

TEST_F(EintrStormTest, RetryWriteAndReadSurviveStorm) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::string payload(8192, 'x');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + i % 26);
  }
  arm_alternating("write");
  ASSERT_EQ(retry_write(fds[1], payload.data(), payload.size()), 0);
  set_io_fault(nullptr);
  arm_alternating("read");
  std::string got(payload.size(), '\0');
  ASSERT_EQ(retry_read(fds[0], got.data(), got.size()),
            static_cast<ssize_t>(payload.size()));
  EXPECT_EQ(got, payload);
  close(fds[0]);
  close(fds[1]);
}

TEST_F(EintrStormTest, JournalAppendsSurviveStorm) {
  const std::string dir =
      (fs::temp_directory_path() / "rcb_eintr_journal_storm").string();
  fs::remove_all(dir);
  Scenario s;
  s.protocol = "one_to_one";
  s.adversary = "full_duel";
  s.budget = 256;
  s.trials = 4;
  s.seed = 5;

  arm_alternating("fwrite");
  CheckpointWriter w;
  ASSERT_EQ(w.create(dir, s), "");
  for (std::uint64_t t = 0; t < 4; ++t) {
    CheckpointRecord rec;
    rec.trial = t;
    rec.outcome = run_scenario_trial(s, t);
    ASSERT_EQ(w.append(rec), "");
  }
  set_io_fault(nullptr);

  // Every record written under the storm reads back intact, no torn tail.
  arm_alternating("fread");
  const CheckpointLoadResult loaded = load_checkpoint(dir);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_FALSE(loaded.truncated_tail);
  ASSERT_EQ(loaded.records.size(), 4u);
  for (std::uint64_t t = 0; t < 4; ++t) {
    EXPECT_EQ(loaded.records[t].trial, t);
  }
  set_io_fault(nullptr);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Duplicate completions after a partition: scan_shard (and so the merge)
// dedupes identical digests and refuses divergent ones.

class DuplicateCompletionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("rcb_dup_complete_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove_all(root_);
    Scenario s;
    s.protocol = "one_to_one";
    s.adversary = "full_duel";
    s.budget = 256;
    s.trials = 6;
    s.seed = 11;
    spec_.worker_threads = 1;
    spec_.points = {s};
    spec_.shards = {{0, 0, 6}};
    ASSERT_EQ(write_shard_spec(root_, spec_), "");
  }
  void TearDown() override { fs::remove_all(root_); }

  /// Runs the whole shard to completion inside `dir`.
  void complete_attempt(const std::string& dir, std::uint64_t reseed = 0) {
    TrialRunner runner;
    if (reseed != 0) {
      // A worker that journals *different* outcomes for the same assigned
      // work — the fabricated-journal case divergence detection is for.
      runner = [reseed](const Scenario& s, std::uint64_t trial,
                        std::uint32_t) {
        Scenario shifted = s;
        shifted.seed += reseed;
        return run_scenario_trial(shifted, trial);
      };
    }
    const SweepResult res = run_shard_attempt(spec_, 0, dir, runner);
    ASSERT_TRUE(res.ok) << res.error;
  }

  std::string root_;
  ShardSpec spec_;
};

TEST_F(DuplicateCompletionTest, IdenticalDigestsDedupeAndMerge) {
  // Both the revoked worker (base dir) and its replacement (try_1) finished
  // the shard: same assigned work, same digest.
  complete_attempt(shard_attempt_dir(root_, 0, 0));
  ASSERT_EQ(prepare_shard_attempt(root_, spec_, 0, 1), "");
  complete_attempt(shard_attempt_dir(root_, 0, 1));

  const ShardScan scan = scan_shard(root_, spec_, 0);
  ASSERT_EQ(scan.state, ShardScanState::kComplete) << scan.error;
  EXPECT_EQ(scan.records.size(), 6u);  // adopted once, not merged twice

  const ShardMergeResult merged = merge_shard_journals(root_, spec_);
  ASSERT_TRUE(merged.ok) << merged.error;
  ASSERT_EQ(merged.points.size(), 1u);
  EXPECT_EQ(merged.points[0].records.size(), 6u);
}

TEST_F(DuplicateCompletionTest, DivergentDigestsRefuseLoudly) {
  complete_attempt(shard_attempt_dir(root_, 0, 0));
  // The second completion journals different outcomes for the same trials:
  // one of the two journals is fabricated, and no tie-break is safe.
  const std::string try1 = shard_attempt_dir(root_, 0, 1);
  ASSERT_EQ(fs::create_directories(try1) ? "" : "", "");
  complete_attempt(try1, /*reseed=*/1);

  const ShardScan scan = scan_shard(root_, spec_, 0);
  ASSERT_EQ(scan.state, ShardScanState::kCorrupt);
  EXPECT_NE(scan.error.find("divergent"), std::string::npos) << scan.error;

  const ShardMergeResult merged = merge_shard_journals(root_, spec_);
  ASSERT_FALSE(merged.ok);
  EXPECT_NE(merged.error.find("divergent"), std::string::npos)
      << merged.error;
  EXPECT_TRUE(merged.points.empty());
}

TEST_F(DuplicateCompletionTest, PartialAttemptSeedsTheNextOne) {
  // A half-finished base attempt: the next attempt dir starts from its
  // journal (copied, not moved) instead of redoing the shard.
  ShardSpec half = spec_;
  half.shards = {{0, 0, 3}};  // pretend only 3 trials were assigned...
  const SweepResult res =
      run_shard_attempt(half, 0, shard_attempt_dir(root_, 0, 0), {});
  ASSERT_TRUE(res.ok) << res.error;

  ASSERT_EQ(next_shard_attempt(root_, 0), 1u);
  ASSERT_EQ(prepare_shard_attempt(root_, spec_, 0, 1), "");
  const CheckpointLoadResult seeded =
      load_checkpoint(shard_attempt_dir(root_, 0, 1));
  ASSERT_TRUE(seeded.ok) << seeded.error;
  EXPECT_EQ(seeded.records.size(), 3u);  // predecessor progress adopted
  // The source journal is untouched (a partitioned writer may still own it).
  const CheckpointLoadResult source =
      load_checkpoint(shard_attempt_dir(root_, 0, 0));
  ASSERT_TRUE(source.ok) << source.error;
  EXPECT_EQ(source.records.size(), 3u);
  EXPECT_EQ(next_shard_attempt(root_, 0), 2u);
}

}  // namespace
}  // namespace rcb
