// Property-style invariant sweeps across the simulator and protocols.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rcb/adversary/strategies.hpp"
#include "rcb/adversary/two_uniform.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {
namespace {

// ---------------------------------------------------------------------------
// Engine invariants over random configurations.
// ---------------------------------------------------------------------------

struct EngineConfig {
  SlotCount slots;
  double send_p;
  double listen_p;
  double jam_q;
  std::uint64_t seed;
};

class EngineInvariantTest : public ::testing::TestWithParam<EngineConfig> {};

TEST_P(EngineInvariantTest, ObservationPartitionAndBounds) {
  const EngineConfig cfg = GetParam();
  Rng rng(cfg.seed);
  std::vector<NodeAction> actions;
  for (int u = 0; u < 5; ++u) {
    actions.push_back(NodeAction{cfg.send_p * (u + 1) / 5.0,
                                 u % 2 ? Payload::kMessage : Payload::kNoise,
                                 cfg.listen_p});
  }
  const JamSchedule jam = JamSchedule::blocking_fraction(cfg.slots, cfg.jam_q);
  const auto r = run_repetition(cfg.slots, actions, jam, rng);

  for (const auto& o : r.obs) {
    // Receptions partition the listened slots.
    EXPECT_EQ(o.clear + o.messages + o.nacks + o.noise, o.listens);
    // A node acts at most once per slot.
    EXPECT_LE(o.sends + o.listens, cfg.slots);
    // listens_until_first_message never exceeds total listens.
    EXPECT_LE(o.listens_until_first_message, o.listens);
    if (o.first_message_slot != kNoSlot) {
      EXPECT_LT(o.first_message_slot, cfg.slots);
      EXPECT_GE(o.messages, 1u);
      // The jam schedule cannot have covered the reception slot.
      EXPECT_FALSE(jam.is_jammed(o.first_message_slot));
    } else {
      EXPECT_EQ(o.listens_until_first_message, o.listens);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineInvariantTest,
    ::testing::Values(EngineConfig{64, 0.5, 0.5, 0.0, 1},
                      EngineConfig{64, 0.5, 0.5, 0.5, 2},
                      EngineConfig{256, 0.05, 0.2, 0.25, 3},
                      EngineConfig{1024, 0.01, 0.9, 0.9, 4},
                      EngineConfig{4096, 0.001, 0.01, 0.1, 5},
                      EngineConfig{16, 1.0, 1.0, 1.0, 6},
                      EngineConfig{2048, 0.3, 0.0, 0.5, 7}));

// ---------------------------------------------------------------------------
// Lemma 2 empirical check: e^{-2 S_V} <= p_c <= e^{-S_V}.
// ---------------------------------------------------------------------------

class ClearProbabilityTest : public ::testing::TestWithParam<double> {};

TEST_P(ClearProbabilityTest, Lemma2BoundsHold) {
  const double S_V = GetParam();
  const int n = 8;
  const SlotCount slots = 2048;
  const double per_node = S_V / n;  // each node sends w.p. S_u/2^i = S_V/n

  std::vector<NodeAction> actions(n + 1);
  for (int u = 0; u < n; ++u) {
    actions[u] = NodeAction{per_node, Payload::kNoise, 0.0};
  }
  actions[n] = NodeAction{0.0, Payload::kNoise, 1.0};  // pure observer

  double clear_total = 0.0, heard_total = 0.0;
  Rng rng(99);
  for (int t = 0; t < 60; ++t) {
    const auto r = run_repetition(slots, actions, JamSchedule::none(), rng);
    clear_total += static_cast<double>(r.obs[n].clear);
    heard_total += static_cast<double>(r.obs[n].heard_total());
  }
  const double p_c = clear_total / heard_total;
  EXPECT_GE(p_c, std::exp(-2.0 * S_V) - 0.02) << "S_V=" << S_V;
  EXPECT_LE(p_c, std::exp(-S_V) + 0.02) << "S_V=" << S_V;
}

INSTANTIATE_TEST_SUITE_P(SVSweep, ClearProbabilityTest,
                         ::testing::Values(0.05, 0.125, 0.25, 0.5, 1.0, 2.0));

// ---------------------------------------------------------------------------
// One-to-one protocol invariants across eps and adversaries.
// ---------------------------------------------------------------------------

struct DuelConfig {
  double eps;
  double q;
  Cost budget;
  std::uint64_t seed;
};

class OneToOnePropertyTest : public ::testing::TestWithParam<DuelConfig> {};

TEST_P(OneToOnePropertyTest, TerminatesWithConsistentAccounting) {
  const DuelConfig cfg = GetParam();
  const OneToOneParams params = OneToOneParams::sim(cfg.eps);
  for (int t = 0; t < 25; ++t) {
    FullDuelBlocker adv(Budget(cfg.budget), cfg.q);
    Rng rng = Rng::stream(cfg.seed, t);
    const auto r = run_one_to_one(params, adv, rng);
    EXPECT_FALSE(r.hit_epoch_cap);
    EXPECT_TRUE(r.alice_halted);
    EXPECT_TRUE(r.bob_halted);
    EXPECT_LE(r.adversary_cost, 2 * cfg.budget + 2);
    EXPECT_LE(r.alice_cost + r.bob_cost, 2 * r.latency);
    // Latency is the sum of executed phase lengths: a multiple of 2^i0 and
    // at least one full epoch (two phases).
    EXPECT_GE(r.latency, 2 * pow2(params.first_epoch()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OneToOnePropertyTest,
    ::testing::Values(DuelConfig{0.3, 0.5, 0, 10},
                      DuelConfig{0.1, 0.5, 1 << 10, 11},
                      DuelConfig{0.05, 0.8, 1 << 13, 12},
                      DuelConfig{0.01, 0.3, 1 << 12, 13},
                      DuelConfig{0.003, 0.6, 1 << 14, 14}));

// ---------------------------------------------------------------------------
// Broadcast protocol invariants across n and jamming levels.
// ---------------------------------------------------------------------------

struct BroadcastConfig {
  std::uint32_t n;
  double q;
  Cost budget;
  std::uint64_t seed;
};

class BroadcastPropertyTest : public ::testing::TestWithParam<BroadcastConfig> {
};

TEST_P(BroadcastPropertyTest, InvariantsHold) {
  const BroadcastConfig cfg = GetParam();
  const BroadcastNParams params = BroadcastNParams::sim();
  SuffixBlockerAdversary adv(Budget(cfg.budget), cfg.q);
  Rng rng(cfg.seed);
  const auto r = run_broadcast_n(cfg.n, params, adv, rng);

  EXPECT_EQ(r.adversary_cost, adv.budget().spent());
  EXPECT_GE(r.informed_count, 1u);
  std::uint64_t informed = 0;
  for (const auto& node : r.nodes) {
    EXPECT_LE(node.cost, r.latency);
    if (node.informed) {
      ++informed;
      EXPECT_GE(node.informed_epoch, params.first_epoch);
    }
    // A helper always passed through informed status.
    if (node.n_estimate > 0.0) {
      EXPECT_TRUE(node.informed);
    }
    // Terminated nodes record their epoch.
    if (node.final_status == BroadcastStatus::kTerminated) {
      EXPECT_GE(node.terminated_epoch, params.first_epoch);
      EXPECT_LE(node.terminated_epoch, r.final_epoch);
    }
  }
  EXPECT_EQ(informed, r.informed_count);
  // Mean cannot exceed max.
  EXPECT_LE(r.mean_cost, static_cast<double>(r.max_cost) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BroadcastPropertyTest,
    ::testing::Values(BroadcastConfig{1, 0.5, 1 << 12, 20},
                      BroadcastConfig{2, 0.0, 0, 21},
                      BroadcastConfig{5, 0.5, 1 << 14, 22},
                      BroadcastConfig{16, 0.3, 1 << 15, 23},
                      BroadcastConfig{48, 0.7, 1 << 16, 24},
                      BroadcastConfig{7, 1.0, 1 << 13, 25}));

// ---------------------------------------------------------------------------
// Fig. 1 probability schedule properties over the eps range.
// ---------------------------------------------------------------------------

class EpsilonScheduleTest : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonScheduleTest, ScheduleIsWellFormed) {
  const double eps = GetParam();
  const OneToOneParams theory = OneToOneParams::theory(eps);
  const OneToOneParams sim = OneToOneParams::sim(eps);
  for (const auto& p : {theory, sim}) {
    const std::uint32_t i0 = p.first_epoch();
    EXPECT_GE(i0, 1u);
    double prev = 2.0;
    for (std::uint32_t i = i0; i < i0 + 10; ++i) {
      const double pi = p.slot_probability(i);
      EXPECT_GT(pi, 0.0);
      EXPECT_LE(pi, 1.0);
      EXPECT_LT(pi, prev);  // strictly decreasing per epoch
      prev = pi;
      // Expected per-phase actions p_i * 2^i = 2 * sqrt(ln(8/eps) 2^{i-1}):
      // nondecreasing in i, and the halting threshold is a quarter of half
      // the phase's expected actions.
      EXPECT_NEAR(p.halt_threshold(i),
                  0.25 * pi * static_cast<double>(pow2(i - 1)), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, EpsilonScheduleTest,
                         ::testing::Values(0.3, 0.1, 0.03, 0.01, 0.001,
                                           0.0001));

}  // namespace
}  // namespace rcb
