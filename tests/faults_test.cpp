// Tests for the fault-injection subsystem (sim/faults.hpp) and the
// protocols' graceful degradation under it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rcb/protocols/broadcast_engine.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/faults.hpp"
#include "rcb/sim/repetition_engine.hpp"
#include "rcb/sim/slot_engine.hpp"

namespace rcb {
namespace {

TEST(FaultPlanTest, DefaultPlanIsInactive) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  EXPECT_FALSE(plan.node_down_at(0, 12345));
  EXPECT_FALSE(plan.node_skewed(0));
  EXPECT_EQ(plan.battery_factor(0, 99999), 1.0);
  Rng rng(1);
  EXPECT_EQ(plan.degrade(Reception::kMessage, 5, rng), Reception::kMessage);
  // An inactive plan must not consume the engine's RNG stream.
  Rng untouched(1);
  EXPECT_EQ(rng.state(), untouched.state());
}

TEST(FaultPlanTest, ZeroConfigIsInactive) {
  FaultPlan plan{FaultConfig{}};
  EXPECT_FALSE(plan.active());
}

TEST(FaultPlanTest, CrashTimelinesAreDeterministic) {
  FaultConfig cfg;
  cfg.seed = 42;
  cfg.crash_rate = 0.01;
  cfg.restart_rate = 0.005;
  FaultPlan a(cfg), b(cfg);
  for (NodeId u = 0; u < 8; ++u) {
    for (SlotIndex t = 0; t < 4096; t += 7) {
      ASSERT_EQ(a.node_down_at(u, t), b.node_down_at(u, t))
          << "node " << u << " slot " << t;
    }
  }
  // Queries out of order must agree with queries in order (the timeline is
  // extended lazily but derived from a dedicated stream).
  FaultPlan c(cfg);
  EXPECT_EQ(c.node_down_at(3, 4000), b.node_down_at(3, 4000));
  EXPECT_EQ(c.node_down_at(3, 100), b.node_down_at(3, 100));
}

TEST(FaultPlanTest, CrashFractionGatesEligibility) {
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.crash_rate = 0.5;  // eligible nodes crash almost immediately
  cfg.crash_fraction = 0.0;
  FaultPlan none(cfg);
  for (NodeId u = 0; u < 16; ++u) {
    EXPECT_FALSE(none.node_down_at(u, 100000)) << u;
  }

  cfg.crash_fraction = 1.0;  // permanent crash (restart_rate = 0)
  FaultPlan all(cfg);
  int down = 0;
  for (NodeId u = 0; u < 16; ++u) down += all.node_down_at(u, 100000);
  EXPECT_EQ(down, 16);
}

TEST(FaultPlanTest, RestartBringsNodesBack) {
  FaultConfig cfg;
  cfg.seed = 11;
  cfg.crash_rate = 0.05;
  cfg.restart_rate = 0.05;
  FaultPlan plan(cfg);
  // With symmetric churn, node 0 must be seen both up and down somewhere
  // over a long horizon.
  bool seen_up = false, seen_down = false;
  for (SlotIndex t = 0; t < 20000; ++t) {
    (plan.node_down_at(0, t) ? seen_down : seen_up) = true;
  }
  EXPECT_TRUE(seen_up);
  EXPECT_TRUE(seen_down);
}

TEST(FaultPlanTest, TotalLossFadesAllReceptionsToClear) {
  FaultConfig cfg;
  cfg.seed = 1;
  cfg.loss_rate = 1.0;
  FaultPlan plan(cfg);
  plan.begin_phase(2, 64);
  Rng rng(3);
  EXPECT_EQ(plan.degrade(Reception::kMessage, 0, rng), Reception::kClear);
  EXPECT_EQ(plan.degrade(Reception::kNack, 1, rng), Reception::kClear);
  // Loss only touches decodable receptions.
  EXPECT_EQ(plan.degrade(Reception::kClear, 2, rng), Reception::kClear);
  EXPECT_EQ(plan.degrade(Reception::kNoise, 3, rng), Reception::kNoise);
}

TEST(FaultPlanTest, TotalCorruptionGarblesToNoise) {
  FaultConfig cfg;
  cfg.seed = 1;
  cfg.corruption_rate = 1.0;
  FaultPlan plan(cfg);
  plan.begin_phase(2, 64);
  Rng rng(3);
  EXPECT_EQ(plan.degrade(Reception::kMessage, 0, rng), Reception::kNoise);
  EXPECT_EQ(plan.degrade(Reception::kNack, 1, rng), Reception::kNoise);
}

TEST(FaultPlanTest, CcaDegradationAfterRamp) {
  FaultConfig cfg;
  cfg.seed = 1;
  cfg.cca_false_busy = 1.0;
  FaultPlan plan(cfg);
  plan.begin_phase(1, 64);
  Rng rng(3);
  EXPECT_EQ(plan.degrade(Reception::kClear, 0, rng), Reception::kNoise);

  FaultConfig md;
  md.seed = 1;
  md.cca_missed_detection = 1.0;
  FaultPlan plan2(md);
  plan2.begin_phase(1, 64);
  EXPECT_EQ(plan2.degrade(Reception::kNoise, 0, rng), Reception::kClear);
}

TEST(FaultPlanTest, SkewFlagsAreDeterministicPerPhase) {
  FaultConfig cfg;
  cfg.seed = 99;
  cfg.clock_skew_rate = 0.5;
  FaultPlan a(cfg), b(cfg);
  for (int phase = 0; phase < 10; ++phase) {
    a.begin_phase(32, 128);
    b.begin_phase(32, 128);
    int skewed = 0;
    for (NodeId u = 0; u < 32; ++u) {
      ASSERT_EQ(a.node_skewed(u), b.node_skewed(u));
      skewed += a.node_skewed(u);
    }
    EXPECT_GE(skewed, 1);   // rate 0.5 over 32 nodes
    EXPECT_LE(skewed, 31);
  }
}

TEST(FaultPlanTest, BrownoutScalesEligibleNodesAfterOnset) {
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.brownout_slot = 1000;
  cfg.brownout_fraction = 1.0;
  cfg.brownout_factor = 0.25;
  FaultPlan plan(cfg);
  EXPECT_EQ(plan.battery_factor(3, 999), 1.0);
  EXPECT_EQ(plan.battery_factor(3, 1000), 0.25);
  EXPECT_EQ(plan.battery_factor(3, 50000), 0.25);

  cfg.brownout_fraction = 0.0;
  FaultPlan off(cfg);
  EXPECT_EQ(off.battery_factor(3, 50000), 1.0);
}

TEST(FaultPlanTest, ResetRestoresInitialState) {
  FaultConfig cfg;
  cfg.seed = 13;
  cfg.crash_rate = 0.01;
  cfg.clock_skew_rate = 0.3;
  FaultPlan plan(cfg);
  plan.begin_phase(8, 256);
  std::vector<bool> first_skew;
  for (NodeId u = 0; u < 8; ++u) first_skew.push_back(plan.node_skewed(u));
  const bool first_down = plan.node_down(2, 100);
  plan.begin_phase(8, 256);

  plan.reset();
  EXPECT_EQ(plan.phase_origin(), 0u);
  plan.begin_phase(8, 256);
  for (NodeId u = 0; u < 8; ++u) {
    EXPECT_EQ(plan.node_skewed(u), first_skew[u]);
  }
  EXPECT_EQ(plan.node_down(2, 100), first_down);
}

// ---------------------------------------------------------------------------
// Engine integration.

TEST(FaultEngineTest, DownNodesNeitherSendNorListenInBatchEngine) {
  FaultConfig cfg;
  cfg.seed = 3;
  cfg.crash_rate = 1.0;  // every node down from slot 1 on, permanently
  FaultPlan plan(cfg);

  std::vector<NodeAction> actions = {
      NodeAction{1.0, Payload::kMessage, 0.0},
      NodeAction{0.0, Payload::kNoise, 1.0},
  };
  Rng rng(4);
  const auto r =
      run_repetition(256, actions, JamSchedule::none(), rng, nullptr,
                     CcaModel{}, &plan);
  // crash_rate = 1 ⇒ the first toggle lands at slot 1, so at most the very
  // first slot carries any activity.
  EXPECT_LE(r.obs[0].sends, 1u);
  EXPECT_LE(r.obs[1].listens, 1u);
}

TEST(FaultEngineTest, BatchAndSlotwiseSeeTheSameDownNodes) {
  FaultConfig cfg;
  cfg.seed = 21;
  cfg.crash_rate = 0.02;
  cfg.restart_rate = 0.02;
  FaultPlan a(cfg), b(cfg);
  a.begin_phase(4, 512);
  b.begin_phase(4, 512);
  for (NodeId u = 0; u < 4; ++u) {
    for (SlotIndex t = 0; t < 512; ++t) {
      ASSERT_EQ(a.node_down(u, t), b.node_down(u, t));
    }
  }
}

TEST(FaultEngineTest, RepetitionEngineIsDeterministicUnderFaults) {
  FaultConfig cfg;
  cfg.seed = 8;
  cfg.crash_rate = 0.005;
  cfg.restart_rate = 0.01;
  cfg.loss_rate = 0.1;
  cfg.corruption_rate = 0.05;
  cfg.clock_skew_rate = 0.1;
  std::vector<NodeAction> actions = {
      NodeAction{0.2, Payload::kMessage, 0.3},
      NodeAction{0.1, Payload::kNoise, 0.5},
      NodeAction{0.0, Payload::kNoise, 1.0},
  };
  const JamSchedule jam = JamSchedule::blocking_fraction(512, 0.3);

  auto run_once = [&]() {
    FaultPlan plan(cfg);
    Rng rng(77);
    return run_repetition(512, actions, jam, rng, nullptr, CcaModel{}, &plan);
  };
  const auto r1 = run_once();
  const auto r2 = run_once();
  ASSERT_EQ(r1.obs.size(), r2.obs.size());
  for (std::size_t u = 0; u < r1.obs.size(); ++u) {
    EXPECT_EQ(r1.obs[u].sends, r2.obs[u].sends);
    EXPECT_EQ(r1.obs[u].listens, r2.obs[u].listens);
    EXPECT_EQ(r1.obs[u].clear, r2.obs[u].clear);
    EXPECT_EQ(r1.obs[u].messages, r2.obs[u].messages);
    EXPECT_EQ(r1.obs[u].nacks, r2.obs[u].nacks);
    EXPECT_EQ(r1.obs[u].noise, r2.obs[u].noise);
    EXPECT_EQ(r1.obs[u].first_message_slot, r2.obs[u].first_message_slot);
  }
}

TEST(FaultEngineTest, SlotwiseEngineIsDeterministicUnderFaults) {
  FaultConfig cfg;
  cfg.seed = 8;
  cfg.crash_rate = 0.005;
  cfg.restart_rate = 0.01;
  cfg.loss_rate = 0.1;
  cfg.clock_skew_rate = 0.1;
  std::vector<NodeAction> actions = {
      NodeAction{0.2, Payload::kMessage, 0.3},
      NodeAction{0.0, Payload::kNoise, 1.0},
  };

  class NoJam final : public SlotAdversary {
   public:
    bool jam(SlotIndex, std::span<const SlotActivity>) override {
      return false;
    }
  };

  auto run_once = [&]() {
    FaultPlan plan(cfg);
    NoJam adv;
    Rng rng(78);
    return run_repetition_slotwise(256, actions, adv, rng, CcaModel{}, &plan);
  };
  const auto r1 = run_once();
  const auto r2 = run_once();
  for (std::size_t u = 0; u < r1.rep.obs.size(); ++u) {
    EXPECT_EQ(r1.rep.obs[u].listens, r2.rep.obs[u].listens);
    EXPECT_EQ(r1.rep.obs[u].messages, r2.rep.obs[u].messages);
    EXPECT_EQ(r1.rep.obs[u].clear, r2.rep.obs[u].clear);
    EXPECT_EQ(r1.rep.obs[u].noise, r2.rep.obs[u].noise);
  }
}

TEST(FaultEngineTest, SkewedSenderIsHeardAsNoise) {
  FaultConfig cfg;
  cfg.seed = 2;
  cfg.clock_skew_rate = 1.0;  // everyone skewed: all payloads straddle slots
  FaultPlan plan(cfg);
  std::vector<NodeAction> actions = {
      NodeAction{1.0, Payload::kMessage, 0.0},
      NodeAction{0.0, Payload::kNoise, 1.0},
  };
  Rng rng(9);
  const auto r = run_repetition(128, actions, JamSchedule::none(), rng,
                                nullptr, CcaModel{}, &plan);
  EXPECT_EQ(r.obs[1].messages, 0u);
  EXPECT_EQ(r.obs[1].noise, r.obs[1].listens);
}

// ---------------------------------------------------------------------------
// Protocol-level graceful degradation.

TEST(FaultProtocolTest, BroadcastCompletesWithFifthOfFleetCrashed) {
  // The acceptance scenario: ~20% of nodes crash permanently mid-run.  The
  // healthy remainder must terminate (no hang, no contract failure), with
  // the crashed nodes reported in crashed_count.
  FaultConfig cfg;
  cfg.seed = 31;
  cfg.crash_rate = 0.002;
  cfg.crash_fraction = 0.2;
  FaultPlan plan(cfg);

  const BroadcastNParams params = BroadcastNParams::sim();
  NoJamAdversary adv;
  Rng rng(32);
  const auto r = run_broadcast_n(20, params, adv, rng, &plan);

  EXPECT_GT(r.crashed_count, 0u);
  EXPECT_LT(r.crashed_count, 20u);
  EXPECT_FALSE(r.hit_epoch_cap);
  std::uint64_t crashed_statuses = 0;
  for (const auto& node : r.nodes) {
    if (node.final_status == BroadcastStatus::kCrashed) {
      ++crashed_statuses;
    } else {
      // Every healthy node terminated by choice and was informed.
      EXPECT_EQ(node.final_status, BroadcastStatus::kTerminated);
      EXPECT_TRUE(node.informed);
    }
  }
  EXPECT_EQ(crashed_statuses, r.crashed_count);
  EXPECT_FALSE(r.all_terminated);  // crashed nodes are a failure, not a choice
}

TEST(FaultProtocolTest, CrashedNodesStopSpending) {
  FaultConfig cfg;
  cfg.seed = 41;
  cfg.crash_rate = 0.05;  // crash almost immediately
  cfg.crash_fraction = 1.0;
  FaultPlan plan(cfg);

  const BroadcastNParams params = BroadcastNParams::sim();
  NoJamAdversary adv;
  Rng rng(42);
  const auto r = run_broadcast_n(8, params, adv, rng, &plan);
  EXPECT_EQ(r.crashed_count, 8u);
  // Crashing within the first few hundred slots bounds every node's spend
  // to a few repetitions of activity.
  for (const auto& node : r.nodes) EXPECT_LT(node.cost, 2000u);
}

TEST(FaultProtocolTest, RestartedNodesRejoinAndGetInformed) {
  // Fast churn: nodes drop and return.  The run should still inform most of
  // the fleet (restarted nodes re-listen with a fresh S_u).
  FaultConfig cfg;
  cfg.seed = 51;
  cfg.crash_rate = 0.001;
  cfg.restart_rate = 0.01;  // outages ~100 slots
  FaultPlan plan(cfg);

  const BroadcastNParams params = BroadcastNParams::sim();
  NoJamAdversary adv;
  Rng rng(52);
  const auto r = run_broadcast_n(16, params, adv, rng, &plan);
  EXPECT_GE(r.informed_count, 12u);
}

TEST(FaultProtocolTest, OneToOneTimeoutReportsAborted) {
  // Permanent full-channel jamming with an effectively unbounded budget:
  // without a timeout Fig. 1 escalates epoch after epoch; with one it
  // aborts at a bounded latency and says so.
  OneToOneParams params = OneToOneParams::sim(0.01);
  params.timeout_slots = 1 << 14;
  FullDuelBlocker adv(Budget(Cost{1} << 40), 1.0);
  Rng rng(61);
  const auto r = run_one_to_one(params, adv, rng);
  EXPECT_TRUE(r.aborted);
  EXPECT_FALSE(r.delivered);
  EXPECT_FALSE(r.hit_epoch_cap);
  // The abort check runs at epoch boundaries, so overshoot is at most one
  // epoch (which doubles), bounding latency at ~3x the timeout.
  EXPECT_LE(r.latency, (SlotCount{1} << 16));
}

TEST(FaultProtocolTest, OneToOneNoTimeoutStillDelivers) {
  OneToOneParams params = OneToOneParams::sim(0.01);
  EXPECT_EQ(params.timeout_slots, 0u);
  DuelNoJam adv;
  Rng rng(62);
  const auto r = run_one_to_one(params, adv, rng);
  EXPECT_TRUE(r.delivered);
  EXPECT_FALSE(r.aborted);
}

TEST(FaultProtocolTest, BrownoutKillsNodesThatWouldHaveSurvived) {
  BroadcastNParams params = BroadcastNParams::sim();
  NoJamAdversary peace;
  Rng rng1(71);
  const auto calm = run_broadcast_n(12, params, peace, rng1);

  params.node_energy_budget = calm.max_cost * 2;  // comfortable margin
  {
    NoJamAdversary adv;
    Rng rng(72);
    const auto r = run_broadcast_n(12, params, adv, rng);
    EXPECT_EQ(r.dead_count, 0u);
  }
  {
    FaultConfig cfg;
    cfg.seed = 73;
    cfg.brownout_slot = 0;
    cfg.brownout_fraction = 1.0;
    cfg.brownout_factor = 0.01;  // batteries collapse to 1%
    FaultPlan plan(cfg);
    NoJamAdversary adv;
    Rng rng(72);
    const auto r = run_broadcast_n(12, params, adv, rng, &plan);
    EXPECT_GT(r.dead_count, 0u);
  }
}

TEST(FaultProtocolTest, BroadcastRunIsDeterministicUnderFaults) {
  FaultConfig cfg;
  cfg.seed = 81;
  cfg.crash_rate = 0.001;
  cfg.restart_rate = 0.005;
  cfg.loss_rate = 0.05;
  cfg.clock_skew_rate = 0.02;

  auto run_once = [&]() {
    FaultPlan plan(cfg);
    const BroadcastNParams params = BroadcastNParams::sim();
    SuffixBlockerAdversary adv(Budget(1 << 14), 0.8);
    Rng rng(82);
    return run_broadcast_n(12, params, adv, rng, &plan);
  };
  const auto r1 = run_once();
  const auto r2 = run_once();
  EXPECT_EQ(r1.latency, r2.latency);
  EXPECT_EQ(r1.max_cost, r2.max_cost);
  EXPECT_EQ(r1.crashed_count, r2.crashed_count);
  EXPECT_EQ(r1.informed_count, r2.informed_count);
  ASSERT_EQ(r1.nodes.size(), r2.nodes.size());
  for (std::size_t u = 0; u < r1.nodes.size(); ++u) {
    EXPECT_EQ(r1.nodes[u].cost, r2.nodes[u].cost);
    EXPECT_EQ(r1.nodes[u].final_status, r2.nodes[u].final_status);
  }
}

}  // namespace
}  // namespace rcb
