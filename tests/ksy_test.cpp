// Tests for the KSY golden-ratio baseline reconstruction.
#include "rcb/protocols/ksy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rcb/adversary/spoofing.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/rng/rng.hpp"

namespace rcb {
namespace {

TEST(KsyParamsTest, ProbabilitiesFollowGoldenRatioSplit) {
  KsyParams p;
  // Below epoch 8 the probabilities clamp at 1; test the clean regime.
  for (std::uint32_t i = 8; i < 18; ++i) {
    const double pa = p.alice_send_prob(i);
    const double pb = p.bob_listen_prob(i);
    // p_A * p_B * 2^i == c: constant expected deliveries per epoch.
    EXPECT_NEAR(pa * pb * static_cast<double>(pow2(i)), p.c, 1e-6);
    // Alice's expected epoch cost grows as 2^((phi-1) i).
    EXPECT_NEAR(pa * static_cast<double>(pow2(i)),
                p.c * std::exp2((kGoldenRatio - 1.0) * i), 1e-6);
  }
}

TEST(KsyTest, NoJamDeliversAndHaltsQuickly) {
  int delivered = 0;
  const int trials = 400;
  double cost = 0.0;
  for (int t = 0; t < trials; ++t) {
    KsyParams params;
    DuelNoJam adv;
    Rng rng = Rng::stream(100, t);
    const auto r = run_ksy(params, adv, rng);
    delivered += r.delivered;
    cost += static_cast<double>(r.max_cost());
    EXPECT_FALSE(r.hit_epoch_cap);
  }
  // The reconstruction fails with probability ~e^-c per quiet epoch.
  EXPECT_GE(static_cast<double>(delivered) / trials,
            1.0 - 2.0 * std::exp(-4.0));
  EXPECT_LT(cost / trials, 200.0);  // O(1) cost with no attack
}

TEST(KsyTest, SurvivesSymmetricBlocking) {
  int delivered = 0;
  double node_cost = 0.0, adv_cost = 0.0;
  const int trials = 150;
  for (int t = 0; t < trials; ++t) {
    KsyParams params;
    BothViewsSuffixBlocker adv(Budget(1 << 14), 0.6);
    Rng rng = Rng::stream(200, t);
    const auto r = run_ksy(params, adv, rng);
    delivered += r.delivered;
    node_cost += static_cast<double>(r.max_cost());
    adv_cost += static_cast<double>(r.adversary_cost);
  }
  // The reconstruction loses a few percent at budget-exhaustion epoch
  // boundaries (Alice's noise sample goes quiet one epoch before Bob's
  // unjammed view resumes); the real KSY algorithm is Las Vegas.
  EXPECT_GE(static_cast<double>(delivered) / trials, 0.85);
  EXPECT_GT(adv_cost / trials, 1000.0);
  // T^0.618 competitiveness: node cost well below adversary cost.
  EXPECT_LT(node_cost, 0.6 * adv_cost);
}

TEST(KsyTest, SpoofingDoesNotInflateCost) {
  // The KSY protocol ignores unauthenticated messages, so a nack spoofer
  // has no effect at all (it never even fires: there is no nack phase).
  double cost_plain = 0.0, cost_spoofed = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    KsyParams params;
    {
      DuelNoJam adv;
      Rng rng = Rng::stream(300, t);
      cost_plain += static_cast<double>(run_ksy(params, adv, rng).max_cost());
    }
    {
      SpoofingNackAdversary adv(Budget::unlimited());
      Rng rng = Rng::stream(300, t);
      cost_spoofed +=
          static_cast<double>(run_ksy(params, adv, rng).max_cost());
    }
  }
  EXPECT_NEAR(cost_spoofed / trials, cost_plain / trials,
              0.1 * cost_plain / trials + 1.0);
}

TEST(KsyTest, CostExponentIsAboveSqrtProtocol) {
  // KSY pays ~T^0.62 where Fig. 1 pays ~T^0.5; at equal budgets KSY's
  // absolute cost should be higher for large T (the paper's Theorem 1
  // improvement).  Loose check at two budgets.
  auto mean_cost = [&](Cost budget) {
    double sum = 0.0;
    const int trials = 100;
    for (int t = 0; t < trials; ++t) {
      KsyParams params;
      BothViewsSuffixBlocker adv(Budget(budget), 0.6);
      Rng rng = Rng::stream(400 + budget, t);
      sum += static_cast<double>(run_ksy(params, adv, rng).max_cost());
    }
    return sum / trials;
  };
  const double c_small = mean_cost(Cost{1} << 12);
  const double c_big = mean_cost(Cost{1} << 16);
  // Growth by 2^4 in budget: T^0.618 predicts ~5.5x, allow [2, 14].
  EXPECT_GT(c_big / c_small, 2.0);
  EXPECT_LT(c_big / c_small, 14.0);
}

TEST(KsyTest, ResultInvariants) {
  for (int t = 0; t < 100; ++t) {
    KsyParams params;
    SymmetricRandomDuelJammer adv(Budget(4000), 0.3);
    Rng rng = Rng::stream(500, t);
    const auto r = run_ksy(params, adv, rng);
    EXPECT_LE(r.alice_cost, r.latency);
    EXPECT_LE(r.bob_cost, r.latency);
    EXPECT_GE(r.final_epoch, params.first_epoch);
  }
}

}  // namespace
}  // namespace rcb
