// Tests for the math helpers.
#include "rcb/common/mathutil.hpp"

#include <gtest/gtest.h>

namespace rcb {
namespace {

TEST(MathUtilTest, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(UINT64_C(1) << 63), 63u);
}

TEST(MathUtilTest, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(MathUtilTest, Pow2) {
  EXPECT_EQ(pow2(0), 1u);
  EXPECT_EQ(pow2(10), 1024u);
  EXPECT_EQ(pow2(63), UINT64_C(1) << 63);
}

TEST(MathUtilDeathTest, Pow2OverflowRejected) {
  EXPECT_DEATH(pow2(64), "precondition");
}

TEST(MathUtilDeathTest, Log2OfZeroRejected) {
  EXPECT_DEATH(floor_log2(0), "precondition");
  EXPECT_DEATH(ceil_log2(0), "precondition");
}

TEST(MathUtilTest, ClampProbability) {
  EXPECT_DOUBLE_EQ(clamp_probability(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(clamp_probability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp_probability(0.42), 0.42);
  EXPECT_DOUBLE_EQ(clamp_probability(1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp_probability(7.0), 1.0);
}

TEST(MathUtilTest, ToSlotCount) {
  EXPECT_EQ(to_slot_count(-1.0), 0u);
  EXPECT_EQ(to_slot_count(0.0), 0u);
  EXPECT_EQ(to_slot_count(41.9), 41u);
  EXPECT_EQ(to_slot_count(1e30), UINT64_MAX);
}

TEST(MathUtilTest, LnInverse) {
  EXPECT_NEAR(ln_inverse(0.01), std::log(100.0), 1e-12);
  EXPECT_NEAR(ln_inverse(0.5), std::log(2.0), 1e-12);
}

TEST(MathUtilDeathTest, LnInverseDomainRejected) {
  EXPECT_DEATH(ln_inverse(0.0), "precondition");
  EXPECT_DEATH(ln_inverse(1.0), "precondition");
}

TEST(MathUtilTest, GoldenRatioIdentity) {
  // phi^2 = phi + 1, and phi - 1 = 1/phi (the Theorem 5 exponent).
  EXPECT_NEAR(kGoldenRatio * kGoldenRatio, kGoldenRatio + 1.0, 1e-12);
  EXPECT_NEAR(kGoldenRatio - 1.0, 1.0 / kGoldenRatio, 1e-12);
}

}  // namespace
}  // namespace rcb
