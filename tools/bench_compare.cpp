// bench_compare — diff two BENCH_*.json perf reports and gate regressions.
//
// The perf benches (bench_m1_micro, bench_m2_engine_scaling) emit
// machine-readable reports in the bench_util.hpp schema.  This tool matches
// entries across two such files by (name, config) identity and compares a
// metric:
//
//   bench_compare --baseline=bench/baselines/BENCH_m1_baseline.json
//                 --current=build/BENCH_m1.json --threshold=0.25
//
// Exit codes: 0 = within threshold (or --warn_only), 1 = usage/parse error,
// 2 = at least one regression beyond the threshold.  tools/ci.sh runs this
// in warn-only mode against the committed baseline so perf drift is visible
// on every CI run without flaking on machine noise.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "rcb/cli/flags.hpp"
#include "rcb/cli/json_parse.hpp"
#include "rcb/stats/table.hpp"

namespace rcb {
namespace {

struct Entry {
  std::string key;  ///< name + serialized config (the match identity)
  double wall_ms = 0;
  double slots_per_sec = 0;
  double events_per_sec = 0;
};

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  std::fclose(f);
  return true;
}

/// Loads a report; returns false after a diagnostic on any malformed input.
bool load_report(const std::string& path, std::map<std::string, Entry>& out) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    return false;
  }
  const JsonParseResult parsed = json_parse(text);
  if (!parsed.ok) {
    std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(),
                 parsed.error.c_str());
    return false;
  }
  const JsonValue* schema = parsed.value.find("rcb_bench");
  if (schema == nullptr || !schema->is_number() ||
      schema->as_number() != 1.0) {
    std::fprintf(stderr, "%s: not an rcb_bench schema-1 report\n",
                 path.c_str());
    return false;
  }
  const JsonValue* entries = parsed.value.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    std::fprintf(stderr, "%s: missing 'entries' array\n", path.c_str());
    return false;
  }
  for (const JsonValue& v : entries->as_array()) {
    const JsonValue* name = v.find("name");
    if (name == nullptr || !name->is_string()) {
      std::fprintf(stderr, "%s: entry without a string 'name'\n",
                   path.c_str());
      return false;
    }
    Entry e;
    e.key = name->as_string();
    if (const JsonValue* config = v.find("config");
        config != nullptr && config->is_object()) {
      for (const auto& [k, val] : config->as_object()) {
        e.key += "|" + k + "=" +
                 (val.is_number() ? Table::num(val.as_number(), 6) : "?");
      }
    }
    auto metric = [&](const char* field, double& slot) {
      const JsonValue* m = v.find(field);
      if (m != nullptr && m->is_number()) slot = m->as_number();
    };
    metric("wall_ms", e.wall_ms);
    metric("slots_per_sec", e.slots_per_sec);
    metric("events_per_sec", e.events_per_sec);
    out[e.key] = e;
  }
  return true;
}

double metric_of(const Entry& e, const std::string& metric) {
  if (metric == "wall_ms") return e.wall_ms;
  if (metric == "slots_per_sec") return e.slots_per_sec;
  return e.events_per_sec;
}

int run_tool(int argc, const char* const* argv) {
  FlagSet flags(
      "bench_compare: diff two BENCH_*.json perf reports and fail above a "
      "regression threshold");
  flags.add_string("baseline", "", "baseline report (the reference run)");
  flags.add_string("current", "", "current report (the run under test)");
  flags.add_string("metric", "wall_ms",
                   "wall_ms (lower is better) | slots_per_sec | "
                   "events_per_sec (higher is better)");
  flags.add_double("threshold", 0.25,
                   "maximum tolerated relative regression (0.25 = 25%)");
  flags.add_bool("warn_only", false,
                 "report regressions but always exit 0 (CI soft gate)");
  if (!flags.parse(argc, argv)) return 1;

  const std::string metric = flags.get_string("metric");
  if (metric != "wall_ms" && metric != "slots_per_sec" &&
      metric != "events_per_sec") {
    std::fprintf(stderr, "unknown --metric '%s'\n", metric.c_str());
    return 1;
  }
  const double threshold = flags.get_double("threshold");
  if (flags.get_string("baseline").empty() ||
      flags.get_string("current").empty()) {
    std::fprintf(stderr, "--baseline and --current are required\n");
    return 1;
  }

  std::map<std::string, Entry> baseline, current;
  if (!load_report(flags.get_string("baseline"), baseline)) return 1;
  if (!load_report(flags.get_string("current"), current)) return 1;

  const bool lower_is_better = metric == "wall_ms";
  Table table({"entry", "baseline", "current", "change", "verdict"});
  std::size_t compared = 0, regressions = 0, improvements = 0, skipped = 0;
  std::vector<std::string> baseline_only, current_only;
  for (const auto& [key, base] : baseline) {
    const auto it = current.find(key);
    if (it == current.end()) {
      baseline_only.push_back(key);
      continue;
    }
    const double b = metric_of(base, metric);
    const double c = metric_of(it->second, metric);
    if (b <= 0.0 || c <= 0.0) {  // metric not applicable to this entry
      ++skipped;
      continue;
    }
    ++compared;
    // Positive `change` always means "got worse by this fraction".
    const double change = lower_is_better ? c / b - 1.0 : b / c - 1.0;
    const char* verdict = "ok";
    if (change > threshold) {
      verdict = "REGRESSION";
      ++regressions;
    } else if (change < -threshold) {
      verdict = "improved";
      ++improvements;
    }
    table.add_row({key, Table::num(b), Table::num(c),
                   Table::num(change * 100.0, 3) + "%", verdict});
  }
  table.print(std::cout);

  for (const auto& [key, e] : current) {
    (void)e;
    if (baseline.find(key) == baseline.end()) current_only.push_back(key);
  }
  // One-sided entries are loud warnings, not silent skips: a renamed bench
  // or a stale baseline would otherwise pass the gate with no coverage.
  for (const std::string& key : baseline_only) {
    std::fprintf(stderr,
                 "warning: baseline-only entry '%s' (removed or renamed? "
                 "refresh the baseline)\n",
                 key.c_str());
  }
  for (const std::string& key : current_only) {
    std::fprintf(stderr,
                 "warning: current-only entry '%s' (new bench not in the "
                 "baseline; add it on the next refresh)\n",
                 key.c_str());
  }
  std::printf(
      "\nmetric %s: %zu compared, %zu regressions, %zu improvements "
      "(threshold %.0f%%); %zu baseline-only, %zu current-only entries\n",
      metric.c_str(), compared, regressions, improvements, threshold * 100.0,
      baseline_only.size(), current_only.size());
  if (compared == 0) {
    std::fprintf(stderr, "no comparable entries — wrong file pair?\n");
    return flags.get_bool("warn_only") ? 0 : 1;
  }
  if (regressions > 0 && !flags.get_bool("warn_only")) return 2;
  return 0;
}

}  // namespace
}  // namespace rcb

int main(int argc, char** argv) { return rcb::run_tool(argc, argv); }
