// rcb_sweep — one-dimensional parameter sweeps over any protocol/adversary
// combination, with CSV output and an automatic power-law fit.
//
//   rcb_sweep --protocol=broadcast --adversary=suffix --q=0.9 ...
//       --sweep=budget --values=16384,65536,262144,1048576 --trials=20
//
//   rcb_sweep --protocol=one_to_one --adversary=full_duel ...
//       --sweep=eps --values=0.3,0.1,0.03,0.01 --fit=none
//
// Sweepable flags: budget, q, rate, n, eps, trials.  The fit (when the
// sweep variable and the chosen y-metric are positive) reports the fitted
// exponent of y ~ x^alpha — the quantity the paper's theorems are about.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "rcb/cli/flags.hpp"
#include "rcb/runtime/transport_socket.hpp"
#include "rcb/stats/regression.hpp"
#include "rcb/stats/table.hpp"
#include "sim_runner.hpp"

namespace rcb {
namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> parts;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) parts.push_back(item);
  }
  return parts;
}

int run_tool(int argc, const char* const* argv) {
  FlagSet flags("rcb_sweep: 1-D parameter sweeps with power-law fits");
  flags.add_string("protocol", "one_to_one",
                   "one_to_one | ksy | combined | broadcast | naive | sqrt | "
                   "mc_broadcast");
  flags.add_string("adversary", "none", "see rcb_sim --help");
  flags.add_int("budget", 16384, "adversary energy budget", 0);
  flags.add_double("q", 0.6, "blocking fraction");
  flags.add_double("rate", 0.3, "random-jammer rate");
  flags.add_int("n", 32, "number of nodes", 1);
  flags.add_double("eps", 0.01, "Fig. 1 failure parameter");
  flags.add_int("trials", 50, "Monte-Carlo trials per sweep point", 1);
  flags.add_int("seed", 1, "master seed", 0);
  flags.add_int("max_epoch_extra", 0, "epoch cap offset (0 = default)", 0);
  flags.add_int("channels", 1,
                "channel count C (mc_broadcast protocol only)", 1, 64);
  flags.add_string("sweep", "budget",
                   "flag to sweep: budget | q | rate | n | eps | trials | "
                   "channels");
  flags.add_string("values", "4096,16384,65536",
                   "comma-separated sweep values");
  flags.add_string("metric", "max_cost",
                   "y for the fit: max_cost | mean_cost | latency");
  flags.add_string("fit", "power",
                   "power (fit y ~ x^alpha over the sweep) | none");
  flags.add_string("format", "csv", "csv | table");
  flags.add_string("checkpoint_dir", "",
                   "journal completed trials under this directory (one "
                   "point_<i> subdirectory per sweep point) so a killed "
                   "sweep can be resumed (see --resume)");
  flags.add_string("resume", "",
                   "resume from the checkpoints under this directory; "
                   "points (and trials within a point) already journaled "
                   "are not re-run");
  flags.add_double("trial_timeout", 0.0,
                   "wall-clock watchdog per trial, seconds (0 = off)");
  flags.add_int("trial_slot_budget", 0,
                "deterministic per-trial budget in simulated slots (0 = off)",
                0);
  flags.add_int("max_retries", 0,
                "retries (reseeded) for trials dying on contract failures "
                "or exceptions",
                0);
  flags.add_int("threads", 0,
                "worker threads for the sweep scheduler (0 = all CPUs in "
                "the process affinity mask); with --workers, threads per "
                "worker process",
                0, 4096);
  flags.add_int("workers", 0,
                "run the sweep across this many worker *processes* over "
                "sharded trial ranges, with crash detection and shard "
                "reassignment (0 = in-process; requires --checkpoint_dir "
                "or --resume)",
                0, 1024);
  flags.add_string("shard_worker", "",
                   "internal: run as the shard worker for the sweep root "
                   "at this path (spawned by the --workers coordinator)");
  flags.add_int("shard_id", 0, "internal: shard index for --shard_worker",
                0);
  flags.add_string("transport", "local",
                   "worker transport for --workers: local (fork/exec on "
                   "this machine) | socket (TCP control plane; workers "
                   "attach with --attach)");
  flags.add_string("attach", "",
                   "run as a socket-attached sweep worker: connect to the "
                   "coordinator at host:port, run assigned shards, "
                   "reconnect with backoff if the coordinator restarts");
  flags.add_string("listen", "127.0.0.1:0",
                   "--transport=socket listener address (numeric IPv4; "
                   "port 0 = ephemeral, printed to stderr)");
  flags.add_int("lease_timeout", 10000,
                "revoke and reassign a worker's shard after this many ms "
                "of silence (0 = no watchdog; must exceed 2x "
                "--heartbeat_interval)",
                0, 3600000);
  flags.add_int("heartbeat_interval", 100,
                "worker heartbeat period in ms (lease files on local "
                "transport, status frames on socket)",
                1, 60000);
  flags.add_int("net_fault_seed", 0,
                "seed for deterministic control-plane fault injection "
                "(0 = off; chaos harness only)",
                0);
  flags.add_double("net_fault_rate", 0.02,
                   "per-frame fault probability when --net_fault_seed is "
                   "set (drop/delay/duplicate/reorder, close at rate/5)");
  flags.add_bool("print_digests", false,
                 "print '# digest point_<i> <hex16>' per point (chaos "
                 "harness: digests are bit-identical across thread counts "
                 "and kill/resume)");
  if (!flags.parse(argc, argv)) return 1;

  // Worker mode: the coordinator re-enters this binary with the internal
  // --shard_worker flag; every other flag is ignored (the on-disk shard
  // spec is authoritative, mirroring manifest-wins resume semantics).
  if (const std::string worker_root = flags.get_string("shard_worker");
      !worker_root.empty()) {
    return run_shard_worker(worker_root,
                            static_cast<std::size_t>(flags.get_int("shard_id")));
  }

  // Socket worker mode: attach to a remote coordinator and serve shard
  // assignments until told to shut down (every other flag is ignored; the
  // coordinator's on-disk shard spec is authoritative).
  if (const std::string attach = flags.get_string("attach"); !attach.empty()) {
    AttachWorkerOptions aopt;
    if (const std::string err = parse_host_port(attach, aopt.host, aopt.port);
        !err.empty()) {
      std::fprintf(stderr, "--attach: %s\n", err.c_str());
      return 1;
    }
    if (aopt.port == 0) {
      std::fprintf(stderr, "--attach: port 0 is not a coordinator address\n");
      return 1;
    }
    return run_attached_worker(aopt);
  }

  tools::SimConfig base;
  base.protocol = flags.get_string("protocol");
  base.adversary = flags.get_string("adversary");
  base.budget = static_cast<Cost>(flags.get_int("budget"));
  base.q = flags.get_double("q");
  base.rate = flags.get_double("rate");
  base.n = static_cast<std::uint32_t>(flags.get_int("n"));
  base.eps = flags.get_double("eps");
  base.trials = static_cast<std::size_t>(flags.get_int("trials"));
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  base.max_epoch_extra =
      static_cast<std::uint32_t>(flags.get_int("max_epoch_extra"));
  base.channels = static_cast<std::uint32_t>(flags.get_int("channels"));

  const std::string sweep = flags.get_string("sweep");
  const std::string metric = flags.get_string("metric");
  auto values = split_csv(flags.get_string("values"));
  if (values.empty()) {
    std::fprintf(stderr, "--values is empty\n");
    return 1;
  }

  SupervisorOptions sup_base;
  sup_base.checkpoint_dir = flags.get_string("checkpoint_dir");
  if (const std::string resume_dir = flags.get_string("resume");
      !resume_dir.empty()) {
    sup_base.checkpoint_dir = resume_dir;
    sup_base.resume = true;
  }
  sup_base.trial_timeout_sec = flags.get_double("trial_timeout");
  sup_base.trial_slot_budget =
      static_cast<SlotCount>(flags.get_int("trial_slot_budget"));
  sup_base.max_retries =
      static_cast<std::uint32_t>(flags.get_int("max_retries"));
  const bool supervised = !sup_base.checkpoint_dir.empty() ||
                          sup_base.trial_timeout_sec > 0.0 ||
                          sup_base.trial_slot_budget != 0 ||
                          sup_base.max_retries != 0;
  if (supervised) install_sweep_signal_handlers();

  // Build every sweep point up front: the scheduler flattens all
  // (point, trial) pairs into one submission, so trials of point i overlap
  // with trials of point i+1 (no per-point pool barrier).
  std::vector<tools::SimConfig> cfgs;
  std::vector<double> point_x;
  cfgs.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::string& value = values[i];
    tools::SimConfig cfg = base;
    cfg.seed = base.seed + static_cast<std::uint64_t>(i) * 1000003;
    char* end = nullptr;
    const double x = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      std::fprintf(stderr, "sweep value '%s' is not numeric\n", value.c_str());
      return 1;
    }
    if (sweep == "budget") {
      cfg.budget = static_cast<Cost>(x);
    } else if (sweep == "q") {
      cfg.q = x;
    } else if (sweep == "rate") {
      cfg.rate = x;
    } else if (sweep == "n") {
      cfg.n = static_cast<std::uint32_t>(x);
    } else if (sweep == "eps") {
      cfg.eps = x;
    } else if (sweep == "trials") {
      cfg.trials = static_cast<std::size_t>(x);
    } else if (sweep == "channels") {
      cfg.channels = static_cast<std::uint32_t>(x);
    } else {
      std::fprintf(stderr, "unknown sweep flag '%s'\n", sweep.c_str());
      return 1;
    }
    cfgs.push_back(cfg);
    point_x.push_back(x);
  }

  const auto workers = static_cast<std::size_t>(flags.get_int("workers"));
  const std::string transport_name = flags.get_string("transport");
  std::vector<tools::SimAggregate> aggs;
  if (workers > 0 || transport_name == "socket") {
    // Multi-process mode: shard the (point, trial) space across worker
    // processes with crash detection + reassignment; the merged per-point
    // digests are bit-identical to the in-process path below.
    if (sup_base.checkpoint_dir.empty()) {
      std::fprintf(stderr,
                   "--workers requires --checkpoint_dir or --resume (shard "
                   "journals need a sweep root)\n");
      return 1;
    }
    tools::ShardedTransportOptions topt;
    topt.lease_timeout_sec = flags.get_int("lease_timeout") / 1000.0;
    topt.heartbeat_interval_sec = flags.get_int("heartbeat_interval") / 1000.0;
    if (const std::string err = validate_lease_config(
            topt.lease_timeout_sec, topt.heartbeat_interval_sec);
        !err.empty()) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    if (transport_name == "socket") {
      topt.transport = TransportKind::kSocket;
      if (const std::string err =
              parse_host_port(flags.get_string("listen"), topt.listen_host,
                              topt.listen_port);
          !err.empty()) {
        std::fprintf(stderr, "--listen: %s\n", err.c_str());
        return 1;
      }
      // --workers=0 with the socket transport means "external fleet": park
      // until workers attach with --attach instead of forking our own.
      topt.spawn_workers = workers > 0;
      topt.on_listen = [](std::uint16_t port) {
        std::fprintf(stderr, "# listening on port %u (attach workers with "
                     "--attach=<host>:%u)\n", port, port);
      };
    } else if (transport_name != "local") {
      std::fprintf(stderr, "unknown --transport '%s' (local | socket)\n",
                   transport_name.c_str());
      return 1;
    }
    if (const auto seed =
            static_cast<std::uint64_t>(flags.get_int("net_fault_seed"));
        seed != 0) {
      topt.net_faults =
          NetFaultConfig::chaos(seed, flags.get_double("net_fault_rate"));
    }
    tools::ShardedSweepOutcome sharded = tools::run_sweep_sharded(
        cfgs, sup_base, sup_base.checkpoint_dir, workers,
        static_cast<int>(flags.get_int("threads")), topt);
    if (sharded.interrupted) {
      std::fprintf(stderr,
                   "interrupted with %zu shards complete; resume with "
                   "--resume=%s --workers=%zu\n",
                   sharded.shards_completed, sup_base.checkpoint_dir.c_str(),
                   workers);
      return 130;
    }
    if (!sharded.ok) {
      std::fprintf(stderr, "%s\n", sharded.error.c_str());
      return 1;
    }
    if (sharded.worker_restarts > 0) {
      std::fprintf(stderr, "# %zu worker restart(s) during the sweep\n",
                   sharded.worker_restarts);
    }
    aggs = std::move(sharded.points);
  } else {
    const auto thread_count =
        static_cast<std::size_t>(flags.get_int("threads"));
    std::optional<ThreadPool> own_pool;
    if (thread_count != 0) own_pool.emplace(thread_count);
    ThreadPool& pool = own_pool ? *own_pool : ThreadPool::global();
    aggs = tools::run_sweep_points(cfgs, sup_base, sup_base.checkpoint_dir,
                                   pool);
  }

  // A setup failure aborts the sweep before any trial runs; the failing
  // point carries the error (earlier points report !valid with no error).
  for (const tools::SimAggregate& agg : aggs) {
    if (!agg.valid && !agg.error.empty()) {
      std::fprintf(stderr, "%s\n", agg.error.c_str());
      return 1;
    }
  }

  Table table({sweep, "success", "max cost", "mean cost", "T (mean)",
               "latency"});
  std::vector<double> xs, ys;

  // On --resume the on-disk spec/manifests win, so a resumed sweep may have
  // a different point count than the current --values; label by index then.
  for (std::size_t i = 0; i < aggs.size(); ++i) {
    if (i >= values.size()) {
      values.push_back("point_" + std::to_string(i));
      point_x.push_back(0.0);
    }
    const tools::SimAggregate& agg = aggs[i];
    if (agg.interrupted) {
      // With pipelining, points after the first incomplete one may also be
      // partial; everything journaled so far is durable and resumable.
      std::fprintf(stderr,
                   "interrupted at sweep point %zu (%zu/%zu trials "
                   "journaled); resume with --resume=%s\n",
                   i, agg.completed_trials, agg.scenario.trials,
                   sup_base.checkpoint_dir.c_str());
      return 130;
    }
    if (!supervised && (agg.timed_out_rate > 0.0 || agg.failed_rate > 0.0)) {
      // Without checkpointing/retries the user asked for raw trials; a
      // quarantined trial would silently skew the aggregate, so fail loudly
      // (the RCB_REPRO record is already on stderr).
      std::fprintf(stderr,
                   "sweep point %zu: trials failed (see RCB_REPRO above)\n",
                   i);
      return 1;
    }
    table.add_row({values[i], Table::num(agg.success_rate, 4),
                   Table::num(agg.max_cost.mean),
                   Table::num(agg.mean_cost.mean),
                   Table::num(agg.adversary_cost.mean),
                   Table::num(agg.latency.mean)});

    double y = agg.max_cost.mean;
    if (metric == "mean_cost") {
      y = agg.mean_cost.mean;
    } else if (metric == "latency") {
      y = agg.latency.mean;
    }
    // Fit against realised T when sweeping the budget (the theorems are
    // about T, and a budget may not be fully spent).
    const double fit_x =
        sweep == "budget" ? agg.adversary_cost.mean : point_x[i];
    if (fit_x > 0.0 && y > 0.0) {
      xs.push_back(fit_x);
      ys.push_back(y);
    }
  }

  if (flags.get_bool("print_digests")) {
    for (std::size_t i = 0; i < aggs.size(); ++i) {
      std::printf("# digest point_%zu %016llx\n", i,
                  static_cast<unsigned long long>(aggs[i].aggregate_digest));
    }
  }

  if (flags.get_string("format") == "table") {
    table.print(std::cout);
  } else {
    table.print_csv(std::cout);
  }

  if (flags.get_string("fit") == "power" && xs.size() >= 2) {
    const PowerLawFit fit = fit_power_law(xs, ys);
    std::printf("# fit: %s ~ %s^%.3f (R^2 %.3f)\n", metric.c_str(),
                sweep.c_str(), fit.exponent, fit.r_squared);
  }
  return 0;
}

}  // namespace
}  // namespace rcb

int main(int argc, char** argv) { return rcb::run_tool(argc, argv); }
