// rcb_replay — deterministic re-execution of a crash-repro record.
//
// When a contract fails inside a Monte-Carlo trial, the process emits a
// one-line machine-readable record to stderr:
//
//   RCB_REPRO {"rcb_repro":1,...,"master_seed":1,"trial":17,"scenario":{...}}
//
// Feed that line (or a file containing it) back through this tool to re-run
// the exact failing trial:
//
//   rcb_replay --record=crash.json            # re-run the recorded trial
//   rcb_replay --record=crash.json --verify   # run it twice, compare digests
//
// The tool re-executes the scenario's named trial and prints the outcome
// (including the FNV-1a trajectory digest).  With --verify it executes the
// trial twice and exits non-zero unless both digests agree — the
// bit-identical-replay guarantee the simulator's determinism contract
// promises.  Expect the re-run to hit the same contract failure the record
// came from; that is the point: the crash is now a deterministic unit
// reproduction instead of a one-in-a-million Monte-Carlo event.
#include <cstdio>
#include <string>

#include "rcb/cli/flags.hpp"
#include "rcb/runtime/scenario.hpp"

namespace rcb {
namespace {

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  std::fclose(f);
  return true;
}

void print_outcome(const TrialOutcome& out) {
  std::printf("max_cost        %.0f\n", out.max_cost);
  std::printf("mean_cost       %.2f\n", out.mean_cost);
  std::printf("adversary_cost  %.0f\n", out.adversary_cost);
  std::printf("latency         %.0f\n", out.latency);
  std::printf("success         %s\n", out.success ? "true" : "false");
  std::printf("aborted         %s\n", out.aborted ? "true" : "false");
  std::printf("dead_count      %llu\n",
              static_cast<unsigned long long>(out.dead_count));
  std::printf("crashed_count   %llu\n",
              static_cast<unsigned long long>(out.crashed_count));
  std::printf("digest          %016llx\n",
              static_cast<unsigned long long>(out.digest));
}

int run_tool(int argc, const char* const* argv) {
  FlagSet flags(
      "rcb_replay: re-execute the exact trial named by an RCB_REPRO "
      "crash-repro record, bit-identically");
  flags.add_string("record", "",
                   "path to a file holding the repro record (a full RCB_REPRO "
                   "stderr line or bare JSON); '-' reads stdin");
  flags.add_int("trial", -1,
                "override the trial index to run (-1 = the recorded one)");
  flags.add_bool("verify", false,
                 "run the trial twice and fail unless the trajectory digests "
                 "are bit-identical");
  if (!flags.parse(argc, argv)) return 1;

  const std::string path = flags.get_string("record");
  if (path.empty()) {
    std::fprintf(stderr, "--record is required (see --help)\n");
    return 1;
  }
  std::string text;
  if (path == "-") {
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, stdin)) > 0) {
      text.append(buf, got);
    }
  } else if (!read_file(path, text)) {
    std::fprintf(stderr, "cannot open record file '%s'\n", path.c_str());
    return 1;
  }

  const ReproParseResult parsed = repro_record_from_json(text);
  if (!parsed.ok) {
    std::fprintf(stderr, "bad repro record: %s\n", parsed.error.c_str());
    return 1;
  }
  const ReproRecord& rec = parsed.record;
  if (!rec.has_scenario) {
    std::fprintf(stderr,
                 "record has no scenario (the failing code ran outside a "
                 "ReproScope); cannot replay\n");
    return 1;
  }
  const std::string invalid = validate_scenario(rec.scenario);
  if (!invalid.empty()) {
    std::fprintf(stderr, "recorded scenario is invalid: %s\n",
                 invalid.c_str());
    return 1;
  }

  const std::int64_t trial_override = flags.get_int("trial");
  const std::uint64_t trial =
      trial_override >= 0 ? static_cast<std::uint64_t>(trial_override)
                          : rec.trial;

  std::printf("replaying %s vs %s, seed %llu, trial %llu",
              rec.scenario.protocol.c_str(), rec.scenario.adversary.c_str(),
              static_cast<unsigned long long>(rec.scenario.seed),
              static_cast<unsigned long long>(trial));
  if (!rec.expr.empty()) {
    std::printf("  (original failure: %s at %s:%d)", rec.expr.c_str(),
                rec.file.c_str(), rec.line);
  }
  std::printf("\n");

  const TrialOutcome first = run_scenario_trial(rec.scenario, trial);
  print_outcome(first);

  if (flags.get_bool("verify")) {
    const TrialOutcome second = run_scenario_trial(rec.scenario, trial);
    if (second.digest != first.digest) {
      std::fprintf(stderr,
                   "DIGEST MISMATCH: %016llx vs %016llx — replay is not "
                   "deterministic\n",
                   static_cast<unsigned long long>(first.digest),
                   static_cast<unsigned long long>(second.digest));
      return 2;
    }
    std::printf("verified: second run reproduced digest %016llx\n",
                static_cast<unsigned long long>(first.digest));
  }
  return 0;
}

}  // namespace
}  // namespace rcb

int main(int argc, char** argv) { return rcb::run_tool(argc, argv); }
