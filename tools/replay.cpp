// rcb_replay — deterministic re-execution of a crash-repro record.
//
// When a contract fails inside a Monte-Carlo trial, the process emits a
// one-line machine-readable record to stderr:
//
//   RCB_REPRO {"rcb_repro":1,...,"master_seed":1,"trial":17,"scenario":{...}}
//
// Feed that line (or a file containing it) back through this tool to re-run
// the exact failing trial:
//
//   rcb_replay --record=crash.json            # re-run the recorded trial
//   rcb_replay --record=crash.json --verify   # run it twice, compare digests
//
// The tool re-executes the scenario's named trial and prints the outcome
// (including the FNV-1a trajectory digest).  With --verify it executes the
// trial twice and exits non-zero unless both digests agree — the
// bit-identical-replay guarantee the simulator's determinism contract
// promises.  Expect the re-run to hit the same contract failure the record
// came from; that is the point: the crash is now a deterministic unit
// reproduction instead of a one-in-a-million Monte-Carlo event.
// Exit codes: 0 replayed (and verified, if asked); 1 usage/parse errors;
// 2 nondeterministic replay under --verify; 3 the record's embedded
// scenario does not match its recorded scenario_digest (tampered or stale
// record — replaying it would "reproduce" the wrong experiment).
#include <cstdio>
#include <string>

#include "rcb/cli/flags.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/runtime/cancel.hpp"
#include "rcb/runtime/scenario.hpp"

namespace rcb {
namespace {

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  std::fclose(f);
  return true;
}

void print_outcome(const TrialOutcome& out) {
  std::printf("max_cost        %.0f\n", out.max_cost);
  std::printf("mean_cost       %.2f\n", out.mean_cost);
  std::printf("adversary_cost  %.0f\n", out.adversary_cost);
  std::printf("latency         %.0f\n", out.latency);
  std::printf("success         %s\n", out.success ? "true" : "false");
  std::printf("aborted         %s\n", out.aborted ? "true" : "false");
  std::printf("dead_count      %llu\n",
              static_cast<unsigned long long>(out.dead_count));
  std::printf("crashed_count   %llu\n",
              static_cast<unsigned long long>(out.crashed_count));
  std::printf("digest          %016llx\n",
              static_cast<unsigned long long>(out.digest));
}

int run_tool(int argc, const char* const* argv) {
  FlagSet flags(
      "rcb_replay: re-execute the exact trial named by an RCB_REPRO "
      "crash-repro record, bit-identically");
  flags.add_string("record", "",
                   "path to a file holding the repro record (a full RCB_REPRO "
                   "stderr line or bare JSON); '-' reads stdin");
  flags.add_int("trial", -1,
                "override the trial index to run (-1 = the recorded one)");
  flags.add_bool("verify", false,
                 "run the trial twice and fail unless the trajectory digests "
                 "are bit-identical");
  flags.add_int("slot_budget", 0,
                "cancel the replay after this many simulated slots (0 = "
                "unlimited); bounds replay of records from trials the sweep "
                "watchdog quarantined as stuck");
  if (!flags.parse(argc, argv)) return 1;

  const std::string path = flags.get_string("record");
  if (path.empty()) {
    std::fprintf(stderr, "--record is required (see --help)\n");
    return 1;
  }
  std::string text;
  if (path == "-") {
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, stdin)) > 0) {
      text.append(buf, got);
    }
  } else if (!read_file(path, text)) {
    std::fprintf(stderr, "cannot open record file '%s'\n", path.c_str());
    return 1;
  }

  const ReproParseResult parsed = repro_record_from_json(text);
  if (!parsed.ok) {
    std::fprintf(stderr, "bad repro record: %s\n", parsed.error.c_str());
    return 1;
  }
  const ReproRecord& rec = parsed.record;
  if (!rec.has_scenario) {
    std::fprintf(stderr,
                 "record has no scenario (the failing code ran outside a "
                 "ReproScope); cannot replay\n");
    return 1;
  }
  const std::string invalid = validate_scenario(rec.scenario);
  if (!invalid.empty()) {
    std::fprintf(stderr, "recorded scenario is invalid: %s\n",
                 invalid.c_str());
    return 1;
  }
  if (rec.has_scenario_digest) {
    const std::uint64_t actual = scenario_digest(rec.scenario);
    if (actual != rec.scenario_digest) {
      std::fprintf(stderr,
                   "SCENARIO DIGEST MISMATCH: record was emitted for scenario "
                   "%s but embeds a scenario hashing to %s — the record was "
                   "edited after emission (or spliced from another run); "
                   "refusing to replay it as a reproduction\n",
                   to_hex16(rec.scenario_digest).c_str(),
                   to_hex16(actual).c_str());
      return 3;
    }
  }

  const std::int64_t trial_override = flags.get_int("trial");
  const std::uint64_t trial =
      trial_override >= 0 ? static_cast<std::uint64_t>(trial_override)
                          : rec.trial;

  std::printf("replaying %s vs %s, seed %llu, trial %llu",
              rec.scenario.protocol.c_str(), rec.scenario.adversary.c_str(),
              static_cast<unsigned long long>(rec.scenario.seed),
              static_cast<unsigned long long>(trial));
  if (!rec.expr.empty()) {
    std::printf("  (original failure: %s at %s:%d)", rec.expr.c_str(),
                rec.file.c_str(), rec.line);
  }
  std::printf("\n");

  const std::int64_t slot_budget = flags.get_int("slot_budget");
  if (slot_budget < 0) {
    std::fprintf(stderr, "--slot_budget must be >= 0\n");
    return 1;
  }
  // Replays of watchdog-quarantined trials may never terminate on their
  // own; a slot budget turns "stuck forever" into a bounded, deterministic
  // demonstration that the trial exceeds the budget.
  const auto run_bounded = [&](const std::uint64_t t, bool& cancelled,
                               SlotCount& charged) {
    CancelToken token(static_cast<SlotCount>(slot_budget));
    CancelScope scope(&token);
    cancelled = false;
    try {
      return run_scenario_trial(rec.scenario, t);
    } catch (const TrialCancelled&) {
      cancelled = true;
      charged = token.slots_charged();
      return TrialOutcome{};
    }
  };

  bool cancelled = false;
  SlotCount charged = 0;
  const TrialOutcome first = run_bounded(trial, cancelled, charged);
  if (cancelled) {
    std::printf("trial cancelled by --slot_budget after charging %llu "
                "simulated slots (budget %lld): the recorded trial does not "
                "finish within the budget\n",
                static_cast<unsigned long long>(charged),
                static_cast<long long>(slot_budget));
    return 0;
  }
  print_outcome(first);

  if (flags.get_bool("verify")) {
    bool cancelled2 = false;
    SlotCount charged2 = 0;
    const TrialOutcome second = run_bounded(trial, cancelled2, charged2);
    if (cancelled2 || second.digest != first.digest) {
      std::fprintf(stderr,
                   "DIGEST MISMATCH: %016llx vs %016llx — replay is not "
                   "deterministic\n",
                   static_cast<unsigned long long>(first.digest),
                   static_cast<unsigned long long>(second.digest));
      return 2;
    }
    std::printf("verified: second run reproduced digest %016llx\n",
                static_cast<unsigned long long>(first.digest));
  }
  return 0;
}

}  // namespace
}  // namespace rcb

int main(int argc, char** argv) { return rcb::run_tool(argc, argv); }
