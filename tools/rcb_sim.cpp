// rcb_sim — command-line Monte-Carlo driver for every protocol/adversary
// combination in the library.
//
//   rcb_sim --protocol=one_to_one --adversary=full_duel --budget=16384 ...
//       ... --q=0.6 --eps=0.01 --trials=200 --format=table
//
//   rcb_sim --protocol=broadcast --n=64 --adversary=suffix --budget=131072 ...
//       ... --q=0.9 --format=json | jq .max_cost.mean
//
// Protocols: one_to_one (Fig. 1), ksy (golden-ratio baseline), combined
// (interleaved min), broadcast (Fig. 2), naive (halt-on-count strawman),
// sqrt (the "extension of Theorem 1" 1-to-n baseline).
// Adversaries: none, suffix, fraction, random, burst (1-uniform, broadcast
// protocols); none, send_phase, nack_phase, full_duel, both_views,
// sym_random, spoof (2-uniform, 1-to-1 protocols).
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rcb/cli/flags.hpp"
#include "rcb/cli/json.hpp"
#include "rcb/cli/json_parse.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/stats/histogram.hpp"
#include "rcb/stats/table.hpp"
#include "sim_runner.hpp"

namespace rcb {
namespace {

int run_tool(int argc, const char* const* argv) {
  FlagSet flags(
      "rcb_sim: Monte-Carlo simulator for resource-competitive broadcast "
      "(SPAA'14 reproduction)");
  flags.add_string("protocol", "one_to_one",
                   "one_to_one | ksy | combined | broadcast | naive | sqrt | "
                   "mc_broadcast");
  flags.add_string("adversary", "none",
                   "1-to-1: none|send_phase|nack_phase|full_duel|both_views|"
                   "sym_random|spoof; broadcast: none|suffix|fraction|random|"
                   "burst; mc_broadcast: none|mc_uniform|mc_focus|mc_sweep");
  flags.add_int("budget", 16384, "adversary energy budget (slot-units)", 0);
  flags.add_double("q", 0.6, "blocking fraction for suffix-style adversaries");
  flags.add_double("rate", 0.3, "per-slot rate for random jammers");
  flags.add_int("n", 32, "number of nodes (broadcast protocols)", 1);
  flags.add_double("eps", 0.01, "Fig. 1 failure parameter");
  flags.add_int("trials", 100, "Monte-Carlo trials", 1);
  flags.add_int("seed", 1, "master seed (trials derive independent streams)",
                0);
  flags.add_int("max_epoch_extra", 0,
                "cap epochs at first_epoch + this (0 = protocol default; "
                "needed for --adversary=spoof, which never lets Fig.1 halt)");
  flags.add_int("timeout", 0,
                "wall-clock abort after this many slots (1-to-1 protocols; "
                "0 = no timeout; aborted trials are reported, not failed)");
  flags.add_int("battery", 0,
                "per-node battery capacity in slot-units (broadcast/naive "
                "protocols; 0 = unlimited)");
  flags.add_int("channels", 1,
                "channel count C of the multi-channel slot model "
                "(mc_broadcast protocol; C=1 degenerates to the "
                "single-channel engines bit-for-bit)",
                1, 64);
  flags.add_int("fault_seed", 0, "seed for the fault-injection RNG streams");
  flags.add_double("crash_rate", 0.0, "per-slot P(an up node crashes)");
  flags.add_double("restart_rate", 0.0,
                   "per-slot P(a crashed node restarts); 0 = crashes are "
                   "permanent");
  flags.add_double("crash_fraction", 1.0,
                   "deterministic fraction of nodes eligible to crash");
  flags.add_double("loss", 0.0, "P(m/nack reception fades to clear)");
  flags.add_double("corruption", 0.0, "P(m/nack reception garbles to noise)");
  flags.add_double("skew", 0.0, "per-phase P(a node is clock-desynchronised)");
  flags.add_int("brownout_slot", -1,
                "global slot a battery brownout begins (-1 = never)");
  flags.add_double("brownout_fraction", 0.0,
                   "fraction of nodes hit by the brownout");
  flags.add_double("brownout_factor", 0.5,
                   "battery capacity multiplier after the brownout");
  flags.add_string("checkpoint_dir", "",
                   "journal completed trials into this directory so a killed "
                   "run can be resumed (see --resume)");
  flags.add_string("resume", "",
                   "resume from the checkpoint in this directory; the "
                   "checkpointed scenario is authoritative (scenario flags "
                   "are ignored).  With no checkpoint present, starts fresh");
  flags.add_double("trial_timeout", 0.0,
                   "wall-clock watchdog per trial, seconds (0 = off); "
                   "quarantines stuck trials as timed_out and keeps sweeping");
  flags.add_int("trial_slot_budget", 0,
                "deterministic per-trial budget in simulated slots (0 = "
                "off); like --trial_timeout but reproducible bit-for-bit",
                0);
  flags.add_int("max_retries", 0,
                "re-run a trial that dies on a contract failure or exception "
                "up to this many times with a reseeded stream",
                0);
  flags.add_int("threads", 0,
                "worker threads (0 = all CPUs in the process affinity mask)",
                0, 4096);
  flags.add_string("format", "table", "table | json | csv");
  flags.add_bool("histogram", false,
                 "print an ASCII histogram of per-trial max cost");
  flags.add_string("config", "",
                   "JSON file of flag values, e.g. {\"protocol\": "
                   "\"broadcast\", \"n\": 64}; command-line flags override");

  // Apply config-file values before the command line so that explicit
  // flags override the file.  The file is located by a pre-scan, since the
  // full parse has not run yet.
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string path;
    if (arg.rfind("--config=", 0) == 0) {
      path = arg.substr(9);
    } else if (arg == "--config" && i + 1 < argc) {
      path = argv[i + 1];
    } else {
      continue;
    }
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open config file '%s'\n", path.c_str());
      return 1;
    }
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
      text.append(buf, got);
    }
    std::fclose(f);
    const JsonParseResult parsed = json_parse(text);
    if (!parsed.ok) {
      std::fprintf(stderr, "config '%s': %s at offset %zu\n", path.c_str(),
                   parsed.error.c_str(), parsed.error_offset);
      return 1;
    }
    if (!parsed.value.is_object()) {
      std::fprintf(stderr, "config '%s': top level must be an object\n",
                   path.c_str());
      return 1;
    }
    for (const auto& [key, value] : parsed.value.as_object()) {
      std::string repr;
      if (value.is_string()) {
        repr = value.as_string();
      } else if (value.is_bool()) {
        repr = value.as_bool() ? "true" : "false";
      } else if (value.is_number()) {
        char nbuf[64];
        std::snprintf(nbuf, sizeof nbuf, "%.17g", value.as_number());
        repr = nbuf;
      } else {
        std::fprintf(stderr, "config key '%s': unsupported value type\n",
                     key.c_str());
        return 1;
      }
      if (!flags.set(key, repr)) return 1;
    }
  }

  if (!flags.parse(argc, argv)) return 1;

  const std::string protocol = flags.get_string("protocol");
  const std::string adversary = flags.get_string("adversary");
  const auto budget = static_cast<Cost>(flags.get_int("budget"));
  const double q = flags.get_double("q");
  const double rate = flags.get_double("rate");
  const auto n = static_cast<std::uint32_t>(flags.get_int("n"));
  const double eps = flags.get_double("eps");
  const auto trials = static_cast<std::size_t>(flags.get_int("trials"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto extra = static_cast<std::uint32_t>(flags.get_int("max_epoch_extra"));
  const std::string format = flags.get_string("format");
  tools::SimConfig cfg;
  cfg.protocol = protocol;
  cfg.adversary = adversary;
  cfg.budget = budget;
  cfg.q = q;
  cfg.rate = rate;
  cfg.n = n;
  cfg.eps = eps;
  cfg.trials = trials;
  cfg.seed = seed;
  cfg.max_epoch_extra = extra;
  cfg.timeout_slots = static_cast<SlotCount>(flags.get_int("timeout"));
  cfg.battery = static_cast<Cost>(flags.get_int("battery"));
  cfg.channels = static_cast<std::uint32_t>(flags.get_int("channels"));
  cfg.faults.seed = static_cast<std::uint64_t>(flags.get_int("fault_seed"));
  cfg.faults.crash_rate = flags.get_double("crash_rate");
  cfg.faults.restart_rate = flags.get_double("restart_rate");
  cfg.faults.crash_fraction = flags.get_double("crash_fraction");
  cfg.faults.loss_rate = flags.get_double("loss");
  cfg.faults.corruption_rate = flags.get_double("corruption");
  cfg.faults.clock_skew_rate = flags.get_double("skew");
  const std::int64_t brownout = flags.get_int("brownout_slot");
  cfg.faults.brownout_slot =
      brownout < 0 ? kNoSlot : static_cast<SlotIndex>(brownout);
  cfg.faults.brownout_fraction = flags.get_double("brownout_fraction");
  cfg.faults.brownout_factor = flags.get_double("brownout_factor");

  SupervisorOptions sup;
  sup.checkpoint_dir = flags.get_string("checkpoint_dir");
  if (const std::string resume_dir = flags.get_string("resume");
      !resume_dir.empty()) {
    sup.checkpoint_dir = resume_dir;
    sup.resume = true;
  }
  sup.trial_timeout_sec = flags.get_double("trial_timeout");
  sup.trial_slot_budget =
      static_cast<SlotCount>(flags.get_int("trial_slot_budget"));
  sup.max_retries = static_cast<std::uint32_t>(flags.get_int("max_retries"));
  const bool supervised = !sup.checkpoint_dir.empty() ||
                          sup.trial_timeout_sec > 0.0 ||
                          sup.trial_slot_budget != 0 || sup.max_retries != 0;

  const auto thread_count =
      static_cast<std::size_t>(flags.get_int("threads"));
  std::optional<ThreadPool> own_pool;
  if (thread_count != 0) own_pool.emplace(thread_count);
  ThreadPool& pool = own_pool ? *own_pool : ThreadPool::global();

  tools::SimAggregate agg;
  if (supervised) {
    install_sweep_signal_handlers();
    agg = tools::run_sim(cfg, sup, pool);
  } else {
    agg = tools::run_sim(cfg, pool);
    agg.scenario = cfg;
    agg.completed_trials = cfg.trials;
    agg.executed_trials = cfg.trials;
  }
  if (!agg.valid) {
    std::fprintf(stderr, "%s\n", agg.error.c_str());
    return 1;
  }

  // On --resume the checkpointed scenario is authoritative; report what
  // actually ran, not what the flags said.
  const Scenario& ran = agg.scenario;

  const auto finish = [&]() -> int {
    if (!agg.interrupted) return 0;
    std::fprintf(stderr,
                 "interrupted: %zu/%zu trials completed and journaled; "
                 "resume with --resume=%s\n",
                 agg.completed_trials, ran.trials,
                 sup.checkpoint_dir.c_str());
    return 130;
  };

  if (format == "json") {
    JsonWriter json(std::cout);
    json.begin_object();
    json.key("protocol").value(ran.protocol);
    json.key("adversary").value(ran.adversary);
    json.key("trials").value(static_cast<std::uint64_t>(ran.trials));
    json.key("success_rate").value(agg.success_rate);
    json.key("abort_rate").value(agg.abort_rate);
    json.key("mean_dead_count").value(agg.mean_dead_count);
    json.key("mean_crashed_count").value(agg.mean_crashed_count);
    if (supervised) {
      json.key("timed_out_rate").value(agg.timed_out_rate);
      json.key("failed_rate").value(agg.failed_rate);
      json.key("resumed_trials")
          .value(static_cast<std::uint64_t>(agg.resumed_trials));
      json.key("executed_trials")
          .value(static_cast<std::uint64_t>(agg.executed_trials));
      json.key("completed_trials")
          .value(static_cast<std::uint64_t>(agg.completed_trials));
      json.key("interrupted").value(agg.interrupted);
      json.key("aggregate_digest").value(to_hex16(agg.aggregate_digest));
    }
    auto emit = [&](const char* name, const Summary& s) {
      json.key(name).begin_object();
      json.key("mean").value(s.mean);
      json.key("stddev").value(s.stddev);
      json.key("median").value(s.median);
      json.key("p10").value(s.p10);
      json.key("p90").value(s.p90);
      json.key("min").value(s.min);
      json.key("max").value(s.max);
      json.end_object();
    };
    emit("max_cost", agg.max_cost);
    emit("mean_cost", agg.mean_cost);
    emit("adversary_cost", agg.adversary_cost);
    emit("latency", agg.latency);
    json.end_object();
    std::cout << '\n';
    return finish();
  }

  Table table({"metric", "mean", "median", "p10", "p90", "min", "max"});
  auto row = [&](const char* name, const Summary& s) {
    table.add_row({name, Table::num(s.mean), Table::num(s.median),
                   Table::num(s.p10), Table::num(s.p90), Table::num(s.min),
                   Table::num(s.max)});
  };
  row("max node cost", agg.max_cost);
  row("mean node cost", agg.mean_cost);
  row("adversary cost T", agg.adversary_cost);
  row("latency (slots)", agg.latency);

  if (format == "csv") {
    table.print_csv(std::cout);
  } else {
    std::printf("%s vs %s, %zu trials, success rate %.4f\n",
                ran.protocol.c_str(), ran.adversary.c_str(), ran.trials,
                agg.success_rate);
    if (agg.abort_rate > 0.0 || agg.mean_dead_count > 0.0 ||
        agg.mean_crashed_count > 0.0) {
      std::printf("aborted %.4f, dead/trial %.2f, crashed/trial %.2f\n",
                  agg.abort_rate, agg.mean_dead_count, agg.mean_crashed_count);
    }
    if (supervised) {
      std::printf("supervised: %zu resumed, %zu executed, timed_out %.4f, "
                  "failed %.4f, aggregate digest %s\n",
                  agg.resumed_trials, agg.executed_trials, agg.timed_out_rate,
                  agg.failed_rate, to_hex16(agg.aggregate_digest).c_str());
    }
    std::printf("\n");
    table.print(std::cout);
  }

  if (flags.get_bool("histogram")) {
    std::cout << "\nper-trial max cost distribution:\n";
    Histogram hist(agg.max_cost_samples, 12);
    hist.print(std::cout);
  }
  return finish();
}

}  // namespace
}  // namespace rcb

int main(int argc, char** argv) { return rcb::run_tool(argc, argv); }
