#!/usr/bin/env bash
# Local CI: build and test the plain and the ASan+UBSan configurations,
# then take a quick perf reading and diff it against the committed baseline.
#
#   tools/ci.sh            # both configs + quick bench
#   tools/ci.sh plain      # RelWithDebInfo only (+ quick bench)
#   tools/ci.sh sanitize   # ASan+UBSan only (no bench — numbers meaningless)
#
# The bench step runs bench_m1_micro with a short --benchmark_min_time,
# writes build/BENCH_m1.json, and runs tools/bench_compare against
# bench/baselines/BENCH_m1_baseline.json in warn-only mode: perf drift is
# printed on every run without flaking CI on machine noise.  Tighten by
# dropping --warn_only once runners are dedicated.
#
# Exits non-zero on the first failing build or test run.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
what="${1:-all}"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S "$repo" "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] test ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

if [[ "$what" == "all" || "$what" == "plain" ]]; then
  run_config plain "$repo/build" -DRCB_WERROR=ON
  echo "=== [plain] quick bench ==="
  "$repo/build/bench/bench_m1_micro" --benchmark_min_time=0.05 \
    --rcb_out="$repo/build/BENCH_m1.json"
  "$repo/build/tools/bench_compare" \
    --baseline="$repo/bench/baselines/BENCH_m1_baseline.json" \
    --current="$repo/build/BENCH_m1.json" --threshold=0.5 --warn_only
fi

if [[ "$what" == "all" || "$what" == "sanitize" ]]; then
  run_config sanitize "$repo/build-sanitize" -DRCB_SANITIZE=ON
fi

echo "CI OK"
