#!/usr/bin/env bash
# Local CI: build and test the plain and the ASan+UBSan configurations.
#
#   tools/ci.sh            # both configs
#   tools/ci.sh plain      # RelWithDebInfo only
#   tools/ci.sh sanitize   # ASan+UBSan only
#
# Exits non-zero on the first failing build or test run.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
what="${1:-all}"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S "$repo" "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] test ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

if [[ "$what" == "all" || "$what" == "plain" ]]; then
  run_config plain "$repo/build" -DRCB_WERROR=ON
fi

if [[ "$what" == "all" || "$what" == "sanitize" ]]; then
  run_config sanitize "$repo/build-sanitize" -DRCB_SANITIZE=ON
fi

echo "CI OK"
