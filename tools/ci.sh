#!/usr/bin/env bash
# Local CI: build and test the plain and the ASan+UBSan configurations,
# then take a quick perf reading and diff it against the committed baseline.
#
#   tools/ci.sh            # all configs + quick bench + quick fuzz
#   tools/ci.sh plain      # RelWithDebInfo only (+ quick bench + quick fuzz)
#   tools/ci.sh sanitize   # ASan+UBSan only (no bench — numbers meaningless)
#   tools/ci.sh tsan       # ThreadSanitizer, concurrency test binaries only
#   tools/ci.sh chaos_net  # socket-transport chaos only (needs build/)
#   tools/ci.sh perf       # native/AVX2 preset + engine crosscheck suite
#                          # (skipped cleanly on hosts without avx2+fma)
#   tools/ci.sh --full     # like "all" but with a larger fuzz sweep
#
# The fuzz stage first runs `rcb_fuzz --canary` (the harness self-check: a
# known ledger mutation must be detected and shrunk), then a bounded
# fixed-seed scenario sweep (~200 cases; 1000 with --full).  The generated
# scenario space includes the multi-channel axis (mc_broadcast with C
# weighted toward {1, 2, 4}), so every config exercises the per-channel
# budget ledger, the mc engine crosscheck, and the C=1 degeneration
# differential oracle.  Any oracle violation fails CI and the minimized
# scenario + RCB_REPRO record paths are printed for local replay with
# rcb_replay --verify.
#
# The bench step runs bench_m1_micro with a short --benchmark_min_time and
# bench_m2_engine_scaling (default grid), writes build/BENCH_m{1,2}.json,
# and runs tools/bench_compare against the committed baselines in warn-only
# mode: perf drift is printed on every run without flaking CI on machine
# noise.  Tighten by dropping --warn_only once runners are dedicated.  Two
# numbers ARE gated hard: the m2/speedup/event_vs_dense and
# m2/channels/speedup ratios are structural properties of the engine pairs
# (O(slots + events) vs O(slots * nodes)), not machine noise, so both must
# stay >= 5x on any host.
#
# Exits non-zero on the first failing build or test run.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
what="${1:-all}"
fuzz_cases=200
if [[ "$what" == "--full" ]]; then
  what="all"
  fuzz_cases=1000
fi

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S "$repo" "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] test ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

# Chaos: the crash-safe supervisor's kill/resume guarantees, end to end.
#  1. SIGKILL a checkpointed sweep mid-run, resume, and require the final
#     aggregate digest to equal an uninterrupted reference run's.
#  2. Same with SIGINT (graceful drain path, exit 130 + resume hint).
#  3. A deliberately stuck trial (spoofing jammer, no timeout_slots) is
#     quarantined by the deterministic slot-budget watchdog without
#     stalling the sweep, and its RCB_REPRO record replays bounded under
#     rcb_replay; a tampered record is refused with exit 3.
chaos_supervisor() {
  local sim="$repo/build/tools/rcb_sim"
  local replay="$repo/build/tools/rcb_replay"
  local work="$repo/build/chaos"
  local digest_re='"aggregate_digest":"[0-9a-f]*"'
  rm -rf "$work"; mkdir -p "$work"
  local args=(--protocol=broadcast --adversary=suffix --n=32 --budget=65536
              --q=0.9 --trials=120 --seed=5 --format=json)

  echo "--- chaos: reference (uninterrupted) sweep"
  "$sim" "${args[@]}" --checkpoint_dir="$work/ref" >"$work/ref.json"
  local ref; ref=$(grep -o "$digest_re" "$work/ref.json")
  [[ -n "$ref" ]] || { echo "chaos: reference digest missing"; return 1; }

  local sig pid got rc
  for sig in KILL INT; do
    echo "--- chaos: SIG$sig mid-sweep, then resume"
    rm -rf "$work/ck"
    "$sim" "${args[@]}" --checkpoint_dir="$work/ck" \
      >"$work/out.json" 2>"$work/err.txt" &
    pid=$!
    # Strike once a handful of trials are journaled (frames are ~250 B).
    for _ in $(seq 1 400); do
      if [[ -f "$work/ck/journal.rcbj" ]] &&
         (( $(wc -c < "$work/ck/journal.rcbj") > 1500 )); then break; fi
      sleep 0.02
    done
    kill "-$sig" "$pid" 2>/dev/null || true
    rc=0; wait "$pid" || rc=$?
    if [[ "$sig" == INT ]]; then
      [[ "$rc" -eq 130 ]] || { echo "chaos: SIGINT exit $rc, want 130"; return 1; }
      grep -q -- "--resume=$work/ck" "$work/err.txt" ||
        { echo "chaos: SIGINT run printed no resume hint"; return 1; }
    fi
    "$sim" --resume="$work/ck" --format=json >"$work/resumed.json"
    got=$(grep -o "$digest_re" "$work/resumed.json")
    if [[ "$got" != "$ref" ]]; then
      echo "chaos: SIG$sig/resume digest $got != reference $ref"; return 1
    fi
  done
  echo "chaos: kill/resume aggregates are bit-identical to the reference"

  echo "--- chaos: stuck-trial quarantine + bounded replay"
  "$sim" --protocol=one_to_one --adversary=spoof --budget=1000000000 \
    --trials=2 --seed=3 --trial_slot_budget=1000000 \
    --checkpoint_dir="$work/stuck" --format=json \
    >"$work/stuck.json" 2>"$work/stuck.err"
  grep -q '"timed_out_rate":1' "$work/stuck.json" ||
    { echo "chaos: stuck trials were not quarantined"; return 1; }
  grep -m1 '^RCB_REPRO ' "$work/stuck.err" | sed 's/^RCB_REPRO //' \
    >"$work/stuck_record.json"
  "$replay" --record="$work/stuck_record.json" --slot_budget=1000000 \
    >"$work/replay.out"
  grep -q 'cancelled by --slot_budget' "$work/replay.out" ||
    { echo "chaos: bounded replay did not report the budget stop"; return 1; }
  sed 's/"budget":1000000000/"budget":999/' "$work/stuck_record.json" \
    >"$work/tampered.json"
  rc=0; "$replay" --record="$work/tampered.json" --slot_budget=1000 \
    >/dev/null 2>&1 || rc=$?
  [[ "$rc" -eq 3 ]] ||
    { echo "chaos: tampered record exit $rc, want 3"; return 1; }
  echo "chaos: quarantined trial replays bounded; tampered record refused"
}

# Chaos: the work-stealing sweep scheduler's determinism and group-commit
# durability, end to end through rcb_sweep.
#  1. An 8-point heavy-tailed budget sweep must print bit-identical
#     per-point digests for --threads=1, --threads=4, and --threads=0
#     (affinity-mask sizing) — the schedule must not leak into results.
#  2. SIGKILL the checkpointed sweep mid-run (after the async journals have
#     acknowledged some records), resume with a different thread count, and
#     require the resumed digests to equal the reference: group commit must
#     never acknowledge a record a post-kill recovery cannot replay.
chaos_sweep_scheduler() {
  local sweep="$repo/build/tools/rcb_sweep"
  local work="$repo/build/chaos-sched"
  rm -rf "$work"; mkdir -p "$work"
  local args=(--protocol=one_to_one --adversary=full_duel --sweep=budget
              --values=128,256,512,1024,2048,4096,8192,16384 --trials=12
              --seed=11 --fit=none --print_digests)

  echo "--- chaos-sched: digest equality across --threads=1/4/0"
  "$sweep" "${args[@]}" --threads=1 >"$work/t1.out"
  "$sweep" "${args[@]}" --threads=4 >"$work/t4.out"
  "$sweep" "${args[@]}" --threads=0 >"$work/t0.out"
  local ref; ref=$(grep '^# digest' "$work/t1.out")
  [[ -n "$ref" ]] || { echo "chaos-sched: no digests printed"; return 1; }
  diff <(grep '^# digest' "$work/t4.out") <(echo "$ref") >/dev/null ||
    { echo "chaos-sched: --threads=4 digests differ from --threads=1"; return 1; }
  diff <(grep '^# digest' "$work/t0.out") <(echo "$ref") >/dev/null ||
    { echo "chaos-sched: --threads=0 digests differ from --threads=1"; return 1; }

  echo "--- chaos-sched: SIGKILL mid-sweep, then resume with other threads"
  rm -rf "$work/ck"
  "$sweep" "${args[@]}" --threads=4 --checkpoint_dir="$work/ck" \
    >"$work/ck.out" 2>"$work/ck.err" &
  local pid=$!
  # Strike once the group-commit journals have flushed a few records.
  local f bytes
  for _ in $(seq 1 400); do
    bytes=0
    for f in "$work/ck"/point_*/journal.rcbj; do
      if [[ -f "$f" ]]; then bytes=$(( bytes + $(wc -c < "$f") )); fi
    done
    if (( bytes > 1500 )); then break; fi
    sleep 0.02
  done
  kill -KILL "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  "$sweep" "${args[@]}" --threads=2 --resume="$work/ck" >"$work/resumed.out"
  diff <(grep '^# digest' "$work/resumed.out") <(echo "$ref") >/dev/null ||
    { echo "chaos-sched: resumed digests differ from the reference"; return 1; }
  echo "chaos-sched: digests bit-identical across thread counts and kill/resume"
}

# Chaos: the multi-process sharded sweep's fault tolerance, end to end
# through rcb_sweep --workers (coordinator + shard workers + journal merge).
#  1. Digest equality: --workers=1/2/4 must print per-point digests
#     bit-identical to the in-process --threads=1 reference.
#  2. SIGKILL random *workers* mid-sweep: the coordinator reassigns their
#     shards, resumes the partial shard journals, and the digests still
#     match.
#  3. SIGKILL the *coordinator* mid-sweep (workers die with it via parent-
#     death signal), re-run with --resume: completed shards are adopted,
#     partial ones resumed, and the digests still match.
chaos_multiproc() {
  local sweep="$repo/build/tools/rcb_sweep"
  local work="$repo/build/chaos-multiproc"
  rm -rf "$work"; mkdir -p "$work"
  local args=(--protocol=one_to_one --adversary=full_duel --sweep=budget
              --values=128,256,512,1024,2048,4096 --trials=12
              --seed=17 --fit=none --print_digests)

  echo "--- chaos-mp: in-process reference digests (--threads=1)"
  "$sweep" "${args[@]}" --threads=1 >"$work/ref.out"
  local ref; ref=$(grep '^# digest' "$work/ref.out")
  [[ -n "$ref" ]] || { echo "chaos-mp: no reference digests"; return 1; }

  local w
  for w in 1 2 4; do
    echo "--- chaos-mp: --workers=$w digest equality"
    rm -rf "$work/w$w"
    "$sweep" "${args[@]}" --workers="$w" --threads=2 \
      --checkpoint_dir="$work/w$w" >"$work/w$w.out"
    diff <(grep '^# digest' "$work/w$w.out") <(echo "$ref") >/dev/null ||
      { echo "chaos-mp: --workers=$w digests differ from --threads=1"; return 1; }
  done

  echo "--- chaos-mp: SIGKILL random workers mid-sweep"
  rm -rf "$work/kill"
  "$sweep" "${args[@]}" --workers=3 --threads=1 \
    --checkpoint_dir="$work/kill" >"$work/kill.out" 2>"$work/kill.err" &
  local pid=$! rounds=0 victims victim
  while kill -0 "$pid" 2>/dev/null && (( rounds < 6 )); do
    sleep 0.15
    victims=$(pgrep -P "$pid" 2>/dev/null || true)
    if [[ -n "$victims" ]]; then
      victim=$(echo "$victims" | shuf -n1)
      kill -KILL "$victim" 2>/dev/null || true
      rounds=$((rounds + 1))
    fi
  done
  local rc=0; wait "$pid" || rc=$?
  [[ "$rc" -eq 0 ]] ||
    { echo "chaos-mp: sweep with killed workers exited $rc"
      cat "$work/kill.err"; return 1; }
  diff <(grep '^# digest' "$work/kill.out") <(echo "$ref") >/dev/null ||
    { echo "chaos-mp: digests differ after random worker kills"; return 1; }

  echo "--- chaos-mp: SIGKILL the coordinator, then --resume"
  rm -rf "$work/co"
  "$sweep" "${args[@]}" --workers=2 --threads=1 \
    --checkpoint_dir="$work/co" >"$work/co.out" 2>"$work/co.err" &
  pid=$!
  # Strike once the shard journals have flushed a few records.
  local f bytes
  for _ in $(seq 1 400); do
    bytes=0
    for f in "$work/co"/shard_*/journal.rcbj; do
      if [[ -f "$f" ]]; then bytes=$(( bytes + $(wc -c < "$f") )); fi
    done
    if (( bytes > 1500 )); then break; fi
    sleep 0.02
  done
  kill -KILL "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  "$sweep" "${args[@]}" --workers=2 --threads=1 --resume="$work/co" \
    >"$work/co_resumed.out"
  diff <(grep '^# digest' "$work/co_resumed.out") <(echo "$ref") >/dev/null ||
    { echo "chaos-mp: coordinator kill/resume digests differ"; return 1; }
  echo "chaos-mp: sharded digests bit-identical across worker counts, worker kills, and coordinator kill/resume"
}

# Chaos: the socket transport's partition-tolerant control plane, end to
# end through rcb_sweep --transport=socket (TCP-attached workers speaking
# framed RCBC control frames; the data plane stays the shard journals).
#  1. Digest equality: a loopback-socket sweep with seeded control-plane
#     fault injection (drop/delay/duplicate/reorder/close on every frame)
#     must print per-point digests bit-identical to the in-process
#     --threads=1 reference — at-least-once reconciliation absorbs any
#     fault schedule.
#  2. SIGKILL random attached workers mid-sweep under the same faults: the
#     lease watchdog revokes, the shard restarts under a fresh try_ dir
#     seeded with the partial journal, and the digests still match.
#  3. SIGKILL the *coordinator*; re-run with --resume: completed shard
#     attempts are adopted, in-flight ones restart, digests still match.
chaos_net() {
  local sweep="$repo/build/tools/rcb_sweep"
  local work="$repo/build/chaos-net"
  rm -rf "$work"; mkdir -p "$work"
  local args=(--protocol=one_to_one --adversary=full_duel --sweep=budget
              --values=128,256,512,1024,2048,4096 --trials=12
              --seed=23 --fit=none --print_digests)
  local net=(--transport=socket --net_fault_seed=777 --net_fault_rate=0.05
             --lease_timeout=1500 --heartbeat_interval=25)

  echo "--- chaos-net: in-process reference digests (--threads=1)"
  "$sweep" "${args[@]}" --threads=1 >"$work/ref.out"
  local ref; ref=$(grep '^# digest' "$work/ref.out")
  [[ -n "$ref" ]] || { echo "chaos-net: no reference digests"; return 1; }

  echo "--- chaos-net: loopback-socket sweep under seeded frame faults"
  rm -rf "$work/sock"
  "$sweep" "${args[@]}" "${net[@]}" --workers=2 --threads=1 \
    --checkpoint_dir="$work/sock" >"$work/sock.out" 2>"$work/sock.err" ||
    { echo "chaos-net: socket sweep failed"; cat "$work/sock.err"; return 1; }
  diff <(grep '^# digest' "$work/sock.out") <(echo "$ref") >/dev/null ||
    { echo "chaos-net: socket digests differ from --threads=1"; return 1; }

  echo "--- chaos-net: SIGKILL random attached workers under faults"
  rm -rf "$work/kill"
  "$sweep" "${args[@]}" "${net[@]}" --workers=2 --threads=1 \
    --checkpoint_dir="$work/kill" >"$work/kill.out" 2>"$work/kill.err" &
  local pid=$! rounds=0 victims victim rc=0
  while kill -0 "$pid" 2>/dev/null && (( rounds < 4 )); do
    sleep 0.2
    victims=$(pgrep -P "$pid" 2>/dev/null || true)
    if [[ -n "$victims" ]]; then
      victim=$(echo "$victims" | shuf -n1)
      kill -KILL "$victim" 2>/dev/null || true
      rounds=$((rounds + 1))
    fi
  done
  wait "$pid" || rc=$?
  [[ "$rc" -eq 0 ]] ||
    { echo "chaos-net: sweep with killed workers exited $rc"
      cat "$work/kill.err"; return 1; }
  diff <(grep '^# digest' "$work/kill.out") <(echo "$ref") >/dev/null ||
    { echo "chaos-net: digests differ after worker kills"; return 1; }

  echo "--- chaos-net: SIGKILL the coordinator, then --resume"
  rm -rf "$work/co"
  "$sweep" "${args[@]}" "${net[@]}" --workers=2 --threads=1 \
    --checkpoint_dir="$work/co" >"$work/co.out" 2>"$work/co.err" &
  pid=$!
  # Strike once the per-attempt shard journals have flushed a few records
  # (socket attempts journal into shard_<i>/try_<k>/).
  local bytes
  for _ in $(seq 1 400); do
    bytes=$(find "$work/co" -path '*/try_*/journal.rcbj' -exec cat {} + \
              2>/dev/null | wc -c)
    if (( bytes > 1500 )); then break; fi
    sleep 0.02
  done
  kill -KILL "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  "$sweep" "${args[@]}" "${net[@]}" --workers=2 --threads=1 \
    --resume="$work/co" >"$work/co_resumed.out" 2>"$work/co_resumed.err" ||
    { echo "chaos-net: resumed socket sweep failed"
      cat "$work/co_resumed.err"; return 1; }
  diff <(grep '^# digest' "$work/co_resumed.out") <(echo "$ref") >/dev/null ||
    { echo "chaos-net: coordinator kill/resume digests differ"; return 1; }
  echo "chaos-net: socket digests bit-identical under frame faults, worker kills, and coordinator kill/resume"
}

# Fuzz stage: canary self-check, then a fixed-seed scenario sweep.  Oracle
# violations land minimized in $fuzz_out and fail the stage; the rcb_fuzz
# output names the exact files to replay.
fuzz_stage() {
  local fuzz="$1" fuzz_out="$2"
  rm -rf "$fuzz_out"; mkdir -p "$fuzz_out"
  echo "--- fuzz: canary (known mutation must be caught and shrunk)"
  "$fuzz" --canary --quiet ||
    { echo "fuzz: canary FAILED — harness cannot be trusted"; return 1; }
  echo "--- fuzz: $fuzz_cases fixed-seed scenarios"
  local rc=0
  "$fuzz" --seed=1 --cases="$fuzz_cases" --out="$fuzz_out" --quiet || rc=$?
  if [[ "$rc" -ne 0 ]]; then
    echo "fuzz: oracle violations found; minimized scenarios in:"
    ls "$fuzz_out" | sed "s|^|  $fuzz_out/|"
    echo "replay with: build/tools/rcb_replay --record=<file>.repro.json --verify"
    return 1
  fi
  # Re-run a slice of the sweep with the AVX2 kernels forced (the env
  # override is a no-op on hosts without avx2+fma, where this degenerates
  # to a scalar re-run).  The generated space weights the multi-channel
  # axis, so this exercises the mc event engine's SIMD fast path — packed
  # keys, bulk jam_run_masks, fill kernels — against the differential
  # oracles under the wide path.
  echo "--- fuzz: $((fuzz_cases / 2)) scenarios with RCB_SIMD=avx2 (mc axis)"
  rc=0
  RCB_SIMD=avx2 "$fuzz" --seed=2 --cases="$((fuzz_cases / 2))" \
    --out="$fuzz_out" --quiet || rc=$?
  if [[ "$rc" -ne 0 ]]; then
    echo "fuzz (RCB_SIMD=avx2): oracle violations found; minimized scenarios in:"
    ls "$fuzz_out" | sed "s|^|  $fuzz_out/|"
    echo "replay with: build/tools/rcb_replay --record=<file>.repro.json --verify"
    return 1
  fi
}

if [[ "$what" == "all" || "$what" == "plain" ]]; then
  run_config plain "$repo/build" -DRCB_WERROR=ON
  echo "=== [plain] chaos: supervisor kill/resume ==="
  chaos_supervisor
  echo "=== [plain] chaos: sweep scheduler determinism + group commit ==="
  chaos_sweep_scheduler
  echo "=== [plain] chaos: multi-process sharded sweep fault tolerance ==="
  chaos_multiproc
  echo "=== [plain] chaos: socket transport partition tolerance ==="
  chaos_net
  echo "=== [plain] fuzz: scenario oracles ==="
  fuzz_stage "$repo/build/tools/rcb_fuzz" "$repo/build/fuzz-out"
  echo "=== [plain] quick bench ==="
  "$repo/build/bench/bench_m1_micro" --benchmark_min_time=0.05 \
    --rcb_out="$repo/build/BENCH_m1.json"
  "$repo/build/tools/bench_compare" \
    --baseline="$repo/bench/baselines/BENCH_m1_baseline.json" \
    --current="$repo/build/BENCH_m1.json" --threshold=0.5 --warn_only
  echo "=== [plain] engine scaling bench ==="
  "$repo/build/bench/bench_m2_engine_scaling" \
    --out="$repo/build/BENCH_m2.json"
  "$repo/build/tools/bench_compare" \
    --baseline="$repo/bench/baselines/BENCH_m2_baseline.json" \
    --current="$repo/build/BENCH_m2.json" --metric=slots_per_sec \
    --threshold=0.5 --warn_only
  speedup=$(grep -o '"m2/speedup/event_vs_dense"[^]]*' \
      "$repo/build/BENCH_m2.json" |
    grep -o '"slots_per_sec":[0-9.eE+-]*' | head -n1 | cut -d: -f2)
  [[ -n "$speedup" ]] ||
    { echo "bench: m2/speedup/event_vs_dense entry missing"; exit 1; }
  awk -v s="$speedup" 'BEGIN { exit (s >= 5.0) ? 0 : 1 }' ||
    { echo "bench: event-vs-dense speedup ${speedup}x below the 5x bar"; exit 1; }
  echo "bench: event-vs-dense speedup ${speedup}x (bar: >= 5x)"
  # Same structural gate for the multi-channel engine pair: the mc event
  # path (bulk jam_run_masks over eventless runs) vs the dense mc reference.
  mc_speedup=$(grep -o '"m2/channels/speedup"[^]]*' \
      "$repo/build/BENCH_m2.json" |
    grep -o '"slots_per_sec":[0-9.eE+-]*' | head -n1 | cut -d: -f2)
  [[ -n "$mc_speedup" ]] ||
    { echo "bench: m2/channels/speedup entry missing"; exit 1; }
  awk -v s="$mc_speedup" 'BEGIN { exit (s >= 5.0) ? 0 : 1 }' ||
    { echo "bench: mc event-vs-dense speedup ${mc_speedup}x below the 5x bar"; exit 1; }
  echo "bench: mc event-vs-dense speedup ${mc_speedup}x (bar: >= 5x)"
fi

if [[ "$what" == "all" || "$what" == "sanitize" ]]; then
  run_config sanitize "$repo/build-sanitize" -DRCB_SANITIZE=ON
  echo "=== [sanitize] fuzz: scenario oracles ==="
  fuzz_stage "$repo/build-sanitize/tools/rcb_fuzz" \
    "$repo/build-sanitize/fuzz-out"
fi

if [[ "$what" == "all" || "$what" == "perf" ]]; then
  # The perf preset builds with -march=native and defaults the engines to
  # the AVX2 kernels (RCB_NATIVE_BUILD).  Worth running only where the CPU
  # actually has the instructions; elsewhere skip cleanly so "all" stays
  # green on portable runners.  The suite is the digest-critical one: the
  # event engines against the dense oracle, kernel bit-equivalence, arena
  # reuse, and cross-seed determinism — all with the wide path active.
  if grep -q avx2 /proc/cpuinfo 2>/dev/null &&
     grep -q fma /proc/cpuinfo 2>/dev/null; then
    echo "=== [perf] configure (native/AVX2) ==="
    (cd "$repo" && cmake --preset perf)
    echo "=== [perf] build engine crosscheck suite ==="
    perf_tests=(engine_crosscheck_test sampling_simd_test arena_test
                slot_engine_test sampling_test determinism_test
                mc_engine_test mc_degeneration_test)
    cmake --build "$repo/build-perf" -j "$jobs" --target "${perf_tests[@]}"
    echo "=== [perf] run engine crosscheck suite ==="
    for t in "${perf_tests[@]}"; do
      "$repo/build-perf/tests/$t"
    done
  else
    echo "=== [perf] skipped: host CPU lacks avx2+fma ==="
  fi
fi

if [[ "$what" == "chaos_net" ]]; then
  echo "=== [chaos_net] socket transport partition tolerance ==="
  chaos_net
fi

if [[ "$what" == "all" || "$what" == "tsan" ]]; then
  # TSan instruments only what it needs: the concurrency-bearing binaries
  # (pool, supervisor/scheduler, async journal).  A full test run under
  # TSan is ~10x slower for no extra thread coverage.
  echo "=== [tsan] configure ==="
  cmake -B "$repo/build-tsan" -S "$repo" -DRCB_TSAN=ON
  echo "=== [tsan] build ==="
  cmake --build "$repo/build-tsan" -j "$jobs" \
    --target thread_pool_test supervisor_test checkpoint_test \
             coordinator_test transport_test
  echo "=== [tsan] run concurrency tests ==="
  "$repo/build-tsan/tests/thread_pool_test"
  "$repo/build-tsan/tests/supervisor_test"
  "$repo/build-tsan/tests/checkpoint_test"
  "$repo/build-tsan/tests/coordinator_test"
  "$repo/build-tsan/tests/transport_test"
fi

echo "CI OK"
