// Shared Monte-Carlo runner for the command-line tools (rcb_sim,
// rcb_sweep), built on the scenario layer (rcb/runtime/scenario.hpp): one
// Scenario covers every protocol x adversary combination in the library —
// including fault injection and timeouts — and each trial runs under a
// ReproScope, so a contract failure inside any tool invocation emits a
// replayable RCB_REPRO record.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "rcb/runtime/coordinator.hpp"
#include "rcb/runtime/montecarlo.hpp"
#include "rcb/runtime/scenario.hpp"
#include "rcb/runtime/shard.hpp"
#include "rcb/runtime/supervisor.hpp"
#include "rcb/stats/summary.hpp"

namespace rcb::tools {

/// Tool-facing alias; the scenario IS the sim configuration.
using SimConfig = Scenario;

struct SimAggregate {
  bool valid = false;
  std::string error;
  double success_rate = 0.0;
  double abort_rate = 0.0;       ///< trials cut off by timeout_slots
  double mean_dead_count = 0.0;  ///< battery-exhausted nodes per trial
  double mean_crashed_count = 0.0;  ///< fault-crashed nodes per trial
  Summary max_cost;
  Summary mean_cost;
  Summary adversary_cost;
  Summary latency;
  std::vector<double> max_cost_samples;

  // Populated only by the supervised overload below.
  double timed_out_rate = 0.0;  ///< watchdog / slot-budget quarantines
  double failed_rate = 0.0;     ///< trials that exhausted the retry budget
  bool interrupted = false;     ///< stopped early on SIGINT/SIGTERM; partial
  std::size_t resumed_trials = 0;    ///< loaded from the checkpoint journal
  std::size_t executed_trials = 0;   ///< run by this invocation
  std::size_t completed_trials = 0;  ///< resumed + executed
  /// FNV-1a over (trial, outcome digest) pairs in trial order; the
  /// kill/resume chaos harness compares this against an uninterrupted run.
  std::uint64_t aggregate_digest = 0;
  /// The scenario actually run — on --resume the checkpoint manifest is
  /// authoritative, so this may differ from the flag-built config.
  Scenario scenario;
};

/// Runs the configured Monte-Carlo experiment.  On an invalid
/// protocol/adversary combination, returns valid = false with an error.
inline SimAggregate run_sim(const SimConfig& cfg,
                            ThreadPool& pool = ThreadPool::global()) {
  SimAggregate agg;
  agg.error = validate_scenario(cfg);
  if (!agg.error.empty()) return agg;

  const auto outcomes = run_trials<TrialOutcome>(
      cfg.trials, cfg.seed,
      [&](std::size_t t, Rng&) { return run_scenario_trial(cfg, t); }, pool);

  std::vector<double> mean_v, adv_v, lat_v;
  std::size_t successes = 0, aborts = 0;
  double dead = 0.0, crashed = 0.0;
  for (const auto& o : outcomes) {
    agg.max_cost_samples.push_back(o.max_cost);
    mean_v.push_back(o.mean_cost);
    adv_v.push_back(o.adversary_cost);
    lat_v.push_back(o.latency);
    successes += o.success;
    aborts += o.aborted;
    dead += static_cast<double>(o.dead_count);
    crashed += static_cast<double>(o.crashed_count);
  }
  const auto trials = static_cast<double>(cfg.trials);
  agg.max_cost = summarize(agg.max_cost_samples);
  agg.mean_cost = summarize(mean_v);
  agg.adversary_cost = summarize(adv_v);
  agg.latency = summarize(lat_v);
  agg.success_rate = static_cast<double>(successes) / trials;
  agg.abort_rate = static_cast<double>(aborts) / trials;
  agg.mean_dead_count = dead / trials;
  agg.mean_crashed_count = crashed / trials;
  agg.valid = true;
  return agg;
}

/// Reduces a finished SweepResult into the tool-facing aggregate.
/// Quarantined ("timed_out") and failed trials contribute their synthetic
/// outcomes, so the aggregate digest stays comparable across resumed runs.
inline SimAggregate aggregate_from_sweep(const SweepResult& sweep) {
  SimAggregate agg;
  if (!sweep.ok) {
    agg.error = sweep.error;
    return agg;
  }

  std::vector<double> mean_v, adv_v, lat_v;
  std::size_t successes = 0, aborts = 0, timed_out = 0, failed = 0;
  double dead = 0.0, crashed = 0.0;
  for (const CheckpointRecord& rec : sweep.records) {
    const TrialOutcome& o = rec.outcome;
    agg.max_cost_samples.push_back(o.max_cost);
    mean_v.push_back(o.mean_cost);
    adv_v.push_back(o.adversary_cost);
    lat_v.push_back(o.latency);
    successes += o.success;
    aborts += o.aborted;
    dead += static_cast<double>(o.dead_count);
    crashed += static_cast<double>(o.crashed_count);
    timed_out += rec.status == "timed_out";
    failed += rec.status == "failed";
  }
  const auto completed = static_cast<double>(sweep.records.size());
  agg.max_cost = summarize(agg.max_cost_samples);
  agg.mean_cost = summarize(mean_v);
  agg.adversary_cost = summarize(adv_v);
  agg.latency = summarize(lat_v);
  if (completed > 0) {
    agg.success_rate = static_cast<double>(successes) / completed;
    agg.abort_rate = static_cast<double>(aborts) / completed;
    agg.mean_dead_count = dead / completed;
    agg.mean_crashed_count = crashed / completed;
    agg.timed_out_rate = static_cast<double>(timed_out) / completed;
    agg.failed_rate = static_cast<double>(failed) / completed;
  }
  agg.interrupted = sweep.interrupted;
  agg.resumed_trials = sweep.resumed;
  agg.executed_trials = sweep.executed;
  agg.completed_trials = sweep.records.size();
  agg.aggregate_digest = sweep.aggregate_digest;
  agg.scenario = sweep.scenario;
  agg.valid = true;
  return agg;
}

/// Supervised variant: runs the experiment through the crash-safe sweep
/// supervisor (runtime/supervisor.hpp) — checkpoint/resume, per-trial
/// watchdogs, graceful shutdown.  On interruption the aggregate covers the
/// completed prefix (rates are over completed trials) and interrupted is
/// set so the tool can print a resume hint and exit 130.
inline SimAggregate run_sim(const SimConfig& cfg, const SupervisorOptions& sup,
                            ThreadPool& pool = ThreadPool::global()) {
  return aggregate_from_sweep(run_supervised_sweep(cfg, sup, pool));
}

/// Cross-point pipelined sweep over `cfgs`: every (point, trial) pair is
/// one work item on the pool, so long-tail trials of one point overlap
/// with trials of the next (runtime/supervisor.hpp,
/// run_supervised_sweep_points).  When `checkpoint_parent` is non-empty,
/// point i journals under "<checkpoint_parent>/point_<i>" — the same
/// layout the sequential per-point loop used, so old checkpoints resume
/// under the new scheduler.  `sup.checkpoint_dir` is ignored.
inline std::vector<SimAggregate> run_sweep_points(
    const std::vector<SimConfig>& cfgs, const SupervisorOptions& sup,
    const std::string& checkpoint_parent,
    ThreadPool& pool = ThreadPool::global()) {
  std::vector<SweepPoint> points(cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    points[i].scenario = cfgs[i];
    if (!checkpoint_parent.empty()) {
      points[i].checkpoint_dir =
          checkpoint_parent + "/point_" + std::to_string(i);
    }
  }
  const std::vector<SweepResult> sweeps =
      run_supervised_sweep_points(points, sup, pool);
  std::vector<SimAggregate> aggs;
  aggs.reserve(sweeps.size());
  for (const SweepResult& sweep : sweeps) {
    aggs.push_back(aggregate_from_sweep(sweep));
  }
  return aggs;
}

/// Transport and control-plane knobs for run_sweep_sharded; the defaults
/// reproduce the original local fork/exec behaviour.
struct ShardedTransportOptions {
  TransportKind transport = TransportKind::kLocalProcess;
  /// Socket only: listener address (port 0 = ephemeral, printed on bind).
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;
  /// Socket only: fork our own --attach fleet; false parks until external
  /// workers attach.
  bool spawn_workers = true;
  double lease_timeout_sec = 10.0;
  double heartbeat_interval_sec = 0.1;
  /// Seeded control-plane chaos (tests/CI; 0 seed = off).
  NetFaultConfig net_faults;
  /// Forwarded to CoordinatorOptions::on_listen.
  std::function<void(std::uint16_t port)> on_listen;
};

/// Result of a multi-process sharded sweep (rcb_sweep --workers=N).
struct ShardedSweepOutcome {
  bool ok = false;
  std::string error;
  bool interrupted = false;          ///< graceful shutdown; resume with root
  std::size_t shards_completed = 0;
  std::size_t worker_restarts = 0;   ///< shards reassigned after a crash
  std::vector<SimAggregate> points;  ///< one per cfg, same as in-process
};

/// Multi-process sharded sweep: partitions every (point, trial) range into
/// shards (runtime/shard.hpp), fork/execs up to `workers` worker processes
/// over them via the coordinator (runtime/coordinator.hpp), and merges the
/// shard journals into per-point aggregates.  The merged aggregate_digest
/// per point is bit-identical to run_sweep_points with the same cfgs —
/// regardless of worker count, worker crashes, or coordinator restarts.
/// `root` holds sweep.json and the shard_<i>/ checkpoint dirs;
/// `worker_threads` is the per-worker pool size (<= 0: one worker's fair
/// share of the affinity mask).  sup.resume re-adopts an existing root.
inline ShardedSweepOutcome run_sweep_sharded(
    const std::vector<SimConfig>& cfgs, const SupervisorOptions& sup,
    const std::string& root, std::size_t workers, int worker_threads,
    const ShardedTransportOptions& transport = {}) {
  ShardSpec spec;
  if (worker_threads <= 0) {
    const std::size_t share =
        ThreadPool::default_concurrency() / std::max<std::size_t>(workers, 1);
    worker_threads = static_cast<int>(std::max<std::size_t>(share, 1));
  }
  spec.worker_threads = worker_threads;
  spec.trial_timeout_sec = sup.trial_timeout_sec;
  spec.trial_slot_budget = sup.trial_slot_budget;
  spec.max_retries = sup.max_retries;
  spec.heartbeat_interval_sec = transport.heartbeat_interval_sec;
  spec.points = cfgs;
  std::vector<std::uint64_t> trials_per_point;
  trials_per_point.reserve(cfgs.size());
  for (const SimConfig& cfg : cfgs) trials_per_point.push_back(cfg.trials);
  // More shards than workers: losing a worker then only forfeits a fraction
  // of its trials, and stragglers rebalance across the survivors.
  spec.shards = make_shard_plan(trials_per_point,
                                std::max<std::size_t>(workers, 1) * 4);

  CoordinatorOptions copt;
  copt.root = root;
  copt.workers = workers;
  copt.resume = sup.resume;
  copt.transport = transport.transport;
  copt.listen_host = transport.listen_host;
  copt.listen_port = transport.listen_port;
  copt.spawn_workers = transport.spawn_workers;
  copt.lease_timeout_sec = transport.lease_timeout_sec;
  copt.net_faults = transport.net_faults;
  copt.on_listen = transport.on_listen;
  const CoordinatorResult res = run_shard_coordinator(spec, copt);

  ShardedSweepOutcome out;
  out.interrupted = res.interrupted;
  out.shards_completed = res.shards_completed;
  out.worker_restarts = res.worker_restarts;
  out.error = res.error;
  if (!res.ok) return out;
  out.points.reserve(res.points.size());
  for (const SweepResult& sweep : res.points) {
    out.points.push_back(aggregate_from_sweep(sweep));
  }
  out.ok = true;
  return out;
}

}  // namespace rcb::tools
