// Shared Monte-Carlo runner for the command-line tools (rcb_sim,
// rcb_sweep): one config struct covering every protocol x adversary
// combination in the library, and an aggregate-result runner.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rcb/adversary/spoofing.hpp"
#include "rcb/adversary/strategies.hpp"
#include "rcb/adversary/two_uniform.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/protocols/combined.hpp"
#include "rcb/protocols/ksy.hpp"
#include "rcb/protocols/naive_broadcast.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/protocols/sqrt_broadcast.hpp"
#include "rcb/runtime/montecarlo.hpp"
#include "rcb/stats/summary.hpp"

namespace rcb::tools {

struct SimConfig {
  std::string protocol = "one_to_one";  // ksy|combined|broadcast|naive|sqrt
  std::string adversary = "none";
  Cost budget = 16384;
  double q = 0.6;
  double rate = 0.3;
  std::uint32_t n = 32;
  double eps = 0.01;
  std::size_t trials = 100;
  std::uint64_t seed = 1;
  std::uint32_t max_epoch_extra = 0;  // 0 = protocol default

  bool is_broadcast() const {
    return protocol == "broadcast" || protocol == "naive" ||
           protocol == "sqrt";
  }
};

struct SimAggregate {
  bool valid = false;
  std::string error;
  double success_rate = 0.0;
  Summary max_cost;
  Summary mean_cost;
  Summary adversary_cost;
  Summary latency;
  std::vector<double> max_cost_samples;
};

inline std::unique_ptr<RepetitionAdversary> make_broadcast_adversary(
    const SimConfig& cfg) {
  if (cfg.adversary == "none") return std::make_unique<NoJamAdversary>();
  if (cfg.adversary == "suffix") {
    return std::make_unique<SuffixBlockerAdversary>(Budget(cfg.budget), cfg.q);
  }
  if (cfg.adversary == "fraction") {
    return std::make_unique<EpochFractionBlockerAdversary>(Budget(cfg.budget),
                                                           cfg.q, 0.5);
  }
  if (cfg.adversary == "random") {
    return std::make_unique<RandomJammerAdversary>(Budget(cfg.budget),
                                                   cfg.rate);
  }
  if (cfg.adversary == "burst") {
    return std::make_unique<BurstJammerAdversary>(Budget(cfg.budget), 8, 16);
  }
  return nullptr;
}

inline std::unique_ptr<DuelAdversary> make_duel_adversary(
    const SimConfig& cfg) {
  if (cfg.adversary == "none") return std::make_unique<DuelNoJam>();
  if (cfg.adversary == "send_phase") {
    return std::make_unique<SendPhaseBlocker>(Budget(cfg.budget), cfg.q);
  }
  if (cfg.adversary == "nack_phase") {
    return std::make_unique<NackPhaseBlocker>(Budget(cfg.budget), cfg.q);
  }
  if (cfg.adversary == "full_duel") {
    return std::make_unique<FullDuelBlocker>(Budget(cfg.budget), cfg.q);
  }
  if (cfg.adversary == "both_views") {
    return std::make_unique<BothViewsSuffixBlocker>(Budget(cfg.budget), cfg.q);
  }
  if (cfg.adversary == "sym_random") {
    return std::make_unique<SymmetricRandomDuelJammer>(Budget(cfg.budget),
                                                       cfg.rate);
  }
  if (cfg.adversary == "spoof") {
    return std::make_unique<SpoofingNackAdversary>(Budget(cfg.budget));
  }
  return nullptr;
}

/// Runs the configured Monte-Carlo experiment.  On an invalid
/// protocol/adversary combination, returns valid = false with an error.
inline SimAggregate run_sim(const SimConfig& cfg) {
  SimAggregate agg;
  if (cfg.is_broadcast()) {
    if (!make_broadcast_adversary(cfg)) {
      agg.error = "unknown broadcast adversary '" + cfg.adversary + "'";
      return agg;
    }
  } else if (cfg.protocol == "one_to_one" || cfg.protocol == "ksy" ||
             cfg.protocol == "combined") {
    if (!make_duel_adversary(cfg)) {
      agg.error = "unknown 1-to-1 adversary '" + cfg.adversary + "'";
      return agg;
    }
  } else {
    agg.error = "unknown protocol '" + cfg.protocol + "'";
    return agg;
  }

  struct Outcome {
    double max_cost = 0, mean_cost = 0, adversary_cost = 0, latency = 0;
    bool success = false;
  };
  auto outcomes = run_trials<Outcome>(
      cfg.trials, cfg.seed, [&](std::size_t, Rng& rng) {
        Outcome out;
        if (cfg.is_broadcast()) {
          auto adv = make_broadcast_adversary(cfg);
          BroadcastNResult r;
          if (cfg.protocol == "sqrt") {
            OneToOneParams params = OneToOneParams::sim(cfg.eps);
            if (cfg.max_epoch_extra > 0) {
              params.max_epoch = params.first_epoch() + cfg.max_epoch_extra;
            }
            r = run_sqrt_broadcast(cfg.n, params, *adv, rng);
          } else {
            BroadcastNParams params = BroadcastNParams::sim();
            if (cfg.max_epoch_extra > 0) {
              params.max_epoch = params.first_epoch + cfg.max_epoch_extra;
            }
            r = cfg.protocol == "broadcast"
                    ? run_broadcast_n(cfg.n, params, *adv, rng)
                    : run_naive_broadcast(cfg.n, params, *adv, rng);
          }
          out.max_cost = static_cast<double>(r.max_cost);
          out.mean_cost = r.mean_cost;
          out.adversary_cost = static_cast<double>(r.adversary_cost);
          out.latency = static_cast<double>(r.latency);
          out.success = r.all_informed;
        } else {
          auto adv = make_duel_adversary(cfg);
          OneToOneResult r;
          if (cfg.protocol == "one_to_one") {
            OneToOneParams params = OneToOneParams::sim(cfg.eps);
            if (cfg.max_epoch_extra > 0) {
              params.max_epoch = params.first_epoch() + cfg.max_epoch_extra;
            }
            r = run_one_to_one(params, *adv, rng);
          } else if (cfg.protocol == "ksy") {
            KsyParams params;
            if (cfg.max_epoch_extra > 0) {
              params.max_epoch = params.first_epoch + cfg.max_epoch_extra;
            }
            r = run_ksy(params, *adv, rng);
          } else {
            CombinedParams params;
            params.fig1 = OneToOneParams::sim(cfg.eps);
            if (cfg.max_epoch_extra > 0) {
              params.fig1.max_epoch =
                  params.fig1.first_epoch() + cfg.max_epoch_extra;
              params.ksy.max_epoch =
                  params.ksy.first_epoch + cfg.max_epoch_extra;
            }
            r = run_combined(params, *adv, rng);
          }
          out.max_cost = static_cast<double>(r.max_cost());
          out.mean_cost =
              static_cast<double>(r.alice_cost + r.bob_cost) / 2.0;
          out.adversary_cost = static_cast<double>(r.adversary_cost);
          out.latency = static_cast<double>(r.latency);
          out.success = r.delivered;
        }
        return out;
      });

  std::vector<double> mean_v, adv_v, lat_v;
  std::size_t successes = 0;
  for (const auto& o : outcomes) {
    agg.max_cost_samples.push_back(o.max_cost);
    mean_v.push_back(o.mean_cost);
    adv_v.push_back(o.adversary_cost);
    lat_v.push_back(o.latency);
    successes += o.success;
  }
  agg.max_cost = summarize(agg.max_cost_samples);
  agg.mean_cost = summarize(mean_v);
  agg.adversary_cost = summarize(adv_v);
  agg.latency = summarize(lat_v);
  agg.success_rate =
      static_cast<double>(successes) / static_cast<double>(cfg.trials);
  agg.valid = true;
  return agg;
}

}  // namespace rcb::tools
