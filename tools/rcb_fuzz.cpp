// rcb_fuzz — scenario-fuzzing harness with differential oracles and
// automatic shrinking.
//
//   rcb_fuzz --seed=1 --cases=500                # deterministic sweep
//   rcb_fuzz --seed=1 --cases=200 --out=fuzz-out # write minimized failures
//   rcb_fuzz --canary                            # harness self-check
//
// Samples `cases` scenarios from the full scenario space (every protocol,
// every adversary, faults on/off, CCA drift, battery mode) and runs each
// through the oracle set: digest determinism, energy-ledger conservation
// and adversary budget accounting, event-driven vs dense-slotwise engine
// crosscheck, and metamorphic monotonicity.  A violation is delta-debugged
// to a minimal failing case and emitted as a replayable scenario JSON plus
// an RCB_REPRO record for `rcb_replay --verify`.
//
// Exit codes: 0 clean sweep (or canary caught AND shrunk to <= 1/4 size),
// 1 usage error, 2 oracle violations found (or canary missed).
#include <iostream>
#include <string>

#include "rcb/cli/flags.hpp"
#include "rcb/testing/fuzzer.hpp"
#include "rcb/testing/shrink.hpp"

namespace rcb {
namespace {

int run_tool(int argc, const char* const* argv) {
  FlagSet flags(
      "rcb_fuzz: scenario fuzzer with differential oracles and automatic "
      "shrinking");
  flags.add_int("seed", 1, "master seed for the scenario generator");
  flags.add_int("cases", 200, "number of scenarios to generate and check");
  flags.add_string("out", "", "directory minimized failures are written to");
  flags.add_bool("canary", false,
                 "inject a known ledger-accounting mutation and verify the "
                 "harness detects and shrinks it (harness self-check)");
  flags.add_int("shrink_evals", 150,
                "evaluation budget for delta-debugging each failure");
  flags.add_int("crosscheck_trials", 60,
                "paired engine runs per statistical crosscheck");
  flags.add_double("family_alpha", 1e-6,
                   "per-scenario family-wise false-positive rate for the "
                   "statistical gates (Bonferroni-split across comparisons)");
  flags.add_bool("quiet", false, "suppress progress output");
  if (!flags.parse(argc, argv)) return 1;

  FuzzOptions opt;
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  opt.cases = static_cast<std::uint64_t>(flags.get_int("cases"));
  opt.out_dir = flags.get_string("out");
  opt.canary = flags.get_bool("canary");
  opt.shrink_evaluations =
      static_cast<std::size_t>(flags.get_int("shrink_evals"));
  opt.oracles.crosscheck_trials =
      static_cast<std::size_t>(flags.get_int("crosscheck_trials"));
  opt.oracles.family_alpha = flags.get_double("family_alpha");
  if (!flags.get_bool("quiet")) opt.log = &std::cerr;

  const FuzzReport report = run_fuzz(opt);

  if (opt.canary) {
    if (!report.canary_caught) {
      std::cerr << "FAIL: canary mutation not detected — oracle set is "
                   "vacuous\n";
      return 2;
    }
    const bool shrunk_enough =
        report.canary_shrunk_size * 4 <= report.canary_original_size;
    std::cerr << "canary caught; scenario size " << report.canary_original_size
              << " -> " << report.canary_shrunk_size << " ("
              << (shrunk_enough ? "<= 1/4, OK" : "NOT <= 1/4") << ")\n";
    return shrunk_enough ? 0 : 2;
  }

  std::cerr << report.cases_run << " scenarios checked, "
            << report.failures.size() << " violation(s)\n";
  for (const FuzzFailure& f : report.failures) {
    std::cerr << "VIOLATION case " << f.case_index << " [" << f.oracle
              << "] " << f.detail << "\n  minimized: "
              << scenario_to_json(f.minimized) << "\n";
    if (!f.scenario_path.empty()) {
      std::cerr << "  minimized scenario: " << f.scenario_path
                << "\n  repro record:       " << f.record_path << "\n";
    }
  }
  return report.failures.empty() ? 0 : 2;
}

}  // namespace
}  // namespace rcb

int main(int argc, char** argv) { return rcb::run_tool(argc, argv); }
