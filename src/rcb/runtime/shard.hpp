// Deterministic sharding of a sweep's (point, trial) space for the
// multi-process executor (runtime/coordinator.hpp).
//
// A *shard* is a contiguous trial range of one sweep point — shards never
// span points, because each shard's checkpoint manifest embeds that
// point's full scenario and the PR 3 corruption taxonomy keys every
// journal record on the scenario digest.  The shard plan is a pure
// function of (trials per point, target shard count), so a resumed
// coordinator recomputes the identical plan and re-adopts shard journals
// by index.
//
// On disk a sharded sweep root looks like:
//
//   <root>/sweep.json    the shard spec: scenarios, supervisor knobs and
//                        the shard plan, written atomically once at sweep
//                        start (authoritative on --resume, mirroring the
//                        manifest-wins rule of single-process resume)
//   <root>/shard_<i>/    a standard checkpoint dir (manifest.json +
//                        journal.rcbj) owned by whichever worker process
//                        currently holds shard i, plus its lease file
//   <root>/shard_<i>/try_<k>/
//                        per-assignment-attempt checkpoint dirs used by the
//                        socket transport (runtime/transport_socket.hpp):
//                        a partitioned worker that was revoked keeps
//                        appending to its *own* attempt dir, so it can
//                        never corrupt the replacement's journal.  The
//                        local transport keeps journaling in shard_<i>/
//                        itself (revocation there really kills the
//                        process), which also keeps pre-socket sweep roots
//                        resumable as-is.
//
// scan_shard considers every candidate (the base dir plus each try_<k>):
// any corrupt candidate refuses the shard; multiple *complete* candidates
// — two workers both finished the shard across a partition — must agree on
// their aggregate digest, in which case one is adopted and the rest are
// ignored (deduped, never merged twice); divergent complete candidates
// refuse loudly, because a digest disagreement on identical assigned work
// means one journal is fabricated.  Otherwise the partial candidate with
// the most records is the resume basis.
//
// merge_shard_journals folds the per-shard journals back into per-point
// results.  Because every trial is a pure function of (scenario, trial
// index) and records carry absolute trial indices, the merged
// aggregate_digest is bit-identical to a single-process run regardless of
// worker count, kill schedule, or retry history.  The merge *refuses*
// (rather than repairs) anything inconsistent: a record outside its
// shard's assigned range, the same trial present in two journals, a
// scenario-digest mismatch, or a missing trial — silently double-counting
// or dropping trials would fabricate experiment results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rcb/runtime/supervisor.hpp"

namespace rcb {

/// One shard: the half-open trial range [begin, end) of sweep point
/// `point`.  `end == begin` (an empty shard) is legal and merges as zero
/// records.
struct ShardAssignment {
  std::size_t point = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  friend bool operator==(const ShardAssignment& a, const ShardAssignment& b) {
    return a.point == b.point && a.begin == b.begin && a.end == b.end;
  }
};

/// Splits each point's trial range into contiguous chunks of roughly
/// total_trials / target_shards trials, in (point, begin) order.  Every
/// point contributes at least one shard (so a point's checkpoint dir
/// always exists) and each shard stays within one point.  Deterministic;
/// `target_shards` is a hint, not an exact count.
std::vector<ShardAssignment> make_shard_plan(
    const std::vector<std::uint64_t>& trials_per_point,
    std::size_t target_shards);

/// Everything a worker process needs to run its shard: the scenarios, the
/// supervisor policy knobs, and the shard plan.
struct ShardSpec {
  /// Threads per worker process (<= 0: ThreadPool::default_concurrency()).
  int worker_threads = 1;
  double trial_timeout_sec = 0.0;
  SlotCount trial_slot_budget = 0;
  std::uint32_t max_retries = 0;
  /// Worker liveness beat period: the local transport's lease-file rewrite
  /// cadence and the socket transport's status-frame cadence.  Part of the
  /// spec (not a coordinator runtime knob) so every worker of a sweep —
  /// including ones attached from other machines — beats at the same rate
  /// the coordinator's lease timeout was validated against.
  double heartbeat_interval_sec = 0.1;
  std::vector<Scenario> points;
  std::vector<ShardAssignment> shards;
};

/// "" when the spec is internally consistent: at least one point, every
/// scenario valid, and each point's shards exactly tiling [0, trials)
/// without gaps or overlap (overlap would double-count trials at merge).
std::string validate_shard_spec(const ShardSpec& spec);

/// Checkpoint dir of shard `shard_id` under `root`.
std::string shard_dir(const std::string& root, std::size_t shard_id);

/// Per-assignment-attempt checkpoint dir ("<shard dir>/try_<attempt>"),
/// used by the socket transport; attempt 0 is the base shard dir itself.
std::string shard_attempt_dir(const std::string& root, std::size_t shard_id,
                              std::uint32_t attempt);

/// First attempt number with no existing try_ dir (1 + the highest on
/// disk).  A resumed coordinator starts here so a partitioned worker still
/// appending to try_<k> can never share a journal with the replacement.
std::uint32_t next_shard_attempt(const std::string& root,
                                 std::size_t shard_id);

/// Creates shard_attempt_dir(root, shard_id, attempt) and seeds it with a
/// byte copy of the best resumable candidate's manifest + journal (if any),
/// so the new attempt resumes its predecessor's progress instead of
/// redoing the shard.  Copying (not renaming) is deliberate: the source
/// may still be appended to by a partitioned worker, and a copy sheared
/// mid-record is just a truncated tail — recoverable by the PR 3 taxonomy
/// — while the source inode stays the old worker's own.  Returns "" or an
/// error description.
std::string prepare_shard_attempt(const std::string& root,
                                  const ShardSpec& spec, std::size_t shard_id,
                                  std::uint32_t attempt);

/// Path of the shard spec file under `root` ("<root>/sweep.json").
std::string shard_spec_path(const std::string& root);

/// Validates and writes the spec atomically to shard_spec_path(root),
/// creating `root` if needed.  Returns "" or an error description.
std::string write_shard_spec(const std::string& root, const ShardSpec& spec);

struct ShardSpecLoadResult {
  bool ok = false;
  std::string error;
  ShardSpec spec;
};

/// Reads and validates shard_spec_path(root).
ShardSpecLoadResult load_shard_spec(const std::string& root);

/// What a coordinator found in one shard's checkpoint dir.
enum class ShardScanState {
  kMissing,   ///< no manifest yet: the shard never started
  kPartial,   ///< valid journal, not all assigned trials present: resumable
  kComplete,  ///< every assigned trial journaled: adoptable as-is
  kCorrupt,   ///< refuse: corrupt journal, wrong scenario, or out-of-range
};

struct ShardScan {
  ShardScanState state = ShardScanState::kMissing;
  std::string error;  ///< set for kCorrupt
  std::string dir;    ///< adopted candidate dir (kComplete / kPartial)
  std::vector<CheckpointRecord> records;
};

/// Classifies shard `shard_id`'s checkpoint dirs — the base dir plus every
/// try_<k> attempt dir — against the spec.  Corrupt means the PR 3
/// taxonomy refused a journal, a manifest scenario does not match the
/// spec's point scenario, a record lies outside the shard's assigned range
/// (the journal belongs to a different shard assignment), or two complete
/// candidates disagree on their aggregate digest; a truncated tail alone
/// is recoverable and scans as kPartial/kComplete.  Multiple complete
/// candidates with identical digests dedupe to one (duplicate completions
/// after a partition are adopted once, never merged twice).
ShardScan scan_shard(const std::string& root, const ShardSpec& spec,
                     std::size_t shard_id);

struct ShardMergeResult {
  bool ok = false;
  std::string error;
  /// One result per spec point, same shape as run_supervised_sweep_points:
  /// records sorted by trial, aggregate_digest over them.
  std::vector<SweepResult> points;
};

/// Folds every shard journal under `root` into per-point results.  Fails —
/// refusing the whole merge — on any corrupt shard, duplicate trial across
/// journals, or missing trial; on success each point's aggregate_digest is
/// bit-identical to the single-process reference.
ShardMergeResult merge_shard_journals(const std::string& root,
                                      const ShardSpec& spec);

}  // namespace rcb
