// Multi-process sweep coordinator: fork/exec workers over a shard plan,
// watch them with heartbeat leases, and reassign the shards of crashed or
// wedged workers.
//
// Process model
//
//   coordinator (rcb_sweep --workers=N)
//     ├─ writes <root>/sweep.json (runtime/shard.hpp) once, atomically
//     ├─ fork/execs up to N workers: the *same binary* re-entered via the
//     │  internal --shard_worker flag, each running the existing
//     │  supervised sweep over its shard's trial range into
//     │  <root>/shard_<i>/
//     ├─ watches workers: pipe liveness (a pipe write end inherited across
//     │  exec reads EOF the instant the worker dies, even if waitpid lags)
//     │  + a lease file per shard that the worker's heartbeat thread
//     │  rewrites every ~100ms (mtime refresh); a lease older than
//     │  lease_timeout_sec means the worker is wedged (alive but not
//     │  making progress) and gets SIGKILLed
//     ├─ reassigns the shard of any dead worker with bounded retry +
//     │  exponential backoff; the journal the dead worker left behind is
//     │  resumed, not discarded, so a kill costs at most the un-journaled
//     │  suffix of one shard
//     └─ merges shard journals into per-point results whose
//        aggregate_digest is bit-identical to a single-process run
//
// Failure matrix (pinned by tests/coordinator_test.cpp and the ci.sh
// chaos_multiproc stage):
//
//   worker SIGKILL      shard rescanned, partial journal resumed by the
//                       replacement worker; digest unchanged
//   worker hang/wedge   lease goes stale, coordinator SIGKILLs and
//                       reassigns; digest unchanged
//   worker always dies  bounded retries exhaust, the sweep fails loudly
//                       (never spins forever, never reports partial data)
//   coordinator SIGKILL workers die with it (PR_SET_PDEATHSIG); re-running
//                       with resume=true re-adopts completed shard
//                       journals, resumes partial ones, refuses corrupt
//                       ones (PR 3 taxonomy); digest unchanged
//   SIGINT/SIGTERM      graceful: workers get SIGTERM, drain their
//                       journals, and the result reports interrupted so
//                       tools print a resume hint
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rcb/runtime/shard.hpp"

namespace rcb {

struct CoordinatorOptions {
  /// Sweep root: holds sweep.json and the shard_<i>/ checkpoint dirs.
  std::string root;
  /// Max concurrent worker processes (>= 1).
  std::size_t workers = 1;
  /// Re-adopt an existing <root>/sweep.json and the shard journals under
  /// it; the on-disk spec is then authoritative (like the manifest on
  /// single-process resume).  When false, stale shard state under root is
  /// removed and the sweep starts fresh.
  bool resume = false;
  /// A worker whose lease file is older than this is considered wedged and
  /// is SIGKILLed + reassigned (0 disables the lease watchdog; pipe/waitpid
  /// still catch plain crashes).
  double lease_timeout_sec = 10.0;
  /// Reassignment budget per shard: a shard whose worker dies more than
  /// this many times fails the sweep.  Generous by default so a chaos
  /// harness killing random workers in a loop converges anyway.
  std::uint32_t max_shard_retries = 25;
  /// First retry of a shard waits this long, doubling per subsequent
  /// retry (decorrelates a crashing shard from a struggling machine).
  double backoff_base_sec = 0.05;
  /// Builds the argv for the worker process of shard `shard_id`; argv[0]
  /// is the executable path.  Defaults (when unset) to re-entering the
  /// current executable: {/proc/self/exe, --shard_worker=<root>,
  /// --shard_id=<i>}.  Tests substitute crashing or wedging workers here.
  std::function<std::vector<std::string>(std::size_t shard_id)> worker_argv;
  /// Test hook, called with (shard_id, pid) after each successful spawn —
  /// the chaos tests SIGKILL/SIGSTOP workers from it.
  std::function<void(std::size_t shard_id, pid_t pid)> on_worker_spawn;
  /// Test hook: abort the coordinator (as if SIGKILLed, workers killed too)
  /// once this many shards have completed.  0 = off.
  std::size_t simulate_crash_after_shards = 0;
};

struct CoordinatorResult {
  bool ok = false;
  std::string error;
  /// Graceful shutdown (SIGINT/SIGTERM) stopped the sweep before every
  /// shard finished; re-run with resume=true to continue.
  bool interrupted = false;
  std::size_t shards_completed = 0;
  std::size_t worker_restarts = 0;  ///< reassignments across all shards
  /// One merged result per spec point (empty unless ok).
  std::vector<SweepResult> points;
};

/// Runs `spec` under `opt` to completion (or failure/interruption).  On a
/// fresh run the spec is written to opt.root; on resume the on-disk spec
/// wins and `spec` is ignored.  Blocks until every shard is merged, the
/// retry budget is exhausted, or shutdown is requested.  Not reentrant;
/// one coordinator per process.
CoordinatorResult run_shard_coordinator(const ShardSpec& spec,
                                        const CoordinatorOptions& opt);

/// Worker-mode entry point (the target of --shard_worker): runs shard
/// `shard_id` of the spec at `root` into its shard dir, heartbeating the
/// lease file, resuming any journal left by a predecessor.  Returns a
/// process exit code: 0 complete, 130 interrupted by signal, 2 bad
/// spec/arguments, 1 any other failure.
int run_shard_worker(const std::string& root, std::size_t shard_id,
                     const TrialRunner& runner);
int run_shard_worker(const std::string& root, std::size_t shard_id);

/// Name of the lease file inside a shard dir (exposed for tests).
extern const char kShardLeaseFile[];

}  // namespace rcb
