// Multi-process sweep coordinator: drive workers over a shard plan through
// a pluggable transport (runtime/transport.hpp), watch them with heartbeat
// leases, and reassign the shards of crashed, wedged, or partitioned
// workers.
//
// Process model
//
//   coordinator (rcb_sweep --workers=N [--transport=socket])
//     ├─ writes <root>/sweep.json (runtime/shard.hpp) once, atomically
//     ├─ drives a WorkerTransport:
//     │    local   fork/exec up to N workers — the *same binary* re-entered
//     │            via the internal --shard_worker flag — watched by pipe
//     │            liveness + per-shard lease files (mtime heartbeat)
//     │    socket  a TCP listener that workers (same binary, --attach)
//     │            connect to; liveness is the framed control protocol's
//     │            heartbeats (runtime/transport_socket.hpp)
//     ├─ reassigns the shard of any dead/wedged/partitioned worker with
//     │  bounded retry + exponential backoff; the journal the previous
//     │  holder left behind is resumed, not discarded, so a kill costs at
//     │  most the un-journaled suffix of one shard
//     ├─ parks (warns and idles, rather than failing) when the socket
//     │  worker fleet shrinks to zero, resuming when workers re-attach
//     └─ merges shard journals into per-point results whose
//        aggregate_digest is bit-identical to a single-process run
//
// Failure matrix (pinned by tests/coordinator_test.cpp and the ci.sh
// chaos_multiproc / chaos_net stages):
//
//   worker SIGKILL      shard rescanned, partial journal resumed by the
//                       replacement worker; digest unchanged
//   worker hang/wedge   lease goes stale, coordinator revokes (SIGKILL /
//                       connection severed) and reassigns; digest unchanged
//   worker partitioned  socket lease expires, shard reassigned under a
//                       fresh attempt dir; the returning worker is told to
//                       abandon; duplicate completions dedupe by digest
//                       equality, divergent ones refuse loudly
//   worker always dies  bounded retries exhaust, the sweep fails loudly
//                       (never spins forever, never reports partial data)
//   control-plane chaos dropped/delayed/duplicated/reordered/closed frames
//                       reconcile by retransmission (at-least-once,
//                       idempotent); digest unchanged
//   coordinator SIGKILL local workers die with it (PR_SET_PDEATHSIG);
//                       socket workers park and re-attach; re-running with
//                       resume=true re-adopts completed shard journals,
//                       resumes partial ones, refuses corrupt ones (PR 3
//                       taxonomy); digest unchanged
//   SIGINT/SIGTERM      graceful: workers drain their journals, and the
//                       result reports interrupted so tools print a
//                       resume hint
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rcb/runtime/shard.hpp"
#include "rcb/runtime/transport.hpp"

namespace rcb {

struct CoordinatorOptions {
  /// Sweep root: holds sweep.json and the shard_<i>/ checkpoint dirs.
  std::string root;
  /// Worker backend: fork/exec on this machine, or socket-attached.
  TransportKind transport = TransportKind::kLocalProcess;
  /// Max concurrent local worker processes, or (socket) the self-spawned
  /// --attach fleet size.  Socket transports accept 0 when external
  /// workers will attach (spawn_workers == false).
  std::size_t workers = 1;
  /// Socket only: fork our own --attach workers (respawned with backoff
  /// when they die).  false parks until external workers attach.
  bool spawn_workers = true;
  /// Socket only: listener address (numeric IPv4; port 0 = ephemeral,
  /// reported via on_listen).
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;
  /// Called once with the bound listener port (socket only).
  std::function<void(std::uint16_t port)> on_listen;
  /// Re-adopt an existing <root>/sweep.json and the shard journals under
  /// it; the on-disk spec is then authoritative (like the manifest on
  /// single-process resume).  When false, stale shard state under root is
  /// removed and the sweep starts fresh.
  bool resume = false;
  /// A worker silent for longer than this — stale lease file (local) or no
  /// control frame (socket) — is revoked and its shard reassigned (0
  /// disables the watchdog; process death is still caught on local).
  /// Validated against the spec's heartbeat_interval_sec: must exceed 2x.
  double lease_timeout_sec = 10.0;
  /// Reassignment budget per shard: a shard whose worker dies more than
  /// this many times fails the sweep.  Generous by default so a chaos
  /// harness killing random workers in a loop converges anyway.
  std::uint32_t max_shard_retries = 25;
  /// First retry of a shard waits this long, doubling per subsequent
  /// retry (decorrelates a crashing shard from a struggling machine).
  double backoff_base_sec = 0.05;
  /// Deterministic control-plane fault injection, threaded through the
  /// transport (socket: per-frame; local: per-observation).
  NetFaultConfig net_faults;
  /// Builds the argv for the worker process of shard `shard_id` (local
  /// transport); argv[0] is the executable path.  Defaults (when unset) to
  /// re-entering the current executable: {/proc/self/exe,
  /// --shard_worker=<root>, --shard_id=<i>}.  Tests substitute crashing or
  /// wedging workers here.
  std::function<std::vector<std::string>(std::size_t shard_id)> worker_argv;
  /// Builds the argv for self-spawned --attach workers (socket transport);
  /// defaults to {/proc/self/exe, --attach=<host>:<port>}.
  std::function<std::vector<std::string>(std::size_t worker_index)>
      attach_argv;
  /// Test hook, called with (shard_id | worker_index, pid) after each
  /// successful spawn — the chaos tests SIGKILL/SIGSTOP workers from it.
  std::function<void(std::size_t shard_id, pid_t pid)> on_worker_spawn;
  /// Test hook: abort the coordinator (as if SIGKILLed, workers killed too)
  /// once this many shards have completed.  0 = off.
  std::size_t simulate_crash_after_shards = 0;
};

struct CoordinatorResult {
  bool ok = false;
  std::string error;
  /// Graceful shutdown (SIGINT/SIGTERM) stopped the sweep before every
  /// shard finished; re-run with resume=true to continue.
  bool interrupted = false;
  std::size_t shards_completed = 0;
  std::size_t worker_restarts = 0;  ///< reassignments across all shards
  /// One merged result per spec point (empty unless ok).
  std::vector<SweepResult> points;
};

/// Runs `spec` under `opt` to completion (or failure/interruption).  On a
/// fresh run the spec is written to opt.root; on resume the on-disk spec
/// wins and `spec` is ignored.  Blocks until every shard is merged, the
/// retry budget is exhausted, or shutdown is requested.  Not reentrant;
/// one coordinator per process.
CoordinatorResult run_shard_coordinator(const ShardSpec& spec,
                                        const CoordinatorOptions& opt);

/// Runs one shard attempt — the supervised sweep over shard `shard_id`'s
/// trial range, journaling into `dir` (created if needed), resuming any
/// journal already there.  The shared worker core of both the local
/// --shard_worker path and the socket --attach path.
SweepResult run_shard_attempt(const ShardSpec& spec, std::size_t shard_id,
                              const std::string& dir,
                              const TrialRunner& runner);

/// Worker-mode entry point (the target of --shard_worker): runs shard
/// `shard_id` of the spec at `root` into its shard dir, heartbeating the
/// lease file at the spec's heartbeat interval, resuming any journal left
/// by a predecessor.  Returns a process exit code: 0 complete, 130
/// interrupted by signal, 2 bad spec/arguments, 1 any other failure.
int run_shard_worker(const std::string& root, std::size_t shard_id,
                     const TrialRunner& runner);
int run_shard_worker(const std::string& root, std::size_t shard_id);

}  // namespace rcb
