// TCP worker transport: socket-attached sweep workers behind the framed
// control protocol of runtime/transport.hpp.
//
// Topology: the coordinator binds a TCP listener; workers — the same
// binary, re-entered via --attach=host:port — connect in and speak RCBC
// control frames.  The socket carries *control only* (assignment, status,
// acks); the data plane stays the shared-filesystem journals of
// runtime/shard.hpp, one try_<attempt> checkpoint dir per assignment, so
// the journal-completeness rules that make the local transport
// crash-consistent apply unchanged to remote workers.
//
// Liveness and partitions.  Every worker beat (heartbeat_interval from the
// shard spec) retransmits the worker's full state; the coordinator treats
// silence from a shard's holder past the lease timeout as a partition and
// revokes: the connection is dropped, the holder's pid is SIGKILLed when
// it was self-spawned (same host), and the shard is reassigned under a
// fresh attempt dir seeded with the best partial journal.  A revoked
// worker that was merely partitioned keeps appending to its *own* attempt
// dir — harmless — and is told to abandon the moment it reconnects and
// reports the stale claim.  Duplicate completions (both the revoked and
// the replacement worker finished) are resolved at scan time by digest
// equality, adopted once, never merged twice; divergent digests refuse the
// sweep loudly.
//
// Reconnection.  Workers reconnect with exponential backoff and keep their
// uid, so a TCP reset costs nothing: the coordinator's shard bookkeeping
// is keyed on uid, not connection, and state reconciles on the next beat
// (a lost assign is re-sent when the worker reports idle; a lost ack is
// healed by the worker retransmitting complete/failed until directed).
// After a coordinator crash + resume, reconnecting workers with in-flight
// claims are told to abandon — the resumed coordinator re-adopts journals
// from disk, the only source of truth it trusts.
//
// Fleet.  With spawn_workers > 0 the transport forks its own --attach
// workers (PR_SET_PDEATHSIG, respawned with backoff when they die); with 0
// it waits for external attachments and the coordinator parks — warns and
// idles rather than failing — whenever the fleet is empty.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rcb/runtime/supervisor.hpp"
#include "rcb/runtime/transport.hpp"

namespace rcb {

/// Parses "host:port" (numeric IPv4 host).  Returns "" or a one-line
/// error.  Port 0 is accepted (ephemeral; coordinator listeners only).
std::string parse_host_port(const std::string& text, std::string& host,
                            std::uint16_t& port);

struct SocketTransportOptions {
  std::string root;
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;  ///< 0: ephemeral, reported via on_listen
  /// Silence from a shard's holder past this long is a partition: revoke +
  /// reassign (0 disables — only explicit revoke() reclaims shards).
  double lease_timeout_sec = 10.0;
  /// Worker status-beat period, forwarded in assign frames (normally the
  /// shard spec's heartbeat_interval_sec).
  double heartbeat_interval_sec = 0.1;
  /// Self-spawned --attach worker processes to maintain (0: external
  /// workers only).
  std::size_t spawn_workers = 0;
  /// First respawn of a dead self-spawned worker waits this long, doubling
  /// per consecutive death.
  double respawn_backoff_base_sec = 0.05;
  /// argv for self-spawned worker `worker_index`; defaults to re-entering
  /// /proc/self/exe with --attach=<host>:<port>.
  std::function<std::vector<std::string>(std::size_t worker_index)>
      attach_argv;
  /// Test hook, called with (worker_index, pid) after each self-spawn.
  std::function<void(std::size_t worker_index, pid_t pid)> on_worker_spawn;
  /// Called once with the bound port (after an ephemeral bind resolves).
  std::function<void(std::uint16_t port)> on_listen;
  /// Deterministic control-plane faults, applied to every frame in both
  /// directions (except shutdown, whose real signal is the close anyway).
  NetFaultConfig net_faults;
};

std::unique_ptr<WorkerTransport> make_socket_transport(
    const SocketTransportOptions& opt);

struct AttachWorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Test-only trial runner override (empty: the real protocol runner).
  TrialRunner runner;
  /// Reconnect backoff: first retry after base, doubling to at most max.
  double reconnect_base_sec = 0.05;
  double reconnect_max_sec = 2.0;
  /// Give up (exit 3) after this long without a coordinator (0: park and
  /// retry forever — a worker outliving a crashed coordinator re-attaches
  /// to the resumed one).
  double give_up_sec = 0.0;
};

/// Worker-mode entry point (the target of --attach): connects to the
/// coordinator with reconnect backoff, runs assigned shard attempts into
/// their try_<k> dirs, retransmits completions until acknowledged, and
/// abandons work when directed.  Blocks until a shutdown directive (exit
/// 0), SIGINT/SIGTERM (130), or the give-up deadline (3).
int run_attached_worker(const AttachWorkerOptions& opt);

}  // namespace rcb
