// Cooperative cancellation for long-running trials.
//
// A CancelToken is a small shared flag that a supervisor — watchdog
// thread, signal handler, or the token's own slot-budget accounting — can
// raise.  Simulation engines poll the thread's installed token at every
// repetition boundary via poll_cancellation(), which throws TrialCancelled
// out of the engine; the supervising runner catches it and records the
// trial as timed out instead of letting it stall the sweep.
//
// Installation is thread-local and RAII-scoped (CancelScope), mirroring
// ReproScope in common/contracts.hpp: no engine or protocol signature
// changes, and trials running on different pool workers carry independent
// tokens.  Code that never installs a token pays one thread-local load per
// repetition.
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

#include "rcb/common/types.hpp"

namespace rcb {

/// Shared cancellation flag with an optional cooperative slot budget.
/// `request` may be called from any thread (including a signal-adjacent
/// watchdog); `charge_slots` is called by the owning trial's engines.
class CancelToken {
 public:
  CancelToken() = default;
  /// `slot_budget` caps the total simulated slots this token's trial may
  /// run (0 = unlimited).  Because engines charge at repetition boundaries
  /// the cap is deterministic: the same trial always cancels at the same
  /// boundary, independent of wall-clock speed.
  explicit CancelToken(SlotCount slot_budget) : slot_budget_(slot_budget) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Raises the flag.  `reason` must have static storage duration (it is
  /// stored, not copied).  The first request's reason wins.
  void request(const char* reason) {
    const char* expected = nullptr;
    reason_.compare_exchange_strong(expected, reason,
                                    std::memory_order_acq_rel);
    requested_.store(true, std::memory_order_release);
  }

  bool requested() const { return requested_.load(std::memory_order_acquire); }

  /// Why cancellation was requested, or "" when it was not.
  const char* reason() const {
    const char* r = reason_.load(std::memory_order_acquire);
    return r == nullptr ? "" : r;
  }

  /// Charges `slots` against the budget; self-requests once exceeded.
  void charge_slots(SlotCount slots) {
    const SlotCount total =
        slots_.fetch_add(slots, std::memory_order_relaxed) + slots;
    if (slot_budget_ != 0 && total > slot_budget_) request("slot_budget");
  }

  SlotCount slots_charged() const {
    return slots_.load(std::memory_order_relaxed);
  }
  SlotCount slot_budget() const { return slot_budget_; }

 private:
  std::atomic<bool> requested_{false};
  std::atomic<const char*> reason_{nullptr};
  std::atomic<SlotCount> slots_{0};
  SlotCount slot_budget_ = 0;  ///< 0 = unlimited
};

/// Thrown by poll_cancellation out of an engine when the installed token
/// has been requested.  Supervising runners catch it at trial granularity.
class TrialCancelled : public std::runtime_error {
 public:
  explicit TrialCancelled(std::string reason)
      : std::runtime_error("trial cancelled: " + reason),
        reason_(std::move(reason)) {}

  const std::string& reason() const { return reason_; }

 private:
  std::string reason_;
};

/// RAII installer for the calling thread's cancel token; nests.
class CancelScope {
 public:
  explicit CancelScope(CancelToken* token);
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  CancelToken* previous_;
};

/// Innermost installed token for this thread, or nullptr.
CancelToken* current_cancel_token();

/// Engines call this at each repetition boundary with the phase length
/// about to be simulated.  Charges the slots to the installed token (if
/// any) and throws TrialCancelled once cancellation has been requested or
/// the token's slot budget is exhausted.  No-op without a token.
void poll_cancellation(SlotCount upcoming_slots);

}  // namespace rcb
