#include "rcb/runtime/retry_io.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <mutex>

namespace rcb {

namespace {

std::mutex g_io_fault_mutex;
IoFaultHook g_io_fault;

/// Returns the injected errno for operation `op` (0 = no fault).
int injected_errno(const char* op) {
  IoFaultHook hook;
  {
    std::lock_guard<std::mutex> lock(g_io_fault_mutex);
    hook = g_io_fault;
  }
  return hook ? hook(op) : 0;
}

}  // namespace

void set_io_fault(IoFaultHook hook) {
  std::lock_guard<std::mutex> lock(g_io_fault_mutex);
  g_io_fault = std::move(hook);
}

ssize_t retry_read(int fd, void* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    if (const int err = injected_errno("read"); err != 0) {
      if (err == EINTR) continue;
      errno = err;
      return -1;
    }
    const ssize_t k =
        ::read(fd, static_cast<char*>(buf) + got, n - got);
    if (k < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (k == 0) break;  // EOF
    got += static_cast<std::size_t>(k);
  }
  return static_cast<ssize_t>(got);
}

ssize_t retry_read_some(int fd, void* buf, std::size_t n) {
  for (;;) {
    if (const int err = injected_errno("read"); err != 0) {
      if (err == EINTR) continue;
      errno = err;
      return -1;
    }
    const ssize_t k = ::read(fd, buf, n);
    if (k < 0 && errno == EINTR) continue;
    return k;
  }
}

int retry_write(int fd, const void* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    if (const int err = injected_errno("write"); err != 0) {
      if (err == EINTR) continue;
      errno = err;
      return -1;
    }
    const ssize_t k =
        ::write(fd, static_cast<const char*>(buf) + put, n - put);
    if (k < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    put += static_cast<std::size_t>(k);
  }
  return 0;
}

ssize_t retry_send_some(int fd, const void* buf, std::size_t n) {
  for (;;) {
    if (const int err = injected_errno("send"); err != 0) {
      if (err == EINTR) continue;
      errno = err;
      return -1;
    }
    const ssize_t k = ::send(fd, buf, n, MSG_NOSIGNAL);
    if (k < 0 && errno == EINTR) continue;
    return k;
  }
}

bool retry_fwrite(std::FILE* f, const void* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    if (const int err = injected_errno("fwrite"); err != 0) {
      if (err == EINTR) continue;
      errno = err;
      return false;
    }
    const std::size_t k =
        std::fwrite(static_cast<const char*>(buf) + put, 1, n - put, f);
    put += k;
    if (put < n) {
      if (std::ferror(f) != 0 && errno == EINTR) {
        // A signal sheared the underlying write; the stream error state is
        // sticky, so clear it and resume from the bytes that did land.
        std::clearerr(f);
        continue;
      }
      return false;
    }
  }
  return true;
}

std::size_t retry_fread(std::FILE* f, void* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    if (const int err = injected_errno("fread"); err != 0) {
      if (err == EINTR) continue;
      errno = err;
      return got;
    }
    const std::size_t k =
        std::fread(static_cast<char*>(buf) + got, 1, n - got, f);
    got += k;
    if (got < n) {
      if (std::ferror(f) != 0 && errno == EINTR) {
        std::clearerr(f);
        continue;
      }
      break;  // EOF or real error; the stream state says which
    }
  }
  return got;
}

int retry_fflush(std::FILE* f) {
  for (;;) {
    if (const int err = injected_errno("fflush"); err != 0) {
      if (err == EINTR) continue;
      errno = err;
      return EOF;
    }
    if (std::fflush(f) == 0) return 0;
    if (errno == EINTR) {
      std::clearerr(f);
      continue;
    }
    return EOF;
  }
}

std::string read_file_fully(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "cannot open " + path;
  out.clear();
  char buf[1 << 16];
  for (;;) {
    const std::size_t got = retry_fread(f, buf, sizeof buf);
    out.append(buf, got);
    if (got < sizeof buf) break;
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return "read error on " + path;
  return "";
}

}  // namespace rcb
