// Parallel Monte-Carlo trial runner.
//
// Each trial gets an independent, deterministically derived RNG stream, so
// results are bit-identical regardless of thread count or scheduling.
// Do not call run_trials from inside a task already running on the same
// pool (it blocks on pool idleness).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "rcb/rng/rng.hpp"
#include "rcb/runtime/thread_pool.hpp"

namespace rcb {

/// Runs `trials` executions of fn(trial_index, rng) on `pool` and collects
/// the results in trial order.  Result must be default-constructible.
/// `chunk_hint` is forwarded to parallel_for_chunks (0 = auto).
///
/// Workers accumulate into a chunk-local buffer and copy out once per
/// chunk: adjacent Result slots of the shared vector share cache lines, so
/// writing them directly from different threads as trials complete would
/// false-share and serialize the (often tiny) per-trial result stores.
template <typename Result, typename Fn>
std::vector<Result> run_trials(std::size_t trials, std::uint64_t master_seed,
                               Fn&& fn, ThreadPool& pool = ThreadPool::global(),
                               std::size_t chunk_hint = 0) {
  std::vector<Result> results(trials);
  parallel_for_chunks(
      pool, 0, trials,
      [&](std::size_t lo, std::size_t hi) {
        std::vector<Result> local;
        local.reserve(hi - lo);
        for (std::size_t t = lo; t < hi; ++t) {
          Rng rng = Rng::stream(master_seed, t);
          local.push_back(fn(t, rng));
        }
        std::move(local.begin(), local.end(),
                  results.begin() + static_cast<std::ptrdiff_t>(lo));
      },
      chunk_hint);
  return results;
}

}  // namespace rcb
