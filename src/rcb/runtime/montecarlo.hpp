// Parallel Monte-Carlo trial runner.
//
// Each trial gets an independent, deterministically derived RNG stream, so
// results are bit-identical regardless of thread count or scheduling.
// Do not call run_trials from inside a task already running on the same
// pool (it blocks on pool idleness).
#pragma once

#include <cstdint>
#include <vector>

#include "rcb/rng/rng.hpp"
#include "rcb/runtime/thread_pool.hpp"

namespace rcb {

/// Runs `trials` executions of fn(trial_index, rng) on `pool` and collects
/// the results in trial order.  Result must be default-constructible.
template <typename Result, typename Fn>
std::vector<Result> run_trials(std::size_t trials, std::uint64_t master_seed,
                               Fn&& fn, ThreadPool& pool = ThreadPool::global()) {
  std::vector<Result> results(trials);
  parallel_for(pool, 0, trials, [&](std::size_t t) {
    Rng rng = Rng::stream(master_seed, t);
    results[t] = fn(t, rng);
  });
  return results;
}

}  // namespace rcb
