// Parallel Monte-Carlo trial runner.
//
// Each trial gets an independent, deterministically derived RNG stream, so
// results are bit-identical regardless of thread count or scheduling.
// run_trials may be called from inside a pool task: it blocks on a
// completion latch and the blocked thread helps execute pool work, so
// nested use cannot deadlock (see thread_pool.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "rcb/common/contracts.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/runtime/thread_pool.hpp"
#include "rcb/sim/engine_workspace.hpp"

namespace rcb {

/// Thrown by run_trials when a trial function throws: names the failing
/// trial index (the what() string carries it too) and keeps the original
/// exception for rethrow.  An exception escaping a pool task would
/// otherwise std::terminate the process without saying which trial died.
class TrialFailure : public std::runtime_error {
 public:
  TrialFailure(std::uint64_t trial, const std::string& what,
               std::exception_ptr nested)
      : std::runtime_error("trial " + std::to_string(trial) +
                           " failed: " + what),
        trial_(trial),
        nested_(std::move(nested)) {}

  std::uint64_t trial() const { return trial_; }
  /// The original exception; rethrow with std::rethrow_exception.
  const std::exception_ptr& nested() const { return nested_; }

 private:
  std::uint64_t trial_;
  std::exception_ptr nested_;
};

namespace detail {

inline std::string describe_exception(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace detail

/// Runs `trials` executions of fn(trial_index, rng) on `pool` and collects
/// the results in trial order.  Result must be default-constructible.
/// `chunk_hint` is forwarded to parallel_for_chunks (0 = auto).
///
/// Workers accumulate into a chunk-local buffer and copy out once per
/// chunk: adjacent Result slots of the shared vector share cache lines, so
/// writing them directly from different threads as trials complete would
/// false-share and serialize the (often tiny) per-trial result stores.
///
/// If a trial throws, the remaining trials are abandoned cooperatively
/// (each chunk checks a shared flag between trials), an RCB_REPRO record
/// naming (master_seed, trial) is emitted to stderr, and the first failure
/// is rethrown as TrialFailure once every in-flight chunk has drained.
template <typename Result, typename Fn>
std::vector<Result> run_trials(std::size_t trials, std::uint64_t master_seed,
                               Fn&& fn, ThreadPool& pool = ThreadPool::global(),
                               std::size_t chunk_hint = 0) {
  std::vector<Result> results(trials);
  std::atomic<bool> failed{false};
  std::mutex failure_mutex;
  std::exception_ptr first_failure;
  std::uint64_t failed_trial = 0;
  std::string failure_what;
  parallel_for_chunks(
      pool, 0, trials,
      [&](std::size_t lo, std::size_t hi) {
        std::vector<Result> local;
        local.reserve(hi - lo);
        for (std::size_t t = lo; t < hi; ++t) {
          if (failed.load(std::memory_order_relaxed)) break;
          try {
            Rng rng = Rng::stream(master_seed, t);
            // Trial boundary: rewind this thread's engine arena so the
            // trial's scratch state replays from the same addresses.
            engine_workspace_begin_trial();
            local.push_back(fn(t, rng));
          } catch (...) {
            std::lock_guard<std::mutex> lock(failure_mutex);
            if (first_failure == nullptr) {
              first_failure = std::current_exception();
              failed_trial = t;
              failure_what = detail::describe_exception(first_failure);
              ReproContext ctx;
              ctx.master_seed = master_seed;
              ctx.trial = t;
              std::fprintf(stderr, "RCB_REPRO %s\n",
                           format_repro_record("exception", failure_what,
                                               "runtime/montecarlo.hpp", 0,
                                               &ctx)
                               .c_str());
            }
            failed.store(true, std::memory_order_relaxed);
            break;
          }
        }
        std::move(local.begin(), local.end(),
                  results.begin() + static_cast<std::ptrdiff_t>(lo));
      },
      chunk_hint);
  if (failed.load()) {
    throw TrialFailure(failed_trial, failure_what, first_failure);
  }
  return results;
}

}  // namespace rcb
