#include "rcb/runtime/scenario.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "rcb/adversary/mc_strategies.hpp"
#include "rcb/adversary/spoofing.hpp"
#include "rcb/cli/json.hpp"
#include "rcb/cli/json_parse.hpp"
#include "rcb/common/contracts.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/protocols/combined.hpp"
#include "rcb/protocols/ksy.hpp"
#include "rcb/protocols/mc_broadcast.hpp"
#include "rcb/protocols/naive_broadcast.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/protocols/sqrt_broadcast.hpp"
#include "rcb/sim/engine_workspace.hpp"

namespace rcb {
namespace {

// FNV-1a 64-bit, folded over the canonical little-endian encoding of each
// observable.  Doubles are hashed by bit pattern, so the digest certifies
// bit-identical (not merely approximately equal) trajectories.
struct Digest {
  std::uint64_t h = 0xcbf29ce484222325ull;

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(bool v) { mix(static_cast<std::uint64_t>(v)); }
};

/// JSON numbers are doubles; 64-bit integers round-trip exactly only up to
/// 2^53.  Scenario fields that matter for replay (seed, budget, slots) are
/// validated against this bound rather than silently losing precision.
constexpr std::uint64_t kMaxExactJsonInt = 1ull << 53;

bool exact_u64(double d, std::uint64_t& out) {
  if (!(d >= 0.0) || d != std::floor(d) ||
      d > static_cast<double>(kMaxExactJsonInt)) {
    return false;
  }
  out = static_cast<std::uint64_t>(d);
  return true;
}

/// brownout_slot uses kNoSlot as the "never" sentinel, which is not
/// representable as a JSON double; it is encoded as -1.
double encode_slot(SlotIndex s) {
  return s == kNoSlot ? -1.0 : static_cast<double>(s);
}

}  // namespace

std::string scenario_to_json(const Scenario& s) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("protocol").value(s.protocol);
  w.key("adversary").value(s.adversary);
  w.key("budget").value(static_cast<std::uint64_t>(s.budget));
  w.key("q").value(s.q);
  w.key("rate").value(s.rate);
  w.key("n").value(static_cast<std::uint64_t>(s.n));
  w.key("eps").value(s.eps);
  w.key("trials").value(static_cast<std::uint64_t>(s.trials));
  w.key("seed").value(s.seed);
  w.key("max_epoch_extra").value(static_cast<std::uint64_t>(s.max_epoch_extra));
  w.key("timeout_slots").value(static_cast<std::uint64_t>(s.timeout_slots));
  w.key("battery").value(static_cast<std::uint64_t>(s.battery));
  // Emitted only when non-default: every pre-multi-channel scenario keeps
  // its canonical JSON byte-for-byte, so scenario digests (checkpoint
  // manifests, committed repro records) survive the channels field.
  if (s.channels != 1) {
    w.key("channels").value(static_cast<std::uint64_t>(s.channels));
  }
  w.key("faults").begin_object();
  const FaultConfig& f = s.faults;
  w.key("seed").value(f.seed);
  w.key("crash_rate").value(f.crash_rate);
  w.key("restart_rate").value(f.restart_rate);
  w.key("crash_fraction").value(f.crash_fraction);
  w.key("loss_rate").value(f.loss_rate);
  w.key("corruption_rate").value(f.corruption_rate);
  w.key("clock_skew_rate").value(f.clock_skew_rate);
  w.key("brownout_slot").value(encode_slot(f.brownout_slot));
  w.key("brownout_fraction").value(f.brownout_fraction);
  w.key("brownout_factor").value(f.brownout_factor);
  w.key("cca_false_busy").value(f.cca_false_busy);
  w.key("cca_missed_detection").value(f.cca_missed_detection);
  w.key("cca_ramp_slots").value(static_cast<std::uint64_t>(f.cca_ramp_slots));
  w.end_object();
  w.end_object();
  return os.str();
}

std::uint64_t scenario_digest(const Scenario& s) {
  return fnv1a64(scenario_to_json(s));
}

namespace {

/// Field-by-field decode helpers sharing one error slot; the first failure
/// wins and decoding short-circuits via the `ok` flag.
struct Decoder {
  const JsonObject* obj;
  std::string error;
  bool ok = true;

  const JsonValue* take(const std::string& key, std::vector<std::string>& seen) {
    seen.push_back(key);
    const auto it = obj->find(key);
    return it == obj->end() ? nullptr : &it->second;
  }

  void fail(const std::string& msg) {
    if (ok) {
      ok = false;
      error = msg;
    }
  }

  void get(const JsonValue* v, const char* key, std::string& out) {
    if (v == nullptr || !ok) return;
    if (!v->is_string()) return fail(std::string(key) + ": expected string");
    out = v->as_string();
  }
  void get(const JsonValue* v, const char* key, double& out) {
    if (v == nullptr || !ok) return;
    if (!v->is_number()) return fail(std::string(key) + ": expected number");
    out = v->as_number();
  }
  template <typename U>
  void get_u(const JsonValue* v, const char* key, U& out) {
    if (v == nullptr || !ok) return;
    if (!v->is_number()) return fail(std::string(key) + ": expected number");
    std::uint64_t u = 0;
    if (!exact_u64(v->as_number(), u)) {
      return fail(std::string(key) + ": expected exact non-negative integer");
    }
    if (u > std::numeric_limits<U>::max()) {
      return fail(std::string(key) + ": out of range");
    }
    out = static_cast<U>(u);
  }
  void get_slot(const JsonValue* v, const char* key, SlotIndex& out) {
    if (v == nullptr || !ok) return;
    if (!v->is_number()) return fail(std::string(key) + ": expected number");
    if (v->as_number() == -1.0) {
      out = kNoSlot;
      return;
    }
    get_u(v, key, out);
  }
};

}  // namespace

ScenarioParseResult scenario_from_json(std::string_view text) {
  ScenarioParseResult r;
  const JsonParseResult parsed = json_parse(text);
  if (!parsed.ok) {
    r.error = "invalid JSON: " + parsed.error;
    return r;
  }
  if (!parsed.value.is_object()) {
    r.error = "scenario must be a JSON object";
    return r;
  }

  Scenario& s = r.scenario;
  std::vector<std::string> seen;
  Decoder d{&parsed.value.as_object(), {}, true};
  d.get(d.take("protocol", seen), "protocol", s.protocol);
  d.get(d.take("adversary", seen), "adversary", s.adversary);
  d.get_u(d.take("budget", seen), "budget", s.budget);
  d.get(d.take("q", seen), "q", s.q);
  d.get(d.take("rate", seen), "rate", s.rate);
  d.get_u(d.take("n", seen), "n", s.n);
  d.get(d.take("eps", seen), "eps", s.eps);
  d.get_u(d.take("trials", seen), "trials", s.trials);
  d.get_u(d.take("seed", seen), "seed", s.seed);
  d.get_u(d.take("max_epoch_extra", seen), "max_epoch_extra",
          s.max_epoch_extra);
  d.get_u(d.take("timeout_slots", seen), "timeout_slots", s.timeout_slots);
  d.get_u(d.take("battery", seen), "battery", s.battery);
  d.get_u(d.take("channels", seen), "channels", s.channels);

  if (const JsonValue* fv = d.take("faults", seen); fv != nullptr && d.ok) {
    if (!fv->is_object()) {
      d.fail("faults: expected object");
    } else {
      FaultConfig& f = s.faults;
      std::vector<std::string> fseen;
      Decoder fd{&fv->as_object(), {}, true};
      fd.get_u(fd.take("seed", fseen), "faults.seed", f.seed);
      fd.get(fd.take("crash_rate", fseen), "faults.crash_rate", f.crash_rate);
      fd.get(fd.take("restart_rate", fseen), "faults.restart_rate",
             f.restart_rate);
      fd.get(fd.take("crash_fraction", fseen), "faults.crash_fraction",
             f.crash_fraction);
      fd.get(fd.take("loss_rate", fseen), "faults.loss_rate", f.loss_rate);
      fd.get(fd.take("corruption_rate", fseen), "faults.corruption_rate",
             f.corruption_rate);
      fd.get(fd.take("clock_skew_rate", fseen), "faults.clock_skew_rate",
             f.clock_skew_rate);
      fd.get_slot(fd.take("brownout_slot", fseen), "faults.brownout_slot",
                  f.brownout_slot);
      fd.get(fd.take("brownout_fraction", fseen), "faults.brownout_fraction",
             f.brownout_fraction);
      fd.get(fd.take("brownout_factor", fseen), "faults.brownout_factor",
             f.brownout_factor);
      fd.get(fd.take("cca_false_busy", fseen), "faults.cca_false_busy",
             f.cca_false_busy);
      fd.get(fd.take("cca_missed_detection", fseen),
             "faults.cca_missed_detection", f.cca_missed_detection);
      fd.get_u(fd.take("cca_ramp_slots", fseen), "faults.cca_ramp_slots",
               f.cca_ramp_slots);
      for (const auto& [key, value] : fv->as_object()) {
        (void)value;
        if (std::find(fseen.begin(), fseen.end(), key) == fseen.end()) {
          fd.fail("faults." + key + ": unknown key");
        }
      }
      if (!fd.ok) d.fail(fd.error);
    }
  }

  for (const auto& [key, value] : parsed.value.as_object()) {
    (void)value;
    if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
      d.fail(key + ": unknown key");
    }
  }

  if (!d.ok) {
    r.error = d.error;
    return r;
  }
  r.ok = true;
  return r;
}

std::unique_ptr<RepetitionAdversary> make_broadcast_adversary(
    const Scenario& s) {
  if (s.adversary == "none") return std::make_unique<NoJamAdversary>();
  if (s.adversary == "suffix") {
    return std::make_unique<SuffixBlockerAdversary>(Budget(s.budget), s.q);
  }
  if (s.adversary == "fraction") {
    return std::make_unique<EpochFractionBlockerAdversary>(Budget(s.budget),
                                                           s.q, 0.5);
  }
  if (s.adversary == "random") {
    return std::make_unique<RandomJammerAdversary>(Budget(s.budget), s.rate);
  }
  if (s.adversary == "burst") {
    return std::make_unique<BurstJammerAdversary>(Budget(s.budget), 8, 16);
  }
  return nullptr;
}

std::unique_ptr<DuelAdversary> make_duel_adversary(const Scenario& s) {
  if (s.adversary == "none") return std::make_unique<DuelNoJam>();
  if (s.adversary == "send_phase") {
    return std::make_unique<SendPhaseBlocker>(Budget(s.budget), s.q);
  }
  if (s.adversary == "nack_phase") {
    return std::make_unique<NackPhaseBlocker>(Budget(s.budget), s.q);
  }
  if (s.adversary == "full_duel") {
    return std::make_unique<FullDuelBlocker>(Budget(s.budget), s.q);
  }
  if (s.adversary == "both_views") {
    return std::make_unique<BothViewsSuffixBlocker>(Budget(s.budget), s.q);
  }
  if (s.adversary == "sym_random") {
    return std::make_unique<SymmetricRandomDuelJammer>(Budget(s.budget),
                                                       s.rate);
  }
  if (s.adversary == "spoof") {
    return std::make_unique<SpoofingNackAdversary>(Budget(s.budget));
  }
  return nullptr;
}

std::unique_ptr<McSlotAdversary> make_mc_adversary(const Scenario& s,
                                                   std::uint64_t trial) {
  // Private adversary stream, salted away from the trial's protocol stream.
  constexpr std::uint64_t kMcAdversarySalt = 0x6d634a616d212121ull;
  const auto rng = Rng::stream(s.seed ^ kMcAdversarySalt, trial);
  if (s.adversary == "none") return std::make_unique<McNoJam>();
  if (s.adversary == "mc_uniform") {
    return std::make_unique<McUniformSplitJammer>(Budget(s.budget), s.rate,
                                                  rng);
  }
  if (s.adversary == "mc_focus") {
    return std::make_unique<McFocusJammer>(Budget(s.budget), s.rate, 0, rng);
  }
  if (s.adversary == "mc_sweep") {
    // Dwell scales with q: q ~ 0 hops every slot, q ~ 1 parks for 64 slots.
    const auto dwell =
        static_cast<SlotCount>(1.0 + s.q * 63.0);
    return std::make_unique<McSweepJammer>(Budget(s.budget), dwell);
  }
  return nullptr;
}

std::string validate_scenario(const Scenario& s) {
  if (s.is_broadcast()) {
    if (!make_broadcast_adversary(s)) {
      return "unknown broadcast adversary '" + s.adversary + "'";
    }
    if (s.n < 1) return "n must be >= 1";
  } else if (s.is_duel()) {
    if (!make_duel_adversary(s)) {
      return "unknown 1-to-1 adversary '" + s.adversary + "'";
    }
  } else if (s.is_multichannel()) {
    if (!make_mc_adversary(s)) {
      return "unknown multi-channel adversary '" + s.adversary + "'";
    }
    if (s.n < 1) return "n must be >= 1";
  } else {
    return "unknown protocol '" + s.protocol + "'";
  }
  if (s.channels < 1) return "channels must be >= 1";
  if (s.channels > kMaxChannels) return "channels must be <= 64";
  if (s.channels > 1 && !s.is_multichannel()) {
    return "channels > 1 requires protocol mc_broadcast";
  }
  if (!(s.eps > 0.0 && s.eps < 1.0)) return "eps must be in (0, 1)";
  if (s.trials < 1) return "trials must be >= 1";
  // Battery mode exists only where BroadcastNParams does; accepting it
  // elsewhere would create scenarios whose digest differs but whose
  // execution is identical — a replay-identity trap.
  if (s.battery > 0 && s.protocol != "broadcast" && s.protocol != "naive") {
    return "battery requires protocol broadcast|naive";
  }
  // Catch out-of-range fault knobs here, where callers can print a clean
  // diagnostic, instead of letting the FaultPlan constructor's contract
  // abort trial 0.
  const FaultConfig& f = s.faults;
  const struct {
    const char* name;
    double value;
  } rates[] = {
      {"crash_rate", f.crash_rate},
      {"restart_rate", f.restart_rate},
      {"crash_fraction", f.crash_fraction},
      {"loss_rate", f.loss_rate},
      {"corruption_rate", f.corruption_rate},
      {"clock_skew_rate", f.clock_skew_rate},
      {"brownout_fraction", f.brownout_fraction},
      {"brownout_factor", f.brownout_factor},
      {"cca_false_busy", f.cca_false_busy},
      {"cca_missed_detection", f.cca_missed_detection},
  };
  for (const auto& r : rates) {
    if (!(r.value >= 0.0 && r.value <= 1.0)) {
      return std::string(r.name) + " must be in [0, 1]";
    }
  }
  return "";
}

TrialOutcome run_scenario_trial(const Scenario& s, std::uint64_t trial) {
  RCB_REQUIRE(validate_scenario(s).empty());
  // Attribute any contract failure inside this trial to (scenario, trial).
  ReproScope repro(s.seed, trial, scenario_to_json(s));

  Rng rng = Rng::stream(s.seed, trial);
  // Trial boundary: rewind this thread's engine arena so the trial's
  // scratch state replays from the same addresses.
  engine_workspace_begin_trial();
  FaultPlan faults(s.faults);
  FaultPlan* fp = faults.active() ? &faults : nullptr;

  TrialOutcome out;
  Digest dig;
  if (s.is_broadcast() || s.is_multichannel()) {
    BroadcastNResult r;
    if (s.is_multichannel()) {
      auto adv = make_mc_adversary(s, trial);
      OneToOneParams params = OneToOneParams::sim(s.eps);
      if (s.max_epoch_extra > 0) {
        params.max_epoch = params.first_epoch() + s.max_epoch_extra;
      }
      r = run_mc_broadcast(s.n, s.channels, params, *adv, rng, fp);
    } else if (s.protocol == "sqrt") {
      auto adv = make_broadcast_adversary(s);
      OneToOneParams params = OneToOneParams::sim(s.eps);
      if (s.max_epoch_extra > 0) {
        params.max_epoch = params.first_epoch() + s.max_epoch_extra;
      }
      r = run_sqrt_broadcast(s.n, params, *adv, rng, fp);
    } else {
      auto adv = make_broadcast_adversary(s);
      BroadcastNParams params = BroadcastNParams::sim();
      if (s.max_epoch_extra > 0) {
        params.max_epoch = params.first_epoch + s.max_epoch_extra;
      }
      params.node_energy_budget = s.battery;
      r = s.protocol == "broadcast"
              ? run_broadcast_n(s.n, params, *adv, rng, fp)
              : run_naive_broadcast(s.n, params, *adv, rng, fp);
    }
    out.max_cost = static_cast<double>(r.max_cost);
    out.mean_cost = r.mean_cost;
    out.adversary_cost = static_cast<double>(r.adversary_cost);
    out.latency = static_cast<double>(r.latency);
    out.success = r.all_informed;
    out.dead_count = r.dead_count;
    out.crashed_count = r.crashed_count;
    for (const BroadcastNodeOutcome& node : r.nodes) {
      dig.mix(static_cast<std::uint64_t>(node.final_status));
      dig.mix(node.informed);
      dig.mix(node.cost);
      dig.mix(node.final_S);
      dig.mix(node.n_estimate);
      dig.mix(static_cast<std::uint64_t>(node.informed_epoch));
      dig.mix(static_cast<std::uint64_t>(node.terminated_epoch));
    }
    dig.mix(static_cast<std::uint64_t>(r.final_epoch));
    dig.mix(static_cast<std::uint64_t>(r.informed_latency));
  } else {
    auto adv = make_duel_adversary(s);
    OneToOneResult r;
    if (s.protocol == "one_to_one") {
      OneToOneParams params = OneToOneParams::sim(s.eps);
      if (s.max_epoch_extra > 0) {
        params.max_epoch = params.first_epoch() + s.max_epoch_extra;
      }
      params.timeout_slots = s.timeout_slots;
      r = run_one_to_one(params, *adv, rng, fp);
    } else if (s.protocol == "ksy") {
      KsyParams params;
      if (s.max_epoch_extra > 0) {
        params.max_epoch = params.first_epoch + s.max_epoch_extra;
      }
      r = run_ksy(params, *adv, rng, fp);
    } else {
      CombinedParams params;
      params.fig1 = OneToOneParams::sim(s.eps);
      if (s.max_epoch_extra > 0) {
        params.fig1.max_epoch = params.fig1.first_epoch() + s.max_epoch_extra;
        params.ksy.max_epoch = params.ksy.first_epoch + s.max_epoch_extra;
      }
      params.timeout_slots = s.timeout_slots;
      r = run_combined(params, *adv, rng, fp);
    }
    out.max_cost = static_cast<double>(r.max_cost());
    out.mean_cost = static_cast<double>(r.alice_cost + r.bob_cost) / 2.0;
    out.adversary_cost = static_cast<double>(r.adversary_cost);
    out.latency = static_cast<double>(r.latency);
    out.success = r.delivered;
    out.aborted = r.aborted;
    dig.mix(r.alice_cost);
    dig.mix(r.bob_cost);
    dig.mix(r.alice_halted);
    dig.mix(r.bob_halted);
    dig.mix(r.hit_epoch_cap);
    dig.mix(static_cast<std::uint64_t>(r.final_epoch));
  }

  dig.mix(out.max_cost);
  dig.mix(out.mean_cost);
  dig.mix(out.adversary_cost);
  dig.mix(out.latency);
  dig.mix(out.success);
  dig.mix(out.aborted);
  dig.mix(out.dead_count);
  dig.mix(out.crashed_count);
  out.digest = dig.h;
  return out;
}

ReproParseResult repro_record_from_json(std::string_view text) {
  ReproParseResult r;
  // Tolerate the stderr framing: optional "RCB_REPRO " prefix, whitespace.
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t' ||
                           text.front() == '\n' || text.front() == '\r')) {
    text.remove_prefix(1);
  }
  constexpr std::string_view kPrefix = "RCB_REPRO ";
  if (text.substr(0, kPrefix.size()) == kPrefix) {
    text.remove_prefix(kPrefix.size());
  }

  const JsonParseResult parsed = json_parse(text);
  if (!parsed.ok) {
    r.error = "invalid JSON: " + parsed.error;
    return r;
  }
  const JsonValue& v = parsed.value;
  const JsonValue* marker = v.find("rcb_repro");
  if (marker == nullptr || !marker->is_number() ||
      marker->as_number() != 1.0) {
    r.error = "not an RCB repro record (missing rcb_repro:1)";
    return r;
  }

  ReproRecord& rec = r.record;
  if (const JsonValue* f = v.find("kind"); f != nullptr && f->is_string()) {
    rec.kind = f->as_string();
  }
  if (const JsonValue* f = v.find("expr"); f != nullptr && f->is_string()) {
    rec.expr = f->as_string();
  }
  if (const JsonValue* f = v.find("file"); f != nullptr && f->is_string()) {
    rec.file = f->as_string();
  }
  if (const JsonValue* f = v.find("line"); f != nullptr && f->is_number()) {
    rec.line = static_cast<int>(f->as_number());
  }
  if (const JsonValue* f = v.find("master_seed");
      f != nullptr && f->is_number()) {
    if (!exact_u64(f->as_number(), rec.master_seed)) {
      r.error = "master_seed: not an exact integer";
      return r;
    }
  }
  if (const JsonValue* f = v.find("trial"); f != nullptr && f->is_number()) {
    if (!exact_u64(f->as_number(), rec.trial)) {
      r.error = "trial: not an exact integer";
      return r;
    }
  }
  if (const JsonValue* f = v.find("scenario_digest");
      f != nullptr && f->is_string()) {
    if (!parse_hex_u64(f->as_string(), rec.scenario_digest)) {
      r.error = "scenario_digest: not a hex u64";
      return r;
    }
    rec.has_scenario_digest = true;
  }
  if (const JsonValue* f = v.find("scenario");
      f != nullptr && f->is_object()) {
    // Re-serialise the sub-object through the scenario codec; going via the
    // parsed DOM would need a JsonValue writer, and the record embeds the
    // scenario verbatim anyway, so reparsing the slice is exact.  Locate
    // the slice by decoding from the original text.
    const std::size_t pos = text.find("\"scenario\":");
    if (pos != std::string_view::npos) {
      std::string_view slice = text.substr(pos + 11);
      // The scenario object is the suffix minus the record's closing brace.
      std::size_t depth = 0;
      for (std::size_t i = 0; i < slice.size(); ++i) {
        if (slice[i] == '{') ++depth;
        if (slice[i] == '}') {
          if (--depth == 0) {
            slice = slice.substr(0, i + 1);
            break;
          }
        }
      }
      ScenarioParseResult sp = scenario_from_json(slice);
      if (!sp.ok) {
        r.error = "scenario: " + sp.error;
        return r;
      }
      rec.scenario = sp.scenario;
      rec.has_scenario = true;
    }
  }
  r.ok = true;
  return r;
}

}  // namespace rcb
