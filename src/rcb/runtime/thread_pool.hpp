// A work-stealing thread pool for Monte-Carlo workloads.
//
// Design notes (C++ Core Guidelines CP.*): tasks are type-erased
// move-only callables with small-buffer storage (no heap allocation for
// captures up to Task::kInlineSize bytes); the pool owns its threads
// (RAII — the destructor drains and joins); submission after shutdown is
// a precondition violation rather than a silent drop.
//
// Scheduling: every worker owns a deque.  Workers pop their own deque
// LIFO (cache-warm for nested fork/join) and steal FIFO from the others
// when it runs dry, so a long-tailed task on one worker never idles the
// rest of the pool while work remains anywhere.  External submissions are
// distributed round-robin across the deques.
//
// parallel_for / parallel_for_chunks block until their chunks finish, but
// the calling thread *helps*: it executes pool tasks while it waits.
// That makes nested parallelism safe — a chunk may itself call
// parallel_for on the same pool without deadlocking — and keeps the
// caller productive instead of parked.  (wait_idle() does not help; do
// not call it from inside a pool task.)
//
// Tasks must not throw: an exception escaping a task terminates the
// process, exactly as it would have escaping a worker thread.  Catch at
// the task boundary (as run_trials and the sweep supervisor do).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace rcb {

/// Move-only type-erased `void()` callable with inline storage.  Callables
/// up to kInlineSize bytes (and max_align_t alignment) live in the task
/// object itself; larger ones fall back to one heap allocation.  The
/// per-chunk closures of parallel_for_chunks and the per-trial closures of
/// the sweep scheduler are all a few pointers wide, so the hot dispatch
/// path never allocates.
class Task {
 public:
  static constexpr std::size_t kInlineSize = 48;

  Task() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Task> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Task(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
      relocate_ = [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      };
      destroy_ = [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); };
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); };
      relocate_ = [](void* dst, void* src) {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      };
      destroy_ = [](void* p) {
        delete *std::launder(reinterpret_cast<Fn**>(p));
      };
    }
  }

  Task(Task&& other) noexcept { move_from(other); }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }
  void operator()() { invoke_(storage_); }

 private:
  void move_from(Task& other) noexcept {
    if (other.invoke_ != nullptr) {
      other.relocate_(storage_, other.storage_);
      invoke_ = other.invoke_;
      relocate_ = other.relocate_;
      destroy_ = other.destroy_;
      other.invoke_ = nullptr;
    }
  }
  void reset() noexcept {
    if (invoke_ != nullptr) {
      destroy_(storage_);
      invoke_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = default_concurrency()).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  /// Enqueues a task.  Worker threads push to their own deque; external
  /// threads distribute round-robin.
  void submit(Task task);

  /// Blocks until every submitted task has finished executing.  Unlike
  /// parallel_for, the caller does not help; do not call from a pool task.
  void wait_idle();

  std::size_t num_threads() const { return workers_.size(); }

  /// Process-wide default pool, sized by default_concurrency().
  static ThreadPool& global();

  /// Usable hardware parallelism: the CPUs this process may actually run
  /// on (the sched_getaffinity mask on Linux — taskset/cgroup cpusets make
  /// this smaller than hardware_concurrency(), which counts the machine
  /// and would oversubscribe), falling back to hardware_concurrency().
  static std::size_t default_concurrency();

  /// Completion latch for a batch of tasks; used by parallel_for_chunks.
  class Latch {
   public:
    explicit Latch(std::size_t count) : remaining_(count) {}
    void count_down();
    bool done() const {
      return remaining_.load(std::memory_order_acquire) == 0;
    }
    /// Waits until done() or ~0.5ms, whichever first (helpers re-poll the
    /// queues between waits, so a missed task wakeup only costs one poll
    /// interval, never a hang).
    void wait_briefly();
    /// Called by the final waiter after done(): acquires and releases the
    /// internal mutex, so the last count_down's critical section
    /// (decrement + notify, both under the mutex) has fully completed and
    /// the latch may be destroyed.  Without this, a waiter that observed
    /// done() through the lock-free atomic could destroy the latch while
    /// the counting thread is still inside notify_all.
    void sync();

   private:
    std::atomic<std::size_t> remaining_;
    std::mutex mutex_;
    std::condition_variable cv_;
  };

  /// Runs pool tasks on the calling thread until `latch.done()`.  Safe
  /// from both worker threads (nested parallelism) and external threads.
  void help_until(Latch& latch);

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t index);
  /// Pops from the calling worker's deque, else steals; `self` is the
  /// worker index or SIZE_MAX for external threads (steal only).
  Task try_acquire(std::size_t self);
  void execute(Task& task) noexcept;
  void push_task(Task task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::atomic<std::size_t> queued_{0};    ///< tasks sitting in deques
  std::atomic<std::size_t> pending_{0};   ///< queued + running
  std::atomic<std::size_t> next_queue_{0};  ///< round-robin for externals
  std::mutex mutex_;                      ///< guards the two CVs below
  std::condition_variable work_available_;
  std::condition_variable idle_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [begin, end) across the pool, blocking until done.
/// Iterations are distributed in contiguous chunks.  `chunk_hint` overrides
/// the chunk size (0 = auto: ~4 chunks per worker); use it to trade
/// scheduling overhead against load balance for very cheap or very uneven
/// iterations.  The calling thread helps execute chunks, so nested calls
/// on the same pool are safe.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk_hint = 0);

/// Chunk-granular variant: runs fn(lo, hi) once per contiguous chunk of
/// [begin, end), blocking until done.  Lets callers keep per-chunk state
/// (local accumulators, scratch buffers) without per-iteration overhead.
void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t chunk_hint = 0);

}  // namespace rcb
