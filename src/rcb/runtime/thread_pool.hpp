// A small work-stealing-free thread pool for embarrassingly parallel
// Monte-Carlo workloads.
//
// Design notes (C++ Core Guidelines CP.*): tasks are type-erased
// move-only callables; the pool owns its threads (RAII — the destructor
// drains and joins); submission after shutdown is a precondition violation
// rather than a silent drop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rcb {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (defaults to hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  /// Enqueues a task.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void wait_idle();

  std::size_t num_threads() const { return workers_.size(); }

  /// Process-wide default pool, sized to the hardware.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [begin, end) across the pool, blocking until done.
/// Iterations are distributed in contiguous chunks.  `chunk_hint` overrides
/// the chunk size (0 = auto: ~4 chunks per worker); use it to trade
/// scheduling overhead against load balance for very cheap or very uneven
/// iterations.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk_hint = 0);

/// Chunk-granular variant: runs fn(lo, hi) once per contiguous chunk of
/// [begin, end), blocking until done.  Lets callers keep per-chunk state
/// (local accumulators, scratch buffers) without per-iteration overhead.
void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t chunk_hint = 0);

}  // namespace rcb
