#include "rcb/runtime/checkpoint.hpp"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "rcb/cli/json.hpp"
#include "rcb/cli/json_parse.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/runtime/retry_io.hpp"

namespace rcb {

const char kCheckpointJournalFile[] = "journal.rcbj";
const char kCheckpointManifestFile[] = "manifest.json";

namespace {

constexpr std::string_view kFramePrefix = "RCBJ ";

std::string errno_string() { return std::strerror(errno); }

std::mutex g_write_fault_mutex;
WriteFaultHook g_write_fault;

/// Returns the injected errno for a write of `bytes` (0 = no fault).
int injected_write_errno(std::size_t bytes) {
  WriteFaultHook hook;
  {
    std::lock_guard<std::mutex> lock(g_write_fault_mutex);
    hook = g_write_fault;
  }
  return hook ? hook(bytes) : 0;
}

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t got;
  while ((got = retry_fread(f, buf, sizeof buf)) > 0) out.append(buf, got);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

/// fsync a stdio stream (no-op on platforms without fileno/fsync).
bool sync_stream(std::FILE* f) {
  if (retry_fflush(f) != 0) return false;
#ifndef _WIN32
  return ::fsync(fileno(f)) == 0;
#else
  return true;
#endif
}

/// fsync a directory so a rename inside it is durable (POSIX requires the
/// directory entry itself to be synced; rename + file fsync alone may be
/// rolled back by a power loss on some filesystems).
bool sync_directory(const std::string& dir) {
#ifndef _WIN32
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)dir;
  return true;
#endif
}

/// 64-bit counts that can exceed 2^53 travel as hex strings; small counts
/// (bounded by fleet size / attempt caps) stay JSON numbers.
std::string record_payload(const CheckpointRecord& rec,
                           std::uint64_t scenario_dig) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("trial").value(static_cast<std::uint64_t>(rec.trial));
  w.key("status").value(rec.status);
  w.key("attempts").value(static_cast<std::uint64_t>(rec.attempts));
  w.key("scenario_digest").value(to_hex16(scenario_dig));
  const TrialOutcome& o = rec.outcome;
  w.key("outcome").begin_object();
  w.key("max_cost").value(o.max_cost);
  w.key("mean_cost").value(o.mean_cost);
  w.key("adversary_cost").value(o.adversary_cost);
  w.key("latency").value(o.latency);
  w.key("success").value(o.success);
  w.key("aborted").value(o.aborted);
  w.key("dead_count").value(o.dead_count);
  w.key("crashed_count").value(o.crashed_count);
  w.key("digest").value(to_hex16(o.digest));
  w.end_object();
  w.end_object();
  return os.str();
}

bool exact_u64_field(const JsonValue* v, std::uint64_t& out) {
  if (v == nullptr || !v->is_number()) return false;
  const double d = v->as_number();
  if (!(d >= 0.0) || d != std::floor(d) || d > 9007199254740992.0) {
    return false;
  }
  out = static_cast<std::uint64_t>(d);
  return true;
}

/// Decodes one journal payload.  Returns "" or an error description.
std::string parse_payload(std::string_view payload, CheckpointRecord& rec,
                          std::uint64_t& rec_scenario_digest) {
  const JsonParseResult parsed = json_parse(payload);
  if (!parsed.ok) return "payload is not valid JSON: " + parsed.error;
  if (!parsed.value.is_object()) return "payload is not a JSON object";
  const JsonValue& v = parsed.value;

  if (!exact_u64_field(v.find("trial"), rec.trial)) return "bad trial field";
  const JsonValue* status = v.find("status");
  if (status == nullptr || !status->is_string()) return "bad status field";
  rec.status = status->as_string();
  std::uint64_t attempts = 0;
  if (!exact_u64_field(v.find("attempts"), attempts) || attempts == 0 ||
      attempts > UINT32_MAX) {
    return "bad attempts field";
  }
  rec.attempts = static_cast<std::uint32_t>(attempts);
  const JsonValue* sd = v.find("scenario_digest");
  if (sd == nullptr || !sd->is_string() ||
      !parse_hex_u64(sd->as_string(), rec_scenario_digest)) {
    return "bad scenario_digest field";
  }

  const JsonValue* ov = v.find("outcome");
  if (ov == nullptr || !ov->is_object()) return "bad outcome field";
  TrialOutcome& o = rec.outcome;
  auto num = [&](const char* key, double& out) {
    const JsonValue* f = ov->find(key);
    if (f == nullptr || !f->is_number()) return false;
    out = f->as_number();
    return true;
  };
  auto flag = [&](const char* key, bool& out) {
    const JsonValue* f = ov->find(key);
    if (f == nullptr || !f->is_bool()) return false;
    out = f->as_bool();
    return true;
  };
  if (!num("max_cost", o.max_cost) || !num("mean_cost", o.mean_cost) ||
      !num("adversary_cost", o.adversary_cost) || !num("latency", o.latency)) {
    return "bad outcome numeric field";
  }
  if (!flag("success", o.success) || !flag("aborted", o.aborted)) {
    return "bad outcome flag field";
  }
  if (!exact_u64_field(ov->find("dead_count"), o.dead_count) ||
      !exact_u64_field(ov->find("crashed_count"), o.crashed_count)) {
    return "bad outcome count field";
  }
  const JsonValue* dig = ov->find("digest");
  if (dig == nullptr || !dig->is_string() ||
      !parse_hex_u64(dig->as_string(), o.digest)) {
    return "bad outcome digest field";
  }
  return "";
}

std::string manifest_json(const Scenario& s) {
  // The scenario is the last key so loaders can slice its exact text out
  // (the digest is over that text; see load_manifest).
  std::string m = "{\"rcb_checkpoint\":1,\"scenario_digest\":\"";
  const std::string scenario = scenario_to_json(s);
  m += to_hex16(fnv1a64(scenario));
  m += "\",\"journal\":\"";
  m += kCheckpointJournalFile;
  m += "\",\"scenario\":";
  m += scenario;
  m += "}\n";
  return m;
}

/// Extracts the exact text of the "scenario" sub-object (the last key).
std::string_view scenario_slice(std::string_view manifest) {
  const std::size_t pos = manifest.find("\"scenario\":");
  if (pos == std::string_view::npos) return {};
  std::string_view slice = manifest.substr(pos + 11);
  std::size_t depth = 0;
  for (std::size_t i = 0; i < slice.size(); ++i) {
    if (slice[i] == '{') ++depth;
    if (slice[i] == '}') {
      if (--depth == 0) return slice.substr(0, i + 1);
    }
  }
  return {};
}

}  // namespace

void set_checkpoint_write_fault(WriteFaultHook hook) {
  std::lock_guard<std::mutex> lock(g_write_fault_mutex);
  g_write_fault = std::move(hook);
}

std::string write_file_atomic(const std::string& path,
                              std::string_view content) {
  const std::string tmp_path = path + ".tmp";
  if (const int err = injected_write_errno(content.size()); err != 0) {
    return "cannot write '" + tmp_path + "': " + std::strerror(err);
  }
  {
    std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
    if (f == nullptr) {
      return "cannot open '" + tmp_path + "': " + errno_string();
    }
    const bool wrote =
        retry_fwrite(f, content.data(), content.size()) && sync_stream(f);
    std::fclose(f);
    if (!wrote) return "cannot write '" + tmp_path + "': " + errno_string();
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return "cannot rename '" + tmp_path + "' into place: " + errno_string();
  }
  const std::string parent =
      std::filesystem::path(path).parent_path().string();
  if (!parent.empty() && !sync_directory(parent)) {
    return "cannot fsync directory '" + parent + "': " + errno_string();
  }
  return "";
}

CheckpointLoadResult load_checkpoint(const std::string& dir) {
  CheckpointLoadResult r;
  const std::string manifest_path =
      dir + "/" + kCheckpointManifestFile;
  std::string manifest;
  if (!read_file(manifest_path, manifest)) {
    r.error = "cannot read checkpoint manifest '" + manifest_path + "'";
    return r;
  }

  const JsonParseResult parsed = json_parse(manifest);
  if (!parsed.ok || !parsed.value.is_object()) {
    r.error = "manifest is not valid JSON";
    return r;
  }
  const JsonValue* marker = parsed.value.find("rcb_checkpoint");
  if (marker == nullptr || !marker->is_number() ||
      marker->as_number() != 1.0) {
    r.error = "not an rcb checkpoint manifest (missing rcb_checkpoint:1)";
    return r;
  }
  const JsonValue* digest_field = parsed.value.find("scenario_digest");
  if (digest_field == nullptr || !digest_field->is_string() ||
      !parse_hex_u64(digest_field->as_string(), r.scenario_digest)) {
    r.error = "manifest scenario_digest missing or malformed";
    return r;
  }
  const std::string_view slice = scenario_slice(manifest);
  if (slice.empty()) {
    r.error = "manifest has no scenario object";
    return r;
  }
  if (fnv1a64(slice) != r.scenario_digest) {
    r.error =
        "manifest scenario digest mismatch: the embedded scenario does not "
        "hash to the recorded scenario_digest (manifest edited or corrupt)";
    return r;
  }
  const ScenarioParseResult sp = scenario_from_json(slice);
  if (!sp.ok) {
    r.error = "manifest scenario: " + sp.error;
    return r;
  }
  r.scenario = sp.scenario;
  const std::string invalid = validate_scenario(r.scenario);
  if (!invalid.empty()) {
    r.error = "manifest scenario is invalid: " + invalid;
    return r;
  }

  std::string journal;
  const std::string journal_path =
      dir + "/" + kCheckpointJournalFile;
  if (!read_file(journal_path, journal)) {
    // A manifest with no journal yet is a checkpoint that was killed
    // between manifest creation and the first append — resumable, empty.
    r.ok = true;
    return r;
  }

  std::vector<bool> seen;  // trial-index bitmap for duplicate detection
  std::size_t off = 0;
  std::size_t frame_index = 0;
  while (off < journal.size()) {
    const std::string_view rest = std::string_view(journal).substr(off);
    auto corrupt = [&](const std::string& why) {
      r.ok = false;
      r.error = "journal record " + std::to_string(frame_index) + ": " + why;
    };
    // Header: "RCBJ <len> <hex16> ".  A frame that deviates from the
    // grammar *before* EOF is corruption; one that runs out of bytes is a
    // truncated tail (killed mid-append) and is recoverable.
    const std::size_t avail = rest.size();
    const std::size_t cmp = std::min(avail, kFramePrefix.size());
    if (rest.substr(0, cmp) != kFramePrefix.substr(0, cmp)) {
      corrupt("bad frame prefix");
      return r;
    }
    if (avail < kFramePrefix.size()) break;  // truncated inside the prefix
    std::size_t i = kFramePrefix.size();
    std::uint64_t len = 0;
    std::size_t len_digits = 0;
    while (i < avail && rest[i] >= '0' && rest[i] <= '9') {
      len = len * 10 + static_cast<std::uint64_t>(rest[i] - '0');
      if (++len_digits > 9) {
        corrupt("frame length out of range");
        return r;
      }
      ++i;
    }
    if (i >= avail) break;  // truncated inside the length
    if (len_digits == 0 || rest[i] != ' ') {
      corrupt("malformed frame length");
      return r;
    }
    ++i;
    if (avail - i < 16) {
      // Could still be a prefix of a valid digest: truncation only if every
      // remaining byte is hex, corruption otherwise.
      std::uint64_t ignored = 0;
      if (avail == i || parse_hex_u64(rest.substr(i), ignored)) break;
      corrupt("malformed frame digest");
      return r;
    }
    std::uint64_t frame_digest = 0;
    if (!parse_hex_u64(rest.substr(i, 16), frame_digest)) {
      corrupt("malformed frame digest");
      return r;
    }
    i += 16;
    if (i >= avail) break;  // truncated before the payload separator
    if (rest[i] != ' ') {
      corrupt("malformed frame header");
      return r;
    }
    ++i;
    if (avail - i < len + 1) break;  // truncated inside the payload
    const std::string_view payload = rest.substr(i, len);
    if (rest[i + len] != '\n') {
      corrupt("payload not newline-terminated");
      return r;
    }
    if (fnv1a64(payload) != frame_digest) {
      corrupt("payload digest mismatch (flipped byte?)");
      return r;
    }

    CheckpointRecord rec;
    std::uint64_t rec_digest = 0;
    const std::string perr = parse_payload(payload, rec, rec_digest);
    if (!perr.empty()) {
      corrupt(perr);
      return r;
    }
    if (rec_digest != r.scenario_digest) {
      corrupt(
          "scenario digest mismatch: record was written for a different "
          "scenario than the manifest describes");
      return r;
    }
    if (rec.trial >= r.scenario.trials) {
      corrupt("trial index " + std::to_string(rec.trial) +
              " out of range for " + std::to_string(r.scenario.trials) +
              " trials");
      return r;
    }
    if (seen.size() < r.scenario.trials) seen.resize(r.scenario.trials);
    if (seen[rec.trial]) {
      corrupt("duplicate trial index " + std::to_string(rec.trial));
      return r;
    }
    seen[rec.trial] = true;

    r.records.push_back(std::move(rec));
    off += i + len + 1;
    ++frame_index;
  }
  r.truncated_tail = off < journal.size();
  r.journal_valid_bytes = off;
  r.ok = true;
  return r;
}

namespace {

/// Appends one framed record to `out` (shared by append / append_batch so
/// the two paths are byte-identical by construction).
void append_frame(std::string& out, const CheckpointRecord& rec,
                  std::uint64_t scenario_dig) {
  const std::string payload = record_payload(rec, scenario_dig);
  out.reserve(out.size() + payload.size() + 32);
  out += kFramePrefix;
  out += std::to_string(payload.size());
  out += ' ';
  out += to_hex16(fnv1a64(payload));
  out += ' ';
  out += payload;
  out += '\n';
}

}  // namespace

CheckpointWriter::~CheckpointWriter() { close(); }

CheckpointWriter::CheckpointWriter(CheckpointWriter&& other) noexcept
    : dir_(std::move(other.dir_)),
      scenario_digest_(other.scenario_digest_),
      file_(other.file_) {
  other.file_ = nullptr;
}

CheckpointWriter& CheckpointWriter::operator=(
    CheckpointWriter&& other) noexcept {
  if (this != &other) {
    close();
    dir_ = std::move(other.dir_);
    scenario_digest_ = other.scenario_digest_;
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

void CheckpointWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::string CheckpointWriter::create(const std::string& dir,
                                     const Scenario& s) {
  close();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "cannot create checkpoint dir '" + dir + "': " + ec.message();

  // Manifest: temp file + fsync + rename, so a crash leaves either the old
  // manifest or the new one, never a torn write.
  const std::string final_path = dir + "/" + kCheckpointManifestFile;
  if (const std::string err = write_file_atomic(final_path, manifest_json(s));
      !err.empty()) {
    return err;
  }

  dir_ = dir;
  scenario_digest_ = scenario_digest(s);
  const std::string journal_path = dir + "/" + kCheckpointJournalFile;
  file_ = std::fopen(journal_path.c_str(), "wb");
  if (file_ == nullptr) {
    return "cannot open journal '" + journal_path + "': " + errno_string();
  }
  return "";
}

std::string CheckpointWriter::open_for_append(const std::string& dir,
                                              std::uint64_t digest,
                                              std::uint64_t valid_bytes) {
  close();
  dir_ = dir;
  scenario_digest_ = digest;
  // A crash between the manifest temp-write and its rename leaves a stale
  // "manifest.json.tmp" next to the (old or absent) manifest.  It carries
  // no information the real manifest lacks, and left alone it would linger
  // forever, so recovery removes it here.
  std::error_code ec;
  std::filesystem::remove(
      dir + "/" + kCheckpointManifestFile + std::string(".tmp"), ec);
  const std::string journal_path = dir + "/" + kCheckpointJournalFile;
  // Drop any partial tail frame before appending: resize, then append.
  if (std::filesystem::exists(journal_path, ec)) {
    std::filesystem::resize_file(journal_path, valid_bytes, ec);
    if (ec) {
      return "cannot truncate journal '" + journal_path +
             "': " + ec.message();
    }
  }
  file_ = std::fopen(journal_path.c_str(), "ab");
  if (file_ == nullptr) {
    return "cannot open journal '" + journal_path + "': " + errno_string();
  }
  return "";
}

std::string CheckpointWriter::append(const CheckpointRecord& rec) {
  if (file_ == nullptr) return "checkpoint writer is not open";
  std::string frame;
  append_frame(frame, rec, scenario_digest_);
  if (const int err = injected_write_errno(frame.size()); err != 0) {
    return "journal append failed: " + std::string(std::strerror(err));
  }
  if (!retry_fwrite(file_, frame.data(), frame.size()) ||
      retry_fflush(file_) != 0) {
    return "journal append failed: " + errno_string();
  }
  return "";
}

std::string CheckpointWriter::append_batch(
    const std::vector<CheckpointRecord>& recs) {
  if (recs.empty()) return "";
  if (file_ == nullptr) return "checkpoint writer is not open";
  std::string frames;
  for (const CheckpointRecord& rec : recs) {
    append_frame(frames, rec, scenario_digest_);
  }
  if (const int err = injected_write_errno(frames.size()); err != 0) {
    return "journal append failed: " + std::string(std::strerror(err));
  }
  if (!retry_fwrite(file_, frames.data(), frames.size()) ||
      retry_fflush(file_) != 0) {
    return "journal append failed: " + errno_string();
  }
  return "";
}

std::string CheckpointWriter::sync() {
  if (file_ == nullptr) return "checkpoint writer is not open";
  if (!sync_stream(file_)) return "journal fsync failed: " + errno_string();
  return "";
}

AsyncJournalWriter::AsyncJournalWriter(CheckpointWriter writer,
                                       std::size_t capacity)
    : writer_(std::move(writer)),
      capacity_(capacity == 0 ? 1 : capacity),
      thread_([this] { writer_loop(); }) {}

AsyncJournalWriter::~AsyncJournalWriter() { finish(); }

bool AsyncJournalWriter::enqueue(CheckpointRecord rec) {
  std::unique_lock lock(mutex_);
  not_full_.wait(lock, [this] {
    return queue_.size() < capacity_ || finishing_ || !first_error_.empty();
  });
  if (finishing_ || !first_error_.empty()) return false;
  queue_.push_back(std::move(rec));
  work_available_.notify_one();
  return true;
}

std::uint64_t AsyncJournalWriter::acked_count() const {
  return acked_.load(std::memory_order_acquire);
}

void AsyncJournalWriter::writer_loop() {
  std::vector<CheckpointRecord> batch;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(
          lock, [this] { return !queue_.empty() || finishing_; });
      if (queue_.empty() && finishing_) return;
      // Take everything queued so far as one group commit; producers that
      // arrive during the write form the next batch.
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
      queue_.clear();
      not_full_.notify_all();
    }
    const std::string err = writer_.append_batch(batch);
    if (!err.empty()) {
      std::unique_lock lock(mutex_);
      if (first_error_.empty()) first_error_ = err;
      queue_.clear();  // nothing more will be written; unblock producers
      not_full_.notify_all();
      return;
    }
    // The batch is flushed to the OS: acknowledge every record in it.
    acked_.fetch_add(batch.size(), std::memory_order_release);
    batch.clear();
  }
}

std::string AsyncJournalWriter::finish() {
  {
    std::unique_lock lock(mutex_);
    if (finished_) return finish_result_;
    finished_ = true;
    finishing_ = true;
    work_available_.notify_all();
    not_full_.notify_all();
  }
  thread_.join();
  std::string result;
  {
    std::unique_lock lock(mutex_);
    result = first_error_;
  }
  if (result.empty()) {
    result = writer_.sync();
  }
  writer_.close();
  {
    std::unique_lock lock(mutex_);
    finish_result_ = result;
  }
  return result;
}

}  // namespace rcb
