#include "rcb/runtime/transport_socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>

#include "rcb/common/mathutil.hpp"
#include "rcb/runtime/checkpoint.hpp"
#include "rcb/runtime/coordinator.hpp"
#include "rcb/runtime/retry_io.hpp"
#include "rcb/runtime/shard.hpp"

namespace rcb {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::string parse_host_port(const std::string& text, std::string& host,
                            std::uint16_t& port) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == text.size()) {
    return "expected host:port, got \"" + text + "\"";
  }
  const std::string h = text.substr(0, colon);
  in_addr addr{};
  if (inet_pton(AF_INET, h.c_str(), &addr) != 1) {
    return "host must be a numeric IPv4 address, got \"" + h + "\"";
  }
  char* end = nullptr;
  const unsigned long p = std::strtoul(text.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || p > 65535) {
    return "port must be 0..65535, got \"" + text.substr(colon + 1) + "\"";
  }
  host = h;
  port = static_cast<std::uint16_t>(p);
  return "";
}

namespace {

void set_nonblocking_nodelay(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  fcntl(fd, F_SETFD, FD_CLOEXEC);
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Stable worker identity across reconnects, unique across restarts: a
/// restarted worker must *not* inherit its predecessor's claims.
std::uint64_t make_worker_uid() {
  char host[256] = {0};
  gethostname(host, sizeof host - 1);
  std::string seed = host;
  seed += '|';
  seed += std::to_string(static_cast<long>(getpid()));
  seed += '|';
  seed += std::to_string(monotonic_ns());
  return fnv1a64(seed);
}

// ---------------------------------------------------------------------------
// Coordinator side.

class SocketTransport final : public WorkerTransport {
 public:
  explicit SocketTransport(const SocketTransportOptions& opt)
      : opt_(opt), plan_(opt.net_faults) {}

  ~SocketTransport() override { shutdown(false); }

  std::string start() override {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return std::string("socket failed: ") + std::strerror(errno);
    }
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opt_.listen_port);
    if (inet_pton(AF_INET, opt_.listen_host.c_str(), &addr.sin_addr) != 1) {
      return "listen host must be a numeric IPv4 address: " +
             opt_.listen_host;
    }
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      return "bind " + opt_.listen_host + ":" +
             std::to_string(opt_.listen_port) +
             " failed: " + std::strerror(errno);
    }
    if (listen(listen_fd_, 64) != 0) {
      return std::string("listen failed: ") + std::strerror(errno);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      port_ = ntohs(bound.sin_port);
    }
    set_nonblocking_nodelay(listen_fd_);
    if (opt_.on_listen) opt_.on_listen(port_);
    for (std::size_t i = 0; i < opt_.spawn_workers; ++i) {
      spawned_.push_back(Spawned{});
    }
    return "";
  }

  bool can_assign() override { return find_idle_conn() != nullptr; }

  std::string assign(std::size_t shard, std::uint32_t attempt) override {
    Conn* c = find_idle_conn();
    if (c == nullptr) return "no idle attached worker";
    Held h;
    h.uid = c->uid;
    h.attempt = attempt;
    h.last_seen = Clock::now();
    held_[shard] = h;
    CtrlMessage m;
    m.type = CtrlType::kAssign;
    m.shard = shard;
    m.attempt = attempt;
    m.root = opt_.root;
    m.heartbeat_ms = static_cast<std::uint64_t>(
        std::max(1.0, opt_.heartbeat_interval_sec * 1000.0));
    send_to_conn(*c, m);
    return "";
  }

  void poll(std::vector<TransportEvent>& out) override {
    accept_new();
    pump_reads();
    deliver_delayed();
    check_leases();
    maintain_spawned();
    flush_writes();
    for (TransportEvent& ev : events_) out.push_back(std::move(ev));
    events_.clear();
  }

  void revoke(std::size_t shard) override {
    revoke_internal(shard, "revoked");
  }

  std::size_t fleet_size() const override {
    std::size_t n = 0;
    for (const auto& c : conns_) {
      if (c->uid != 0) ++n;
    }
    return n;
  }

  std::string attempt_dir(std::size_t shard,
                          std::uint32_t attempt) const override {
    return shard_attempt_dir(opt_.root, shard, attempt);
  }

  void shutdown(bool graceful) override {
    if (listen_fd_ < 0 && conns_.empty() && spawned_.empty()) return;
    if (graceful) {
      CtrlMessage m;
      m.type = CtrlType::kShutdown;
      for (auto& c : conns_) {
        // Shutdown frames bypass the fault plan: the close that follows is
        // the real signal, the frame just lets the worker exit 0.
        c->outbuf += encode_ctrl_frame(m);
      }
      flush_writes();
      for (Spawned& s : spawned_) {
        if (s.pid > 0) kill(s.pid, SIGTERM);
      }
    } else {
      for (Spawned& s : spawned_) {
        if (s.pid > 0) kill(s.pid, SIGKILL);
      }
    }
    for (Spawned& s : spawned_) {
      if (s.pid > 0) {
        int status = 0;
        waitpid(s.pid, &status, 0);
      }
      if (s.pipe_read >= 0) close(s.pipe_read);
    }
    spawned_.clear();
    for (auto& c : conns_) close(c->fd);
    conns_.clear();
    if (listen_fd_ >= 0) close(listen_fd_);
    listen_fd_ = -1;
  }

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t uid = 0;  ///< 0 until the first frame identifies the peer
    std::uint64_t pid = 0;
    std::uint64_t claim_shard = kNoShard;  ///< worker's last reported shard
    CtrlFrameDecoder dec;
    std::string outbuf;
    bool dead = false;
  };

  struct Held {
    std::uint64_t uid = 0;
    std::uint32_t attempt = 0;
    Clock::time_point last_seen;  ///< any frame from uid refreshes this
  };

  struct Spawned {
    pid_t pid = -1;
    int pipe_read = -1;
    std::uint32_t deaths = 0;
    Clock::time_point next_spawn{};  ///< default: spawn immediately
  };

  struct DelayedIn {
    Clock::time_point due;
    CtrlMessage msg;
  };
  struct DelayedOut {
    Clock::time_point due;
    std::uint64_t uid;
    CtrlMessage msg;
  };

  bool uid_busy(std::uint64_t uid) const {
    for (const auto& [shard, h] : held_) {
      if (h.uid == uid) return true;
    }
    return false;
  }

  Conn* find_idle_conn() {
    for (auto& c : conns_) {
      if (c->uid != 0 && !c->dead && c->claim_shard == kNoShard &&
          !uid_busy(c->uid)) {
        return c.get();
      }
    }
    return nullptr;
  }

  Conn* find_conn(std::uint64_t uid) {
    for (auto& c : conns_) {
      if (c->uid == uid && !c->dead) return c.get();
    }
    return nullptr;
  }

  void accept_new() {
    if (listen_fd_ < 0) return;
    for (;;) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or a transient error; retry next poll
      }
      set_nonblocking_nodelay(fd);
      auto c = std::make_unique<Conn>();
      c->fd = fd;
      conns_.push_back(std::move(c));
    }
  }

  /// Applies the outbound fault plan and queues the frame.
  void send_to_conn(Conn& c, const CtrlMessage& m) {
    if (plan_.active()) {
      switch (plan_.next(m.type)) {
        case NetFaultAction::kDrop:
          return;
        case NetFaultAction::kDelay:
          delayed_out_.push_back(
              {Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(
                                      plan_.delay_ms() / 1000.0)),
               c.uid, m});
          return;
        case NetFaultAction::kReorder:
          // A short hold *is* a reorder: frames queued after this one go
          // out first.
          delayed_out_.push_back(
              {Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(
                                      plan_.delay_ms() / 2000.0)),
               c.uid, m});
          return;
        case NetFaultAction::kDuplicate:
          c.outbuf += encode_ctrl_frame(m);
          break;  // fall through to the normal send: two copies
        case NetFaultAction::kClose:
          close_conn(c);
          return;
        case NetFaultAction::kDeliver:
          break;
      }
    }
    if (!c.dead) c.outbuf += encode_ctrl_frame(m);
  }

  void send_to_uid(std::uint64_t uid, const CtrlMessage& m) {
    if (Conn* c = find_conn(uid)) send_to_conn(*c, m);
  }

  void close_conn(Conn& c) {
    if (c.dead) return;
    close(c.fd);
    c.dead = true;
    // held_ survives on purpose: a TCP reset is not a partition; the lease
    // clock decides when the holder is really gone.
  }

  void pump_reads() {
    for (auto& c : conns_) {
      if (c->dead) continue;
      char buf[4096];
      for (;;) {
        const ssize_t k = retry_read_some(c->fd, buf, sizeof buf);
        if (k > 0) {
          c->dec.feed(buf, static_cast<std::size_t>(k));
          if (k < static_cast<ssize_t>(sizeof buf)) break;
          continue;
        }
        if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        close_conn(*c);  // EOF or a real error; the worker will reconnect
        break;
      }
      if (c->dead) continue;
      CtrlMessage msg;
      std::string err;
      int rc = 0;
      while ((rc = c->dec.next(msg, err)) == 1) {
        if (!apply_inbound_faults(*c, msg)) break;
      }
      if (rc < 0) close_conn(*c);  // poisoned stream: drop, let it reconnect
    }
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::unique_ptr<Conn>& c) {
                                  return c->dead;
                                }),
                 conns_.end());
  }

  /// Returns false when the connection was closed by a fault.
  bool apply_inbound_faults(Conn& c, const CtrlMessage& msg) {
    if (plan_.active()) {
      switch (plan_.next(msg.type)) {
        case NetFaultAction::kDrop:
          return true;
        case NetFaultAction::kDelay:
          delayed_in_.push_back(
              {Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(
                                      plan_.delay_ms() / 1000.0)),
               msg});
          return true;
        case NetFaultAction::kReorder:
          delayed_in_.push_back(
              {Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(
                                      plan_.delay_ms() / 2000.0)),
               msg});
          return true;
        case NetFaultAction::kDuplicate:
          handle_msg(&c, msg);
          if (c.dead) return false;
          break;  // fall through: handled twice
        case NetFaultAction::kClose:
          close_conn(c);
          return false;
        case NetFaultAction::kDeliver:
          break;
      }
    }
    handle_msg(&c, msg);
    return !c.dead;
  }

  void deliver_delayed() {
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < delayed_in_.size();) {
      if (delayed_in_[i].due <= now) {
        const CtrlMessage msg = delayed_in_[i].msg;
        delayed_in_.erase(delayed_in_.begin() +
                          static_cast<std::ptrdiff_t>(i));
        // Delivered against the peer's *current* connection; gone peer →
        // dropped message, which the retransmit discipline absorbs.
        handle_msg(find_conn(msg.uid), msg);
      } else {
        ++i;
      }
    }
    for (std::size_t i = 0; i < delayed_out_.size();) {
      if (delayed_out_[i].due <= now) {
        const DelayedOut d = delayed_out_[i];
        delayed_out_.erase(delayed_out_.begin() +
                           static_cast<std::ptrdiff_t>(i));
        if (Conn* c = find_conn(d.uid)) {
          if (!c->dead) c->outbuf += encode_ctrl_frame(d.msg);
        }
      } else {
        ++i;
      }
    }
  }

  /// The heart of the control plane: every inbound message is a worker
  /// status claim, reconciled against held_ — all branches idempotent.
  void handle_msg(Conn* conn, const CtrlMessage& msg) {
    if (msg.uid == 0) return;
    const Clock::time_point now = Clock::now();
    if (conn != nullptr) {
      // A reconnect supersedes any half-open previous connection.
      for (auto& other : conns_) {
        if (other.get() != conn && other->uid == msg.uid && !other->dead) {
          close_conn(*other);
        }
      }
      conn->uid = msg.uid;
      conn->pid = msg.pid;
      conn->claim_shard = msg.shard;
    }
    for (auto& [shard, h] : held_) {
      if (h.uid == msg.uid) h.last_seen = now;  // any frame proves liveness
    }

    switch (msg.type) {
      case CtrlType::kHello:
      case CtrlType::kHeartbeat:
        if (msg.shard == kNoShard) {
          // Idle claim.  If we believe this worker holds a shard, our
          // assign frame was lost: re-send it (at-least-once delivery).
          for (const auto& [shard, h] : held_) {
            if (h.uid != msg.uid) continue;
            CtrlMessage assign;
            assign.type = CtrlType::kAssign;
            assign.shard = shard;
            assign.attempt = h.attempt;
            assign.root = opt_.root;
            assign.heartbeat_ms = static_cast<std::uint64_t>(
                std::max(1.0, opt_.heartbeat_interval_sec * 1000.0));
            send_to_uid(msg.uid, assign);
            break;
          }
          return;
        }
        [[fallthrough]];  // a hello carrying a claim is a progress report
      case CtrlType::kProgress: {
        if (msg.shard == kNoShard) return;
        const std::size_t shard = static_cast<std::size_t>(msg.shard);
        const auto it = held_.find(shard);
        if (it != held_.end() && it->second.uid == msg.uid &&
            it->second.attempt == msg.attempt) {
          CtrlMessage ack;
          ack.type = CtrlType::kAck;
          ack.shard = msg.shard;
          ack.attempt = msg.attempt;
          send_to_uid(msg.uid, ack);
          return;
        }
        // Stale claim: the shard was reassigned, revoked, or belongs to a
        // coordinator lifetime that crashed.  The worker must stop; its
        // attempt dir stays on disk for the scan to dedupe or ignore.
        CtrlMessage abandon;
        abandon.type = CtrlType::kAbandon;
        abandon.shard = msg.shard;
        abandon.attempt = msg.attempt;
        send_to_uid(msg.uid, abandon);
        return;
      }
      case CtrlType::kComplete:
      case CtrlType::kFailed: {
        if (msg.shard == kNoShard) return;
        const std::size_t shard = static_cast<std::size_t>(msg.shard);
        const auto it = held_.find(shard);
        const bool ours = it != held_.end() && it->second.uid == msg.uid &&
                          it->second.attempt == msg.attempt;
        const bool someone_else = it != held_.end() && !ours;
        if (someone_else) {
          // Reassigned while this worker was partitioned: its report is
          // stale even if its journal is fine — the scan will dedupe.
          CtrlMessage abandon;
          abandon.type = CtrlType::kAbandon;
          abandon.shard = msg.shard;
          abandon.attempt = msg.attempt;
          send_to_uid(msg.uid, abandon);
          return;
        }
        if (ours) held_.erase(it);
        TransportEvent ev;
        ev.kind = msg.type == CtrlType::kComplete
                      ? TransportEvent::Kind::kShardComplete
                      : TransportEvent::Kind::kShardFailed;
        ev.shard = shard;
        ev.attempt = static_cast<std::uint32_t>(msg.attempt);
        ev.digest = msg.digest;
        ev.detail = msg.error;
        events_.push_back(std::move(ev));
        // Ack (retransmitted on every repeat report — even an unheld one,
        // e.g. after a coordinator resume — so the worker can go idle; the
        // duplicate event is idempotent, the journal scan decides).
        CtrlMessage ack;
        ack.type = CtrlType::kAck;
        ack.shard = msg.shard;
        ack.attempt = msg.attempt;
        send_to_uid(msg.uid, ack);
        return;
      }
      case CtrlType::kAssign:
      case CtrlType::kAck:
      case CtrlType::kAbandon:
      case CtrlType::kShutdown:
        return;  // coordinator-bound types never arrive here
    }
  }

  void check_leases() {
    if (opt_.lease_timeout_sec <= 0) return;
    const Clock::time_point now = Clock::now();
    std::vector<std::size_t> expired;
    for (const auto& [shard, h] : held_) {
      const double age =
          std::chrono::duration<double>(now - h.last_seen).count();
      if (age > opt_.lease_timeout_sec) expired.push_back(shard);
    }
    for (const std::size_t shard : expired) {
      revoke_internal(shard, "lease expired");
    }
  }

  void revoke_internal(std::size_t shard, const char* reason) {
    const auto it = held_.find(shard);
    if (it == held_.end()) return;
    const Held h = it->second;
    held_.erase(it);
    // SIGKILL-equivalent: sever the connection, and really SIGKILL the pid
    // when the worker is one of ours (same host).  A merely-partitioned
    // remote worker survives — and is told to abandon when it returns.
    if (Conn* c = find_conn(h.uid)) close_conn(*c);
    for (Spawned& s : spawned_) {
      if (s.pid > 0 && static_cast<std::uint64_t>(s.pid) ==
                           pid_of_uid(h.uid)) {
        kill(s.pid, SIGKILL);
      }
    }
    TransportEvent ev;
    ev.kind = TransportEvent::Kind::kShardExited;
    ev.shard = shard;
    ev.attempt = h.attempt;
    ev.detail = reason;
    events_.push_back(std::move(ev));
  }

  std::uint64_t pid_of_uid(std::uint64_t uid) const {
    for (const auto& c : conns_) {
      if (c->uid == uid) return c->pid;
    }
    return 0;
  }

  void maintain_spawned() {
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < spawned_.size(); ++i) {
      Spawned& s = spawned_[i];
      if (s.pid > 0) {
        char buf[16];
        const ssize_t k = retry_read_some(s.pipe_read, buf, sizeof buf);
        if (k != 0) continue;  // still alive (EAGAIN) or chatter
        int status = 0;
        waitpid(s.pid, &status, 0);
        close(s.pipe_read);
        s.pid = -1;
        s.pipe_read = -1;
        ++s.deaths;
        const double backoff =
            opt_.respawn_backoff_base_sec *
            static_cast<double>(1u << std::min(s.deaths - 1, 10u));
        s.next_spawn = now + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(backoff));
        continue;
      }
      if (s.next_spawn > now) continue;
      const std::string host =
          opt_.listen_host == "0.0.0.0" ? "127.0.0.1" : opt_.listen_host;
      const std::vector<std::string> argv =
          opt_.attach_argv
              ? opt_.attach_argv(i)
              : std::vector<std::string>{
                    "/proc/self/exe",
                    "--attach=" + host + ":" + std::to_string(port_)};
      if (!spawn_worker_process(argv, s.pid, s.pipe_read).empty()) {
        s.pid = -1;
        s.next_spawn = now + std::chrono::seconds(1);
        continue;
      }
      if (opt_.on_worker_spawn) opt_.on_worker_spawn(i, s.pid);
    }
  }

  void flush_writes() {
    for (auto& c : conns_) {
      if (c->dead || c->outbuf.empty()) continue;
      const ssize_t k =
          retry_send_some(c->fd, c->outbuf.data(), c->outbuf.size());
      if (k > 0) {
        c->outbuf.erase(0, static_cast<std::size_t>(k));
      } else if (k < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
        close_conn(*c);
      }
    }
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::unique_ptr<Conn>& c) {
                                  return c->dead;
                                }),
                 conns_.end());
  }

  const SocketTransportOptions opt_;
  NetFaultPlan plan_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::map<std::size_t, Held> held_;
  std::vector<Spawned> spawned_;
  std::vector<DelayedIn> delayed_in_;
  std::vector<DelayedOut> delayed_out_;
  std::vector<TransportEvent> events_;
};

}  // namespace

std::unique_ptr<WorkerTransport> make_socket_transport(
    const SocketTransportOptions& opt) {
  return std::make_unique<SocketTransport>(opt);
}

// ---------------------------------------------------------------------------
// Worker side.

namespace {

enum class WState { kIdle, kAssigned, kRunning, kDone, kFailed };

struct WorkerShared {
  std::mutex mutex;
  std::condition_variable cv;
  WState state = WState::kIdle;
  // Current assignment (valid outside kIdle).
  std::string root;
  std::size_t shard = 0;
  std::uint32_t attempt = 0;
  std::uint64_t heartbeat_ms = 100;
  // Terminal report payloads.
  std::uint64_t digest = 0;
  std::string error;
  // Directives.
  bool abandon = false;  ///< coordinator revoked the current assignment
  bool exiting = false;  ///< shutdown directive or signal
};

int connect_once(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return -1;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    close(fd);
    return -1;
  }
  set_nonblocking_nodelay(fd);
  return fd;
}

/// Builds the status frame for the worker's current state.
CtrlMessage status_frame(const WorkerShared& sh, std::uint64_t uid,
                         CtrlType type_hint) {
  CtrlMessage m;
  m.uid = uid;
  m.pid = static_cast<std::uint64_t>(getpid());
  switch (sh.state) {
    case WState::kIdle:
      m.type = type_hint;  // kHello on (re)connect, kHeartbeat after
      break;
    case WState::kAssigned:
    case WState::kRunning: {
      m.type = type_hint == CtrlType::kHello ? CtrlType::kHello
                                             : CtrlType::kProgress;
      m.shard = sh.shard;
      m.attempt = sh.attempt;
      std::error_code ec;
      const auto bytes = std::filesystem::file_size(
          shard_attempt_dir(sh.root, sh.shard, sh.attempt) + "/" +
              kCheckpointJournalFile,
          ec);
      m.value = ec ? 0 : static_cast<std::uint64_t>(bytes);
      break;
    }
    case WState::kDone:
      m.type = CtrlType::kComplete;
      m.shard = sh.shard;
      m.attempt = sh.attempt;
      m.digest = sh.digest;
      break;
    case WState::kFailed:
      m.type = CtrlType::kFailed;
      m.shard = sh.shard;
      m.attempt = sh.attempt;
      m.error = sh.error;
      break;
  }
  return m;
}

/// Handles one coordinator directive; returns false to drop the
/// connection.
void worker_handle(WorkerShared& sh, const CtrlMessage& msg) {
  std::lock_guard<std::mutex> lock(sh.mutex);
  switch (msg.type) {
    case CtrlType::kAssign:
      if (sh.state == WState::kIdle && msg.shard != kNoShard &&
          !msg.root.empty()) {
        sh.state = WState::kAssigned;
        sh.root = msg.root;
        sh.shard = static_cast<std::size_t>(msg.shard);
        sh.attempt = static_cast<std::uint32_t>(msg.attempt);
        sh.heartbeat_ms = msg.heartbeat_ms > 0 ? msg.heartbeat_ms : 100;
        sh.abandon = false;
        sh.cv.notify_all();
      }
      // Duplicate assigns while busy are stale retransmits: ignored.
      return;
    case CtrlType::kAck:
      // Terminal report acknowledged: the coordinator took custody.
      if ((sh.state == WState::kDone || sh.state == WState::kFailed) &&
          msg.shard == sh.shard && msg.attempt == sh.attempt) {
        sh.state = WState::kIdle;
        sh.cv.notify_all();
      }
      return;
    case CtrlType::kAbandon:
      if (msg.shard != sh.shard || msg.attempt != sh.attempt) return;
      switch (sh.state) {
        case WState::kRunning:
          // Interrupt the in-flight sweep; the main loop observes
          // sh.abandon when it returns and discards instead of reporting.
          sh.abandon = true;
          request_sweep_shutdown();
          break;
        case WState::kAssigned:
        case WState::kDone:
        case WState::kFailed:
          sh.state = WState::kIdle;
          sh.cv.notify_all();
          break;
        case WState::kIdle:
          break;
      }
      return;
    case CtrlType::kShutdown:
      sh.exiting = true;
      request_sweep_shutdown();
      sh.cv.notify_all();
      return;
    default:
      return;  // worker-bound streams never carry worker->coordinator types
  }
}

/// Comms loop: maintain the connection (reconnect with exponential
/// backoff), beat status, apply directives.  Runs on its own thread so a
/// long trial cannot silence the heartbeat.
void worker_comms(const AttachWorkerOptions& opt, WorkerShared& sh,
                  std::uint64_t uid) {
  double backoff = opt.reconnect_base_sec;
  Clock::time_point detached_since = Clock::now();
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(sh.mutex);
      if (sh.exiting) return;
      if (sweep_shutdown_requested() && sh.state != WState::kRunning &&
          !sh.abandon) {
        // A real SIGINT/SIGTERM (not an abandon we initiated).
        sh.exiting = true;
        sh.cv.notify_all();
        return;
      }
    }
    const int fd = connect_once(opt.host, opt.port);
    if (fd < 0) {
      if (opt.give_up_sec > 0 &&
          std::chrono::duration<double>(Clock::now() - detached_since)
                  .count() > opt.give_up_sec) {
        std::lock_guard<std::mutex> lock(sh.mutex);
        sh.exiting = true;
        sh.error = "no coordinator";
        sh.cv.notify_all();
        return;
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(backoff, opt.reconnect_max_sec)));
      backoff = std::min(backoff * 2.0, opt.reconnect_max_sec);
      continue;
    }
    backoff = opt.reconnect_base_sec;

    CtrlFrameDecoder dec;
    std::string outbuf;
    bool first = true;
    bool broken = false;
    while (!broken) {
      std::uint64_t hb_ms = 100;
      {
        std::lock_guard<std::mutex> lock(sh.mutex);
        if (sh.exiting) {
          close(fd);
          return;
        }
        hb_ms = sh.heartbeat_ms;
        outbuf += encode_ctrl_frame(status_frame(
            sh, uid, first ? CtrlType::kHello : CtrlType::kHeartbeat));
      }
      first = false;
      while (!outbuf.empty()) {
        const ssize_t k =
            retry_send_some(fd, outbuf.data(), outbuf.size());
        if (k > 0) {
          outbuf.erase(0, static_cast<std::size_t>(k));
        } else if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          break;  // kernel buffer full; finish next tick
        } else {
          broken = true;
          break;
        }
      }
      char buf[4096];
      for (;;) {
        const ssize_t k = retry_read_some(fd, buf, sizeof buf);
        if (k > 0) {
          dec.feed(buf, static_cast<std::size_t>(k));
          continue;
        }
        if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        broken = true;  // EOF or error: reconnect
        break;
      }
      CtrlMessage msg;
      std::string err;
      int rc = 0;
      while ((rc = dec.next(msg, err)) == 1) worker_handle(sh, msg);
      if (rc < 0) broken = true;  // poisoned stream: reconnect clean
      if (!broken) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::max<std::uint64_t>(1, hb_ms)));
      }
    }
    close(fd);
    detached_since = Clock::now();
  }
}

}  // namespace

int run_attached_worker(const AttachWorkerOptions& opt) {
  install_sweep_signal_handlers();
  const std::uint64_t uid = make_worker_uid();
  WorkerShared sh;
  std::thread comms([&] { worker_comms(opt, sh, uid); });

  int exit_code = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(sh.mutex);
    sh.cv.wait(lock, [&] {
      return sh.exiting || sh.state == WState::kAssigned;
    });
    if (sh.exiting) {
      exit_code = sh.error == "no coordinator" ? 3 : 0;
      break;
    }
    sh.state = WState::kRunning;
    const std::string root = sh.root;
    const std::size_t shard = sh.shard;
    const std::uint32_t attempt = sh.attempt;
    lock.unlock();

    const ShardSpecLoadResult loaded = load_shard_spec(root);
    SweepResult res;
    if (!loaded.ok) {
      res.ok = false;
      res.error = loaded.error;
    } else if (shard >= loaded.spec.shards.size()) {
      res.ok = false;
      res.error = "shard " + std::to_string(shard) + " out of range";
    } else {
      res = run_shard_attempt(loaded.spec, shard,
                              shard_attempt_dir(root, shard, attempt),
                              opt.runner);
    }

    lock.lock();
    if (sh.abandon) {
      // Revoked mid-run: discard the report (the try dir stays on disk for
      // the scan to ignore or dedupe) and clear the interrupt we injected.
      sh.abandon = false;
      sh.state = WState::kIdle;
      reset_sweep_shutdown();
      continue;
    }
    if (sh.exiting || (res.interrupted && sweep_shutdown_requested())) {
      exit_code = sh.exiting ? 0 : 130;
      break;
    }
    if (res.ok) {
      sh.state = WState::kDone;
      sh.digest = res.aggregate_digest;
    } else {
      sh.state = WState::kFailed;
      sh.error = res.error.empty() ? "shard attempt failed" : res.error;
    }
    // The comms thread now retransmits the terminal report every beat
    // until the coordinator acks (→ idle) or abandons.
  }

  {
    std::lock_guard<std::mutex> lock(sh.mutex);
    sh.exiting = true;
    sh.cv.notify_all();
  }
  request_sweep_shutdown();  // unblock a comms thread waiting on reconnect
  comms.join();
  return exit_code;
}

}  // namespace rcb
