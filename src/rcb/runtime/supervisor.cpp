#include "rcb/runtime/supervisor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iterator>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "rcb/common/contracts.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/runtime/cancel.hpp"

namespace rcb {
namespace {

// ---------------------------------------------------------------------------
// Graceful shutdown flag.
//
// The signal handler only touches lock-free atomics (async-signal-safe);
// everything else — draining, journal fsync, the resume hint — happens on
// the normal control path once the sweep notices the flag.

std::atomic<bool> g_shutdown{false};
std::atomic<int> g_signal_count{0};

extern "C" void sweep_signal_handler(int) {
  g_shutdown.store(true, std::memory_order_release);
  // A second signal means the user is done waiting for the drain.
  if (g_signal_count.fetch_add(1, std::memory_order_acq_rel) >= 1) {
    std::_Exit(130);
  }
}

// ---------------------------------------------------------------------------
// Contract-failure capture.
//
// Contract failures abort the process by default.  Inside a supervised
// trial we instead want to journal the trial as failed (or retry it) and
// keep sweeping, so while any sweep is running we install a process-global
// handler that throws out of the failing RCB_REQUIRE — but only on threads
// currently executing a supervised trial; failures anywhere else fall
// through to the previous handler (normally: stderr + abort).

struct SupervisedTrialFault {
  std::string record_json;  ///< the RCB_REPRO payload, pre-formatted
};

thread_local bool t_in_supervised_trial = false;

std::mutex g_handler_mutex;
int g_handler_refs = 0;
ContractFailureHandler g_previous_handler = nullptr;

void supervised_contract_handler(std::string_view record) {
  if (t_in_supervised_trial) {
    throw SupervisedTrialFault{std::string(record)};
  }
  if (g_previous_handler != nullptr) g_previous_handler(record);
}

class ContractCaptureGuard {
 public:
  ContractCaptureGuard() {
    std::lock_guard<std::mutex> lock(g_handler_mutex);
    if (g_handler_refs++ == 0) {
      g_previous_handler =
          set_contract_failure_handler(&supervised_contract_handler);
    }
  }
  ~ContractCaptureGuard() {
    std::lock_guard<std::mutex> lock(g_handler_mutex);
    if (--g_handler_refs == 0) {
      set_contract_failure_handler(g_previous_handler);
      g_previous_handler = nullptr;
    }
  }
  ContractCaptureGuard(const ContractCaptureGuard&) = delete;
  ContractCaptureGuard& operator=(const ContractCaptureGuard&) = delete;
};

// ---------------------------------------------------------------------------
// Watchdog: one monitor thread per sweep, scanning registered trials every
// ~20ms and requesting cancellation on the ones past their deadline.  The
// engines notice at the next repetition boundary, so enforcement latency is
// one repetition, not one slot — cheap and good enough for budgets measured
// in (fractions of) seconds.

class Watchdog {
 public:
  explicit Watchdog(double timeout_sec)
      : timeout_(std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(timeout_sec))),
        thread_([this] { loop(); }) {}

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  /// (Re)arms the deadline for `token`; called at the start of each attempt.
  void watch(CancelToken* token) {
    std::lock_guard<std::mutex> lock(mutex_);
    deadlines_[token] = Clock::now() + timeout_;
  }

  void unwatch(CancelToken* token) {
    std::lock_guard<std::mutex> lock(mutex_);
    deadlines_.erase(token);
  }

 private:
  using Clock = std::chrono::steady_clock;

  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(20),
                   [this] { return stop_; });
      if (stop_) break;
      const Clock::time_point now = Clock::now();
      for (const auto& [token, deadline] : deadlines_) {
        if (now >= deadline) token->request("watchdog");
      }
    }
  }

  const Clock::duration timeout_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::map<CancelToken*, Clock::time_point> deadlines_;
  std::thread thread_;
};

/// Outcome journaled for a trial the supervisor had to give up on.  Derived
/// from (status, trial) only, so uninterrupted and resumed runs produce the
/// same record and the aggregate digest stays comparable.
TrialOutcome synthetic_outcome(const char* status, std::uint64_t trial) {
  TrialOutcome o;
  o.aborted = true;
  o.digest = fnv1a64(std::string(status) + ":" + std::to_string(trial));
  return o;
}

void emit_repro(const char* kind, const std::string& expr, const Scenario& s,
                std::uint64_t trial, const std::string& scenario_json) {
  ReproContext ctx;
  ctx.master_seed = s.seed;
  ctx.trial = trial;
  ctx.scenario_json = scenario_json;
  std::fprintf(
      stderr, "RCB_REPRO %s\n",
      format_repro_record(kind, expr, "runtime/supervisor.cpp", 0, &ctx)
          .c_str());
}

TrialOutcome default_trial_runner(const Scenario& s, std::uint64_t trial,
                                  std::uint32_t attempt) {
  if (attempt == 0) return run_scenario_trial(s, trial);
  Scenario reseeded = s;
  reseeded.seed = reseed_for_attempt(s.seed, attempt);
  return run_scenario_trial(reseeded, trial);
}

}  // namespace

std::uint64_t reseed_for_attempt(std::uint64_t seed, std::uint32_t attempt) {
  if (attempt == 0) return seed;
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * attempt;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t aggregate_digest(const std::vector<CheckpointRecord>& records) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix_u64 = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  for (const CheckpointRecord& rec : records) {
    mix_u64(rec.trial);
    mix_u64(rec.outcome.digest);
  }
  return h;
}

void request_sweep_shutdown() {
  g_shutdown.store(true, std::memory_order_release);
}

bool sweep_shutdown_requested() {
  return g_shutdown.load(std::memory_order_acquire);
}

void reset_sweep_shutdown() {
  g_shutdown.store(false, std::memory_order_release);
  g_signal_count.store(0, std::memory_order_release);
}

void install_sweep_signal_handlers() {
  std::signal(SIGINT, &sweep_signal_handler);
  std::signal(SIGTERM, &sweep_signal_handler);
}

namespace {

/// All mutable state of one sweep point while its trials are in flight.
/// Owned via unique_ptr so addresses stay stable for the pool tasks.
struct PointState {
  Scenario scenario;          ///< authoritative (manifest scenario on resume)
  std::uint64_t begin = 0;    ///< assigned trial range [begin, end)
  std::uint64_t end = 0;
  std::string scenario_json;
  std::vector<CheckpointRecord> resumed;   ///< loaded from the journal
  std::vector<bool> have;                  ///< trial-index completion bitmap
  std::unique_ptr<AsyncJournalWriter> journal;  ///< null when not checkpointing
  std::mutex fresh_mutex;
  std::vector<CheckpointRecord> fresh;     ///< trials run by this invocation
  /// Set on a journal failure: the point's remaining trials are skipped
  /// (running them would complete work that can never be made durable).
  std::atomic<bool> abort{false};
};

/// Phase-1 setup for one point: resume or create its checkpoint and hand
/// the open writer to an AsyncJournalWriter.  Returns "" or an error.
std::string setup_point(const SweepPoint& point, const SupervisorOptions& opt,
                        SweepResult& result, PointState& st) {
  result.scenario = point.scenario;
  const bool checkpointing = !point.checkpoint_dir.empty();
  CheckpointWriter writer;

  if (checkpointing && opt.resume) {
    std::error_code ec;
    const std::filesystem::path manifest =
        std::filesystem::path(point.checkpoint_dir) / kCheckpointManifestFile;
    // --resume with no manifest yet starts fresh, so scripted restart loops
    // can pass the flag unconditionally.
    if (std::filesystem::exists(manifest, ec)) {
      CheckpointLoadResult loaded = load_checkpoint(point.checkpoint_dir);
      if (!loaded.ok) return loaded.error;
      result.scenario = loaded.scenario;
      st.resumed = std::move(loaded.records);
      const std::string err =
          writer.open_for_append(point.checkpoint_dir, loaded.scenario_digest,
                                 loaded.journal_valid_bytes);
      if (!err.empty()) return err;
    }
  }

  if (const std::string invalid = validate_scenario(result.scenario);
      !invalid.empty()) {
    return invalid;
  }
  if (checkpointing && !writer.active()) {
    const std::string err = writer.create(point.checkpoint_dir,
                                          result.scenario);
    if (!err.empty()) return err;
  }

  result.resumed = st.resumed.size();
  st.scenario = result.scenario;
  st.begin = point.trial_begin;
  st.end = point.trial_end;
  if (st.begin == 0 && st.end == 0) st.end = st.scenario.trials;
  if (st.begin > st.end || st.end > st.scenario.trials) {
    return "invalid trial range [" + std::to_string(st.begin) + ", " +
           std::to_string(st.end) + ") for scenario with " +
           std::to_string(st.scenario.trials) + " trials";
  }
  st.scenario_json = scenario_to_json(st.scenario);
  st.have.assign(st.end - st.begin, false);
  for (const CheckpointRecord& rec : st.resumed) {
    if (rec.trial < st.begin || rec.trial >= st.end) {
      return "checkpoint record for trial " + std::to_string(rec.trial) +
             " is outside the assigned range [" + std::to_string(st.begin) +
             ", " + std::to_string(st.end) +
             "): journal belongs to a different shard assignment";
    }
    st.have[rec.trial - st.begin] = true;
  }
  if (writer.active()) {
    st.journal = std::make_unique<AsyncJournalWriter>(std::move(writer));
  }
  return "";
}

/// The per-(point, trial) work item: run the trial with watchdog, slot
/// budget and retry-with-reseed, then hand the record to the point's
/// group-commit journal.
void run_point_trial(PointState& st, std::uint64_t t,
                     const SupervisorOptions& opt, const TrialRunner& runner,
                     Watchdog* watchdog) {
  // Trials not yet started when shutdown (or a journal write error) hits
  // are skipped, not run: the journal must only ever contain records that
  // were durably appended.
  if (st.abort.load(std::memory_order_relaxed) ||
      g_shutdown.load(std::memory_order_acquire)) {
    return;
  }

  const Scenario& s = st.scenario;
  CancelToken token(opt.trial_slot_budget);
  CancelScope cancel_scope(&token);
  CheckpointRecord rec;
  rec.trial = t;

  t_in_supervised_trial = true;
  std::uint32_t attempt = 0;
  for (;;) {
    if (watchdog != nullptr) watchdog->watch(&token);
    try {
      rec.outcome = runner(s, t, attempt);
      rec.status = "ok";
    } catch (const TrialCancelled& cancelled) {
      rec.status = "timed_out";
      rec.outcome = synthetic_outcome("timed_out", t);
      emit_repro("timeout",
                 "trial exceeded its " + cancelled.reason() + " budget", s, t,
                 st.scenario_json);
    } catch (const SupervisedTrialFault& fault) {
      std::fprintf(stderr, "RCB_REPRO %s\n", fault.record_json.c_str());
      if (attempt < opt.max_retries) {
        ++attempt;
        continue;
      }
      rec.status = "failed";
      rec.outcome = synthetic_outcome("failed", t);
    } catch (const std::exception& ex) {
      emit_repro("exception", ex.what(), s, t, st.scenario_json);
      if (attempt < opt.max_retries) {
        ++attempt;
        continue;
      }
      rec.status = "failed";
      rec.outcome = synthetic_outcome("failed", t);
    } catch (...) {
      emit_repro("exception", "unknown exception", s, t, st.scenario_json);
      if (attempt < opt.max_retries) {
        ++attempt;
        continue;
      }
      rec.status = "failed";
      rec.outcome = synthetic_outcome("failed", t);
    }
    break;
  }
  t_in_supervised_trial = false;
  if (watchdog != nullptr) watchdog->unwatch(&token);
  rec.attempts = attempt + 1;

  if (st.journal != nullptr) {
    // Group commit: the writer thread batches this with its neighbours and
    // flushes once.  enqueue() == false means the journal is broken; the
    // record must not count as completed (it can never be made durable).
    if (!st.journal->enqueue(rec)) {
      st.abort.store(true, std::memory_order_relaxed);
      return;
    }
  }
  std::lock_guard<std::mutex> lock(st.fresh_mutex);
  st.fresh.push_back(std::move(rec));
}

/// Phase-3 finalisation for one point: drain+fsync the journal, then
/// reduce records in trial order (sorting makes the aggregate digest
/// independent of completion order, hence of thread count).
void finalize_point(PointState& st, SweepResult& result) {
  if (st.journal != nullptr) {
    const std::string err = st.journal->finish();
    if (!err.empty()) {
      result.error = "checkpoint journal failed: " + err;
      return;
    }
  }
  result.executed = st.fresh.size();
  result.records = std::move(st.resumed);
  result.records.insert(result.records.end(),
                        std::make_move_iterator(st.fresh.begin()),
                        std::make_move_iterator(st.fresh.end()));
  std::sort(result.records.begin(), result.records.end(),
            [](const CheckpointRecord& a, const CheckpointRecord& b) {
              return a.trial < b.trial;
            });
  for (const CheckpointRecord& rec : result.records) {
    if (rec.status == "timed_out") ++result.timed_out;
    if (rec.status == "failed") ++result.failed_trials;
  }
  result.interrupted = result.records.size() < (st.end - st.begin);
  result.aggregate_digest = aggregate_digest(result.records);
  result.ok = true;
}

}  // namespace

std::vector<SweepResult> run_supervised_sweep_points(
    const std::vector<SweepPoint>& points, const SupervisorOptions& opt,
    ThreadPool& pool, const TrialRunner& runner) {
  std::vector<SweepResult> results(points.size());
  std::vector<std::unique_ptr<PointState>> states;
  states.reserve(points.size());

  // Phase 1 — sequential setup.  Every point is loaded/validated/created
  // before any trial runs, so a bad point fails the sweep cleanly instead
  // of after hours of compute.
  for (std::size_t i = 0; i < points.size(); ++i) {
    states.push_back(std::make_unique<PointState>());
    const std::string err =
        setup_point(points[i], opt, results[i], *states[i]);
    if (!err.empty()) {
      results[i].error = err;
      return results;  // nothing has run; other points report !ok
    }
  }

  // Phase 2 — flatten every missing (point, trial) into one submission.
  // The work-stealing pool keeps all workers busy across point boundaries:
  // a long-tail trial of point i no longer serialises the start of point
  // i+1.
  std::optional<Watchdog> watchdog;
  if (opt.trial_timeout_sec > 0.0) watchdog.emplace(opt.trial_timeout_sec);
  Watchdog* wd = watchdog ? &*watchdog : nullptr;
  ContractCaptureGuard contract_capture;

  for (std::size_t i = 0; i < points.size(); ++i) {
    PointState* st = states[i].get();
    for (std::uint64_t t = st->begin; t < st->end; ++t) {
      if (st->have[t - st->begin]) continue;
      pool.submit([st, t, &opt, &runner, wd] {
        run_point_trial(*st, t, opt, runner, wd);
      });
    }
  }
  pool.wait_idle();

  // Phase 3 — sequential finalisation in point order.
  for (std::size_t i = 0; i < points.size(); ++i) {
    finalize_point(*states[i], results[i]);
  }
  return results;
}

std::vector<SweepResult> run_supervised_sweep_points(
    const std::vector<SweepPoint>& points, const SupervisorOptions& opt,
    ThreadPool& pool) {
  return run_supervised_sweep_points(points, opt, pool,
                                     &default_trial_runner);
}

SweepResult run_supervised_sweep(const Scenario& s_in,
                                 const SupervisorOptions& opt,
                                 ThreadPool& pool, const TrialRunner& runner) {
  std::vector<SweepPoint> points(1);
  points[0].scenario = s_in;
  points[0].checkpoint_dir = opt.checkpoint_dir;
  std::vector<SweepResult> results =
      run_supervised_sweep_points(points, opt, pool, runner);
  return std::move(results[0]);
}

SweepResult run_supervised_sweep(const Scenario& s,
                                 const SupervisorOptions& opt,
                                 ThreadPool& pool) {
  return run_supervised_sweep(s, opt, pool, &default_trial_runner);
}

}  // namespace rcb
