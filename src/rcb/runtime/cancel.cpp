#include "rcb/runtime/cancel.hpp"

namespace rcb {
namespace {

thread_local CancelToken* t_cancel_token = nullptr;

}  // namespace

CancelScope::CancelScope(CancelToken* token) : previous_(t_cancel_token) {
  t_cancel_token = token;
}

CancelScope::~CancelScope() { t_cancel_token = previous_; }

CancelToken* current_cancel_token() { return t_cancel_token; }

void poll_cancellation(SlotCount upcoming_slots) {
  CancelToken* token = t_cancel_token;
  if (token == nullptr) return;
  token->charge_slots(upcoming_slots);
  if (token->requested()) throw TrialCancelled(token->reason());
}

}  // namespace rcb
