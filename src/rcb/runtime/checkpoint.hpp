// Crash-safe checkpoint journal for Monte-Carlo sweeps.
//
// A checkpoint directory holds two files:
//
//   manifest.json   {"rcb_checkpoint":1,"scenario_digest":"<hex16>",
//                    "journal":"journal.rcbj","scenario":{...}}
//   journal.rcbj    one framed record per completed trial, appended as
//                   trials finish (any order; records carry their index)
//
// The manifest is written atomically (temp file + fsync + rename), so a
// reader either sees the complete manifest or none.  Journal records are
// length/digest framed text lines:
//
//   RCBJ <payload-bytes> <fnv1a-hex16> <payload-json>\n
//
// where the digest covers the payload bytes.  A process killed mid-append
// leaves at most one partial frame at the tail; the loader detects it,
// reports it, and resumes from the last good record (the writer truncates
// the partial tail before appending).  A flipped byte inside a *complete*
// frame, a duplicate trial index, or a record whose scenario_digest does
// not match the manifest are corruption, not truncation: the loader
// refuses them, because silently resuming against the wrong data would
// fabricate experiment results.
//
// The payload embeds every TrialOutcome field (doubles printed with %.17g
// round-trip exactly; u64 digests travel as hex strings) so an aggregate
// recomputed from the journal is bit-identical to the uninterrupted run —
// the property the supervisor's kill/resume tests pin.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rcb/runtime/scenario.hpp"

namespace rcb {

/// Writes `content` to `path` atomically: temp file in the same directory,
/// fsync, rename over the final name, fsync the directory.  A crash leaves
/// either the old file or the new one, never a torn write (a crash between
/// the temp write and the rename can leave a stale "<path>.tmp", which the
/// checkpoint recovery path removes).  Returns "" or an error description.
std::string write_file_atomic(const std::string& path,
                              std::string_view content);

/// Test-only fault injection for journal/manifest writes.  When set, the
/// hook is consulted before every CheckpointWriter write with the byte
/// count about to be written; returning a nonzero errno (e.g. ENOSPC)
/// fails that write exactly as the OS would — the bytes are not written
/// and the writer reports the errno's message.  Thread-safe; pass nullptr
/// to disarm.  Lets tests prove that a full disk taints the sweep instead
/// of silently dropping records.
using WriteFaultHook = std::function<int(std::size_t bytes)>;
void set_checkpoint_write_fault(WriteFaultHook hook);

/// One journaled trial: the outcome plus how the supervisor got it.
struct CheckpointRecord {
  std::uint64_t trial = 0;
  /// "ok" | "timed_out" (watchdog/slot-budget quarantine) | "failed"
  /// (exhausted the retry budget).
  std::string status = "ok";
  std::uint32_t attempts = 1;  ///< 1 = first attempt succeeded
  TrialOutcome outcome;
};

struct CheckpointLoadResult {
  bool ok = false;
  std::string error;
  Scenario scenario;                   ///< from the manifest
  std::uint64_t scenario_digest = 0;   ///< digest of the manifest scenario
  std::vector<CheckpointRecord> records;  ///< journal order
  /// True when the journal ended in a partial frame (killed mid-append).
  /// Recoverable: `records` holds everything up to the last good frame and
  /// journal_valid_bytes is where a resuming writer must truncate to.
  bool truncated_tail = false;
  std::uint64_t journal_valid_bytes = 0;
};

/// Reads and verifies a checkpoint directory.  ok=false means the
/// checkpoint is unusable (missing/corrupt manifest, corrupt record,
/// duplicate trial, scenario-digest mismatch); a truncated tail alone is
/// reported but still ok.
CheckpointLoadResult load_checkpoint(const std::string& dir);

/// Appends framed trial records to a checkpoint journal.  Not thread-safe;
/// the supervisor serialises appends.  Each append is flushed to the OS
/// (surviving process death); sync() additionally fsyncs (surviving power
/// loss) and is called by the supervisor at shutdown/final flush.
class CheckpointWriter {
 public:
  CheckpointWriter() = default;
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;
  CheckpointWriter(CheckpointWriter&& other) noexcept;
  CheckpointWriter& operator=(CheckpointWriter&& other) noexcept;

  /// Starts a fresh checkpoint: creates `dir` (and parents), writes the
  /// manifest atomically, and truncates the journal.  Returns "" or an
  /// error description.
  std::string create(const std::string& dir, const Scenario& s);

  /// Resumes an existing checkpoint: truncates the journal to
  /// `valid_bytes` (dropping a partial tail reported by load_checkpoint)
  /// and opens it for append.  `digest` is the manifest scenario digest
  /// stamped into every appended record.
  std::string open_for_append(const std::string& dir, std::uint64_t digest,
                              std::uint64_t valid_bytes);

  /// Appends one framed record and flushes it to the OS.
  std::string append(const CheckpointRecord& rec);

  /// Group commit: appends all records as consecutive frames with a single
  /// flush at the end.  The journal bytes are identical to calling append()
  /// once per record; the difference is one fwrite+fflush instead of n, so
  /// the per-record durability cost is amortised across the batch.
  std::string append_batch(const std::vector<CheckpointRecord>& recs);

  /// fsyncs the journal file.
  std::string sync();

  void close();
  bool active() const { return file_ != nullptr; }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::uint64_t scenario_digest_ = 0;
  std::FILE* file_ = nullptr;
};

/// Asynchronous group-commit front end for a CheckpointWriter.
///
/// Workers enqueue completed CheckpointRecords into a bounded MPSC queue;
/// a dedicated writer thread drains the queue in batches and commits each
/// batch with CheckpointWriter::append_batch (one flush per batch).  This
/// removes journal I/O from the trial workers' critical path — under the
/// old design every worker serialised on a mutex around a flushed append.
///
/// Durability contract (same as the synchronous writer, batched):
///   - a record counts as *acknowledged* (acked_count()) only after the
///     flush covering its batch returned, i.e. after its bytes reached the
///     OS and will survive process death;
///   - finish() drains every enqueued record, fsyncs (power-loss durable)
///     and closes — callers report results only after finish() succeeds,
///     so no reported record can be lost to a crash;
///   - a write error taints the writer: the writer thread stops, further
///     enqueue() calls return false, and finish() returns the first error.
///     The error reaches whoever finishes the sweep, not just the caller
///     whose record happened to hit the bad write.
///
/// Thread-safe for concurrent enqueue(); finish() must be called by one
/// thread after all producers are done.
class AsyncJournalWriter {
 public:
  /// Takes ownership of an open CheckpointWriter.  `capacity` bounds the
  /// queue; enqueue() blocks when full (back-pressure, not data loss).
  explicit AsyncJournalWriter(CheckpointWriter writer,
                              std::size_t capacity = 1024);
  ~AsyncJournalWriter();
  AsyncJournalWriter(const AsyncJournalWriter&) = delete;
  AsyncJournalWriter& operator=(const AsyncJournalWriter&) = delete;

  /// Queues one record for the next group commit.  Blocks while the queue
  /// is full.  Returns false iff the writer has failed (or finish() was
  /// already called); the record is then dropped and the error is
  /// available from finish().
  bool enqueue(CheckpointRecord rec);

  /// Records flushed to the OS so far (monotonic; for tests/diagnostics).
  std::uint64_t acked_count() const;

  /// Drains the queue, fsyncs the journal, closes it, and joins the writer
  /// thread.  Returns "" on success or the first error encountered by any
  /// append/flush/sync.  Idempotent.
  std::string finish();

 private:
  void writer_loop();

  CheckpointWriter writer_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable work_available_;
  std::deque<CheckpointRecord> queue_;
  bool finishing_ = false;
  std::string first_error_;
  std::atomic<std::uint64_t> acked_{0};
  bool finished_ = false;
  std::string finish_result_;
  std::thread thread_;
};

/// Journal file name inside a checkpoint directory (exposed for tests and
/// the chaos harness, which watches it grow before killing the process).
extern const char kCheckpointJournalFile[];
extern const char kCheckpointManifestFile[];

}  // namespace rcb
