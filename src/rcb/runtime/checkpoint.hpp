// Crash-safe checkpoint journal for Monte-Carlo sweeps.
//
// A checkpoint directory holds two files:
//
//   manifest.json   {"rcb_checkpoint":1,"scenario_digest":"<hex16>",
//                    "journal":"journal.rcbj","scenario":{...}}
//   journal.rcbj    one framed record per completed trial, appended as
//                   trials finish (any order; records carry their index)
//
// The manifest is written atomically (temp file + fsync + rename), so a
// reader either sees the complete manifest or none.  Journal records are
// length/digest framed text lines:
//
//   RCBJ <payload-bytes> <fnv1a-hex16> <payload-json>\n
//
// where the digest covers the payload bytes.  A process killed mid-append
// leaves at most one partial frame at the tail; the loader detects it,
// reports it, and resumes from the last good record (the writer truncates
// the partial tail before appending).  A flipped byte inside a *complete*
// frame, a duplicate trial index, or a record whose scenario_digest does
// not match the manifest are corruption, not truncation: the loader
// refuses them, because silently resuming against the wrong data would
// fabricate experiment results.
//
// The payload embeds every TrialOutcome field (doubles printed with %.17g
// round-trip exactly; u64 digests travel as hex strings) so an aggregate
// recomputed from the journal is bit-identical to the uninterrupted run —
// the property the supervisor's kill/resume tests pin.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "rcb/runtime/scenario.hpp"

namespace rcb {

/// One journaled trial: the outcome plus how the supervisor got it.
struct CheckpointRecord {
  std::uint64_t trial = 0;
  /// "ok" | "timed_out" (watchdog/slot-budget quarantine) | "failed"
  /// (exhausted the retry budget).
  std::string status = "ok";
  std::uint32_t attempts = 1;  ///< 1 = first attempt succeeded
  TrialOutcome outcome;
};

struct CheckpointLoadResult {
  bool ok = false;
  std::string error;
  Scenario scenario;                   ///< from the manifest
  std::uint64_t scenario_digest = 0;   ///< digest of the manifest scenario
  std::vector<CheckpointRecord> records;  ///< journal order
  /// True when the journal ended in a partial frame (killed mid-append).
  /// Recoverable: `records` holds everything up to the last good frame and
  /// journal_valid_bytes is where a resuming writer must truncate to.
  bool truncated_tail = false;
  std::uint64_t journal_valid_bytes = 0;
};

/// Reads and verifies a checkpoint directory.  ok=false means the
/// checkpoint is unusable (missing/corrupt manifest, corrupt record,
/// duplicate trial, scenario-digest mismatch); a truncated tail alone is
/// reported but still ok.
CheckpointLoadResult load_checkpoint(const std::string& dir);

/// Appends framed trial records to a checkpoint journal.  Not thread-safe;
/// the supervisor serialises appends.  Each append is flushed to the OS
/// (surviving process death); sync() additionally fsyncs (surviving power
/// loss) and is called by the supervisor at shutdown/final flush.
class CheckpointWriter {
 public:
  CheckpointWriter() = default;
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Starts a fresh checkpoint: creates `dir` (and parents), writes the
  /// manifest atomically, and truncates the journal.  Returns "" or an
  /// error description.
  std::string create(const std::string& dir, const Scenario& s);

  /// Resumes an existing checkpoint: truncates the journal to
  /// `valid_bytes` (dropping a partial tail reported by load_checkpoint)
  /// and opens it for append.  `digest` is the manifest scenario digest
  /// stamped into every appended record.
  std::string open_for_append(const std::string& dir, std::uint64_t digest,
                              std::uint64_t valid_bytes);

  /// Appends one framed record and flushes it to the OS.
  std::string append(const CheckpointRecord& rec);

  /// fsyncs the journal file.
  std::string sync();

  void close();
  bool active() const { return file_ != nullptr; }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::uint64_t scenario_digest_ = 0;
  std::FILE* file_ = nullptr;
};

/// Journal file name inside a checkpoint directory (exposed for tests and
/// the chaos harness, which watches it grow before killing the process).
extern const char kCheckpointJournalFile[];
extern const char kCheckpointManifestFile[];

}  // namespace rcb
