#include "rcb/runtime/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#if defined(__linux__)
#include <sched.h>
#endif

#include "rcb/common/contracts.hpp"

namespace rcb {
namespace {

constexpr std::size_t kExternalThread = std::numeric_limits<std::size_t>::max();

// Which worker of which pool the current thread is.  Lets submit() push to
// the local deque and try_acquire() start stealing at a stable offset.
thread_local const ThreadPool* t_pool = nullptr;
thread_local std::size_t t_worker_index = kExternalThread;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = default_concurrency();
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::default_concurrency() {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int count = CPU_COUNT(&mask);
    if (count > 0) return static_cast<std::size_t>(count);
  }
#endif
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::push_task(Task task) {
  std::size_t target;
  if (t_pool == this && t_worker_index != kExternalThread) {
    target = t_worker_index;  // worker: keep fork/join work cache-warm
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    std::unique_lock qlock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  queued_.fetch_add(1, std::memory_order_release);
  // Lock before notify: a worker that observed queued_ == 0 may be between
  // its predicate check and its wait; the lock orders us after the check,
  // so the notify cannot be lost.
  {
    std::unique_lock lock(mutex_);
  }
  work_available_.notify_one();
}

void ThreadPool::submit(Task task) {
  RCB_REQUIRE(static_cast<bool>(task));
  {
    std::unique_lock lock(mutex_);
    RCB_REQUIRE(!shutting_down_);
  }
  push_task(std::move(task));
}

Task ThreadPool::try_acquire(std::size_t self) {
  const std::size_t n = queues_.size();
  // Own deque first, from the back (LIFO: most recently pushed, warmest).
  if (self != kExternalThread) {
    WorkerQueue& own = *queues_[self];
    std::unique_lock qlock(own.mutex);
    if (!own.tasks.empty()) {
      Task task = std::move(own.tasks.back());
      own.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return task;
    }
  }
  // Steal from victims, from the front (FIFO: oldest, least likely to be
  // touched by the owner soon).
  const std::size_t start = (self != kExternalThread) ? self : 0;
  for (std::size_t k = 1; k <= n; ++k) {
    const std::size_t victim = (start + k) % n;
    WorkerQueue& q = *queues_[victim];
    std::unique_lock qlock(q.mutex);
    if (!q.tasks.empty()) {
      Task task = std::move(q.tasks.front());
      q.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return task;
    }
  }
  return Task{};
}

// noexcept: an escaping task exception terminates no matter which thread
// (worker or helping caller) ran the task — see the header contract.
void ThreadPool::execute(Task& task) noexcept {
  task();
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::unique_lock lock(mutex_);
    idle_.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  t_pool = this;
  t_worker_index = index;
  for (;;) {
    Task task = try_acquire(index);
    if (task) {
      execute(task);
      continue;
    }
    std::unique_lock lock(mutex_);
    work_available_.wait(lock, [this] {
      return shutting_down_ || queued_.load(std::memory_order_acquire) != 0;
    });
    if (shutting_down_ && queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::Latch::count_down() {
  // The decrement must happen inside the mutex: done() is polled lock-free,
  // and a waiter that sees zero synchronizes via sync() — which can only
  // succeed after this critical section (including the notify) has ended,
  // making destruction after sync() safe.
  std::unique_lock lock(mutex_);
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    cv_.notify_all();
  }
}

void ThreadPool::Latch::wait_briefly() {
  std::unique_lock lock(mutex_);
  cv_.wait_for(lock, std::chrono::microseconds(500),
               [this] { return done(); });
}

void ThreadPool::Latch::sync() { std::unique_lock lock(mutex_); }

void ThreadPool::help_until(Latch& latch) {
  const std::size_t self = (t_pool == this) ? t_worker_index : kExternalThread;
  while (!latch.done()) {
    Task task = try_acquire(self);
    if (task) {
      execute(task);
    } else {
      latch.wait_briefly();
    }
  }
  latch.sync();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t chunk_hint) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  std::size_t chunk_size = chunk_hint;
  if (chunk_size == 0) {
    const std::size_t chunks = std::min(total, pool.num_threads() * 4);
    chunk_size = (total + chunks - 1) / chunks;
  }
  const std::size_t num_chunks = (total + chunk_size - 1) / chunk_size;
  ThreadPool::Latch latch(num_chunks);
  for (std::size_t lo = begin; lo < end; lo += chunk_size) {
    const std::size_t hi = std::min(end, lo + chunk_size);
    // 4 pointers — fits Task's inline storage, so no allocation per chunk.
    pool.submit([lo, hi, &fn, &latch] {
      fn(lo, hi);
      latch.count_down();
    });
  }
  pool.help_until(latch);
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk_hint) {
  parallel_for_chunks(
      pool, begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      chunk_hint);
}

}  // namespace rcb
