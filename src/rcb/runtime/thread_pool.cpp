#include "rcb/runtime/thread_pool.hpp"

#include <algorithm>

#include "rcb/common/contracts.hpp"

namespace rcb {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    RCB_REQUIRE(!shutting_down_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::size_t chunk_hint) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  std::size_t chunk_size = chunk_hint;
  if (chunk_size == 0) {
    const std::size_t chunks = std::min(total, pool.num_threads() * 4);
    chunk_size = (total + chunks - 1) / chunks;
  }
  for (std::size_t lo = begin; lo < end; lo += chunk_size) {
    const std::size_t hi = std::min(end, lo + chunk_size);
    pool.submit([lo, hi, &fn] { fn(lo, hi); });
  }
  pool.wait_idle();
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t chunk_hint) {
  parallel_for_chunks(
      pool, begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      chunk_hint);
}

}  // namespace rcb
