// EINTR- and short-transfer-safe I/O helpers shared by every runtime path
// that touches file descriptors or stdio streams (checkpoint journals, the
// coordinator's worker pipes, the socket transport).
//
// POSIX read/write may transfer fewer bytes than asked or fail with EINTR
// when a signal lands mid-call — and this codebase installs SIGINT/SIGTERM
// handlers (runtime/supervisor.hpp), so "a signal landed mid-write" is a
// normal event during graceful shutdown, not a corner case.  Every helper
// here loops until the full transfer completes, EOF is reached, or a real
// error occurs; EINTR is never surfaced to callers.
//
// Fault injection: set_io_fault installs a deterministic hook consulted
// before each underlying call with the operation name; returning a nonzero
// errno makes that call fail exactly as the OS would (no bytes move).
// Returning EINTR exercises the retry loops — the regression tests prove a
// signal storm cannot shear a journal append or a control frame.
#pragma once

#include <sys/types.h>

#include <cstdio>
#include <functional>
#include <string>

namespace rcb {

/// Test-only fault hook: consulted before each underlying syscall with the
/// operation name ("read", "write", "send", "fread", "fwrite", "fflush").
/// A nonzero return fails that call with the returned errno before any
/// bytes move.  Thread-safe; pass nullptr to disarm.
using IoFaultHook = std::function<int(const char* op)>;
void set_io_fault(IoFaultHook hook);

/// Reads exactly `n` bytes unless EOF comes first, retrying EINTR and
/// short reads.  Returns the bytes read (< n only at EOF) or -1 with errno
/// set on a real error.
ssize_t retry_read(int fd, void* buf, std::size_t n);

/// One best-effort read retried only on EINTR — for non-blocking fds where
/// EAGAIN must reach the caller.  Returns read()'s result.
ssize_t retry_read_some(int fd, void* buf, std::size_t n);

/// Writes all `n` bytes, retrying EINTR and short writes.  Returns 0 on
/// success or -1 with errno set.
int retry_write(int fd, const void* buf, std::size_t n);

/// One best-effort send(MSG_NOSIGNAL) retried only on EINTR — for
/// non-blocking sockets where EAGAIN must reach the caller (a dead peer
/// yields EPIPE instead of killing the process).  Returns send()'s result.
ssize_t retry_send_some(int fd, const void* buf, std::size_t n);

/// fwrite()s all `n` bytes, retrying short writes caused by EINTR.
/// Returns true on success (the stream error state is authoritative
/// otherwise).
bool retry_fwrite(std::FILE* f, const void* buf, std::size_t n);

/// fread()s up to `n` bytes, retrying EINTR; stops at EOF or a real
/// stream error.  Returns the bytes read.
std::size_t retry_fread(std::FILE* f, void* buf, std::size_t n);

/// fflush() retried on EINTR.  Returns 0 on success, EOF on error.
int retry_fflush(std::FILE* f);

/// Reads the whole file into `out` with EINTR-safe stdio.  Returns "" or
/// an error description.
std::string read_file_fully(const std::string& path, std::string& out);

}  // namespace rcb
