// Crash-safe sweep supervisor: checkpoint/resume, per-trial watchdogs, and
// graceful shutdown for long Monte-Carlo runs.
//
// run_supervised_sweep executes every trial of a Scenario on the thread
// pool, journaling each completed trial to a checkpoint directory
// (runtime/checkpoint.hpp) as it finishes.  Because every trial is a pure
// function of (scenario, trial index), a killed process resumes by loading
// the journal, skipping completed indices, and re-running only the rest —
// and the recomputed aggregates are bit-identical to an uninterrupted run.
//
// Self-defence on top of the journal:
//
//   * Watchdog — a monitor thread cancels trials exceeding a wall-clock
//     budget; engines notice at the next repetition boundary
//     (runtime/cancel.hpp).  A deterministic alternative, the per-trial
//     slot budget, cancels at a fixed simulated-slot count.  Either way
//     the trial is journaled as "timed_out" with a replayable RCB_REPRO
//     record, and the sweep continues.
//   * Bounded retry-with-reseed — a trial that dies on a contract failure
//     or an escaped exception (e.g. under injected faults) is retried up
//     to max_retries times with a deterministically derived seed; the
//     policy is itself deterministic, so resumed and uninterrupted runs
//     agree.
//   * Graceful shutdown — after request_sweep_shutdown() (wired to
//     SIGINT/SIGTERM by install_sweep_signal_handlers), pending trials are
//     skipped, in-flight trials drain, the journal is fsynced, and the
//     result reports interrupted=true so tools can print a
//     "resume with --resume=<dir>" hint.
//
// Multi-point sweeps (run_supervised_sweep_points) flatten every
// (point, trial) pair into one submission on the work-stealing pool and
// journal through per-point asynchronous group-commit writers — see
// docs/model.md §Concurrency architecture for the full design and the
// determinism argument.
//
// Neither entry point may be called from inside a task already running on
// the same pool (both block on pool idleness).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rcb/runtime/checkpoint.hpp"
#include "rcb/runtime/thread_pool.hpp"

namespace rcb {

struct SupervisorOptions {
  /// Directory for the checkpoint journal; empty disables checkpointing.
  std::string checkpoint_dir;
  /// Load an existing checkpoint from checkpoint_dir before running; the
  /// checkpointed scenario is authoritative (command-line scenario flags
  /// are ignored on resume so the journal is never mixed across
  /// scenarios).  With no manifest present, starts fresh.
  bool resume = false;
  /// Wall-clock watchdog per trial, in seconds (0 = off).  Nondeterministic
  /// by nature; a trial that times out is journaled, so resumed runs never
  /// re-decide it.
  double trial_timeout_sec = 0.0;
  /// Deterministic per-trial budget in simulated slots (0 = off), charged
  /// at repetition boundaries; covers all retry attempts of the trial.
  SlotCount trial_slot_budget = 0;
  /// How many times to re-run (with a reseeded stream) a trial that dies
  /// on a contract failure or exception before journaling it as "failed".
  std::uint32_t max_retries = 0;
};

struct SweepResult {
  bool ok = false;
  std::string error;
  /// The scenario actually run (the manifest's scenario on resume).
  Scenario scenario;
  /// True when the sweep stopped early on request_sweep_shutdown();
  /// `records` then holds only the completed prefix of trials.
  bool interrupted = false;
  std::size_t resumed = 0;        ///< trials loaded from the journal
  std::size_t executed = 0;       ///< trials run by this invocation
  std::size_t timed_out = 0;      ///< watchdog / slot-budget quarantines
  std::size_t failed_trials = 0;  ///< exhausted the retry budget
  /// All completed trials, sorted by trial index.
  std::vector<CheckpointRecord> records;
  /// FNV-1a over (trial, outcome digest) pairs in trial order; equal
  /// digests certify bit-identical per-trial trajectories — the quantity
  /// the kill/resume chaos test compares against an uninterrupted run.
  std::uint64_t aggregate_digest = 0;
};

/// Executes one (scenario, trial, attempt): attempt 0 must equal
/// run_scenario_trial(s, trial); attempts >= 1 reseed deterministically.
/// Injectable for tests (watchdog/retry paths need controllable trials).
using TrialRunner =
    std::function<TrialOutcome(const Scenario&, std::uint64_t, std::uint32_t)>;

/// The seed used for retry attempt `attempt` of a sweep seeded with
/// `seed` (attempt 0 returns `seed` unchanged).  splitmix64-style mix, so
/// retried trials get streams unrelated to every trial's primary stream.
std::uint64_t reseed_for_attempt(std::uint64_t seed, std::uint32_t attempt);

SweepResult run_supervised_sweep(const Scenario& s,
                                 const SupervisorOptions& opt,
                                 ThreadPool& pool, const TrialRunner& runner);

SweepResult run_supervised_sweep(const Scenario& s,
                                 const SupervisorOptions& opt,
                                 ThreadPool& pool = ThreadPool::global());

/// One point of a multi-scenario sweep: a scenario plus its own checkpoint
/// directory (empty disables checkpointing for that point).  Points must
/// not share directories.
///
/// `trial_begin`/`trial_end` restrict the point to the half-open trial
/// range [trial_begin, trial_end) — the unit of work a shard worker owns
/// (runtime/shard.hpp).  Records keep their absolute trial indices, so a
/// ranged journal merges with its sibling shards into the same aggregate
/// as an unranged run.  Both zero (the default) means the full range
/// [0, scenario.trials).  An empty range (begin == end > 0) is legal and
/// runs nothing beyond creating the checkpoint.  On resume, a journal
/// record outside the assigned range is corruption (the journal belongs
/// to a different shard assignment) and fails setup.
struct SweepPoint {
  Scenario scenario;
  std::string checkpoint_dir;
  std::uint64_t trial_begin = 0;
  std::uint64_t trial_end = 0;
};

/// Cross-point pipelined sweep: flattens every (point, trial) pair into one
/// batch of work items on `pool`, so long-tail trials of point i overlap
/// with trials of points i+1..k instead of idling the pool at each point
/// boundary.  Per point this is semantically identical to calling
/// run_supervised_sweep with SweepPoint::checkpoint_dir — same resume
/// semantics, same retry/watchdog policy, and bit-identical
/// aggregate_digest for any thread count or schedule (per-trial RNG
/// streams derive from (seed, trial); per-point aggregates reduce in trial
/// order).  `opt.checkpoint_dir` is ignored; the per-point directories are
/// authoritative.
///
/// Durability: each checkpointing point gets an asynchronous group-commit
/// journal (checkpoint.hpp AsyncJournalWriter); workers hand completed
/// records to the writer thread instead of serialising on a flushed
/// append.  A point's result is reported ok only after its journal has
/// drained and fsynced, so a reported record is always recoverable.
///
/// Setup (load/validate/create) runs sequentially for every point before
/// any trial is submitted; a setup failure aborts the whole sweep with no
/// trials run (the failing point's result carries the error).  A journal
/// *write* failure mid-run aborts only that point's remaining trials.
std::vector<SweepResult> run_supervised_sweep_points(
    const std::vector<SweepPoint>& points, const SupervisorOptions& opt,
    ThreadPool& pool, const TrialRunner& runner);

std::vector<SweepResult> run_supervised_sweep_points(
    const std::vector<SweepPoint>& points, const SupervisorOptions& opt,
    ThreadPool& pool = ThreadPool::global());

/// FNV-1a over (trial, digest) pairs; `records` must be sorted by trial.
std::uint64_t aggregate_digest(const std::vector<CheckpointRecord>& records);

/// Asks every running supervised sweep to stop dispatching new trials.
/// Async-signal-safe.
void request_sweep_shutdown();
bool sweep_shutdown_requested();
/// Clears the shutdown flag (tests; tools do not need it).
void reset_sweep_shutdown();

/// Installs SIGINT/SIGTERM handlers that call request_sweep_shutdown();
/// a second signal exits immediately with status 130.
void install_sweep_signal_handlers();

}  // namespace rcb
