// run_trials is a template; this translation unit anchors the header in the
// build so missing-include regressions fail at library compile time.
#include "rcb/runtime/montecarlo.hpp"
