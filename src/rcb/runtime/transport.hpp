// Pluggable worker transports for the sharded sweep coordinator.
//
// The coordinator (runtime/coordinator.hpp) owns the *shard* state machine
// — pending/running/done, bounded retries, backoff, merge — and delegates
// the *worker* lifecycle to a WorkerTransport:
//
//   LocalProcessTransport   fork/exec workers on this machine, watched via
//                           waitpid + pipe-EOF + lease-file mtime (the
//                           original PR 6 path, extracted verbatim).
//   SocketTransport         workers (the same binary, --attach=host:port)
//                           connect to a TCP listener and speak the framed
//                           control protocol below; liveness is TCP
//                           heartbeats instead of lease files
//                           (runtime/transport_socket.hpp).
//
// Control protocol (socket transport)
//
// Every message is one frame, reusing the RCBJ journal framing grammar:
//
//   RCBC <payload-bytes> <fnv1a-hex16> <payload-json>\n
//
// A frame that fails its checksum or deviates from the grammar poisons the
// connection (the peer reconnects and state reconciles); a frame cut short
// by a partition simply waits for more bytes.  Messages are *idempotent
// status reconciliation*, not RPCs: workers retransmit their state with
// every heartbeat tick, and the coordinator re-issues directives whenever
// a worker's claimed state disagrees with its own — so any individual
// message may be dropped, duplicated, delayed, or reordered without
// violating safety, which is exactly what the fault plan below does on
// purpose.
//
//   worker -> coordinator           coordinator -> worker
//   ---------------------           ---------------------
//   hello      (re)attach           assign    run (shard, attempt) at root
//   heartbeat  idle liveness        ack       progress noted
//   progress   running (shard,      abandon   your lease was revoked; stop
//              attempt, bytes)                work on this shard, discard
//   complete   (shard, attempt,     shutdown  sweep over; detach
//              digest) — resent
//              until acknowledged
//   failed     (shard, attempt,
//              error) — resent
//
// Deterministic control-plane fault hook
//
// NetFaultPlan draws a seeded, reproducible action per control message —
// deliver, drop, delay, duplicate, reorder, or close — in the spirit of
// the sim/faults device-fault layer.  Both transports consult it: the
// socket transport applies it to every frame in both directions; the
// local-process transport maps it onto its observation channel (drop/delay
// suppress a death or lease observation for one poll round, close is a
// SIGKILL).  The chaos tests prove the merged sweep digest is bit-identical
// under any schedule of these faults.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace rcb {

// ---------------------------------------------------------------------------
// Control messages.

/// Sentinel for "no shard" in CtrlMessage::shard (idle heartbeats).
inline constexpr std::uint64_t kNoShard = ~0ull;

enum class CtrlType : std::uint8_t {
  // worker -> coordinator
  kHello,
  kHeartbeat,
  kProgress,
  kComplete,
  kFailed,
  // coordinator -> worker
  kAssign,
  kAck,
  kAbandon,
  kShutdown,
};

const char* ctrl_type_name(CtrlType type);

struct CtrlMessage {
  CtrlType type = CtrlType::kHeartbeat;
  std::uint64_t uid = 0;      ///< stable worker identity across reconnects
  std::uint64_t pid = 0;      ///< worker pid (coordinator may SIGKILL it)
  std::uint64_t shard = kNoShard;  ///< shard the message is about
  std::uint64_t attempt = 0;
  std::uint64_t value = 0;    ///< progress: journal bytes so far
  std::uint64_t digest = 0;   ///< complete: the shard's aggregate digest
  std::uint64_t heartbeat_ms = 0;  ///< assign: worker heartbeat period
  std::string root;           ///< assign: sweep root path
  std::string error;          ///< failed: one-line description
};

/// Encodes one message as a framed, checksummed line.
std::string encode_ctrl_frame(const CtrlMessage& m);

/// Incremental frame decoder over a TCP byte stream.
class CtrlFrameDecoder {
 public:
  /// Appends raw bytes received from the peer.
  void feed(const char* data, std::size_t n);

  /// Decodes the next complete frame.  Returns +1 with `out` filled, 0 when
  /// more bytes are needed, or -1 (with `error` set) when the stream is
  /// corrupt — the connection must be dropped, never resynchronised.
  int next(CtrlMessage& out, std::string& error);

  std::size_t buffered() const { return buf_.size() - off_; }

 private:
  std::string buf_;
  std::size_t off_ = 0;
};

// ---------------------------------------------------------------------------
// Deterministic control-plane fault injection.

struct NetFaultConfig {
  std::uint64_t seed = 0;  ///< 0 disables every fault
  double drop_rate = 0.0;
  double delay_rate = 0.0;
  double duplicate_rate = 0.0;
  double reorder_rate = 0.0;
  double close_rate = 0.0;
  double delay_ms = 25.0;  ///< hold time for delayed messages

  bool any_active() const;

  /// Uniform chaos preset: every fault channel at `rate` except close at
  /// rate/5 (a closed connection costs a reconnect round-trip, so it is
  /// rarer, like crashes vs losses in sim/faults).
  static NetFaultConfig chaos(std::uint64_t seed, double rate);
};

enum class NetFaultAction {
  kDeliver,
  kDrop,
  kDelay,
  kDuplicate,
  kReorder,
  kClose,
};

const char* net_fault_action_name(NetFaultAction a);

/// Seeded fault decision stream: the k-th call for a given (seed, type)
/// history always returns the same action, so a chaos run is reproducible
/// in its *choices* (timing still varies; digest identity must hold for
/// any schedule, and the chaos tests assert exactly that).
class NetFaultPlan {
 public:
  NetFaultPlan() = default;
  explicit NetFaultPlan(const NetFaultConfig& cfg) : cfg_(cfg) {}

  bool active() const { return cfg_.any_active(); }
  NetFaultAction next(CtrlType type);
  double delay_ms() const { return cfg_.delay_ms; }

 private:
  NetFaultConfig cfg_;
  std::uint64_t counter_ = 0;
};

// ---------------------------------------------------------------------------
// Lease policy validation (shared by the CLI tools and the coordinator).

/// "" when (lease timeout, heartbeat interval) is a sane pair.  A lease
/// timeout not comfortably above the heartbeat period would revoke healthy
/// workers on a single delayed beat; anything <= 2x the heartbeat is
/// rejected with a one-line error.  lease_timeout_sec == 0 (watchdog off)
/// is always accepted.
std::string validate_lease_config(double lease_timeout_sec,
                                  double heartbeat_interval_sec);

// ---------------------------------------------------------------------------
// Transport abstraction.

enum class TransportKind : std::uint8_t {
  kLocalProcess,  ///< fork/exec on this machine (PR 6 behaviour)
  kSocket,        ///< TCP-attached workers (runtime/transport_socket.hpp)
};

struct TransportEvent {
  enum class Kind {
    /// The holder of `shard` is gone: process exited / pipe EOF / lease
    /// expired / connection revoked.  The coordinator rescans the shard's
    /// journals to decide complete vs reassign.
    kShardExited,
    /// A completion report for (shard, attempt, digest) arrived (socket).
    kShardComplete,
    /// The worker reported a failure for (shard, attempt) (socket).
    kShardFailed,
  };
  Kind kind = Kind::kShardExited;
  std::uint64_t shard = 0;
  std::uint64_t attempt = 0;
  std::uint64_t digest = 0;
  int exit_code = -1;  ///< local transport: worker exit code (-1 = signal)
  std::string detail;
};

/// Worker-lifecycle backend for the coordinator.  Not thread-safe; the
/// coordinator drives it from one thread.
class WorkerTransport {
 public:
  virtual ~WorkerTransport() = default;

  /// Brings the transport up (socket: bind + listen).  "" or error.
  virtual std::string start() = 0;

  /// True when a worker slot is available for assign() right now.
  virtual bool can_assign() = 0;

  /// Hands (shard, attempt) to a worker: local fork/execs one, socket
  /// sends an assign frame to an idle attached worker.  "" or error.
  virtual std::string assign(std::size_t shard, std::uint32_t attempt) = 0;

  /// Pumps I/O / reaping / lease checks and reports what changed.
  virtual void poll(std::vector<TransportEvent>& out) = 0;

  /// SIGKILL-equivalent revocation of `shard`'s current holder: local
  /// kills the process; socket closes the connection and remembers that a
  /// returning holder must be told to abandon.
  virtual void revoke(std::size_t shard) = 0;

  /// Live workers right now (running + idle); 0 means the fleet is empty
  /// and the coordinator parks until someone (re-)attaches.
  virtual std::size_t fleet_size() const = 0;

  /// Checkpoint directory attempt `attempt` of `shard` journals into.
  virtual std::string attempt_dir(std::size_t shard,
                                  std::uint32_t attempt) const = 0;

  /// Stops every worker: graceful lets them drain (SIGTERM / shutdown
  /// frame), otherwise SIGKILL.  Idempotent.
  virtual void shutdown(bool graceful) = 0;
};

// ---------------------------------------------------------------------------
// Local fork/exec transport (the PR 6 path, extracted).

struct LocalTransportOptions {
  std::string root;
  std::size_t workers = 1;
  /// A worker whose lease file is older than this is wedged: SIGKILL +
  /// reassign (0 disables the lease watchdog).
  double lease_timeout_sec = 10.0;
  /// Builds the argv for shard `shard_id`'s worker; argv[0] is the
  /// executable.  Defaults to re-entering /proc/self/exe with the internal
  /// --shard_worker flags.
  std::function<std::vector<std::string>(std::size_t shard_id)> worker_argv;
  /// Test hook, called with (shard_id, pid) after each spawn.
  std::function<void(std::size_t shard_id, pid_t pid)> on_worker_spawn;
  /// Deterministic control-plane faults mapped onto the observation
  /// channel: drop/delay suppress one poll round's observation of a death
  /// or stale lease, close SIGKILLs the observed worker.
  NetFaultConfig net_faults;
};

/// Creates the fork/exec transport.  (Factory so the implementation stays
/// private to the .cpp.)
std::unique_ptr<WorkerTransport> make_local_process_transport(
    const LocalTransportOptions& opt);

/// fork/execs `argv_strings` with PR_SET_PDEATHSIG(SIGKILL) and a liveness
/// pipe whose write end the child inherits across exec.  On success fills
/// `pid` and `pipe_read` (read end, O_NONBLOCK | FD_CLOEXEC) and returns
/// ""; the argv is materialised before fork so the child never allocates.
/// Shared by both transports' spawners.
std::string spawn_worker_process(const std::vector<std::string>& argv_strings,
                                 pid_t& pid, int& pipe_read);

/// Name of the lease file inside a shard dir (local transport; exposed for
/// tests).
extern const char kShardLeaseFile[];

/// Lease-file primitives shared by the local transport, the worker-side
/// heartbeat, and the coordinator's orphan adoption (exposed for tests).
/// The coordinator never reads a timestamp out of the lease — wall clocks
/// lie across processes — it watches the mtime, which the kernel stamps on
/// every rewrite; the content is the owner's pid.
void write_lease_file(const std::string& path, pid_t pid);
pid_t read_lease_pid(const std::string& path);
/// Seconds since the last rewrite; huge when missing (maximally stale).
double lease_age_sec(const std::string& path);

}  // namespace rcb
