#include "rcb/runtime/coordinator.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>

#include "rcb/common/contracts.hpp"
#include "rcb/runtime/transport_socket.hpp"

namespace rcb {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

/// Worker-side heartbeat: rewrites the lease on a dedicated thread so a
/// worker stuck in a long trial still proves liveness.
class LeaseHeartbeat {
 public:
  LeaseHeartbeat(std::string path, double interval_sec)
      : path_(std::move(path)),
        interval_(std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(
                interval_sec > 0 ? interval_sec : 0.1))) {
    write_lease_file(path_, getpid());
    thread_ = std::thread([this] { loop(); });
  }
  ~LeaseHeartbeat() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
  LeaseHeartbeat(const LeaseHeartbeat&) = delete;
  LeaseHeartbeat& operator=(const LeaseHeartbeat&) = delete;

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      cv_.wait_for(lock, interval_, [this] { return stop_; });
      if (stop_) break;
      lock.unlock();
      write_lease_file(path_, getpid());
      lock.lock();
    }
  }

  const std::string path_;
  const Clock::duration interval_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

enum class ShardRunState { kPending, kRunning, kDone };

struct ShardTracker {
  ShardRunState state = ShardRunState::kPending;
  std::uint32_t attempts = 0;        ///< assignments so far (retry budget)
  std::uint32_t attempt_id = 0;      ///< checkpoint-dir attempt (socket)
  Clock::time_point next_attempt{};  ///< backoff gate for the next assign
};

}  // namespace

SweepResult run_shard_attempt(const ShardSpec& spec, std::size_t shard_id,
                              const std::string& dir,
                              const TrialRunner& runner) {
  SweepResult res;
  RCB_REQUIRE(shard_id < spec.shards.size());
  const ShardAssignment& a = spec.shards[shard_id];
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    res.error = "cannot create " + dir + ": " + ec.message();
    return res;
  }

  SweepPoint point;
  point.scenario = spec.points[a.point];
  point.checkpoint_dir = dir;
  point.trial_begin = a.begin;
  point.trial_end = a.end;

  SupervisorOptions opt;
  // Always resume: a replacement worker continues its predecessor's
  // journal instead of redoing the shard.
  opt.resume = true;
  opt.trial_timeout_sec = spec.trial_timeout_sec;
  opt.trial_slot_budget = spec.trial_slot_budget;
  opt.max_retries = spec.max_retries;

  const std::size_t threads =
      spec.worker_threads > 0 ? static_cast<std::size_t>(spec.worker_threads)
                              : ThreadPool::default_concurrency();
  ThreadPool pool(threads);
  const std::vector<SweepPoint> points{point};
  std::vector<SweepResult> results =
      runner ? run_supervised_sweep_points(points, opt, pool, runner)
             : run_supervised_sweep_points(points, opt, pool);
  return results[0];
}

int run_shard_worker(const std::string& root, std::size_t shard_id,
                     const TrialRunner& runner) {
  const ShardSpecLoadResult loaded = load_shard_spec(root);
  if (!loaded.ok) {
    std::fprintf(stderr, "shard worker: %s\n", loaded.error.c_str());
    return 2;
  }
  const ShardSpec& spec = loaded.spec;
  if (shard_id >= spec.shards.size()) {
    std::fprintf(stderr, "shard worker: shard %zu out of range (%zu shards)\n",
                 shard_id, spec.shards.size());
    return 2;
  }
  const std::string dir = shard_dir(root, shard_id);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "shard worker: cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  install_sweep_signal_handlers();
  LeaseHeartbeat heartbeat(dir + "/" + kShardLeaseFile,
                           spec.heartbeat_interval_sec);

  const SweepResult res = run_shard_attempt(spec, shard_id, dir, runner);
  if (!res.ok) {
    std::fprintf(stderr, "shard worker %zu: %s\n", shard_id,
                 res.error.c_str());
    return 1;
  }
  return res.interrupted ? 130 : 0;
}

int run_shard_worker(const std::string& root, std::size_t shard_id) {
  return run_shard_worker(root, shard_id, TrialRunner());
}

CoordinatorResult run_shard_coordinator(const ShardSpec& spec_in,
                                        const CoordinatorOptions& opt) {
  CoordinatorResult out;
  const bool socket = opt.transport == TransportKind::kSocket;
  if (opt.workers == 0 && !(socket && !opt.spawn_workers)) {
    out.error = "coordinator needs at least one worker";
    return out;
  }

  // Establish the authoritative spec: the on-disk one on resume (matching
  // the manifest-wins rule of single-process resume), the caller's
  // otherwise — after wiping any stale shard state so a fresh run never
  // adopts journals from a previous sweep.
  ShardSpec spec = spec_in;
  std::error_code ec;
  if (opt.resume && fs::exists(shard_spec_path(opt.root), ec)) {
    ShardSpecLoadResult loaded = load_shard_spec(opt.root);
    if (!loaded.ok) {
      out.error = loaded.error;
      return out;
    }
    spec = std::move(loaded.spec);
  } else {
    if (fs::exists(opt.root, ec)) {
      for (const fs::directory_entry& entry :
           fs::directory_iterator(opt.root, ec)) {
        if (entry.path().filename().string().rfind("shard_", 0) == 0) {
          fs::remove_all(entry.path(), ec);
        }
      }
    }
    if (const std::string err = write_shard_spec(opt.root, spec);
        !err.empty()) {
      out.error = err;
      return out;
    }
  }

  // The lease policy is validated against the spec's heartbeat, not a
  // caller-supplied one: workers beat at the spec's rate, wherever they
  // run.
  if (const std::string err = validate_lease_config(
          opt.lease_timeout_sec, spec.heartbeat_interval_sec);
      !err.empty()) {
    out.error = err;
    return out;
  }

  const std::size_t n = spec.shards.size();
  std::vector<ShardTracker> track(n);
  std::size_t done = 0;

  // Adopt whatever previous coordinators / workers left behind.  Complete
  // shards are taken as-is, partial ones are resumed by a fresh worker,
  // corrupt ones are refused — resuming against a corrupt journal would
  // fabricate results (PR 3 taxonomy).
  if (opt.resume) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::string lease = shard_dir(opt.root, i) + "/" + kShardLeaseFile;
      if (opt.lease_timeout_sec > 0 &&
          lease_age_sec(lease) < opt.lease_timeout_sec) {
        // A fresh lease after a coordinator crash means an orphan local
        // worker may still be appending to this journal; put it down
        // before a replacement opens the same file (best effort — with
        // PDEATHSIG the orphan normally died with the old coordinator).
        const pid_t orphan = read_lease_pid(lease);
        if (orphan > 1 && orphan != getpid()) kill(orphan, SIGKILL);
      }
      const ShardScan scan = scan_shard(opt.root, spec, i);
      if (scan.state == ShardScanState::kCorrupt) {
        out.error = scan.error;
        return out;
      }
      if (scan.state == ShardScanState::kComplete) {
        track[i].state = ShardRunState::kDone;
        ++done;
      }
      // Socket attempts start past anything on disk: a partitioned worker
      // of a previous coordinator may still be appending to try_<k>.
      if (socket) track[i].attempt_id = next_shard_attempt(opt.root, i) - 1;
    }
  }

  std::unique_ptr<WorkerTransport> transport;
  if (socket) {
    SocketTransportOptions topt;
    topt.root = opt.root;
    topt.listen_host = opt.listen_host;
    topt.listen_port = opt.listen_port;
    topt.lease_timeout_sec = opt.lease_timeout_sec;
    topt.heartbeat_interval_sec = spec.heartbeat_interval_sec;
    topt.spawn_workers = opt.spawn_workers ? opt.workers : 0;
    topt.attach_argv = opt.attach_argv;
    topt.on_worker_spawn = opt.on_worker_spawn;
    topt.on_listen = opt.on_listen;
    topt.net_faults = opt.net_faults;
    transport = make_socket_transport(topt);
  } else {
    LocalTransportOptions topt;
    topt.root = opt.root;
    topt.workers = opt.workers;
    topt.lease_timeout_sec = opt.lease_timeout_sec;
    topt.worker_argv = opt.worker_argv;
    topt.on_worker_spawn = opt.on_worker_spawn;
    topt.net_faults = opt.net_faults;
    transport = make_local_process_transport(topt);
  }
  if (const std::string err = transport->start(); !err.empty()) {
    out.error = err;
    return out;
  }

  const auto backoff = [&opt](std::uint32_t attempts) {
    const double sec = opt.backoff_base_sec *
                       static_cast<double>(1u << std::min(attempts - 1, 10u));
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(sec));
  };

  const auto fail = [&](std::string error) {
    transport->shutdown(false);
    out.error = std::move(error);
    out.shards_completed = done;
    return out;
  };

  // Requeues `shard` after a failed attempt, enforcing the retry budget.
  // Returns false when the budget is exhausted (caller fails the sweep).
  const auto requeue = [&](std::size_t shard) {
    ++out.worker_restarts;
    track[shard].state = ShardRunState::kPending;
    if (track[shard].attempts > opt.max_shard_retries) return false;
    track[shard].next_attempt = Clock::now() + backoff(track[shard].attempts);
    return true;
  };

  bool parked = false;
  Clock::time_point fleet_empty_since = Clock::now();
  std::vector<TransportEvent> events;

  while (done < n) {
    if (sweep_shutdown_requested()) {
      // Graceful: workers drain + fsync their journals, then the result
      // reports interrupted so the caller prints a resume hint.
      transport->shutdown(true);
      out.interrupted = true;
      out.shards_completed = done;
      return out;
    }

    events.clear();
    transport->poll(events);
    for (const TransportEvent& ev : events) {
      const std::size_t shard = static_cast<std::size_t>(ev.shard);
      if (shard >= n) continue;
      if (track[shard].state != ShardRunState::kRunning) {
        // Stale event (duplicate completion report after a resume, or a
        // revocation racing a completion): the journal scan below already
        // decided; re-deciding a done shard would double-count.
        continue;
      }
      // The journal, not the report or exit code, is the source of truth:
      // a worker killed after its last append still completed its shard,
      // and a completion *claim* without the journal to back it is noise.
      const ShardScan scan = scan_shard(opt.root, spec, shard);
      if (scan.state == ShardScanState::kCorrupt) {
        return fail(scan.error);
      }
      if (scan.state == ShardScanState::kComplete) {
        track[shard].state = ShardRunState::kDone;
        ++done;
        continue;
      }
      if (ev.kind == TransportEvent::Kind::kShardExited &&
          ev.exit_code == 130 && sweep_shutdown_requested()) {
        track[shard].state = ShardRunState::kPending;
        continue;  // shutdown path at the top of the loop takes over
      }
      // Crashed / killed / revoked / failed with an incomplete journal:
      // reassign with backoff, bounded so a deterministically-crashing
      // shard fails the sweep instead of spinning forever.
      if (!requeue(shard)) {
        std::string detail = ev.detail.empty()
                                 ? "last exit code " +
                                       std::to_string(ev.exit_code)
                                 : ev.detail;
        return fail("shard " + std::to_string(shard) + " failed after " +
                    std::to_string(track[shard].attempts) + " attempts (" +
                    detail + ")");
      }
    }

    if (opt.simulate_crash_after_shards > 0 &&
        done >= opt.simulate_crash_after_shards) {
      return fail("coordinator crash (simulated after " +
                  std::to_string(done) + " shards)");
    }

    // Assign pending shards to available workers.
    while (transport->can_assign()) {
      std::size_t next = n;
      const Clock::time_point now = Clock::now();
      for (std::size_t i = 0; i < n; ++i) {
        if (track[i].state == ShardRunState::kPending &&
            track[i].next_attempt <= now) {
          next = i;
          break;
        }
      }
      if (next == n) break;
      // Socket attempts journal into fresh try_<k> dirs (seeded with the
      // best partial journal) so a partitioned previous holder can never
      // share a file with the replacement; local attempts resume the base
      // shard dir in place (attempt 0), since revocation there really
      // kills the process.
      const std::uint32_t attempt = socket ? ++track[next].attempt_id : 0;
      if (const std::string err =
              prepare_shard_attempt(opt.root, spec, next, attempt);
          !err.empty()) {
        return fail(err);
      }
      if (const std::string err = transport->assign(next, attempt);
          !err.empty()) {
        return fail("cannot assign shard " + std::to_string(next) + ": " +
                    err);
      }
      track[next].state = ShardRunState::kRunning;
      ++track[next].attempts;
    }

    // Graceful degradation: an empty socket fleet parks the sweep instead
    // of failing it — work resumes the moment a worker (re-)attaches.
    if (transport->fleet_size() == 0) {
      if (!parked &&
          std::chrono::duration<double>(Clock::now() - fleet_empty_since)
                  .count() > 2.0) {
        std::fprintf(stderr,
                     "coordinator: worker fleet is empty; parking until a "
                     "worker attaches\n");
        parked = true;
      }
    } else {
      parked = false;
      fleet_empty_since = Clock::now();
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  transport->shutdown(true);

  ShardMergeResult merged = merge_shard_journals(opt.root, spec);
  if (!merged.ok) {
    out.error = merged.error;
    out.shards_completed = done;
    return out;
  }
  out.ok = true;
  out.shards_completed = done;
  out.points = std::move(merged.points);
  return out;
}

}  // namespace rcb
