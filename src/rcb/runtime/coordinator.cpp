#include "rcb/runtime/coordinator.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>

#include "rcb/common/contracts.hpp"

namespace rcb {

const char kShardLeaseFile[] = "lease";

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Lease files.
//
// A lease is a tiny file inside the shard dir that the owning worker
// rewrites every ~100ms.  The coordinator does not read a timestamp out of
// it — wall clocks lie across processes — it only looks at the file's
// mtime, which the kernel stamps on every rewrite.  The content is the
// owner's pid, which a *resuming* coordinator uses to put down an orphan
// worker before handing the shard (and its journal file) to a new one.

void write_lease_file(const std::string& path, pid_t pid) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return;  // heartbeat is advisory; the next beat retries
  std::fprintf(f, "%ld\n", static_cast<long>(pid));
  std::fclose(f);
}

pid_t read_lease_pid(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return -1;
  long pid = -1;
  const int got = std::fscanf(f, "%ld", &pid);
  std::fclose(f);
  return got == 1 ? static_cast<pid_t>(pid) : -1;
}

/// Seconds since the lease file's last rewrite; a huge value when the file
/// is missing or unreadable (treated as maximally stale).
double lease_age_sec(const std::string& path) {
  std::error_code ec;
  const fs::file_time_type mtime = fs::last_write_time(path, ec);
  if (ec) return 1e18;
  const auto age = fs::file_time_type::clock::now() - mtime;
  return std::chrono::duration<double>(age).count();
}

/// Worker-side heartbeat: rewrites the lease every ~100ms on a dedicated
/// thread so a worker stuck in a long trial still proves liveness.
class LeaseHeartbeat {
 public:
  explicit LeaseHeartbeat(std::string path) : path_(std::move(path)) {
    write_lease_file(path_, getpid());
    thread_ = std::thread([this] { loop(); });
  }
  ~LeaseHeartbeat() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
  LeaseHeartbeat(const LeaseHeartbeat&) = delete;
  LeaseHeartbeat& operator=(const LeaseHeartbeat&) = delete;

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(100),
                   [this] { return stop_; });
      if (stop_) break;
      lock.unlock();
      write_lease_file(path_, getpid());
      lock.lock();
    }
  }

  const std::string path_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// Coordinator internals.

struct RunningWorker {
  pid_t pid = -1;
  int pipe_read = -1;  ///< EOF the instant every copy of the write end dies
};

enum class ShardRunState { kPending, kRunning, kDone };

struct ShardTracker {
  ShardRunState state = ShardRunState::kPending;
  std::uint32_t attempts = 0;           ///< spawns so far
  Clock::time_point next_attempt{};     ///< backoff gate for the next spawn
};

std::vector<std::string> default_worker_argv(const std::string& root,
                                             std::size_t shard_id) {
  return {"/proc/self/exe", "--shard_worker=" + root,
          "--shard_id=" + std::to_string(shard_id)};
}

/// fork/execs one worker.  The argv is materialised *before* fork: the
/// coordinator process may carry threads (gtest, pools), so the child must
/// not allocate between fork and exec — it only calls async-signal-safe
/// prctl/exec/_exit.
std::string spawn_worker(const std::vector<std::string>& argv_strings,
                         RunningWorker& out) {
  if (argv_strings.empty()) return "worker argv is empty";
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (const std::string& a : argv_strings) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);

  int fds[2];
  if (pipe(fds) != 0) {
    return std::string("pipe failed: ") + std::strerror(errno);
  }
  // Read end stays in the coordinator only; the write end is deliberately
  // inherited across exec so the worker holds it open for its lifetime.
  fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  fcntl(fds[0], F_SETFL, O_NONBLOCK);

  const pid_t pid = fork();
  if (pid < 0) {
    const int err = errno;
    close(fds[0]);
    close(fds[1]);
    return std::string("fork failed: ") + std::strerror(err);
  }
  if (pid == 0) {
#ifdef __linux__
    // Die with the coordinator: a SIGKILLed coordinator must not leave
    // workers appending to journals a resumed coordinator is adopting.
    prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (getppid() == 1) _exit(127);  // parent already gone
#endif
    execv(argv[0], argv.data());
    _exit(127);
  }
  close(fds[1]);
  out.pid = pid;
  out.pipe_read = fds[0];
  return "";
}

void kill_and_reap(std::map<std::size_t, RunningWorker>& running, int sig) {
  for (auto& [shard, w] : running) {
    kill(w.pid, sig);
  }
  for (auto& [shard, w] : running) {
    int status = 0;
    waitpid(w.pid, &status, 0);
    close(w.pipe_read);
  }
  running.clear();
}

}  // namespace

int run_shard_worker(const std::string& root, std::size_t shard_id,
                     const TrialRunner& runner) {
  const ShardSpecLoadResult loaded = load_shard_spec(root);
  if (!loaded.ok) {
    std::fprintf(stderr, "shard worker: %s\n", loaded.error.c_str());
    return 2;
  }
  const ShardSpec& spec = loaded.spec;
  if (shard_id >= spec.shards.size()) {
    std::fprintf(stderr, "shard worker: shard %zu out of range (%zu shards)\n",
                 shard_id, spec.shards.size());
    return 2;
  }
  const ShardAssignment& a = spec.shards[shard_id];
  const std::string dir = shard_dir(root, shard_id);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "shard worker: cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  install_sweep_signal_handlers();
  LeaseHeartbeat heartbeat(dir + "/" + kShardLeaseFile);

  SweepPoint point;
  point.scenario = spec.points[a.point];
  point.checkpoint_dir = dir;
  point.trial_begin = a.begin;
  point.trial_end = a.end;

  SupervisorOptions opt;
  // Always resume: a replacement worker continues its predecessor's
  // journal instead of redoing the shard from scratch.
  opt.resume = true;
  opt.trial_timeout_sec = spec.trial_timeout_sec;
  opt.trial_slot_budget = spec.trial_slot_budget;
  opt.max_retries = spec.max_retries;

  const std::size_t threads =
      spec.worker_threads > 0 ? static_cast<std::size_t>(spec.worker_threads)
                              : ThreadPool::default_concurrency();
  ThreadPool pool(threads);
  const std::vector<SweepPoint> points{point};
  std::vector<SweepResult> results =
      runner ? run_supervised_sweep_points(points, opt, pool, runner)
             : run_supervised_sweep_points(points, opt, pool);
  const SweepResult& res = results[0];
  if (!res.ok) {
    std::fprintf(stderr, "shard worker %zu: %s\n", shard_id,
                 res.error.c_str());
    return 1;
  }
  return res.interrupted ? 130 : 0;
}

int run_shard_worker(const std::string& root, std::size_t shard_id) {
  return run_shard_worker(root, shard_id, TrialRunner());
}

CoordinatorResult run_shard_coordinator(const ShardSpec& spec_in,
                                        const CoordinatorOptions& opt) {
  CoordinatorResult out;
  if (opt.workers == 0) {
    out.error = "coordinator needs at least one worker";
    return out;
  }

  // Establish the authoritative spec: the on-disk one on resume (matching
  // the manifest-wins rule of single-process resume), the caller's
  // otherwise — after wiping any stale shard state so a fresh run never
  // adopts journals from a previous sweep.
  ShardSpec spec = spec_in;
  std::error_code ec;
  if (opt.resume && fs::exists(shard_spec_path(opt.root), ec)) {
    ShardSpecLoadResult loaded = load_shard_spec(opt.root);
    if (!loaded.ok) {
      out.error = loaded.error;
      return out;
    }
    spec = std::move(loaded.spec);
  } else {
    if (fs::exists(opt.root, ec)) {
      for (const fs::directory_entry& entry :
           fs::directory_iterator(opt.root, ec)) {
        if (entry.path().filename().string().rfind("shard_", 0) == 0) {
          fs::remove_all(entry.path(), ec);
        }
      }
    }
    if (const std::string err = write_shard_spec(opt.root, spec);
        !err.empty()) {
      out.error = err;
      return out;
    }
  }

  const std::size_t n = spec.shards.size();
  std::vector<ShardTracker> track(n);
  std::size_t done = 0;

  // Adopt whatever previous coordinators / workers left behind.  Complete
  // shards are taken as-is, partial ones are resumed by a fresh worker,
  // corrupt ones are refused — resuming against a corrupt journal would
  // fabricate results (PR 3 taxonomy).
  if (opt.resume) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::string lease = shard_dir(opt.root, i) + "/" + kShardLeaseFile;
      if (opt.lease_timeout_sec > 0 &&
          lease_age_sec(lease) < opt.lease_timeout_sec) {
        // A fresh lease after a coordinator crash means an orphan worker
        // may still be appending to this journal; put it down before a
        // replacement opens the same file (best effort — with PDEATHSIG
        // the orphan normally died with the old coordinator).
        const pid_t orphan = read_lease_pid(lease);
        if (orphan > 1 && orphan != getpid()) kill(orphan, SIGKILL);
      }
      const ShardScan scan = scan_shard(opt.root, spec, i);
      if (scan.state == ShardScanState::kCorrupt) {
        out.error = scan.error;
        return out;
      }
      if (scan.state == ShardScanState::kComplete) {
        track[i].state = ShardRunState::kDone;
        ++done;
      }
    }
  }

  std::map<std::size_t, RunningWorker> running;
  const auto backoff = [&opt](std::uint32_t attempts) {
    const double sec = opt.backoff_base_sec *
                       static_cast<double>(1u << std::min(attempts - 1, 10u));
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(sec));
  };

  const auto fail = [&](std::string error) {
    kill_and_reap(running, SIGKILL);
    out.error = std::move(error);
    out.shards_completed = done;
    return out;
  };

  while (done < n) {
    if (sweep_shutdown_requested()) {
      // Graceful: forward SIGTERM so workers drain + fsync their journals,
      // then report interrupted so the caller prints a resume hint.
      kill_and_reap(running, SIGTERM);
      out.interrupted = true;
      out.shards_completed = done;
      return out;
    }

    // Reap: notice dead workers via waitpid, dead-but-unreaped ones via
    // pipe EOF, and wedged-but-alive ones via a stale lease.
    std::vector<std::size_t> running_shards;
    running_shards.reserve(running.size());
    for (const auto& [shard, w] : running) running_shards.push_back(shard);
    for (const std::size_t shard : running_shards) {
      RunningWorker w = running[shard];
      int status = 0;
      bool dead = false;
      int exit_code = -1;
      if (waitpid(w.pid, &status, WNOHANG) == w.pid) {
        dead = true;
        if (WIFEXITED(status)) exit_code = WEXITSTATUS(status);
      } else {
        char buf[16];
        const ssize_t k = read(w.pipe_read, buf, sizeof buf);
        if (k == 0) {  // every write end closed: the worker is gone
          waitpid(w.pid, &status, 0);
          dead = true;
          if (WIFEXITED(status)) exit_code = WEXITSTATUS(status);
        } else if (!dead && opt.lease_timeout_sec > 0) {
          const std::string lease =
              shard_dir(opt.root, shard) + "/" + kShardLeaseFile;
          if (lease_age_sec(lease) > opt.lease_timeout_sec) {
            kill(w.pid, SIGKILL);  // wedged: alive but heartbeat stopped
            waitpid(w.pid, &status, 0);
            dead = true;
          }
        }
      }
      if (!dead) continue;
      close(w.pipe_read);
      running.erase(shard);

      const ShardScan scan = scan_shard(opt.root, spec, shard);
      if (scan.state == ShardScanState::kCorrupt) {
        return fail(scan.error);
      }
      if (scan.state == ShardScanState::kComplete) {
        // The journal, not the exit code, is the source of truth: a worker
        // SIGTERMed after its last append still completed its shard.
        track[shard].state = ShardRunState::kDone;
        ++done;
        continue;
      }
      if (exit_code == 130 && sweep_shutdown_requested()) {
        track[shard].state = ShardRunState::kPending;
        continue;  // shutdown path at the top of the loop takes over
      }
      // Crashed / killed / failed with an incomplete journal: reassign
      // with backoff, bounded so a deterministically-crashing shard fails
      // the sweep instead of spinning forever.
      ++out.worker_restarts;
      track[shard].state = ShardRunState::kPending;
      if (track[shard].attempts > opt.max_shard_retries) {
        return fail("shard " + std::to_string(shard) + " failed after " +
                    std::to_string(track[shard].attempts) +
                    " attempts (last exit code " +
                    std::to_string(exit_code) + ")");
      }
      track[shard].next_attempt = Clock::now() + backoff(track[shard].attempts);
    }

    if (opt.simulate_crash_after_shards > 0 &&
        done >= opt.simulate_crash_after_shards) {
      return fail("coordinator crash (simulated after " +
                  std::to_string(done) + " shards)");
    }

    // Spawn replacements / next shards up to the worker budget.
    while (running.size() < opt.workers) {
      std::size_t next = n;
      const Clock::time_point now = Clock::now();
      for (std::size_t i = 0; i < n; ++i) {
        if (track[i].state == ShardRunState::kPending &&
            track[i].next_attempt <= now) {
          next = i;
          break;
        }
      }
      if (next == n) break;
      const std::string dir = shard_dir(opt.root, next);
      fs::create_directories(dir, ec);
      const std::vector<std::string> argv =
          opt.worker_argv ? opt.worker_argv(next)
                          : default_worker_argv(opt.root, next);
      RunningWorker w;
      if (const std::string err = spawn_worker(argv, w); !err.empty()) {
        return fail("cannot spawn worker for shard " + std::to_string(next) +
                    ": " + err);
      }
      // Seed the lease with the child's pid so the staleness clock starts
      // at spawn and a resuming coordinator can find the orphan.
      write_lease_file(dir + "/" + kShardLeaseFile, w.pid);
      track[next].state = ShardRunState::kRunning;
      ++track[next].attempts;
      running[next] = w;
      if (opt.on_worker_spawn) opt.on_worker_spawn(next, w.pid);
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  ShardMergeResult merged = merge_shard_journals(opt.root, spec);
  if (!merged.ok) {
    out.error = merged.error;
    out.shards_completed = done;
    return out;
  }
  out.ok = true;
  out.shards_completed = done;
  out.points = std::move(merged.points);
  return out;
}

}  // namespace rcb
