#include "rcb/runtime/shard.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <sstream>

#include "rcb/cli/json.hpp"
#include "rcb/cli/json_parse.hpp"
#include "rcb/common/contracts.hpp"
#include "rcb/runtime/retry_io.hpp"

namespace rcb {
namespace {

/// Fetches a required non-negative integer member of the spec object.
std::string get_u64(const JsonValue& obj, const char* key,
                    std::uint64_t& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    return std::string("shard spec: missing numeric \"") + key + "\"";
  }
  const double d = v->as_number();
  if (d < 0 || d != static_cast<double>(static_cast<std::uint64_t>(d))) {
    return std::string("shard spec: \"") + key +
           "\" must be a non-negative integer";
  }
  out = static_cast<std::uint64_t>(d);
  return "";
}

}  // namespace

std::vector<ShardAssignment> make_shard_plan(
    const std::vector<std::uint64_t>& trials_per_point,
    std::size_t target_shards) {
  if (target_shards == 0) target_shards = 1;
  std::uint64_t total = 0;
  for (const std::uint64_t t : trials_per_point) total += t;
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, (total + target_shards - 1) / target_shards);

  std::vector<ShardAssignment> plan;
  for (std::size_t p = 0; p < trials_per_point.size(); ++p) {
    const std::uint64_t trials = trials_per_point[p];
    if (trials == 0) {
      // Degenerate point: one empty shard so the point still gets a
      // checkpoint dir and the merge sees it as trivially complete.
      plan.push_back({p, 0, 0});
      continue;
    }
    for (std::uint64_t b = 0; b < trials; b += chunk) {
      plan.push_back({p, b, std::min(trials, b + chunk)});
    }
  }
  return plan;
}

std::string validate_shard_spec(const ShardSpec& spec) {
  if (spec.points.empty()) return "shard spec has no points";
  if (spec.shards.empty()) return "shard spec has no shards";
  if (!(spec.heartbeat_interval_sec > 0)) {
    return "shard spec: heartbeat interval must be positive";
  }
  for (std::size_t p = 0; p < spec.points.size(); ++p) {
    if (const std::string err = validate_scenario(spec.points[p]);
        !err.empty()) {
      return "shard spec point " + std::to_string(p) + ": " + err;
    }
  }
  // Each point's shards must exactly tile [0, trials): a gap would merge an
  // incomplete sweep, an overlap would double-count trials.
  std::vector<std::vector<ShardAssignment>> by_point(spec.points.size());
  for (std::size_t i = 0; i < spec.shards.size(); ++i) {
    const ShardAssignment& a = spec.shards[i];
    if (a.point >= spec.points.size()) {
      return "shard " + std::to_string(i) + " references unknown point " +
             std::to_string(a.point);
    }
    const std::uint64_t trials = spec.points[a.point].trials;
    if (a.begin > a.end || a.end > trials) {
      return "shard " + std::to_string(i) + " range [" +
             std::to_string(a.begin) + ", " + std::to_string(a.end) +
             ") exceeds point " + std::to_string(a.point) + "'s " +
             std::to_string(trials) + " trials";
    }
    by_point[a.point].push_back(a);
  }
  for (std::size_t p = 0; p < by_point.size(); ++p) {
    std::vector<ShardAssignment>& shards = by_point[p];
    std::sort(shards.begin(), shards.end(),
              [](const ShardAssignment& a, const ShardAssignment& b) {
                return a.begin < b.begin;
              });
    std::uint64_t expect = 0;
    for (const ShardAssignment& a : shards) {
      if (a.begin != expect) {
        return "point " + std::to_string(p) + " shards do not tile [0, " +
               std::to_string(spec.points[p].trials) + "): " +
               (a.begin > expect ? "gap" : "overlap") + " at trial " +
               std::to_string(std::min(a.begin, expect));
      }
      expect = a.end;
    }
    if (expect != spec.points[p].trials) {
      return "point " + std::to_string(p) + " shards cover only " +
             std::to_string(expect) + " of " +
             std::to_string(spec.points[p].trials) + " trials";
    }
  }
  return "";
}

std::string shard_dir(const std::string& root, std::size_t shard_id) {
  return root + "/shard_" + std::to_string(shard_id);
}

std::string shard_spec_path(const std::string& root) {
  return root + "/sweep.json";
}

std::string write_shard_spec(const std::string& root, const ShardSpec& spec) {
  if (const std::string err = validate_shard_spec(spec); !err.empty()) {
    return err;
  }
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) return "cannot create " + root + ": " + ec.message();

  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("rcb_shard_sweep").value(std::int64_t{1});
  w.key("worker_threads").value(static_cast<std::int64_t>(spec.worker_threads));
  w.key("trial_timeout_sec").value(spec.trial_timeout_sec);
  w.key("trial_slot_budget")
      .value(static_cast<std::uint64_t>(spec.trial_slot_budget));
  w.key("max_retries").value(static_cast<std::uint64_t>(spec.max_retries));
  w.key("heartbeat_sec").value(spec.heartbeat_interval_sec);
  // Scenarios travel as JSON *strings* (the canonical scenario codec output,
  // escaped by the writer), so the spec reuses the codec that the manifest
  // digests are keyed on instead of inventing a second scenario schema.
  w.key("points").begin_array();
  for (const Scenario& s : spec.points) w.value(scenario_to_json(s));
  w.end_array();
  w.key("shards").begin_array();
  for (const ShardAssignment& a : spec.shards) {
    w.begin_object();
    w.key("point").value(static_cast<std::uint64_t>(a.point));
    w.key("begin").value(a.begin);
    w.key("end").value(a.end);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return write_file_atomic(shard_spec_path(root), os.str());
}

ShardSpecLoadResult load_shard_spec(const std::string& root) {
  ShardSpecLoadResult out;
  const std::string path = shard_spec_path(root);
  std::string text;
  if (const std::string err = read_file_fully(path, text); !err.empty()) {
    out.error = err;
    return out;
  }
  const JsonParseResult parsed = json_parse(text);
  if (!parsed.ok) {
    out.error = path + ": " + parsed.error;
    return out;
  }
  const JsonValue& doc = parsed.value;
  std::uint64_t version = 0;
  if (const std::string err = get_u64(doc, "rcb_shard_sweep", version);
      !err.empty()) {
    out.error = err;
    return out;
  }
  if (version != 1) {
    out.error = "shard spec: unsupported version " + std::to_string(version);
    return out;
  }

  std::uint64_t threads = 0, slot_budget = 0, retries = 0;
  std::string err;
  if ((err = get_u64(doc, "worker_threads", threads)).empty() &&
      (err = get_u64(doc, "trial_slot_budget", slot_budget)).empty()) {
    err = get_u64(doc, "max_retries", retries);
  }
  if (!err.empty()) {
    out.error = err;
    return out;
  }
  out.spec.worker_threads = static_cast<int>(threads);
  out.spec.trial_slot_budget = static_cast<SlotCount>(slot_budget);
  out.spec.max_retries = static_cast<std::uint32_t>(retries);
  const JsonValue* timeout = doc.find("trial_timeout_sec");
  if (timeout == nullptr || !timeout->is_number() ||
      timeout->as_number() < 0) {
    out.error = "shard spec: missing numeric \"trial_timeout_sec\"";
    return out;
  }
  out.spec.trial_timeout_sec = timeout->as_number();
  // Optional (specs written before the socket transport lack it); the
  // default matches the historical hard-coded 100ms lease beat.
  if (const JsonValue* hb = doc.find("heartbeat_sec"); hb != nullptr) {
    if (!hb->is_number() || !(hb->as_number() > 0)) {
      out.error = "shard spec: \"heartbeat_sec\" must be positive";
      return out;
    }
    out.spec.heartbeat_interval_sec = hb->as_number();
  }

  const JsonValue* points = doc.find("points");
  if (points == nullptr || !points->is_array()) {
    out.error = "shard spec: missing \"points\" array";
    return out;
  }
  for (const JsonValue& p : points->as_array()) {
    if (!p.is_string()) {
      out.error = "shard spec: points must be scenario JSON strings";
      return out;
    }
    const ScenarioParseResult sp = scenario_from_json(p.as_string());
    if (!sp.ok) {
      out.error = "shard spec point " +
                  std::to_string(out.spec.points.size()) + ": " + sp.error;
      return out;
    }
    out.spec.points.push_back(sp.scenario);
  }

  const JsonValue* shards = doc.find("shards");
  if (shards == nullptr || !shards->is_array()) {
    out.error = "shard spec: missing \"shards\" array";
    return out;
  }
  for (const JsonValue& sh : shards->as_array()) {
    if (!sh.is_object()) {
      out.error = "shard spec: shards must be objects";
      return out;
    }
    ShardAssignment a;
    std::uint64_t point = 0;
    if ((err = get_u64(sh, "point", point)).empty() &&
        (err = get_u64(sh, "begin", a.begin)).empty()) {
      err = get_u64(sh, "end", a.end);
    }
    if (!err.empty()) {
      out.error = err;
      return out;
    }
    a.point = static_cast<std::size_t>(point);
    out.spec.shards.push_back(a);
  }

  if (const std::string invalid = validate_shard_spec(out.spec);
      !invalid.empty()) {
    out.error = invalid;
    return out;
  }
  out.ok = true;
  return out;
}

std::string shard_attempt_dir(const std::string& root, std::size_t shard_id,
                              std::uint32_t attempt) {
  if (attempt == 0) return shard_dir(root, shard_id);
  return shard_dir(root, shard_id) + "/try_" + std::to_string(attempt);
}

namespace {

/// try_<k> attempt numbers present under the shard dir, unsorted.
std::vector<std::uint32_t> list_shard_attempts(const std::string& root,
                                               std::size_t shard_id) {
  std::vector<std::uint32_t> out;
  std::error_code ec;
  for (const std::filesystem::directory_entry& entry :
       std::filesystem::directory_iterator(shard_dir(root, shard_id), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("try_", 0) != 0) continue;
    char* end = nullptr;
    const unsigned long k = std::strtoul(name.c_str() + 4, &end, 10);
    if (end == nullptr || *end != '\0' || k == 0) continue;
    out.push_back(static_cast<std::uint32_t>(k));
  }
  return out;
}

/// Classifies one candidate checkpoint dir of shard `shard_id` (the PR 6
/// single-dir scan, verbatim).
ShardScan scan_shard_candidate(const std::string& dir, const ShardSpec& spec,
                               std::size_t shard_id) {
  const ShardAssignment& a = spec.shards[shard_id];
  ShardScan scan;
  scan.dir = dir;

  std::error_code ec;
  if (!std::filesystem::exists(
          std::filesystem::path(dir) / kCheckpointManifestFile, ec)) {
    scan.state = ShardScanState::kMissing;
    return scan;
  }
  CheckpointLoadResult loaded = load_checkpoint(dir);
  if (!loaded.ok) {
    scan.state = ShardScanState::kCorrupt;
    scan.error = "shard " + std::to_string(shard_id) + ": " + loaded.error;
    return scan;
  }
  if (loaded.scenario_digest != scenario_digest(spec.points[a.point])) {
    scan.state = ShardScanState::kCorrupt;
    scan.error = "shard " + std::to_string(shard_id) +
                 ": manifest scenario does not match the sweep spec";
    return scan;
  }
  for (const CheckpointRecord& rec : loaded.records) {
    if (rec.trial < a.begin || rec.trial >= a.end) {
      scan.state = ShardScanState::kCorrupt;
      scan.error = "shard " + std::to_string(shard_id) +
                   ": record for trial " + std::to_string(rec.trial) +
                   " is outside its assigned range [" +
                   std::to_string(a.begin) + ", " + std::to_string(a.end) +
                   ")";
      return scan;
    }
  }
  scan.records = std::move(loaded.records);
  scan.state = scan.records.size() == a.end - a.begin
                   ? ShardScanState::kComplete
                   : ShardScanState::kPartial;
  return scan;
}

}  // namespace

std::uint32_t next_shard_attempt(const std::string& root,
                                 std::size_t shard_id) {
  std::uint32_t max_seen = 0;
  for (const std::uint32_t k : list_shard_attempts(root, shard_id)) {
    max_seen = std::max(max_seen, k);
  }
  return max_seen + 1;
}

ShardScan scan_shard(const std::string& root, const ShardSpec& spec,
                     std::size_t shard_id) {
  RCB_REQUIRE(shard_id < spec.shards.size());

  // Candidate order: the base dir, then attempts ascending — determinism
  // matters because the first complete candidate is the one adopted.
  std::vector<std::uint32_t> attempts = list_shard_attempts(root, shard_id);
  std::sort(attempts.begin(), attempts.end());
  std::vector<ShardScan> partial;
  ShardScan complete;
  bool have_complete = false;
  std::uint64_t complete_digest = 0;

  // Refusal (kCorrupt) short-circuits the candidate walk.
  const auto consider =
      [&](const std::string& dir) -> std::optional<ShardScan> {
    ShardScan scan = scan_shard_candidate(dir, spec, shard_id);
    switch (scan.state) {
      case ShardScanState::kMissing:
        return std::nullopt;
      case ShardScanState::kCorrupt:
        return scan;
      case ShardScanState::kPartial:
        partial.push_back(std::move(scan));
        return std::nullopt;
      case ShardScanState::kComplete: {
        const std::uint64_t digest = aggregate_digest(scan.records);
        if (!have_complete) {
          complete = std::move(scan);
          complete_digest = digest;
          have_complete = true;
        } else if (digest != complete_digest) {
          // Two finished journals for identical assigned work that
          // disagree: one of them fabricates results.  Refuse; never pick.
          ShardScan divergent;
          divergent.state = ShardScanState::kCorrupt;
          divergent.error =
              "shard " + std::to_string(shard_id) +
              ": divergent duplicate completions (" + complete.dir +
              " digest " + std::to_string(complete_digest) + " vs " +
              scan.dir + " digest " + std::to_string(digest) +
              "); refusing to choose";
          return divergent;
        }
        // Identical digest: a duplicate completion after a partition —
        // deduped, the extra candidate is simply ignored.
        return std::nullopt;
      }
    }
    return std::nullopt;
  };

  if (std::optional<ShardScan> refused = consider(shard_dir(root, shard_id))) {
    return std::move(*refused);
  }
  for (const std::uint32_t k : attempts) {
    if (std::optional<ShardScan> refused =
            consider(shard_attempt_dir(root, shard_id, k))) {
      return std::move(*refused);
    }
  }

  if (have_complete) return complete;
  if (!partial.empty()) {
    // Resume basis: the candidate with the most journaled trials (earliest
    // attempt on ties, for determinism — `partial` is in candidate order).
    std::size_t best = 0;
    for (std::size_t i = 1; i < partial.size(); ++i) {
      if (partial[i].records.size() > partial[best].records.size()) best = i;
    }
    return std::move(partial[best]);
  }
  ShardScan scan;
  scan.state = ShardScanState::kMissing;
  scan.dir = shard_dir(root, shard_id);
  return scan;
}

std::string prepare_shard_attempt(const std::string& root,
                                  const ShardSpec& spec, std::size_t shard_id,
                                  std::uint32_t attempt) {
  const std::string dir = shard_attempt_dir(root, shard_id, attempt);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "cannot create " + dir + ": " + ec.message();
  if (attempt == 0) return "";  // the base dir resumes in place

  const ShardScan scan = scan_shard(root, spec, shard_id);
  if (scan.state == ShardScanState::kCorrupt) return scan.error;
  if (scan.state == ShardScanState::kMissing || scan.dir == dir ||
      scan.records.empty()) {
    return "";  // nothing to carry forward
  }
  // Byte-copy the predecessor's manifest + journal.  The source may still
  // be appended to by a partitioned worker; a copy sheared mid-record is a
  // truncated tail, which resume recovers from.
  for (const char* name : {kCheckpointManifestFile, kCheckpointJournalFile}) {
    const std::string src = scan.dir + "/" + name;
    std::string bytes;
    if (const std::string err = read_file_fully(src, bytes); !err.empty()) {
      return "cannot seed attempt " + std::to_string(attempt) + ": " + err;
    }
    if (const std::string err = write_file_atomic(dir + "/" + name, bytes);
        !err.empty()) {
      return err;
    }
  }
  return "";
}

ShardMergeResult merge_shard_journals(const std::string& root,
                                      const ShardSpec& spec) {
  ShardMergeResult out;
  if (const std::string err = validate_shard_spec(spec); !err.empty()) {
    out.error = err;
    return out;
  }
  out.points.resize(spec.points.size());
  std::vector<std::vector<bool>> seen(spec.points.size());
  for (std::size_t p = 0; p < spec.points.size(); ++p) {
    seen[p].assign(spec.points[p].trials, false);
  }

  for (std::size_t i = 0; i < spec.shards.size(); ++i) {
    ShardScan scan = scan_shard(root, spec, i);
    switch (scan.state) {
      case ShardScanState::kCorrupt:
        out.points.clear();
        out.error = scan.error;
        return out;
      case ShardScanState::kMissing:
      case ShardScanState::kPartial: {
        const ShardAssignment& a = spec.shards[i];
        out.points.clear();
        out.error = "shard " + std::to_string(i) + " is incomplete: " +
                    std::to_string(scan.records.size()) + " of " +
                    std::to_string(a.end - a.begin) + " trials journaled";
        return out;
      }
      case ShardScanState::kComplete:
        break;
    }
    const std::size_t p = spec.shards[i].point;
    for (CheckpointRecord& rec : scan.records) {
      // Cross-journal duplicates cannot happen under a tiled plan with
      // in-range records, but the merge is the last line of defence against
      // double-counting, so it re-checks instead of trusting the plan.
      if (seen[p][rec.trial]) {
        out.points.clear();
        out.error = "trial " + std::to_string(rec.trial) + " of point " +
                    std::to_string(p) +
                    " appears in more than one shard journal; refusing to "
                    "double-count";
        return out;
      }
      seen[p][rec.trial] = true;
      out.points[p].records.push_back(std::move(rec));
    }
  }

  for (std::size_t p = 0; p < out.points.size(); ++p) {
    SweepResult& res = out.points[p];
    res.scenario = spec.points[p];
    std::sort(res.records.begin(), res.records.end(),
              [](const CheckpointRecord& a, const CheckpointRecord& b) {
                return a.trial < b.trial;
              });
    res.resumed = res.records.size();
    for (const CheckpointRecord& rec : res.records) {
      if (rec.status == "timed_out") ++res.timed_out;
      if (rec.status == "failed") ++res.failed_trials;
    }
    res.aggregate_digest = aggregate_digest(res.records);
    res.ok = true;
  }
  out.ok = true;
  return out;
}

}  // namespace rcb
