#include "rcb/runtime/transport.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>

#include "rcb/cli/json.hpp"
#include "rcb/cli/json_parse.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/runtime/retry_io.hpp"
#include "rcb/runtime/shard.hpp"

namespace rcb {

const char kShardLeaseFile[] = "lease";

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Lease files (local transport).

void write_lease_file(const std::string& path, pid_t pid) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return;  // heartbeat is advisory; the next beat retries
  std::fprintf(f, "%ld\n", static_cast<long>(pid));
  std::fclose(f);
}

pid_t read_lease_pid(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return -1;
  long pid = -1;
  const int got = std::fscanf(f, "%ld", &pid);
  std::fclose(f);
  return got == 1 ? static_cast<pid_t>(pid) : -1;
}

double lease_age_sec(const std::string& path) {
  std::error_code ec;
  const fs::file_time_type mtime = fs::last_write_time(path, ec);
  if (ec) return 1e18;
  const auto age = fs::file_time_type::clock::now() - mtime;
  return std::chrono::duration<double>(age).count();
}

// ---------------------------------------------------------------------------
// Control-frame codec.

const char* ctrl_type_name(CtrlType type) {
  switch (type) {
    case CtrlType::kHello:
      return "hello";
    case CtrlType::kHeartbeat:
      return "heartbeat";
    case CtrlType::kProgress:
      return "progress";
    case CtrlType::kComplete:
      return "complete";
    case CtrlType::kFailed:
      return "failed";
    case CtrlType::kAssign:
      return "assign";
    case CtrlType::kAck:
      return "ack";
    case CtrlType::kAbandon:
      return "abandon";
    case CtrlType::kShutdown:
      return "shutdown";
  }
  return "?";
}

namespace {

bool ctrl_type_from_name(std::string_view name, CtrlType& out) {
  static constexpr CtrlType kAll[] = {
      CtrlType::kHello,  CtrlType::kHeartbeat, CtrlType::kProgress,
      CtrlType::kComplete, CtrlType::kFailed,  CtrlType::kAssign,
      CtrlType::kAck,    CtrlType::kAbandon,   CtrlType::kShutdown,
  };
  for (const CtrlType t : kAll) {
    if (name == ctrl_type_name(t)) {
      out = t;
      return true;
    }
  }
  return false;
}

/// Payload limit: control messages are a few hundred bytes (the largest
/// carries a filesystem path); anything bigger is a framing desync.
constexpr std::size_t kMaxCtrlPayload = 1 << 16;

std::string decode_ctrl_payload(std::string_view payload, CtrlMessage& out) {
  const JsonParseResult parsed = json_parse(payload);
  if (!parsed.ok) return "control payload: " + parsed.error;
  const JsonValue& obj = parsed.value;
  const JsonValue* t = obj.find("t");
  if (t == nullptr || !t->is_string()) {
    return "control payload: missing \"t\"";
  }
  if (!ctrl_type_from_name(t->as_string(), out.type)) {
    return "control payload: unknown type \"" + t->as_string() + "\"";
  }
  const auto hex_field = [&obj](const char* key, std::uint64_t& dst) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) return true;  // optional; keep the default
    return v->is_string() && parse_hex_u64(v->as_string(), dst);
  };
  const auto num_field = [&obj](const char* key, std::uint64_t& dst) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) return true;
    if (!v->is_number() || v->as_number() < 0) return false;
    dst = static_cast<std::uint64_t>(v->as_number());
    return true;
  };
  // 64-bit identities (uids, digests, trial-range shard ids) travel as
  // hex16 strings: JSON numbers are doubles and would shear their low bits.
  if (!hex_field("uid", out.uid) || !hex_field("shard", out.shard) ||
      !hex_field("value", out.value) || !hex_field("digest", out.digest) ||
      !num_field("pid", out.pid) || !num_field("attempt", out.attempt) ||
      !num_field("hb", out.heartbeat_ms)) {
    return "control payload: malformed field";
  }
  if (const JsonValue* v = obj.find("root"); v != nullptr) {
    if (!v->is_string()) return "control payload: malformed \"root\"";
    out.root = v->as_string();
  }
  if (const JsonValue* v = obj.find("err"); v != nullptr) {
    if (!v->is_string()) return "control payload: malformed \"err\"";
    out.error = v->as_string();
  }
  return "";
}

}  // namespace

std::string encode_ctrl_frame(const CtrlMessage& m) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("t").value(ctrl_type_name(m.type));
  w.key("uid").value(to_hex16(m.uid));
  w.key("pid").value(m.pid);
  w.key("shard").value(to_hex16(m.shard));
  w.key("attempt").value(m.attempt);
  w.key("value").value(to_hex16(m.value));
  w.key("digest").value(to_hex16(m.digest));
  w.key("hb").value(m.heartbeat_ms);
  if (!m.root.empty()) w.key("root").value(m.root);
  if (!m.error.empty()) w.key("err").value(m.error);
  w.end_object();
  const std::string payload = os.str();
  std::string frame = "RCBC ";
  frame += std::to_string(payload.size());
  frame += ' ';
  frame += to_hex16(fnv1a64(payload));
  frame += ' ';
  frame += payload;
  frame += '\n';
  return frame;
}

void CtrlFrameDecoder::feed(const char* data, std::size_t n) {
  buf_.append(data, n);
}

int CtrlFrameDecoder::next(CtrlMessage& out, std::string& error) {
  const std::string_view v(buf_.data() + off_, buf_.size() - off_);
  if (v.size() < 5) return 0;
  if (v.substr(0, 5) != "RCBC ") {
    error = "control frame: bad magic";
    return -1;
  }
  std::size_t i = 5;
  std::size_t len = 0;
  std::size_t digits = 0;
  while (i < v.size() &&
         std::isdigit(static_cast<unsigned char>(v[i])) != 0) {
    len = len * 10 + static_cast<std::size_t>(v[i] - '0');
    ++i;
    if (++digits > 7) {
      error = "control frame: oversized length field";
      return -1;
    }
  }
  if (i >= v.size()) return 0;
  if (digits == 0 || v[i] != ' ') {
    error = "control frame: malformed length";
    return -1;
  }
  if (len > kMaxCtrlPayload) {
    error = "control frame: payload too large";
    return -1;
  }
  ++i;
  if (v.size() - i < 17) return 0;
  std::uint64_t sum = 0;
  if (!parse_hex_u64(v.substr(i, 16), sum)) {
    error = "control frame: malformed checksum";
    return -1;
  }
  i += 16;
  if (v[i] != ' ') {
    error = "control frame: malformed header";
    return -1;
  }
  ++i;
  if (v.size() - i < len + 1) return 0;
  const std::string_view payload = v.substr(i, len);
  if (v[i + len] != '\n') {
    error = "control frame: missing terminator";
    return -1;
  }
  if (fnv1a64(payload) != sum) {
    error = "control frame: checksum mismatch";
    return -1;
  }
  out = CtrlMessage{};
  if (std::string err = decode_ctrl_payload(payload, out); !err.empty()) {
    error = std::move(err);
    return -1;
  }
  off_ += i + len + 1;
  if (off_ > (1u << 16)) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  return 1;
}

// ---------------------------------------------------------------------------
// Deterministic control-plane faults.

bool NetFaultConfig::any_active() const {
  return seed != 0 &&
         (drop_rate > 0 || delay_rate > 0 || duplicate_rate > 0 ||
          reorder_rate > 0 || close_rate > 0);
}

NetFaultConfig NetFaultConfig::chaos(std::uint64_t seed, double rate) {
  NetFaultConfig cfg;
  cfg.seed = seed;
  cfg.drop_rate = rate;
  cfg.delay_rate = rate;
  cfg.duplicate_rate = rate;
  cfg.reorder_rate = rate;
  cfg.close_rate = rate / 5.0;
  cfg.delay_ms = 10.0;
  return cfg;
}

const char* net_fault_action_name(NetFaultAction a) {
  switch (a) {
    case NetFaultAction::kDeliver:
      return "deliver";
    case NetFaultAction::kDrop:
      return "drop";
    case NetFaultAction::kDelay:
      return "delay";
    case NetFaultAction::kDuplicate:
      return "duplicate";
    case NetFaultAction::kReorder:
      return "reorder";
    case NetFaultAction::kClose:
      return "close";
  }
  return "?";
}

NetFaultAction NetFaultPlan::next(CtrlType type) {
  if (!cfg_.any_active()) return NetFaultAction::kDeliver;
  // Decision k for message type t is a pure function of (seed, k, t): mix
  // them into one splitmix64 draw, same per-decision idiom as FaultPlan.
  std::uint64_t s = cfg_.seed ^
                    (0x9E3779B97F4A7C15ull * (counter_ + 1)) ^
                    (static_cast<std::uint64_t>(type) << 56);
  ++counter_;
  const std::uint64_t x = splitmix64_next(s);
  double u = static_cast<double>(x >> 11) * 0x1.0p-53;
  const double rates[] = {cfg_.drop_rate, cfg_.delay_rate,
                          cfg_.duplicate_rate, cfg_.reorder_rate,
                          cfg_.close_rate};
  const NetFaultAction acts[] = {NetFaultAction::kDrop, NetFaultAction::kDelay,
                                 NetFaultAction::kDuplicate,
                                 NetFaultAction::kReorder,
                                 NetFaultAction::kClose};
  for (std::size_t i = 0; i < 5; ++i) {
    if (u < rates[i]) return acts[i];
    u -= rates[i];
  }
  return NetFaultAction::kDeliver;
}

// ---------------------------------------------------------------------------
// Lease policy validation.

std::string validate_lease_config(double lease_timeout_sec,
                                  double heartbeat_interval_sec) {
  if (!(heartbeat_interval_sec > 0)) {
    return "heartbeat interval must be positive";
  }
  if (lease_timeout_sec <= 0) return "";  // watchdog disabled
  if (lease_timeout_sec <= 2.0 * heartbeat_interval_sec) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "lease timeout (%.3gs) must exceed 2x the heartbeat "
                  "interval (%.3gs): one delayed beat would revoke a "
                  "healthy worker",
                  lease_timeout_sec, heartbeat_interval_sec);
    return buf;
  }
  return "";
}

// ---------------------------------------------------------------------------
// Worker process spawning (shared by both transports).

std::string spawn_worker_process(const std::vector<std::string>& argv_strings,
                                 pid_t& pid, int& pipe_read) {
  if (argv_strings.empty()) return "worker argv is empty";
  // Materialise the argv *before* fork: the parent may carry threads
  // (gtest, pools), so the child must not allocate between fork and exec —
  // it only calls async-signal-safe prctl/exec/_exit.
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (const std::string& a : argv_strings) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);

  int fds[2];
  if (pipe(fds) != 0) {
    return std::string("pipe failed: ") + std::strerror(errno);
  }
  // Read end stays in the parent only; the write end is deliberately
  // inherited across exec so the worker holds it open for its lifetime
  // (EOF on the read end the instant the worker dies, even if waitpid
  // lags).
  fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  fcntl(fds[0], F_SETFL, O_NONBLOCK);

  const pid_t child = fork();
  if (child < 0) {
    const int err = errno;
    close(fds[0]);
    close(fds[1]);
    return std::string("fork failed: ") + std::strerror(err);
  }
  if (child == 0) {
#ifdef __linux__
    // Die with the parent: a SIGKILLed coordinator must not leave workers
    // appending to journals a resumed coordinator is adopting.
    // Caveat: the kernel delivers this on death of the spawning *thread*,
    // not the process — callers must spawn from a thread that outlives the
    // worker (the coordinator loop does; short-lived helper threads don't).
    prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (getppid() == 1) _exit(127);  // parent already gone
#endif
    execv(argv[0], argv.data());
    _exit(127);
  }
  close(fds[1]);
  pid = child;
  pipe_read = fds[0];
  return "";
}

// ---------------------------------------------------------------------------
// LocalProcessTransport.

namespace {

class LocalProcessTransport final : public WorkerTransport {
 public:
  explicit LocalProcessTransport(const LocalTransportOptions& opt)
      : opt_(opt), plan_(opt.net_faults) {}

  ~LocalProcessTransport() override { shutdown(false); }

  std::string start() override { return ""; }

  bool can_assign() override { return running_.size() < opt_.workers; }

  std::string assign(std::size_t shard, std::uint32_t attempt) override {
    const std::string dir = shard_dir(opt_.root, shard);
    std::error_code ec;
    fs::create_directories(dir, ec);
    const std::vector<std::string> argv =
        opt_.worker_argv ? opt_.worker_argv(shard)
                         : default_worker_argv(shard);
    Running w;
    w.attempt = attempt;
    if (std::string err = spawn_worker_process(argv, w.pid, w.pipe_read);
        !err.empty()) {
      return err;
    }
    // Seed the lease with the child's pid so the staleness clock starts at
    // spawn and a resuming coordinator can find the orphan.
    write_lease_file(dir + "/" + kShardLeaseFile, w.pid);
    running_[shard] = w;
    if (opt_.on_worker_spawn) opt_.on_worker_spawn(shard, w.pid);
    return "";
  }

  void poll(std::vector<TransportEvent>& out) override {
    for (TransportEvent& ev : pending_) out.push_back(std::move(ev));
    pending_.clear();

    std::vector<std::size_t> shards;
    shards.reserve(running_.size());
    for (const auto& [shard, w] : running_) shards.push_back(shard);
    for (const std::size_t shard : shards) {
      const Running w = running_[shard];  // by value: erased below
      // Death reaches us as pipe EOF (a superset of waitpid: the kernel
      // closes the inherited write end on any exit, including SIGKILL);
      // wedging reaches us as a stale lease.
      char buf[16];
      const ssize_t k = retry_read_some(w.pipe_read, buf, sizeof buf);
      const bool dead = (k == 0);
      bool stale = false;
      if (!dead && opt_.lease_timeout_sec > 0) {
        const std::string lease =
            shard_dir(opt_.root, shard) + "/" + kShardLeaseFile;
        stale = lease_age_sec(lease) > opt_.lease_timeout_sec;
      }
      if (!dead && !stale) continue;
      // Control-plane faults map onto this observation channel: drop and
      // delay suppress the observation for one poll round (ground truth
      // re-derives it next round, the lossy-link analogue of a missed
      // status frame); duplicate/reorder/close deliver — events here are
      // re-derived from process state, so they cannot duplicate or invert.
      if (plan_.active()) {
        const NetFaultAction act = plan_.next(
            dead ? CtrlType::kComplete : CtrlType::kHeartbeat);
        if (act == NetFaultAction::kDrop || act == NetFaultAction::kDelay) {
          continue;
        }
      }
      if (stale) kill(w.pid, SIGKILL);  // wedged: alive but heartbeat stopped
      int status = 0;
      waitpid(w.pid, &status, 0);
      close(w.pipe_read);
      running_.erase(shard);
      TransportEvent ev;
      ev.kind = TransportEvent::Kind::kShardExited;
      ev.shard = shard;
      ev.attempt = w.attempt;
      ev.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      if (stale) ev.detail = "lease expired";
      out.push_back(std::move(ev));
    }
  }

  void revoke(std::size_t shard) override {
    const auto it = running_.find(shard);
    if (it == running_.end()) return;
    kill(it->second.pid, SIGKILL);
    int status = 0;
    waitpid(it->second.pid, &status, 0);
    close(it->second.pipe_read);
    TransportEvent ev;
    ev.kind = TransportEvent::Kind::kShardExited;
    ev.shard = shard;
    ev.attempt = it->second.attempt;
    ev.detail = "revoked";
    pending_.push_back(std::move(ev));
    running_.erase(it);
  }

  std::size_t fleet_size() const override {
    // The local fleet is spawn-on-demand: capacity, not attachment, is the
    // fleet, so it never parks.
    return opt_.workers;
  }

  std::string attempt_dir(std::size_t shard,
                          std::uint32_t /*attempt*/) const override {
    // Attempt-less on purpose: revocation on the local transport really
    // kills the process, so a replacement can safely resume the same
    // journal in place (and stays byte-compatible with pre-socket sweeps).
    return shard_dir(opt_.root, shard);
  }

  void shutdown(bool graceful) override {
    const int sig = graceful ? SIGTERM : SIGKILL;
    for (auto& [shard, w] : running_) kill(w.pid, sig);
    for (auto& [shard, w] : running_) {
      int status = 0;
      waitpid(w.pid, &status, 0);
      close(w.pipe_read);
    }
    running_.clear();
  }

 private:
  struct Running {
    pid_t pid = -1;
    int pipe_read = -1;
    std::uint32_t attempt = 0;
  };

  std::vector<std::string> default_worker_argv(std::size_t shard_id) const {
    return {"/proc/self/exe", "--shard_worker=" + opt_.root,
            "--shard_id=" + std::to_string(shard_id)};
  }

  const LocalTransportOptions opt_;
  NetFaultPlan plan_;
  std::map<std::size_t, Running> running_;
  std::vector<TransportEvent> pending_;
};

}  // namespace

std::unique_ptr<WorkerTransport> make_local_process_transport(
    const LocalTransportOptions& opt) {
  return std::make_unique<LocalProcessTransport>(opt);
}

}  // namespace rcb
