// Self-describing experiment scenarios and deterministic trial replay.
//
// A Scenario is the complete recipe for one Monte-Carlo experiment:
// protocol, adversary, their knobs, the fault model, and the master seed.
// Because every run in the library is a pure function of (scenario, trial
// index), a scenario plus a trial index identifies one execution
// bit-identically — that is the contract the crash-repro machinery builds
// on:
//
//   1. run_scenario_trial installs a ReproScope (common/contracts.hpp)
//      carrying the scenario JSON, so any contract failure inside the trial
//      emits a machine-readable "RCB_REPRO {...}" record naming the exact
//      scenario, seed and trial that crashed.
//   2. repro_record_from_json parses such a record back.
//   3. tools/replay re-executes the named trial; the TrialOutcome digest
//      (FNV-1a over every per-node observable) certifies bit-identical
//      reproduction.
//
// The JSON codec round-trips: scenario_from_json(scenario_to_json(s)) == s.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "rcb/adversary/slot_adversary.hpp"
#include "rcb/adversary/strategies.hpp"
#include "rcb/adversary/two_uniform.hpp"
#include "rcb/common/types.hpp"
#include "rcb/sim/faults.hpp"

namespace rcb {

/// Complete description of one Monte-Carlo experiment.
struct Scenario {
  std::string protocol = "one_to_one";  ///< one_to_one|ksy|combined|broadcast|naive|sqrt|mc_broadcast
  std::string adversary = "none";
  Cost budget = 16384;       ///< adversary budget T
  double q = 0.6;            ///< blocker jam intensity
  double rate = 0.3;         ///< random-jammer per-slot rate
  std::uint32_t n = 32;      ///< broadcast fleet size
  double eps = 0.01;         ///< 1-to-1 failure bound
  std::size_t trials = 100;
  std::uint64_t seed = 1;    ///< master seed; trial t uses Rng::stream(seed, t)
  std::uint32_t max_epoch_extra = 0;  ///< 0 = protocol default cap
  SlotCount timeout_slots = 0;        ///< 1-to-1 wall-clock abort (0 = off)
  /// Per-node battery capacity in slot-units (broadcast/naive protocols
  /// only; 0 = unlimited).  Maps to BroadcastNParams::node_energy_budget.
  Cost battery = 0;
  /// Channel count C of the multi-channel slot model (mc_broadcast only;
  /// 1..64).  Serialised only when != 1, so single-channel scenarios keep
  /// their pre-multi-channel canonical JSON and digest.
  std::uint32_t channels = 1;
  FaultConfig faults;                 ///< fault-injection model (defaults off)

  bool is_broadcast() const {
    return protocol == "broadcast" || protocol == "naive" || protocol == "sqrt";
  }
  bool is_duel() const {
    return protocol == "one_to_one" || protocol == "ksy" ||
           protocol == "combined";
  }
  bool is_multichannel() const { return protocol == "mc_broadcast"; }
};

/// Serialises a scenario as a single-line JSON object (stable key order).
std::string scenario_to_json(const Scenario& s);

/// FNV-1a fingerprint of the canonical scenario JSON.  Because the codec
/// round-trip is a fixed point (scenario_to_json(parse(j)) == j), two
/// scenarios have equal digests iff they are field-for-field identical —
/// the identity the checkpoint manifest and repro records are keyed on.
std::uint64_t scenario_digest(const Scenario& s);

struct ScenarioParseResult {
  bool ok = false;
  Scenario scenario;
  std::string error;
};

/// Parses a scenario from JSON text.  Unknown keys are rejected (they would
/// silently change the meaning of a repro record); absent keys keep their
/// defaults.
ScenarioParseResult scenario_from_json(std::string_view text);

/// Empty string when the scenario names a valid protocol/adversary
/// combination with in-range parameters; a diagnostic otherwise.
std::string validate_scenario(const Scenario& s);

/// Adversary factories (nullptr for an unknown name).
std::unique_ptr<RepetitionAdversary> make_broadcast_adversary(
    const Scenario& s);
std::unique_ptr<DuelAdversary> make_duel_adversary(const Scenario& s);
/// Multi-channel adversary factory (none|mc_uniform|mc_focus|mc_sweep).
/// Randomized strategies seed their private Rng from (s.seed, trial) so a
/// trial replays deterministically.
std::unique_ptr<McSlotAdversary> make_mc_adversary(const Scenario& s,
                                                   std::uint64_t trial = 0);

/// Everything observable about one trial, plus a digest certifying it.
struct TrialOutcome {
  double max_cost = 0.0;
  double mean_cost = 0.0;
  double adversary_cost = 0.0;
  double latency = 0.0;
  bool success = false;
  bool aborted = false;
  std::uint64_t dead_count = 0;
  std::uint64_t crashed_count = 0;
  /// FNV-1a over every field above plus all per-node observables (costs,
  /// statuses, epochs) — two executions with equal digests took the same
  /// per-node trajectory.
  std::uint64_t digest = 0;
};

/// Executes trial `trial` of `s` (precondition: validate_scenario(s) is
/// empty).  Installs a ReproScope for the duration so contract failures
/// inside the trial are attributable.
TrialOutcome run_scenario_trial(const Scenario& s, std::uint64_t trial);

/// A parsed crash-repro record (the "RCB_REPRO {...}" stderr line).
struct ReproRecord {
  std::string kind;   ///< "precondition" or "assertion"
  std::string expr;
  std::string file;
  int line = 0;
  std::uint64_t master_seed = 0;
  std::uint64_t trial = 0;
  bool has_scenario = false;
  Scenario scenario;
  /// FNV-1a digest of the scenario JSON as recorded at emission time
  /// ("scenario_digest" field); lets tools detect a record whose embedded
  /// scenario was edited after the fact.
  bool has_scenario_digest = false;
  std::uint64_t scenario_digest = 0;
};

struct ReproParseResult {
  bool ok = false;
  ReproRecord record;
  std::string error;
};

/// Parses a repro record; tolerates a leading "RCB_REPRO " prefix and
/// surrounding whitespace, so a line grabbed from a crash log works as-is.
ReproParseResult repro_record_from_json(std::string_view text);

}  // namespace rcb
