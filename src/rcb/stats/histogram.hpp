// Histograms and bootstrap confidence intervals for per-node cost
// distributions (fairness analysis of Theorem 4's "fair algorithm" notion).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "rcb/rng/rng.hpp"

namespace rcb {

/// Fixed-width-bin histogram.
class Histogram {
 public:
  /// Builds `bins` equal-width bins spanning [min(samples), max(samples)].
  /// Degenerate inputs (empty, or all-equal) produce a single bin.
  Histogram(std::span<const double> samples, std::size_t bins);

  std::size_t num_bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_[bin]; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;
  std::uint64_t total() const { return total_; }

  /// ASCII bar rendering, one line per bin, bars scaled to `width` chars.
  void print(std::ostream& os, std::size_t width = 50) const;

 private:
  double lo_ = 0.0;
  double bin_width_ = 1.0;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// Percentile-bootstrap confidence interval for the mean.
struct BootstrapCi {
  double mean = 0.0;
  double lo = 0.0;  ///< lower bound (e.g. 2.5th percentile of resamples)
  double hi = 0.0;  ///< upper bound
};

/// Resamples `samples` with replacement `resamples` times and returns the
/// [alpha/2, 1-alpha/2] percentile interval of the resampled means.
BootstrapCi bootstrap_mean_ci(std::span<const double> samples,
                              std::size_t resamples, double alpha, Rng& rng);

}  // namespace rcb
