// Summary statistics over Monte-Carlo samples.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rcb {

/// Point statistics of a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p10 = 0.0;
  double p90 = 0.0;

  /// Half-width of the ~95% normal-approximation confidence interval for
  /// the mean (1.96 * stddev / sqrt(n); 0 for n < 2).
  double ci95_halfwidth() const;
};

/// Computes a Summary; the input need not be sorted.  Empty input yields a
/// zero Summary.
Summary summarize(std::span<const double> samples);

/// Linear-interpolated quantile of a sample, q in [0, 1].
double quantile(std::span<const double> samples, double q);

/// Fraction of samples satisfying a predicate-like boolean vector.
double fraction_true(std::span<const bool> flags);

}  // namespace rcb
