#include "rcb/stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "rcb/common/contracts.hpp"

namespace rcb {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RCB_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  RCB_REQUIRE(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, value);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
    os << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace rcb
