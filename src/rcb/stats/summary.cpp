#include "rcb/stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "rcb/common/contracts.hpp"

namespace rcb {

double Summary::ci95_halfwidth() const {
  if (n < 2) return 0.0;
  return 1.96 * stddev / std::sqrt(static_cast<double>(n));
}

double quantile(std::span<const double> samples, double q) {
  RCB_REQUIRE(q >= 0.0 && q <= 1.0);
  if (samples.empty()) return 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.n = samples.size();
  if (samples.empty()) return s;

  double sum = 0.0;
  s.min = samples[0];
  s.max = samples[0];
  for (double x : samples) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.n);

  if (s.n >= 2) {
    double ss = 0.0;
    for (double x : samples) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }

  s.median = quantile(samples, 0.5);
  s.p10 = quantile(samples, 0.1);
  s.p90 = quantile(samples, 0.9);
  return s;
}

double fraction_true(std::span<const bool> flags) {
  if (flags.empty()) return 0.0;
  std::size_t count = 0;
  for (bool f : flags) count += f ? 1 : 0;
  return static_cast<double>(count) / static_cast<double>(flags.size());
}

}  // namespace rcb
