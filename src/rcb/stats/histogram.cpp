#include "rcb/stats/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "rcb/common/contracts.hpp"
#include "rcb/stats/summary.hpp"

namespace rcb {

Histogram::Histogram(std::span<const double> samples, std::size_t bins) {
  RCB_REQUIRE(bins >= 1);
  if (samples.empty()) {
    counts_.assign(1, 0);
    return;
  }
  double hi = samples[0];
  lo_ = samples[0];
  for (double x : samples) {
    lo_ = std::min(lo_, x);
    hi = std::max(hi, x);
  }
  if (hi <= lo_) {
    counts_.assign(1, samples.size());
    total_ = samples.size();
    bin_width_ = 1.0;
    return;
  }
  counts_.assign(bins, 0);
  bin_width_ = (hi - lo_) / static_cast<double>(bins);
  for (double x : samples) {
    auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
    if (bin >= bins) bin = bins - 1;  // x == max lands in the last bin
    ++counts_[bin];
    ++total_;
  }
}

double Histogram::bin_low(std::size_t bin) const {
  RCB_REQUIRE(bin < counts_.size());
  return lo_ + static_cast<double>(bin) * bin_width_;
}

double Histogram::bin_high(std::size_t bin) const {
  RCB_REQUIRE(bin < counts_.size());
  return lo_ + static_cast<double>(bin + 1) * bin_width_;
}

void Histogram::print(std::ostream& os, std::size_t width) const {
  std::uint64_t max_count = 1;
  for (auto c : counts_) max_count = std::max(max_count, c);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    char label[64];
    std::snprintf(label, sizeof label, "[%10.4g, %10.4g)", bin_low(b),
                  bin_high(b));
    os << label << ' ';
    const auto bar =
        static_cast<std::size_t>(width * counts_[b] / max_count);
    for (std::size_t i = 0; i < bar; ++i) os << '#';
    os << ' ' << counts_[b] << '\n';
  }
}

BootstrapCi bootstrap_mean_ci(std::span<const double> samples,
                              std::size_t resamples, double alpha, Rng& rng) {
  RCB_REQUIRE(alpha > 0.0 && alpha < 1.0);
  BootstrapCi ci;
  if (samples.empty()) return ci;
  ci.mean = summarize(samples).mean;
  if (samples.size() < 2 || resamples == 0) {
    ci.lo = ci.hi = ci.mean;
    return ci;
  }
  std::vector<double> means(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      sum += samples[rng.uniform_u64(samples.size())];
    }
    means[r] = sum / static_cast<double>(samples.size());
  }
  ci.lo = quantile(means, alpha / 2.0);
  ci.hi = quantile(means, 1.0 - alpha / 2.0);
  return ci;
}

}  // namespace rcb
