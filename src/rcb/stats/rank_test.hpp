// Mann-Whitney U test (two-sample Wilcoxon rank-sum).
//
// The experiment benches compare cost distributions (helper rule vs naive
// baseline, protocol A vs protocol B at equal budgets).  Means alone can
// mislead with the heavy-tailed costs adversarial runs produce; the U test
// gives a distribution-free significance statement: P(sample from X
// exceeds sample from Y) shifted from 1/2.
#pragma once

#include <span>

namespace rcb {

struct MannWhitneyResult {
  double u = 0.0;            ///< U statistic for the first sample
  /// Common-language effect size: P(x > y) + 0.5 P(x == y), in [0, 1].
  double effect = 0.5;
  /// Two-sided p-value from the normal approximation with tie correction
  /// (accurate for samples of ~10+; exact enumeration is not attempted).
  double p_value = 1.0;
};

/// Compares two samples; requires both non-empty.
MannWhitneyResult mann_whitney(std::span<const double> xs,
                               std::span<const double> ys);

}  // namespace rcb
