// Mann-Whitney U test (two-sample Wilcoxon rank-sum).
//
// The experiment benches compare cost distributions (helper rule vs naive
// baseline, protocol A vs protocol B at equal budgets).  Means alone can
// mislead with the heavy-tailed costs adversarial runs produce; the U test
// gives a distribution-free significance statement: P(sample from X
// exceeds sample from Y) shifted from 1/2.
#pragma once

#include <cstddef>
#include <span>

namespace rcb {

struct MannWhitneyResult {
  double u = 0.0;            ///< U statistic for the first sample
  /// Common-language effect size: P(x > y) + 0.5 P(x == y), in [0, 1].
  double effect = 0.5;
  /// Two-sided p-value from the normal approximation with tie correction
  /// (accurate for samples of ~10+; exact enumeration is not attempted).
  double p_value = 1.0;
};

/// Compares two samples; requires both non-empty.
MannWhitneyResult mann_whitney(std::span<const double> xs,
                               std::span<const double> ys);

/// Bonferroni-corrected per-comparison significance level.  A gate that
/// runs `comparisons` tests and rejects each at the returned level keeps
/// the family-wise false-positive probability at most `family_alpha` —
/// the calibration the statistical engine-crosscheck oracle relies on
/// (tests/rank_gate_test.cpp measures the null rejection rate).
/// Requires family_alpha in (0, 1) and comparisons >= 1.
double bonferroni_alpha(double family_alpha, std::size_t comparisons);

/// True when a Mann-Whitney comparison of `xs` (suspect) vs `ys`
/// (reference) rejects equality at `alpha` *in the direction that matters*:
/// one-sided toward xs stochastically smaller when `xs_smaller_suspect` is
/// true, two-sided otherwise.  Centralises the gate so every differential
/// oracle applies the same decision rule.
bool rank_gate_rejects(std::span<const double> xs, std::span<const double> ys,
                       double alpha, bool xs_smaller_suspect = false);

}  // namespace rcb
