#include "rcb/stats/rank_test.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "rcb/common/contracts.hpp"

namespace rcb {
namespace {

/// Standard normal survival function via erfc.
double normal_sf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

}  // namespace

MannWhitneyResult mann_whitney(std::span<const double> xs,
                               std::span<const double> ys) {
  RCB_REQUIRE(!xs.empty() && !ys.empty());
  const double n1 = static_cast<double>(xs.size());
  const double n2 = static_cast<double>(ys.size());

  // Rank the pooled sample with average ranks for ties.
  struct Tagged {
    double value;
    bool from_x;
  };
  std::vector<Tagged> pooled;
  pooled.reserve(xs.size() + ys.size());
  for (double x : xs) pooled.push_back({x, true});
  for (double y : ys) pooled.push_back({y, false});
  std::sort(pooled.begin(), pooled.end(),
            [](const Tagged& a, const Tagged& b) { return a.value < b.value; });

  double rank_sum_x = 0.0;
  double tie_correction = 0.0;  // sum of t^3 - t over tie groups
  std::size_t i = 0;
  while (i < pooled.size()) {
    std::size_t j = i;
    while (j < pooled.size() && pooled[j].value == pooled[i].value) ++j;
    const double avg_rank =
        (static_cast<double>(i) + static_cast<double>(j - 1)) / 2.0 + 1.0;
    const auto t = static_cast<double>(j - i);
    if (t > 1.0) tie_correction += t * t * t - t;
    for (std::size_t k = i; k < j; ++k) {
      if (pooled[k].from_x) rank_sum_x += avg_rank;
    }
    i = j;
  }

  MannWhitneyResult result;
  result.u = rank_sum_x - n1 * (n1 + 1.0) / 2.0;
  result.effect = result.u / (n1 * n2);

  const double mean_u = n1 * n2 / 2.0;
  const double n = n1 + n2;
  const double var_u =
      n1 * n2 / 12.0 * ((n + 1.0) - tie_correction / (n * (n - 1.0)));
  if (var_u <= 0.0) {
    // All values tied: no evidence of any difference.
    result.p_value = 1.0;
    return result;
  }
  // Continuity-corrected normal approximation, two-sided.
  const double z =
      (std::abs(result.u - mean_u) - 0.5) / std::sqrt(var_u);
  result.p_value = std::min(1.0, 2.0 * normal_sf(std::max(0.0, z)));
  return result;
}

double bonferroni_alpha(double family_alpha, std::size_t comparisons) {
  RCB_REQUIRE(family_alpha > 0.0 && family_alpha < 1.0);
  RCB_REQUIRE(comparisons >= 1);
  return family_alpha / static_cast<double>(comparisons);
}

bool rank_gate_rejects(std::span<const double> xs, std::span<const double> ys,
                       double alpha, bool xs_smaller_suspect) {
  const MannWhitneyResult r = mann_whitney(xs, ys);
  if (!xs_smaller_suspect) return r.p_value < alpha;
  // One-sided: halve the two-sided p-value, reject only when the observed
  // shift is in the suspect direction (xs tends below ys, effect < 1/2).
  return r.effect < 0.5 && r.p_value / 2.0 < alpha;
}

}  // namespace rcb
