// ASCII table / CSV emitter for bench output.
//
// Every bench prints the rows the corresponding paper claim is about; this
// keeps the formatting in one place so EXPERIMENTS.md and the captured
// bench_output.txt stay mechanically comparable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rcb {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `precision` significant-ish digits.
  static std::string num(double value, int precision = 4);

  /// Renders with aligned columns.
  void print(std::ostream& os) const;

  /// Renders as CSV.
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rcb
