#include "rcb/stats/regression.hpp"

#include <cmath>
#include <vector>

#include "rcb/common/contracts.hpp"

namespace rcb {

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  RCB_REQUIRE(xs.size() == ys.size());
  RCB_REQUIRE(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());

  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  RCB_REQUIRE(sxx > 0.0);

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

PowerLawFit fit_power_law(std::span<const double> xs,
                          std::span<const double> ys) {
  RCB_REQUIRE(xs.size() == ys.size());
  std::vector<double> lx(xs.size());
  std::vector<double> ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    RCB_REQUIRE(xs[i] > 0.0 && ys[i] > 0.0);
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  const LinearFit lf = fit_linear(lx, ly);
  PowerLawFit fit;
  fit.exponent = lf.slope;
  fit.prefactor = std::exp(lf.intercept);
  fit.r_squared = lf.r_squared;
  return fit;
}

}  // namespace rcb
