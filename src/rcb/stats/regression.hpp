// Least-squares fits used to estimate scaling exponents.
//
// The paper's bounds are power laws (cost ~ T^0.5, ~T^(phi-1), ~sqrt(T/n));
// the benches fit log(y) = alpha * log(x) + log(c) over a sweep and report
// alpha — the measured exponent — alongside the paper's prediction.
#pragma once

#include <span>

namespace rcb {

struct PowerLawFit {
  double exponent = 0.0;   ///< alpha in y = c * x^alpha
  double prefactor = 0.0;  ///< c
  double r_squared = 0.0;  ///< goodness of fit in log space
};

/// Fits y = c * x^alpha by ordinary least squares in log-log space.
/// Requires xs.size() == ys.size() >= 2 and strictly positive data.
PowerLawFit fit_power_law(std::span<const double> xs,
                          std::span<const double> ys);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Ordinary least-squares line fit.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

}  // namespace rcb
