// Scenario-fuzzing harness: generate -> oracle-check -> shrink -> emit.
//
// run_fuzz drives the full loop the rcb_fuzz CLI exposes: sample `cases`
// scenarios deterministically (scenario_gen.hpp), run each through the
// differential oracle set (oracles.hpp), and delta-debug any violation to
// a minimal failing case (shrink.hpp).  Each minimized failure is written
// to `out_dir` twice:
//
//   min_case_<i>.json        the scenario, replayable by rcb_sim --config
//                            or directly via scenario_from_json
//   min_case_<i>.repro.json  an RCB_REPRO record naming (scenario, seed,
//                            trial 0) — feed it to `rcb_replay --verify`
//                            for a bit-identical reproduction, or drop it
//                            into tests/corpus/ to pin the bug as a
//                            permanent regression test
//
// Canary mode self-checks the harness: it installs a known
// ledger-accounting mutation (the adversary's reported spend is inflated
// past its budget) via OracleOptions::outcome_tamper and asserts the
// harness both detects it and shrinks the carrier scenario — a fuzzer
// whose oracles silently went vacuous fails the canary, not the world.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "rcb/testing/oracles.hpp"
#include "rcb/testing/scenario_gen.hpp"

namespace rcb {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t cases = 200;
  /// Directory minimized failures are written into ("" = don't write).
  std::string out_dir;
  /// Run the self-check canary instead of a fuzz sweep.
  bool canary = false;
  std::size_t shrink_evaluations = 150;
  ScenarioGenOptions gen;
  OracleOptions oracles;
  std::ostream* log = nullptr;  ///< progress stream (nullptr = quiet)
};

struct FuzzFailure {
  std::uint64_t case_index = 0;
  Scenario original;
  Scenario minimized;
  std::string oracle;
  std::string detail;
  std::string scenario_path;  ///< empty when out_dir was empty
  std::string record_path;
};

struct FuzzReport {
  std::uint64_t cases_run = 0;
  std::vector<FuzzFailure> failures;
  // Canary-mode outcome.
  bool canary_caught = false;
  std::uint64_t canary_original_size = 0;
  std::uint64_t canary_shrunk_size = 0;

  bool ok() const {
    return failures.empty() || (canary_caught && failures.size() == 1);
  }
};

/// The scenario the canary mutation rides on (exposed so tests can assert
/// the shrink target independently).
Scenario canary_scenario();

/// Formats the RCB_REPRO record written next to a minimized scenario.
std::string fuzz_repro_record(const Scenario& s, const std::string& oracle,
                              const std::string& detail);

FuzzReport run_fuzz(const FuzzOptions& opt);

}  // namespace rcb
