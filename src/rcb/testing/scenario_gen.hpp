// Deterministic scenario-space sampler for the fuzzing harness.
//
// The paper's guarantees are distributional and hold against *any*
// budget-T adversary, so correctness of this reproduction lives in the
// cross product protocol x adversary x engine x faults x CCA x battery —
// far larger than any hand-written test matrix.  generate_scenario(seed, i)
// maps a point of that space to a valid Scenario, bit-identically: the
// same (seed, index) always yields the same scenario, so every fuzz run is
// replayable from two integers and a shrunk failure stays tied to its
// generating coordinates.
//
// Sampled dimensions: all six protocols, every compatible adversary,
// log-uniform budgets, fleet size, eps, faults on/off (crash churn, loss,
// corruption, clock skew, brownout), CCA drift on/off, and battery mode
// (broadcast/naive).  Bounds are tuned so one scenario's full oracle pass
// (runtime/testing/oracles.hpp) stays in the low-millisecond range — the
// harness's throughput is what buys coverage.
#pragma once

#include <cstdint>

#include "rcb/runtime/scenario.hpp"

namespace rcb {

/// Size knobs for the sampler; defaults keep single-scenario oracle time
/// low enough for ~500-case CI sweeps.
struct ScenarioGenOptions {
  Cost max_budget = 1u << 14;      ///< budgets are log-uniform in [0, max]
  std::uint32_t max_n = 48;        ///< broadcast fleet size cap
  std::size_t max_trials = 6;      ///< trials per generated scenario
  bool allow_faults = true;
  bool allow_cca = true;
  bool allow_battery = true;
  /// Multi-channel axis: a fraction of cases become mc_broadcast scenarios
  /// with a channels draw weighted toward C in {1, 2, 4}.
  bool allow_multichannel = true;
};

/// Deterministically samples scenario `index` of fuzz stream `seed`.
/// Postcondition: validate_scenario(result) is empty.
Scenario generate_scenario(std::uint64_t seed, std::uint64_t index,
                           const ScenarioGenOptions& opt = {});

}  // namespace rcb
