#include "rcb/testing/fuzzer.hpp"

#include <filesystem>
#include <fstream>

#include "rcb/common/contracts.hpp"
#include "rcb/testing/shrink.hpp"

namespace rcb {
namespace {

/// Writes `text` to path, creating parent directories.  Returns "" on
/// failure (the harness result still carries the in-memory scenario).
std::string write_file(const std::filesystem::path& path,
                       const std::string& text) {
  std::error_code ec;
  std::filesystem::create_directories(path.parent_path(), ec);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return {};
  out << text << '\n';
  return out ? path.string() : std::string{};
}

void emit_failure(const FuzzOptions& opt, FuzzFailure& failure) {
  if (opt.out_dir.empty()) return;
  const std::filesystem::path dir(opt.out_dir);
  const std::string stem = "min_case_" + std::to_string(failure.case_index);
  failure.scenario_path =
      write_file(dir / (stem + ".json"), scenario_to_json(failure.minimized));
  failure.record_path =
      write_file(dir / (stem + ".repro.json"),
                 "RCB_REPRO " + fuzz_repro_record(failure.minimized,
                                                  failure.oracle,
                                                  failure.detail));
}

void handle_violation(const FuzzOptions& opt, const OracleOptions& oracles,
                      std::uint64_t index, const Scenario& s,
                      const Violation& v, FuzzReport& report) {
  if (opt.log != nullptr) {
    *opt.log << "case " << index << ": oracle '" << v.oracle
             << "' fired: " << v.detail << "\n  scenario: "
             << scenario_to_json(s) << "\n  shrinking...\n";
  }
  const ShrinkResult shrunk = shrink_scenario(
      s, v.oracle,
      [&](const Scenario& candidate) {
        return check_scenario(candidate, oracles);
      },
      opt.shrink_evaluations);

  FuzzFailure failure;
  failure.case_index = index;
  failure.original = s;
  failure.minimized = shrunk.scenario;
  failure.oracle = v.oracle;
  failure.detail = v.detail;
  emit_failure(opt, failure);
  if (opt.log != nullptr) {
    *opt.log << "  minimized (size " << scenario_size(s) << " -> "
             << scenario_size(shrunk.scenario) << ", "
             << shrunk.evaluations << " evals): "
             << scenario_to_json(shrunk.scenario) << "\n";
    if (!failure.scenario_path.empty()) {
      *opt.log << "  wrote " << failure.scenario_path << "\n  wrote "
               << failure.record_path << "\n";
    }
  }
  report.failures.push_back(std::move(failure));
}

}  // namespace

Scenario canary_scenario() {
  // Deliberately over-dressed: the shrinker should strip the fleet, the
  // trials, the faults and the battery while the ledger mutation keeps
  // firing, demonstrating a >= 4x size reduction.
  Scenario s;
  s.protocol = "broadcast";
  s.adversary = "suffix";
  s.budget = 8192;
  s.q = 0.9;
  s.n = 32;
  s.trials = 6;
  s.seed = 11;  // seed % 4 != 0: exercises the statistical crosscheck path
  s.max_epoch_extra = 3;  // bounded epochs, like every generated scenario
  s.battery = 4096;
  s.faults.seed = 7;
  s.faults.loss_rate = 0.1;
  s.faults.corruption_rate = 0.05;
  s.faults.cca_false_busy = 0.05;
  s.faults.cca_missed_detection = 0.05;
  return s;
}

std::string fuzz_repro_record(const Scenario& s, const std::string& oracle,
                              const std::string& detail) {
  ReproContext ctx;
  ctx.master_seed = s.seed;
  ctx.trial = 0;
  ctx.scenario_json = scenario_to_json(s);
  return format_repro_record("fuzz", oracle + ": " + detail,
                             "rcb/testing/fuzzer.cpp", 0, &ctx);
}

FuzzReport run_fuzz(const FuzzOptions& opt) {
  FuzzReport report;

  if (opt.canary) {
    OracleOptions tampered = opt.oracles;
    // The known ledger-accounting mutation: the adversary's reported spend
    // is inflated past its budget, as an off-by-audit bug in a strategy's
    // Budget::take plumbing would do.  Only the budget-accounting oracle
    // can see this, so a vacuous oracle set fails the canary.
    tampered.outcome_tamper = [](TrialOutcome& out) {
      out.adversary_cost += 1e9;
    };
    const Scenario s = canary_scenario();
    report.cases_run = 1;
    report.canary_original_size = scenario_size(s);
    const std::vector<Violation> vs = check_scenario(s, tampered);
    for (const Violation& v : vs) {
      if (v.oracle != "ledger") continue;
      report.canary_caught = true;
      handle_violation(opt, tampered, 0, s, v, report);
      report.canary_shrunk_size =
          scenario_size(report.failures.back().minimized);
      break;
    }
    if (opt.log != nullptr && !report.canary_caught) {
      *opt.log << "CANARY NOT CAUGHT: the ledger oracle is vacuous\n";
    }
    return report;
  }

  for (std::uint64_t i = 0; i < opt.cases; ++i) {
    const Scenario s = generate_scenario(opt.seed, i, opt.gen);
    const std::vector<Violation> vs = check_scenario(s, opt.oracles);
    ++report.cases_run;
    for (const Violation& v : vs) {
      handle_violation(opt, opt.oracles, i, s, v, report);
      break;  // shrink once per case; further violations repeat the story
    }
    if (opt.log != nullptr && (i + 1) % 50 == 0) {
      *opt.log << "  " << (i + 1) << "/" << opt.cases << " scenarios, "
               << report.failures.size() << " failure(s)\n";
    }
  }
  return report;
}

}  // namespace rcb
