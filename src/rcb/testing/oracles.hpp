// Pluggable differential oracles for fuzzed scenarios.
//
// check_scenario runs one scenario through four oracle families and
// returns every violation found:
//
//   "determinism"  — the same (scenario, trial) executed twice yields the
//                    same trajectory digest (the bit-identical-replay
//                    contract everything else builds on).
//   "ledger"       — energy-ledger conservation and adversary budget
//                    accounting: costs are finite and non-negative,
//                    mean <= max, the adversary never spends beyond T,
//                    dead/crashed counts stay within the fleet and only
//                    appear when their causes (battery / crash faults) are
//                    configured; at engine level, every NodeObservation
//                    satisfies sends + listens <= slots and
//                    clear + messages + nacks + noise == listens.
//   "crosscheck"   — event-driven vs dense slotwise engine on an action
//                    profile derived from the scenario: exact equality on
//                    randomness-free profiles, a Bonferroni-corrected
//                    Mann-Whitney gate (stats/rank_test.hpp) otherwise.
//   "metamorphic"  — monotonicity relations the theory implies: larger eps
//                    never increases Fig.1's cost thresholds
//                    (deterministic), and more adversary budget never
//                    *decreases* 1-to-1 delivery latency (rank-gated; the
//                    naive baseline is exempt — the §3.1 halving attack
//                    makes it halt early under jamming by design).
//
// Statistical oracles reject at bonferroni_alpha(family_alpha, comparisons
// counted per scenario), so the per-scenario false-positive probability is
// bounded by family_alpha; across a C-case fuzz run the expected number of
// spurious violations is ~C * family_alpha.  The default 1e-6 makes a
// 500-case sweep effectively deterministic while still flagging gross
// engine disagreement (the calibration is itself under test in
// tests/rank_gate_test.cpp).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rcb/runtime/scenario.hpp"

namespace rcb {

/// One oracle violation: which oracle fired and a human-readable detail.
struct Violation {
  std::string oracle;  ///< "determinism" | "ledger" | "crosscheck" | ...
  std::string detail;
};

struct OracleOptions {
  /// Per-scenario trials examined by the determinism/ledger oracles
  /// (capped, so huge-trial scenarios don't dominate harness time).
  std::size_t trials_cap = 3;
  /// Paired engine runs per statistical crosscheck comparison.
  std::size_t crosscheck_trials = 60;
  /// Trials per arm of the budget-monotonicity comparison.
  std::size_t metamorphic_trials = 12;
  /// Family-wise false-positive bound for the statistical gates of ONE
  /// scenario (split over its comparisons via bonferroni_alpha).
  double family_alpha = 1e-6;
  /// Canary / fault-injection hook: applied to every TrialOutcome before
  /// the oracles see it.  rcb_fuzz --canary installs a known
  /// ledger-accounting mutation here and asserts the harness catches it;
  /// an empty function is the production configuration.
  std::function<void(TrialOutcome&)> outcome_tamper;
};

/// Runs every oracle against `s`; empty result = scenario passed.
std::vector<Violation> check_scenario(const Scenario& s,
                                      const OracleOptions& opt = {});

}  // namespace rcb
