#include "rcb/testing/shrink.hpp"

#include <algorithm>

#include "rcb/common/mathutil.hpp"

namespace rcb {
namespace {

bool faults_enabled(const FaultConfig& f) {
  return f.crash_rate > 0.0 || f.restart_rate > 0.0 || f.loss_rate > 0.0 ||
         f.corruption_rate > 0.0 || f.clock_skew_rate > 0.0 ||
         f.brownout_slot != kNoSlot;
}

bool cca_enabled(const FaultConfig& f) {
  return f.cca_false_busy > 0.0 || f.cca_missed_detection > 0.0 ||
         f.cca_ramp_slots != 0;
}

/// One size-reducing rewrite; returns false when it does not apply (the
/// dimension is already minimal), so the pass can skip a wasted eval.
using Transform = bool (*)(Scenario&);

bool drop_trials(Scenario& s) {
  if (s.trials <= 1) return false;
  s.trials = 1;
  return true;
}
bool halve_trials(Scenario& s) {
  if (s.trials <= 1) return false;
  s.trials /= 2;
  return true;
}
bool drop_nodes(Scenario& s) {
  if ((!s.is_broadcast() && !s.is_multichannel()) || s.n <= 2) return false;
  s.n = 2;
  return true;
}
bool halve_nodes(Scenario& s) {
  if ((!s.is_broadcast() && !s.is_multichannel()) || s.n <= 2) return false;
  s.n /= 2;
  return true;
}
bool drop_channels(Scenario& s) {
  // C=1 is the degeneration boundary: an mc failure that survives this
  // rewrite is a single-channel bug wearing multi-channel clothes.
  if (s.channels <= 1) return false;
  s.channels = 1;
  return true;
}
bool halve_channels(Scenario& s) {
  if (s.channels <= 1) return false;
  s.channels /= 2;
  return true;
}
bool zero_budget(Scenario& s) {
  if (s.budget == 0) return false;
  s.budget = 0;
  return true;
}
bool halve_budget(Scenario& s) {
  if (s.budget == 0) return false;
  s.budget /= 2;
  return true;
}
bool null_adversary(Scenario& s) {
  if (s.adversary == "none") return false;
  s.adversary = "none";
  return true;
}
bool zero_jam_knobs(Scenario& s) {
  if (s.q == 0.0 && s.rate == 0.0) return false;
  s.q = 0.0;
  s.rate = 0.0;
  return true;
}
bool disable_faults(Scenario& s) {
  if (!faults_enabled(s.faults)) return false;
  const FaultConfig keep_cca = s.faults;
  s.faults = FaultConfig{};
  s.faults.cca_false_busy = keep_cca.cca_false_busy;
  s.faults.cca_missed_detection = keep_cca.cca_missed_detection;
  s.faults.cca_ramp_slots = keep_cca.cca_ramp_slots;
  return true;
}
bool disable_cca(Scenario& s) {
  if (!cca_enabled(s.faults)) return false;
  s.faults.cca_false_busy = 0.0;
  s.faults.cca_missed_detection = 0.0;
  s.faults.cca_ramp_slots = 0;
  return true;
}
bool disable_battery(Scenario& s) {
  if (s.battery == 0) return false;
  s.battery = 0;
  return true;
}
bool drop_timeout(Scenario& s) {
  // Never unbound a spoofing duel: without a timeout it only stops at the
  // (huge) default epoch cap, so the "smaller" scenario would be slower.
  if (s.timeout_slots == 0 || s.adversary == "spoof") return false;
  s.timeout_slots = 0;
  return true;
}
bool drop_epoch_extra(Scenario& s) {
  // Floor at 1, not 0: extra == 0 means the protocol's DEFAULT epoch cap
  // (~2^26 slots), so "smaller" would mean vastly slower to replay.
  if (s.max_epoch_extra <= 1) return false;
  s.max_epoch_extra = 1;
  return true;
}

// Aggressive rewrites first: a successful "trials=1" saves every later
// candidate evaluation more time than "trials/=2" would.
constexpr Transform kTransforms[] = {
    drop_trials,   drop_nodes,    drop_channels,   zero_budget,
    null_adversary, disable_faults, disable_cca,   disable_battery,
    drop_timeout,  drop_epoch_extra, zero_jam_knobs, halve_trials,
    halve_nodes,   halve_channels, halve_budget,
};

}  // namespace

std::uint64_t scenario_size(const Scenario& s) {
  const std::uint64_t fleet =
      s.is_broadcast() || s.is_multichannel() ? s.n : 2;
  std::uint64_t size = static_cast<std::uint64_t>(s.trials) * fleet;
  size += s.channels - 1;
  size += s.budget == 0 ? 0 : ceil_log2(s.budget + 1);
  size += s.adversary == "none" ? 0 : 2;
  size += faults_enabled(s.faults) ? 8 : 0;
  size += cca_enabled(s.faults) ? 4 : 0;
  size += s.battery > 0 ? 4 : 0;
  size += s.timeout_slots > 0 ? 2 : 0;
  size += s.max_epoch_extra;
  return size;
}

ShrinkResult shrink_scenario(
    const Scenario& failing, const std::string& oracle,
    const std::function<std::vector<Violation>(const Scenario&)>& check,
    std::size_t max_evaluations) {
  ShrinkResult result;
  result.scenario = failing;
  result.oracle = oracle;

  const auto still_fails = [&](const Scenario& candidate) {
    if (!validate_scenario(candidate).empty()) return false;
    ++result.evaluations;
    const std::vector<Violation> vs = check(candidate);
    return std::any_of(vs.begin(), vs.end(), [&](const Violation& v) {
      return v.oracle == oracle;
    });
  };

  // Greedy fixed point: restart the pass after every accepted rewrite so
  // transforms can compound (e.g. drop_nodes enables a smaller budget to
  // still reproduce).
  bool progressed = true;
  while (progressed && result.evaluations < max_evaluations) {
    progressed = false;
    for (const Transform t : kTransforms) {
      if (result.evaluations >= max_evaluations) break;
      Scenario candidate = result.scenario;
      if (!t(candidate)) continue;
      if (scenario_size(candidate) >= scenario_size(result.scenario)) continue;
      if (still_fails(candidate)) {
        result.scenario = candidate;
        progressed = true;
      }
    }
  }
  return result;
}

}  // namespace rcb
