// Automatic scenario shrinking (delta debugging).
//
// When an oracle fires on a fuzzed scenario, the raw failure is usually
// drowned in irrelevant dimensions — 6 trials, 40 nodes, faults AND CCA
// drift AND a battery all enabled.  shrink_scenario greedily applies
// size-reducing transformations (drop trials and nodes, halve the budget,
// zero the jam knobs, switch off faults / CCA / battery / timeouts, try
// the null adversary) and keeps a candidate whenever the SAME oracle still
// fires on it, iterating to a fixed point under an evaluation budget.
// Because scenarios are pure values and oracles are deterministic
// functions of them (statistical gates fix their seeds), "still fails" is
// a replayable predicate rather than a flaky observation — the classic
// ddmin contract.
//
// The minimized scenario is what lands in tests/corpus/: small enough to
// replay in milliseconds forever after.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rcb/runtime/scenario.hpp"
#include "rcb/testing/oracles.hpp"

namespace rcb {

/// Work-proportional size metric the shrinker minimises: trial count times
/// effective fleet size, plus a tax per enabled feature dimension.  The
/// canary acceptance gate ("shrunk to <= 1/4 of the original") is measured
/// in these units.
std::uint64_t scenario_size(const Scenario& s);

struct ShrinkResult {
  Scenario scenario;       ///< smallest scenario still failing `oracle`
  std::string oracle;      ///< the oracle id that kept firing
  std::size_t evaluations = 0;  ///< oracle-set runs the shrink consumed
};

/// Shrinks `failing` (which must currently trigger a violation whose
/// oracle id is `oracle` under `check`) toward a minimal scenario that
/// still triggers it.  `check` is typically a bind of check_scenario with
/// fixed OracleOptions.  At most `max_evaluations` candidate evaluations
/// are spent; the best scenario found so far is returned regardless.
ShrinkResult shrink_scenario(
    const Scenario& failing, const std::string& oracle,
    const std::function<std::vector<Violation>(const Scenario&)>& check,
    std::size_t max_evaluations = 200);

}  // namespace rcb
