#include "rcb/testing/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "rcb/adversary/mc_strategies.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/channel_plan.hpp"
#include "rcb/sim/jam_schedule.hpp"
#include "rcb/sim/mc_slot_engine.hpp"
#include "rcb/sim/slot_engine.hpp"
#include "rcb/stats/rank_test.hpp"

namespace rcb {
namespace {

// Stream salt for the engine-profile RNG, distinct from both the trial
// streams and the scenario generator's salt.
constexpr std::uint64_t kProfileSalt = 0x0bacc1e5u;

/// Collector shared by all oracles of one check_scenario call.
struct Report {
  std::vector<Violation> violations;

  std::ostringstream& add(const char* oracle) {
    violations.push_back({oracle, {}});
    stream.str({});
    stream.clear();
    return stream;
  }
  void commit() { violations.back().detail = stream.str(); }

  std::ostringstream stream;
};

TrialOutcome run_outcome(const Scenario& s, std::uint64_t trial,
                         const OracleOptions& opt) {
  TrialOutcome out = run_scenario_trial(s, trial);
  if (opt.outcome_tamper) opt.outcome_tamper(out);
  return out;
}

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

// ---------------------------------------------------------------------------
// Oracle (a): digest determinism, and (b) outcome-level ledger accounting.

void check_outcomes(const Scenario& s, const OracleOptions& opt, Report& rep) {
  const std::size_t examined = std::min(s.trials, opt.trials_cap);
  for (std::size_t t = 0; t < examined; ++t) {
    const TrialOutcome a = run_outcome(s, t, opt);
    const TrialOutcome b = run_outcome(s, t, opt);
    if (a.digest != b.digest) {
      rep.add("determinism")
          << "trial " << t << " digests differ: " << to_hex16(a.digest)
          << " vs " << to_hex16(b.digest);
      rep.commit();
    }

    if (!finite_nonneg(a.max_cost) || !finite_nonneg(a.mean_cost) ||
        !finite_nonneg(a.adversary_cost) || !finite_nonneg(a.latency)) {
      rep.add("ledger") << "trial " << t
                        << " has a negative or non-finite cost/latency";
      rep.commit();
      continue;  // the remaining arithmetic checks would be meaningless
    }
    // mean over nodes can exceed no node's max; allow fp rounding slack.
    if (a.mean_cost > a.max_cost * (1.0 + 1e-9) + 1e-9) {
      rep.add("ledger") << "trial " << t << " mean_cost " << a.mean_cost
                        << " exceeds max_cost " << a.max_cost;
      rep.commit();
    }
    // Budget accounting: Budget::take saturates, so no strategy may ever
    // report spend beyond T.
    if (a.adversary_cost > static_cast<double>(s.budget)) {
      rep.add("ledger") << "trial " << t << " adversary spent "
                        << a.adversary_cost << " of budget " << s.budget;
      rep.commit();
    }
    if (s.is_broadcast() || s.is_multichannel()) {
      if (a.dead_count + a.crashed_count > s.n) {
        rep.add("ledger") << "trial " << t << " dead+crashed "
                          << a.dead_count + a.crashed_count << " exceeds n="
                          << s.n;
        rep.commit();
      }
      if (a.dead_count > 0 && s.battery == 0) {
        rep.add("ledger") << "trial " << t
                          << " reports battery deaths with battery=0";
        rep.commit();
      }
      if (a.crashed_count > 0 && s.faults.crash_rate == 0.0) {
        rep.add("ledger") << "trial " << t
                          << " reports crashed nodes with crash_rate=0";
        rep.commit();
      }
      if (a.aborted) {
        rep.add("ledger") << "trial " << t
                          << " reports aborted for a broadcast protocol";
        rep.commit();
      }
    } else {
      if (a.dead_count != 0 || a.crashed_count != 0) {
        rep.add("ledger") << "trial " << t
                          << " reports fleet counters for a 1-to-1 protocol";
        rep.commit();
      }
      if (a.aborted && s.timeout_slots == 0) {
        rep.add("ledger") << "trial " << t
                          << " aborted without a timeout configured";
        rep.commit();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Oracle (c): event-driven vs dense slotwise crosscheck on an action
// profile derived from the scenario, plus engine-level conservation.

/// Slotwise adversary replaying a fixed schedule (the Lemma-1 normal form;
/// deterministic, so both engines must charge identical jam counts).
class ScheduleAdversary final : public SlotAdversary {
 public:
  explicit ScheduleAdversary(const JamSchedule& js) : js_(&js) {}
  bool jam(SlotIndex slot, std::span<const SlotActivity>) override {
    return js_->is_jammed(slot);
  }
  bool jam_run(SlotIndex begin, SlotIndex end, std::span<const SlotActivity>,
               JamRunSink& sink) override {
    // Stateless replay of the schedule; decline if the run alternates more
    // than the sink can encode (the engine then drives jam() per slot).
    for (SlotIndex s = begin; s < end; ++s) {
      if (!sink.append(1, js_->is_jammed(s))) return false;
    }
    return true;
  }
  SlotCount history_window() const override { return 0; }

 private:
  const JamSchedule* js_;
};

struct EngineProfile {
  SlotCount slots = 256;
  std::vector<NodeAction> actions;
  JamSchedule jam = JamSchedule::none();
  CcaModel cca;
  bool randomness_free = false;
  /// Multi-channel extension (channels > 1 only for mc scenarios): hop
  /// sequences for every node plus one committed jam schedule per channel.
  std::uint32_t channels = 1;
  std::vector<ChannelHop> hops;
  std::vector<JamSchedule> mc_jam;

  ChannelPlan plan() const {
    return ChannelPlan{channels, {hops.data(), hops.size()}};
  }
};

/// Derives the engine workload from the scenario: node count from the
/// fleet, payload/probabilities from a dedicated deterministic stream, jam
/// fraction from q, CCA drift from the fault config.  Scenarios whose seed
/// is 0 mod 4 get a randomness-free profile (all probabilities in {0,1},
/// drift off), where the two engines must agree bit-for-bit.
EngineProfile derive_profile(const Scenario& s) {
  EngineProfile prof;
  Rng rng = Rng::stream(s.seed ^ kProfileSalt, 1);
  const std::size_t nodes = s.is_broadcast() || s.is_multichannel()
                                ? 2 + static_cast<std::size_t>(s.n) % 4
                                : 3;
  prof.randomness_free = s.seed % 4 == 0;
  for (std::size_t u = 0; u < nodes; ++u) {
    NodeAction a;
    a.payload = u == 0 ? Payload::kMessage : Payload::kNoise;
    if (prof.randomness_free) {
      a.send_prob = rng.bernoulli(0.4) ? 1.0 : 0.0;
      a.listen_prob = a.send_prob == 0.0 && rng.bernoulli(0.7) ? 1.0 : 0.0;
    } else {
      a.send_prob = 0.5 * rng.uniform_double();
      a.listen_prob = rng.uniform_double();
    }
    prof.actions.push_back(a);
  }
  prof.jam = JamSchedule::blocking_fraction(prof.slots, s.q);
  if (!prof.randomness_free) {
    prof.cca = CcaModel{s.faults.cca_false_busy, s.faults.cca_missed_detection};
  }
  // Multi-channel workload: per-node hop sequences and one committed
  // schedule per channel (fractions fan out from s.q so channels differ).
  prof.channels = s.is_multichannel() ? s.channels : 1;
  if (prof.channels > 1) {
    for (std::size_t u = 0; u < nodes; ++u) {
      prof.hops.push_back(ChannelHop{
          static_cast<std::uint32_t>(rng.uniform_u64(prof.channels)),
          static_cast<std::uint32_t>(rng.uniform_u64(prof.channels))});
    }
    for (std::uint32_t c = 0; c < prof.channels; ++c) {
      const double qc = s.q * static_cast<double>(c + 1) /
                        static_cast<double>(prof.channels);
      prof.mc_jam.push_back(JamSchedule::blocking_fraction(prof.slots, qc));
    }
  }
  return prof;
}

bool obs_equal(const NodeObservation& a, const NodeObservation& b) {
  return a.sends == b.sends && a.listens == b.listens && a.clear == b.clear &&
         a.messages == b.messages && a.nacks == b.nacks &&
         a.noise == b.noise && a.first_message_slot == b.first_message_slot &&
         a.listens_until_first_message == b.listens_until_first_message;
}

/// Engine-level conservation: what one node did must add up, slot by slot.
void check_conservation(const char* engine, const EngineProfile& prof,
                        const SlotwiseResult& r, Report& rep) {
  if (r.jammed_slots != prof.jam.jammed_count()) {
    rep.add("ledger") << engine << " engine charged " << r.jammed_slots
                      << " jammed slots; the committed schedule has "
                      << prof.jam.jammed_count();
    rep.commit();
  }
  for (std::size_t u = 0; u < r.rep.obs.size(); ++u) {
    const NodeObservation& o = r.rep.obs[u];
    const bool ok = o.sends + o.listens <= prof.slots &&
                    o.heard_total() == o.listens &&
                    o.listens_until_first_message <= o.listens &&
                    (o.first_message_slot == kNoSlot ||
                     o.first_message_slot < prof.slots);
    if (!ok) {
      rep.add("ledger") << engine << " engine node " << u
                        << " violates observation conservation (sends="
                        << o.sends << " listens=" << o.listens
                        << " heard=" << o.heard_total() << " slots="
                        << prof.slots << ")";
      rep.commit();
    }
  }
}

/// Multi-channel conservation: the engine's per-(slot, channel) charges
/// must equal the committed schedules' totals, and node observations obey
/// the same per-slot bounds as in the single-channel engines.
void check_mc_conservation(const char* engine, const EngineProfile& prof,
                           const McSlotwiseResult& r, Report& rep) {
  Cost want_charges = 0;
  SlotCount want_jammed_slots = 0;
  for (const JamSchedule& js : prof.mc_jam) {
    want_charges += js.jammed_count();
  }
  for (SlotIndex slot = 0; slot < prof.slots; ++slot) {
    for (const JamSchedule& js : prof.mc_jam) {
      if (js.is_jammed(slot)) {
        ++want_jammed_slots;
        break;
      }
    }
  }
  if (r.jam_charges != want_charges) {
    rep.add("mc_ledger") << engine << " mc engine charged " << r.jam_charges
                         << " (slot, channel) pairs; the committed schedules "
                         << "have " << want_charges;
    rep.commit();
  }
  if (r.jammed_slots != want_jammed_slots) {
    rep.add("mc_ledger") << engine << " mc engine counted " << r.jammed_slots
                         << " jammed slots; the committed schedules cover "
                         << want_jammed_slots;
    rep.commit();
  }
  for (std::size_t u = 0; u < r.rep.obs.size(); ++u) {
    const NodeObservation& o = r.rep.obs[u];
    const bool ok = o.sends + o.listens <= prof.slots &&
                    o.heard_total() == o.listens &&
                    o.listens_until_first_message <= o.listens &&
                    (o.first_message_slot == kNoSlot ||
                     o.first_message_slot < prof.slots);
    if (!ok) {
      rep.add("mc_ledger") << engine << " mc engine node " << u
                           << " violates observation conservation (sends="
                           << o.sends << " listens=" << o.listens
                           << " heard=" << o.heard_total() << " slots="
                           << prof.slots << ")";
      rep.commit();
    }
  }
}

void check_engines(const Scenario& s, const OracleOptions& opt, double alpha,
                   Report& rep) {
  const EngineProfile prof = derive_profile(s);
  FaultConfig fault_cfg = s.faults;
  if (prof.randomness_free) fault_cfg = FaultConfig{};  // keep it exact

  const auto run_engine = [&](bool dense, std::uint64_t stream) {
    FaultPlan faults(fault_cfg);
    FaultPlan* fp = faults.active() ? &faults : nullptr;
    ScheduleAdversary adv(prof.jam);
    Rng rng = Rng::stream(s.seed ^ kProfileSalt, stream);
    return dense ? run_repetition_slotwise_dense(prof.slots, prof.actions,
                                                 adv, rng, prof.cca, fp)
                 : run_repetition_slotwise(prof.slots, prof.actions, adv, rng,
                                           prof.cca, fp);
  };
  const auto run_mc_engine = [&](bool dense, std::uint64_t stream) {
    FaultPlan faults(fault_cfg);
    FaultPlan* fp = faults.active() ? &faults : nullptr;
    McScheduleAdversary adv(prof.mc_jam);
    Rng rng = Rng::stream(s.seed ^ kProfileSalt, stream);
    const ChannelPlan plan = prof.plan();
    return dense ? run_repetition_slotwise_mc_dense(prof.slots, prof.actions,
                                                    plan, adv, rng, prof.cca,
                                                    fp)
                 : run_repetition_slotwise_mc(prof.slots, prof.actions, plan,
                                              adv, rng, prof.cca, fp);
  };
  const bool mc = prof.channels > 1;

  if (prof.randomness_free) {
    if (mc) {
      const McSlotwiseResult ev = run_mc_engine(false, 2);
      const McSlotwiseResult dn = run_mc_engine(true, 3);
      check_mc_conservation("event", prof, ev, rep);
      check_mc_conservation("dense", prof, dn, rep);
      for (std::size_t u = 0; u < prof.actions.size(); ++u) {
        if (!obs_equal(ev.rep.obs[u], dn.rep.obs[u])) {
          rep.add("mc_crosscheck")
              << "randomness-free profile: node " << u
              << " differs between the mc event and mc dense engines";
          rep.commit();
        }
      }
      return;
    }
    const SlotwiseResult ev = run_engine(false, 2);
    const SlotwiseResult dn = run_engine(true, 3);
    check_conservation("event", prof, ev, rep);
    check_conservation("dense", prof, dn, rep);
    for (std::size_t u = 0; u < prof.actions.size(); ++u) {
      if (!obs_equal(ev.rep.obs[u], dn.rep.obs[u])) {
        rep.add("crosscheck")
            << "randomness-free profile: node " << u
            << " differs between the event and dense engines";
        rep.commit();
      }
    }
    return;
  }

  // Statistical mode: per-run energy and reception totals from each
  // engine; identical per-slot marginals imply identical distributions.
  // The same gate covers the multi-channel engine pair (same two
  // comparisons, so the Bonferroni count is unchanged).
  std::vector<double> energy[2], heard[2];
  for (std::size_t k = 0; k < opt.crosscheck_trials; ++k) {
    for (int dense = 0; dense < 2; ++dense) {
      const std::uint64_t stream =
          10 + 2 * k + static_cast<std::uint64_t>(dense);
      const RepetitionResult* rep_result = nullptr;
      SlotwiseResult sc;
      McSlotwiseResult mcr;
      if (mc) {
        mcr = run_mc_engine(dense == 1, stream);
        if (k == 0) {
          check_mc_conservation(dense == 1 ? "dense" : "event", prof, mcr,
                                rep);
        }
        rep_result = &mcr.rep;
      } else {
        sc = run_engine(dense == 1, stream);
        if (k == 0) {
          check_conservation(dense == 1 ? "dense" : "event", prof, sc, rep);
        }
        rep_result = &sc.rep;
      }
      double e = 0.0, h = 0.0;
      for (const NodeObservation& o : rep_result->obs) {
        e += static_cast<double>(o.sends + o.listens);
        h += static_cast<double>(o.messages + o.nacks + o.noise);
      }
      energy[dense].push_back(e);
      heard[dense].push_back(h);
    }
  }
  if (rank_gate_rejects(energy[0], energy[1], alpha)) {
    rep.add(mc ? "mc_crosscheck" : "crosscheck")
        << "per-run energy totals differ between engines "
        << "(Mann-Whitney at alpha=" << alpha << ")";
    rep.commit();
  }
  if (rank_gate_rejects(heard[0], heard[1], alpha)) {
    rep.add(mc ? "mc_crosscheck" : "crosscheck")
        << "per-run reception totals differ between "
        << "engines (Mann-Whitney at alpha=" << alpha << ")";
    rep.commit();
  }
}

// ---------------------------------------------------------------------------
// Oracle: C=1 differential degeneration.  For *every* scenario — faults,
// CCA drift and all — the multi-channel engines at num_channels == 1 must
// reproduce the single-channel engines draw-for-draw: same Rng stream in,
// byte-identical observations and jam accounting out.  This is exact (no
// statistics) because the mc engines are constructed to mirror the
// single-channel consultation and draw order when C == 1.

void check_degeneration(const Scenario& s, Report& rep) {
  const EngineProfile prof = derive_profile(s);
  const FaultConfig& fault_cfg = s.faults;
  const ChannelPlan single{1, {}};

  const auto run_pair = [&](bool dense, std::uint64_t stream) {
    FaultPlan faults_sc(fault_cfg);
    FaultPlan* fp_sc = faults_sc.active() ? &faults_sc : nullptr;
    ScheduleAdversary adv_sc(prof.jam);
    Rng rng_sc = Rng::stream(s.seed ^ kProfileSalt, stream);
    const SlotwiseResult sc =
        dense ? run_repetition_slotwise_dense(prof.slots, prof.actions,
                                              adv_sc, rng_sc, prof.cca, fp_sc)
              : run_repetition_slotwise(prof.slots, prof.actions, adv_sc,
                                        rng_sc, prof.cca, fp_sc);

    FaultPlan faults_mc(fault_cfg);
    FaultPlan* fp_mc = faults_mc.active() ? &faults_mc : nullptr;
    ScheduleAdversary inner(prof.jam);
    McFromSlotAdversary adv_mc(inner);
    Rng rng_mc = Rng::stream(s.seed ^ kProfileSalt, stream);
    const McSlotwiseResult mc =
        dense ? run_repetition_slotwise_mc_dense(prof.slots, prof.actions,
                                                 single, adv_mc, rng_mc,
                                                 prof.cca, fp_mc)
              : run_repetition_slotwise_mc(prof.slots, prof.actions, single,
                                           adv_mc, rng_mc, prof.cca, fp_mc);

    const char* kind = dense ? "dense" : "event";
    if (mc.jam_charges != sc.jammed_slots ||
        mc.jammed_slots != sc.jammed_slots) {
      rep.add("degeneration")
          << kind << " mc engine at C=1 charged " << mc.jam_charges << "/"
          << mc.jammed_slots << " vs single-channel " << sc.jammed_slots;
      rep.commit();
    }
    for (std::size_t u = 0; u < prof.actions.size(); ++u) {
      if (!obs_equal(sc.rep.obs[u], mc.rep.obs[u])) {
        rep.add("degeneration")
            << kind << " mc engine at C=1: node " << u
            << " observations differ from the single-channel engine";
        rep.commit();
      }
    }
  };

  run_pair(false, 4);
  run_pair(true, 5);
}

// ---------------------------------------------------------------------------
// Oracle (d): metamorphic monotonicity.

void check_eps_monotonicity(const Scenario& s, Report& rep) {
  // Deterministic: Fig.1's per-slot probability, halting threshold, and
  // first-epoch index are all derived from ln(8/eps) — a larger eps can
  // only lower them.  This pins the parameter plumbing the E9 sweep rests
  // on, for every scenario (the params are protocol-independent math).
  const double eps_hi = std::min(0.5, s.eps * 4.0);
  const OneToOneParams lo = OneToOneParams::sim(s.eps);
  const OneToOneParams hi = OneToOneParams::sim(eps_hi);
  if (hi.first_epoch() > lo.first_epoch()) {
    rep.add("metamorphic") << "larger eps raised first_epoch: " << s.eps
                           << " -> " << lo.first_epoch() << ", " << eps_hi
                           << " -> " << hi.first_epoch();
    rep.commit();
  }
  const std::uint32_t start = std::max(lo.first_epoch(), hi.first_epoch());
  for (std::uint32_t epoch = start; epoch < start + 3; ++epoch) {
    const double tol = 1e-12;
    if (hi.slot_probability(epoch) > lo.slot_probability(epoch) + tol ||
        hi.halt_threshold(epoch) > lo.halt_threshold(epoch) + tol) {
      rep.add("metamorphic")
          << "larger eps increased a cost threshold at epoch " << epoch;
      rep.commit();
    }
  }
}

void check_budget_monotonicity(const Scenario& s, const OracleOptions& opt,
                               double alpha, Report& rep) {
  // More adversary budget never *decreases* 1-to-1 delivery latency: every
  // unit of T is spent delaying the duel, so latency is stochastically
  // non-decreasing in T.  (The naive broadcast baseline genuinely violates
  // the analogue — the §3.1 halving attack makes it halt early — so the
  // oracle is scoped to the duel protocols where the relation is a
  // theorem-backed invariant.)
  if (!s.is_duel() || s.adversary == "none" || s.budget < 64) return;
  Scenario hi = s;
  hi.budget = s.budget * 4;
  std::vector<double> lat_lo, lat_hi;
  for (std::size_t t = 0; t < opt.metamorphic_trials; ++t) {
    lat_lo.push_back(run_outcome(s, t, opt).latency);
    lat_hi.push_back(run_outcome(hi, t, opt).latency);
  }
  if (rank_gate_rejects(lat_hi, lat_lo, alpha, /*xs_smaller_suspect=*/true)) {
    rep.add("metamorphic")
        << "quadrupling the adversary budget significantly DECREASED "
        << "latency (one-sided Mann-Whitney at alpha=" << alpha << ")";
    rep.commit();
  }
}

}  // namespace

std::vector<Violation> check_scenario(const Scenario& s,
                                      const OracleOptions& opt) {
  Report rep;
  const std::string invalid = validate_scenario(s);
  if (!invalid.empty()) {
    rep.add("generator") << "invalid scenario: " << invalid;
    rep.commit();
    return rep.violations;
  }

  // Count this scenario's statistical comparisons up front so every gate
  // shares one Bonferroni-corrected level.
  const bool stat_crosscheck = s.seed % 4 != 0;
  const bool budget_mono =
      s.is_duel() && s.adversary != "none" && s.budget >= 64;
  const std::size_t comparisons =
      (stat_crosscheck ? 2 : 0) + (budget_mono ? 1 : 0);
  const double alpha =
      bonferroni_alpha(opt.family_alpha, std::max<std::size_t>(1, comparisons));

  check_outcomes(s, opt, rep);
  check_engines(s, opt, alpha, rep);
  check_degeneration(s, rep);
  check_eps_monotonicity(s, rep);
  if (budget_mono) check_budget_monotonicity(s, opt, alpha, rep);
  return rep.violations;
}

}  // namespace rcb
