#include "rcb/testing/scenario_gen.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "rcb/common/contracts.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/channel_plan.hpp"

namespace rcb {
namespace {

// Stream salt so fuzz scenario streams never collide with the trial
// streams the scenarios themselves consume (Rng::stream(scenario.seed, t)).
constexpr std::uint64_t kGenSalt = 0x5cef77a9u;

const char* const kProtocols[] = {"one_to_one", "ksy",   "combined",
                                  "broadcast",  "naive", "sqrt"};
const char* const kBroadcastAdvs[] = {"none", "suffix", "fraction", "random",
                                      "burst"};
const char* const kDuelAdvs[] = {"none",       "send_phase", "nack_phase",
                                 "full_duel",  "both_views", "sym_random",
                                 "spoof"};
const char* const kMcAdvs[] = {"none", "mc_uniform", "mc_focus", "mc_sweep"};

/// Log-uniform budget in [0, max]: pick a magnitude first so small and
/// huge budgets are equally likely (uniform sampling would almost never
/// produce the tiny budgets where off-by-one accounting bugs live).
Cost log_uniform_budget(Rng& rng, Cost max_budget) {
  if (max_budget == 0 || rng.bernoulli(0.1)) return 0;
  const std::uint32_t max_bits = floor_log2(max_budget) + 1;
  const std::uint32_t bits = 1 + static_cast<std::uint32_t>(
                                     rng.uniform_u64(max_bits));
  const Cost hi = std::min<Cost>(max_budget, pow2(bits) - 1);
  const Cost lo = pow2(bits - 1) - 1;
  return lo + rng.uniform_u64(hi - lo + 1);
}

}  // namespace

Scenario generate_scenario(std::uint64_t seed, std::uint64_t index,
                           const ScenarioGenOptions& opt) {
  Rng rng = Rng::stream(seed ^ kGenSalt, index);
  Scenario s;
  s.protocol = kProtocols[rng.uniform_u64(std::size(kProtocols))];
  if (s.is_broadcast()) {
    s.adversary = kBroadcastAdvs[rng.uniform_u64(std::size(kBroadcastAdvs))];
    s.n = 1 + static_cast<std::uint32_t>(rng.uniform_u64(opt.max_n));
  } else {
    s.adversary = kDuelAdvs[rng.uniform_u64(std::size(kDuelAdvs))];
  }
  s.budget = log_uniform_budget(rng, opt.max_budget);
  s.q = rng.uniform_double();
  s.rate = rng.uniform_double();
  // eps log-uniform over the E9 sweep range [0.003, 0.3].
  s.eps = 0.003 * std::pow(100.0, rng.uniform_double());
  s.trials = 1 + rng.uniform_u64(opt.max_trials);
  s.seed = rng.next_u64() >> 12;  // stay in the 2^53 exact-JSON-int range
  // Never 0 (= the protocol's default safety cap, epoch ~26): a fault-laden
  // run whose halt condition stalls would then grind through 2^26-slot
  // epochs.  Capping at first_epoch + [1, 4] bounds every trial while still
  // exercising the epoch-cap (hit_epoch_cap / aborted) code paths.
  s.max_epoch_extra = 1 + static_cast<std::uint32_t>(rng.uniform_u64(4));
  if (s.is_duel()) {
    // The spoofing adversary keeps Fig.1 alive until its budget runs dry;
    // always bound it so a generated case cannot stall the harness.
    if (s.adversary == "spoof" || rng.bernoulli(0.3)) {
      s.timeout_slots = 1u << (10 + rng.uniform_u64(6));
    }
  }
  if (opt.allow_battery && rng.bernoulli(0.25) &&
      (s.protocol == "broadcast" || s.protocol == "naive")) {
    s.battery = 128 + rng.uniform_u64(1u << 14);
  }
  if (opt.allow_faults && rng.bernoulli(0.5)) {
    FaultConfig& f = s.faults;
    f.seed = rng.next_u64() >> 12;
    f.crash_rate = rng.bernoulli(0.5) ? 0.002 * rng.uniform_double() : 0.0;
    f.restart_rate = f.crash_rate > 0.0 ? 0.05 * rng.uniform_double() : 0.0;
    f.crash_fraction = rng.uniform_double();
    f.loss_rate = 0.3 * rng.uniform_double();
    f.corruption_rate = 0.2 * rng.uniform_double();
    f.clock_skew_rate = 0.2 * rng.uniform_double();
    if (rng.bernoulli(0.3)) {
      f.brownout_slot = rng.uniform_u64(1u << 16);
      f.brownout_fraction = rng.uniform_double();
      f.brownout_factor = rng.uniform_double();
    }
  }
  if (opt.allow_cca && rng.bernoulli(0.5)) {
    s.faults.cca_false_busy = 0.2 * rng.uniform_double();
    s.faults.cca_missed_detection = 0.2 * rng.uniform_double();
    s.faults.cca_ramp_slots = rng.uniform_u64(1u << 12);
  }
  // Multi-channel axis, decided last so the single-channel draw sequence
  // above is untouched.  Channels are weighted toward C in {1, 2, 4} — the
  // degeneration boundary, the smallest genuine split, and the acceptance
  // cell — with a thin tail over the full 1..64 range.
  if (opt.allow_multichannel && rng.bernoulli(0.25)) {
    s.protocol = "mc_broadcast";
    s.adversary = kMcAdvs[rng.uniform_u64(std::size(kMcAdvs))];
    s.n = 1 + static_cast<std::uint32_t>(rng.uniform_u64(opt.max_n));
    const double w = rng.uniform_double();
    if (w < 0.25) {
      s.channels = 1;
    } else if (w < 0.55) {
      s.channels = 2;
    } else if (w < 0.80) {
      s.channels = 4;
    } else {
      s.channels = 1 + static_cast<std::uint32_t>(rng.uniform_u64(kMaxChannels));
    }
    s.battery = 0;        // broadcast/naive-only knob
    s.timeout_slots = 0;  // duel-only knob
  }
  RCB_ASSERT(validate_scenario(s).empty());
  return s;
}

}  // namespace rcb
