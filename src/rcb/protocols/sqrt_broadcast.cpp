#include "rcb/protocols/sqrt_broadcast.hpp"

#include <algorithm>
#include <cmath>

#include "rcb/common/contracts.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {

BroadcastNResult run_sqrt_broadcast(std::uint32_t n,
                                    const OneToOneParams& params,
                                    RepetitionAdversary& adversary, Rng& rng,
                                    FaultPlan* faults) {
  RCB_REQUIRE(n >= 1);
  if (faults != nullptr && !faults->active()) faults = nullptr;

  BroadcastNResult result;
  result.n = n;
  result.nodes.resize(n);
  result.nodes[0].informed = true;
  result.nodes[0].informed_epoch = params.first_epoch();
  result.nodes[0].final_status = BroadcastStatus::kInformed;

  bool sender_running = true;
  std::vector<bool> receiver_running(n, true);
  receiver_running[0] = false;  // the sender is not a receiver
  std::uint32_t active_receivers = n - 1;

  std::vector<NodeAction> actions(n);

  std::uint32_t epoch = params.first_epoch();
  for (; epoch <= params.max_epoch && (sender_running || active_receivers > 0);
       ++epoch) {
    result.final_epoch = epoch;
    const SlotCount num_slots = pow2(epoch);
    const double p = params.slot_probability(epoch);
    const double theta = params.halt_threshold(epoch);

    // ---- SEND phase ------------------------------------------------------
    {
      RepetitionContext ctx{epoch, 0, 2, num_slots};
      const JamSchedule jam = adversary.plan(ctx, rng);
      for (NodeId u = 0; u < n; ++u) actions[u] = NodeAction{};
      if (sender_running) actions[0] = NodeAction{p, Payload::kMessage, 0.0};
      for (NodeId u = 1; u < n; ++u) {
        if (receiver_running[u]) actions[u] = NodeAction{0.0, Payload::kNoise, p};
      }
      const auto rep = run_repetition(num_slots, actions, jam, rng, nullptr,
                                      CcaModel{}, faults);
      result.adversary_cost += jam.jammed_count();
      result.latency += num_slots;
      result.nodes[0].cost += rep.obs[0].sends;

      for (NodeId u = 1; u < n; ++u) {
        if (!receiver_running[u]) continue;
        const NodeObservation& obs = rep.obs[u];
        if (obs.messages > 0) {
          result.nodes[u].cost += obs.listens_until_first_message;
          result.nodes[u].informed = true;
          result.nodes[u].informed_epoch = epoch;
          result.nodes[u].terminated_epoch = epoch;
          result.nodes[u].final_status = BroadcastStatus::kTerminated;
          receiver_running[u] = false;
          --active_receivers;
        } else {
          result.nodes[u].cost += obs.listens;
          if (static_cast<double>(obs.noise) < theta) {
            // Quiet channel, no m: the sender must have halted.
            result.nodes[u].terminated_epoch = epoch;
            result.nodes[u].final_status = BroadcastStatus::kTerminated;
            receiver_running[u] = false;
            --active_receivers;
          }
        }
      }
    }

    if (!sender_running && active_receivers == 0) break;

    // ---- NACK phase ------------------------------------------------------
    {
      RepetitionContext ctx{epoch, 1, 2, num_slots};
      const JamSchedule jam = adversary.plan(ctx, rng);
      for (NodeId u = 0; u < n; ++u) actions[u] = NodeAction{};
      if (sender_running) actions[0] = NodeAction{0.0, Payload::kNoise, p};
      for (NodeId u = 1; u < n; ++u) {
        if (receiver_running[u]) actions[u] = NodeAction{p, Payload::kNack, 0.0};
      }
      const auto rep = run_repetition(num_slots, actions, jam, rng, nullptr,
                                      CcaModel{}, faults);
      result.adversary_cost += jam.jammed_count();
      result.latency += num_slots;

      for (NodeId u = 1; u < n; ++u) {
        if (receiver_running[u]) result.nodes[u].cost += rep.obs[u].sends;
      }
      if (sender_running) {
        const NodeObservation& obs = rep.obs[0];
        result.nodes[0].cost += obs.listens;
        // Colliding nacks arrive as noise — equally a reason to continue.
        if (obs.nacks == 0 && static_cast<double>(obs.noise) < theta) {
          result.nodes[0].terminated_epoch = epoch;
          result.nodes[0].final_status = BroadcastStatus::kTerminated;
          sender_running = false;
        }
      }
    }
  }

  for (NodeId u = 0; u < n; ++u) {
    if (result.nodes[u].informed) ++result.informed_count;
    result.max_cost = std::max(result.max_cost, result.nodes[u].cost);
  }
  double total = 0.0;
  for (const auto& node : result.nodes) total += static_cast<double>(node.cost);
  result.mean_cost = total / static_cast<double>(n);
  result.all_informed = (result.informed_count == n);
  result.all_terminated = (!sender_running && active_receivers == 0);
  return result;
}

}  // namespace rcb
