#include "rcb/protocols/ksy.hpp"

#include <array>
#include <cmath>

#include "rcb/common/contracts.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {

namespace {

constexpr NodeId kAlice = 0;
constexpr NodeId kBob = 1;
constexpr NodeId kSpoofer = 2;

double pow2_scaled(double exponent_per_epoch, std::uint32_t epoch) {
  return std::exp2(-exponent_per_epoch * static_cast<double>(epoch));
}

}  // namespace

double KsyParams::alice_send_prob(std::uint32_t epoch) const {
  return clamp_probability(c * pow2_scaled(2.0 - kGoldenRatio, epoch));
}

double KsyParams::alice_listen_prob(std::uint32_t epoch) const {
  return clamp_probability(pow2_scaled(kGoldenRatio - 1.0, epoch));
}

double KsyParams::bob_listen_prob(std::uint32_t epoch) const {
  return clamp_probability(pow2_scaled(kGoldenRatio - 1.0, epoch));
}

OneToOneResult run_ksy(const KsyParams& params, DuelAdversary& adversary,
                       Rng& rng, FaultPlan* faults) {
  RCB_REQUIRE(params.first_epoch >= 1);
  if (faults != nullptr && !faults->active()) faults = nullptr;
  OneToOneResult result;
  bool alice_running = true;
  bool bob_running = true;
  bool bob_informed = false;

  const std::array<std::uint32_t, 3> partition = {0, 1, 0};

  std::uint32_t epoch = params.first_epoch;
  for (; epoch <= params.max_epoch && (alice_running || bob_running); ++epoch) {
    result.final_epoch = epoch;
    const SlotCount num_slots = pow2(epoch);
    const double pa = params.alice_send_prob(epoch);
    const double pl = params.alice_listen_prob(epoch);
    const double pb = params.bob_listen_prob(epoch);

    DuelPhaseContext ctx{epoch, DuelPhase::kSend, num_slots, pa, alice_running,
                         bob_running};
    DuelPlan plan = adversary.plan(ctx, rng);

    std::array<NodeAction, 3> actions = {};
    if (alice_running) actions[kAlice] = NodeAction{pa, Payload::kMessage, pl};
    if (bob_running) actions[kBob] = NodeAction{0.0, Payload::kNoise, pb};
    if (plan.spoof_nack_prob > 0.0) {
      // Spoofed traffic in KSY's single phase can only add noise/collisions;
      // neither party's decisions read unauthenticated messages.
      actions[kSpoofer] = NodeAction{plan.spoof_nack_prob, Payload::kNack, 0.0};
    }

    const std::array<JamSchedule, 2> views = {plan.alice_view, plan.bob_view};
    RepetitionResult rep = run_repetition_luniform(
        num_slots, std::span<const NodeAction>(actions.data(), 3),
        std::span<const std::uint32_t>(partition.data(), 3),
        std::span<const JamSchedule>(views.data(), 2), rng, nullptr,
        CcaModel{}, faults);

    result.latency += num_slots;
    result.adversary_cost +=
        plan.alice_view.jammed_count() + plan.bob_view.jammed_count();
    result.adversary_cost += adversary.budget().take(rep.obs[kSpoofer].sends);

    if (alice_running) {
      const NodeObservation& alice = rep.obs[kAlice];
      result.alice_cost += alice.sends + alice.listens;
      // Noisy-fraction estimate from Alice's own listening sample; spoofed
      // nacks are counted as noise because Alice does not trust them.
      const double heard = static_cast<double>(alice.heard_total());
      const double noisy = static_cast<double>(alice.noise + alice.nacks);
      if (heard == 0.0 ||
          noisy / heard < params.noise_fraction_threshold) {
        alice_running = false;  // channel quiet: Bob got m w.h.p.
      }
    }

    if (bob_running) {
      const NodeObservation& bob = rep.obs[kBob];
      if (bob.messages > 0) {
        result.bob_cost += bob.listens_until_first_message;
        bob_informed = true;
        bob_running = false;
      } else {
        result.bob_cost += bob.listens;
        const double heard = static_cast<double>(bob.heard_total());
        const double noisy = static_cast<double>(bob.noise + bob.nacks);
        if (heard == 0.0 ||
            noisy / heard < params.noise_fraction_threshold) {
          bob_running = false;  // quiet epoch with no m: Alice is gone
        }
      }
    }
  }

  result.hit_epoch_cap = (alice_running || bob_running);
  result.alice_halted = !alice_running;
  result.bob_halted = !bob_running;
  result.delivered = bob_informed;
  return result;
}

}  // namespace rcb
