// Steppable engine for the Figure-2 protocol.
//
// run_broadcast_n() (broadcast_n.hpp) executes a whole run for Monte-Carlo
// workloads.  BroadcastNEngine exposes the same semantics one repetition at
// a time, with full read access to per-node state — for narration tools,
// debuggers, tests that assert on intermediate states, and experiment
// harnesses that adapt mid-run (e.g. the battery example).  The runner is
// implemented on top of this engine, so the two cannot drift apart.
#pragma once

#include <cstdint>
#include <vector>

#include "rcb/adversary/strategies.hpp"
#include "rcb/common/types.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {

/// Live per-node state, readable between repetitions.
struct BroadcastNodeState {
  BroadcastStatus status = BroadcastStatus::kUninformed;
  double S = 16.0;
  double n_estimate = 0.0;
  Cost cost = 0;
  bool informed = false;
  std::uint32_t informed_epoch = 0;
  std::uint32_t terminated_epoch = 0;
};

class BroadcastNEngine {
 public:
  /// Node 0 is the sender and starts informed.  `faults` (optional, not
  /// owned, must outlive the engine) injects crash/restart churn, channel
  /// faults and battery brownouts; see run_broadcast_n.
  BroadcastNEngine(std::uint32_t n, const BroadcastNParams& params,
                   FaultPlan* faults = nullptr);

  /// Runs the next repetition (advancing to the next epoch when the current
  /// one is exhausted, resetting S_u per Fig. 2).  Returns false when the
  /// execution is over: every node terminated/died, or the epoch cap was
  /// exceeded.  Calling step() after it returned false is a no-op returning
  /// false.
  bool step(RepetitionAdversary& adversary, Rng& rng);

  /// Runs to completion.
  void run(RepetitionAdversary& adversary, Rng& rng);

  // -- observers ------------------------------------------------------------
  std::uint32_t n() const { return n_; }
  const BroadcastNParams& params() const { return params_; }
  /// Epoch of the *next* repetition to execute (current epoch while inside
  /// one).
  std::uint32_t epoch() const { return epoch_; }
  /// Repetition index within the current epoch (0-based, next to execute).
  std::uint64_t repetition() const { return repetition_; }
  std::uint32_t active_nodes() const { return active_; }
  bool finished() const { return finished_; }
  SlotCount latency() const { return latency_; }
  Cost adversary_cost() const { return adversary_cost_; }
  /// Slots elapsed when the last node became informed (0 until then).
  SlotCount informed_latency() const { return informed_latency_; }
  const std::vector<BroadcastNodeState>& nodes() const { return nodes_; }

  /// Packages the current state as a BroadcastNResult (valid at any point;
  /// typically called once finished()).
  BroadcastNResult result() const;

 private:
  void begin_epoch();
  void sync_crash_states();

  std::uint32_t n_;
  BroadcastNParams params_;
  FaultPlan* faults_ = nullptr;
  std::uint32_t epoch_;
  std::uint64_t repetition_ = 0;
  std::uint64_t repetitions_in_epoch_ = 0;
  std::uint32_t active_;
  bool finished_ = false;
  SlotCount latency_ = 0;
  SlotCount informed_latency_ = 0;
  std::uint64_t informed_count_ = 1;
  Cost adversary_cost_ = 0;
  std::vector<BroadcastNodeState> nodes_;
  std::vector<NodeAction> actions_;
};

}  // namespace rcb
