#include "rcb/protocols/oblivious_pair.hpp"

#include <cmath>

#include "rcb/common/contracts.hpp"

namespace rcb {
namespace {

/// One slot of the game: both parties flip their coins and pay for what
/// they do; delivery happens iff Alice sent, Bob listened, and no jam.
void step(double a, double b, bool jammed, Rng& rng, PairGameResult& r) {
  const bool alice_acts = rng.bernoulli(a);
  const bool bob_acts = rng.bernoulli(b);
  if (alice_acts) ++r.alice_cost;
  if (bob_acts) ++r.bob_cost;
  ++r.slots;
  if (alice_acts && bob_acts && !jammed) r.delivered = true;
}

}  // namespace

PairGameResult play_stay_below(Cost T, double delta, SlotCount max_slots,
                               ThresholdAdversary& adversary, Rng& rng) {
  RCB_REQUIRE(T > 0);
  RCB_REQUIRE(delta > 0.0 && delta < 1.0);
  const double t = static_cast<double>(T);
  const double a = std::pow(t, delta - 1.0);
  const double b = std::pow(t, -delta);

  PairGameResult r;
  while (!r.delivered && r.slots < max_slots) {
    const bool jammed = adversary.jam(a, b);
    step(a, b, jammed, rng, r);
  }
  r.adversary_cost = adversary.spent();
  return r;
}

PairGameResult play_exhaust(Cost T, double burn_prob,
                            ThresholdAdversary& adversary, Rng& rng) {
  RCB_REQUIRE(T > 0);
  RCB_REQUIRE(burn_prob > 0.0 && burn_prob <= 1.0);
  RCB_REQUIRE(burn_prob * burn_prob >
              1.0 / static_cast<double>(T));  // must trip the threshold

  PairGameResult r;
  // Burn phase: the adversary jams every slot until its budget is gone.
  while (adversary.spent() < T && !r.delivered) {
    const bool jammed = adversary.jam(burn_prob, burn_prob);
    step(burn_prob, burn_prob, jammed, rng, r);
  }
  // Finish phase: budget exhausted, shout once.
  while (!r.delivered) {
    const bool jammed = adversary.jam(1.0, 1.0);
    step(1.0, 1.0, jammed, rng, r);
  }
  r.adversary_cost = adversary.spent();
  return r;
}

}  // namespace rcb
