// Multi-channel 1-to-n broadcast with epoch-based random hopping — the
// Chen–Zheng-style extension of the paper's single-channel broadcast
// (PAPERS.md: arXiv 2001.03936, arXiv 1904.06328).
//
// The network has C channels (sim/channel_plan.hpp); the adversary splits
// its jamming budget across them per slot (McSlotAdversary).  The protocol
// is the epoch/phase structure of run_sqrt_broadcast lifted onto the
// multi-channel slotwise engine:
//
//   Epoch i has a SEND phase and a NACK phase of 2^i slots each, with
//   per-slot probability p_i and halting threshold theta_i from
//   OneToOneParams.  At the start of each phase every node draws a fresh
//   cyclic hop sequence (start, stride) uniformly from the trial RNG —
//   epoch-based random hopping, so a jammer that concentrates on one
//   channel blocks only an expected 1/C of the traffic.
//
//   SEND phase:  the sender transmits m w.p. p_i on its hop channel; an
//   uninformed receiver listens w.p. min(1, C * p_i) on its own hop
//   channel.  Independent uniform hops coincide w.p. 1/C per slot, so the
//   expected receptions per phase match the single-channel protocol while
//   the listening cost scales by C — the price Chen–Zheng show to be
//   near-optimal up to polylog factors.  A receiver that heard m halts
//   informed; one that heard a quiet channel (noise below theta_i)
//   concludes the sender has halted and halts too.
//
//   NACK phase:  roles swap — still-uninformed receivers nack w.p. p_i,
//   the sender listens w.p. min(1, C * p_i), and halts only on a quiet,
//   nack-free phase.
//
// With C=1 the hop draws are skipped entirely, so the execution is the
// sqrt protocol's structure driven by the (bit-identically degenerate)
// multi-channel engine.
#pragma once

#include <cstdint>

#include "rcb/adversary/slot_adversary.hpp"
#include "rcb/common/types.hpp"
#include "rcb/protocols/broadcast_n.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/faults.hpp"

namespace rcb {

/// Runs the multi-channel broadcast with n nodes (node 0 the sender) over
/// `num_channels` channels against a budget-splitting slot adversary.
/// `params` supplies the epoch schedule (slot_probability, halt_threshold,
/// first/max epoch) exactly as for run_sqrt_broadcast.
BroadcastNResult run_mc_broadcast(std::uint32_t n, std::uint32_t num_channels,
                                  const OneToOneParams& params,
                                  McSlotAdversary& adversary, Rng& rng,
                                  FaultPlan* faults = nullptr);

}  // namespace rcb
