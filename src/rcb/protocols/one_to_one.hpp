// 1-to-1 BROADCAST — the paper's Figure 1 protocol (Theorem 1).
//
// Alice wants to deliver an authenticated message m to Bob across the
// jammed channel; both parties' transmissions can be authenticated, and the
// adversary is 2-uniform.  Expected cost is O(sqrt(T ln(1/eps)) +
// ln(1/eps)) with success probability >= 1 - eps, and latency O(T).
//
// The paper's pseudocode figure is an image in the available text, so the
// protocol is reconstructed from the prose and the Theorem 1 proof:
//
//   Epochs are indexed i >= 11 + lg ln(8/eps); epoch i consists of a SEND
//   phase and a NACK phase of 2^i slots each, with per-slot probability
//   p_i = sqrt(ln(8/eps) / 2^(i-1)).
//
//   SEND phase:  Alice transmits m w.p. p_i per slot.  Bob (uninformed)
//   listens w.p. p_i per slot; upon receiving m he is informed and halts
//   (stops listening immediately, never sends a nack).  If the phase ends
//   with Bob uninformed and his observed noisy-slot count below
//   theta_i = p_i * 2^(i-1) / 4, he concludes Alice has already halted and
//   halts too (the proof's "Alice has halted prematurely" case).
//
//   NACK phase:  Bob (still uninformed) transmits a nack w.p. p_i per
//   slot.  Alice listens w.p. p_i per slot.  At the phase end Alice halts
//   iff she heard no nack and her noisy-slot count is below theta_i
//   (either Bob was informed and silent, or Bob halted); otherwise she
//   proceeds to epoch i + 1.
//
// The threshold theta_i is 1/4 of the expected jam count when half the
// phase is jammed, exactly the constant used in the proof's Chernoff
// arguments.
#pragma once

#include <cstdint>

#include "rcb/adversary/two_uniform.hpp"
#include "rcb/common/types.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/faults.hpp"

namespace rcb {

struct OneToOneParams {
  /// Tunable failure bound (Theorem 1's eps).
  double eps = 0.01;
  /// The epoch index offset: first epoch is offset + ceil(lg ln(8/eps)).
  /// The paper uses 11; smaller values shrink the attack-free cost floor at
  /// the (empirically negligible at these scales) price of looser Chernoff
  /// slack in the earliest epochs.
  std::uint32_t first_epoch_offset = 11;
  /// Hard epoch cap so adversaries with huge budgets terminate the sim.
  std::uint32_t max_epoch = 40;
  /// Halting threshold as a fraction of p_i * 2^(i-1); the paper's proofs
  /// use 1/4.
  double halt_threshold_factor = 0.25;
  /// Wall-clock abort: when > 0 and the slots elapsed reach this bound with
  /// either party still running, the run is cut off and reported as
  /// aborted rather than looping toward max_epoch.  Deployments use this
  /// to bound the damage of a permanently-jammed channel; 0 disables.
  SlotCount timeout_slots = 0;

  /// Paper-faithful constants.
  static OneToOneParams theory(double eps);
  /// Simulation-scale constants: identical functional forms, first epoch
  /// pulled down so no-attack executions cost O(ln 1/eps) slots in practice.
  static OneToOneParams sim(double eps);

  /// First epoch index i0 implied by eps and first_epoch_offset.
  std::uint32_t first_epoch() const;
  /// Per-slot probability p_i (clamped to 1).
  double slot_probability(std::uint32_t epoch) const;
  /// Halting threshold theta_i.
  double halt_threshold(std::uint32_t epoch) const;
};

/// Outcome of one full execution.
struct OneToOneResult {
  bool delivered = false;      ///< Bob received m
  bool alice_halted = false;
  bool bob_halted = false;
  bool hit_epoch_cap = false;  ///< execution was truncated at max_epoch
  /// True when timeout_slots elapsed with a party still running; the
  /// protocol gave up rather than halting by its own rules.
  bool aborted = false;
  Cost alice_cost = 0;
  Cost bob_cost = 0;
  Cost adversary_cost = 0;     ///< T actually spent (jamming + spoofed sends)
  SlotCount latency = 0;       ///< slots elapsed until the last party halted
  std::uint32_t final_epoch = 0;

  Cost max_cost() const { return alice_cost > bob_cost ? alice_cost : bob_cost; }
};

/// Runs the protocol to completion against `adversary`.  `faults`
/// (optional) applies the channel faults of sim/faults.hpp to every phase;
/// crash churn uses node ids 0 = Alice, 1 = Bob.
OneToOneResult run_one_to_one(const OneToOneParams& params,
                              DuelAdversary& adversary, Rng& rng,
                              FaultPlan* faults = nullptr);

}  // namespace rcb
