// The strawman 1-to-n halting rule the paper argues against (section 3.1).
//
// "A natural halting criterion is to stop when u has heard the message a
// sufficient number of times" — identical rate dynamics to Figure 2, but a
// node terminates as soon as one repetition delivers m more than the
// threshold number of times, with no helper stage and no n-estimate.
// Against an adversary that meters its jamming, nodes peel off in waves and
// the last survivors inherit the whole fight: the per-node cost degrades
// from ~sqrt(T/n) toward ~sqrt(T) (bench E6 demonstrates the gap).
#pragma once

#include "rcb/protocols/broadcast_n.hpp"

namespace rcb {

/// Runs the halt-on-count baseline with the same parameter set as Fig. 2.
/// The returned BroadcastNResult uses kTerminated/kInformed statuses only.
BroadcastNResult run_naive_broadcast(std::uint32_t n,
                                     const BroadcastNParams& params,
                                     RepetitionAdversary& adversary, Rng& rng,
                                     FaultPlan* faults = nullptr);

}  // namespace rcb
