// 1-to-n BROADCAST — the paper's Figure 2 protocol (Theorem 3).
//
// A single sender must deliver an authenticated message m to all n nodes;
// n and the adversary budget T are unknown.  Per-node cost is
// O(sqrt(T/n) log^4 T + log^6 n) w.h.p. and latency O(T + n log^2 n).
//
// Epoch i consists of b*i^2 repetitions of 2^i slots.  Every node carries a
// rate variable S_u (reset to 16 at each epoch start).  Per slot of a
// repetition, an informed/helper node sends m with probability S_u/2^i, an
// uninformed node sends *noise* with the same probability (so everyone can
// gauge n against 2^i), and every node listens with probability
// S_u*d*i^3/2^i.  At the repetition end, with C_u the clear slots heard and
// C'_u = max(0, C_u - S_u*d*i^3/2), the node updates
// S_u <- S_u * 2^(C'_u / (S_u*d*i^4)), then executes at most one of:
//   1. S_u > 360*2^(i/2)                        -> terminate (safety valve)
//   2. uninformed and m heard                   -> informed
//   3. informed and m heard > d*i^3/200 times   -> helper, n_u = 2^i/S_u^2
//   4. helper and S_u >= 360*sqrt(2^i/n_u)      -> terminate
//
// Parameterisation.  The paper's constants (b >= 10, d ~ 80, exponent-3
// listening, growth damping i) need epoch ~25 (33M-slot repetitions) before
// per-slot probabilities are even well formed — far beyond laptop scale.
// BroadcastNParams keeps every functional form but exposes the constants
// and polylog exponents; theory() is paper-faithful, sim() is the
// calibrated laptop-scale preset used by the benches (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <vector>

#include "rcb/adversary/strategies.hpp"
#include "rcb/common/types.hpp"
#include "rcb/rng/rng.hpp"
#include "rcb/sim/cca.hpp"
#include "rcb/sim/faults.hpp"

namespace rcb {

/// Node status, in the order of Figure 2's case analysis.  kDead is the
/// battery-exhaustion state of the optional node_energy_budget extension —
/// unlike kTerminated it is a failure, not a decision.  kCrashed is the
/// fault-injection state (sim/faults.hpp): the node is down and may later
/// restart with its volatile state (S_u, informedness) wiped.
enum class BroadcastStatus : std::uint8_t {
  kUninformed,
  kInformed,
  kHelper,
  kTerminated,
  kDead,
  kCrashed,
};

struct BroadcastNParams {
  std::uint32_t first_epoch = 6;
  std::uint32_t max_epoch = 30;  ///< safety cap for simulation
  double b = 10.0;               ///< repetitions multiplier
  double d = 80.0;               ///< listen-rate multiplier
  double initial_S = 16.0;
  double rep_exponent = 2.0;     ///< repetitions = ceil(b * i^rep_exponent)
  double listen_exponent = 3.0;  ///< listen factor = d * i^listen_exponent
  /// Growth damping gamma: S_u multiplies by 2^(C'_u / (S_u * LF * gamma))
  /// where LF = d * i^listen_exponent and
  /// gamma = growth_damping_const * i^growth_damping_exp.
  /// The paper has gamma = i (divisor S_u d i^4).
  double growth_damping_const = 1.0;
  double growth_damping_exp = 1.0;
  /// Clear-slot baseline beta: C'_u = max(0, C_u - beta * E[listens]).
  /// The paper uses 1/2; the sim preset lowers it so that S_u growth does
  /// not stall at the channel-equilibrium point before reaching the
  /// helper-halt threshold (see DESIGN.md §2).
  double clear_baseline = 0.5;
  /// Helper promotion: m heard more than LF / helper_threshold_div times.
  double helper_threshold_div = 200.0;
  double term1_mult = 360.0;  ///< Case 1: S_u > term1_mult * 2^(i/2)
  double term4_mult = 360.0;  ///< Case 4: S_u >= term4_mult * sqrt(2^i/n_u)
  /// Clear-channel-assessment error model for every listener (environment
  /// property rather than a protocol knob; kept here so a single params
  /// struct fully describes a run).  Bench E12 sweeps it.
  CcaModel cca;
  /// Per-node battery capacity in slot-units; 0 means unlimited.  A node
  /// whose spend reaches the capacity dies (stops participating, counted
  /// in BroadcastNResult::dead_count).  This models the paper's motivating
  /// scenario — resource-competitiveness is exactly the property that the
  /// adversary goes bankrupt before the fleet does (section 1.1).
  Cost node_energy_budget = 0;
  /// Sim-mode extension (see DESIGN.md §2): helpers that keep crossing the
  /// hearing threshold update n_u to max(n_u, 2^i/S_u^2).  At laptop scale
  /// the first promotion can fire in the dense regime where S_u is far
  /// above sqrt(2^i/n), making n_u a gross underestimate of n and the halt
  /// threshold unreachable; re-estimation adopts the sparse-regime crossing
  /// (S_u ~ sqrt(2^i/n)), which is the estimate the paper's analysis is
  /// actually about.  The paper's constants make early promotion impossible
  /// (Lemma 4), so theory() disables this.
  bool helper_reestimate = false;

  /// Paper-faithful constants (use only at tiny scale in structural tests).
  static BroadcastNParams theory();
  /// Laptop-scale preset: same forms, constants calibrated so that with no
  /// jamming all nodes terminate within ~lg n + O(1) epochs.
  static BroadcastNParams sim();

  std::uint64_t repetitions(std::uint32_t epoch) const;
  double listen_factor(std::uint32_t epoch) const;
  double growth_damping(std::uint32_t epoch) const;
  double helper_threshold(std::uint32_t epoch) const;
};

/// Per-node summary of an execution.
struct BroadcastNodeOutcome {
  BroadcastStatus final_status = BroadcastStatus::kUninformed;
  bool informed = false;          ///< ever heard m
  Cost cost = 0;
  double final_S = 0.0;
  double n_estimate = 0.0;        ///< n_u if it became a helper, else 0
  std::uint32_t informed_epoch = 0;
  std::uint32_t terminated_epoch = 0;
};

struct BroadcastNResult {
  std::uint32_t n = 0;
  bool all_informed = false;
  bool all_terminated = false;  ///< every node terminated *by choice*
  /// True when the run was cut off at max_epoch with nodes still active —
  /// the graceful-degradation signal that the protocol did not converge.
  bool hit_epoch_cap = false;
  std::uint64_t informed_count = 0;
  std::uint64_t dead_count = 0;  ///< battery-exhausted nodes (extension)
  std::uint64_t crashed_count = 0;  ///< fault-injected nodes down at the end
  Cost max_cost = 0;
  double mean_cost = 0.0;
  Cost adversary_cost = 0;
  SlotCount latency = 0;          ///< slots until the last node terminated
  /// Slots elapsed when the last node became informed (0 if never, or n=1).
  SlotCount informed_latency = 0;
  std::uint32_t final_epoch = 0;
  std::vector<BroadcastNodeOutcome> nodes;
};

/// Runs Figure 2 with n nodes (node 0 is the sender and starts informed)
/// against a 1-uniform repetition adversary.  `faults` (optional) injects
/// the device/environment faults of sim/faults.hpp: the engine additionally
/// tracks crash/restart churn at repetition granularity (crashed nodes stop
/// holding up termination; a restarted node rejoins uninformed with a fresh
/// S_u — the sender re-reads m from stable storage) and applies battery
/// brownouts to node_energy_budget.
BroadcastNResult run_broadcast_n(std::uint32_t n,
                                 const BroadcastNParams& params,
                                 RepetitionAdversary& adversary, Rng& rng,
                                 FaultPlan* faults = nullptr);

}  // namespace rcb
