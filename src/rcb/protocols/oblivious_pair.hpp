// Oblivious pair strategies for replaying the Theorem-2 lower bound.
//
// Theorem 2's proof reduces any 1-to-1 protocol to an *oblivious* pair:
// Alice commits to a send-probability vector (a_i) and Bob to a listen
// vector (b_i) before execution; communication succeeds in the first slot
// where Alice sends, Bob listens, and the slot is unjammed.  Against the
// announced-budget threshold adversary (adversary/threshold.hpp) the proof
// shows E(A)·E(B) >= (1 - O(eps)) T regardless of the vectors chosen.
//
// This module simulates that game in the 0/1 cost model and exposes the two
// strategy families the proof analyses:
//   * stay-below: constant a = T^(delta-1), b = T^(-delta) with a*b = 1/T,
//     so the adversary never jams and success takes ~T slots;
//   * exhaust: a*b just above 1/T for the first T slots (all jammed), then
//     a = b = 1.
#pragma once

#include <cstdint>

#include "rcb/adversary/threshold.hpp"
#include "rcb/common/types.hpp"
#include "rcb/rng/rng.hpp"

namespace rcb {

/// Outcome of one oblivious-pair game.
struct PairGameResult {
  bool delivered = false;
  Cost alice_cost = 0;
  Cost bob_cost = 0;
  Cost adversary_cost = 0;
  SlotCount slots = 0;
};

/// Stay-below strategy: a = T^(delta-1), b = T^(-delta) every slot, so
/// a*b = 1/T and the threshold adversary never fires.  Runs until delivery
/// or `max_slots`.
PairGameResult play_stay_below(Cost T, double delta, SlotCount max_slots,
                               ThresholdAdversary& adversary, Rng& rng);

/// Exhaust strategy: both parties act with probability `burn_prob` (chosen
/// so a*b > 1/T) until the adversary has spent its budget, then act with
/// probability 1 and finish.
PairGameResult play_exhaust(Cost T, double burn_prob,
                            ThresholdAdversary& adversary, Rng& rng);

}  // namespace rcb
