// Golden-ratio 1-to-1 baseline after King, Saia & Young (PODC 2011).
//
// The paper compares Theorem 1 against KSY's Las Vegas protocol with
// expected cost O(T^(phi-1) + 1) ≈ O(T^0.62), which works even when Bob's
// messages cannot be authenticated (the adversary can spoof them).  KSY has
// no public implementation; this is a reconstruction that preserves the
// cost anatomy the comparison depends on:
//
//   Epoch i lasts 2^i slots.  Alice transmits m with per-slot probability
//   p_A = c * 2^(-(2-phi) i) and listens with p_L = 2^(-(phi-1) i); Bob
//   listens with p_B = 2^(-(phi-1) i).  Expected per-epoch costs are
//   ~c * 2^((phi-1) i) for Alice and ~2^((2-phi) i) for Bob, and the
//   expected number of successful deliveries in an unjammed epoch is
//   p_A * p_B * 2^i = c, a constant.
//
//   Bob halts upon receiving m.  Both parties estimate the jamming level
//   from their own listening samples; a party halts at the end of an epoch
//   whose observed noisy fraction is below 1/4 (Bob additionally requires
//   that he failed to receive m, which after an unjammed epoch has
//   probability e^-c).  Crucially, *no decision ever trusts a received
//   message other than the authenticated m*, which is why spoofed nacks—
//   fatal to the Figure-1 protocol's competitiveness — do nothing here.
//
// To force the protocol past epoch i the adversary must jam a constant
// fraction of its slots (cost Omega(2^i)), at which point the max per-party
// cost is Theta(2^((phi-1) i)) = Theta(T^(phi-1)); Theorem 5 shows this
// exponent is optimal against spoofing adversaries.
#pragma once

#include <cstdint>

#include "rcb/adversary/two_uniform.hpp"
#include "rcb/common/types.hpp"
#include "rcb/protocols/one_to_one.hpp"
#include "rcb/rng/rng.hpp"

namespace rcb {

struct KsyParams {
  /// Expected deliveries per unjammed epoch (failure e^-c per epoch).
  double c = 4.0;
  std::uint32_t first_epoch = 6;
  std::uint32_t max_epoch = 40;
  /// A party keeps running while its observed noisy fraction >= this.
  double noise_fraction_threshold = 0.25;

  double alice_send_prob(std::uint32_t epoch) const;
  double alice_listen_prob(std::uint32_t epoch) const;
  double bob_listen_prob(std::uint32_t epoch) const;
};

/// Runs the KSY-style protocol; reuses OneToOneResult for comparability.
/// `faults` (optional) applies the channel faults of sim/faults.hpp.
OneToOneResult run_ksy(const KsyParams& params, DuelAdversary& adversary,
                       Rng& rng, FaultPlan* faults = nullptr);

}  // namespace rcb
