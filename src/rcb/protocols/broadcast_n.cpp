#include "rcb/protocols/broadcast_n.hpp"

#include "rcb/protocols/broadcast_engine.hpp"

#include <algorithm>
#include <cmath>

#include "rcb/common/contracts.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {

BroadcastNParams BroadcastNParams::theory() {
  BroadcastNParams p;
  p.first_epoch = 8;
  p.max_epoch = 30;
  p.b = 10.0;
  p.d = 80.0;
  p.rep_exponent = 2.0;
  p.listen_exponent = 3.0;
  p.growth_damping_const = 1.0;
  p.growth_damping_exp = 1.0;  // gamma = i, i.e. divisor S_u * d * i^4
  p.helper_threshold_div = 200.0;
  p.term1_mult = 360.0;
  p.term4_mult = 360.0;
  return p;
}

BroadcastNParams BroadcastNParams::sim() {
  BroadcastNParams p;
  p.first_epoch = 5;
  p.max_epoch = 26;
  p.b = 4.0;
  p.rep_exponent = 1.0;
  p.d = 1.0;
  p.listen_exponent = 1.0;
  // initial_S = 4 (paper: 16): with theta = 1 promotion this keeps the
  // dense-regime hearing rate below the promotion threshold (the sim-scale
  // analogue of Lemma 4) and cuts the idle-listening floor during blocked
  // epochs, which would otherwise swamp the sqrt(T/n) term at laptop scale.
  p.initial_S = 4.0;
  p.growth_damping_const = 2.0;
  p.growth_damping_exp = 0.0;  // gamma = 2, constant
  // Calibration (see DESIGN.md §2 and docs/calibration.md): beta = 1/4
  // keeps the growth fixed point above the helper-halt threshold; the
  // promotion threshold of one full expected-listen quota (div = 1) places
  // promotion at S_u ~ sqrt(2^i/n), so n_u estimates n to within a small
  // constant; term4 = 4 halts helpers one to two doublings later.
  p.clear_baseline = 0.25;
  p.helper_threshold_div = 1.0;
  p.term1_mult = 8.0;
  p.term4_mult = 4.0;
  p.helper_reestimate = true;
  return p;
}

std::uint64_t BroadcastNParams::repetitions(std::uint32_t epoch) const {
  const double r = b * std::pow(static_cast<double>(epoch), rep_exponent);
  return std::max<std::uint64_t>(1, to_slot_count(std::ceil(r)));
}

double BroadcastNParams::listen_factor(std::uint32_t epoch) const {
  return d * std::pow(static_cast<double>(epoch), listen_exponent);
}

double BroadcastNParams::growth_damping(std::uint32_t epoch) const {
  return growth_damping_const *
         std::pow(static_cast<double>(epoch), growth_damping_exp);
}

double BroadcastNParams::helper_threshold(std::uint32_t epoch) const {
  return listen_factor(epoch) / helper_threshold_div;
}

BroadcastNResult run_broadcast_n(std::uint32_t n,
                                 const BroadcastNParams& params,
                                 RepetitionAdversary& adversary, Rng& rng,
                                 FaultPlan* faults) {
  BroadcastNEngine engine(n, params, faults);
  engine.run(adversary, rng);
  return engine.result();
}

}  // namespace rcb
