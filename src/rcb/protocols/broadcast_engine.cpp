#include "rcb/protocols/broadcast_engine.hpp"

#include <algorithm>
#include <cmath>

#include "rcb/common/contracts.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {

BroadcastNEngine::BroadcastNEngine(std::uint32_t n,
                                   const BroadcastNParams& params,
                                   FaultPlan* faults)
    : n_(n), params_(params), faults_(faults), epoch_(params.first_epoch),
      active_(n) {
  RCB_REQUIRE(n >= 1);
  RCB_REQUIRE(params.first_epoch >= 1);
  if (faults_ != nullptr && !faults_->active()) faults_ = nullptr;
  nodes_.resize(n);
  actions_.resize(n);
  nodes_[0].status = BroadcastStatus::kInformed;
  nodes_[0].informed = true;
  nodes_[0].informed_epoch = params.first_epoch;
  if (n == 1) informed_latency_ = 0;
  begin_epoch();
}

void BroadcastNEngine::begin_epoch() {
  repetition_ = 0;
  repetitions_in_epoch_ = params_.repetitions(epoch_);
  // "S_u <- 16" at the top of every epoch (Fig. 2 line 1).
  for (auto& node : nodes_) node.S = params_.initial_S;
}

// Crash/restart churn is applied at repetition granularity: a node that the
// fault plan has down at the repetition's first slot sits this repetition
// out entirely (kCrashed); a previously crashed node that is back up rejoins
// with its volatile state wiped — uninformed (the sender re-reads m from
// stable storage) and S_u reset.  Sticky `informed` flags keep the
// ever-informed count from double-counting re-informed nodes.
void BroadcastNEngine::sync_crash_states() {
  for (NodeId u = 0; u < n_; ++u) {
    BroadcastNodeState& node = nodes_[u];
    const bool down = faults_->node_down_at(u, latency_);
    const bool live = node.status == BroadcastStatus::kUninformed ||
                      node.status == BroadcastStatus::kInformed ||
                      node.status == BroadcastStatus::kHelper;
    if (down && live) {
      node.status = BroadcastStatus::kCrashed;
      node.terminated_epoch = epoch_;
      --active_;
    } else if (!down && node.status == BroadcastStatus::kCrashed) {
      node.status =
          u == 0 ? BroadcastStatus::kInformed : BroadcastStatus::kUninformed;
      node.S = params_.initial_S;
      node.n_estimate = 0.0;
      ++active_;
    }
  }
}

bool BroadcastNEngine::step(RepetitionAdversary& adversary, Rng& rng) {
  if (finished_) return false;
  if (faults_ != nullptr) sync_crash_states();
  if (active_ == 0 || epoch_ > params_.max_epoch) {
    finished_ = true;
    return false;
  }

  const SlotCount num_slots = pow2(epoch_);
  const double slots = static_cast<double>(num_slots);
  const double lf = params_.listen_factor(epoch_);
  const double gamma = params_.growth_damping(epoch_);
  const double helper_threshold = params_.helper_threshold(epoch_);
  const double term1 = params_.term1_mult * std::sqrt(slots);

  RepetitionContext ctx{epoch_, repetition_, repetitions_in_epoch_, num_slots};
  const JamSchedule jam = adversary.plan(ctx, rng);

  for (NodeId u = 0; u < n_; ++u) {
    const BroadcastNodeState& node = nodes_[u];
    if (node.status == BroadcastStatus::kTerminated ||
        node.status == BroadcastStatus::kDead ||
        node.status == BroadcastStatus::kCrashed) {
      actions_[u] = NodeAction{};
      continue;
    }
    const bool knows_m = node.status != BroadcastStatus::kUninformed;
    actions_[u] = NodeAction{
        clamp_probability(node.S / slots),
        knows_m ? Payload::kMessage : Payload::kNoise,
        clamp_probability(node.S * lf / slots)};
  }

  const SlotIndex phase_start = latency_;
  const RepetitionResult rep = run_repetition(num_slots, actions_, jam, rng,
                                              nullptr, params_.cca, faults_);
  adversary_cost_ += jam.jammed_count();
  latency_ += num_slots;

  for (NodeId u = 0; u < n_; ++u) {
    BroadcastNodeState& node = nodes_[u];
    if (node.status == BroadcastStatus::kTerminated ||
        node.status == BroadcastStatus::kDead ||
        node.status == BroadcastStatus::kCrashed) {
      continue;
    }
    const NodeObservation& obs = rep.obs[u];
    node.cost += obs.sends + obs.listens;

    // Battery extension: a node that has spent its capacity dies.  A
    // brownout (faults.hpp) shrinks the usable capacity mid-run.
    Cost capacity = params_.node_energy_budget;
    if (capacity > 0 && faults_ != nullptr) {
      capacity = static_cast<Cost>(
          static_cast<double>(capacity) *
          faults_->battery_factor(u, phase_start));
    }
    if (capacity > 0 && node.cost >= capacity) {
      node.status = BroadcastStatus::kDead;
      node.terminated_epoch = epoch_;
      --active_;
      continue;
    }

    // Rate update: C' measures clear slots beyond the beta fraction of the
    // expected listen count; under probability clamping the expected count
    // is listen_prob * num_slots rather than S*LF.
    const double expected_listens =
        clamp_probability(node.S * lf / slots) * slots;
    const double c_prime =
        std::max(0.0, static_cast<double>(obs.clear) -
                          params_.clear_baseline * expected_listens);
    if (expected_listens > 0.0) {
      node.S *= std::exp2(c_prime / (expected_listens * gamma));
    }

    // Figure 2: execute at most one of the cases, in order.
    const auto heard_m = static_cast<double>(obs.messages);
    if (node.S > term1) {
      node.status = BroadcastStatus::kTerminated;  // Case 1: safety valve
      node.terminated_epoch = epoch_;
      --active_;
    } else if (node.status == BroadcastStatus::kUninformed) {
      if (obs.messages > 0) {  // Case 2
        node.status = BroadcastStatus::kInformed;
        if (!node.informed) {  // sticky across crash/restart churn
          node.informed = true;
          node.informed_epoch = epoch_;
          if (++informed_count_ == n_) informed_latency_ = latency_;
        }
      }
    } else if (node.status == BroadcastStatus::kInformed) {
      if (heard_m > helper_threshold) {  // Case 3
        node.status = BroadcastStatus::kHelper;
        node.n_estimate = slots / (node.S * node.S);
      }
    } else {  // helper
      if (node.S >= params_.term4_mult * std::sqrt(slots / node.n_estimate)) {
        node.status = BroadcastStatus::kTerminated;  // Case 4
        node.terminated_epoch = epoch_;
        --active_;
      } else if (params_.helper_reestimate && heard_m > helper_threshold) {
        node.n_estimate = std::max(node.n_estimate, slots / (node.S * node.S));
      }
    }
  }

  if (++repetition_ >= repetitions_in_epoch_) {
    ++epoch_;
    if (epoch_ <= params_.max_epoch) begin_epoch();
  }
  if (active_ == 0 || epoch_ > params_.max_epoch) finished_ = true;
  return !finished_;
}

void BroadcastNEngine::run(RepetitionAdversary& adversary, Rng& rng) {
  while (step(adversary, rng)) {
  }
}

BroadcastNResult BroadcastNEngine::result() const {
  BroadcastNResult result;
  result.n = n_;
  result.nodes.resize(n_);
  result.adversary_cost = adversary_cost_;
  result.latency = latency_;
  result.informed_latency = informed_latency_;
  // While running, epoch_ is the next epoch; after finishing it may be one
  // past the last executed one.
  result.final_epoch = std::min(epoch_, params_.max_epoch);

  std::uint32_t dead = 0;
  std::uint32_t crashed = 0;
  for (NodeId u = 0; u < n_; ++u) {
    const BroadcastNodeState& node = nodes_[u];
    BroadcastNodeOutcome& out = result.nodes[u];
    out.final_status = node.status;
    out.informed = node.informed;
    out.cost = node.cost;
    out.final_S = node.S;
    out.n_estimate = node.n_estimate;
    out.informed_epoch = node.informed_epoch;
    out.terminated_epoch = node.terminated_epoch;
    if (node.informed) ++result.informed_count;
    if (node.status == BroadcastStatus::kDead) ++dead;
    if (node.status == BroadcastStatus::kCrashed) ++crashed;
    result.max_cost = std::max(result.max_cost, node.cost);
  }
  result.dead_count = dead;
  result.crashed_count = crashed;
  result.hit_epoch_cap = finished_ && active_ > 0;
  double total = 0.0;
  for (const auto& node : nodes_) total += static_cast<double>(node.cost);
  result.mean_cost = total / static_cast<double>(n_);
  result.all_informed = (result.informed_count == n_);
  result.all_terminated = (active_ == 0 && dead == 0 && crashed == 0);
  return result;
}

}  // namespace rcb
