#include "rcb/protocols/mc_broadcast.hpp"

#include <algorithm>
#include <vector>

#include "rcb/common/contracts.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/sim/channel_plan.hpp"
#include "rcb/sim/mc_slot_engine.hpp"

namespace rcb {
namespace {

// Per-phase epoch-based random hopping: every node draws a fresh cyclic
// hop sequence from the trial RNG.  With C == 1 no draws are made — the
// C=1 execution must not consume RNG the single-channel structure wouldn't.
void draw_hops(std::vector<ChannelHop>& hops, std::uint32_t num_channels,
               Rng& rng) {
  if (num_channels <= 1) return;
  for (ChannelHop& h : hops) {
    h.start = static_cast<std::uint32_t>(rng.uniform_u64(num_channels));
    h.stride = static_cast<std::uint32_t>(rng.uniform_u64(num_channels));
  }
}

// Hop redraw cadence within a phase.  Affine hop pairs with equal strides
// are parallel sequences: if the starts differ they never share a channel
// for the entire block, so one draw per phase leaves a Θ(1/C) chance that
// a receiver cannot meet the sender at all, no matter how long the phase
// is.  Redrawing the hop family a few times per phase makes the no-meet
// probability decay geometrically in the number of blocks.
constexpr SlotCount kHopBlocksPerPhase = 8;

// Runs one protocol phase as a sequence of hop blocks: each block draws a
// fresh hop family from the trial RNG and simulates its slice of the phase.
// Observations accumulate across blocks (first_message_slot is rebased to
// the phase-local slot index).  With C == 1 the phase is a single block and
// draw_hops is a no-op, so the degenerate case runs exactly one engine call.
McSlotwiseResult run_phase_hopping(SlotCount num_slots,
                                   std::span<const NodeAction> actions,
                                   std::vector<ChannelHop>& hops,
                                   const ChannelPlan& plan,
                                   McSlotAdversary& adversary, Rng& rng,
                                   FaultPlan* faults) {
  const SlotCount blocks =
      plan.num_channels <= 1
          ? 1
          : std::min<SlotCount>(kHopBlocksPerPhase, num_slots);
  McSlotwiseResult acc;
  acc.rep.obs.resize(actions.size());
  SlotCount done = 0;
  for (SlotCount b = 0; b < blocks; ++b) {
    const SlotCount len = num_slots / blocks + (b < num_slots % blocks ? 1 : 0);
    if (len == 0) continue;
    draw_hops(hops, plan.num_channels, rng);
    const McSlotwiseResult r = run_repetition_slotwise_mc(
        len, actions, plan, adversary, rng, CcaModel{}, faults);
    acc.jam_charges += r.jam_charges;
    acc.jammed_slots += r.jammed_slots;
    acc.event_count += r.event_count;
    for (std::size_t u = 0; u < actions.size(); ++u) {
      NodeObservation& a = acc.rep.obs[u];
      const NodeObservation& o = r.rep.obs[u];
      if (a.first_message_slot == kNoSlot && o.first_message_slot != kNoSlot) {
        a.first_message_slot = done + o.first_message_slot;
        a.listens_until_first_message =
            a.listens + o.listens_until_first_message;
      }
      a.sends += o.sends;
      a.listens += o.listens;
      a.clear += o.clear;
      a.messages += o.messages;
      a.nacks += o.nacks;
      a.noise += o.noise;
    }
    done += len;
  }
  for (NodeObservation& o : acc.rep.obs) {
    if (o.first_message_slot == kNoSlot) {
      o.listens_until_first_message = o.listens;
    }
  }
  return acc;
}

}  // namespace

BroadcastNResult run_mc_broadcast(std::uint32_t n, std::uint32_t num_channels,
                                  const OneToOneParams& params,
                                  McSlotAdversary& adversary, Rng& rng,
                                  FaultPlan* faults) {
  RCB_REQUIRE(n >= 1);
  RCB_REQUIRE(num_channels >= 1 && num_channels <= kMaxChannels);
  if (faults != nullptr && !faults->active()) faults = nullptr;

  BroadcastNResult result;
  result.n = n;
  result.nodes.resize(n);
  result.nodes[0].informed = true;
  result.nodes[0].informed_epoch = params.first_epoch();
  result.nodes[0].final_status = BroadcastStatus::kInformed;

  bool sender_running = true;
  std::vector<bool> receiver_running(n, true);
  receiver_running[0] = false;  // the sender is not a receiver
  std::uint32_t active_receivers = n - 1;
  std::uint64_t informed = 1;

  std::vector<NodeAction> actions(n);
  std::vector<ChannelHop> hops(n);
  ChannelPlan plan;
  plan.num_channels = num_channels;
  plan.hops = {hops.data(), hops.size()};

  std::uint32_t epoch = params.first_epoch();
  for (; epoch <= params.max_epoch && (sender_running || active_receivers > 0);
       ++epoch) {
    result.final_epoch = epoch;
    const SlotCount num_slots = pow2(epoch);
    const double p = params.slot_probability(epoch);
    const double listen_p =
        std::min(1.0, p * static_cast<double>(num_channels));
    const double theta = params.halt_threshold(epoch);

    // ---- SEND phase ------------------------------------------------------
    {
      for (NodeId u = 0; u < n; ++u) actions[u] = NodeAction{};
      if (sender_running) actions[0] = NodeAction{p, Payload::kMessage, 0.0};
      for (NodeId u = 1; u < n; ++u) {
        if (receiver_running[u]) {
          actions[u] = NodeAction{0.0, Payload::kNoise, listen_p};
        }
      }
      const McSlotwiseResult r = run_phase_hopping(
          num_slots, actions, hops, plan, adversary, rng, faults);
      result.adversary_cost += r.jam_charges;
      result.latency += num_slots;
      result.nodes[0].cost += r.rep.obs[0].sends;

      for (NodeId u = 1; u < n; ++u) {
        if (!receiver_running[u]) continue;
        const NodeObservation& obs = r.rep.obs[u];
        if (obs.messages > 0) {
          result.nodes[u].cost += obs.listens_until_first_message;
          result.nodes[u].informed = true;
          result.nodes[u].informed_epoch = epoch;
          result.nodes[u].terminated_epoch = epoch;
          result.nodes[u].final_status = BroadcastStatus::kTerminated;
          receiver_running[u] = false;
          --active_receivers;
          if (++informed == n) result.informed_latency = result.latency;
        } else {
          result.nodes[u].cost += obs.listens;
          if (static_cast<double>(obs.noise) < theta) {
            // Quiet channel, no m: the sender must have halted.
            result.nodes[u].terminated_epoch = epoch;
            result.nodes[u].final_status = BroadcastStatus::kTerminated;
            receiver_running[u] = false;
            --active_receivers;
          }
        }
      }
    }

    if (!sender_running && active_receivers == 0) break;

    // ---- NACK phase ------------------------------------------------------
    {
      for (NodeId u = 0; u < n; ++u) actions[u] = NodeAction{};
      if (sender_running) actions[0] = NodeAction{0.0, Payload::kNoise, listen_p};
      for (NodeId u = 1; u < n; ++u) {
        if (receiver_running[u]) actions[u] = NodeAction{p, Payload::kNack, 0.0};
      }
      const McSlotwiseResult r = run_phase_hopping(
          num_slots, actions, hops, plan, adversary, rng, faults);
      result.adversary_cost += r.jam_charges;
      result.latency += num_slots;

      for (NodeId u = 1; u < n; ++u) {
        if (receiver_running[u]) result.nodes[u].cost += r.rep.obs[u].sends;
      }
      if (sender_running) {
        const NodeObservation& obs = r.rep.obs[0];
        result.nodes[0].cost += obs.listens;
        // Colliding nacks arrive as noise — equally a reason to continue.
        if (obs.nacks == 0 && static_cast<double>(obs.noise) < theta) {
          result.nodes[0].terminated_epoch = epoch;
          result.nodes[0].final_status = BroadcastStatus::kTerminated;
          sender_running = false;
        }
      }
    }
  }

  result.hit_epoch_cap = sender_running || active_receivers > 0;
  for (NodeId u = 0; u < n; ++u) {
    if (result.nodes[u].informed) ++result.informed_count;
    result.max_cost = std::max(result.max_cost, result.nodes[u].cost);
  }
  double total = 0.0;
  for (const auto& node : result.nodes) total += static_cast<double>(node.cost);
  result.mean_cost = total / static_cast<double>(n);
  result.all_informed = (result.informed_count == n);
  result.all_terminated = (!sender_running && active_receivers == 0);
  return result;
}

}  // namespace rcb
