// The combined 1-to-1 algorithm of the Theorem 1 discussion.
//
// "By combining both algorithms one can achieve expected cost
//  O(min{ sqrt(T log(1/eps)) + log(1/eps), T^(phi-1) + 1 })" — i.e. with no
// dependence on eps when T = 0.
//
// The combination time-multiplexes the two protocols: epochs of Figure 1
// and of the KSY baseline are interleaved (Fig.1 send phase, Fig.1 nack
// phase, KSY phase, repeat with the next epoch index of whichever protocol
// is still running).  Bob halts as soon as *either* stream delivers m;
// Alice halts when either stream's halting rule fires.  Each stream's
// per-epoch cost envelope is what Theorem 1 / KSY'11 prescribe, so the
// total is at most twice the cheaper of the two — the min, asymptotically.
//
// Against a spoofing adversary the Fig.1 stream can be strung along
// forever, but the KSY stream still terminates, and with it the combined
// protocol: Alice stops servicing the Fig.1 stream once KSY has halted her.
#pragma once

#include "rcb/adversary/two_uniform.hpp"
#include "rcb/protocols/ksy.hpp"
#include "rcb/protocols/one_to_one.hpp"

namespace rcb {

struct CombinedParams {
  OneToOneParams fig1 = OneToOneParams::sim(0.01);
  KsyParams ksy;
  /// Wall-clock abort across both streams (0 disables); see
  /// OneToOneParams::timeout_slots.
  SlotCount timeout_slots = 0;
};

/// Runs the interleaved combination; reuses OneToOneResult.  final_epoch
/// reports the Fig.1 stream's last epoch index.  `faults` (optional)
/// applies the channel faults of sim/faults.hpp to every phase of both
/// streams.
OneToOneResult run_combined(const CombinedParams& params,
                            DuelAdversary& adversary, Rng& rng,
                            FaultPlan* faults = nullptr);

}  // namespace rcb
