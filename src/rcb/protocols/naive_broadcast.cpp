#include "rcb/protocols/naive_broadcast.hpp"

#include <algorithm>
#include <cmath>

#include "rcb/common/contracts.hpp"
#include "rcb/common/mathutil.hpp"
#include "rcb/sim/repetition_engine.hpp"

namespace rcb {

namespace {

struct NodeState {
  BroadcastStatus status = BroadcastStatus::kUninformed;
  double S = 16.0;
};

}  // namespace

BroadcastNResult run_naive_broadcast(std::uint32_t n,
                                     const BroadcastNParams& params,
                                     RepetitionAdversary& adversary,
                                     Rng& rng, FaultPlan* faults) {
  RCB_REQUIRE(n >= 1);
  if (faults != nullptr && !faults->active()) faults = nullptr;

  BroadcastNResult result;
  result.n = n;
  result.nodes.resize(n);

  std::vector<NodeState> states(n);
  states[0].status = BroadcastStatus::kInformed;
  result.nodes[0].informed = true;
  result.nodes[0].informed_epoch = params.first_epoch;

  std::vector<NodeAction> actions(n);
  std::uint32_t active = n;

  std::uint32_t epoch = params.first_epoch;
  for (; epoch <= params.max_epoch && active > 0; ++epoch) {
    result.final_epoch = epoch;
    const SlotCount num_slots = pow2(epoch);
    const double slots = static_cast<double>(num_slots);
    const double lf = params.listen_factor(epoch);
    const double gamma = params.growth_damping(epoch);
    const double halt_threshold = params.helper_threshold(epoch);
    const double term1 = params.term1_mult * std::sqrt(slots);
    const std::uint64_t reps = params.repetitions(epoch);

    for (auto& st : states) st.S = params.initial_S;

    for (std::uint64_t rep = 0; rep < reps && active > 0; ++rep) {
      RepetitionContext ctx{epoch, rep, reps, num_slots};
      const JamSchedule jam = adversary.plan(ctx, rng);

      for (NodeId u = 0; u < n; ++u) {
        const NodeState& st = states[u];
        if (st.status == BroadcastStatus::kTerminated) {
          actions[u] = NodeAction{};
          continue;
        }
        const bool knows_m = st.status == BroadcastStatus::kInformed;
        actions[u] = NodeAction{
            clamp_probability(st.S / slots),
            knows_m ? Payload::kMessage : Payload::kNoise,
            clamp_probability(st.S * lf / slots)};
      }

      RepetitionResult rep_result = run_repetition(
          num_slots, actions, jam, rng, nullptr, CcaModel{}, faults);
      result.adversary_cost += jam.jammed_count();
      result.latency += num_slots;

      for (NodeId u = 0; u < n; ++u) {
        NodeState& st = states[u];
        if (st.status == BroadcastStatus::kTerminated) continue;
        const NodeObservation& obs = rep_result.obs[u];
        result.nodes[u].cost += obs.sends + obs.listens;

        const double expected_listens =
            clamp_probability(st.S * lf / slots) * slots;
        const double c_prime =
            std::max(0.0, static_cast<double>(obs.clear) -
                              params.clear_baseline * expected_listens);
        if (expected_listens > 0.0) {
          st.S *= std::exp2(c_prime / (expected_listens * gamma));
        }

        if (st.status == BroadcastStatus::kUninformed) {
          if (obs.messages > 0) {
            st.status = BroadcastStatus::kInformed;
            result.nodes[u].informed = true;
            result.nodes[u].informed_epoch = epoch;
          }
        } else if (static_cast<double>(obs.messages) > halt_threshold ||
                   st.S > term1) {
          // Halt-on-count: heard m often enough in one repetition, done.
          // The term1 valve is kept so a lone sender still terminates.
          st.status = BroadcastStatus::kTerminated;
          result.nodes[u].terminated_epoch = epoch;
          --active;
        }
      }
    }
  }

  for (NodeId u = 0; u < n; ++u) {
    result.nodes[u].final_status = states[u].status;
    result.nodes[u].final_S = states[u].S;
    if (result.nodes[u].informed) ++result.informed_count;
    result.max_cost = std::max(result.max_cost, result.nodes[u].cost);
  }
  double total = 0.0;
  for (const auto& node : result.nodes) total += static_cast<double>(node.cost);
  result.mean_cost = total / static_cast<double>(n);
  result.all_informed = (result.informed_count == n);
  result.all_terminated = (active == 0);
  return result;
}

}  // namespace rcb
